#include "telemetry/trace.h"

#include <sstream>

#include "telemetry/metrics.h"

namespace salamander {

void TraceRecorder::Span(std::string_view name, std::string_view category,
                         uint64_t start_us, uint64_t duration_us,
                         uint32_t tid) {
  events_.push_back(Event{Phase::kComplete, std::string(name),
                          std::string(category), start_us, duration_us, 0.0,
                          tid});
}

void TraceRecorder::Instant(std::string_view name, std::string_view category,
                            uint64_t ts_us, uint32_t tid) {
  events_.push_back(Event{Phase::kInstant, std::string(name),
                          std::string(category), ts_us, 0, 0.0, tid});
}

void TraceRecorder::CounterSample(std::string_view name, uint64_t ts_us,
                                  double value, uint32_t tid) {
  events_.push_back(
      Event{Phase::kCounter, std::string(name), "counter", ts_us, 0, value,
            tid});
}

void TraceRecorder::NameLane(uint32_t tid, std::string_view name) {
  lane_names_.push_back(LaneName{tid, std::string(name)});
}

void TraceRecorder::MergeFrom(const TraceRecorder& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  lane_names_.insert(lane_names_.end(), other.lane_names_.begin(),
                     other.lane_names_.end());
}

void TraceRecorder::Reset() {
  events_.clear();
  lane_names_.clear();
}

std::string TraceRecorder::ToJson() const {
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const LaneName& lane : lane_names_) {
    os << (first ? "\n" : ",\n")
       << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << lane.tid
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
       << JsonEscapeString(lane.name) << "\"}}";
    first = false;
  }
  for (const Event& e : events_) {
    os << (first ? "\n" : ",\n") << "  {\"name\": \""
       << JsonEscapeString(e.name) << "\", \"cat\": \""
       << JsonEscapeString(e.category) << "\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << e.ts_us;
    switch (e.phase) {
      case Phase::kComplete:
        os << ", \"ph\": \"X\", \"dur\": " << e.dur_us;
        break;
      case Phase::kInstant:
        os << ", \"ph\": \"i\", \"s\": \"t\"";
        break;
      case Phase::kCounter:
        os << ", \"ph\": \"C\", \"args\": {\"value\": "
           << FormatMetricValue(e.value) << "}";
        break;
    }
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

bool TraceRecorder::WriteJsonFile(const std::string& path) const {
  return WriteTextFile(path, ToJson());
}

}  // namespace salamander
