// Simulated-time series sampling of registry instruments.
//
// A TimeSeriesSampler turns point-in-time probes (device health, live mDisk
// count, revived capacity, recovery bytes, queue depths, injected-fault
// counts) into TimeSeries rows sampled on the simulation's own clock — once
// per simulated day in the fleet sim, once per burst in the chaos soak. The
// sampler never runs on a wall clock: Sample(t) is called by the harness at
// its barrier points, so the series are bit-identical across --threads
// values and repeated runs.
#ifndef SALAMANDER_TELEMETRY_SAMPLER_H_
#define SALAMANDER_TELEMETRY_SAMPLER_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "telemetry/metrics.h"

namespace salamander {

class TimeSeriesSampler {
 public:
  // Registers a probe evaluated at every Sample() call. Probes are evaluated
  // in registration order; series are exported in registration order too
  // (the harness decides the column order of its own report).
  void AddProbe(std::string name, std::function<double()> probe);

  // Convenience probes bound to registry instruments. The instrument
  // reference is captured; the registry must outlive the sampler.
  void AddCounterProbe(std::string name, const Counter& counter);
  void AddGaugeProbe(std::string name, const Gauge& gauge);

  // Evaluates every probe at simulated time `t`, appending one point per
  // series.
  void Sample(double t);

  size_t probe_count() const { return probes_.size(); }
  size_t sample_count() const { return samples_; }
  const std::vector<TimeSeries>& series() const { return series_; }
  // nullptr when no probe with that name exists.
  const TimeSeries* Find(std::string_view name) const;

  // ---- Export --------------------------------------------------------------

  // Wide CSV: header "t,<name>,...", one row per Sample() call.
  std::string ToCsv() const;
  // {"series": [{"name": ..., "points": [[t, v], ...]}, ...]}
  std::string ToJson() const;
  bool WriteCsvFile(const std::string& path) const;
  bool WriteJsonFile(const std::string& path) const;

 private:
  std::vector<std::function<double()>> probes_;
  std::vector<TimeSeries> series_;
  size_t samples_ = 0;
};

}  // namespace salamander

#endif  // SALAMANDER_TELEMETRY_SAMPLER_H_
