#include "telemetry/metrics.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace salamander {

std::string JsonEscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatMetricValue(double value) {
  if (!std::isfinite(value)) {
    // NaN/Inf are not valid JSON literals; a metric that produced one is a
    // bug upstream, but the export must still parse.
    return "0";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Prefer the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == value) {
      return candidate;
    }
  }
  return buf;
}

Counter& MetricRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Histogram& MetricRegistry::GetHistogram(std::string_view name,
                                        uint32_t sub_buckets_per_octave) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name),
                             Histogram(sub_buckets_per_octave))
             .first;
  }
  return it->second;
}

const Counter* MetricRegistry::FindCounter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricRegistry::FindGauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricRegistry::FindHistogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

bool MetricRegistry::MergeFrom(const MetricRegistry& other) {
  bool ok = true;
  for (const auto& [name, counter] : other.counters_) {
    GetCounter(name).Add(counter.value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    GetGauge(name).Set(gauge.value());
  }
  for (const auto& [name, histogram] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram(1)).first;
      // Adopt the source layout exactly (Merge rejects mismatched layouts).
      it->second.data() = histogram.data();
      continue;
    }
    ok = it->second.data().Merge(histogram.data()) && ok;
  }
  return ok;
}

void MetricRegistry::Reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricRegistry::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscapeString(name)
       << "\": " << counter.value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscapeString(name)
       << "\": " << FormatMetricValue(gauge.value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const LogHistogram& h = histogram.data();
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscapeString(name) << "\": {"
       << "\"count\": " << h.count() << ", \"mean\": "
       << FormatMetricValue(h.Mean()) << ", \"min\": " << h.min()
       << ", \"p50\": " << h.P50() << ", \"p95\": " << h.P95()
       << ", \"p99\": " << h.P99() << ", \"max\": " << h.max() << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string MetricRegistry::ToCsv() const {
  std::ostringstream os;
  os << "kind,name,field,value\n";
  for (const auto& [name, counter] : counters_) {
    os << "counter," << name << ",value," << counter.value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << "gauge," << name << ",value," << FormatMetricValue(gauge.value())
       << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const LogHistogram& h = histogram.data();
    os << "histogram," << name << ",count," << h.count() << "\n";
    os << "histogram," << name << ",mean," << FormatMetricValue(h.Mean())
       << "\n";
    os << "histogram," << name << ",min," << h.min() << "\n";
    os << "histogram," << name << ",p50," << h.P50() << "\n";
    os << "histogram," << name << ",p95," << h.P95() << "\n";
    os << "histogram," << name << ",p99," << h.P99() << "\n";
    os << "histogram," << name << ",max," << h.max() << "\n";
  }
  return os.str();
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  return written == content.size() && close_ok;
}

bool MetricRegistry::WriteJsonFile(const std::string& path) const {
  return WriteTextFile(path, ToJson());
}

bool MetricRegistry::WriteCsvFile(const std::string& path) const {
  return WriteTextFile(path, ToCsv());
}

}  // namespace salamander
