#include "telemetry/collect.h"

namespace salamander {

void CollectFaultMetrics(MetricRegistry& registry, const FaultStats& stats,
                         const std::string& prefix) {
  for (int site = 0; site < FaultStats::kSites; ++site) {
    // Sites appended after the PR-3 telemetry freeze only materialize once
    // they actually fire, so metric exports from older configurations stay
    // byte-identical.
    if (site >= static_cast<int>(FaultSite::kPowerLoss) &&
        stats.injected[site] == 0) {
      continue;
    }
    registry
        .GetCounter(prefix + "faults.injected." +
                    std::string(FaultSiteName(static_cast<FaultSite>(site))))
        .Add(stats.injected[site]);
  }
  registry.GetCounter(prefix + "faults.injected_total").Add(stats.total());
}

}  // namespace salamander
