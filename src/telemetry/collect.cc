#include "telemetry/collect.h"

namespace salamander {

void CollectFaultMetrics(MetricRegistry& registry, const FaultStats& stats,
                         const std::string& prefix) {
  for (int site = 0; site < FaultStats::kSites; ++site) {
    registry
        .GetCounter(prefix + "faults.injected." +
                    std::string(FaultSiteName(static_cast<FaultSite>(site))))
        .Add(stats.injected[site]);
  }
  registry.GetCounter(prefix + "faults.injected_total").Add(stats.total());
}

}  // namespace salamander
