// Chrome trace-format recording of coarse simulation phases.
//
// TraceRecorder accumulates trace events — scoped spans ("X" complete
// events), instant events ("i"), and counter tracks ("C") — and serializes
// them as Chrome trace-format JSON ({"traceEvents": [...]}), loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Harnesses trace
// coarse-grained phases only: fleet day steps, recovery waves, ShrinkS /
// RegenS lifecycle transitions, chaos bursts — not per-oPage I/O.
//
// Timestamps are *simulated* time in microseconds, supplied by the caller
// (the simulator has no wall clock in its state). Each harness documents its
// mapping — the fleet sim uses 1 simulated day = 1000 us of trace time, the
// chaos soak 1 burst = 1000 us — so traces are bit-identical across
// --threads values and repeated runs.
//
// Thread discipline mirrors MetricRegistry: a recorder is thread-confined;
// parallel harnesses record into one recorder per worker-owned unit and
// MergeFrom() them at a barrier in unit-ID order. The `tid` field is a
// logical lane (device kind, universe id), not an OS thread.
#ifndef SALAMANDER_TELEMETRY_TRACE_H_
#define SALAMANDER_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace salamander {

class TraceRecorder {
 public:
  // A complete span: [start_us, start_us + duration_us) on lane `tid`.
  void Span(std::string_view name, std::string_view category,
            uint64_t start_us, uint64_t duration_us, uint32_t tid);

  // A zero-duration marker (scope "t": thread-local in the viewer).
  void Instant(std::string_view name, std::string_view category,
               uint64_t ts_us, uint32_t tid);

  // One sample of a counter track (rendered as an area chart in Perfetto).
  void CounterSample(std::string_view name, uint64_t ts_us, double value,
                     uint32_t tid);

  // Names a lane (emitted as a thread_name metadata event).
  void NameLane(uint32_t tid, std::string_view name);

  size_t event_count() const { return events_.size(); }
  bool empty() const { return events_.empty() && lane_names_.empty(); }

  // Appends `other`'s events after this recorder's (callers merge in unit-ID
  // order at a barrier; the viewer orders by timestamp anyway).
  void MergeFrom(const TraceRecorder& other);

  void Reset();

  // {"traceEvents": [...], "displayTimeUnit": "ms"} — the JSON Array Format
  // wrapped in the object form Perfetto and chrome://tracing both accept.
  std::string ToJson() const;
  bool WriteJsonFile(const std::string& path) const;

 private:
  enum class Phase : uint8_t { kComplete, kInstant, kCounter };

  struct Event {
    Phase phase;
    std::string name;
    std::string category;
    uint64_t ts_us = 0;
    uint64_t dur_us = 0;   // kComplete only
    double value = 0.0;    // kCounter only
    uint32_t tid = 0;
  };

  struct LaneName {
    uint32_t tid;
    std::string name;
  };

  std::vector<Event> events_;
  std::vector<LaneName> lane_names_;
};

}  // namespace salamander

#endif  // SALAMANDER_TELEMETRY_TRACE_H_
