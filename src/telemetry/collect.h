// Collection helpers shared by the layer CollectMetrics() implementations.
//
// Collection is *additive*: every value is Add()ed into its instrument, so
// collecting N devices under the same prefix aggregates them (the fleet and
// diFS harnesses rely on this). The flip side: collect each object exactly
// once, at a barrier or at end of run — re-collecting double-counts.
#ifndef SALAMANDER_TELEMETRY_COLLECT_H_
#define SALAMANDER_TELEMETRY_COLLECT_H_

#include <string>

#include "faults/fault_injector.h"
#include "telemetry/metrics.h"

namespace salamander {

// Scrapes per-site injection counts as "<prefix>faults.injected.<site>"
// counters plus "<prefix>faults.injected_total". Additive, so device and
// cluster injectors collected under one prefix sum into per-site totals.
void CollectFaultMetrics(MetricRegistry& registry, const FaultStats& stats,
                         const std::string& prefix = "");

}  // namespace salamander

#endif  // SALAMANDER_TELEMETRY_COLLECT_H_
