#include "telemetry/sampler.h"

#include <cstdio>
#include <sstream>
#include <utility>

namespace salamander {

void TimeSeriesSampler::AddProbe(std::string name,
                                 std::function<double()> probe) {
  probes_.push_back(std::move(probe));
  series_.emplace_back(std::move(name));
}

void TimeSeriesSampler::AddCounterProbe(std::string name,
                                        const Counter& counter) {
  AddProbe(std::move(name), [&counter] {
    return static_cast<double>(counter.value());
  });
}

void TimeSeriesSampler::AddGaugeProbe(std::string name, const Gauge& gauge) {
  AddProbe(std::move(name), [&gauge] { return gauge.value(); });
}

void TimeSeriesSampler::Sample(double t) {
  for (size_t i = 0; i < probes_.size(); ++i) {
    series_[i].Add(t, probes_[i]());
  }
  ++samples_;
}

const TimeSeries* TimeSeriesSampler::Find(std::string_view name) const {
  for (const TimeSeries& s : series_) {
    if (s.name() == name) {
      return &s;
    }
  }
  return nullptr;
}

std::string TimeSeriesSampler::ToCsv() const {
  std::ostringstream os;
  os << "t";
  for (const TimeSeries& s : series_) {
    os << "," << s.name();
  }
  os << "\n";
  for (size_t row = 0; row < samples_; ++row) {
    // All series sample together, so row i of every series shares one t.
    os << FormatMetricValue(series_.empty() ? 0.0
                                            : series_[0].points()[row].first);
    for (const TimeSeries& s : series_) {
      os << "," << FormatMetricValue(s.points()[row].second);
    }
    os << "\n";
  }
  return os.str();
}

std::string TimeSeriesSampler::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"series\": [";
  for (size_t i = 0; i < series_.size(); ++i) {
    const TimeSeries& s = series_[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
       << JsonEscapeString(s.name()) << "\", \"points\": [";
    for (size_t p = 0; p < s.points().size(); ++p) {
      os << (p == 0 ? "" : ", ") << "[" << FormatMetricValue(s.points()[p].first)
         << ", " << FormatMetricValue(s.points()[p].second) << "]";
    }
    os << "]}";
  }
  os << (series_.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

bool TimeSeriesSampler::WriteCsvFile(const std::string& path) const {
  return WriteTextFile(path, ToCsv());
}

bool TimeSeriesSampler::WriteJsonFile(const std::string& path) const {
  return WriteTextFile(path, ToJson());
}

}  // namespace salamander
