// Metrics registry: named instruments for the whole simulation stack.
//
// The registry is the substrate every bench reports through (ISSUE 3): each
// layer exposes a CollectMetrics() that scrapes its internal stats structs
// into named Counter / Gauge / Histogram instruments, and harnesses export
// the registry as JSON or CSV next to their stdout tables.
//
// Determinism rules (they extend the FaultInjector's attach/detach pattern):
//  * Detached is invisible. No layer owns a registry; a harness that never
//    attaches one leaves every code path, allocation, and RNG stream exactly
//    as before — scrape-on-demand means zero cost on the simulation's hot
//    paths.
//  * Instruments iterate in name order (std::map), so exports are
//    byte-identical runs apart regardless of registration order.
//  * A registry is thread-confined, like the simulation layers themselves
//    (DESIGN.md "Threading & determinism"). Parallel harnesses give each
//    worker-owned unit (device slot, chaos universe) its own registry or
//    ShardedCounter shard and merge at a barrier, in unit-ID order.
//
// Instrument naming scheme: dot-separated "<layer>.<what>[.<detail>]",
// lower_snake_case leaves, e.g. "flash.programs", "ftl.gc_relocations",
// "difs.recovery_opage_writes", "faults.injected.program_fail",
// "fleet.devices_functioning". See DESIGN.md "Telemetry".
#ifndef SALAMANDER_TELEMETRY_METRICS_H_
#define SALAMANDER_TELEMETRY_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"

namespace salamander {

// Monotone event count. Set() exists for scrape-style collection (copying a
// layer's internal counter into the registry); incremental users call
// Add/Increment.
class Counter {
 public:
  void Increment() { value_ += 1; }
  void Add(uint64_t n) { value_ += n; }
  void Set(uint64_t v) { value_ = v; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Point-in-time measurement (queue depth, live capacity, device health).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Distribution instrument backed by the existing LogHistogram.
class Histogram {
 public:
  explicit Histogram(uint32_t sub_buckets_per_octave = 32)
      : histogram_(sub_buckets_per_octave) {}

  void Record(uint64_t value) { histogram_.Record(value); }
  void RecordN(uint64_t value, uint64_t n) { histogram_.RecordN(value, n); }

  const LogHistogram& data() const { return histogram_; }
  LogHistogram& data() { return histogram_; }

 private:
  LogHistogram histogram_;
};

// A counter split into independently owned slots so parallel workers can
// count without synchronization or races: worker i writes only shard(i),
// and the owner sums the shards at a barrier, in shard order — the same
// confine-then-merge discipline that keeps the fleet sim bit-identical at
// any --threads. Shards are cache-line padded so neighboring devices do not
// false-share.
class ShardedCounter {
 public:
  explicit ShardedCounter(size_t shards) : shards_(shards) {}

  void Add(size_t shard, uint64_t n) { shards_[shard].value += n; }
  void Increment(size_t shard) { shards_[shard].value += 1; }

  size_t shard_count() const { return shards_.size(); }
  uint64_t shard_value(size_t shard) const { return shards_[shard].value; }

  // Sum over shards in index order. Pure; the merge point (a barrier) is the
  // caller's responsibility.
  uint64_t Total() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value;
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) {
      s.value = 0;
    }
  }

 private:
  struct alignas(64) Shard {
    uint64_t value = 0;
  };
  std::vector<Shard> shards_;
};

// Named instrument registry. Instrument references remain valid for the
// registry's lifetime (std::map nodes are stable). Thread-confined.
class MetricRegistry {
 public:
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  // `sub_buckets_per_octave` applies only when the histogram is created by
  // this call; an existing instrument keeps its layout.
  Histogram& GetHistogram(std::string_view name,
                          uint32_t sub_buckets_per_octave = 32);

  // Lookup without creation; nullptr when the instrument does not exist.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Merges `other` into this registry: counters and histograms add, gauges
  // take `other`'s value (last merge wins — merge shards in unit-ID order).
  // Returns false (after merging everything else) if any histogram pair had
  // mismatched bucket layouts.
  bool MergeFrom(const MetricRegistry& other);

  void Reset();

  // ---- Export --------------------------------------------------------------
  // Instruments appear in name order within their section, so two runs that
  // record the same values export byte-identical documents.

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, mean,
  // min, p50, p95, p99, max}}}
  std::string ToJson() const;

  // Long format: one "kind,name,field,value" row per exported scalar.
  std::string ToCsv() const;

  // Writes ToJson()/ToCsv() to `path`; false on I/O failure.
  bool WriteJsonFile(const std::string& path) const;
  bool WriteCsvFile(const std::string& path) const;

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Formats a double for JSON/CSV export: shortest representation that
// round-trips, never "nan"/"inf" (clamped to 0 with a "null"-safe literal),
// so exported documents always parse.
std::string FormatMetricValue(double value);

// JSON string escaping shared by the telemetry exporters. Names are plain
// identifiers by convention, but exporters must emit valid JSON for any
// input.
std::string JsonEscapeString(std::string_view s);

// Writes `content` to `path`, returning false on any I/O failure. Shared by
// the telemetry exporters.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace salamander

#endif  // SALAMANDER_TELEMETRY_METRICS_H_
