// Flash wear model: raw bit-error rate as a function of program/erase cycles.
//
// Follows the power-law model of Kim et al. (FAST '19, the paper's [11]):
//
//   RBER(pec) = rber_floor + coefficient * page_factor * pec^exponent
//
// `page_factor` captures the large page-to-page endurance variance of modern
// 3D NAND (the paper's [41, 42]): each fPage draws a lognormal multiplier at
// manufacturing time, so "weak" pages tire early while "strong" pages live
// far past the nominal PEC limit — exactly the headroom Salamander harvests.
#ifndef SALAMANDER_FLASH_WEAR_MODEL_H_
#define SALAMANDER_FLASH_WEAR_MODEL_H_

#include <cstdint>

#include "common/rng.h"

namespace salamander {

struct WearModelConfig {
  // RBER growth exponent. ~2.7 for TLC per published characterizations; this
  // value also reproduces the paper's Fig. 2 headline (+50% PEC at L1).
  double exponent = 2.7;
  // Growth coefficient; see Calibrate().
  double coefficient = 1e-13;
  // RBER of pristine flash (manufacturing defects).
  double rber_floor = 1e-7;
  // Lognormal sigma of the per-page endurance factor (0 disables variance).
  double page_factor_sigma = 0.35;
  // Read disturb (§2, [26]): additional RBER per read of the block since its
  // last erase. 0 (default) reproduces the paper's aging-only analysis
  // ("for simplicity we only consider RBER due to aging", §4); a typical
  // extension value is ~1e-9 per read.
  double read_disturb_per_read = 0.0;
};

class WearModel {
 public:
  explicit WearModel(const WearModelConfig& config) : config_(config) {}

  // RBER of a page with endurance factor `page_factor` after `pec` cycles
  // and `reads_since_erase` reads of its block since the last erase.
  double Rber(double pec, double page_factor = 1.0,
              uint64_t reads_since_erase = 0) const;

  // Inverse: PEC at which the page's RBER reaches `rber`. Returns 0 when the
  // floor already exceeds `rber` (page unusable at that requirement).
  double PecAtRber(double rber, double page_factor = 1.0) const;

  // Draws a per-page endurance factor: lognormal with median 1.
  double SamplePageFactor(Rng& rng) const;

  const WearModelConfig& config() const { return config_; }

  // Chooses `coefficient` so a median page (factor 1) reaches `rber` at
  // exactly `nominal_pec` cycles — i.e. calibrates the model to a datasheet
  // endurance rating given the L0 ECC's tolerable RBER.
  static WearModelConfig Calibrate(double rber_at_nominal, uint32_t nominal_pec,
                                   double exponent = 2.7,
                                   double rber_floor = 1e-7,
                                   double page_factor_sigma = 0.35);

 private:
  WearModelConfig config_;
};

}  // namespace salamander

#endif  // SALAMANDER_FLASH_WEAR_MODEL_H_
