// Physical layout of the simulated NAND flash (paper §2, §3 terminology).
//
//   oPage  — 4 KiB logical data page, the host I/O granularity
//   fPage  — physical flash page holding several oPages plus a spare area
//   block  — erase unit, a group of fPages
//
// Addresses are flat indices over the whole device; helpers convert between
// fPage / block / oPage spaces.
#ifndef SALAMANDER_FLASH_GEOMETRY_H_
#define SALAMANDER_FLASH_GEOMETRY_H_

#include <cstdint>

#include "common/units.h"

namespace salamander {

using FPageIndex = uint64_t;
using BlockIndex = uint64_t;
// Physical oPage slot: fpage_index * opages_per_fpage + slot.
using OPageSlot = uint64_t;

struct FlashGeometry {
  uint32_t channels = 2;
  uint32_t dies_per_channel = 2;
  uint32_t planes_per_die = 2;
  uint32_t blocks_per_plane = 64;
  uint32_t fpages_per_block = 64;
  uint32_t opage_bytes = 4096;
  uint32_t opages_per_fpage = 4;  // 16 KiB fPage in the running example
  uint32_t spare_bytes_per_fpage = 2048;

  uint64_t total_planes() const {
    return static_cast<uint64_t>(channels) * dies_per_channel * planes_per_die;
  }
  uint64_t total_blocks() const { return total_planes() * blocks_per_plane; }
  uint64_t total_fpages() const { return total_blocks() * fpages_per_block; }
  uint64_t total_opages() const { return total_fpages() * opages_per_fpage; }
  uint32_t fpage_data_bytes() const { return opage_bytes * opages_per_fpage; }
  // Raw data capacity, excluding spare areas.
  uint64_t raw_capacity_bytes() const {
    return total_fpages() * fpage_data_bytes();
  }

  BlockIndex BlockOfFPage(FPageIndex fpage) const {
    return fpage / fpages_per_block;
  }
  FPageIndex FirstFPageOfBlock(BlockIndex block) const {
    return block * fpages_per_block;
  }
  FPageIndex FPageOfSlot(OPageSlot slot) const {
    return slot / opages_per_fpage;
  }
  uint32_t SlotWithinFPage(OPageSlot slot) const {
    return static_cast<uint32_t>(slot % opages_per_fpage);
  }
  OPageSlot FirstSlotOfFPage(FPageIndex fpage) const {
    return fpage * opages_per_fpage;
  }

  bool Valid() const {
    return channels > 0 && dies_per_channel > 0 && planes_per_die > 0 &&
           blocks_per_plane > 0 && fpages_per_block > 0 && opage_bytes > 0 &&
           opages_per_fpage > 0;
  }

  // A small device (default ~256 MiB raw) that keeps unit tests fast.
  static FlashGeometry Small() {
    FlashGeometry g;
    g.channels = 1;
    g.dies_per_channel = 1;
    g.planes_per_die = 1;
    g.blocks_per_plane = 64;
    g.fpages_per_block = 32;
    return g;
  }
};

// NAND operation timing (values in simulated time; defaults are typical
// mid-generation TLC figures).
struct FlashLatencyConfig {
  SimDuration read_fpage = 60 * kMicrosecond;      // tR
  SimDuration program_fpage = 700 * kMicrosecond;  // tPROG
  SimDuration erase_block = 3 * kMillisecond;      // tBERS
  // Channel transfer cost per transferred byte (ONFI-ish ~1.2 GB/s).
  SimDuration transfer_per_kib = 800;              // ns per KiB
  // Each read retry repeats tR with adjusted read voltages.
  uint32_t max_read_retries = 5;
  // Per-retry multiplicative RBER reduction from voltage adjustment.
  double retry_rber_factor = 0.6;

  SimDuration TransferTime(uint64_t bytes) const {
    return transfer_per_kib * ((bytes + kKiB - 1) / kKiB);
  }
};

}  // namespace salamander

#endif  // SALAMANDER_FLASH_GEOMETRY_H_
