// The NAND flash array simulator: blocks of fPages with PEC tracking,
// per-page endurance variance, stochastic bit-error injection and a latency
// model with read retries.
//
// The chip is a *metadata* simulator: it does not store user bytes (the
// layers above track placement logically), but it faithfully enforces NAND
// state rules — program only after erase, no in-place overwrite — so FTL bugs
// surface as hard errors in tests.
#ifndef SALAMANDER_FLASH_FLASH_CHIP_H_
#define SALAMANDER_FLASH_FLASH_CHIP_H_

#include <cstdint>
#include <vector>

#include <string>

#include "common/bitmap.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "faults/fault_injector.h"
#include "flash/geometry.h"
#include "flash/wear_model.h"
#include "telemetry/metrics.h"

namespace salamander {

// ECC strength applied to a read, derived from the page's tiredness level
// (ecc/tiredness.h). The chip samples raw errors; ECC decides correctability.
struct EccParams {
  uint32_t stripe_codeword_bits = 9216;
  uint32_t correctable_bits_per_stripe = 73;
  uint32_t stripes = 16;
};

struct ReadOutcome {
  bool correctable = true;        // false => uncorrectable even after retries
  uint32_t worst_stripe_errors = 0;  // raw bit errors in the worst stripe
  uint32_t retries = 0;           // voltage-adjust retries performed
  SimDuration latency = 0;        // tR * (1 + retries) + transfer
  // ECC miscorrection: the read "succeeded" but delivered wrong bytes. Only
  // end-to-end checksums above the device can catch this (injected via
  // FaultSite::kReadCorrupt; the chip itself never detects it).
  bool silent_corrupt = false;
};

class FlashChip {
 public:
  FlashChip(const FlashGeometry& geometry, const WearModelConfig& wear,
            const FlashLatencyConfig& latency, uint64_t seed);

  const FlashGeometry& geometry() const { return geometry_; }
  const WearModel& wear_model() const { return wear_model_; }
  const FlashLatencyConfig& latency_config() const { return latency_; }

  // Erases a block: all its fPages become programmable and the block's PEC
  // increments. Fails on out-of-range.
  StatusOr<SimDuration> EraseBlock(BlockIndex block);

  // Programs one fPage. NAND constraints: the page must be erased (never
  // programmed since the last block erase) and programs within a block must
  // proceed in ascending page order (skipping pages is allowed; real NAND
  // forbids going backwards).
  StatusOr<SimDuration> ProgramFPage(FPageIndex fpage);

  // Reads one fPage under the given ECC strength, transferring
  // `transfer_bytes` over the channel. Sampled bit errors above the ECC's
  // capability trigger read retries (iterative voltage adjustment), each
  // re-read sampling at a reduced effective RBER.
  StatusOr<ReadOutcome> ReadFPage(FPageIndex fpage, const EccParams& ecc,
                                  uint64_t transfer_bytes);

  // Current raw bit-error rate of a page (block PEC x page factor).
  double PageRber(FPageIndex fpage) const;
  // Manufacturing endurance factor of a page (lognormal, median 1).
  double PageFactor(FPageIndex fpage) const;
  uint32_t BlockPec(BlockIndex block) const;
  // Reads of this block since its last erase (read-disturb accumulator).
  uint32_t BlockReadsSinceErase(BlockIndex block) const;
  bool IsProgrammed(FPageIndex fpage) const { return programmed_.Test(fpage); }

  // Deterministic variant of PageRber at a hypothetical PEC, used by wear
  // forecasting in the FTL ("at what PEC does this page tire?").
  double PecUntilRber(FPageIndex fpage, double rber) const;

  // Total erase operations performed across the device (wear accounting).
  uint64_t total_erases() const { return total_erases_; }
  uint64_t total_programs() const { return total_programs_; }
  uint64_t total_reads() const { return total_reads_; }
  // Read retries (voltage-adjust re-reads) across all ReadFPage calls.
  uint64_t total_read_retries() const { return total_read_retries_; }

  // Scrapes op totals and the block-PEC distribution into
  // "<prefix>flash.*" instruments. Additive — collect once per chip (see
  // telemetry/collect.h).
  void CollectMetrics(MetricRegistry& registry,
                      const std::string& prefix = "") const;

  // Optional chaos hook. The chip does not own the injector; the caller
  // guarantees it outlives the chip. nullptr (the default) disables
  // injection with zero behavioral or RNG-stream impact.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

 private:
  FlashGeometry geometry_;
  WearModel wear_model_;
  FlashLatencyConfig latency_;
  Rng rng_;
  FaultInjector* faults_ = nullptr;  // not owned

  std::vector<uint32_t> block_pec_;       // per block
  std::vector<uint32_t> block_reads_;     // per block, since last erase
  std::vector<float> page_factor_;        // per fPage, lognormal median 1
  std::vector<uint16_t> next_program_;    // per block: next programmable page
  Bitmap programmed_;                     // per fPage
  uint64_t total_erases_ = 0;
  uint64_t total_programs_ = 0;
  uint64_t total_reads_ = 0;
  uint64_t total_read_retries_ = 0;
};

}  // namespace salamander

#endif  // SALAMANDER_FLASH_FLASH_CHIP_H_
