#include "flash/flash_chip.h"

#include <algorithm>
#include <string>

namespace salamander {

FlashChip::FlashChip(const FlashGeometry& geometry,
                     const WearModelConfig& wear,
                     const FlashLatencyConfig& latency, uint64_t seed)
    : geometry_(geometry),
      wear_model_(wear),
      latency_(latency),
      rng_(seed),
      block_pec_(geometry.total_blocks(), 0),
      block_reads_(geometry.total_blocks(), 0),
      next_program_(geometry.total_blocks(), 0),
      programmed_(geometry.total_fpages(), false) {
  page_factor_.reserve(geometry.total_fpages());
  for (uint64_t i = 0; i < geometry.total_fpages(); ++i) {
    page_factor_.push_back(
        static_cast<float>(wear_model_.SamplePageFactor(rng_)));
  }
}

StatusOr<SimDuration> FlashChip::EraseBlock(BlockIndex block) {
  if (block >= geometry_.total_blocks()) {
    return OutOfRangeError("EraseBlock: block " + std::to_string(block));
  }
  if (faults_ != nullptr && faults_->EraseFails()) {
    // Erase-status failure: the block is left as-is (still un-erasable);
    // the FTL is expected to retire it.
    return DataLossError("EraseBlock: injected erase failure at block " +
                         std::to_string(block));
  }
  ++block_pec_[block];
  block_reads_[block] = 0;  // read-disturb charge dissipates with the erase
  next_program_[block] = 0;
  const FPageIndex first = geometry_.FirstFPageOfBlock(block);
  for (uint32_t i = 0; i < geometry_.fpages_per_block; ++i) {
    programmed_.Clear(first + i);
  }
  ++total_erases_;
  return latency_.erase_block;
}

StatusOr<SimDuration> FlashChip::ProgramFPage(FPageIndex fpage) {
  if (fpage >= geometry_.total_fpages()) {
    return OutOfRangeError("ProgramFPage: fpage " + std::to_string(fpage));
  }
  const BlockIndex block = geometry_.BlockOfFPage(fpage);
  const uint32_t offset =
      static_cast<uint32_t>(fpage - geometry_.FirstFPageOfBlock(block));
  if (programmed_.Test(fpage)) {
    return FailedPreconditionError(
        "ProgramFPage: page already programmed (no in-place overwrite)");
  }
  if (offset < next_program_[block]) {
    // Real NAND requires ascending program order within a block; skipping
    // pages (e.g. tired pages taken out of service) is allowed, going
    // backwards is not.
    return FailedPreconditionError(
        "ProgramFPage: out-of-order program within block (next programmable " +
        std::to_string(next_program_[block]) + ", got " +
        std::to_string(offset) + ")");
  }
  programmed_.Set(fpage);
  next_program_[block] = static_cast<uint16_t>(offset + 1);
  ++total_programs_;
  if (faults_ != nullptr && faults_->ProgramFails()) {
    // Program-status failure: the page is consumed (marked programmed so the
    // ascending-order cursor stays honest) but holds no readable data; the
    // FTL must re-place the batch elsewhere.
    return DataLossError("ProgramFPage: injected program failure at fpage " +
                         std::to_string(fpage));
  }
  return latency_.program_fpage +
         latency_.TransferTime(geometry_.fpage_data_bytes() +
                               geometry_.spare_bytes_per_fpage);
}

double FlashChip::PageRber(FPageIndex fpage) const {
  const BlockIndex block = geometry_.BlockOfFPage(fpage);
  return wear_model_.Rber(static_cast<double>(block_pec_[block]),
                          static_cast<double>(page_factor_[fpage]),
                          block_reads_[block]);
}

double FlashChip::PageFactor(FPageIndex fpage) const {
  return static_cast<double>(page_factor_[fpage]);
}

uint32_t FlashChip::BlockPec(BlockIndex block) const {
  return block_pec_[block];
}

uint32_t FlashChip::BlockReadsSinceErase(BlockIndex block) const {
  return block_reads_[block];
}

double FlashChip::PecUntilRber(FPageIndex fpage, double rber) const {
  return wear_model_.PecAtRber(rber,
                               static_cast<double>(page_factor_[fpage]));
}

StatusOr<ReadOutcome> FlashChip::ReadFPage(FPageIndex fpage,
                                           const EccParams& ecc,
                                           uint64_t transfer_bytes) {
  if (fpage >= geometry_.total_fpages()) {
    return OutOfRangeError("ReadFPage: fpage " + std::to_string(fpage));
  }
  if (!programmed_.Test(fpage)) {
    return FailedPreconditionError("ReadFPage: page not programmed");
  }
  ++total_reads_;
  ++block_reads_[geometry_.BlockOfFPage(fpage)];

  ReadOutcome outcome;
  if (faults_ != nullptr && faults_->CorruptsRead()) {
    // ECC miscorrection: the decoder converges on a wrong codeword, so the
    // read completes "cleanly" in one attempt and the corruption is invisible
    // at this layer — only end-to-end checksums above the device catch it.
    // The chip rng_ is intentionally not consulted, so with injection
    // disabled the error-sampling stream is untouched.
    outcome.silent_corrupt = true;
    outcome.latency = latency_.read_fpage + latency_.TransferTime(transfer_bytes);
    return outcome;
  }
  double rber = PageRber(fpage);
  for (uint32_t attempt = 0;; ++attempt) {
    outcome.latency += latency_.read_fpage;
    // Sample the worst stripe: each stripe draws an independent binomial
    // error count at the current (possibly retry-reduced) RBER.
    uint32_t worst = 0;
    for (uint32_t s = 0; s < ecc.stripes; ++s) {
      const uint32_t errors = static_cast<uint32_t>(
          rng_.Binomial(ecc.stripe_codeword_bits, rber));
      worst = std::max(worst, errors);
    }
    outcome.worst_stripe_errors = worst;
    if (worst <= ecc.correctable_bits_per_stripe) {
      outcome.correctable = true;
      outcome.retries = attempt;
      break;
    }
    if (attempt >= latency_.max_read_retries) {
      outcome.correctable = false;
      outcome.retries = attempt;
      break;
    }
    // Iterative voltage adjustment: the next read sees a reduced RBER.
    rber *= latency_.retry_rber_factor;
  }
  outcome.latency += latency_.TransferTime(transfer_bytes);
  total_read_retries_ += outcome.retries;
  return outcome;
}

void FlashChip::CollectMetrics(MetricRegistry& registry,
                               const std::string& prefix) const {
  registry.GetCounter(prefix + "flash.programs").Add(total_programs_);
  registry.GetCounter(prefix + "flash.erases").Add(total_erases_);
  registry.GetCounter(prefix + "flash.reads").Add(total_reads_);
  registry.GetCounter(prefix + "flash.read_retries")
      .Add(total_read_retries_);
  Histogram& pec = registry.GetHistogram(prefix + "flash.block_pec");
  for (const uint32_t block_pec : block_pec_) {
    pec.Record(block_pec);
  }
}

}  // namespace salamander
