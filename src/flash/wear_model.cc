#include "flash/wear_model.h"

#include <cmath>

namespace salamander {

double WearModel::Rber(double pec, double page_factor,
                       uint64_t reads_since_erase) const {
  const double disturb =
      config_.read_disturb_per_read * static_cast<double>(reads_since_erase);
  if (pec <= 0.0) {
    return config_.rber_floor + disturb;
  }
  return config_.rber_floor + disturb +
         config_.coefficient * page_factor * std::pow(pec, config_.exponent);
}

double WearModel::PecAtRber(double rber, double page_factor) const {
  if (rber <= config_.rber_floor) {
    return 0.0;
  }
  const double scaled =
      (rber - config_.rber_floor) / (config_.coefficient * page_factor);
  return std::pow(scaled, 1.0 / config_.exponent);
}

double WearModel::SamplePageFactor(Rng& rng) const {
  if (config_.page_factor_sigma <= 0.0) {
    return 1.0;
  }
  // mu = 0 gives median 1: half the pages are weaker, half stronger.
  return rng.LogNormal(0.0, config_.page_factor_sigma);
}

WearModelConfig WearModel::Calibrate(double rber_at_nominal,
                                     uint32_t nominal_pec, double exponent,
                                     double rber_floor,
                                     double page_factor_sigma) {
  WearModelConfig config;
  config.exponent = exponent;
  config.rber_floor = rber_floor;
  config.page_factor_sigma = page_factor_sigma;
  config.coefficient = (rber_at_nominal - rber_floor) /
                       std::pow(static_cast<double>(nominal_pec), exponent);
  return config;
}

}  // namespace salamander
