// Host-facing SSD device models (paper §3, §4 baselines).
//
// One concrete class covers all four designs the paper discusses — the
// differences are retirement granularity, the tiredness-level cap, the
// failure-unit (mDisk) size, and the brick rule:
//
//   kBaseline — conventional firmware: block-granular retirement (worst page
//               kills the block), one monolithic volume, device bricks when
//               retired blocks exceed a small threshold (2.5%, [14]).
//   kCvss     — capacity-variant SSD [16]: block-granular retirement by
//               *average* block RBER; capacity shrinks block by block.
//   kShrinkS  — Salamander shrink mode: page-granular retirement, 1 MiB
//               mDisks, capacity shrinks mDisk by mDisk.
//   kRegenS   — Salamander regenerating mode: ShrinkS plus revival of tired
//               pages at lower code rates (L1 by default) and regeneration of
//               new mDisks from revived capacity.
#ifndef SALAMANDER_SSD_SSD_DEVICE_H_
#define SALAMANDER_SSD_SSD_DEVICE_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/minidisk.h"
#include "core/minidisk_manager.h"
#include "faults/fault_injector.h"
#include "ftl/ftl.h"
#include "sched/queueing.h"
#include "telemetry/collect.h"
#include "telemetry/metrics.h"

namespace salamander {

enum class SsdKind : uint8_t { kBaseline, kCvss, kShrinkS, kRegenS };

std::string_view SsdKindName(SsdKind kind);

struct SsdConfig {
  FtlConfig ftl;
  MinidiskConfig minidisk;
  // Brick when retired_blocks / total_blocks exceeds this (0 disables).
  // Conventional SSDs use ~2.5% [14].
  double brick_bad_block_fraction = 0.0;
  // Chaos injector for this device (shared so the owner of the fleet can
  // inspect stats). nullptr — the default — leaves every code path and RNG
  // stream exactly as it was without injection.
  std::shared_ptr<FaultInjector> faults;
};

// Builds the canonical configuration for a device kind on top of shared
// flash geometry / wear / latency settings. `regen_max_level` applies to
// kRegenS only (the paper recommends 1, i.e. L < 2).
SsdConfig MakeSsdConfig(SsdKind kind, const FlashGeometry& geometry,
                        const WearModelConfig& wear,
                        const FlashLatencyConfig& latency,
                        const FPageEccGeometry& ecc, uint64_t seed,
                        unsigned regen_max_level = 1);

class SsdDevice {
 public:
  SsdDevice(SsdKind kind, const SsdConfig& config);

  SsdKind kind() const { return kind_; }
  std::string_view kind_name() const { return SsdKindName(kind_); }

  // ---- Host I/O (fails with kDeviceFailed once bricked) -------------------

  StatusOr<SimDuration> Write(MinidiskId mdisk, uint64_t lba);
  StatusOr<ReadResult> Read(MinidiskId mdisk, uint64_t lba);
  StatusOr<RangeReadResult> ReadRange(MinidiskId mdisk, uint64_t lba,
                                      uint64_t count);

  // Host flush command: drains the device's NV write buffer to flash.
  Status Flush();

  // Acknowledges a kDraining mDisk (grace-period decommissioning): the host
  // confirms its data is re-replicated and the device reclaims the space.
  Status AckDrain(MinidiskId mdisk);

  // mDisk lifecycle events since the last call. When the device bricks, a
  // kDecommissioned event is emitted for every still-live mDisk (a whole-
  // device failure is "logically equivalent to retiring all flash blocks
  // simultaneously", §4.3).
  std::vector<MinidiskEvent> TakeEvents();

  // How a crash ends: for good, or until someone plugs the rack back in.
  enum class CrashKind : uint8_t {
    kPermanent,  // brick: all mDisks fail at once, never comes back
    kPowerLoss,  // transient: goes dark silently, restartable via Restart()
  };

  // Immediate whole-device failure (chaos harness / fault drills).
  //
  // kPermanent bricks the device and queues kDecommissioned for every
  // non-decommissioned mDisk, exactly as a wear-driven brick would. Calling
  // it on a transiently dark device upgrades the outage to a brick (the
  // events fire then). Idempotent once permanent.
  //
  // kPowerLoss models pulled power: the device goes dark *silently* (no
  // events — peers only observe unreachability), the FTL's volatile write
  // buffers are lost, and — when a fault injector is attached — the unsynced
  // journal tail may tear (FaultSite::kTornJournalWrite). A no-op on an
  // already-failed device.
  void Crash(CrashKind kind = CrashKind::kPermanent);

  // Brings a transiently dark device back: replays the FTL journal, rebuilds
  // the mDisk table, and queues re-announcement events (kCreated per
  // surviving live mDisk; kCreated + kDraining per still-draining one) so a
  // host can resync from announced state. kFailedPrecondition if the device
  // is not crashed or is permanently bricked. If journal replay itself fails
  // the error is returned and the device stays dark.
  Status Restart();

  // ---- State ---------------------------------------------------------------

  // True once the device can no longer serve I/O (bricked or zero capacity).
  bool failed() const { return failed_; }
  // True while dark from a transient power loss (restartable); a bricked
  // device is failed() but not transiently dark.
  bool transiently_dark() const { return failed_ && transient_; }
  uint64_t restarts() const { return restarts_; }

  // True if any LBA in [lba, lba + count) of `mdisk` lost its last
  // acknowledged write to a power loss — the device-side staleness signal a
  // diFS uses when reconciling a returned device (see Ftl::LpoRolledBack).
  bool AnyRolledBackInRange(MinidiskId mdisk, uint64_t lba,
                            uint64_t count) const;
  uint64_t live_capacity_bytes() const;
  uint32_t live_minidisks() const { return manager_->live_minidisks(); }
  uint32_t total_minidisks() const { return manager_->total_minidisks(); }
  bool IsMinidiskLive(MinidiskId id) const { return manager_->IsLive(id); }
  uint64_t msize_opages() const { return manager_->msize_opages(); }
  uint64_t initial_capacity_bytes() const { return initial_capacity_bytes_; }

  // Composite health in [0, 1] from telemetry the device already maintains:
  // the surviving-capacity fraction (ShrinkS decay shows up here) discounted
  // by the fraction of in-service flash forecast to tire within the next
  // `pec_horizon_fraction` of its P/E count (catches CVSS-style devices whose
  // capacity holds steady until the first retirement bricks them). 0 when
  // failed. Pure read — no RNG, no state change — so health-driven policies
  // stay deterministic. O(total fPages); see Ftl::ForecastTiringOPages.
  double HealthScore(double pec_horizon_fraction = 0.25) const;

  const Ftl& ftl() const { return *ftl_; }
  const MinidiskManager& manager() const { return *manager_; }

  // Device-level next-event estimate for a discrete-event driver: the FTL's
  // write-budget heuristics plus whether mDisk lifecycle work (queued events,
  // draining mDisks awaiting host acks) is already pending. A failed device
  // reports zero budgets and no pending work — it will never fire an event
  // again. See Ftl::EstimateNextEvent for the heuristic-not-bound caveat.
  struct EventEstimate {
    uint64_t opages_to_gc_pressure = 0;
    uint64_t opages_to_wear_event = 0;
    bool lifecycle_pending = false;
  };
  EventEstimate EstimateNextEvent() const;

  // Total host data written so far, in bytes (lifetime accounting).
  uint64_t bytes_written() const;

  // Lifecycle events discarded because a queue hit
  // minidisk.max_pending_events (manager queue + the device's own brick
  // queue). Injected event drops are *not* counted here — those model
  // channel loss, not overflow — they live in faults->stats().
  uint64_t dropped_events() const {
    return manager_->dropped_events() + dropped_events_;
  }

  const FaultInjector* faults() const { return config_.faults.get(); }

  // Lifecycle events queued and not yet taken, across the manager queue, the
  // device's brick queue, and injected-delay holdbacks.
  uint64_t pending_event_depth() const {
    return manager_->pending_events() + pending_events_.size() +
           delayed_events_.size();
  }

  // ---- Service queue (deterministic queueing layer, ISSUE 9) --------------
  // Attaches a simulated-time service queue to this device. The owner (a
  // cluster, in device-ID order) forks `jitter_seed` from its own dedicated
  // sched stream; never derive it arithmetically from the device index.
  // Without this call the device has no queue and every code path is exactly
  // the pre-queueing one.
  void ConfigureQueue(const SchedConfig& config, uint64_t jitter_seed) {
    queue_ = std::make_unique<DeviceQueue>(config, jitter_seed);
  }
  DeviceQueue* queue() { return queue_.get(); }
  const DeviceQueue* queue() const { return queue_.get(); }

  // Scrapes device state — event-queue depth/overflow, mDisk lifecycle
  // totals, capacity gauges — plus the FTL's "<prefix>ftl.*"/"<prefix>flash.*"
  // instruments and this device's injected-fault counters into
  // "<prefix>ssd.*". When a service queue is attached, its admission/wait
  // instruments land under "<prefix>ssd.sched.*". Additive — collect once
  // per device (see telemetry/collect.h).
  void CollectMetrics(MetricRegistry& registry,
                      const std::string& prefix = "") const;

 private:
  void CheckBrick();
  void EmitBrickEvents();

  SsdKind kind_;
  SsdConfig config_;
  std::unique_ptr<Ftl> ftl_;
  std::unique_ptr<MinidiskManager> manager_;
  uint64_t initial_capacity_bytes_ = 0;
  bool failed_ = false;
  bool transient_ = false;  // dark from power loss, not bricked
  uint64_t restarts_ = 0;
  bool brick_events_emitted_ = false;
  std::vector<MinidiskEvent> pending_events_;
  // Events held back by injected delivery delay; each matures after
  // `waves_left` further TakeEvents() calls.
  struct DelayedEvent {
    MinidiskEvent event;
    uint32_t waves_left = 0;
  };
  std::vector<DelayedEvent> delayed_events_;
  uint64_t dropped_events_ = 0;  // overflow drops (see dropped_events())
  // Service queue (nullptr unless ConfigureQueue was called).
  std::unique_ptr<DeviceQueue> queue_;
};

}  // namespace salamander

#endif  // SALAMANDER_SSD_SSD_DEVICE_H_
