#include "ssd/ssd_device.h"

#include <algorithm>
#include <cassert>

namespace salamander {

std::string_view SsdKindName(SsdKind kind) {
  switch (kind) {
    case SsdKind::kBaseline:
      return "baseline";
    case SsdKind::kCvss:
      return "cvss";
    case SsdKind::kShrinkS:
      return "shrinks";
    case SsdKind::kRegenS:
      return "regens";
  }
  return "unknown";
}

SsdConfig MakeSsdConfig(SsdKind kind, const FlashGeometry& geometry,
                        const WearModelConfig& wear,
                        const FlashLatencyConfig& latency,
                        const FPageEccGeometry& ecc, uint64_t seed,
                        unsigned regen_max_level) {
  SsdConfig config;
  config.ftl.geometry = geometry;
  config.ftl.wear = wear;
  config.ftl.latency = latency;
  config.ftl.ecc_geometry = ecc;
  config.ftl.seed = seed;
  config.minidisk.seed = seed + 1;

  // Capacity the minidisk manager will find available at format time.
  const uint64_t raw_opages = geometry.total_opages();
  const uint64_t gc_reserve =
      static_cast<uint64_t>(config.ftl.gc_low_watermark_blocks + 1) *
      geometry.fpages_per_block * geometry.opages_per_fpage;
  const uint64_t reserve = std::max(
      static_cast<uint64_t>(static_cast<double>(raw_opages) *
                            config.minidisk.op_ratio),
      gc_reserve);
  const uint64_t available = raw_opages > reserve ? raw_opages - reserve : 0;

  switch (kind) {
    case SsdKind::kBaseline:
      config.ftl.retirement = RetirementGranularity::kBlockWorstPage;
      config.ftl.max_usable_level = 0;
      // One monolithic volume spanning everything available.
      config.minidisk.msize_opages = available;
      config.brick_bad_block_fraction = 0.025;  // [14]
      break;
    case SsdKind::kCvss:
      // Reliability-preserving block-granular retirement: a block retires
      // when its worst page can no longer meet the ECC budget (running weak
      // pages past their tolerance would violate UBER, which no shipping
      // design does). CVSS's difference from baseline is shrinking instead
      // of bricking; its difference from ShrinkS is wasting the block's
      // still-strong pages at each retirement.
      config.ftl.retirement = RetirementGranularity::kBlockWorstPage;
      config.ftl.max_usable_level = 0;
      // Capacity shrinks at erase-block granularity.
      config.minidisk.msize_opages = static_cast<uint64_t>(
          geometry.fpages_per_block) * geometry.opages_per_fpage;
      break;
    case SsdKind::kShrinkS:
      config.ftl.retirement = RetirementGranularity::kPage;
      config.ftl.max_usable_level = 0;
      break;
    case SsdKind::kRegenS:
      config.ftl.retirement = RetirementGranularity::kPage;
      config.ftl.max_usable_level = regen_max_level;
      break;
  }
  return config;
}

SsdDevice::SsdDevice(SsdKind kind, const SsdConfig& config)
    : kind_(kind),
      config_(config),
      ftl_(std::make_unique<Ftl>(config.ftl)),
      manager_(std::make_unique<MinidiskManager>(ftl_.get(),
                                                 config.minidisk)) {
  initial_capacity_bytes_ = manager_->live_capacity_bytes();
  if (config_.faults != nullptr) {
    ftl_->SetFaultInjector(config_.faults.get());
  }
}

uint64_t SsdDevice::live_capacity_bytes() const {
  return failed_ ? 0 : manager_->live_capacity_bytes();
}

uint64_t SsdDevice::bytes_written() const {
  return ftl_->stats().host_writes * config_.ftl.geometry.opage_bytes;
}

double SsdDevice::HealthScore(double pec_horizon_fraction) const {
  if (failed_) {
    return 0.0;
  }
  const double capacity =
      initial_capacity_bytes_ == 0
          ? 1.0
          : static_cast<double>(live_capacity_bytes()) /
                static_cast<double>(initial_capacity_bytes_);
  const uint64_t span = ftl_->usable_opages();
  const double tiring =
      span == 0
          ? 1.0
          : std::min(1.0, static_cast<double>(ftl_->ForecastTiringOPages(
                              pec_horizon_fraction)) /
                              static_cast<double>(span));
  return capacity * (1.0 - tiring);
}

SsdDevice::EventEstimate SsdDevice::EstimateNextEvent() const {
  EventEstimate estimate;
  if (failed_) {
    return estimate;
  }
  const Ftl::EventEstimate ftl_estimate = ftl_->EstimateNextEvent();
  estimate.opages_to_gc_pressure = ftl_estimate.opages_to_gc_pressure;
  estimate.opages_to_wear_event = ftl_estimate.opages_to_wear_event;
  if (pending_event_depth() > 0) {
    estimate.lifecycle_pending = true;
  } else {
    for (MinidiskId id = 0; id < manager_->total_minidisks(); ++id) {
      if (manager_->minidisk(id).state == MinidiskState::kDraining) {
        estimate.lifecycle_pending = true;
        break;
      }
    }
  }
  return estimate;
}

StatusOr<SimDuration> SsdDevice::Write(MinidiskId mdisk, uint64_t lba) {
  if (failed_) {
    return DeviceFailedError("Write: device bricked");
  }
  if (config_.faults != nullptr && config_.faults->TransientlyUnavailable()) {
    return UnavailableError("Write: busy plane (injected)");
  }
  StatusOr<SimDuration> result = manager_->Write(mdisk, lba);
  CheckBrick();
  return result;
}

StatusOr<ReadResult> SsdDevice::Read(MinidiskId mdisk, uint64_t lba) {
  if (failed_) {
    return DeviceFailedError("Read: device bricked");
  }
  if (config_.faults != nullptr && config_.faults->TransientlyUnavailable()) {
    return UnavailableError("Read: busy plane (injected)");
  }
  return manager_->Read(mdisk, lba);
}

StatusOr<RangeReadResult> SsdDevice::ReadRange(MinidiskId mdisk, uint64_t lba,
                                               uint64_t count) {
  if (failed_) {
    return DeviceFailedError("ReadRange: device bricked");
  }
  if (config_.faults != nullptr && config_.faults->TransientlyUnavailable()) {
    return UnavailableError("ReadRange: busy plane (injected)");
  }
  return manager_->ReadRange(mdisk, lba, count);
}

Status SsdDevice::AckDrain(MinidiskId mdisk) {
  if (failed_) {
    return DeviceFailedError("AckDrain: device bricked");
  }
  if (config_.faults != nullptr && config_.faults->TransientlyUnavailable()) {
    return UnavailableError("AckDrain: busy plane (injected)");
  }
  Status status = manager_->AckDrain(mdisk);
  CheckBrick();
  return status;
}

Status SsdDevice::Flush() {
  if (failed_) {
    return DeviceFailedError("Flush: device bricked");
  }
  Status status = manager_->Flush();
  CheckBrick();
  return status;
}

void SsdDevice::CheckBrick() {
  if (failed_) {
    return;
  }
  // A device whose remaining mDisks are all draining is read-only, not dead
  // (SSDs "either fail entirely (i.e., brick) or become read-only", §2):
  // it keeps serving recovery reads until the drains are acked.
  bool brick = manager_->live_minidisks() == 0 &&
               manager_->draining_minidisks() == 0;
  if (!brick && config_.brick_bad_block_fraction > 0.0) {
    const double bad_fraction =
        static_cast<double>(ftl_->retired_blocks()) /
        static_cast<double>(config_.ftl.geometry.total_blocks());
    brick = bad_fraction > config_.brick_bad_block_fraction;
  }
  if (!brick) {
    return;
  }
  failed_ = true;
  EmitBrickEvents();
}

void SsdDevice::Crash(CrashKind kind) {
  if (kind == CrashKind::kPowerLoss) {
    if (failed_) {
      return;  // already dark or bricked; nothing further to lose
    }
    failed_ = true;
    transient_ = true;
    // Silent darkness: no events — peers only observe unreachability. The
    // volatile write buffers die with the power; the unsynced journal tail
    // may additionally tear when an injector is attached.
    const uint64_t torn =
        config_.faults != nullptr
            ? config_.faults->TornJournalRecords(ftl_->journal().unsynced())
            : 0;
    ftl_->SimulatePowerLoss(torn);
    return;
  }
  if (failed_ && !transient_) {
    return;
  }
  // Brick — possibly upgrading a transient outage to a permanent one, in
  // which case the whole-device-failure events fire now.
  failed_ = true;
  transient_ = false;
  EmitBrickEvents();
}

Status SsdDevice::Restart() {
  if (!failed_) {
    return FailedPreconditionError("Restart: device is not crashed");
  }
  if (!transient_) {
    return FailedPreconditionError("Restart: device permanently bricked");
  }
  Status replay = ftl_->Replay();
  if (!replay.ok()) {
    return replay;  // stays dark; the caller may treat it as bricked
  }
  manager_->Replay();
  // Anything queued before the outage is stale relative to the replayed
  // state; the re-announcements below are the authoritative resync. The
  // overflow counter survives (it is monotone by contract).
  pending_events_.clear();
  delayed_events_.clear();
  brick_events_emitted_ = false;
  for (MinidiskId id = 0; id < manager_->total_minidisks(); ++id) {
    const MinidiskState state = manager_->minidisk(id).state;
    if (state == MinidiskState::kDecommissioned) {
      continue;
    }
    // kCreated re-announces existence; a still-draining mDisk immediately
    // follows with kDraining so live-set trackers (which treat kCreated as
    // add and kDraining as remove) converge to the true live set.
    if (pending_events_.size() >= config_.minidisk.max_pending_events) {
      ++dropped_events_;
      continue;
    }
    pending_events_.push_back(
        MinidiskEvent{MinidiskEventType::kCreated, id});
    if (state == MinidiskState::kDraining) {
      if (pending_events_.size() >= config_.minidisk.max_pending_events) {
        ++dropped_events_;
        continue;
      }
      pending_events_.push_back(
          MinidiskEvent{MinidiskEventType::kDraining, id});
    }
  }
  failed_ = false;
  transient_ = false;
  ++restarts_;
  return OkStatus();
}

bool SsdDevice::AnyRolledBackInRange(MinidiskId mdisk, uint64_t lba,
                                     uint64_t count) const {
  if (ftl_->rolled_back_count() == 0 || mdisk >= manager_->total_minidisks()) {
    return false;
  }
  const uint64_t first = manager_->minidisk(mdisk).first_lpo;
  for (uint64_t i = 0; i < count; ++i) {
    if (ftl_->LpoRolledBack(first + lba + i)) {
      return true;
    }
  }
  return false;
}

void SsdDevice::EmitBrickEvents() {
  if (brick_events_emitted_) {
    return;
  }
  brick_events_emitted_ = true;
  // Whole-device failure == all remaining mDisks fail at once (§4.3);
  // draining mDisks lose their grace window along with everything else.
  for (MinidiskId id = 0; id < manager_->total_minidisks(); ++id) {
    if (manager_->minidisk(id).state != MinidiskState::kDecommissioned) {
      if (pending_events_.size() >= config_.minidisk.max_pending_events) {
        ++dropped_events_;
        continue;
      }
      pending_events_.push_back(
          MinidiskEvent{MinidiskEventType::kDecommissioned, id});
    }
  }
}

std::vector<MinidiskEvent> SsdDevice::TakeEvents() {
  // Manager events first (decommissions that preceded a brick in the same
  // operation), then any synthesized whole-device-failure notifications.
  FaultInjector* faults = config_.faults.get();
  // Crash mid-drain fires at the event-poll boundary: the host learns of the
  // loss on the very poll that would have carried drain progress.
  if (faults != nullptr && !failed_ && manager_->draining_minidisks() > 0 &&
      faults->CrashesDuringDrain()) {
    Crash();
  }
  std::vector<MinidiskEvent> incoming = manager_->TakeEvents();
  incoming.insert(incoming.end(), pending_events_.begin(),
                  pending_events_.end());
  pending_events_.clear();
  if (faults == nullptr && delayed_events_.empty()) {
    return incoming;
  }
  // Previously delayed events mature one wave per poll and are delivered
  // ahead of fresh ones (they are older).
  std::vector<MinidiskEvent> out;
  for (DelayedEvent& delayed : delayed_events_) {
    --delayed.waves_left;
    if (delayed.waves_left == 0) {
      out.push_back(delayed.event);
    }
  }
  std::erase_if(delayed_events_,
                [](const DelayedEvent& d) { return d.waves_left == 0; });
  for (const MinidiskEvent& event : incoming) {
    if (faults == nullptr) {
      out.push_back(event);
      continue;
    }
    // Fixed draw order per event — drop, delay, duplicate — so each site's
    // schedule is independent of the others' outcomes.
    if (faults->DropsEvent()) {
      continue;
    }
    const uint32_t waves = faults->EventDelayWaves();
    if (waves > 0 &&
        delayed_events_.size() < config_.minidisk.max_pending_events) {
      delayed_events_.push_back(DelayedEvent{event, waves});
      continue;
    }
    out.push_back(event);
    if (faults->DuplicatesEvent()) {
      out.push_back(event);
    }
  }
  return out;
}

void SsdDevice::CollectMetrics(MetricRegistry& registry,
                               const std::string& prefix) const {
  registry.GetGauge(prefix + "ssd.failed").Add(failed_ ? 1.0 : 0.0);
  registry.GetGauge(prefix + "ssd.live_minidisks")
      .Add(static_cast<double>(manager_->live_minidisks()));
  registry.GetGauge(prefix + "ssd.total_minidisks")
      .Add(static_cast<double>(manager_->total_minidisks()));
  registry.GetGauge(prefix + "ssd.draining_minidisks")
      .Add(static_cast<double>(manager_->draining_minidisks()));
  registry.GetGauge(prefix + "ssd.live_capacity_bytes")
      .Add(static_cast<double>(live_capacity_bytes()));
  registry.GetGauge(prefix + "ssd.pending_event_depth")
      .Add(static_cast<double>(pending_event_depth()));
  registry.GetCounter(prefix + "ssd.decommissioned_total")
      .Add(manager_->decommissioned_total());
  registry.GetCounter(prefix + "ssd.regenerated_total")
      .Add(manager_->regenerated_total());
  registry.GetCounter(prefix + "ssd.drains_forced")
      .Add(manager_->drains_forced());
  registry.GetCounter(prefix + "ssd.dropped_events").Add(dropped_events());
  // Crash-restart instruments only materialize once a power loss happened,
  // keeping crash-free metric exports byte-identical to older builds.
  if (ftl_->power_losses() > 0 || restarts_ > 0) {
    registry.GetCounter(prefix + "ssd.restarts").Add(restarts_);
    registry.GetGauge(prefix + "ssd.transiently_dark")
        .Add(transiently_dark() ? 1.0 : 0.0);
  }
  // Queue instruments only exist when a service queue is attached, keeping
  // queueing-free metric exports byte-identical to older builds.
  if (queue_ != nullptr) {
    CollectDeviceQueueMetrics(*queue_, registry, prefix + "ssd.");
  }
  ftl_->CollectMetrics(registry, prefix);
  if (config_.faults != nullptr) {
    CollectFaultMetrics(registry, config_.faults->stats(), prefix);
  }
}

}  // namespace salamander
