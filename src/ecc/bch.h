// Binary primitive (and shortened) BCH codes: real encode/decode.
//
// This is the bit-accurate codec a Salamander controller would run. The fleet
// simulator itself uses the closed-form capability model (see capability.h) —
// running Berlekamp–Massey on every simulated I/O would be pointless — but
// the codec grounds that model: tests cross-validate that a t-error-correcting
// code built here really corrects t injected errors and detects t+1.
#ifndef SALAMANDER_ECC_BCH_H_
#define SALAMANDER_ECC_BCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ecc/gf.h"

namespace salamander {

// A t-error-correcting binary BCH code of natural length n = 2^m - 1.
// Supports shortening: callers may encode fewer than k() data bits and the
// missing high-order positions are treated as zeros.
class BchCode {
 public:
  // Builds the generator polynomial as the LCM of the minimal polynomials of
  // alpha^1 .. alpha^2t. Requires 3 <= m <= 15 and t >= 1 small enough that
  // the code has positive dimension (k > 0); throws std::invalid_argument
  // otherwise.
  BchCode(unsigned m, unsigned t);

  unsigned m() const { return gf_.m(); }
  unsigned t() const { return t_; }
  // Natural codeword length in bits, 2^m - 1.
  uint32_t n() const { return gf_.order(); }
  // Data bits at natural length.
  uint32_t k() const { return n() - parity_bits_; }
  uint32_t parity_bits() const { return parity_bits_; }
  // k / n at natural length.
  double code_rate() const {
    return static_cast<double>(k()) / static_cast<double>(n());
  }

  // Systematic encode. `data_bits` is one bit per element (0/1), length
  // <= k(); shorter inputs build a shortened code. Returns
  // data ++ parity, length data_bits.size() + parity_bits().
  std::vector<uint8_t> Encode(const std::vector<uint8_t>& data_bits) const;

  struct DecodeResult {
    bool ok = false;            // true if decoding succeeded
    unsigned corrected = 0;     // number of bit errors corrected
  };

  // In-place decode of a (possibly shortened) systematic codeword as produced
  // by Encode. On success the data portion of `codeword` is corrected.
  // Fails (ok = false, codeword restored) when more than t errors are present
  // and detectable.
  DecodeResult Decode(std::vector<uint8_t>& codeword) const;

  // Generator polynomial over GF(2), bit-per-coefficient, index = degree.
  const std::vector<uint8_t>& generator() const { return generator_; }

 private:
  GaloisField gf_;
  unsigned t_;
  uint32_t parity_bits_;
  std::vector<uint8_t> generator_;  // coefficients, generator_[i] = coeff x^i

  // Syndrome computation for a codeword laid out MSB-first
  // (codeword[0] = coefficient of x^{len-1}).
  std::vector<uint16_t> Syndromes(const std::vector<uint8_t>& codeword) const;
};

}  // namespace salamander

#endif  // SALAMANDER_ECC_BCH_H_
