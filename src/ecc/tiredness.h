// Tiredness-level ECC profiles (paper §3.1, Fig. 2).
//
// A Salamander fPage at tiredness level L repurposes L of its oPages as extra
// ECC. This header computes, for each level, the resulting stripe layout,
// code rate, correction capability and maximum tolerable RBER — the static
// half of Fig. 2 (the dynamic half, RBER -> PEC, lives in flash/wear_model.h).
#ifndef SALAMANDER_ECC_TIREDNESS_H_
#define SALAMANDER_ECC_TIREDNESS_H_

#include <cstdint>
#include <vector>

#include "ecc/capability.h"

namespace salamander {

// Physical layout of an fPage for the purposes of ECC accounting.
struct FPageEccGeometry {
  uint32_t opage_bytes = 4096;       // logical data page (OS page)
  uint32_t opages_per_fpage = 4;     // 16 KiB fPage in the running example
  uint32_t spare_bytes = 2048;       // built-in spare area [13]
  uint32_t stripes_per_opage = 4;    // ~1 KiB codeword stripes
  unsigned gf_m = 14;                // BCH field degree
  double stripe_fail_target = 1e-11; // acceptable per-stripe fail probability

  uint32_t fpage_data_bytes() const { return opage_bytes * opages_per_fpage; }
};

// Derived ECC characteristics of one tiredness level.
struct TirednessLevelEcc {
  unsigned level = 0;            // L: oPages repurposed as ECC
  uint32_t data_opages = 0;      // usable data oPages, opages_per_fpage - L
  uint32_t data_bytes = 0;       // usable payload per fPage
  uint32_t ecc_bytes = 0;        // spare + L * opage_bytes
  double code_rate = 0.0;        // data / (data + ecc)
  uint32_t stripes = 0;          // codeword stripes in the fPage
  uint32_t parity_bytes_per_stripe = 0;
  uint32_t correctable_bits_per_stripe = 0;  // t
  uint32_t stripe_codeword_bits = 0;         // n
  double max_tolerable_rber = 0.0;           // retirement threshold at this L
};

// Computes the profile for one level L in [0, opages_per_fpage]. At
// L == opages_per_fpage the page stores no data (the paper's L4): data fields
// are zero and max_tolerable_rber is meaningless (0).
TirednessLevelEcc ComputeTirednessLevel(const FPageEccGeometry& geometry,
                                        unsigned level);

// Profiles for all levels 0..opages_per_fpage, indexed by level.
std::vector<TirednessLevelEcc> ComputeTirednessLadder(
    const FPageEccGeometry& geometry);

}  // namespace salamander

#endif  // SALAMANDER_ECC_TIREDNESS_H_
