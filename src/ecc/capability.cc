#include "ecc/capability.h"

#include <cmath>

namespace salamander {

double StripeUncorrectableProb(uint32_t n_bits, uint32_t t, double rber) {
  if (rber <= 0.0) {
    return 0.0;
  }
  if (rber >= 1.0) {
    return 1.0;
  }
  const double n = static_cast<double>(n_bits);
  const double log_p = std::log(rber);
  const double log_q = std::log1p(-rber);
  // Tail sum P[X > t] = sum_{k=t+1..n} C(n,k) p^k q^(n-k), evaluated in log
  // space starting at k = t+1 and stopping once terms are negligible. In the
  // regime of interest the mean n*p is near or below t, so the tail decays
  // geometrically and a few hundred terms suffice.
  double total = 0.0;
  double log_term = std::lgamma(n + 1.0) - std::lgamma(t + 2.0) -
                    std::lgamma(n - t) + (t + 1.0) * log_p +
                    (n - t - 1.0) * log_q;
  for (uint32_t k = t + 1; k <= n_bits; ++k) {
    const double term = std::exp(log_term);
    total += term;
    if (term < total * 1e-16 && k > t + 8) {
      break;
    }
    // term(k+1)/term(k) = (n-k)/(k+1) * p/q
    const double dk = static_cast<double>(k);
    log_term += std::log(n - dk) - std::log(dk + 1.0) + log_p - log_q;
  }
  return total > 1.0 ? 1.0 : total;
}

double PageUncorrectableProb(uint32_t n_bits_per_stripe, uint32_t t,
                             uint32_t stripes, double rber) {
  const double per_stripe = StripeUncorrectableProb(n_bits_per_stripe, t, rber);
  // 1 - (1 - p)^s, stable for tiny p.
  return -std::expm1(static_cast<double>(stripes) * std::log1p(-per_stripe));
}

double MaxTolerableRber(uint32_t n_bits, uint32_t t, double target) {
  if (t >= n_bits) {
    return 1.0;
  }
  double lo = 0.0;
  double hi = 1.0;
  // ~60 bisection steps pin the answer to full double precision.
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (StripeUncorrectableProb(n_bits, t, mid) <= target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace salamander
