#include "ecc/bch.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

namespace salamander {

namespace {

// Multiplies two polynomials with GF(2^m) coefficients (index = degree).
std::vector<uint16_t> PolyMul(const GaloisField& gf,
                              const std::vector<uint16_t>& a,
                              const std::vector<uint16_t>& b) {
  std::vector<uint16_t> out(a.size() + b.size() - 1, 0);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) {
      continue;
    }
    for (size_t j = 0; j < b.size(); ++j) {
      out[i + j] = gf.Add(out[i + j], gf.Mul(a[i], b[j]));
    }
  }
  return out;
}

}  // namespace

BchCode::BchCode(unsigned m, unsigned t) : gf_(m), t_(t) {
  if (t == 0) {
    throw std::invalid_argument("BchCode: t must be >= 1");
  }
  if (2 * t >= gf_.order()) {
    // The designed distance cannot reach the code length; no data bits would
    // remain (and the coset walk below assumes exponents < order).
    throw std::invalid_argument("BchCode: t too large, no data bits remain");
  }
  // Collect the cyclotomic cosets covering alpha^1 .. alpha^2t. The minimal
  // polynomial of alpha^i is prod_{j in coset(i)} (x - alpha^j); conjugates
  // share one minimal polynomial, so track covered exponents.
  const uint32_t order = gf_.order();
  std::set<uint32_t> covered;
  std::vector<uint16_t> generator_ext{1};  // over GF(2^m) during construction
  for (uint32_t i = 1; i <= 2 * t; ++i) {
    if (covered.count(i) != 0) {
      continue;
    }
    // Walk the coset {i, 2i, 4i, ...} mod order.
    std::vector<uint32_t> coset;
    uint32_t e = i;
    do {
      coset.push_back(e);
      covered.insert(e);
      e = (e * 2) % order;
    } while (e != i);
    // Minimal polynomial for this coset.
    std::vector<uint16_t> min_poly{1};
    for (uint32_t exponent : coset) {
      // multiply by (x + alpha^exponent)  (— and + coincide in char 2)
      std::vector<uint16_t> factor{gf_.AlphaPow(exponent), 1};
      min_poly = PolyMul(gf_, min_poly, factor);
    }
    generator_ext = PolyMul(gf_, generator_ext, min_poly);
  }

  // The generator has GF(2) coefficients by construction; narrow and verify.
  generator_.resize(generator_ext.size());
  for (size_t i = 0; i < generator_ext.size(); ++i) {
    if (generator_ext[i] > 1) {
      throw std::logic_error("BCH generator coefficient not in GF(2)");
    }
    generator_[i] = static_cast<uint8_t>(generator_ext[i]);
  }
  parity_bits_ = static_cast<uint32_t>(generator_.size() - 1);
  if (parity_bits_ >= gf_.order()) {
    throw std::invalid_argument("BchCode: t too large, no data bits remain");
  }
}

std::vector<uint8_t> BchCode::Encode(
    const std::vector<uint8_t>& data_bits) const {
  if (data_bits.size() > k()) {
    throw std::invalid_argument("BchCode::Encode: data longer than k");
  }
  // Systematic encoding by LFSR division: remainder of x^{n-k} d(x) mod g(x).
  // Shortening works for free because the omitted high-order data bits are
  // zeros, which do not perturb the remainder.
  const uint32_t p = parity_bits_;
  std::vector<uint8_t> remainder(p, 0);  // remainder[i] = coeff x^{p-1-i}
  for (uint8_t bit : data_bits) {
    const uint8_t feedback = static_cast<uint8_t>((bit & 1u) ^ remainder[0]);
    // Shift left by one and add feedback * g(x) (minus the monic term).
    for (uint32_t i = 0; i + 1 < p; ++i) {
      remainder[i] = static_cast<uint8_t>(
          remainder[i + 1] ^ (feedback & generator_[p - 1 - i]));
    }
    remainder[p - 1] = static_cast<uint8_t>(feedback & generator_[0]);
  }
  std::vector<uint8_t> codeword = data_bits;
  codeword.insert(codeword.end(), remainder.begin(), remainder.end());
  return codeword;
}

std::vector<uint16_t> BchCode::Syndromes(
    const std::vector<uint8_t>& codeword) const {
  // S_j = r(alpha^j) for j = 1..2t, with codeword[0] the coefficient of
  // x^{len-1}. Evaluate by Horner's rule.
  std::vector<uint16_t> syndromes(2 * t_, 0);
  for (unsigned j = 1; j <= 2 * t_; ++j) {
    const uint16_t alpha_j = gf_.AlphaPow(j);
    uint16_t acc = 0;
    for (uint8_t bit : codeword) {
      acc = gf_.Mul(acc, alpha_j);
      if (bit & 1u) {
        acc ^= 1;
      }
    }
    syndromes[j - 1] = acc;
  }
  return syndromes;
}

BchCode::DecodeResult BchCode::Decode(std::vector<uint8_t>& codeword) const {
  if (codeword.size() < parity_bits_ || codeword.size() > n()) {
    return DecodeResult{false, 0};
  }
  const std::vector<uint16_t> syndromes = Syndromes(codeword);
  const bool clean = std::all_of(syndromes.begin(), syndromes.end(),
                                 [](uint16_t s) { return s == 0; });
  if (clean) {
    return DecodeResult{true, 0};
  }

  // Berlekamp–Massey: find the shortest LFSR sigma(x) generating the
  // syndrome sequence. sigma has degree = number of errors (if <= t).
  std::vector<uint16_t> sigma{1};   // current error-locator estimate
  std::vector<uint16_t> prev{1};    // last estimate before a length change
  uint16_t prev_discrepancy = 1;
  unsigned errors = 0;              // current LFSR length L
  unsigned shift = 1;               // x^shift multiplier for the update term

  for (unsigned i = 0; i < 2 * t_; ++i) {
    // Discrepancy d = S_i + sum_{j=1..L} sigma_j * S_{i-j}.
    uint16_t d = syndromes[i];
    for (unsigned j = 1; j < sigma.size() && j <= i; ++j) {
      d ^= gf_.Mul(sigma[j], syndromes[i - j]);
    }
    if (d == 0) {
      ++shift;
      continue;
    }
    // sigma' = sigma - (d / prev_d) * x^shift * prev
    std::vector<uint16_t> next = sigma;
    const uint16_t scale = gf_.Div(d, prev_discrepancy);
    if (next.size() < prev.size() + shift) {
      next.resize(prev.size() + shift, 0);
    }
    for (size_t j = 0; j < prev.size(); ++j) {
      next[j + shift] ^= gf_.Mul(scale, prev[j]);
    }
    if (2 * errors <= i) {
      prev = sigma;
      prev_discrepancy = d;
      errors = i + 1 - errors;
      shift = 1;
    } else {
      ++shift;
    }
    sigma = std::move(next);
  }

  // Trim trailing zero coefficients; degree must equal the error count.
  while (sigma.size() > 1 && sigma.back() == 0) {
    sigma.pop_back();
  }
  const unsigned degree = static_cast<unsigned>(sigma.size() - 1);
  if (degree > t_ || degree != errors) {
    return DecodeResult{false, 0};
  }

  // Chien search: error at codeword position p (0 = first element, i.e.
  // degree len-1-p) iff sigma(alpha^{-(len-1-p)}) == 0.
  const uint32_t len = static_cast<uint32_t>(codeword.size());
  std::vector<uint32_t> error_positions;
  for (uint32_t p = 0; p < len; ++p) {
    const uint32_t deg = len - 1 - p;
    const uint16_t x = gf_.AlphaPow(gf_.order() - (deg % gf_.order()));
    uint16_t acc = 0;
    uint16_t x_pow = 1;
    for (uint16_t coeff : sigma) {
      acc ^= gf_.Mul(coeff, x_pow);
      x_pow = gf_.Mul(x_pow, x);
    }
    if (acc == 0) {
      error_positions.push_back(p);
      if (error_positions.size() > degree) {
        break;
      }
    }
  }
  // A valid correction locates exactly `degree` errors inside the (possibly
  // shortened) codeword. Roots in the virtually-zero shortened region would
  // be missing from this scan, correctly flagging an uncorrectable word.
  if (error_positions.size() != degree) {
    return DecodeResult{false, 0};
  }
  for (uint32_t p : error_positions) {
    codeword[p] ^= 1u;
  }
  // Guard against miscorrection: syndromes of the repaired word must vanish.
  const std::vector<uint16_t> check = Syndromes(codeword);
  if (!std::all_of(check.begin(), check.end(),
                   [](uint16_t s) { return s == 0; })) {
    for (uint32_t p : error_positions) {
      codeword[p] ^= 1u;  // restore
    }
    return DecodeResult{false, 0};
  }
  return DecodeResult{true, degree};
}

}  // namespace salamander
