// Galois field GF(2^m) arithmetic with log/antilog tables.
//
// Backs the BCH codec. m ranges 3..15, which covers codeword lengths from toy
// test codes (n = 7) up to the 8191-bit stripes a real SSD controller would
// use for a 1 KiB-data ECC stripe.
#ifndef SALAMANDER_ECC_GF_H_
#define SALAMANDER_ECC_GF_H_

#include <cstdint>
#include <vector>

namespace salamander {

class GaloisField {
 public:
  // Constructs GF(2^m) using a fixed primitive polynomial for each m.
  // Requires 3 <= m <= 15.
  explicit GaloisField(unsigned m);

  unsigned m() const { return m_; }
  // Field size minus one: the multiplicative group order, n = 2^m - 1.
  uint32_t order() const { return order_; }

  // alpha^i for i in [0, order). Exponent is reduced mod order.
  uint16_t AlphaPow(uint32_t exponent) const {
    return antilog_[exponent % order_];
  }

  // Discrete log base alpha; requires x != 0.
  uint32_t Log(uint16_t x) const { return log_[x]; }

  uint16_t Add(uint16_t a, uint16_t b) const { return a ^ b; }

  uint16_t Mul(uint16_t a, uint16_t b) const {
    if (a == 0 || b == 0) {
      return 0;
    }
    return antilog_[(log_[a] + log_[b]) % order_];
  }

  // Multiplicative inverse; requires a != 0.
  uint16_t Inv(uint16_t a) const {
    return antilog_[(order_ - log_[a]) % order_];
  }

  // a / b; requires b != 0.
  uint16_t Div(uint16_t a, uint16_t b) const {
    if (a == 0) {
      return 0;
    }
    return antilog_[(log_[a] + order_ - log_[b]) % order_];
  }

  uint16_t Pow(uint16_t a, uint32_t e) const {
    if (a == 0) {
      return e == 0 ? 1 : 0;
    }
    return antilog_[(static_cast<uint64_t>(log_[a]) * e) % order_];
  }

  // Primitive polynomial used for this m (bit i = coefficient of x^i).
  uint32_t primitive_poly() const { return primitive_poly_; }

 private:
  unsigned m_;
  uint32_t order_;
  uint32_t primitive_poly_;
  std::vector<uint16_t> antilog_;  // antilog_[i] = alpha^i, size order_
  std::vector<uint32_t> log_;      // log_[x] = i s.t. alpha^i = x, size 2^m
};

}  // namespace salamander

#endif  // SALAMANDER_ECC_GF_H_
