// Closed-form ECC capability model.
//
// The Salamander analysis (paper §4, Fig. 2) relates a page's *code rate* to
// the raw bit-error rate (RBER) it can tolerate: more parity -> more
// correctable bits -> higher tolerable RBER -> more P/E cycles before the
// page is "tired". This header provides that chain for binary BCH codes:
//
//   spare bits  --(t ~= spare/m)-->  correctable bits t
//   (n, t, target fail prob)  --(binomial tail inversion)-->  max RBER
//
// The fleet simulator uses these closed forms; tests cross-validate them
// against the bit-accurate codec in bch.h.
#ifndef SALAMANDER_ECC_CAPABILITY_H_
#define SALAMANDER_ECC_CAPABILITY_H_

#include <cstdint>

namespace salamander {

// Layout of one ECC stripe (codeword): `data_bytes` of payload protected by
// `parity_bytes` of BCH parity over GF(2^gf_m). Real controllers protect a
// 16 KiB flash page as several independent ~1 KiB stripes; defaults follow
// the paper's running example (16 KiB fPage, 2 KiB spare, [13]).
struct EccStripeConfig {
  uint32_t data_bytes = 1024;
  uint32_t parity_bytes = 128;
  unsigned gf_m = 14;  // parity bits per corrected bit, ~= field degree

  uint32_t data_bits() const { return data_bytes * 8; }
  uint32_t parity_bits() const { return parity_bytes * 8; }
  uint32_t codeword_bits() const { return data_bits() + parity_bits(); }

  // Correctable bit errors per stripe: each corrected bit costs ~m parity
  // bits in a binary BCH code.
  uint32_t correctable_bits() const { return parity_bits() / gf_m; }

  // data / (data + parity).
  double code_rate() const {
    return static_cast<double>(data_bytes) /
           static_cast<double>(data_bytes + parity_bytes);
  }
};

// P[Binomial(n_bits, rber) > t]: probability that one stripe read is
// uncorrectable. Numerically stable for the flash regime (n ~ 1e4, t ~ 1e2,
// rber ~ 1e-3): evaluated as a log-space tail sum.
double StripeUncorrectableProb(uint32_t n_bits, uint32_t t, double rber);

// Probability that a page composed of `stripes` independent stripes has at
// least one uncorrectable stripe.
double PageUncorrectableProb(uint32_t n_bits_per_stripe, uint32_t t,
                             uint32_t stripes, double rber);

// Largest RBER such that StripeUncorrectableProb(n, t, rber) <= target.
// Solved by bisection; the tail probability is monotone in rber.
// `target` is the acceptable per-stripe failure probability (a typical
// datacenter UBER budget translates to ~1e-11 per 1 KiB stripe; the paper's
// retirement rule only needs relative thresholds).
double MaxTolerableRber(uint32_t n_bits, uint32_t t, double target);

}  // namespace salamander

#endif  // SALAMANDER_ECC_CAPABILITY_H_
