#include "ecc/gf.h"

#include <cassert>
#include <stdexcept>

namespace salamander {

namespace {

// Primitive polynomials over GF(2), one per degree m (bit i = coeff of x^i).
// Standard choices from Lin & Costello, Appendix B.
constexpr uint32_t kPrimitivePoly[16] = {
    0,      0,      0,      0xB,    0x13,   0x25,   0x43,   0x89,
    0x11D,  0x211,  0x409,  0x805,  0x1053, 0x201B, 0x4443, 0x8003,
};

}  // namespace

GaloisField::GaloisField(unsigned m) : m_(m) {
  if (m < 3 || m > 15) {
    throw std::invalid_argument("GaloisField: m must be in [3, 15]");
  }
  order_ = (1u << m) - 1;
  primitive_poly_ = kPrimitivePoly[m];
  antilog_.resize(order_);
  log_.assign(1u << m, 0);

  // Generate the multiplicative group by repeated multiplication by alpha
  // (i.e. shift-left with modular reduction by the primitive polynomial).
  uint32_t x = 1;
  for (uint32_t i = 0; i < order_; ++i) {
    antilog_[i] = static_cast<uint16_t>(x);
    log_[x] = i;
    x <<= 1;
    if (x & (1u << m)) {
      x ^= primitive_poly_;
    }
  }
  assert(x == 1 && "primitive polynomial must generate the full group");
}

}  // namespace salamander
