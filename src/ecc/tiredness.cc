#include "ecc/tiredness.h"

namespace salamander {

TirednessLevelEcc ComputeTirednessLevel(const FPageEccGeometry& geometry,
                                        unsigned level) {
  TirednessLevelEcc out;
  out.level = level;
  if (level >= geometry.opages_per_fpage) {
    // L_max: the page is pure limbo — no usable data capacity.
    out.level = geometry.opages_per_fpage;
    out.ecc_bytes =
        geometry.spare_bytes + geometry.opages_per_fpage * geometry.opage_bytes;
    return out;
  }
  out.data_opages = geometry.opages_per_fpage - level;
  out.data_bytes = out.data_opages * geometry.opage_bytes;
  out.ecc_bytes = geometry.spare_bytes + level * geometry.opage_bytes;
  out.code_rate = static_cast<double>(out.data_bytes) /
                  static_cast<double>(out.data_bytes + out.ecc_bytes);
  out.stripes = out.data_opages * geometry.stripes_per_opage;
  // All ECC bytes (built-in spare plus repurposed oPages) are spread evenly
  // over the remaining data stripes; the paper assumes parity co-located with
  // the fPage so one read covers data + parity.
  out.parity_bytes_per_stripe = out.ecc_bytes / out.stripes;
  const uint32_t stripe_data_bytes =
      geometry.opage_bytes / geometry.stripes_per_opage;
  EccStripeConfig stripe{
      .data_bytes = stripe_data_bytes,
      .parity_bytes = out.parity_bytes_per_stripe,
      .gf_m = geometry.gf_m,
  };
  out.correctable_bits_per_stripe = stripe.correctable_bits();
  out.stripe_codeword_bits = stripe.codeword_bits();
  out.max_tolerable_rber =
      MaxTolerableRber(out.stripe_codeword_bits, out.correctable_bits_per_stripe,
                       geometry.stripe_fail_target);
  return out;
}

std::vector<TirednessLevelEcc> ComputeTirednessLadder(
    const FPageEccGeometry& geometry) {
  std::vector<TirednessLevelEcc> ladder;
  ladder.reserve(geometry.opages_per_fpage + 1);
  for (unsigned level = 0; level <= geometry.opages_per_fpage; ++level) {
    ladder.push_back(ComputeTirednessLevel(geometry, level));
  }
  return ladder;
}

}  // namespace salamander
