#include "workload/generators.h"

#include <cassert>
#include <cmath>

namespace salamander {

ZipfianGenerator::ZipfianGenerator(uint64_t space, double theta)
    : space_(space), theta_(theta) {
  assert(space > 0);
  assert(theta > 0.0 && theta < 1.0);
  zeta_n_ = Zeta(space, theta);
  zeta_two_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(space), 1.0 - theta)) /
         (1.0 - zeta_two_ / zeta_n_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  const double u = rng.UniformDouble();
  const double uz = u * zeta_n_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double n = static_cast<double>(space_);
  const uint64_t item = static_cast<uint64_t>(
      n * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return item >= space_ ? space_ - 1 : item;
}

}  // namespace salamander
