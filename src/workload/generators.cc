#include "workload/generators.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

namespace salamander {
namespace {

// Zeta partial sums keyed by (n, theta-bits). theta is keyed by its exact
// bit pattern: two doubles that compare equal share an entry, and the cached
// sum is a pure function of the key, so the cache is invisible to callers
// beyond speed. Guarded for concurrent construction (fleet workers build
// per-device generators in parallel).
std::mutex zeta_mutex;
std::map<std::pair<uint64_t, uint64_t>, double>& ZetaCache() {
  static std::map<std::pair<uint64_t, uint64_t>, double> cache;
  return cache;
}

uint64_t ThetaBits(double theta) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(theta));
  std::memcpy(&bits, &theta, sizeof(bits));
  return bits;
}

double ZetaSum(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

double ZipfianGenerator::CachedZeta(uint64_t n, double theta) {
  const std::pair<uint64_t, uint64_t> key(n, ThetaBits(theta));
  {
    std::lock_guard<std::mutex> lock(zeta_mutex);
    auto it = ZetaCache().find(key);
    if (it != ZetaCache().end()) {
      return it->second;
    }
  }
  // Sum outside the lock: the first construction per geometry is O(n) and
  // must not serialize unrelated geometries behind it. A racing duplicate
  // computes the identical value, so last-insert-wins is benign.
  const double sum = ZetaSum(n, theta);
  std::lock_guard<std::mutex> lock(zeta_mutex);
  ZetaCache().emplace(key, sum);
  return sum;
}

size_t ZipfianGenerator::ZetaCacheSize() {
  std::lock_guard<std::mutex> lock(zeta_mutex);
  return ZetaCache().size();
}

ZipfianGenerator::ZipfianGenerator(uint64_t space, double theta)
    : space_(space), theta_(theta) {
  assert(space > 0);
  assert(theta > 0.0 && theta < 1.0);
  zeta_n_ = CachedZeta(space, theta);
  zeta_two_ = CachedZeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(space), 1.0 - theta)) /
         (1.0 - zeta_two_ / zeta_n_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  const double u = rng.UniformDouble();
  const double uz = u * zeta_n_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double n = static_cast<double>(space_);
  const uint64_t item = static_cast<uint64_t>(
      n * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return item >= space_ ? space_ - 1 : item;
}

}  // namespace salamander
