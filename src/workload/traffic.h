// Multi-tenant traffic engine: the simulator's front-end workload.
//
// A TrafficEngine models N tenants sharing one storage target (a cluster's
// chunk address space, or one device's mDisk space). Each tenant owns
//   * an object population with Zipf-skewed popularity (rank 0 hottest),
//     mapped onto the shared address space through a per-tenant salted hash;
//   * a read/write mix (per-op Bernoulli);
//   * an arrival process in simulated days — steady, diurnal sinusoid, or
//     bursty on/off phases — whose per-day op count is a Poisson draw around
//     the shaped mean;
//   * hot/cold aging: the popularity ranking drifts across the object space
//     at `churn_per_day`, migrating the hot set over time.
//
// Determinism contract (DESIGN.md "Workload engine"): every tenant's draws
// come from its own Rng stream, forked from the engine seed in tenant-ID
// order at construction; EmitDay() iterates tenants in ID order and days
// must be requested in strictly increasing order. Stream identity therefore
// depends only on (seed, tenant id) — never on other tenants' consumption —
// so any parallel harness that gives each engine instance a single owner
// reproduces the serial op stream bit for bit (the fleet gives each device
// slot its own engine; the clusters are driven by one engine serially).
#ifndef SALAMANDER_WORKLOAD_TRAFFIC_H_
#define SALAMANDER_WORKLOAD_TRAFFIC_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "telemetry/metrics.h"
#include "workload/generators.h"

namespace salamander {

// Per-day demand shape. All curves are sampled once per simulated day (the
// fleet's time quantum), so the "diurnal" sinusoid models any periodic load
// curve at day granularity — the default period is a 7-day week.
enum class ArrivalShape : uint8_t {
  kSteady = 0,   // constant mean
  kDiurnal = 1,  // 1 + amplitude * sin(2*pi * (day/period + phase))
  kBursty = 2,   // on/off renewal phases; `burst_multiplier` while on
};

std::string_view ArrivalShapeName(ArrivalShape shape);

struct TenantConfig {
  // Logical object population (> 0). Objects are mapped onto the target
  // address space by a per-tenant salted hash, so tenants interleave over
  // shared storage without coordinating.
  uint64_t objects = 1 << 16;
  // Zipf skew over object ranks, in (0, 1) (YCSB convention; 0.99 ~ "zipfian").
  double zipf_theta = 0.99;
  // Probability an op is a read, in [0, 1].
  double read_fraction = 0.5;
  // Mean ops per simulated day at shape factor 1 (>= 0, finite).
  double ops_per_day = 1000.0;

  ArrivalShape arrival = ArrivalShape::kSteady;

  // kDiurnal: relative swing in [0, 1] and period in days (> 0).
  double diurnal_amplitude = 0.5;
  double diurnal_period_days = 7.0;
  double diurnal_phase = 0.0;  // fraction of a period, in [0, 1)

  // kBursty: exponential on/off phases with mean cycle `burst_cycle_days`;
  // the on phase covers `burst_on_fraction` of the cycle at
  // `burst_multiplier` x demand, and the off phase is scaled down so the
  // long-run mean stays ops_per_day (requires on_fraction * multiplier <= 1).
  double burst_on_fraction = 0.25;   // in (0, 1]
  double burst_multiplier = 3.0;     // >= 1
  double burst_cycle_days = 8.0;     // > 0

  // Fraction of the object space the popularity ranking drifts per day, in
  // [0, 1]. 0 freezes the hot set; 0.01 migrates it across the full
  // population in ~100 days.
  double churn_per_day = 0.0;
};

struct TrafficConfig {
  uint64_t seed = 1;
  std::vector<TenantConfig> tenants;
};

// Field validation (satellite contract: out-of-range fractions, zero
// tenants, zero object space are Status errors, never silent misbehavior).
// TrafficEngine's constructor dies on an invalid config; callers holding
// untrusted input validate first and propagate the Status.
Status ValidateTenantConfig(const TenantConfig& config);
Status ValidateTrafficConfig(const TrafficConfig& config);

// One emitted operation. Addresses are oPage-granular offsets into the
// engine's target address space; the harness maps them onto its storage
// (chunk = addr / chunk_opages, offset = addr % chunk_opages, etc.).
struct TrafficOp {
  uint32_t tenant = 0;
  bool is_read = false;
  uint64_t address = 0;
};

// Convenience builder: `n` tenants from one template. When `mixed_arrivals`
// is true the arrival shapes rotate steady/diurnal/bursty in tenant-ID
// order, and bursty/diurnal phases are staggered per tenant so the fleet's
// aggregate demand is not phase-locked.
TrafficConfig MakeUniformTraffic(uint32_t n, const TenantConfig& tenant,
                                 uint64_t seed, bool mixed_arrivals = false);

class TrafficEngine {
 public:
  // `address_space` is the size of the shared oPage address space the ops
  // target (> 0). Dies with a message on an invalid config (see
  // ValidateTrafficConfig).
  TrafficEngine(const TrafficConfig& config, uint64_t address_space);

  // Appends day `day`'s ops to `out` in canonical tenant-major order
  // (tenant 0's ops first, each tenant's ops in draw order). Days must be
  // requested in strictly increasing order; intervening days (a fleet's
  // dark-day jumps) are advanced internally without materializing demand.
  // Returns the number of ops appended.
  uint64_t EmitDay(uint32_t day, std::vector<TrafficOp>* out);

  // Arrival-only path for harnesses that provide their own address stream
  // (the fleet's AgingDriver): advances the same per-day tenant state as
  // EmitDay and returns the day's total *write* demand in oPages, without
  // drawing per-op addresses. Same strictly-increasing-day contract. An
  // engine instance serves either EmitDay or DayWriteDemand, not both.
  uint64_t DayWriteDemand(uint32_t day);

  uint64_t address_space() const { return address_space_; }
  uint32_t tenant_count() const {
    return static_cast<uint32_t>(tenants_.size());
  }

  // ---- Telemetry -----------------------------------------------------------

  uint64_t ops_emitted() const { return ops_emitted_; }
  uint64_t reads_emitted() const { return reads_emitted_; }
  uint64_t writes_emitted() const { return writes_emitted_; }
  // FNV-1a digest over every emitted (tenant, is_read, address) triple —
  // the golden-stream fingerprint the determinism tests pin.
  uint64_t StreamDigest() const { return stream_digest_; }

  // Number of hottest ranks covering half of tenant `t`'s Zipf mass — the
  // analytic hot-set size (how concentrated the tenant's traffic is).
  uint64_t TenantHotSetObjects(uint32_t t) const;
  // Measured skew: fraction of tenant `t`'s emitted ops that landed in the
  // top 1% of ranks (>= 0.99-ish for theta 0.99; ~0.01 for uniform traffic).
  double TenantAchievedSkew(uint32_t t) const;

  // Scrapes per-tenant op counts, hot-set sizes, and achieved skew into
  // "<prefix>workload.*" (additive; see telemetry/collect.h).
  void CollectMetrics(MetricRegistry& registry,
                      const std::string& prefix = "") const;

 private:
  struct TenantState {
    TenantConfig config;
    Rng rng;
    ZipfianGenerator zipf;
    uint64_t salt = 0;           // per-tenant address-hash salt
    uint64_t hot_offset = 0;     // popularity drift origin (churn)
    double churn_accum = 0.0;    // fractional churn carried across days
    // Bursty renewal state.
    bool burst_on = false;
    double burst_days_left = 0.0;
    // Analytic hot-set size (ranks to 50% Zipf mass), fixed at construction.
    uint64_t hot_set_objects = 0;
    // Telemetry.
    uint64_t ops = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t hot_rank_ops = 0;   // ops whose rank fell in the top 1%

    TenantState(const TenantConfig& c, Rng r)
        : config(c), rng(r), zipf(c.objects, c.zipf_theta) {}
  };

  // Advances tenant phase/churn state into `day` and returns the day's
  // shaped mean demand (before the Poisson draw).
  double AdvanceTenantToDay(TenantState& tenant, uint32_t day);
  uint64_t RankToAddress(const TenantState& tenant, uint64_t rank) const;

  uint64_t address_space_;
  std::vector<TenantState> tenants_;
  // Last day advanced to; days must arrive strictly increasing.
  bool any_day_seen_ = false;
  uint32_t last_day_ = 0;
  uint64_t ops_emitted_ = 0;
  uint64_t reads_emitted_ = 0;
  uint64_t writes_emitted_ = 0;
  uint64_t stream_digest_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

}  // namespace salamander

#endif  // SALAMANDER_WORKLOAD_TRAFFIC_H_
