// Synthetic workload address generators.
//
// Everything is deterministic given the Rng: uniform-random, sequential and
// zipfian (YCSB-style) address streams, plus a read/write mix helper. These
// drive the aging and performance benches.
#ifndef SALAMANDER_WORKLOAD_GENERATORS_H_
#define SALAMANDER_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <memory>

#include "common/rng.h"

namespace salamander {

// Produces addresses in [0, space) — oPage offsets, LBAs, chunk ids, etc.
class AddressGenerator {
 public:
  virtual ~AddressGenerator() = default;
  virtual uint64_t Next(Rng& rng) = 0;
  virtual uint64_t space() const = 0;
};

class UniformGenerator final : public AddressGenerator {
 public:
  explicit UniformGenerator(uint64_t space) : space_(space) {}
  uint64_t Next(Rng& rng) override { return rng.UniformU64(space_); }
  uint64_t space() const override { return space_; }

 private:
  uint64_t space_;
};

class SequentialGenerator final : public AddressGenerator {
 public:
  explicit SequentialGenerator(uint64_t space, uint64_t start = 0)
      : space_(space), next_(start % (space == 0 ? 1 : space)) {}
  uint64_t Next(Rng&) override {
    const uint64_t current = next_;
    next_ = (next_ + 1) % space_;
    return current;
  }
  uint64_t space() const override { return space_; }

 private:
  uint64_t space_;
  uint64_t next_;
};

// Zipfian distribution over [0, space) using the Gray et al. rejection-free
// inversion (the YCSB implementation): item 0 is the hottest.
class ZipfianGenerator final : public AddressGenerator {
 public:
  explicit ZipfianGenerator(uint64_t space, double theta = 0.99);
  uint64_t Next(Rng& rng) override;
  uint64_t space() const override { return space_; }
  double theta() const { return theta_; }

  // Zeta(n, theta) = sum_{i=1..n} i^-theta, memoized per (n, theta) behind a
  // mutex: the O(n) partial sum runs once per distinct geometry, so
  // constructing many same-shaped generators (one per tenant, one per
  // AgingDriver::WriteOPages call) is O(1) after the first. The cached value
  // is a pure function of its key, so sharing it across threads cannot
  // perturb determinism.
  static double CachedZeta(uint64_t n, double theta);
  // Number of distinct (n, theta) keys currently cached (test hook).
  static size_t ZetaCacheSize();

 private:
  uint64_t space_;
  double theta_;
  double alpha_;
  double zeta_n_;
  double eta_;
  double zeta_two_;
};

// A read/write decision stream with a fixed read fraction.
class OpMix {
 public:
  explicit OpMix(double read_fraction) : read_fraction_(read_fraction) {}
  bool NextIsRead(Rng& rng) const { return rng.Bernoulli(read_fraction_); }
  double read_fraction() const { return read_fraction_; }

 private:
  double read_fraction_;
};

}  // namespace salamander

#endif  // SALAMANDER_WORKLOAD_GENERATORS_H_
