// Host-side helpers for driving SSD wear.
//
// LiveSetTracker mirrors what a real host/diFS keeps: the set of currently
// live mDisks on a device, maintained purely from the device's event stream.
// AgingDriver pushes writes through a device until a byte target is reached
// or the device fails — the workhorse of the lifetime and fleet benches.
#ifndef SALAMANDER_WORKLOAD_AGING_H_
#define SALAMANDER_WORKLOAD_AGING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/minidisk.h"
#include "ssd/ssd_device.h"

namespace salamander {

// Tracks the live mDisk population of one device from its event stream.
// O(1) random pick via swap-remove vector + index map.
class LiveSetTracker {
 public:
  // Applies an event batch. Idempotent per mDisk: a kCreated for an already-
  // tracked id and a kDecommissioned for an unknown id are ignored, so
  // bootstrapping from device state plus replayed events is safe.
  void Apply(const std::vector<MinidiskEvent>& events);

  // Seeds the tracker from a device's current live set (for hosts attaching
  // to a device whose creation events were already consumed elsewhere).
  void BootstrapFromDevice(const SsdDevice& device);

  bool empty() const { return live_.empty(); }
  size_t size() const { return live_.size(); }
  MinidiskId PickRandom(Rng& rng) const {
    return live_[rng.UniformU64(live_.size())];
  }
  const std::vector<MinidiskId>& live() const { return live_; }
  bool Contains(MinidiskId id) const { return index_.count(id) != 0; }

  uint64_t created_seen() const { return created_seen_; }
  uint64_t decommissioned_seen() const { return decommissioned_seen_; }

 private:
  std::vector<MinidiskId> live_;
  std::unordered_map<MinidiskId, size_t> index_;
  uint64_t created_seen_ = 0;
  uint64_t decommissioned_seen_ = 0;
};

struct AgingConfig {
  // Fraction of writes drawn zipfian-hot vs uniform (0 = all uniform).
  double zipfian_fraction = 0.0;
  double zipfian_theta = 0.99;
  // Fraction of the live mDisk population the workload actually touches
  // (space utilization). 1.0 writes everywhere; 0.5 leaves half the
  // advertised capacity untouched — the regime where CVSS reports its ~20%
  // lifetime gain.
  double working_set_fraction = 1.0;
};

// Field validation: zipfian_fraction outside [0, 1], zipfian_theta outside
// (0, 1), or working_set_fraction outside (0, 1] are InvalidArgument — not
// silent misbehavior downstream. AgingDriver's constructor dies on an
// invalid config; callers holding untrusted input validate first.
Status ValidateAgingConfig(const AgingConfig& config);

struct AgingResult {
  uint64_t opages_written = 0;
  uint64_t write_errors = 0;
  bool device_failed = false;
};

// Writes up to `opages` of 4 KiB pages to uniformly random live mDisks of
// `device`, consuming device events to track the live set. Stops early when
// the device fails or loses all capacity.
class AgingDriver {
 public:
  AgingDriver(SsdDevice* device, uint64_t seed,
              const AgingConfig& config = {});

  AgingResult WriteOPages(uint64_t opages);

  const LiveSetTracker& tracker() const { return tracker_; }
  // Total host writes issued through this driver.
  uint64_t total_written() const { return total_written_; }

 private:
  SsdDevice* device_;
  Rng rng_;
  AgingConfig config_;
  LiveSetTracker tracker_;
  uint64_t total_written_ = 0;
};

}  // namespace salamander

#endif  // SALAMANDER_WORKLOAD_AGING_H_
