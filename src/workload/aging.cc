#include "workload/aging.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "workload/generators.h"

namespace salamander {

Status ValidateAgingConfig(const AgingConfig& config) {
  if (!std::isfinite(config.zipfian_fraction) ||
      config.zipfian_fraction < 0.0 || config.zipfian_fraction > 1.0) {
    return InvalidArgumentError(
        "AgingConfig: zipfian_fraction must be in [0, 1]");
  }
  if (!std::isfinite(config.zipfian_theta) || config.zipfian_theta <= 0.0 ||
      config.zipfian_theta >= 1.0) {
    return InvalidArgumentError(
        "AgingConfig: zipfian_theta must be in (0, 1)");
  }
  if (!std::isfinite(config.working_set_fraction) ||
      config.working_set_fraction <= 0.0 ||
      config.working_set_fraction > 1.0) {
    return InvalidArgumentError(
        "AgingConfig: working_set_fraction must be in (0, 1]");
  }
  return OkStatus();
}

void LiveSetTracker::Apply(const std::vector<MinidiskEvent>& events) {
  for (const MinidiskEvent& event : events) {
    switch (event.type) {
      case MinidiskEventType::kCreated: {
        ++created_seen_;
        if (index_.count(event.mdisk) != 0) {
          break;  // already tracked (bootstrap + event replay)
        }
        index_[event.mdisk] = live_.size();
        live_.push_back(event.mdisk);
        break;
      }
      case MinidiskEventType::kDraining:
        // A draining mDisk is read-only: treat it as gone for write
        // targeting. (Hosts that manage drains explicitly use the richer
        // diFS integration; the aging driver just stops writing it.)
        [[fallthrough]];
      case MinidiskEventType::kDecommissioned: {
        ++decommissioned_seen_;
        auto it = index_.find(event.mdisk);
        if (it == index_.end()) {
          break;  // already removed (e.g. decommission then brick replay)
        }
        const size_t pos = it->second;
        const MinidiskId last = live_.back();
        live_[pos] = last;
        index_[last] = pos;
        live_.pop_back();
        index_.erase(it);
        break;
      }
    }
  }
}

void LiveSetTracker::BootstrapFromDevice(const SsdDevice& device) {
  for (MinidiskId id = 0; id < device.total_minidisks(); ++id) {
    if (device.IsMinidiskLive(id) && index_.count(id) == 0) {
      index_[id] = live_.size();
      live_.push_back(id);
    }
  }
}

AgingDriver::AgingDriver(SsdDevice* device, uint64_t seed,
                         const AgingConfig& config)
    : device_(device), rng_(seed), config_(config) {
  assert(device_ != nullptr);
  Status status = ValidateAgingConfig(config_);
  if (!status.ok()) {
    // Dying beats silently aging a device with a nonsense workload: a
    // zipfian_fraction of 1.3 would quietly clamp inside Rng::Bernoulli and
    // skew every lifetime figure downstream.
    std::fprintf(stderr, "AgingDriver: invalid config: %s\n",
                 status.message().c_str());
    std::abort();
  }
  tracker_.Apply(device_->TakeEvents());  // any pending events first
  tracker_.BootstrapFromDevice(*device_);  // then the current live set
}

AgingResult AgingDriver::WriteOPages(uint64_t opages) {
  AgingResult result;
  const uint64_t msize = device_->msize_opages();
  ZipfianGenerator zipf(msize == 0 ? 1 : msize, config_.zipfian_theta);
  // A real host declares a device dead after persistent errors; this also
  // guarantees the driver terminates if a device wedges without bricking.
  constexpr uint64_t kMaxConsecutiveErrors = 1000;
  uint64_t consecutive_errors = 0;
  while (result.opages_written < opages) {
    if (device_->failed() || tracker_.empty()) {
      result.device_failed = true;
      break;
    }
    MinidiskId mdisk;
    uint64_t lba;
    if (config_.working_set_fraction >= 1.0) {
      mdisk = tracker_.PickRandom(rng_);
      lba = rng_.Bernoulli(config_.zipfian_fraction) ? zipf.Next(rng_)
                                                     : rng_.UniformU64(msize);
    } else {
      // Restrict to a byte-level prefix of the live capacity (works for one
      // monolithic volume and for many mDisks alike): the untouched tail
      // models allocated-but-cold space.
      const uint64_t total = tracker_.size() * msize;
      const uint64_t working = std::max<uint64_t>(
          1, static_cast<uint64_t>(static_cast<double>(total) *
                                   config_.working_set_fraction));
      const uint64_t target = rng_.UniformU64(working);
      mdisk = tracker_.live()[target / msize];
      lba = target % msize;
    }
    StatusOr<SimDuration> status = device_->Write(mdisk, lba);
    tracker_.Apply(device_->TakeEvents());
    if (status.ok()) {
      ++result.opages_written;
      ++total_written_;
      consecutive_errors = 0;
    } else {
      ++result.write_errors;
      if (status.status().code() == StatusCode::kDeviceFailed ||
          ++consecutive_errors >= kMaxConsecutiveErrors) {
        result.device_failed = true;
        break;
      }
      // A write that failed because its target mDisk just decommissioned is
      // retried against another mDisk on the next loop iteration.
    }
  }
  result.device_failed |= device_->failed() || tracker_.empty();
  return result;
}

}  // namespace salamander
