#include "workload/traffic.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace salamander {
namespace {

constexpr double kPi = 3.14159265358979323846;

// SplitMix64 finalizer: the per-tenant object -> address scatter. A full
// avalanche mixer, so each tenant's objects land pseudo-uniformly over the
// shared address space while staying a pure function of (salt, object).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Status FractionError(const char* field, double value) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%s must be in [0, 1], got %g", field,
                value);
  return InvalidArgumentError(buffer);
}

bool InUnitInterval(double v) { return std::isfinite(v) && v >= 0.0 && v <= 1.0; }

}  // namespace

std::string_view ArrivalShapeName(ArrivalShape shape) {
  switch (shape) {
    case ArrivalShape::kSteady:
      return "steady";
    case ArrivalShape::kDiurnal:
      return "diurnal";
    case ArrivalShape::kBursty:
      return "bursty";
  }
  return "unknown";
}

Status ValidateTenantConfig(const TenantConfig& config) {
  if (config.objects == 0) {
    return InvalidArgumentError("TenantConfig: objects must be > 0");
  }
  if (!std::isfinite(config.zipf_theta) || config.zipf_theta <= 0.0 ||
      config.zipf_theta >= 1.0) {
    return InvalidArgumentError(
        "TenantConfig: zipf_theta must be in (0, 1) (YCSB convention)");
  }
  if (!InUnitInterval(config.read_fraction)) {
    return FractionError("TenantConfig: read_fraction", config.read_fraction);
  }
  if (!std::isfinite(config.ops_per_day) || config.ops_per_day < 0.0) {
    return InvalidArgumentError(
        "TenantConfig: ops_per_day must be finite and >= 0");
  }
  if (!InUnitInterval(config.diurnal_amplitude)) {
    return FractionError("TenantConfig: diurnal_amplitude",
                         config.diurnal_amplitude);
  }
  if (!std::isfinite(config.diurnal_period_days) ||
      config.diurnal_period_days <= 0.0) {
    return InvalidArgumentError(
        "TenantConfig: diurnal_period_days must be > 0");
  }
  if (!std::isfinite(config.diurnal_phase) || config.diurnal_phase < 0.0 ||
      config.diurnal_phase >= 1.0) {
    return InvalidArgumentError(
        "TenantConfig: diurnal_phase must be in [0, 1)");
  }
  if (!std::isfinite(config.burst_on_fraction) ||
      config.burst_on_fraction <= 0.0 || config.burst_on_fraction > 1.0) {
    return InvalidArgumentError(
        "TenantConfig: burst_on_fraction must be in (0, 1]");
  }
  if (!std::isfinite(config.burst_multiplier) ||
      config.burst_multiplier < 1.0) {
    return InvalidArgumentError(
        "TenantConfig: burst_multiplier must be >= 1");
  }
  if (config.burst_on_fraction * config.burst_multiplier > 1.0 + 1e-9) {
    return InvalidArgumentError(
        "TenantConfig: burst_on_fraction * burst_multiplier must be <= 1 "
        "(otherwise the off phase would need negative demand to preserve "
        "the mean)");
  }
  if (!std::isfinite(config.burst_cycle_days) ||
      config.burst_cycle_days <= 0.0) {
    return InvalidArgumentError("TenantConfig: burst_cycle_days must be > 0");
  }
  if (!InUnitInterval(config.churn_per_day)) {
    return FractionError("TenantConfig: churn_per_day", config.churn_per_day);
  }
  return OkStatus();
}

Status ValidateTrafficConfig(const TrafficConfig& config) {
  if (config.tenants.empty()) {
    return InvalidArgumentError("TrafficConfig: at least one tenant required");
  }
  for (size_t i = 0; i < config.tenants.size(); ++i) {
    Status status = ValidateTenantConfig(config.tenants[i]);
    if (!status.ok()) {
      char buffer[160];
      std::snprintf(buffer, sizeof(buffer), "tenant %zu: %s", i,
                    status.message().c_str());
      return InvalidArgumentError(buffer);
    }
  }
  return OkStatus();
}

TrafficConfig MakeUniformTraffic(uint32_t n, const TenantConfig& tenant,
                                 uint64_t seed, bool mixed_arrivals) {
  TrafficConfig config;
  config.seed = seed;
  config.tenants.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TenantConfig t = tenant;
    if (mixed_arrivals) {
      switch (i % 3) {
        case 0:
          t.arrival = ArrivalShape::kSteady;
          break;
        case 1:
          t.arrival = ArrivalShape::kDiurnal;
          // Stagger phases so the aggregate is not phase-locked; i/n covers
          // [0, 1) exactly once across the tenant set.
          t.diurnal_phase = static_cast<double>(i) / static_cast<double>(n);
          break;
        case 2:
          t.arrival = ArrivalShape::kBursty;
          break;
      }
    }
    config.tenants.push_back(t);
  }
  return config;
}

TrafficEngine::TrafficEngine(const TrafficConfig& config,
                             uint64_t address_space)
    : address_space_(address_space) {
  Status status = ValidateTrafficConfig(config);
  if (!status.ok()) {
    std::fprintf(stderr, "TrafficEngine: invalid config: %s\n",
                 status.message().c_str());
    std::abort();
  }
  if (address_space == 0) {
    std::fprintf(stderr, "TrafficEngine: address_space must be > 0\n");
    std::abort();
  }
  // Root stream: every tenant's stream and salt are forked here, in
  // tenant-ID order, so stream identity depends only on (seed, tenant id).
  Rng engine_rng(config.seed ^ 0x7e4a47f1c0de0001ULL);
  tenants_.reserve(config.tenants.size());
  for (const TenantConfig& tenant_config : config.tenants) {
    TenantState tenant(tenant_config, engine_rng.Fork());
    tenant.salt = engine_rng.ForkSeed();
    // Bursty tenants start in a full off phase drawn from their own stream
    // (staggered starts); steady/diurnal tenants draw nothing here.
    if (tenant_config.arrival == ArrivalShape::kBursty) {
      tenant.burst_on = false;
      const double off_days = tenant_config.burst_cycle_days *
                              (1.0 - tenant_config.burst_on_fraction);
      tenant.burst_days_left =
          tenant.rng.Exponential(1.0 / std::max(off_days, 1e-9));
    }
    // Analytic hot-set size: smallest rank prefix holding half the Zipf
    // mass. The partial-sum loop is bounded (<= objects, and in practice a
    // tiny prefix for theta near 1); the zeta denominator is cached.
    const double total =
        ZipfianGenerator::CachedZeta(tenant_config.objects,
                                     tenant_config.zipf_theta);
    double mass = 0.0;
    uint64_t ranks = 0;
    const uint64_t scan_cap = tenant_config.objects;
    while (ranks < scan_cap && mass < 0.5 * total) {
      ++ranks;
      mass += 1.0 / std::pow(static_cast<double>(ranks),
                             tenant_config.zipf_theta);
    }
    tenant.hot_set_objects = ranks == 0 ? 1 : ranks;
    tenants_.push_back(std::move(tenant));
  }
}

double TrafficEngine::AdvanceTenantToDay(TenantState& tenant, uint32_t day) {
  const TenantConfig& config = tenant.config;
  // Catch up phase/churn state one day at a time. Both fleet engines step a
  // device's alive days in the same sequence (dark days are jumped by both),
  // so the catch-up draws are identical in lockstep and event mode.
  const uint32_t from = any_day_seen_ ? last_day_ + 1 : day;
  for (uint32_t d = from; d <= day; ++d) {
    if (config.churn_per_day > 0.0) {
      tenant.churn_accum +=
          config.churn_per_day * static_cast<double>(config.objects);
      const uint64_t steps = static_cast<uint64_t>(tenant.churn_accum);
      if (steps > 0) {
        tenant.churn_accum -= static_cast<double>(steps);
        tenant.hot_offset = (tenant.hot_offset + steps) % config.objects;
      }
    }
    if (config.arrival == ArrivalShape::kBursty) {
      tenant.burst_days_left -= 1.0;
      while (tenant.burst_days_left <= 0.0) {
        tenant.burst_on = !tenant.burst_on;
        const double mean_days =
            config.burst_cycle_days *
            (tenant.burst_on ? config.burst_on_fraction
                             : 1.0 - config.burst_on_fraction);
        tenant.burst_days_left +=
            tenant.rng.Exponential(1.0 / std::max(mean_days, 1e-9));
      }
    }
  }
  double factor = 1.0;
  switch (config.arrival) {
    case ArrivalShape::kSteady:
      break;
    case ArrivalShape::kDiurnal:
      factor = 1.0 + config.diurnal_amplitude *
                         std::sin(2.0 * kPi *
                                  (static_cast<double>(day) /
                                       config.diurnal_period_days +
                                   config.diurnal_phase));
      break;
    case ArrivalShape::kBursty: {
      // Off-phase demand is scaled so the long-run mean stays ops_per_day:
      // on_frac * mult + (1 - on_frac) * off = 1.
      const double off =
          config.burst_on_fraction >= 1.0
              ? 1.0
              : (1.0 - config.burst_on_fraction * config.burst_multiplier) /
                    (1.0 - config.burst_on_fraction);
      factor = tenant.burst_on ? config.burst_multiplier : std::max(off, 0.0);
      break;
    }
  }
  return config.ops_per_day * factor;
}

uint64_t TrafficEngine::RankToAddress(const TenantState& tenant,
                                      uint64_t rank) const {
  // Churn drift: popularity rank r points at object (r + hot_offset) mod
  // objects, so the hot set is a contiguous window that migrates over time;
  // the salted mixer then scatters the object over the shared address space.
  const uint64_t object =
      (rank + tenant.hot_offset) % tenant.config.objects;
  return Mix64(tenant.salt ^ object) % address_space_;
}

uint64_t TrafficEngine::EmitDay(uint32_t day, std::vector<TrafficOp>* out) {
  uint64_t emitted = 0;
  const uint32_t t_count = static_cast<uint32_t>(tenants_.size());
  for (uint32_t t = 0; t < t_count; ++t) {
    TenantState& tenant = tenants_[t];
    const double mean = AdvanceTenantToDay(tenant, day);
    const uint64_t ops = mean <= 0.0 ? 0 : tenant.rng.Poisson(mean);
    const uint64_t hot_cut =
        std::max<uint64_t>(1, tenant.config.objects / 100);
    for (uint64_t i = 0; i < ops; ++i) {
      const bool is_read = tenant.rng.Bernoulli(tenant.config.read_fraction);
      const uint64_t rank = tenant.zipf.Next(tenant.rng);
      TrafficOp op;
      op.tenant = t;
      op.is_read = is_read;
      op.address = RankToAddress(tenant, rank);
      if (out != nullptr) {
        out->push_back(op);
      }
      ++tenant.ops;
      if (is_read) {
        ++tenant.reads;
        ++reads_emitted_;
      } else {
        ++tenant.writes;
        ++writes_emitted_;
      }
      tenant.hot_rank_ops += rank < hot_cut ? 1 : 0;
      ++ops_emitted_;
      ++emitted;
      // FNV-1a over the op triple — the golden-stream fingerprint.
      const auto mix = [this](uint64_t value) {
        for (int byte = 0; byte < 8; ++byte) {
          stream_digest_ ^= (value >> (byte * 8)) & 0xff;
          stream_digest_ *= 0x100000001b3ULL;
        }
      };
      mix(op.tenant);
      mix(op.is_read ? 1 : 0);
      mix(op.address);
    }
  }
  any_day_seen_ = true;
  last_day_ = day;
  return emitted;
}

uint64_t TrafficEngine::DayWriteDemand(uint32_t day) {
  uint64_t writes = 0;
  for (TenantState& tenant : tenants_) {
    const double mean = AdvanceTenantToDay(tenant, day);
    const uint64_t ops = mean <= 0.0 ? 0 : tenant.rng.Poisson(mean);
    // One Binomial draw splits the day's ops into reads and writes — the
    // same marginal distribution as EmitDay's per-op Bernoulli stream,
    // without materializing addresses the caller will not use.
    const uint64_t reads =
        tenant.config.read_fraction <= 0.0
            ? 0
            : tenant.rng.Binomial(ops, tenant.config.read_fraction);
    const uint64_t tenant_writes = ops - reads;
    tenant.ops += ops;
    tenant.reads += reads;
    tenant.writes += tenant_writes;
    ops_emitted_ += ops;
    reads_emitted_ += reads;
    writes_emitted_ += tenant_writes;
    writes += tenant_writes;
  }
  any_day_seen_ = true;
  last_day_ = day;
  return writes;
}

uint64_t TrafficEngine::TenantHotSetObjects(uint32_t t) const {
  return tenants_[t].hot_set_objects;
}

double TrafficEngine::TenantAchievedSkew(uint32_t t) const {
  const TenantState& tenant = tenants_[t];
  return tenant.ops == 0 ? 0.0
                         : static_cast<double>(tenant.hot_rank_ops) /
                               static_cast<double>(tenant.ops);
}

void TrafficEngine::CollectMetrics(MetricRegistry& registry,
                                   const std::string& prefix) const {
  const std::string base = prefix + "workload.";
  registry.GetCounter(base + "ops").Add(ops_emitted_);
  registry.GetCounter(base + "reads").Add(reads_emitted_);
  registry.GetCounter(base + "writes").Add(writes_emitted_);
  registry.GetGauge(base + "tenants").Set(static_cast<double>(tenants_.size()));
  for (uint32_t t = 0; t < static_cast<uint32_t>(tenants_.size()); ++t) {
    const TenantState& tenant = tenants_[t];
    const std::string tbase = base + "tenant." + std::to_string(t) + ".";
    registry.GetCounter(tbase + "ops").Add(tenant.ops);
    registry.GetCounter(tbase + "reads").Add(tenant.reads);
    registry.GetCounter(tbase + "writes").Add(tenant.writes);
    registry.GetGauge(tbase + "hot_set_objects")
        .Set(static_cast<double>(tenant.hot_set_objects));
    registry.GetGauge(tbase + "achieved_skew").Set(TenantAchievedSkew(t));
  }
}

}  // namespace salamander
