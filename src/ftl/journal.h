// FTL metadata journal (crash-restart recovery).
//
// A simulated append-only journal region holding the FTL's durable metadata:
// L2P updates, trims, tiredness-level / page-state changes, block retirement,
// logical-space extensions and mDisk lifecycle records. The journal models a
// dedicated metadata region (NVRAM or a reserved SLC stripe) — appends cost
// no simulated latency and no data-flash wear, so attaching it never perturbs
// an existing run's outputs.
//
// Durability contract:
//  * Records up to `synced_count()` are durable and survive any power loss.
//  * Records past it (the unsynced tail) form the bounded torn-write window:
//    an injected torn write at power loss discards Uniform[1, unsynced]
//    trailing records. A tear can never cross the sync barrier.
//  * `Ftl::SyncJournal()` advances the barrier; the FTL auto-syncs every
//    `FtlConfig::journal_max_unsynced` appends and on every host Flush().
//  * At capacity the FTL compacts: the journal is rewritten as a minimal
//    description of current state (one kMap per mapped lpo, one kPageState
//    per non-pristine page, three records per mDisk ever created) and the
//    result is fully synced — compaction is itself a durability barrier.
#ifndef SALAMANDER_FTL_JOURNAL_H_
#define SALAMANDER_FTL_JOURNAL_H_

#include <cstdint>
#include <vector>

namespace salamander {

enum class JournalRecordType : uint8_t {
  kMap = 0,      // a = lpo, b = physical slot (flush success)
  kTrim,         // a = lpo
  kPageState,    // a = fpage, b = PageState ordinal, c = tiredness level
  kBlockRetire,  // a = block (erase-status failure: permanently retired)
  kExtend,       // a = oPages appended to the logical space
  kMdiskCreate,  // a = id, b = first_lpo, c = size, d = level | regen << 8
  kMdiskDrain,   // a = id (grace period opened)
  kMdiskDrop,    // a = id, b = forced (decommission completed)
  kMapFlush,     // a = map page index, b = physical slot of the flushed
                 // L2P map-page image (bounded-L2P mode only). Appended
                 // *unsynced* after the map-page program — the torn-map-page
                 // crash surface: tearing it rolls the map page back to its
                 // previous flash image, which replay patches forward from
                 // the (already durable) delta records.
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kMap;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t d = 0;
};

class FtlJournal {
 public:
  explicit FtlJournal(uint64_t capacity_records)
      : capacity_(capacity_records) {}

  void Append(const JournalRecord& record) {
    records_.push_back(record);
    ++appends_;
  }

  // Marks everything appended so far durable.
  void Sync() {
    if (synced_count_ != records_.size()) {
      synced_count_ = records_.size();
      ++syncs_;
    }
  }

  // Discards up to `n` records from the unsynced tail (torn write at power
  // loss); returns the records actually torn so the caller can mark the
  // affected logical pages rolled back. Never crosses the sync barrier.
  std::vector<JournalRecord> TearTail(uint64_t n) {
    const uint64_t torn = n < unsynced() ? n : unsynced();
    std::vector<JournalRecord> out(records_.end() - torn, records_.end());
    records_.resize(records_.size() - torn);
    torn_records_ += torn;
    return out;
  }

  // Replaces the contents with a compacted snapshot; the result is durable.
  void ReplaceWith(std::vector<JournalRecord> compacted) {
    records_ = std::move(compacted);
    synced_count_ = records_.size();
    ++compactions_;
  }

  const std::vector<JournalRecord>& records() const { return records_; }
  uint64_t size() const { return records_.size(); }
  uint64_t synced_count() const { return synced_count_; }
  uint64_t unsynced() const { return records_.size() - synced_count_; }
  uint64_t capacity() const { return capacity_; }
  bool AtCapacity() const { return records_.size() >= capacity_; }

  uint64_t appends() const { return appends_; }
  uint64_t syncs() const { return syncs_; }
  uint64_t compactions() const { return compactions_; }
  uint64_t torn_records() const { return torn_records_; }

 private:
  uint64_t capacity_;
  std::vector<JournalRecord> records_;
  uint64_t synced_count_ = 0;
  uint64_t appends_ = 0;
  uint64_t syncs_ = 0;
  uint64_t compactions_ = 0;
  uint64_t torn_records_ = 0;
};

}  // namespace salamander

#endif  // SALAMANDER_FTL_JOURNAL_H_
