#include "ftl/ftl.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace salamander {

namespace {

// Bound on GC rounds per trigger; progress resumes on the next host op if a
// single trigger cannot reach the watermark (e.g. near-full device).
constexpr uint32_t kMaxGcRoundsPerTrigger = 16;

// Journal capacity: a full compacted snapshot (one kMap per oPage, one
// kPageState per fPage, three records per mDisk — bounded by oPages) plus
// slack so compaction is not retriggered immediately.
uint64_t JournalCapacity(const FtlConfig& config) {
  if (config.journal_capacity_records > 0) {
    return config.journal_capacity_records;
  }
  uint64_t capacity = config.geometry.total_opages() +
                      config.geometry.total_fpages() +
                      config.geometry.total_blocks() + 4096;
  if (config.l2p_cache_entries > 0) {
    // Bounded-L2P compaction additionally emits one kMapFlush per map page.
    const uint64_t entries = config.l2p_entries_per_map_page > 0
                                 ? config.l2p_entries_per_map_page
                                 : config.geometry.opage_bytes / 8;
    capacity += (config.geometry.total_opages() + entries - 1) / entries;
  }
  return capacity;
}

}  // namespace

Ftl::Ftl(const FtlConfig& config)
    : config_(config),
      chip_(std::make_unique<FlashChip>(config.geometry, config.wear,
                                        config.latency, config.seed)),
      ladder_(ComputeTirednessLadder(config.ecc_geometry)),
      rng_(config.seed ^ 0x9e3779b97f4a7c15ULL),
      journal_(JournalCapacity(config)) {
  assert(config_.geometry.Valid());
  assert(config_.geometry.opages_per_fpage ==
             config_.ecc_geometry.opages_per_fpage &&
         "flash geometry and ECC geometry must agree");
  assert((config_.retirement == RetirementGranularity::kPage ||
          config_.max_usable_level == 0) &&
         "block-granular retirement implies a fixed L0 ECC");
  assert(config_.max_usable_level < config_.geometry.opages_per_fpage);
  assert(config_.gc_low_watermark_blocks >= 2 &&
         "GC needs at least two blocks of headroom");

  const uint64_t fpages = config_.geometry.total_fpages();
  const uint64_t blocks = config_.geometry.total_blocks();
  page_level_.assign(fpages, 0);
  page_state_.assign(fpages, PageState::kInService);
  limbo_counts_.assign(config_.geometry.opages_per_fpage, 0);
  limbo_pages_.assign(config_.geometry.opages_per_fpage, {});
  usable_opages_ = fpages * config_.geometry.opages_per_fpage;
  reverse_.assign(config_.geometry.total_opages(), kSlotFree);
  block_state_.assign(blocks, BlockState::kFree);
  block_valid_.assign(blocks, 0);
  in_use_listed_.assign(blocks, 0);
  for (BlockIndex b = 0; b < blocks; ++b) {
    free_pool_.emplace(0, b);
  }
  free_blocks_ = blocks;
  stats_.reads_by_level.assign(config_.geometry.opages_per_fpage, 0);

  if (config_.l2p_cache_entries > 0) {
    l2p_entries_per_page_ = config_.l2p_entries_per_map_page > 0
                                ? config_.l2p_entries_per_map_page
                                : config_.geometry.opage_bytes / 8;
    assert(l2p_entries_per_page_ > 0 && "map pages must hold >= 1 entry");
    l2p_capacity_pages_ = std::max<uint64_t>(
        1, config_.l2p_cache_entries / l2p_entries_per_page_);
  }
}

uint64_t Ftl::ExtendLogicalSpace(uint64_t opages) {
  const uint64_t first = mapping_.size();
  mapping_.resize(mapping_.size() + opages, kUnmapped);
  if (l2p_enabled()) {
    L2pGrow();
  }
  JournalAppend(JournalRecord{JournalRecordType::kExtend, opages, 0, 0, 0});
  return first;
}

// ---------------------------------------------------------------------------
// Host I/O
// ---------------------------------------------------------------------------

StatusOr<SimDuration> Ftl::Write(uint64_t lpo) {
  if (lpo >= mapping_.size()) {
    return OutOfRangeError("Write: lpo " + std::to_string(lpo));
  }
  SimDuration latency = 0;
  ++stats_.host_writes;
  if (l2p_enabled()) {
    L2pTouch(lpo, /*make_dirty=*/true, latency);
  }
  SALA_RETURN_IF_ERROR(BufferWrite(lpo, Stream::kHost, latency));
  if (l2p_enabled()) {
    L2pEvictToCapacity(latency);
  }
  return latency;
}

StatusOr<ReadResult> Ftl::Read(uint64_t lpo) {
  if (lpo >= mapping_.size()) {
    return OutOfRangeError("Read: lpo " + std::to_string(lpo));
  }
  ++stats_.host_reads;
  SimDuration l2p_latency = 0;
  if (l2p_enabled()) {
    L2pTouch(lpo, /*make_dirty=*/false, l2p_latency);
    L2pEvictToCapacity(l2p_latency);
  }
  // Re-read after the L2P access: a dirty-map write-back above can trigger
  // GC, which may relocate this very page into the buffer.
  const uint64_t entry = mapping_[lpo];
  if (entry == kUnmapped) {
    return NotFoundError("Read: lpo " + std::to_string(lpo) + " unmapped");
  }
  if (IsBuffered(entry)) {
    ++stats_.buffer_hits;
    return ReadResult{.latency = config_.buffer_read_latency + l2p_latency,
                      .tiredness_level = 0,
                      .retries = 0,
                      .buffer_hit = true};
  }
  const FPageIndex fpage = config_.geometry.FPageOfSlot(entry);
  const unsigned level = page_level_[fpage];
  SALA_ASSIGN_OR_RETURN(
      ReadOutcome outcome,
      chip_->ReadFPage(fpage, EccForOPageRead(level),
                       config_.geometry.opage_bytes));
  stats_.read_retries += outcome.retries;
  if (level < stats_.reads_by_level.size()) {
    ++stats_.reads_by_level[level];
  }
  if (!outcome.correctable) {
    ++stats_.uncorrectable_reads;
    return DataLossError("Read: uncorrectable at lpo " + std::to_string(lpo));
  }
  if (outcome.silent_corrupt) {
    ++stats_.silent_corrupt_fpage_reads;
  }
  return ReadResult{.latency = outcome.latency +
                               DedicatedEccReadPenalty(level) + l2p_latency,
                    .tiredness_level = level,
                    .retries = outcome.retries,
                    .buffer_hit = false,
                    .payload_corrupt = outcome.silent_corrupt};
}

StatusOr<RangeReadResult> Ftl::ReadRange(uint64_t first_lpo, uint64_t count) {
  if (count == 0 || first_lpo + count > mapping_.size()) {
    return OutOfRangeError("ReadRange: [" + std::to_string(first_lpo) + ", +" +
                           std::to_string(count) + ")");
  }
  RangeReadResult result;
  FPageIndex last_fpage = static_cast<FPageIndex>(-1);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t lpo = first_lpo + i;
    ++stats_.host_reads;
    if (l2p_enabled()) {
      // Over-admit across the range; one eviction pass runs after the loop.
      L2pTouch(lpo, /*make_dirty=*/false, result.latency);
    }
    const uint64_t entry = mapping_[lpo];
    if (entry == kUnmapped) {
      return NotFoundError("ReadRange: lpo " + std::to_string(lpo));
    }
    if (IsBuffered(entry)) {
      ++stats_.buffer_hits;
      ++result.buffer_hits;
      result.latency += config_.buffer_read_latency;
      continue;
    }
    const FPageIndex fpage = config_.geometry.FPageOfSlot(entry);
    const unsigned level = page_level_[fpage];
    result.max_level = std::max(result.max_level, level);
    if (level < stats_.reads_by_level.size()) {
      ++stats_.reads_by_level[level];
    }
    if (fpage == last_fpage) {
      // Same flash page as the previous oPage: the data is already in the
      // plane's page register; only the channel transfer repeats.
      result.latency +=
          config_.latency.TransferTime(config_.geometry.opage_bytes);
      continue;
    }
    SALA_ASSIGN_OR_RETURN(
        ReadOutcome outcome,
        chip_->ReadFPage(fpage, EccForOPageRead(level),
                         config_.geometry.opage_bytes));
    stats_.read_retries += outcome.retries;
    if (!outcome.correctable) {
      ++stats_.uncorrectable_reads;
      return DataLossError("ReadRange: uncorrectable at lpo " +
                           std::to_string(lpo));
    }
    if (outcome.silent_corrupt) {
      // Counted at observation time so corrupt reads performed before a later
      // abort (natural kDataLoss / kNotFound) are never lost from the stat.
      ++stats_.silent_corrupt_fpage_reads;
      ++result.corrupt_fpage_reads;
    }
    ++result.fpage_reads;
    result.latency += outcome.latency + DedicatedEccReadPenalty(level);
    last_fpage = fpage;
  }
  if (l2p_enabled()) {
    L2pEvictToCapacity(result.latency);
  }
  return result;
}

Status Ftl::Trim(uint64_t lpo) {
  if (lpo >= mapping_.size()) {
    return OutOfRangeError("Trim: lpo " + std::to_string(lpo));
  }
  if (!rolled_back_.empty()) {
    rolled_back_.erase(lpo);  // the trim supersedes the lost write
  }
  if (l2p_enabled()) {
    // Trim has no latency channel; the map-fault and write-back costs of
    // this access are modeled for wear and cache state but not billed.
    SimDuration l2p_latency = 0;
    L2pTouch(lpo, /*make_dirty=*/mapping_[lpo] != kUnmapped, l2p_latency);
    L2pEvictToCapacity(l2p_latency);
  }
  const uint64_t entry = mapping_[lpo];
  if (entry == kUnmapped) {
    return OkStatus();
  }
  if (IsBuffered(entry)) {
    // The deque entry goes stale and is skipped at flush time.
    --frontier(entry == kInBufferHost ? Stream::kHost : Stream::kGc)
          .buffer_valid;
  } else {
    InvalidateSlot(entry);
  }
  mapping_[lpo] = kUnmapped;
  --mapped_opages_;
  JournalAppend(JournalRecord{JournalRecordType::kTrim, lpo, 0, 0, 0});
  return OkStatus();
}

Status Ftl::Flush() {
  SimDuration latency = 0;
  for (Stream stream : {Stream::kHost, Stream::kGc}) {
    while (frontier(stream).buffer_valid > 0) {
      SALA_RETURN_IF_ERROR(
          FlushToTarget(stream, /*allow_partial=*/true, latency));
    }
  }
  if (l2p_enabled()) {
    // Restore the window bound before the barrier so any kMapFlush records
    // written back here are covered by the sync below.
    SimDuration l2p_latency = 0;  // Flush() reports no latency
    L2pEvictToCapacity(l2p_latency);
  }
  // Host flush is the durability barrier: everything journaled so far
  // (including the kMap records the drain above produced) becomes durable.
  journal_.Sync();
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Status Ftl::BufferWrite(uint64_t lpo, Stream stream, SimDuration& latency) {
  if (stream == Stream::kHost && !rolled_back_.empty()) {
    rolled_back_.erase(lpo);  // fresh host data supersedes the lost write
  }
  const uint64_t entry = mapping_[lpo];
  if (IsBuffered(entry)) {
    // Overwrite of a still-buffered page: coalesces in place (wherever it
    // already sits) — but still try to drain that stream. Without this, a
    // buffer backlog from an earlier failed flush would never retry as long
    // as the workload keeps hitting already-buffered pages.
    return FlushIfReady(
        entry == kInBufferHost ? Stream::kHost : Stream::kGc, latency);
  }
  if (entry == kUnmapped) {
    ++mapped_opages_;
  } else {
    InvalidateSlot(entry);  // previous version dies
  }
  mapping_[lpo] = BufferSentinel(stream);
  frontier(stream).buffer.push_back(lpo);
  ++frontier(stream).buffer_valid;
  if (stream == Stream::kGc) {
    ++stats_.gc_relocations;
  }
  return FlushIfReady(stream, latency);
}

Status Ftl::FlushIfReady(Stream stream, SimDuration& latency) {
  Frontier& f = frontier(stream);
  while (f.buffer_valid > 0) {
    SALA_ASSIGN_OR_RETURN(FPageIndex target,
                          NextProgramTarget(stream, latency));
    const uint64_t capacity = PageCapacity(target);
    if (f.buffer_valid >= capacity) {
      SALA_RETURN_IF_ERROR(
          FlushToTarget(stream, /*allow_partial=*/false, latency));
      continue;
    }
    if (f.buffer.size() > config_.write_buffer_opages) {
      // Buffer overflow (stale-entry bloat or tiny buffer): pad out a page.
      SALA_RETURN_IF_ERROR(
          FlushToTarget(stream, /*allow_partial=*/true, latency));
      continue;
    }
    break;
  }
  return OkStatus();
}

Status Ftl::FlushToTarget(Stream stream, bool allow_partial,
                          SimDuration& latency) {
  Frontier& f = frontier(stream);
  for (bool first_attempt = true;; first_attempt = false) {
    FPageIndex target = 0;
    for (;;) {
      SALA_ASSIGN_OR_RETURN(target, NextProgramTarget(stream, latency));
      bool consumed = false;
      SALA_RETURN_IF_ERROR(
          MaybeProgramParityPage(stream, target, consumed, latency));
      if (!consumed) {
        break;
      }
    }
    const uint64_t capacity = PageCapacity(target);
    // The under-fill check only applies to the first candidate page: a retry
    // after a program failure may land on a larger page than the one the
    // caller's readiness check was based on, and the batch is already
    // committed to flushing.
    if (first_attempt && !allow_partial && f.buffer_valid < capacity) {
      return InternalError("FlushToTarget: buffer under-filled");
    }
    // Gather up to `capacity` live buffer entries, discarding stale ones.
    // A trim-then-rewrite can leave two deque entries for one lpo that both
    // still look "buffered" at pop time, so dedupe within the batch (it holds
    // at most opages_per_fpage entries; linear scan is fine).
    std::vector<uint64_t> batch;
    batch.reserve(capacity);
    while (batch.size() < capacity && !f.buffer.empty()) {
      const uint64_t lpo = f.buffer.front();
      f.buffer.pop_front();
      if (lpo < mapping_.size() && mapping_[lpo] == BufferSentinel(stream) &&
          std::find(batch.begin(), batch.end(), lpo) == batch.end()) {
        batch.push_back(lpo);
      }
    }
    if (batch.empty()) {
      return OkStatus();  // everything was stale; nothing to program
    }
    StatusOr<SimDuration> program_time = chip_->ProgramFPage(target);
    if (!program_time.ok()) {
      // Keep the gathered entries flushable: restore them to the front of
      // the deque in their original order.
      for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
        f.buffer.push_front(*it);
      }
      if (program_time.status().code() != StatusCode::kDataLoss) {
        return program_time.status();
      }
      // Program-status failure: the target page is consumed but holds
      // nothing readable. Retire it, step past it, and re-place the batch
      // on the next programmable page.
      ++stats_.program_failures;
      RetireInServicePage(target, page_level_[target], kDeadLevel);
      f.next_page = static_cast<uint32_t>(
                        target - config_.geometry.FirstFPageOfBlock(
                                     config_.geometry.BlockOfFPage(target))) +
                    1;
      continue;
    }
    latency += *program_time;
    ++stats_.flushes;
    if (config_.ecc_placement == EccPlacement::kDedicated) {
      const unsigned level = page_level_[target];
      if (level > 0 && level < 8) {
        // Accrue parity debt: level L data pages need L parity pages per
        // (4 - L) data pages to reach the same overall code rate as inline.
        f.data_since_parity[level] += level;
      }
    }
    const BlockIndex block = config_.geometry.BlockOfFPage(target);
    for (size_t k = 0; k < batch.size(); ++k) {
      const OPageSlot slot = config_.geometry.FirstSlotOfFPage(target) + k;
      mapping_[batch[k]] = slot;
      reverse_[slot] = batch[k];
      ++block_valid_[block];
    }
    for (size_t k = 0; k < batch.size(); ++k) {
      JournalAppend(JournalRecord{JournalRecordType::kMap, batch[k],
                                  config_.geometry.FirstSlotOfFPage(target) + k,
                                  0, 0});
    }
    if (l2p_enabled()) {
      // The batch's L2P entries changed (buffered -> flash slot); mark their
      // map pages dirty. Internal touch: over-admits, never evicts — the
      // enclosing public op restores the window bound.
      for (size_t k = 0; k < batch.size(); ++k) {
        L2pTouch(batch[k], /*make_dirty=*/true, latency);
      }
    }
    f.buffer_valid -= batch.size();
    f.next_page = static_cast<uint32_t>(
                      target - config_.geometry.FirstFPageOfBlock(block)) +
                  1;
    return OkStatus();
  }
}

StatusOr<FPageIndex> Ftl::NextProgramTarget(Stream stream,
                                            SimDuration& latency) {
  Frontier& f = frontier(stream);
  for (;;) {
    if (!f.has_active_block) {
      SALA_RETURN_IF_ERROR(AllocateActiveBlock(stream, latency));
    }
    const FPageIndex first =
        config_.geometry.FirstFPageOfBlock(f.active_block);
    while (f.next_page < config_.geometry.fpages_per_block) {
      const FPageIndex fpage = first + f.next_page;
      if (page_state_[fpage] == PageState::kInService) {
        return fpage;
      }
      ++f.next_page;  // skip limbo/dead pages
    }
    // Active block exhausted.
    block_state_[f.active_block] = BlockState::kInUse;
    if (!in_use_listed_[f.active_block]) {
      in_use_blocks_.push_back(f.active_block);
      in_use_listed_[f.active_block] = 1;
    }
    f.has_active_block = false;
  }
}

Status Ftl::AllocateActiveBlock(Stream stream, SimDuration& latency) {
  Frontier& f = frontier(stream);
  SALA_RETURN_IF_ERROR(MaybeGarbageCollect(latency));
  if (f.has_active_block) {
    // GC ran above and its relocation flushes already allocated this
    // stream's active block; reuse it instead of orphaning it.
    return OkStatus();
  }
  // The last free block is reserved for GC relocation: a GC round moves at
  // most one block's worth of valid data, so entering a round with one free
  // block guarantees it completes and returns the erased victim. Host-path
  // allocations that would breach the reserve fail instead — the device is
  // genuinely out of space and the layer above must shed capacity.
  if (!in_gc_ && free_blocks_ < 2) {
    return ResourceExhaustedError(
        "AllocateActiveBlock: free blocks reserved for GC");
  }
  while (!free_pool_.empty()) {
    const auto [pec, block] = free_pool_.top();
    free_pool_.pop();
    if (block_state_[block] != BlockState::kFree ||
        chip_->BlockPec(block) != pec) {
      continue;  // stale entry
    }
    block_state_[block] = BlockState::kActive;
    f.active_block = block;
    f.next_page = 0;
    f.has_active_block = true;
    --free_blocks_;
    return OkStatus();
  }
  return ResourceExhaustedError("AllocateActiveBlock: no free blocks");
}

Status Ftl::MaybeGarbageCollect(SimDuration& latency) {
  if (in_gc_) {
    return OkStatus();  // GC already running further up the stack
  }
  uint32_t rounds = 0;
  while (free_blocks_ < config_.gc_low_watermark_blocks &&
         rounds < kMaxGcRoundsPerTrigger) {
    Status status = GarbageCollectOnce(latency);
    if (!status.ok()) {
      // Out of victims: fine as long as something remains allocatable.
      return free_blocks_ > 0 ? OkStatus() : status;
    }
    ++rounds;
  }
  return OkStatus();
}

BlockIndex Ftl::PickGcVictim() {
  // Compact stale entries out of the candidate list, then pick greedily
  // (fewest valid oPages). For large devices, sample instead of scanning.
  std::erase_if(in_use_blocks_, [this](BlockIndex b) {
    if (block_state_[b] != BlockState::kInUse) {
      in_use_listed_[b] = 0;
      return true;
    }
    return false;
  });
  if (in_use_blocks_.empty()) {
    return static_cast<BlockIndex>(-1);
  }
  constexpr size_t kSampleSize = 128;
  BlockIndex best = static_cast<BlockIndex>(-1);
  uint32_t best_valid = UINT32_MAX;
  if (in_use_blocks_.size() <= kSampleSize) {
    for (BlockIndex b : in_use_blocks_) {
      if (block_valid_[b] < best_valid) {
        best_valid = block_valid_[b];
        best = b;
      }
    }
  } else {
    for (size_t i = 0; i < kSampleSize; ++i) {
      const BlockIndex b =
          in_use_blocks_[rng_.UniformU64(in_use_blocks_.size())];
      if (block_valid_[b] < best_valid) {
        best_valid = block_valid_[b];
        best = b;
      }
    }
  }
  return best;
}

Status Ftl::GarbageCollectOnce(SimDuration& latency) {
  const BlockIndex victim = PickGcVictim();
  if (victim == static_cast<BlockIndex>(-1)) {
    return ResourceExhaustedError("GC: no victim block");
  }
  in_gc_ = true;
  // Relocate every valid oPage through the write path (the NV buffer makes
  // this safe: the erase below only happens after re-buffering).
  const OPageSlot first_slot =
      config_.geometry.FirstSlotOfFPage(config_.geometry.FirstFPageOfBlock(victim));
  const uint64_t slots = static_cast<uint64_t>(config_.geometry.fpages_per_block) *
                         config_.geometry.opages_per_fpage;
  Status status = OkStatus();
  for (uint64_t s = 0; s < slots && status.ok(); ++s) {
    const uint64_t lpo = reverse_[first_slot + s];
    if (lpo == kSlotFree) {
      continue;
    }
    if (IsMapLpo(lpo)) {
      // Relocate a live map-page image: re-flush the page's current durable
      // content to a fresh slot (a real program plus journaled kMapFlush);
      // the old slot in the victim is invalidated by the flush.
      status = FlushMapPage(lpo - kMapLpoBase, latency);
    } else {
      status = BufferWrite(lpo, Stream::kGc, latency);
    }
  }
  if (status.ok()) {
    status = EraseAndRecycle(victim, latency);
  }
  in_gc_ = false;
  return status;
}

Status Ftl::EraseAndRecycle(BlockIndex block, SimDuration& latency) {
  assert(block_valid_[block] == 0 && "erasing a block with valid data");
  if (l2p_enabled() && UnsyncedTailHasMapFlush()) {
    // An unsynced kMapFlush can still be torn at power loss, rolling its map
    // page back to the *previous* flash image — which this erase might be
    // about to destroy. Make the newest image durable before any erase.
    journal_.Sync();
  }
  StatusOr<SimDuration> erase_time = chip_->EraseBlock(block);
  if (!erase_time.ok()) {
    if (erase_time.status().code() != StatusCode::kDataLoss) {
      return erase_time.status();
    }
    // Erase-status failure: the block can never be programmed again. Retire
    // every remaining page (emitting the usual tiredness transitions so the
    // minidisk layer accounts the capacity loss) and take it out of service.
    ++stats_.erase_failures;
    const FPageIndex first_page = config_.geometry.FirstFPageOfBlock(block);
    for (uint32_t i = 0; i < config_.geometry.fpages_per_block; ++i) {
      const FPageIndex fpage = first_page + i;
      if (page_state_[fpage] == PageState::kInService) {
        RetireInServicePage(fpage, page_level_[fpage], kDeadLevel);
      } else if (page_state_[fpage] == PageState::kLimbo) {
        AdvanceLimboPage(fpage, page_level_[fpage], kDeadLevel);
      }
    }
    block_state_[block] = BlockState::kRetired;
    ++retired_blocks_;
    // Retirement is rare and irreversible; make it durable immediately (the
    // page retirements above journaled their own kPageState records).
    JournalAppend(JournalRecord{JournalRecordType::kBlockRetire,
                                static_cast<uint64_t>(block), 0, 0, 0});
    journal_.Sync();
    return OkStatus();
  }
  latency += *erase_time;
  ++stats_.erases;
  ApplyLevelTransitions(block);

  bool any_in_service = false;
  bool any_limbo = false;
  const FPageIndex first = config_.geometry.FirstFPageOfBlock(block);
  for (uint32_t i = 0; i < config_.geometry.fpages_per_block; ++i) {
    const PageState state = page_state_[first + i];
    any_in_service |= (state == PageState::kInService);
    any_limbo |= (state == PageState::kLimbo);
  }
  if (any_in_service) {
    block_state_[block] = BlockState::kFree;
    free_pool_.emplace(chip_->BlockPec(block), block);
    ++free_blocks_;
  } else if (any_limbo) {
    block_state_[block] = BlockState::kParked;
  } else {
    block_state_[block] = BlockState::kRetired;
    ++retired_blocks_;
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Tiredness
// ---------------------------------------------------------------------------

unsigned Ftl::ComputeLevel(FPageIndex fpage, unsigned current) const {
  const double rber = chip_->PageRber(fpage);
  for (unsigned level = current; level <= config_.max_usable_level; ++level) {
    if (rber <= config_.retire_margin * ladder_[level].max_tolerable_rber) {
      return level;
    }
  }
  return kDeadLevel;
}

void Ftl::ApplyLevelTransitions(BlockIndex block) {
  const FPageIndex first = config_.geometry.FirstFPageOfBlock(block);
  const uint32_t n = config_.geometry.fpages_per_block;

  if (config_.retirement != RetirementGranularity::kPage) {
    // Block-granular policies: evaluate the block as a whole against L0.
    double worst = 0.0;
    double sum = 0.0;
    for (uint32_t i = 0; i < n; ++i) {
      const double rber = chip_->PageRber(first + i);
      worst = std::max(worst, rber);
      sum += rber;
    }
    const double tol = config_.retire_margin * ladder_[0].max_tolerable_rber;
    const bool retire =
        config_.retirement == RetirementGranularity::kBlockWorstPage
            ? worst > tol
            : (sum / n) > tol;
    if (retire) {
      for (uint32_t i = 0; i < n; ++i) {
        const FPageIndex fpage = first + i;
        if (page_state_[fpage] == PageState::kInService) {
          RetireInServicePage(fpage, page_level_[fpage], kDeadLevel);
        }
      }
    }
    return;
  }

  for (uint32_t i = 0; i < n; ++i) {
    const FPageIndex fpage = first + i;
    if (page_state_[fpage] == PageState::kDead) {
      continue;
    }
    const unsigned current = page_level_[fpage];
    const unsigned fresh = ComputeLevel(fpage, current);
    if (fresh == current) {
      continue;
    }
    if (page_state_[fpage] == PageState::kInService) {
      RetireInServicePage(fpage, current, fresh);
    } else {
      AdvanceLimboPage(fpage, current, fresh);
    }
  }
}

void Ftl::RetireInServicePage(FPageIndex fpage, unsigned old_level,
                              unsigned new_level) {
  usable_opages_ -= config_.geometry.opages_per_fpage - old_level;
  if (new_level <= config_.max_usable_level) {
    page_state_[fpage] = PageState::kLimbo;
    page_level_[fpage] = static_cast<uint8_t>(new_level);
    ++limbo_counts_[new_level];
    limbo_pages_[new_level].push_back(fpage);
  } else {
    page_state_[fpage] = PageState::kDead;
    page_level_[fpage] = static_cast<uint8_t>(kDeadLevel);
    new_level = kDeadLevel;
    ++dead_fpages_;
  }
  transitions_.push_back(PageTransition{fpage, old_level, new_level});
  JournalPageState(fpage);
}

void Ftl::AdvanceLimboPage(FPageIndex fpage, unsigned old_level,
                           unsigned new_level) {
  --limbo_counts_[old_level];
  // The limbo_pages_ entry at the old level goes stale; ClaimLimboCapacity
  // validates level and state before using an entry.
  if (new_level <= config_.max_usable_level) {
    page_level_[fpage] = static_cast<uint8_t>(new_level);
    ++limbo_counts_[new_level];
    limbo_pages_[new_level].push_back(fpage);
  } else {
    page_state_[fpage] = PageState::kDead;
    page_level_[fpage] = static_cast<uint8_t>(kDeadLevel);
    new_level = kDeadLevel;
    ++dead_fpages_;
  }
  transitions_.push_back(PageTransition{fpage, old_level, new_level});
  JournalPageState(fpage);
}

// ---------------------------------------------------------------------------
// Capacity accounting
// ---------------------------------------------------------------------------

uint64_t Ftl::limbo_fpages(unsigned level) const {
  return level < limbo_counts_.size() ? limbo_counts_[level] : 0;
}

uint64_t Ftl::reclaimable_limbo_opages() const {
  uint64_t total = 0;
  for (unsigned level = 0; level <= config_.max_usable_level; ++level) {
    total +=
        (config_.geometry.opages_per_fpage - level) * limbo_counts_[level];
  }
  return total;
}

uint64_t Ftl::ClaimLimboCapacity(uint64_t opages) {
  uint64_t claimed = 0;
  for (unsigned level = 0;
       level <= config_.max_usable_level && claimed < opages; ++level) {
    auto& pool = limbo_pages_[level];
    while (!pool.empty() && claimed < opages) {
      const FPageIndex fpage = pool.back();
      pool.pop_back();
      if (page_state_[fpage] != PageState::kLimbo ||
          page_level_[fpage] != level) {
        continue;  // stale entry
      }
      page_state_[fpage] = PageState::kInService;
      const uint64_t capacity = config_.geometry.opages_per_fpage - level;
      usable_opages_ += capacity;
      claimed += capacity;
      --limbo_counts_[level];
      JournalPageState(fpage);
      ReactivateIfParked(config_.geometry.BlockOfFPage(fpage));
    }
  }
  return claimed;
}

void Ftl::ReactivateIfParked(BlockIndex block) {
  if (block_state_[block] == BlockState::kParked) {
    block_state_[block] = BlockState::kFree;
    free_pool_.emplace(chip_->BlockPec(block), block);
    ++free_blocks_;
  }
}

uint64_t Ftl::ForecastTiringOPages(double pec_horizon_fraction) const {
  uint64_t tiring = 0;
  for (FPageIndex fpage = 0; fpage < config_.geometry.total_fpages();
       ++fpage) {
    if (page_state_[fpage] != PageState::kInService) {
      continue;
    }
    const unsigned level = page_level_[fpage];
    const double retire_rber =
        config_.retire_margin * ladder_[level].max_tolerable_rber;
    const double retire_pec = chip_->PecUntilRber(fpage, retire_rber);
    const double current_pec = static_cast<double>(
        chip_->BlockPec(config_.geometry.BlockOfFPage(fpage)));
    // +1.0 so fresh blocks (PEC 0) still look ahead at least one cycle.
    if (retire_pec <= (current_pec + 1.0) * (1.0 + pec_horizon_fraction)) {
      tiring += config_.geometry.opages_per_fpage - level;
    }
  }
  return tiring;
}

Ftl::EventEstimate Ftl::EstimateNextEvent() const {
  EventEstimate estimate;
  const uint64_t block_opages =
      static_cast<uint64_t>(config_.geometry.fpages_per_block) *
      config_.geometry.opages_per_fpage;
  const uint64_t watermark = config_.gc_low_watermark_blocks;
  estimate.opages_to_gc_pressure =
      free_blocks_ > watermark ? (free_blocks_ - watermark) * block_opages
                               : 0;
  // Wear horizon: P/E cycles of headroom on the most-worn in-service page.
  // One more cycle on a block costs at least block_opages host writes (a
  // full block program), so headroom-in-cycles converts to a write budget.
  double min_cycles = -1.0;
  for (FPageIndex fpage = 0; fpage < config_.geometry.total_fpages();
       ++fpage) {
    if (page_state_[fpage] != PageState::kInService) {
      continue;
    }
    const unsigned level = page_level_[fpage];
    const double retire_rber =
        config_.retire_margin * ladder_[level].max_tolerable_rber;
    const double retire_pec = chip_->PecUntilRber(fpage, retire_rber);
    const double current_pec = static_cast<double>(
        chip_->BlockPec(config_.geometry.BlockOfFPage(fpage)));
    const double cycles = std::max(0.0, retire_pec - current_pec);
    if (min_cycles < 0.0 || cycles < min_cycles) {
      min_cycles = cycles;
    }
  }
  if (min_cycles < 0.0) {
    estimate.opages_to_wear_event = UINT64_MAX;
  } else {
    // Clamp before multiplying so pathological wear curves cannot overflow.
    const double budget =
        std::min(min_cycles, 1.0e15) * static_cast<double>(block_opages);
    estimate.opages_to_wear_event =
        budget >= 1.8e19 ? UINT64_MAX : static_cast<uint64_t>(budget);
  }
  // Bounded L2P: map-page write-back consumes program budget alongside host
  // data, so N host oPages of headroom arrive sooner. Derate both horizons
  // by the observed host share of total programs.
  if (l2p_enabled() && l2p_stats_.map_writes > 0 && stats_.host_writes > 0) {
    const double host = static_cast<double>(stats_.host_writes);
    const double map_opages =
        static_cast<double>(l2p_stats_.map_writes) *
        config_.geometry.opages_per_fpage;
    const double share = host / (host + map_opages);
    estimate.opages_to_gc_pressure = static_cast<uint64_t>(
        static_cast<double>(estimate.opages_to_gc_pressure) * share);
    if (estimate.opages_to_wear_event != UINT64_MAX) {
      estimate.opages_to_wear_event = static_cast<uint64_t>(
          static_cast<double>(estimate.opages_to_wear_event) * share);
    }
  }
  return estimate;
}

uint64_t Ftl::gc_reserve_opages() const {
  return static_cast<uint64_t>(config_.gc_low_watermark_blocks + 1) *
         config_.geometry.fpages_per_block * config_.geometry.opages_per_fpage;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

void Ftl::InvalidateSlot(OPageSlot slot) {
  assert(reverse_[slot] != kSlotFree);
  reverse_[slot] = kSlotFree;
  --block_valid_[config_.geometry.BlockOfFPage(
      config_.geometry.FPageOfSlot(slot))];
}

Status Ftl::MaybeProgramParityPage(Stream stream, FPageIndex target,
                                   bool& consumed, SimDuration& latency) {
  consumed = false;
  if (config_.ecc_placement != EccPlacement::kDedicated) {
    return OkStatus();
  }
  const unsigned level = page_level_[target];
  if (level == 0 || level >= 8) {
    return OkStatus();
  }
  Frontier& f = frontier(stream);
  const uint32_t threshold = config_.geometry.opages_per_fpage - level;
  if (f.data_since_parity[level] < threshold) {
    return OkStatus();
  }
  // This tired page becomes a dedicated parity page: a real program, but no
  // logical slots — GC sees it as holding nothing valid and simply erases it
  // with the block.
  StatusOr<SimDuration> program_time = chip_->ProgramFPage(target);
  const BlockIndex block = config_.geometry.BlockOfFPage(target);
  if (!program_time.ok()) {
    if (program_time.status().code() != StatusCode::kDataLoss) {
      return program_time.status();
    }
    // Injected program failure on the parity page: retire it and report the
    // page consumed so the caller moves on; the parity debt stays owed and
    // lands on the next eligible tired page.
    ++stats_.program_failures;
    RetireInServicePage(target, level, kDeadLevel);
    f.next_page = static_cast<uint32_t>(
                      target - config_.geometry.FirstFPageOfBlock(block)) +
                  1;
    consumed = true;
    return OkStatus();
  }
  latency += *program_time;
  ++stats_.parity_programs;
  f.data_since_parity[level] -= threshold;
  f.next_page =
      static_cast<uint32_t>(target - config_.geometry.FirstFPageOfBlock(block)) +
      1;
  consumed = true;
  return OkStatus();
}

SimDuration Ftl::DedicatedEccReadPenalty(unsigned level) {
  if (config_.ecc_placement != EccPlacement::kDedicated || level == 0) {
    return 0;
  }
  if (rng_.Bernoulli(config_.dedicated_ecc_cache_hit)) {
    return 0;  // parity already in controller RAM
  }
  ++stats_.ecc_page_reads;
  return config_.latency.read_fpage;
}

EccParams Ftl::EccForOPageRead(unsigned level) const {
  const TirednessLevelEcc& ecc = ladder_[level];
  return EccParams{
      .stripe_codeword_bits = ecc.stripe_codeword_bits,
      .correctable_bits_per_stripe = ecc.correctable_bits_per_stripe,
      // A single-oPage read engages only that oPage's stripes.
      .stripes = config_.ecc_geometry.stripes_per_opage,
  };
}

uint64_t Ftl::PageCapacity(FPageIndex fpage) const {
  if (config_.ecc_placement == EccPlacement::kDedicated) {
    // Data pages keep every oPage; the ECC overhead is paid in whole parity
    // pages via MaybeProgramParityPage, averaging to the same
    // (opages_per_fpage - L) per page that the accounting assumes.
    return config_.geometry.opages_per_fpage;
  }
  return config_.geometry.opages_per_fpage - page_level_[fpage];
}

uint64_t Ftl::PhysicalSlot(uint64_t lpo) const {
  if (lpo >= mapping_.size()) {
    return kUnmappedSlot;
  }
  const uint64_t entry = mapping_[lpo];
  return (entry == kUnmapped || IsBuffered(entry)) ? kUnmappedSlot : entry;
}

std::vector<PageTransition> Ftl::TakeTransitions() {
  std::vector<PageTransition> out;
  out.swap(transitions_);
  return out;
}

// ---------------------------------------------------------------------------
// Bounded L2P map cache
// ---------------------------------------------------------------------------

void Ftl::L2pGrow() {
  const uint64_t pages =
      (mapping_.size() + l2p_entries_per_page_ - 1) / l2p_entries_per_page_;
  if (pages <= map_slot_.size()) {
    return;
  }
  map_slot_.resize(pages, kUnmappedSlot);
  map_image_.resize(pages);
  l2p_resident_.resize(pages, 0);
  l2p_dirty_.resize(pages, 0);
  l2p_lru_prev_.resize(pages, kLruNil);
  l2p_lru_next_.resize(pages, kLruNil);
}

void Ftl::L2pLruRemove(uint64_t map_index) {
  const uint64_t prev = l2p_lru_prev_[map_index];
  const uint64_t next = l2p_lru_next_[map_index];
  if (prev != kLruNil) {
    l2p_lru_next_[prev] = next;
  } else {
    l2p_lru_head_ = next;
  }
  if (next != kLruNil) {
    l2p_lru_prev_[next] = prev;
  } else {
    l2p_lru_tail_ = prev;
  }
  l2p_lru_prev_[map_index] = kLruNil;
  l2p_lru_next_[map_index] = kLruNil;
}

void Ftl::L2pLruPushFront(uint64_t map_index) {
  l2p_lru_prev_[map_index] = kLruNil;
  l2p_lru_next_[map_index] = l2p_lru_head_;
  if (l2p_lru_head_ != kLruNil) {
    l2p_lru_prev_[l2p_lru_head_] = map_index;
  }
  l2p_lru_head_ = map_index;
  if (l2p_lru_tail_ == kLruNil) {
    l2p_lru_tail_ = map_index;
  }
}

void Ftl::L2pTouch(uint64_t lpo, bool make_dirty, SimDuration& latency) {
  const uint64_t map_index = MapPageOf(lpo);
  if (l2p_resident_[map_index]) {
    ++l2p_stats_.hits;
    if (l2p_lru_head_ != map_index) {
      L2pLruRemove(map_index);
      L2pLruPushFront(map_index);
    }
  } else {
    ++l2p_stats_.misses;
    if (map_slot_[map_index] != kUnmappedSlot) {
      // Fault the flushed image in. Modeled as a deterministic flash-read
      // latency — no FlashChip call, so map paging never perturbs the
      // read-path Rng stream. A never-flushed page faults in for free (a
      // real FTL treats a missing map page as all-unmapped).
      latency += config_.latency.read_fpage +
                 config_.latency.TransferTime(config_.geometry.opage_bytes);
    }
    l2p_resident_[map_index] = 1;
    ++l2p_resident_pages_;
    L2pLruPushFront(map_index);
  }
  if (make_dirty && !l2p_dirty_[map_index]) {
    l2p_dirty_[map_index] = 1;
    ++l2p_dirty_pages_;
  }
}

void Ftl::L2pEvictToCapacity(SimDuration& latency) {
  // Bounded pass: a dirty write-back can run GC, which over-admits more map
  // pages; any overshoot left behind drains on a later op instead of looping
  // here forever.
  uint64_t budget = l2p_resident_pages_ > l2p_capacity_pages_
                        ? l2p_resident_pages_ - l2p_capacity_pages_
                        : 0;
  while (budget-- > 0 && l2p_resident_pages_ > l2p_capacity_pages_) {
    const uint64_t victim = l2p_lru_tail_;
    if (victim == kLruNil) {
      break;
    }
    if (l2p_dirty_[victim] && !FlushMapPage(victim, latency).ok()) {
      // Out of space (or a transient chip fault) mid write-back: keep the
      // page resident and dirty; a later op retries the eviction.
      break;
    }
    L2pLruRemove(victim);
    l2p_resident_[victim] = 0;
    --l2p_resident_pages_;
    ++l2p_stats_.evictions;
  }
}

std::vector<uint64_t> Ftl::L2pDurableContent(uint64_t map_index) const {
  const uint64_t first = map_index * l2p_entries_per_page_;
  const uint64_t last =
      std::min(first + l2p_entries_per_page_, static_cast<uint64_t>(mapping_.size()));
  std::vector<uint64_t> content;
  content.reserve(last > first ? last - first : 0);
  bool any_mapped = false;
  for (uint64_t lpo = first; lpo < last; ++lpo) {
    const uint64_t entry = mapping_[lpo];
    const uint64_t durable =
        (entry == kUnmapped || IsBuffered(entry)) ? kUnmapped : entry;
    any_mapped |= durable != kUnmapped;
    content.push_back(durable);
  }
  if (!any_mapped) {
    content.clear();  // canonical form for an all-unmapped page
  }
  return content;
}

bool Ftl::UnsyncedTailHasMapFlush() const {
  const std::vector<JournalRecord>& records = journal_.records();
  for (uint64_t i = journal_.synced_count(); i < records.size(); ++i) {
    if (records[i].type == JournalRecordType::kMapFlush) {
      return true;
    }
  }
  return false;
}

Status Ftl::FlushMapPage(uint64_t map_index, SimDuration& latency) {
  // Write-ahead: every delta since this page's previous image must be
  // durable before the new image can supersede it — a torn kMapFlush then
  // rolls back to the previous image and the surviving deltas patch it
  // forward to exactly the new image's content.
  journal_.Sync();
  FPageIndex target = 0;
  for (;;) {
    SALA_ASSIGN_OR_RETURN(target, NextProgramTarget(Stream::kMap, latency));
    StatusOr<SimDuration> program_time = chip_->ProgramFPage(target);
    if (!program_time.ok()) {
      if (program_time.status().code() != StatusCode::kDataLoss) {
        return program_time.status();
      }
      // Program-status failure: retire the page and re-place, as on the
      // data path.
      ++stats_.program_failures;
      RetireInServicePage(target, page_level_[target], kDeadLevel);
      map_frontier_.next_page =
          static_cast<uint32_t>(
              target - config_.geometry.FirstFPageOfBlock(
                           config_.geometry.BlockOfFPage(target))) +
          1;
      continue;
    }
    latency += *program_time;
    break;
  }
  const BlockIndex block = config_.geometry.BlockOfFPage(target);
  // One map oPage per fPage (the rest is padding): slot 0 carries the image.
  const OPageSlot slot = config_.geometry.FirstSlotOfFPage(target);
  if (map_slot_[map_index] != kUnmappedSlot) {
    InvalidateSlot(map_slot_[map_index]);  // the old image dies
  }
  map_slot_[map_index] = slot;
  reverse_[slot] = kMapLpoBase + map_index;
  ++block_valid_[block];
  map_frontier_.next_page =
      static_cast<uint32_t>(target -
                            config_.geometry.FirstFPageOfBlock(block)) +
      1;
  map_image_[map_index] = L2pDurableContent(map_index);
  if (l2p_dirty_[map_index]) {
    l2p_dirty_[map_index] = 0;
    --l2p_dirty_pages_;
  }
  ++l2p_stats_.map_writes;
  // Deliberately left unsynced: this record is the torn-map-page crash
  // surface. EraseAndRecycle syncs before destroying any previous image it
  // could roll back to.
  JournalAppend(
      JournalRecord{JournalRecordType::kMapFlush, map_index, slot, 0, 0});
  return OkStatus();
}

void Ftl::ReplayRestoreMapPage(uint64_t map_index) {
  const uint64_t first = map_index * l2p_entries_per_page_;
  const uint64_t last =
      std::min(first + l2p_entries_per_page_, static_cast<uint64_t>(mapping_.size()));
  const std::vector<uint64_t>& image = map_image_[map_index];
  for (uint64_t lpo = first; lpo < last; ++lpo) {
    const uint64_t offset = lpo - first;
    const uint64_t want = offset < image.size() ? image[offset] : kUnmapped;
    const uint64_t old = mapping_[lpo];
    if (old == want) {
      continue;
    }
    if (old != kUnmapped) {
      reverse_[old] = kSlotFree;
      --mapped_opages_;
    }
    if (want == kUnmapped) {
      mapping_[lpo] = kUnmapped;
      continue;
    }
    const uint64_t evicted = reverse_[want];
    if (evicted != kSlotFree && evicted != lpo) {
      if (IsMapLpo(evicted)) {
        map_slot_[evicted - kMapLpoBase] = kUnmappedSlot;
      } else {
        mapping_[evicted] = kUnmapped;
        --mapped_opages_;
        rolled_back_.insert(evicted);
      }
    }
    mapping_[lpo] = want;
    reverse_[want] = lpo;
    ++mapped_opages_;
  }
}

// ---------------------------------------------------------------------------
// Crash-restart recovery
// ---------------------------------------------------------------------------

void Ftl::JournalAppend(const JournalRecord& record) {
  if (journal_.AtCapacity()) {
    CompactJournal();
  }
  journal_.Append(record);
  if (journal_.unsynced() >= config_.journal_max_unsynced) {
    journal_.Sync();
  }
}

void Ftl::JournalPageState(FPageIndex fpage) {
  JournalAppend(JournalRecord{
      JournalRecordType::kPageState, fpage,
      static_cast<uint64_t>(page_state_[fpage]), page_level_[fpage], 0});
}

void Ftl::CompactJournal() {
  std::vector<JournalRecord> out;
  // mDisk lifecycle history, compacted to at most two records per mDisk ever
  // created: the create, plus its terminal drain/drop if any. Creates appear
  // in id order because ids are assigned sequentially.
  struct MdiskHistory {
    JournalRecord create;
    bool draining = false;
    bool dropped = false;
    JournalRecord drop;
  };
  std::vector<MdiskHistory> history;
  for (const JournalRecord& r : journal_.records()) {
    switch (r.type) {
      case JournalRecordType::kMdiskCreate:
        assert(history.size() == r.a && "mDisk ids must be sequential");
        history.push_back(MdiskHistory{r, false, false, JournalRecord{}});
        break;
      case JournalRecordType::kMdiskDrain:
        history[r.a].draining = true;
        break;
      case JournalRecordType::kMdiskDrop:
        history[r.a].dropped = true;
        history[r.a].drop = r;
        break;
      default:
        break;
    }
  }
  out.push_back(JournalRecord{JournalRecordType::kExtend, mapping_.size(), 0,
                              0, 0});
  for (const MdiskHistory& h : history) {
    out.push_back(h.create);
    if (h.dropped) {
      out.push_back(h.drop);
    } else if (h.draining) {
      out.push_back(JournalRecord{JournalRecordType::kMdiskDrain, h.create.a,
                                  0, 0, 0});
    }
  }
  // L2P snapshot. Buffered pages have no durable version by definition and
  // are omitted — they roll back if power is lost before their flush.
  if (!l2p_enabled()) {
    for (uint64_t lpo = 0; lpo < mapping_.size(); ++lpo) {
      const uint64_t entry = mapping_[lpo];
      if (entry != kUnmapped && !IsBuffered(entry)) {
        out.push_back(
            JournalRecord{JournalRecordType::kMap, lpo, entry, 0, 0});
      }
    }
  } else {
    // Bounded-L2P snapshot: per map page, its newest flushed image (if any)
    // followed by the delta records reconciling that image with the current
    // durable mapping — exactly the shape Replay() consumes.
    for (uint64_t p = 0; p < map_slot_.size(); ++p) {
      if (map_slot_[p] != kUnmappedSlot) {
        out.push_back(JournalRecord{JournalRecordType::kMapFlush, p,
                                    map_slot_[p], 0, 0});
      }
      const uint64_t first = p * l2p_entries_per_page_;
      const uint64_t last = std::min(first + l2p_entries_per_page_,
                                     static_cast<uint64_t>(mapping_.size()));
      const std::vector<uint64_t>& image = map_image_[p];
      for (uint64_t lpo = first; lpo < last; ++lpo) {
        const uint64_t entry = mapping_[lpo];
        const uint64_t durable =
            (entry == kUnmapped || IsBuffered(entry)) ? kUnmapped : entry;
        const uint64_t offset = lpo - first;
        const uint64_t imaged =
            offset < image.size() ? image[offset] : kUnmapped;
        if (durable == imaged) {
          continue;
        }
        if (durable == kUnmapped) {
          out.push_back(JournalRecord{JournalRecordType::kTrim, lpo, 0, 0, 0});
        } else {
          out.push_back(
              JournalRecord{JournalRecordType::kMap, lpo, durable, 0, 0});
        }
      }
    }
  }
  // Non-pristine page states and permanently retired blocks.
  for (FPageIndex fpage = 0; fpage < config_.geometry.total_fpages();
       ++fpage) {
    if (page_state_[fpage] != PageState::kInService ||
        page_level_[fpage] != 0) {
      out.push_back(JournalRecord{
          JournalRecordType::kPageState, fpage,
          static_cast<uint64_t>(page_state_[fpage]), page_level_[fpage], 0});
    }
  }
  for (BlockIndex block = 0; block < config_.geometry.total_blocks();
       ++block) {
    if (block_state_[block] == BlockState::kRetired) {
      out.push_back(JournalRecord{JournalRecordType::kBlockRetire,
                                  static_cast<uint64_t>(block), 0, 0, 0});
    }
  }
  journal_.ReplaceWith(std::move(out));
}

void Ftl::SimulatePowerLoss(uint64_t torn_records) {
  ++power_losses_;
  // The volatile write buffers are lost: every logical page whose newest
  // version was still buffered rolls back — to an older durable version if
  // one survives on flash, else to unmapped. (GC-relocated pages whose
  // victim block was already erased are the "else" case.)
  for (size_t s = 0; s < kStreams; ++s) {
    const uint64_t sentinel = BufferSentinel(static_cast<Stream>(s));
    for (uint64_t lpo : frontiers_[s].buffer) {
      if (lpo < mapping_.size() && mapping_[lpo] == sentinel) {
        rolled_back_.insert(lpo);
      }
    }
  }
  // Torn journal tail: the affected pages' newest durable records are gone,
  // so they roll back as well (the physical programs may have happened, but
  // no surviving metadata acknowledges them).
  for (const JournalRecord& r : journal_.TearTail(torn_records)) {
    if (r.type == JournalRecordType::kMap ||
        r.type == JournalRecordType::kTrim) {
      rolled_back_.insert(r.a);
    }
  }
  // The FTL is now inconsistent by design; Replay() must run before any I/O.
}

Status Ftl::Replay() {
  ++journal_replays_;
  const FlashGeometry& geometry = config_.geometry;
  const uint64_t fpages = geometry.total_fpages();
  const uint64_t blocks = geometry.total_blocks();

  // Reset to the pristine post-construction state; the journal plus the
  // surviving physical chip state (PECs, programmed bitmap) rebuild
  // everything below.
  mapping_.clear();
  reverse_.assign(geometry.total_opages(), kSlotFree);
  mapped_opages_ = 0;
  page_level_.assign(fpages, 0);
  page_state_.assign(fpages, PageState::kInService);
  // Bounded L2P: remember the pre-crash flush slots (for the rebuilt-pages
  // stat), reset the slot table, and keep the image shadows — each surviving
  // kMapFlush restores its page's entries from the shadow, then the (always
  // synced-before-flush) delta records patch it forward. The shadow may be
  // newer than the literal flash bytes after a torn kMapFlush, but it is
  // delta-closed: restoring it and re-applying the same deltas is
  // value-idempotent, so the rebuilt mapping is identical either way.
  std::vector<uint64_t> pre_map_slot;
  if (l2p_enabled()) {
    pre_map_slot = map_slot_;
    std::fill(map_slot_.begin(), map_slot_.end(), kUnmappedSlot);
  }

  // Pass 1: apply records in append order. A kMap landing on an occupied
  // slot evicts the stale occupant — its invalidation record died with the
  // write buffer or the torn tail — and the evictee rolls back.
  for (const JournalRecord& r : journal_.records()) {
    switch (r.type) {
      case JournalRecordType::kExtend:
        mapping_.resize(mapping_.size() + r.a, kUnmapped);
        if (l2p_enabled()) {
          L2pGrow();
        }
        break;
      case JournalRecordType::kMap: {
        const uint64_t lpo = r.a;
        const uint64_t slot = r.b;
        if (lpo >= mapping_.size() || slot >= reverse_.size()) {
          return InternalError("Replay: kMap record out of range");
        }
        const uint64_t old = mapping_[lpo];
        if (old != kUnmapped) {
          reverse_[old] = kSlotFree;
          --mapped_opages_;
        }
        const uint64_t evicted = reverse_[slot];
        if (evicted != kSlotFree && evicted != lpo) {
          if (IsMapLpo(evicted)) {
            // The slot was reused for data after its map image died; the
            // superseding kMapFlush is later in the journal (or torn, in
            // which case deltas alone rebuild that map page).
            map_slot_[evicted - kMapLpoBase] = kUnmappedSlot;
          } else {
            mapping_[evicted] = kUnmapped;
            --mapped_opages_;
            rolled_back_.insert(evicted);
          }
        }
        mapping_[lpo] = slot;
        reverse_[slot] = lpo;
        ++mapped_opages_;
        break;
      }
      case JournalRecordType::kMapFlush: {
        if (!l2p_enabled()) {
          return InternalError("Replay: kMapFlush with bounded L2P disabled");
        }
        const uint64_t map_index = r.a;
        const uint64_t slot = r.b;
        if (map_index >= map_slot_.size() || slot >= reverse_.size()) {
          return InternalError("Replay: kMapFlush record out of range");
        }
        if (!chip_->IsProgrammed(geometry.FPageOfSlot(slot))) {
          break;  // image physically gone; the delta records alone rebuild it
        }
        if (map_slot_[map_index] != kUnmappedSlot) {
          reverse_[map_slot_[map_index]] = kSlotFree;  // superseded image
        }
        const uint64_t evicted = reverse_[slot];
        if (evicted != kSlotFree) {
          if (IsMapLpo(evicted)) {
            map_slot_[evicted - kMapLpoBase] = kUnmappedSlot;
          } else {
            mapping_[evicted] = kUnmapped;
            --mapped_opages_;
            rolled_back_.insert(evicted);
          }
        }
        map_slot_[map_index] = slot;
        reverse_[slot] = kMapLpoBase + map_index;
        ReplayRestoreMapPage(map_index);
        break;
      }
      case JournalRecordType::kTrim: {
        if (r.a >= mapping_.size()) {
          return InternalError("Replay: kTrim record out of range");
        }
        const uint64_t old = mapping_[r.a];
        if (old != kUnmapped) {
          reverse_[old] = kSlotFree;
          mapping_[r.a] = kUnmapped;
          --mapped_opages_;
        }
        break;
      }
      case JournalRecordType::kPageState: {
        if (r.a >= fpages || r.b > 2) {
          return InternalError("Replay: bad kPageState record");
        }
        page_state_[r.a] = static_cast<PageState>(r.b);
        page_level_[r.a] = static_cast<uint8_t>(
            page_state_[r.a] == PageState::kDead ? kDeadLevel : r.c);
        break;
      }
      case JournalRecordType::kBlockRetire:
      case JournalRecordType::kMdiskCreate:
      case JournalRecordType::kMdiskDrain:
      case JournalRecordType::kMdiskDrop:
        // Block states are re-derived below; mDisk records belong to the
        // minidisk layer's replay.
        break;
    }
  }

  // Pass 2: discard mappings whose backing slot no longer holds data — the
  // block was erased (and possibly reused) after the mapping record, and
  // the superseding record died with the buffer or the torn tail.
  for (uint64_t lpo = 0; lpo < mapping_.size(); ++lpo) {
    const uint64_t entry = mapping_[lpo];
    if (entry == kUnmapped) {
      continue;
    }
    const FPageIndex fpage = geometry.FPageOfSlot(entry);
    if (!chip_->IsProgrammed(fpage) ||
        page_state_[fpage] != PageState::kInService) {
      mapping_[lpo] = kUnmapped;
      reverse_[entry] = kSlotFree;
      --mapped_opages_;
      rolled_back_.insert(lpo);
    }
  }
  // Same viability check for surviving map-page images: a kMapFlush whose
  // slot was erased after the record (and whose superseding flush was torn)
  // leaves a stale pointer; the delta records already rebuilt the content.
  if (l2p_enabled()) {
    for (uint64_t p = 0; p < map_slot_.size(); ++p) {
      const uint64_t slot = map_slot_[p];
      if (slot == kUnmappedSlot) {
        continue;
      }
      const FPageIndex fpage = geometry.FPageOfSlot(slot);
      if (!chip_->IsProgrammed(fpage) ||
          page_state_[fpage] != PageState::kInService) {
        map_slot_[p] = kUnmappedSlot;
        reverse_[slot] = kSlotFree;
      }
    }
  }

  // Pass 3: rebuild every derived structure from the replayed ground truth.
  limbo_counts_.assign(geometry.opages_per_fpage, 0);
  limbo_pages_.assign(geometry.opages_per_fpage, {});
  usable_opages_ = 0;
  dead_fpages_ = 0;
  for (FPageIndex fpage = 0; fpage < fpages; ++fpage) {
    switch (page_state_[fpage]) {
      case PageState::kInService:
        usable_opages_ += geometry.opages_per_fpage - page_level_[fpage];
        break;
      case PageState::kLimbo:
        ++limbo_counts_[page_level_[fpage]];
        limbo_pages_[page_level_[fpage]].push_back(fpage);
        break;
      case PageState::kDead:
        ++dead_fpages_;
        break;
    }
  }
  block_valid_.assign(blocks, 0);
  for (uint64_t slot = 0; slot < reverse_.size(); ++slot) {
    if (reverse_[slot] != kSlotFree) {
      ++block_valid_[geometry.BlockOfFPage(geometry.FPageOfSlot(slot))];
    }
  }
  // Block states from page states and the programmed bitmap:
  //  * all pages dead -> retired (fully worn, or an erase-status failure);
  //  * any programmed page -> sealed kInUse: NAND forbids resuming a
  //    partially-written block's program order, so ex-active blocks join the
  //    GC candidates instead of a write frontier;
  //  * otherwise (erased) -> kFree if any page can store data, else kParked.
  block_state_.assign(blocks, BlockState::kFree);
  free_pool_ = decltype(free_pool_)();
  in_use_blocks_.clear();
  in_use_listed_.assign(blocks, 0);
  free_blocks_ = 0;
  retired_blocks_ = 0;
  for (BlockIndex block = 0; block < blocks; ++block) {
    const FPageIndex first = geometry.FirstFPageOfBlock(block);
    bool any_programmed = false;
    bool any_in_service = false;
    bool all_dead = true;
    for (uint32_t i = 0; i < geometry.fpages_per_block; ++i) {
      const FPageIndex fpage = first + i;
      any_programmed |= chip_->IsProgrammed(fpage);
      any_in_service |= page_state_[fpage] == PageState::kInService;
      all_dead &= page_state_[fpage] == PageState::kDead;
    }
    if (all_dead) {
      block_state_[block] = BlockState::kRetired;
      ++retired_blocks_;
    } else if (any_programmed) {
      block_state_[block] = BlockState::kInUse;
      in_use_blocks_.push_back(block);
      in_use_listed_[block] = 1;
    } else if (any_in_service) {
      free_pool_.emplace(chip_->BlockPec(block), block);
      ++free_blocks_;
    } else {
      block_state_[block] = BlockState::kParked;
    }
  }
  // Write frontiers restart empty (the buffers died with the power); rng_
  // deliberately keeps its process-lifetime state — it only feeds read-path
  // cache lotteries and GC victim sampling, never durable metadata.
  for (size_t s = 0; s < kStreams; ++s) {
    frontiers_[s] = Frontier{};
  }
  if (l2p_enabled()) {
    // The cache itself is volatile: restart cold, with every page clean —
    // the replayed mapping_ IS the rebuilt truth, so refresh each page's
    // shadow to match and count the pages whose durable image no longer
    // tells the whole story (torn/stale flush, or content patched forward
    // by delta records).
    map_frontier_ = Frontier{};
    std::fill(l2p_resident_.begin(), l2p_resident_.end(), 0);
    std::fill(l2p_dirty_.begin(), l2p_dirty_.end(), 0);
    std::fill(l2p_lru_prev_.begin(), l2p_lru_prev_.end(), kLruNil);
    std::fill(l2p_lru_next_.begin(), l2p_lru_next_.end(), kLruNil);
    l2p_lru_head_ = kLruNil;
    l2p_lru_tail_ = kLruNil;
    l2p_resident_pages_ = 0;
    l2p_dirty_pages_ = 0;
    uint64_t rebuilt = 0;
    for (uint64_t p = 0; p < map_slot_.size(); ++p) {
      std::vector<uint64_t> durable = L2pDurableContent(p);
      const uint64_t pre_slot =
          p < pre_map_slot.size() ? pre_map_slot[p] : kUnmappedSlot;
      if (durable != map_image_[p] || pre_slot != map_slot_[p]) {
        ++rebuilt;
      }
      map_image_[p] = std::move(durable);
    }
    l2p_stats_.replay_rebuilt_pages += rebuilt;
  }
  transitions_.clear();
  in_gc_ = false;
  return CheckInvariants();
}

uint64_t Ftl::StateDigest() const {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(mapping_.size());
  for (uint64_t lpo = 0; lpo < mapping_.size(); ++lpo) {
    mix(mapping_[lpo]);
    mix(rolled_back_.count(lpo));
  }
  for (FPageIndex fpage = 0; fpage < config_.geometry.total_fpages();
       ++fpage) {
    mix(static_cast<uint64_t>(page_level_[fpage]) |
        (static_cast<uint64_t>(page_state_[fpage]) << 8) |
        (static_cast<uint64_t>(chip_->IsProgrammed(fpage)) << 16));
  }
  for (BlockIndex block = 0; block < config_.geometry.total_blocks();
       ++block) {
    mix(static_cast<uint64_t>(block_state_[block]) |
        (static_cast<uint64_t>(block_valid_[block]) << 8) |
        (static_cast<uint64_t>(chip_->BlockPec(block)) << 40));
  }
  mix(mapped_opages_);
  mix(usable_opages_);
  mix(free_blocks_);
  mix(dead_fpages_);
  mix(retired_blocks_);
  for (size_t s = 0; s < kStreams; ++s) {
    mix(frontiers_[s].buffer_valid);
    mix(frontiers_[s].has_active_block
            ? static_cast<uint64_t>(frontiers_[s].active_block) + 1
            : 0);
  }
  mix(journal_.size());
  mix(journal_.synced_count());
  if (l2p_enabled()) {
    mix(map_slot_.size());
    for (uint64_t p = 0; p < map_slot_.size(); ++p) {
      mix(map_slot_[p]);
      mix(static_cast<uint64_t>(l2p_dirty_[p]) |
          (static_cast<uint64_t>(l2p_resident_[p]) << 1));
    }
    // LRU recency order is observable (it picks eviction victims), so walk
    // it into the digest; +1 keeps page 0 distinct from the hash of nothing.
    for (uint64_t p = l2p_lru_head_; p != kLruNil; p = l2p_lru_next_[p]) {
      mix(p + 1);
    }
    mix(l2p_resident_pages_);
    mix(l2p_dirty_pages_);
    mix(map_frontier_.buffer_valid);
    mix(map_frontier_.has_active_block
            ? static_cast<uint64_t>(map_frontier_.active_block) + 1
            : 0);
  }
  return h;
}

void Ftl::CollectMetrics(MetricRegistry& registry,
                         const std::string& prefix) const {
  registry.GetCounter(prefix + "ftl.host_writes").Add(stats_.host_writes);
  registry.GetCounter(prefix + "ftl.host_reads").Add(stats_.host_reads);
  registry.GetCounter(prefix + "ftl.buffer_hits").Add(stats_.buffer_hits);
  registry.GetCounter(prefix + "ftl.gc_relocations")
      .Add(stats_.gc_relocations);
  registry.GetCounter(prefix + "ftl.flushes").Add(stats_.flushes);
  registry.GetCounter(prefix + "ftl.erases").Add(stats_.erases);
  registry.GetCounter(prefix + "ftl.uncorrectable_reads")
      .Add(stats_.uncorrectable_reads);
  registry.GetCounter(prefix + "ftl.read_retries").Add(stats_.read_retries);
  registry.GetCounter(prefix + "ftl.silent_corrupt_fpage_reads")
      .Add(stats_.silent_corrupt_fpage_reads);
  registry.GetCounter(prefix + "ftl.parity_programs")
      .Add(stats_.parity_programs);
  registry.GetCounter(prefix + "ftl.ecc_page_reads")
      .Add(stats_.ecc_page_reads);
  registry.GetCounter(prefix + "ftl.program_failures")
      .Add(stats_.program_failures);
  registry.GetCounter(prefix + "ftl.erase_failures")
      .Add(stats_.erase_failures);
  for (size_t level = 0; level < stats_.reads_by_level.size(); ++level) {
    registry
        .GetCounter(prefix + "ftl.reads_at_level." + std::to_string(level))
        .Add(stats_.reads_by_level[level]);
  }
  registry.GetGauge(prefix + "ftl.usable_opages")
      .Add(static_cast<double>(usable_opages_));
  registry.GetGauge(prefix + "ftl.mapped_opages")
      .Add(static_cast<double>(mapped_opages_));
  registry.GetGauge(prefix + "ftl.dead_fpages")
      .Add(static_cast<double>(dead_fpages_));
  registry.GetGauge(prefix + "ftl.retired_blocks")
      .Add(static_cast<double>(retired_blocks_));
  registry.GetGauge(prefix + "ftl.free_blocks")
      .Add(static_cast<double>(free_blocks_));
  registry.GetGauge(prefix + "ftl.reclaimable_limbo_opages")
      .Add(static_cast<double>(reclaimable_limbo_opages()));
  // Journal instruments only materialize once a power loss or replay has
  // actually happened, keeping metric exports from crash-free configurations
  // byte-identical to pre-journal builds.
  if (power_losses_ + journal_replays_ > 0) {
    registry.GetCounter(prefix + "ftl.journal.appends")
        .Add(journal_.appends());
    registry.GetCounter(prefix + "ftl.journal.syncs").Add(journal_.syncs());
    registry.GetCounter(prefix + "ftl.journal.compactions")
        .Add(journal_.compactions());
    registry.GetCounter(prefix + "ftl.journal.torn_records")
        .Add(journal_.torn_records());
    registry.GetCounter(prefix + "ftl.journal.replays").Add(journal_replays_);
    registry.GetCounter(prefix + "ftl.journal.power_losses")
        .Add(power_losses_);
    registry.GetGauge(prefix + "ftl.journal.rolled_back_opages")
        .Add(static_cast<double>(rolled_back_.size()));
    registry.GetGauge(prefix + "ftl.journal.records")
        .Add(static_cast<double>(journal_.size()));
  }
  // Bounded-L2P instruments exist only when the cache is enabled, keeping
  // legacy (unbounded-map) metric exports byte-identical.
  if (l2p_enabled()) {
    registry.GetCounter(prefix + "ftl.l2p.hits").Add(l2p_stats_.hits);
    registry.GetCounter(prefix + "ftl.l2p.misses").Add(l2p_stats_.misses);
    registry.GetCounter(prefix + "ftl.l2p.evictions")
        .Add(l2p_stats_.evictions);
    registry.GetCounter(prefix + "ftl.l2p.map_writes")
        .Add(l2p_stats_.map_writes);
    registry.GetCounter(prefix + "ftl.l2p.replay_rebuilt_pages")
        .Add(l2p_stats_.replay_rebuilt_pages);
    registry.GetGauge(prefix + "ftl.l2p.resident_pages")
        .Add(static_cast<double>(l2p_resident_pages_));
    registry.GetGauge(prefix + "ftl.l2p.dirty_pages")
        .Add(static_cast<double>(l2p_dirty_pages_));
    registry.GetGauge(prefix + "ftl.l2p.map_pages")
        .Add(static_cast<double>(map_slot_.size()));
  }
  chip_->CollectMetrics(registry, prefix);
}

Status Ftl::CheckInvariants() const {
  const FlashGeometry& geometry = config_.geometry;

  // 1. mapping -> reverse consistency and mapped/buffered tallies.
  uint64_t mapped = 0;
  uint64_t buffered[kStreams] = {0, 0};
  for (uint64_t lpo = 0; lpo < mapping_.size(); ++lpo) {
    const uint64_t entry = mapping_[lpo];
    if (entry == kUnmapped) {
      continue;
    }
    ++mapped;
    if (entry == kInBufferHost) {
      ++buffered[0];
      continue;
    }
    if (entry == kInBufferGc) {
      ++buffered[1];
      continue;
    }
    if (entry >= reverse_.size()) {
      return InternalError("mapping points past physical space at lpo " +
                           std::to_string(lpo));
    }
    if (reverse_[entry] != lpo) {
      return InternalError("reverse map mismatch at lpo " +
                           std::to_string(lpo));
    }
  }
  if (mapped != mapped_opages_) {
    return InternalError("mapped_opages tally off: counted " +
                         std::to_string(mapped) + " vs " +
                         std::to_string(mapped_opages_));
  }
  for (size_t stream = 0; stream < kStreams; ++stream) {
    if (buffered[stream] != frontiers_[stream].buffer_valid) {
      return InternalError("buffer_valid tally off for stream " +
                           std::to_string(stream));
    }
  }

  // 2. reverse -> mapping consistency and per-block valid counts.
  std::vector<uint32_t> valid_per_block(geometry.total_blocks(), 0);
  for (uint64_t slot = 0; slot < reverse_.size(); ++slot) {
    const uint64_t lpo = reverse_[slot];
    if (lpo == kSlotFree) {
      continue;
    }
    if (IsMapLpo(lpo)) {
      const uint64_t p = lpo - kMapLpoBase;
      if (p >= map_slot_.size() || map_slot_[p] != slot) {
        return InternalError("dangling map-page reverse entry at slot " +
                             std::to_string(slot));
      }
    } else if (lpo >= mapping_.size() || mapping_[lpo] != slot) {
      return InternalError("dangling reverse entry at slot " +
                           std::to_string(slot));
    }
    ++valid_per_block[geometry.BlockOfFPage(geometry.FPageOfSlot(slot))];
  }
  for (BlockIndex block = 0; block < geometry.total_blocks(); ++block) {
    if (valid_per_block[block] != block_valid_[block]) {
      return InternalError("block_valid off for block " +
                           std::to_string(block));
    }
  }

  // 3. page-state tallies: usable capacity, limbo counts, dead pages.
  uint64_t usable = 0;
  uint64_t dead = 0;
  std::vector<uint64_t> limbo(limbo_counts_.size(), 0);
  for (FPageIndex fpage = 0; fpage < geometry.total_fpages(); ++fpage) {
    switch (page_state_[fpage]) {
      case PageState::kInService:
        usable += geometry.opages_per_fpage - page_level_[fpage];
        break;
      case PageState::kLimbo:
        if (page_level_[fpage] >= limbo.size()) {
          return InternalError("limbo page with absurd level");
        }
        ++limbo[page_level_[fpage]];
        break;
      case PageState::kDead:
        if (page_level_[fpage] != kDeadLevel) {
          return InternalError("dead page without dead level marker");
        }
        ++dead;
        break;
    }
  }
  if (usable != usable_opages_) {
    return InternalError("usable_opages tally off: counted " +
                         std::to_string(usable) + " vs " +
                         std::to_string(usable_opages_));
  }
  if (dead != dead_fpages_) {
    return InternalError("dead_fpages tally off");
  }
  for (size_t level = 0; level < limbo.size(); ++level) {
    if (limbo[level] != limbo_counts_[level]) {
      return InternalError("limbo count off at level " +
                           std::to_string(level));
    }
  }

  // 4. block-state sanity: free count and retired tally.
  uint64_t free_count = 0;
  uint64_t retired = 0;
  for (BlockIndex block = 0; block < geometry.total_blocks(); ++block) {
    switch (block_state_[block]) {
      case BlockState::kFree:
        ++free_count;
        break;
      case BlockState::kRetired:
        ++retired;
        if (block_valid_[block] != 0) {
          return InternalError("retired block holds valid data");
        }
        break;
      default:
        break;
    }
  }
  if (free_count != free_blocks_) {
    return InternalError("free_blocks tally off");
  }
  if (retired != retired_blocks_) {
    return InternalError("retired_blocks tally off");
  }

  // 5. Bounded-L2P cache bookkeeping. Capacity is deliberately NOT asserted:
  // internal touch points over-admit and evictions can be deferred past an
  // out-of-space flush failure, so transient overshoot is legal.
  if (l2p_enabled()) {
    uint64_t resident = 0;
    uint64_t dirty = 0;
    for (uint64_t p = 0; p < map_slot_.size(); ++p) {
      if (l2p_dirty_[p] && !l2p_resident_[p]) {
        return InternalError("dirty non-resident map page " +
                             std::to_string(p));
      }
      resident += l2p_resident_[p];
      dirty += l2p_dirty_[p];
      const uint64_t slot = map_slot_[p];
      if (slot != kUnmappedSlot) {
        if (slot >= reverse_.size() ||
            reverse_[slot] != kMapLpoBase + p) {
          return InternalError("map page " + std::to_string(p) +
                               " flash slot not owned in reverse map");
        }
      }
    }
    if (resident != l2p_resident_pages_) {
      return InternalError("l2p resident_pages tally off");
    }
    if (dirty != l2p_dirty_pages_) {
      return InternalError("l2p dirty_pages tally off");
    }
    uint64_t walked = 0;
    uint64_t prev = kLruNil;
    for (uint64_t p = l2p_lru_head_; p != kLruNil; p = l2p_lru_next_[p]) {
      if (++walked > l2p_resident_pages_) {
        return InternalError("l2p LRU list cycle or overrun");
      }
      if (!l2p_resident_[p]) {
        return InternalError("non-resident map page on LRU list");
      }
      if (l2p_lru_prev_[p] != prev) {
        return InternalError("l2p LRU prev link broken at page " +
                             std::to_string(p));
      }
      prev = p;
    }
    if (walked != l2p_resident_pages_) {
      return InternalError("l2p LRU list length off");
    }
    if (l2p_lru_tail_ != prev) {
      return InternalError("l2p LRU tail mismatch");
    }
  }
  return OkStatus();
}

}  // namespace salamander
