// Page-mapped flash translation layer with tiredness tracking (paper §3).
//
// The FTL manages one device: logical oPage space -> physical oPage slots,
// a small NV write buffer that packs oPages into fPages, greedy garbage
// collection, PEC-based wear leveling, and — the Salamander part — per-fPage
// tiredness levels with limbo accounting (Eq. 1). Tiredness transitions are
// queued as events; the minidisk layer above drains them and decides
// decommissioning (Eq. 2) and regeneration.
//
// Level recomputation happens at block-erase time: the paper models RBER as
// a function of P/E cycles only ("for simplicity we only consider RBER due
// to aging", §4), and PEC changes exactly at erase. A page that changes
// level is empty at that moment (GC relocated its data before the erase), so
// transitions never require data movement of their own.
#ifndef SALAMANDER_FTL_FTL_H_
#define SALAMANDER_FTL_FTL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "ecc/tiredness.h"
#include "flash/flash_chip.h"
#include "flash/geometry.h"
#include "flash/wear_model.h"
#include "ftl/journal.h"
#include "telemetry/metrics.h"

namespace salamander {

// How worn flash is retired from service at its current tiredness level.
enum class RetirementGranularity {
  // Salamander: each fPage retires individually, exploiting the large
  // page-to-page endurance variance within a block ([41, 42]).
  kPage,
  // Conventional SSD firmware and CVSS [16]: the whole erase block retires
  // when its worst page can no longer meet the ECC requirement — wasting
  // "much of the remaining lifetime of stronger pages within blocks" (§4),
  // but preserving reliability.
  kBlockWorstPage,
  // Ablation only: retire on *average* block RBER. This postpones
  // retirement past the point where the block's weak pages are unreliable
  // (uncorrectable reads), trading UBER for capacity — no shipping design
  // does this; it is kept to quantify the averaging effect.
  kBlockAverage,
};

// Where the extra ECC of tired (L >= 1) pages lives (§4.2).
enum class EccPlacement : uint8_t {
  // Repurposed oPages inside the same fPage: reads are self-contained but a
  // 16 KiB access spans extra fPages — the 4/(4-L) penalty of Fig. 3c/3d.
  kInline,
  // Parity concentrated in dedicated fPages (one parity fPage per (4-L)/L
  // data fPages at level L): data pages keep all four oPages, restoring
  // large-access geometry; reads pay an extra parity-page access on an ECC
  // cache miss, and writes pay the parity programs.
  kDedicated,
};

struct FtlConfig {
  FlashGeometry geometry;
  WearModelConfig wear;
  FlashLatencyConfig latency;
  FPageEccGeometry ecc_geometry;

  EccPlacement ecc_placement = EccPlacement::kInline;
  // Probability that a dedicated parity page is already cached in controller
  // RAM when a tired-page read needs it (ECC caching per [23, 44-46]).
  double dedicated_ecc_cache_hit = 0.9;

  // Highest tiredness level whose pages may still store data.
  //   0  -> fixed ECC (baseline SSDs, CVSS, ShrinkS)
  //   1  -> RegenS with the paper's recommended L < 2 cap
  //   2+ -> RegenS extended (ablation)
  // Block-granular retirement modes require 0.
  unsigned max_usable_level = 0;

  RetirementGranularity retirement = RetirementGranularity::kPage;

  // Retire a page from level L once rber > retire_margin * tolerable(L).
  // < 1.0 retires early (conservative firmware); 1.0 uses full capability.
  double retire_margin = 1.0;

  // Garbage collection starts when the free-block pool drops to this size.
  uint32_t gc_low_watermark_blocks = 3;

  // NV write-buffer capacity in oPages; a partial fPage is force-flushed
  // when the buffer would overflow.
  uint32_t write_buffer_opages = 64;

  // Serving a read from the NV buffer.
  SimDuration buffer_read_latency = 2 * kMicrosecond;

  // ---- Metadata journal (crash-restart recovery) -------------------------
  // Journal region capacity in records; 0 = auto (sized to hold a full state
  // snapshot plus slack). The FTL compacts when the region fills.
  uint64_t journal_capacity_records = 0;
  // Auto-sync the journal once this many records are unsynced; the unsynced
  // tail is the bounded torn-write window at power loss.
  uint64_t journal_max_unsynced = 32;

  // ---- Bounded L2P map cache (DRAM-resident map window) ------------------
  // Maximum L2P entries resident in DRAM at once. 0 = legacy unbounded map
  // (byte-identical behavior: no map pages, no extra wear, no extra latency,
  // no Rng perturbation). When > 0 the full map lives on flash as map pages
  // written through the normal flash path (wear-accounted), DRAM holds an
  // LRU window of whole map pages, and dirty map pages are written back on
  // eviction under a journaled kMapFlush durability protocol.
  uint64_t l2p_cache_entries = 0;
  // L2P entries per on-flash map page; 0 = auto (opage_bytes / 8, i.e. 8 B
  // per entry packed into one oPage). Tests use small values to exercise
  // eviction and map-flush boundaries on tiny devices.
  uint64_t l2p_entries_per_map_page = 0;

  uint64_t seed = 1;
};

// One tiredness transition, reported to the layer above.
struct PageTransition {
  FPageIndex fpage = 0;
  unsigned old_level = 0;
  unsigned new_level = 0;  // == Ftl::kDeadLevel when the page left service
};

struct FtlStats {
  uint64_t host_writes = 0;      // oPages written by the host
  uint64_t host_reads = 0;       // oPages read by the host
  uint64_t buffer_hits = 0;      // reads served from the NV buffer
  uint64_t gc_relocations = 0;   // oPages moved by GC
  uint64_t flushes = 0;          // fPage programs from the buffer
  uint64_t erases = 0;
  uint64_t uncorrectable_reads = 0;
  uint64_t read_retries = 0;
  uint64_t parity_programs = 0;   // dedicated ECC pages written
  uint64_t ecc_page_reads = 0;    // dedicated ECC page fetches (cache misses)
  uint64_t program_failures = 0;  // fPage programs that failed (page retired)
  uint64_t erase_failures = 0;    // block erases that failed (block retired)
  // Flash reads that completed "cleanly" but delivered miscorrected data
  // (FaultSite::kReadCorrupt). Exact by construction: every injected draw
  // happens under a host read, so this always equals the injector's
  // read_corrupt site count for this device.
  uint64_t silent_corrupt_fpage_reads = 0;
  // Reads served from flash pages at each tiredness level (index = level).
  std::vector<uint64_t> reads_by_level;

  double WriteAmplification() const {
    return host_writes == 0
               ? 1.0
               : 1.0 + static_cast<double>(gc_relocations) /
                           static_cast<double>(host_writes);
  }
};

struct ReadResult {
  SimDuration latency = 0;
  unsigned tiredness_level = 0;
  uint32_t retries = 0;
  bool buffer_hit = false;
  // The backing flash read was silently miscorrected; the caller holds wrong
  // bytes and only an end-to-end checksum can tell.
  bool payload_corrupt = false;
};

// Result of a multi-oPage (large host I/O) read.
struct RangeReadResult {
  SimDuration latency = 0;
  uint32_t fpage_reads = 0;    // distinct flash page reads performed
  unsigned max_level = 0;      // most-tired page touched
  uint32_t buffer_hits = 0;
  uint32_t corrupt_fpage_reads = 0;  // of fpage_reads, silently miscorrected
};

class Ftl {
 public:
  // Sentinel level for pages permanently out of service.
  static constexpr unsigned kDeadLevel = 255;
  static constexpr uint64_t kUnmappedSlot = UINT64_MAX;
  // Map pages occupy physical slots like data, but their reverse-map entries
  // carry kMapLpoBase + map_page_index instead of a host lpo. Host lpos are
  // bounded by logical_opages(), far below this base, so the two namespaces
  // can never collide.
  static constexpr uint64_t kMapLpoBase = 1ULL << 62;

  explicit Ftl(const FtlConfig& config);

  const FtlConfig& config() const { return config_; }
  const FlashChip& chip() const { return *chip_; }

  // Wires a chaos injector (not owned; may be nullptr) into the flash chip.
  // Program/erase failures surface as retired pages/blocks; read corruption
  // is *silent* (ECC miscorrection): the read succeeds with
  // ReadResult::payload_corrupt set and silent_corrupt_fpage_reads counted —
  // only the end-to-end checksum layer above can act on it.
  void SetFaultInjector(FaultInjector* faults) {
    chip_->set_fault_injector(faults);
  }
  const FtlStats& stats() const { return stats_; }
  const std::vector<TirednessLevelEcc>& tiredness_ladder() const {
    return ladder_;
  }

  // ---- Logical address space ---------------------------------------------

  // Grows the logical oPage space by `opages`; returns the first new logical
  // page offset. The minidisk layer calls this when carving mDisks.
  uint64_t ExtendLogicalSpace(uint64_t opages);

  // Number of logical oPages ever allocated (decommissioned ranges included).
  uint64_t logical_opages() const { return mapping_.size(); }

  // ---- Host I/O ------------------------------------------------------------

  // Writes one logical oPage. May trigger buffer flushes and GC; the returned
  // latency covers everything on the critical path.
  StatusOr<SimDuration> Write(uint64_t lpo);

  // Reads one logical oPage. kNotFound if never written or trimmed;
  // kDataLoss if the flash read was uncorrectable after retries. Injected
  // silent corruption instead succeeds with payload_corrupt set.
  StatusOr<ReadResult> Read(uint64_t lpo);

  // Reads `count` consecutive logical oPages as one host I/O. Consecutive
  // oPages backed by the same fPage share a single flash read (only the
  // channel transfer repeats) — this is where RegenS's large-access penalty
  // of 4/(4-L) comes from: an L1 fPage yields 3 oPages per read instead of 4.
  StatusOr<RangeReadResult> ReadRange(uint64_t first_lpo, uint64_t count);

  // Invalidates one logical oPage (no-op if already unmapped).
  Status Trim(uint64_t lpo);

  // Drains the NV write buffer to flash (tests / orderly shutdown).
  Status Flush();

  // ---- Capacity accounting (Eq. 1 / Eq. 2 inputs) --------------------------

  // oPages storable on pages currently in service:
  // sum over in-service fPages of (opages_per_fpage - level).
  uint64_t usable_opages() const { return usable_opages_; }

  // limbo[L]: fPages at level L awaiting regeneration (Eq. 1's limbo sets).
  uint64_t limbo_fpages(unsigned level) const;

  // Total oPage capacity recoverable from limbo pages at usable levels:
  // sum over j <= max_usable_level of (opages_per_fpage - j) * limbo[j].
  uint64_t reclaimable_limbo_opages() const;

  // Moves limbo pages (lowest level first) into service until at least
  // `opages` of capacity is claimed; returns the amount actually claimed.
  // Used by minidisk regeneration.
  uint64_t ClaimLimboCapacity(uint64_t opages);

  // oPages the FTL needs as free headroom for GC to make progress.
  uint64_t gc_reserve_opages() const;

  // Wear forecast: capacity (oPages) on in-service pages predicted to leave
  // their current tiredness level within the next `pec_horizon_fraction` of
  // their block's current P/E count (e.g. 0.1 = within ~10% more cycles).
  // O(total fPages); callers should cache between maintenance rounds.
  uint64_t ForecastTiringOPages(double pec_horizon_fraction) const;

  // Next-event estimate for a discrete-event driver (see
  // fleet/event_scheduler.h): how many more host oPage writes this FTL can
  // absorb before each class of "interesting" state change could fire.
  // Heuristics, not bounds — GC write amplification can bring an event
  // forward, reclaim can push it back — so schedulers use them to *size*
  // windows and diagnostics, never to skip the per-day draws that determinism
  // depends on. O(total fPages), same cost as ForecastTiringOPages; callers
  // should cache between maintenance rounds.
  struct EventEstimate {
    // Host oPage writes before free blocks could shrink to the GC low
    // watermark, counting fresh-block programs only.
    uint64_t opages_to_gc_pressure = 0;
    // Host oPage writes before the most-worn in-service page could cross its
    // retire threshold, if every write landed on that page's block.
    // UINT64_MAX when no page is in service (all retired, revived-out, or
    // dead) — no wear event is ever due then.
    uint64_t opages_to_wear_event = 0;
  };
  EventEstimate EstimateNextEvent() const;

  // ---- Bounded L2P map cache ----------------------------------------------

  struct L2pStats {
    uint64_t hits = 0;        // map-page lookups served from the DRAM window
    uint64_t misses = 0;      // lookups that had to fault the map page in
    uint64_t evictions = 0;   // map pages evicted from the DRAM window
    uint64_t map_writes = 0;  // map-page fPage programs (wear-accounted)
    uint64_t replay_rebuilt_pages = 0;  // map pages reconstructed by Replay()
  };

  bool l2p_enabled() const { return config_.l2p_cache_entries > 0; }
  const L2pStats& l2p_stats() const { return l2p_stats_; }
  // L2P entries per on-flash map page (resolved from config; 0 when the
  // bounded cache is disabled).
  uint64_t l2p_entries_per_map_page() const { return l2p_entries_per_page_; }
  uint64_t l2p_map_pages() const { return map_slot_.size(); }
  // DRAM window size in whole map pages (>= 1 when enabled).
  uint64_t l2p_cache_capacity_pages() const { return l2p_capacity_pages_; }
  uint64_t l2p_resident_pages() const { return l2p_resident_pages_; }
  uint64_t l2p_dirty_pages() const { return l2p_dirty_pages_; }
  // Physical slot of map page `map_index`'s newest flushed image, or
  // kUnmappedSlot if the page has never been flushed.
  uint64_t MapPageSlot(uint64_t map_index) const {
    return map_index < map_slot_.size() ? map_slot_[map_index] : kUnmappedSlot;
  }

  // Currently mapped (live) logical oPages, including buffered ones.
  uint64_t mapped_opages() const { return mapped_opages_; }

  uint64_t dead_fpages() const { return dead_fpages_; }
  // Blocks permanently retired (every page dead).
  uint64_t retired_blocks() const { return retired_blocks_; }
  uint64_t free_blocks() const { return free_blocks_; }

  // ---- Events ---------------------------------------------------------------

  // Returns and clears the queued tiredness transitions. The layer above
  // calls this after each host operation; reacting outside the FTL's call
  // stack avoids reentrancy during GC.
  std::vector<PageTransition> TakeTransitions();

  // ---- Introspection for tests ----------------------------------------------

  // Scrapes FtlStats, capacity/limbo gauges, and the underlying chip's
  // "<prefix>flash.*" instruments into "<prefix>ftl.*". Additive — collect
  // once per device (see telemetry/collect.h).
  void CollectMetrics(MetricRegistry& registry,
                      const std::string& prefix = "") const;

  // Full-consistency audit of the FTL's internal accounting (mapping <->
  // reverse map, per-block valid counts, usable/limbo/dead tallies, buffer
  // counters, free-pool sanity). O(device size); used by tests and
  // debug builds. Returns kInternal with a description on the first
  // violation found.
  Status CheckInvariants() const;

  // ---- Crash-restart recovery ---------------------------------------------

  // Appends a record through the FTL's sync/compaction policy. Used by the
  // minidisk layer for mDisk lifecycle records; everything else is journaled
  // internally at the mutation sites.
  void AppendJournalRecord(const JournalRecord& record) {
    JournalAppend(record);
  }
  // Explicit durability barrier (also taken on every host Flush()).
  void SyncJournal() { journal_.Sync(); }
  const FtlJournal& journal() const { return journal_; }

  // Models a power loss: the volatile write buffers are dropped (their
  // logical pages roll back to their last durable version, or to unmapped),
  // and `torn_records` unsynced journal-tail records are discarded (never
  // crossing the sync barrier). Deterministic — performs no Rng draws; the
  // caller decides the torn count (e.g. FaultInjector::TornJournalRecords).
  // The FTL must not serve I/O until Replay() rebuilds it.
  void SimulatePowerLoss(uint64_t torn_records);

  // Rebuilds the full FTL state from the journal and the surviving physical
  // flash state (PECs, programmed bitmap): mapping and reverse map, page
  // levels/states and their tallies, block states, free pool and GC
  // candidate list. Write frontiers restart empty; partially-programmed
  // ex-active blocks are sealed (NAND forbids resuming their program order).
  // Mappings whose backing slot was destroyed are discarded and flagged
  // rolled back. Returns CheckInvariants() on the rebuilt state.
  Status Replay();

  // True if the last acknowledged write (or trim) of `lpo` was lost to a
  // power loss — its content reverted to an older durable version or to
  // unmapped. Cleared by the next write or trim of the page. The diFS uses
  // this as the device-side staleness signal when reconciling a returned
  // device (the simulator stores no user bytes to checksum).
  bool LpoRolledBack(uint64_t lpo) const {
    return rolled_back_.count(lpo) != 0;
  }
  uint64_t rolled_back_count() const { return rolled_back_.size(); }
  uint64_t journal_replays() const { return journal_replays_; }
  uint64_t power_losses() const { return power_losses_; }

  // Order-independent FNV-1a digest over the complete logical state
  // (mapping, page levels/states, block states, tallies, rolled-back set,
  // journal position). Two FTLs with equal digests behave identically;
  // replay determinism tests compare digests.
  uint64_t StateDigest() const;

  unsigned PageLevel(FPageIndex fpage) const { return page_level_[fpage]; }
  bool PageInService(FPageIndex fpage) const {
    return page_state_[fpage] == PageState::kInService;
  }
  // Physical slot currently backing a logical page; kUnmappedSlot if the page
  // is unmapped or still in the buffer.
  uint64_t PhysicalSlot(uint64_t lpo) const;
  uint64_t buffered_opages() const {
    return frontiers_[0].buffer_valid + frontiers_[1].buffer_valid;
  }

 private:
  enum class PageState : uint8_t {
    kInService,  // storing data or available for programming
    kLimbo,      // retired from its previous level, awaiting regeneration
    kDead,       // beyond the max usable level
  };
  enum class BlockState : uint8_t {
    kFree,     // erased, in the allocation pool
    kActive,   // currently being programmed
    kInUse,    // fully programmed; GC candidate
    kParked,   // erased but holding only limbo/dead pages
    kRetired,  // every page dead; permanently out of service
  };

  // Separate write streams ("frontiers"): host writes and GC relocations
  // each fill their own active block, as in production FTLs. This keeps
  // host-sequential data physically contiguous (GC churn does not splice
  // into it) and gives a mild hot/cold separation that lowers WAF.
  // kMap is the metadata stream for L2P map-page programs (bounded cache
  // only); it bypasses the NV buffer, so kStreams keeps counting only the
  // two buffered data streams and every loop over them stays untouched.
  enum class Stream : uint8_t { kHost = 0, kGc = 1, kMap = 2 };
  static constexpr size_t kStreams = 2;

  static constexpr uint64_t kInBufferHost = UINT64_MAX - 2;
  static constexpr uint64_t kInBufferGc = UINT64_MAX - 1;
  static constexpr uint64_t kUnmapped = UINT64_MAX;
  static constexpr uint64_t kSlotFree = UINT64_MAX;

  static constexpr bool IsBuffered(uint64_t entry) {
    return entry == kInBufferHost || entry == kInBufferGc;
  }
  static constexpr uint64_t BufferSentinel(Stream stream) {
    return stream == Stream::kHost ? kInBufferHost : kInBufferGc;
  }
  static constexpr bool IsMapLpo(uint64_t lpo) { return lpo >= kMapLpoBase; }
  static constexpr uint64_t kLruNil = UINT64_MAX;

  // --- write path ---
  Status BufferWrite(uint64_t lpo, Stream stream, SimDuration& latency);
  Status FlushIfReady(Stream stream, SimDuration& latency);
  // Programs the next target fPage from the stream's buffer; `allow_partial`
  // permits programming with fewer oPages than the page holds.
  Status FlushToTarget(Stream stream, bool allow_partial,
                       SimDuration& latency);
  // Next programmable, in-service fPage of the stream's active block;
  // allocates a new active block (possibly via GC) when needed. Does not
  // advance the cursor.
  StatusOr<FPageIndex> NextProgramTarget(Stream stream, SimDuration& latency);
  Status AllocateActiveBlock(Stream stream, SimDuration& latency);
  Status MaybeGarbageCollect(SimDuration& latency);
  Status GarbageCollectOnce(SimDuration& latency);
  Status EraseAndRecycle(BlockIndex block, SimDuration& latency);

  // --- tiredness ---
  unsigned ComputeLevel(FPageIndex fpage, unsigned current) const;
  void ApplyLevelTransitions(BlockIndex block);
  void RetireInServicePage(FPageIndex fpage, unsigned old_level,
                           unsigned new_level);
  void AdvanceLimboPage(FPageIndex fpage, unsigned old_level,
                        unsigned new_level);

  // --- helpers ---
  void InvalidateSlot(OPageSlot slot);
  EccParams EccForOPageRead(unsigned level) const;
  uint64_t PageCapacity(FPageIndex fpage) const;
  // Extra latency charged when a read touches a tired page under dedicated
  // ECC placement (parity-page fetch on cache miss).
  SimDuration DedicatedEccReadPenalty(unsigned level);
  // If the dedicated-ECC cadence says a parity page is due before `target`
  // can hold data, programs it and advances the cursor. Sets `consumed`.
  Status MaybeProgramParityPage(Stream stream, FPageIndex target,
                                bool& consumed, SimDuration& latency);
  BlockIndex PickGcVictim();
  void ReactivateIfParked(BlockIndex block);

  // --- bounded L2P map cache ---
  uint64_t MapPageOf(uint64_t lpo) const { return lpo / l2p_entries_per_page_; }
  // Grows the map-page arrays to cover the logical space (constructor,
  // ExtendLogicalSpace, and kExtend replay).
  void L2pGrow();
  // Registers a map-page access: LRU bump, hit/miss accounting, and the
  // deterministic fault-in latency of a non-resident flashed page. Never
  // evicts — public ops call L2pEvictToCapacity afterwards, internal touches
  // (GC relocation, buffer flush) over-admit and leave eviction to the
  // enclosing public op.
  void L2pTouch(uint64_t lpo, bool make_dirty, SimDuration& latency);
  // Evicts LRU-tail map pages (dirty ones flush to flash first) until the
  // window is back within capacity. Single bounded pass; on an eviction
  // flush error the pass stops and the overshoot drains on a later op.
  void L2pEvictToCapacity(SimDuration& latency);
  // Writes map page `map_index`'s current durable content to flash under the
  // kMapFlush protocol: journal sync (write-ahead) -> fPage program on the
  // kMap stream -> old-image slot invalidated -> unsynced kMapFlush record
  // (the torn-map-page crash surface).
  Status FlushMapPage(uint64_t map_index, SimDuration& latency);
  // Durable (flash-acknowledged) content of a map page: one entry per lpo in
  // its range; buffered entries read as unmapped. Canonical form: an
  // all-unmapped page returns an empty vector.
  std::vector<uint64_t> L2pDurableContent(uint64_t map_index) const;
  bool UnsyncedTailHasMapFlush() const;
  void L2pLruRemove(uint64_t map_index);
  void L2pLruPushFront(uint64_t map_index);
  // Replay pass 1: overwrite a map page's entries from its DRAM image shadow
  // (the bytes of its newest flushed flash copy).
  void ReplayRestoreMapPage(uint64_t map_index);

  // --- journal ---
  // Append with the auto-sync and at-capacity compaction policy applied.
  void JournalAppend(const JournalRecord& record);
  void JournalPageState(FPageIndex fpage);
  // Rewrites the journal as a minimal description of current state.
  void CompactJournal();

  FtlConfig config_;
  std::unique_ptr<FlashChip> chip_;
  std::vector<TirednessLevelEcc> ladder_;
  FtlStats stats_;
  Rng rng_;

  // Logical -> physical (OPageSlot), or kInBuffer / kUnmapped.
  std::vector<uint64_t> mapping_;
  // Physical slot -> logical page, or kSlotFree.
  std::vector<uint64_t> reverse_;
  uint64_t mapped_opages_ = 0;

  // Per-fPage tiredness level (kDeadLevel when dead) and service state.
  std::vector<uint8_t> page_level_;
  std::vector<PageState> page_state_;
  std::vector<uint64_t> limbo_counts_;             // per level
  std::vector<std::vector<FPageIndex>> limbo_pages_;  // per level, lazy
  uint64_t usable_opages_ = 0;
  uint64_t dead_fpages_ = 0;
  uint64_t retired_blocks_ = 0;

  // Per-block bookkeeping.
  std::vector<BlockState> block_state_;
  std::vector<uint32_t> block_valid_;  // valid oPages on flash in this block
  std::vector<BlockIndex> in_use_blocks_;  // lazy list of GC candidates
  std::vector<uint8_t> in_use_listed_;     // per block: is in the list above
  // Free pool ordered by PEC (lazy entries; validated on pop).
  using PecBlock = std::pair<uint32_t, BlockIndex>;
  std::priority_queue<PecBlock, std::vector<PecBlock>, std::greater<PecBlock>>
      free_pool_;
  uint64_t free_blocks_ = 0;

  struct Frontier {
    BlockIndex active_block = 0;
    bool has_active_block = false;
    uint32_t next_page = 0;  // next page offset to consider
    // NV write buffer: FIFO of logical pages (entries may go stale on trim).
    std::deque<uint64_t> buffer;
    uint64_t buffer_valid = 0;
    // Dedicated-ECC cadence: tired data pages programmed since the last
    // parity page, per level (index = tiredness level).
    uint32_t data_since_parity[8] = {};
  };
  Frontier frontiers_[kStreams];
  Frontier& frontier(Stream stream) {
    return stream == Stream::kMap ? map_frontier_
                                  : frontiers_[static_cast<size_t>(stream)];
  }

  std::vector<PageTransition> transitions_;
  bool in_gc_ = false;

  // --- bounded L2P map cache state (all empty/zero when disabled) ---
  uint64_t l2p_entries_per_page_ = 0;  // resolved from config at construction
  uint64_t l2p_capacity_pages_ = 0;
  // Per map page: physical slot of the newest flushed image (kUnmappedSlot if
  // never flushed) and the DRAM shadow of that image's content (empty inner
  // vector = all-unmapped). The shadow models the bytes on flash; Replay()
  // uses it as the reconstruction base under each surviving kMapFlush.
  std::vector<uint64_t> map_slot_;
  std::vector<std::vector<uint64_t>> map_image_;
  std::vector<uint8_t> l2p_resident_;
  std::vector<uint8_t> l2p_dirty_;  // diverged from the flushed image
  // Intrusive LRU over resident map pages; head = most recent.
  std::vector<uint64_t> l2p_lru_prev_;
  std::vector<uint64_t> l2p_lru_next_;
  uint64_t l2p_lru_head_ = kLruNil;
  uint64_t l2p_lru_tail_ = kLruNil;
  uint64_t l2p_resident_pages_ = 0;
  uint64_t l2p_dirty_pages_ = 0;
  // Map-page programs bypass the NV buffer but still fill their own active
  // block through the shared target-selection path.
  Frontier map_frontier_;
  L2pStats l2p_stats_;

  // --- crash-restart recovery ---
  FtlJournal journal_;
  // Logical pages whose acknowledged content was lost at a power loss.
  std::unordered_set<uint64_t> rolled_back_;
  uint64_t journal_replays_ = 0;
  uint64_t power_losses_ = 0;
};

}  // namespace salamander

#endif  // SALAMANDER_FTL_FTL_H_
