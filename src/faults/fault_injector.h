// Deterministic cross-layer fault injection (chaos engineering for the
// simulator).
//
// The production simulator only ever produces one well-behaved failure:
// wear-driven decommissioning delivered over a perfectly reliable event
// channel. The FaultInjector widens that to the failure classes a real
// storage stack must absorb — program/erase failures and silent bit
// corruption in the flash, dropped/duplicated/delayed lifecycle events and
// crashes at the device boundary, node outages and lost acknowledgements in
// the diFS — so the recovery machinery in src/difs can be exercised against
// arbitrary partial failures, not just the one it was written for.
//
// Determinism rules (they mirror PR 1's per-device Rng discipline):
//  * Every injection site owns an independent Rng stream, forked from the
//    injector's root in fixed FaultSite order. Enabling or re-tuning one
//    site never shifts another site's schedule.
//  * Injector roots are seeded from FaultConfig::seed plus a caller-chosen
//    stream id (one injector per device, one per cluster), never from the
//    simulation's existing Rng streams — so a disabled injector leaves every
//    pre-existing stream, and therefore every bench output, bit-identical.
//  * A disabled injector (or a site with probability zero) performs no Rng
//    draws at all.
//  * An injector is owned by exactly one device (or one cluster) and is only
//    called from the thread currently stepping that owner, the same
//    discipline that makes parallel fleet stepping bit-identical.
#ifndef SALAMANDER_FAULTS_FAULT_INJECTOR_H_
#define SALAMANDER_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>
#include <string_view>

#include "common/rng.h"

namespace salamander {

// Every place the injector can perturb the stack. Order is part of the
// determinism contract: per-site streams are forked in this order, so the
// enum may be appended to but never reordered.
enum class FaultSite : uint8_t {
  kProgramFail = 0,        // flash: fPage program-status failure
  kEraseFail,              // flash: block erase failure
  kReadCorrupt,            // flash: silent corruption beyond the ECC budget
  kTransientUnavailable,   // device: busy plane, host op returns kUnavailable
  kEventDrop,              // device: lifecycle event lost on the channel
  kEventDuplicate,         // device: lifecycle event delivered twice
  kEventDelay,             // device: lifecycle event delivered waves later
  kCrashDuringDrain,       // device: whole-device crash mid-drain
  kNodeOutage,             // diFS: node unreachable, rejoins later
  kAckDrainLost,           // diFS: AckDrain never reaches the device
  kPowerLoss,              // device: transient power loss (restartable)
  kTornJournalWrite,       // ftl: unsynced journal tail torn at power loss
  kRackPowerLoss,          // domain: whole-rack power loss (all devices)
  kCohortUnavailable,      // domain: batch cohort transiently unavailable
  kSiteCount,
};

std::string_view FaultSiteName(FaultSite site);

// Per-site injection probabilities. All default to zero: a
// default-constructed config injects nothing even when "enabled".
struct FaultConfig {
  // ---- Flash layer (consulted by FlashChip) ------------------------------
  double program_fail = 0.0;   // per fPage program
  double erase_fail = 0.0;     // per block erase
  double read_corrupt = 0.0;   // per fPage read: uncorrectable after retries

  // ---- Device boundary (consulted by SsdDevice) --------------------------
  double transient_unavailable = 0.0;  // per host op
  double event_drop = 0.0;             // per event leaving TakeEvents
  double event_duplicate = 0.0;        // per event leaving TakeEvents
  double event_delay = 0.0;            // per event leaving TakeEvents
  // A delayed event matures after Uniform[1, event_delay_waves_max]
  // subsequent TakeEvents calls.
  uint32_t event_delay_waves_max = 3;
  // Per TakeEvents call while the device has draining mDisks: brick it.
  double crash_during_drain = 0.0;

  // ---- diFS layer (consulted by DifsCluster) -----------------------------
  double node_outage = 0.0;  // per cluster maintenance tick
  // An outage lasts Uniform[1, node_outage_ticks_max] maintenance ticks.
  uint32_t node_outage_ticks_max = 4;
  double ack_drain_lost = 0.0;  // per AckDrain send

  // ---- Crash-restart (consulted by the fleet sim / SsdDevice) ------------
  double power_loss = 0.0;  // per device-day: transient power loss
  // On power loss: probability that the unsynced journal tail is torn; when
  // it hits, Uniform[1, unsynced] trailing records are discarded.
  double torn_journal_write = 0.0;

  // ---- Correlated failure domains (consulted by harnesses) ----------------
  double rack_power_loss = 0.0;      // per rack-day: rack loses power
  double cohort_unavailable = 0.0;   // per cohort-day: batch cohort pauses

  uint64_t seed = 0xc4a05f0011ec7edULL;
};

// Injection counts per site, for assertions and soak reports.
struct FaultStats {
  static constexpr int kSites = static_cast<int>(FaultSite::kSiteCount);

  uint64_t injected[static_cast<size_t>(FaultSite::kSiteCount)] = {};

  uint64_t count(FaultSite site) const {
    return injected[static_cast<size_t>(site)];
  }
  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t n : injected) {
      sum += n;
    }
    return sum;
  }
};

class FaultInjector {
 public:
  // Permanently disabled: every decision helper returns "no fault" without
  // touching any Rng state.
  FaultInjector() = default;

  // Enabled injector. `stream_id` selects an independent stream family from
  // the same config seed (one id per device in device-index order, a
  // distinct id for the cluster), mirroring Rng::Fork()'s fork-in-id-order
  // discipline.
  FaultInjector(const FaultConfig& config, uint64_t stream_id);

  bool enabled() const { return enabled_; }
  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }

  // ---- Decision helpers. Disabled or probability-zero sites return the
  // ---- "no fault" answer with zero Rng draws.

  bool ProgramFails();
  bool EraseFails();
  bool CorruptsRead();
  bool TransientlyUnavailable();
  bool DropsEvent();
  bool DuplicatesEvent();
  // 0 = deliver now; N > 0 = hold the event for N TakeEvents waves.
  uint32_t EventDelayWaves();
  bool CrashesDuringDrain();
  bool StartsNodeOutage();
  // Drawn from the kNodeOutage stream after StartsNodeOutage() hits.
  uint32_t OutageNode(uint32_t node_count);
  uint32_t OutageTicks();
  bool LosesAckDrain();
  bool LosesPower();
  // 0 = journal tail intact; N > 0 = the N most recent unsynced records are
  // torn (never more than `unsynced_count`). Zero draws when the site is
  // dormant or there is nothing unsynced to tear.
  uint64_t TornJournalRecords(uint64_t unsynced_count);
  bool RackLosesPower();
  bool CohortGoesUnavailable();

 private:
  static constexpr size_t kSites = static_cast<size_t>(FaultSite::kSiteCount);

  // Bernoulli(p) on the site's own stream; counts a hit in stats_.
  bool Draw(FaultSite site, double p);
  Rng& stream(FaultSite site) {
    return streams_[static_cast<size_t>(site)];
  }

  FaultConfig config_;
  bool enabled_ = false;
  Rng streams_[kSites];
  FaultStats stats_;
};

}  // namespace salamander

#endif  // SALAMANDER_FAULTS_FAULT_INJECTOR_H_
