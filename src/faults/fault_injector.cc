#include "faults/fault_injector.h"

namespace salamander {

std::string_view FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kProgramFail:
      return "program_fail";
    case FaultSite::kEraseFail:
      return "erase_fail";
    case FaultSite::kReadCorrupt:
      return "read_corrupt";
    case FaultSite::kTransientUnavailable:
      return "transient_unavailable";
    case FaultSite::kEventDrop:
      return "event_drop";
    case FaultSite::kEventDuplicate:
      return "event_duplicate";
    case FaultSite::kEventDelay:
      return "event_delay";
    case FaultSite::kCrashDuringDrain:
      return "crash_during_drain";
    case FaultSite::kNodeOutage:
      return "node_outage";
    case FaultSite::kAckDrainLost:
      return "ack_drain_lost";
    case FaultSite::kPowerLoss:
      return "power_loss";
    case FaultSite::kTornJournalWrite:
      return "torn_journal_write";
    case FaultSite::kRackPowerLoss:
      return "rack_power_loss";
    case FaultSite::kCohortUnavailable:
      return "cohort_unavailable";
    case FaultSite::kSiteCount:
      break;
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultConfig& config, uint64_t stream_id)
    : config_(config), enabled_(true) {
  // Same fork-in-id-order derivation the fleet uses for device streams:
  // walk the root forward `stream_id` forks, then take ours. Each injector
  // gets an independent family regardless of construction order.
  Rng root(config.seed);
  for (uint64_t i = 0; i < stream_id; ++i) {
    (void)root.Fork();
  }
  Rng parent = root.Fork();
  for (size_t site = 0; site < kSites; ++site) {
    streams_[site] = parent.Fork();
  }
}

bool FaultInjector::Draw(FaultSite site, double p) {
  if (!enabled_ || p <= 0.0) {
    return false;
  }
  if (!stream(site).Bernoulli(p)) {
    return false;
  }
  ++stats_.injected[static_cast<size_t>(site)];
  return true;
}

bool FaultInjector::ProgramFails() {
  return Draw(FaultSite::kProgramFail, config_.program_fail);
}

bool FaultInjector::EraseFails() {
  return Draw(FaultSite::kEraseFail, config_.erase_fail);
}

bool FaultInjector::CorruptsRead() {
  return Draw(FaultSite::kReadCorrupt, config_.read_corrupt);
}

bool FaultInjector::TransientlyUnavailable() {
  return Draw(FaultSite::kTransientUnavailable, config_.transient_unavailable);
}

bool FaultInjector::DropsEvent() {
  return Draw(FaultSite::kEventDrop, config_.event_drop);
}

bool FaultInjector::DuplicatesEvent() {
  return Draw(FaultSite::kEventDuplicate, config_.event_duplicate);
}

uint32_t FaultInjector::EventDelayWaves() {
  if (!Draw(FaultSite::kEventDelay, config_.event_delay)) {
    return 0;
  }
  const uint32_t max_waves =
      config_.event_delay_waves_max > 0 ? config_.event_delay_waves_max : 1;
  return static_cast<uint32_t>(
      stream(FaultSite::kEventDelay).UniformInRange(1, max_waves));
}

bool FaultInjector::CrashesDuringDrain() {
  return Draw(FaultSite::kCrashDuringDrain, config_.crash_during_drain);
}

bool FaultInjector::StartsNodeOutage() {
  return Draw(FaultSite::kNodeOutage, config_.node_outage);
}

uint32_t FaultInjector::OutageNode(uint32_t node_count) {
  if (node_count == 0) {
    return 0;
  }
  return static_cast<uint32_t>(
      stream(FaultSite::kNodeOutage).UniformU64(node_count));
}

uint32_t FaultInjector::OutageTicks() {
  const uint32_t max_ticks =
      config_.node_outage_ticks_max > 0 ? config_.node_outage_ticks_max : 1;
  return static_cast<uint32_t>(
      stream(FaultSite::kNodeOutage).UniformInRange(1, max_ticks));
}

bool FaultInjector::LosesAckDrain() {
  return Draw(FaultSite::kAckDrainLost, config_.ack_drain_lost);
}

bool FaultInjector::LosesPower() {
  return Draw(FaultSite::kPowerLoss, config_.power_loss);
}

uint64_t FaultInjector::TornJournalRecords(uint64_t unsynced_count) {
  if (unsynced_count == 0) {
    return 0;
  }
  if (!Draw(FaultSite::kTornJournalWrite, config_.torn_journal_write)) {
    return 0;
  }
  return stream(FaultSite::kTornJournalWrite)
      .UniformInRange(1, unsynced_count);
}

bool FaultInjector::RackLosesPower() {
  return Draw(FaultSite::kRackPowerLoss, config_.rack_power_loss);
}

bool FaultInjector::CohortGoesUnavailable() {
  return Draw(FaultSite::kCohortUnavailable, config_.cohort_unavailable);
}

}  // namespace salamander
