// Minimal fixed-size worker pool for embarrassingly parallel simulation
// loops (fleet device stepping, multi-seed bench sweeps).
//
// Design constraints, in priority order:
//   1. Determinism — the pool never makes scheduling decisions that can leak
//      into simulation results. Callers partition work by index, each work
//      item owns disjoint state, and results are merged in index order, so
//      output is byte-identical for any thread count (including 1).
//   2. Auditability under TSan — all handoff happens under one mutex /
//      condition-variable pair; there is no lock-free cleverness to reason
//      about.
//   3. Zero surprise in the serial case — a pool with <= 1 thread creates no
//      workers at all; Submit and ParallelFor then execute inline on the
//      calling thread, so `threads = 1` behaves exactly like a plain loop.
#ifndef SALAMANDER_COMMON_THREAD_POOL_H_
#define SALAMANDER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace salamander {

class ThreadPool {
 public:
  // `threads == 0` resolves to HardwareThreads(); `threads <= 1` runs in
  // inline mode (no workers are spawned).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of spawned worker threads (0 in inline mode).
  unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }
  // Parallel width seen by callers: max(1, worker_count()).
  unsigned width() const {
    return workers_.empty() ? 1u : worker_count();
  }

  // Enqueues one task. Inline mode executes it before returning. Tasks must
  // not call back into this pool (no nested Submit/ParallelFor from a
  // worker): Wait() counts only the owner's submissions and a nested
  // ParallelFor would deadlock waiting for a slot it occupies.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished. Call from the
  // owning thread only.
  void Wait();

  // Splits [0, n) into contiguous chunks — several per worker, so uneven
  // per-item cost (e.g. dead devices finishing instantly) still balances —
  // and runs `body(begin, end)` for each. Blocks until all chunks are done.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body);

  // std::thread::hardware_concurrency() with a floor of 1.
  static unsigned HardwareThreads();

  // Canonical resolution of a requested thread count: 0 ("all hardware
  // threads") maps to HardwareThreads(), everything else passes through
  // unchanged. Always returns >= 1, including on hosts where
  // hardware_concurrency() reports 0. The constructor and every `--threads`
  // flag consumer share this so "0" means the same thing everywhere.
  static unsigned ResolveThreads(unsigned requested) {
    return requested == 0 ? HardwareThreads() : requested;
  }

  // True when `requested` resolves to more threads than the host has
  // hardware threads for — the regime where measured "speedups" are
  // scheduler noise, not parallelism (e.g. 4 workers on a 1-core host).
  static bool Oversubscribed(unsigned requested) {
    return ResolveThreads(requested) > HardwareThreads();
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
};

}  // namespace salamander

#endif  // SALAMANDER_COMMON_THREAD_POOL_H_
