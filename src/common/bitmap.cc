#include "common/bitmap.h"

#include <bit>
#include <cassert>

namespace salamander {

Bitmap::Bitmap(uint64_t size, bool initial) {
  Resize(size, initial);
}

void Bitmap::Resize(uint64_t size, bool value) {
  const uint64_t words = (size + kBitsPerWord - 1) / kBitsPerWord;
  words_.assign(words, value ? ~0ULL : 0ULL);
  size_ = size;
  // Keep bits beyond size_ clear so CountSet stays exact.
  if (value && size_ % kBitsPerWord != 0) {
    words_.back() &= (1ULL << (size_ % kBitsPerWord)) - 1;
  }
}

bool Bitmap::Test(uint64_t index) const {
  assert(index < size_);
  return (words_[index / kBitsPerWord] >> (index % kBitsPerWord)) & 1ULL;
}

void Bitmap::Set(uint64_t index) {
  assert(index < size_);
  words_[index / kBitsPerWord] |= 1ULL << (index % kBitsPerWord);
}

void Bitmap::Clear(uint64_t index) {
  assert(index < size_);
  words_[index / kBitsPerWord] &= ~(1ULL << (index % kBitsPerWord));
}

void Bitmap::Assign(uint64_t index, bool value) {
  if (value) {
    Set(index);
  } else {
    Clear(index);
  }
}

uint64_t Bitmap::CountSet() const {
  uint64_t total = 0;
  for (uint64_t word : words_) {
    total += static_cast<uint64_t>(std::popcount(word));
  }
  return total;
}

uint64_t Bitmap::CountSetInRange(uint64_t begin, uint64_t end) const {
  if (begin >= end || begin >= size_) {
    return 0;
  }
  if (end > size_) {
    end = size_;
  }
  uint64_t total = 0;
  uint64_t first_word = begin / kBitsPerWord;
  uint64_t last_word = (end - 1) / kBitsPerWord;
  for (uint64_t w = first_word; w <= last_word; ++w) {
    uint64_t word = words_[w];
    if (w == first_word) {
      word &= ~0ULL << (begin % kBitsPerWord);
    }
    if (w == last_word && end % kBitsPerWord != 0) {
      word &= (1ULL << (end % kBitsPerWord)) - 1;
    }
    total += static_cast<uint64_t>(std::popcount(word));
  }
  return total;
}

uint64_t Bitmap::FindFirstSet(uint64_t from) const {
  for (uint64_t w = from / kBitsPerWord; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    if (w == from / kBitsPerWord) {
      word &= ~0ULL << (from % kBitsPerWord);
    }
    if (word != 0) {
      uint64_t index =
          w * kBitsPerWord + static_cast<uint64_t>(std::countr_zero(word));
      return index < size_ ? index : size_;
    }
  }
  return size_;
}

uint64_t Bitmap::FindFirstClear(uint64_t from) const {
  for (uint64_t w = from / kBitsPerWord; w < words_.size(); ++w) {
    uint64_t word = ~words_[w];
    if (w == from / kBitsPerWord) {
      word &= ~0ULL << (from % kBitsPerWord);
    }
    if (word != 0) {
      uint64_t index =
          w * kBitsPerWord + static_cast<uint64_t>(std::countr_zero(word));
      return index < size_ ? index : size_;
    }
  }
  return size_;
}

void Bitmap::SetAll() {
  words_.assign(words_.size(), ~0ULL);
  if (size_ % kBitsPerWord != 0 && !words_.empty()) {
    words_.back() &= (1ULL << (size_ % kBitsPerWord)) - 1;
  }
}

void Bitmap::ClearAll() {
  words_.assign(words_.size(), 0ULL);
}

}  // namespace salamander
