// Discrete-event simulation kernel shared by the diFS cluster and fleet
// simulators. Single-threaded and deterministic: events at equal timestamps
// fire in scheduling order (a monotone sequence number breaks ties).
#ifndef SALAMANDER_COMMON_EVENT_QUEUE_H_
#define SALAMANDER_COMMON_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace salamander {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Current simulated time. Advances only inside Run/RunUntil/Step.
  SimTime Now() const { return now_; }

  // Schedules `callback` to fire at absolute time `when` (>= Now()).
  // Returns an id usable with Cancel().
  uint64_t ScheduleAt(SimTime when, Callback callback);

  // Schedules `callback` to fire `delay` after Now().
  uint64_t ScheduleAfter(SimDuration delay, Callback callback);

  // Cancels a pending event; no-op if already fired or unknown.
  void Cancel(uint64_t id);

  // Fires the next event, advancing the clock. Returns false if empty.
  bool Step();

  // Runs until the queue drains.
  void Run();

  // Runs until the queue drains or the clock would pass `deadline`;
  // leaves later events pending and sets Now() to `deadline` when it stops
  // early.
  void RunUntil(SimTime deadline);

  bool empty() const { return live_events_ == 0; }
  uint64_t pending_events() const { return live_events_; }

 private:
  struct Event {
    SimTime when;
    uint64_t sequence;
    uint64_t id;
    Callback callback;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.sequence > b.sequence;
    }
  };

  SimTime now_ = 0;
  uint64_t next_sequence_ = 0;
  uint64_t next_id_ = 1;
  uint64_t live_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  // Ids still awaiting dispatch. Cancelled events are removed from this set
  // and lazily skipped when they surface at the top of the heap.
  std::unordered_set<uint64_t> pending_ids_;
};

}  // namespace salamander

#endif  // SALAMANDER_COMMON_EVENT_QUEUE_H_
