// Statistics containers used by the benchmarks and the diFS/fleet simulators.
//
// LogHistogram is an HDR-style log-bucketed histogram: O(1) record, bounded
// relative error on quantiles, fixed memory. RunningStats is Welford's
// streaming mean/variance. TimeSeries collects (time, value) samples for the
// figure-reproduction benches.
#ifndef SALAMANDER_COMMON_HISTOGRAM_H_
#define SALAMANDER_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace salamander {

// Log-bucketed histogram over uint64 values (e.g. latencies in ns).
// Buckets: value 0, then for each power of two a fixed number of linear
// sub-buckets, giving ~3% worst-case relative quantile error with the
// default 32 sub-buckets.
class LogHistogram {
 public:
  explicit LogHistogram(uint32_t sub_buckets_per_octave = 32);

  void Record(uint64_t value);
  void RecordN(uint64_t value, uint64_t count);

  uint64_t count() const { return count_; }
  // Smallest / largest recorded value. An empty histogram reports 0 for
  // both (a defined sentinel, not UINT64_MAX leaking out of min_).
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  // Returns the smallest recorded-bucket upper bound v such that at least
  // q*count() samples are <= v. q is clamped to [0, 1]: q <= 0 (and NaN)
  // yields min(), q >= 1 yields max(). An empty histogram yields 0 for
  // every q.
  uint64_t Quantile(double q) const;

  uint64_t P50() const { return Quantile(0.50); }
  uint64_t P95() const { return Quantile(0.95); }
  uint64_t P99() const { return Quantile(0.99); }
  uint64_t P999() const { return Quantile(0.999); }

  // Adds `other`'s samples into this histogram. Both histograms must have
  // the same sub_buckets_per_octave (after pow2 rounding); a mismatched
  // layout is rejected — `this` is left untouched and Merge returns false.
  bool Merge(const LogHistogram& other);
  void Reset();

  // One-line human-readable summary, e.g. for bench output.
  std::string Summary() const;

 private:
  uint64_t BucketIndex(uint64_t value) const;
  uint64_t BucketUpperBound(uint64_t index) const;

  uint32_t sub_buckets_;
  uint32_t sub_bucket_shift_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

// Streaming mean / variance (Welford). Numerically stable, O(1) memory.
class RunningStats {
 public:
  void Record(double value);

  uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double Variance() const;
  double StdDev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // Folds `other`'s samples into this accumulator (Chan et al.'s parallel
  // variance combination), as if every value had been Record()ed here.
  void Merge(const RunningStats& other);

  void Reset();

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Ordered (x, y) sample series; the bench harness prints these as the
// figure's data rows.
class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void Add(double x, double y) { points_.emplace_back(x, y); }

  const std::string& name() const { return name_; }
  const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }
  bool empty() const { return points_.empty(); }

  // Linear interpolation of y at x; clamps outside the sampled range.
  double Interpolate(double x) const;

 private:
  std::string name_;
  std::vector<std::pair<double, double>> points_;
};

}  // namespace salamander

#endif  // SALAMANDER_COMMON_HISTOGRAM_H_
