// Minimal leveled logging. Defaults to kWarning so simulations stay quiet;
// examples and debugging sessions can raise the level.
#ifndef SALAMANDER_COMMON_LOGGING_H_
#define SALAMANDER_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace salamander {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

// Process-wide minimum level; messages below it are dropped. Atomic, so it
// may be read/written from any thread.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr. Thread-safe: each line is a single
// fprintf call, so concurrent messages never interleave mid-line (fleet
// workers may log while stepping devices in parallel).
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace log_internal {

// Stream collector so call sites can write SALA_LOG(kInfo) << "x=" << x;
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

struct Voidify {
  void operator&&(const LogStream&) const {}
};

// Per-call-site counter behind SALA_LOG_EVERY_N. Atomic so parallel fleet
// workers hitting the same site race benignly (a rare off-by-one in *which*
// occurrence logs, never a torn count).
struct EveryNState {
  std::atomic<uint64_t> count{0};

  // True on occurrences 1, N+1, 2N+1, ... Sets `occurrence` to the running
  // hit count so the emitted line can say how many were suppressed.
  bool ShouldLog(uint64_t n, uint64_t& occurrence) {
    occurrence = count.fetch_add(1, std::memory_order_relaxed) + 1;
    return n <= 1 || (occurrence % n) == 1;
  }
};

}  // namespace log_internal

}  // namespace salamander

#define SALA_LOG(severity)                                                 \
  (::salamander::LogLevel::severity < ::salamander::GetLogLevel())         \
      ? (void)0                                                            \
      : ::salamander::log_internal::Voidify() &&                           \
            ::salamander::log_internal::LogStream(                         \
                ::salamander::LogLevel::severity, __FILE__, __LINE__)

// Rate-limited variant: emits occurrences 1, N+1, 2N+1, ... of this call
// site and silently counts the rest. For events that are individually
// uninteresting but arrive in floods — e.g. every injected fault during a
// chaos soak. The lambda gives each expansion its own static counter.
//   SALA_LOG_EVERY_N(kWarning, 1000) << "injected fault: " << detail;
#define SALA_LOG_EVERY_N(severity, n)                                      \
  for (uint64_t sala_every_n_occurrence_ =                                 \
           [] {                                                            \
             static ::salamander::log_internal::EveryNState state;         \
             uint64_t occurrence = 0;                                      \
             return state.ShouldLog((n), occurrence) ? occurrence : 0;     \
           }();                                                            \
       sala_every_n_occurrence_ != 0; sala_every_n_occurrence_ = 0)        \
  SALA_LOG(severity) << "[occurrence " << sala_every_n_occurrence_ << "] "

#endif  // SALAMANDER_COMMON_LOGGING_H_
