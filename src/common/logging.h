// Minimal leveled logging. Defaults to kWarning so simulations stay quiet;
// examples and debugging sessions can raise the level.
#ifndef SALAMANDER_COMMON_LOGGING_H_
#define SALAMANDER_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace salamander {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

// Process-wide minimum level; messages below it are dropped. Atomic, so it
// may be read/written from any thread.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr. Thread-safe: each line is a single
// fprintf call, so concurrent messages never interleave mid-line (fleet
// workers may log while stepping devices in parallel).
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace log_internal {

// Stream collector so call sites can write SALA_LOG(kInfo) << "x=" << x;
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

struct Voidify {
  void operator&&(const LogStream&) const {}
};

}  // namespace log_internal

}  // namespace salamander

#define SALA_LOG(severity)                                                 \
  (::salamander::LogLevel::severity < ::salamander::GetLogLevel())         \
      ? (void)0                                                            \
      : ::salamander::log_internal::Voidify() &&                           \
            ::salamander::log_internal::LogStream(                         \
                ::salamander::LogLevel::severity, __FILE__, __LINE__)

#endif  // SALAMANDER_COMMON_LOGGING_H_
