// Lightweight status / status-or types used across all Salamander libraries.
//
// The simulator is exception-free on its hot paths: every fallible operation
// returns a Status (or StatusOr<T>) that the caller must inspect. This keeps
// failure propagation explicit, which matters for a device model whose entire
// purpose is to *produce* failures (worn-out pages, decommissioned minidisks,
// bricked devices) that callers are expected to handle rather than unwind from.
#ifndef SALAMANDER_COMMON_STATUS_H_
#define SALAMANDER_COMMON_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace salamander {

// Canonical error space. Values are deliberately storage-flavoured: the
// interesting outcomes of an I/O against aging flash are not generic failures
// but specific, recoverable conditions (e.g. kDataLoss from an uncorrectable
// page, kCapacityExhausted from a shrunken device).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller bug: bad LBA, bad size, bad config
  kOutOfRange,         // address beyond the (possibly shrunken) device
  kNotFound,           // unmapped LBA, unknown minidisk, unknown chunk
  kAlreadyExists,      // duplicate registration
  kFailedPrecondition, // operation illegal in current state (e.g. bricked)
  kResourceExhausted,  // no free flash pages / no spare blocks
  kCapacityExhausted,  // logical capacity shrank below what caller needs
  kDataLoss,           // uncorrectable bit errors: data is gone
  kDeviceFailed,       // whole device bricked
  kUnavailable,        // transient: retry may succeed (e.g. busy plane)
  kUnimplemented,
  kInternal,
};

// Human-readable name of a status code ("OK", "DATA_LOSS", ...).
std::string_view StatusCodeName(StatusCode code);

// A success-or-error result with an optional diagnostic message.
// Cheap to copy in the OK case (no allocation).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Full "CODE: message" rendering for logs and test failure output.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

inline std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

inline std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCapacityExhausted:
      return "CAPACITY_EXHAUSTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kDeviceFailed:
      return "DEVICE_FAILED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

// Convenience constructors, mirroring absl::*Error.
inline Status OkStatus() { return Status(); }
inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status CapacityExhaustedError(std::string msg) {
  return Status(StatusCode::kCapacityExhausted, std::move(msg));
}
inline Status DataLossError(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
inline Status DeviceFailedError(std::string msg) {
  return Status(StatusCode::kDeviceFailed, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

// Terminates with the offending status. Accessing value() on an error state
// is a caller bug; silently reading the empty optional would be UB, so this
// aborts in every build mode (assert() would vanish under NDEBUG).
[[noreturn]] inline void DieOnBadStatusOrAccess(const Status& status) {
  std::fprintf(stderr, "StatusOr::value() called on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

// Value-or-error. Accessing value() on an error status aborts (in all build
// modes); callers are expected to check ok() first (the [[nodiscard]] on the
// factory functions plus tests enforce the discipline).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    if (!ok()) {
      DieOnBadStatusOrAccess(status_);
    }
    return *value_;
  }
  T& value() & {
    if (!ok()) {
      DieOnBadStatusOrAccess(status_);
    }
    return *value_;
  }
  T&& value() && {
    if (!ok()) {
      DieOnBadStatusOrAccess(status_);
    }
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace salamander

// Propagate-on-error helpers. Usage:
//   SALA_RETURN_IF_ERROR(device.Write(lba, data));
//   SALA_ASSIGN_OR_RETURN(auto page, ftl.Lookup(lba));
#define SALA_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::salamander::Status sala_status_ = (expr); \
    if (!sala_status_.ok()) {                   \
      return sala_status_;                      \
    }                                           \
  } while (0)

#define SALA_CONCAT_INNER_(a, b) a##b
#define SALA_CONCAT_(a, b) SALA_CONCAT_INNER_(a, b)

#define SALA_ASSIGN_OR_RETURN(decl, expr)                        \
  auto SALA_CONCAT_(sala_statusor_, __LINE__) = (expr);          \
  if (!SALA_CONCAT_(sala_statusor_, __LINE__).ok()) {            \
    return SALA_CONCAT_(sala_statusor_, __LINE__).status();      \
  }                                                              \
  decl = std::move(SALA_CONCAT_(sala_statusor_, __LINE__)).value()

#endif  // SALAMANDER_COMMON_STATUS_H_
