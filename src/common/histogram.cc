#include "common/histogram.h"

#include <bit>
#include <cmath>
#include <sstream>

namespace salamander {

namespace {

// Rounds up to a power of two, min 1.
uint32_t CeilPow2(uint32_t v) {
  if (v <= 1) {
    return 1;
  }
  return std::bit_ceil(v);
}

}  // namespace

LogHistogram::LogHistogram(uint32_t sub_buckets_per_octave)
    : sub_buckets_(CeilPow2(sub_buckets_per_octave)),
      sub_bucket_shift_(static_cast<uint32_t>(std::countr_zero(sub_buckets_))) {
  // Bucket 0 holds the value 0; each of the 64 octaves contributes
  // sub_buckets_ linear buckets.
  buckets_.assign(1 + 64 * sub_buckets_, 0);
}

uint64_t LogHistogram::BucketIndex(uint64_t value) const {
  if (value == 0) {
    return 0;
  }
  const uint32_t octave = 63 - static_cast<uint32_t>(std::countl_zero(value));
  uint64_t offset_in_octave;
  if (octave >= sub_bucket_shift_) {
    offset_in_octave = (value >> (octave - sub_bucket_shift_)) - sub_buckets_;
  } else {
    // Small octaves have fewer distinct values than sub-buckets; spread them
    // at the octave start.
    offset_in_octave = (value << (sub_bucket_shift_ - octave)) - sub_buckets_;
  }
  return 1 + static_cast<uint64_t>(octave) * sub_buckets_ + offset_in_octave;
}

uint64_t LogHistogram::BucketUpperBound(uint64_t index) const {
  if (index == 0) {
    return 0;
  }
  const uint64_t i = index - 1;
  const uint32_t octave = static_cast<uint32_t>(i >> sub_bucket_shift_);
  const uint64_t offset = (i & (sub_buckets_ - 1)) + sub_buckets_;
  if (octave >= sub_bucket_shift_) {
    const uint32_t shift = octave - sub_bucket_shift_;
    // Highest value mapping to this bucket.
    return ((offset + 1) << shift) - 1;
  }
  return (offset + 1) >> (sub_bucket_shift_ - octave);
}

void LogHistogram::Record(uint64_t value) {
  RecordN(value, 1);
}

void LogHistogram::RecordN(uint64_t value, uint64_t n) {
  if (n == 0) {
    return;
  }
  buckets_[BucketIndex(value)] += n;
  count_ += n;
  sum_ += value * n;
  if (value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
}

double LogHistogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t LogHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  // `!(q > 0.0)` (rather than `q <= 0.0`) also routes NaN to the min,
  // keeping the ceil/cast below on finite input only.
  if (!(q > 0.0)) {
    return min();
  }
  if (q >= 1.0) {
    return max_;
  }
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  uint64_t cumulative = 0;
  for (uint64_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      uint64_t bound = BucketUpperBound(i);
      return bound > max_ ? max_ : bound;
    }
  }
  return max_;
}

bool LogHistogram::Merge(const LogHistogram& other) {
  // Merging requires identical bucket layouts; both ctors round to pow2 so
  // a mismatch means caller error — reject it rather than aggregate counts
  // into the wrong value ranges.
  if (other.buckets_.size() != buckets_.size()) {
    return false;
  }
  for (uint64_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }
  return true;
}

void LogHistogram::Reset() {
  buckets_.assign(buckets_.size(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

std::string LogHistogram::Summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << Mean() << " min=" << min()
     << " p50=" << P50() << " p95=" << P95() << " p99=" << P99()
     << " max=" << max_;
  return os.str();
}

void RunningStats::Record(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) {
      min_ = value;
    }
    if (value > max_) {
      max_ = value;
    }
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  if (other.min_ < min_) {
    min_ = other.min_;
  }
  if (other.max_ > max_) {
    max_ = other.max_;
  }
}

double RunningStats::Variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const {
  return std::sqrt(Variance());
}

void RunningStats::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double TimeSeries::Interpolate(double x) const {
  if (points_.empty()) {
    return 0.0;
  }
  if (x <= points_.front().first) {
    return points_.front().second;
  }
  if (x >= points_.back().first) {
    return points_.back().second;
  }
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].first >= x) {
      const auto& [x0, y0] = points_[i - 1];
      const auto& [x1, y1] = points_[i];
      if (x1 == x0) {
        return y1;
      }
      const double t = (x - x0) / (x1 - x0);
      return y0 + t * (y1 - y0);
    }
  }
  return points_.back().second;
}

}  // namespace salamander
