#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace salamander {

namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(sm);
  }
  // xoshiro's all-zero state is absorbing; the SplitMix64 expansion of any
  // seed cannot produce it, but guard anyway for belt-and-braces safety.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Lemire's method: multiply-high with rejection of the biased low range.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::UniformInRange(uint64_t lo, uint64_t hi) {
  return lo + UniformU64(hi - lo + 1);
}

double Rng::UniformDouble() {
  // Top 53 bits → [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller. Draw u1 in (0, 1] to keep the log finite.
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double lambda) {
  double u = 1.0 - UniformDouble();  // (0, 1]
  return -std::log(u) / lambda;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

uint64_t Rng::Binomial(uint64_t n, double p) {
  if (n == 0 || p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return n;
  }
  const double np = static_cast<double>(n) * p;
  // For the flash error model's regime (tiny p, large n) the Poisson limit is
  // an excellent and fast approximation; switch to a normal approximation when
  // the mean is large, and fall back to exact trials only for small n.
  if (n <= 64) {
    uint64_t successes = 0;
    for (uint64_t i = 0; i < n; ++i) {
      successes += Bernoulli(p) ? 1 : 0;
    }
    return successes;
  }
  if (np < 30.0) {
    uint64_t draw = Poisson(np);
    return draw > n ? n : draw;
  }
  const double mean = np;
  const double stddev = std::sqrt(np * (1.0 - p));
  double sample = std::round(Normal(mean, stddev));
  if (sample < 0.0) {
    return 0;
  }
  if (sample > static_cast<double>(n)) {
    return n;
  }
  return static_cast<uint64_t>(sample);
}

uint64_t Rng::Poisson(double lambda) {
  if (lambda <= 0.0) {
    return 0;
  }
  if (lambda < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-lambda);
    double product = UniformDouble();
    uint64_t count = 0;
    while (product > limit) {
      product *= UniformDouble();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction.
  double sample = std::round(Normal(lambda, std::sqrt(lambda)));
  return sample < 0.0 ? 0 : static_cast<uint64_t>(sample);
}

Rng Rng::Fork() {
  return Rng(NextU64());
}

}  // namespace salamander
