#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace salamander {

namespace {

// Atomic so worker threads (fleet stepping) can check the level while a
// test or example adjusts it; each fprintf below is a single call, which
// POSIX serializes per stream, so concurrent lines never interleave.
std::atomic<LogLevel> g_min_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Trims the path down to the final component for compact log lines.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return g_min_level.load(std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (level < GetLogLevel()) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, message.c_str());
}

}  // namespace salamander
