#include "common/logging.h"

#include <cstdio>
#include <cstring>

namespace salamander {

namespace {

LogLevel g_min_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Trims the path down to the final component for compact log lines.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level = level;
}

LogLevel GetLogLevel() {
  return g_min_level;
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (level < g_min_level) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, message.c_str());
}

}  // namespace salamander
