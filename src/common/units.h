// Fixed-width unit helpers shared by every Salamander library.
//
// Sizes are plain uint64_t byte counts (strong types proved noisier than
// helpful for a simulator whose arithmetic is all byte math); durations are
// simulated nanoseconds. The simulation clock has no relation to wall time.
#ifndef SALAMANDER_COMMON_UNITS_H_
#define SALAMANDER_COMMON_UNITS_H_

#include <cstdint>

namespace salamander {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;
inline constexpr uint64_t kTiB = 1024 * kGiB;

// Simulated time, in nanoseconds since simulation start.
using SimTime = uint64_t;
// A span of simulated time, in nanoseconds.
using SimDuration = uint64_t;

inline constexpr SimDuration kMicrosecond = 1000;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;
inline constexpr SimDuration kDay = 24 * kHour;
// 365-day simulation year; leap handling is irrelevant at fleet-lifetime scale.
inline constexpr SimDuration kYear = 365 * kDay;

// Converts a simulated duration to (floating) days/years for reporting.
inline constexpr double ToDays(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kDay);
}
inline constexpr double ToYears(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kYear);
}

// Converts a byte count to (floating) GiB for reporting.
inline constexpr double ToGiB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGiB);
}

}  // namespace salamander

#endif  // SALAMANDER_COMMON_UNITS_H_
