// Dynamic bitmap used by the FTL for valid-page tracking and by the flash
// model for bad-page marking. Denser and faster than vector<bool> for the
// operations we need (popcount ranges, find-first-set).
#ifndef SALAMANDER_COMMON_BITMAP_H_
#define SALAMANDER_COMMON_BITMAP_H_

#include <cstdint>
#include <vector>

namespace salamander {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(uint64_t size, bool initial = false);

  void Resize(uint64_t size, bool value = false);

  uint64_t size() const { return size_; }

  bool Test(uint64_t index) const;
  void Set(uint64_t index);
  void Clear(uint64_t index);
  void Assign(uint64_t index, bool value);

  // Number of set bits in the whole map.
  uint64_t CountSet() const;
  // Number of set bits in [begin, end).
  uint64_t CountSetInRange(uint64_t begin, uint64_t end) const;

  // Index of the first set/clear bit at or after `from`; size() if none.
  uint64_t FindFirstSet(uint64_t from = 0) const;
  uint64_t FindFirstClear(uint64_t from = 0) const;

  void SetAll();
  void ClearAll();

 private:
  static constexpr uint64_t kBitsPerWord = 64;

  uint64_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace salamander

#endif  // SALAMANDER_COMMON_BITMAP_H_
