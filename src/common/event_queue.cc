#include "common/event_queue.h"

#include <algorithm>
#include <cassert>

namespace salamander {

uint64_t EventQueue::ScheduleAt(SimTime when, Callback callback) {
  assert(when >= now_ && "cannot schedule into the past");
  const uint64_t id = next_id_++;
  queue_.push(Event{when, next_sequence_++, id, std::move(callback)});
  pending_ids_.insert(id);
  ++live_events_;
  return id;
}

uint64_t EventQueue::ScheduleAfter(SimDuration delay, Callback callback) {
  return ScheduleAt(now_ + delay, std::move(callback));
}

void EventQueue::Cancel(uint64_t id) {
  // Only a still-pending event can be cancelled; cancelling a fired or
  // unknown id is a harmless no-op.
  if (pending_ids_.erase(id) == 1) {
    --live_events_;
  }
}

bool EventQueue::Step() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    if (pending_ids_.erase(event.id) == 0) {
      continue;  // was cancelled
    }
    now_ = event.when;
    --live_events_;
    event.callback();
    return true;
  }
  return false;
}

void EventQueue::Run() {
  while (Step()) {
  }
}

void EventQueue::RunUntil(SimTime deadline) {
  while (!queue_.empty()) {
    if (queue_.top().when > deadline) {
      now_ = deadline;
      return;
    }
    Step();
  }
  now_ = std::max(now_, deadline);
}

}  // namespace salamander
