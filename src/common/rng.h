// Deterministic pseudo-random number generation for the simulator.
//
// Everything stochastic in Salamander (per-page endurance variance, bit-error
// sampling, workload address streams, AFR draws) flows through Rng so that a
// run is exactly reproducible from its seed. The generator is xoshiro256**,
// seeded via SplitMix64 — fast, high quality, and trivially forkable so each
// subsystem can own an independent stream.
#ifndef SALAMANDER_COMMON_RNG_H_
#define SALAMANDER_COMMON_RNG_H_

#include <cstdint>

namespace salamander {

class Rng {
 public:
  // Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x5a1aaa0de5000001ULL);

  // Next raw 64 random bits.
  uint64_t NextU64();

  // Uniform integer in [0, bound). bound == 0 returns 0.
  // Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t UniformU64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Standard normal via Box–Muller (cached second value).
  double Normal();
  // Normal with explicit mean/stddev.
  double Normal(double mean, double stddev);

  // Lognormal: exp(Normal(mu, sigma)). Used for per-page endurance variance.
  double LogNormal(double mu, double sigma);

  // Exponential with rate lambda (> 0). Used for failure inter-arrival times.
  double Exponential(double lambda);

  // Bernoulli trial with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Binomial(n, p) sample: number of successes in n trials.
  // Exact inversion for small n*p, normal approximation for large n —
  // the flash error model draws Binomial(bits_per_page, rber) per read,
  // where n is ~1e5 and p is ~1e-4, so both paths matter.
  uint64_t Binomial(uint64_t n, double p);

  // Poisson(lambda) sample (Knuth for small lambda, normal approx for large).
  uint64_t Poisson(double lambda);

  // Forks an independent child stream. The child is seeded from this
  // generator's output, so forking is itself deterministic.
  Rng Fork();

  // Draws a 64-bit seed for a child subsystem whose API takes a raw seed
  // instead of an Rng — Fork() by another name. Prefer this (or Fork())
  // over arithmetic on the parent seed (`seed + i`, `seed * k + i`):
  // additive derivation hands correlated SplitMix64 inputs to siblings and
  // invites collisions between independently derived families of streams.
  uint64_t ForkSeed() { return NextU64(); }

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace salamander

#endif  // SALAMANDER_COMMON_RNG_H_
