#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace salamander {

unsigned ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  threads = ResolveThreads(threads);
  if (threads <= 1) {
    return;  // inline mode
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++in_flight_;
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (workers_.empty() || n == 1) {
    body(0, n);
    return;
  }
  // A few chunks per worker balances uneven per-item cost without paying
  // queue overhead per item.
  const size_t chunks = std::min(n, static_cast<size_t>(width()) * 4);
  const size_t base = n / chunks;
  const size_t extra = n % chunks;  // first `extra` chunks get one more item
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t size = base + (c < extra ? 1 : 0);
    const size_t end = begin + size;
    Submit([&body, begin, end] { body(begin, end); });
    begin = end;
  }
  Wait();
}

}  // namespace salamander
