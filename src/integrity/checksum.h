// End-to-end integrity codec: a seeded 64-bit hash over chunk payloads.
//
// The layers below (FTL, chip) can miscorrect a read without noticing —
// FaultSite::kReadCorrupt models exactly that. The diFS stamps a checksum
// into chunk metadata at write/recovery time and verifies it on every
// replica read; a mismatch is the only way silent corruption ever becomes
// visible. The chip is a metadata simulator (no user bytes are stored), so
// the codec hashes the chunk's logical identity (id + write generation) and
// the device's corruption signal stands in for the flipped payload bits:
// a corrupt read observes a value guaranteed to differ from the stamp.
#ifndef SALAMANDER_INTEGRITY_CHECKSUM_H_
#define SALAMANDER_INTEGRITY_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace salamander {

class ChecksumCodec {
 public:
  explicit ChecksumCodec(uint64_t seed = 0x1da7a117e6417e57ULL) : seed_(seed) {}

  // Seeded 64-bit hash over an arbitrary byte span (wyhash-style mixing of
  // 8-byte lanes). Deterministic for a given (seed, bytes).
  uint64_t Hash(const void* data, size_t len) const;

  // Checksum stamp for a chunk's current contents: hash of the chunk id and
  // its write generation under this codec's seed. Restamped on every
  // foreground write; copied verbatim by recovery (a replica copy carries
  // the same payload, hence the same checksum).
  uint64_t Stamp(uint64_t chunk_id, uint64_t generation) const;

  // The checksum a reader computes over a miscorrected payload: guaranteed
  // to differ from `stamp` (a real hash collision would need 2^-64 luck;
  // the simulator makes the guarantee exact).
  uint64_t CorruptObservation(uint64_t stamp) const;

  // Stamp/observation agreement — the end-to-end verify.
  static bool Verify(uint64_t expected, uint64_t observed) {
    return expected == observed;
  }

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
};

// Dependency-free randomized self-test of the codec (no gtest): checks
// determinism, seed sensitivity, single-bit avalanche over random inputs,
// stamp uniqueness across neighbouring (id, generation) pairs, and that
// CorruptObservation never verifies. `rounds` scales the random trials.
Status ChecksumSelfTest(uint64_t seed, uint32_t rounds);

}  // namespace salamander

#endif  // SALAMANDER_INTEGRITY_CHECKSUM_H_
