#include "integrity/checksum.h"

#include <cstring>
#include <string>

namespace salamander {
namespace {

// SplitMix64 finalizer: the avalanche core used both for hashing lanes and
// for the self-test's reference PRNG.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Minimal PRNG for the self-test so it stays dependency-free (common/rng.h
// would work too, but the test should not trust the code it validates less
// than it has to).
struct SplitMix {
  uint64_t state;
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

int Popcount64(uint64_t x) {
  int n = 0;
  while (x != 0) {
    x &= x - 1;
    ++n;
  }
  return n;
}

}  // namespace

uint64_t ChecksumCodec::Hash(const void* data, size_t len) const {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = Mix64(seed_ ^ (0x9e3779b97f4a7c15ULL * (len + 1)));
  while (len >= 8) {
    uint64_t lane;
    std::memcpy(&lane, bytes, 8);
    h = Mix64(h ^ lane);
    bytes += 8;
    len -= 8;
  }
  if (len > 0) {
    uint64_t lane = 0;
    std::memcpy(&lane, bytes, len);
    h = Mix64(h ^ lane ^ (static_cast<uint64_t>(len) << 56));
  }
  return Mix64(h);
}

uint64_t ChecksumCodec::Stamp(uint64_t chunk_id, uint64_t generation) const {
  uint64_t payload[2] = {chunk_id, generation};
  return Hash(payload, sizeof(payload));
}

uint64_t ChecksumCodec::CorruptObservation(uint64_t stamp) const {
  // Mix64 is a bijection with no fixed point reachable here in practice, but
  // the guarantee must be exact: fall back to a bit flip if the mix ever
  // lands on the stamp itself.
  const uint64_t observed = Mix64(stamp ^ seed_ ^ 0xc0a2b97a11adULL);
  return observed == stamp ? stamp ^ 1ULL : observed;
}

Status ChecksumSelfTest(uint64_t seed, uint32_t rounds) {
  SplitMix prng{seed ^ 0x5e1f7e57c0decafeULL};
  const ChecksumCodec codec(seed);
  const ChecksumCodec other(seed + 1);

  for (uint32_t round = 0; round < rounds; ++round) {
    unsigned char buf[64];
    const size_t len = 9 + (prng.Next() % (sizeof(buf) - 9));
    for (size_t i = 0; i < len; ++i) {
      buf[i] = static_cast<unsigned char>(prng.Next());
    }

    const uint64_t h = codec.Hash(buf, len);
    if (h != codec.Hash(buf, len)) {
      return InternalError("checksum self-test: hash not deterministic");
    }
    if (h == other.Hash(buf, len)) {
      return InternalError("checksum self-test: seed-insensitive hash");
    }

    // Single-bit avalanche: flipping any one input bit must change the hash,
    // and on average flip a healthy fraction of output bits.
    int total_flipped = 0;
    int probes = 0;
    for (size_t bit = 0; bit < len * 8; bit += 1 + (prng.Next() % 7)) {
      buf[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
      const uint64_t flipped = codec.Hash(buf, len);
      buf[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
      if (flipped == h) {
        return InternalError("checksum self-test: bit flip not detected at " +
                             std::to_string(bit));
      }
      total_flipped += Popcount64(flipped ^ h);
      ++probes;
    }
    if (probes > 0 && total_flipped < 16 * probes) {
      return InternalError("checksum self-test: weak avalanche");
    }

    // Stamps of neighbouring (id, generation) pairs must all differ, and a
    // corrupt observation must never verify.
    const uint64_t id = prng.Next();
    const uint64_t gen = prng.Next();
    const uint64_t stamp = codec.Stamp(id, gen);
    if (stamp == codec.Stamp(id, gen + 1) ||
        stamp == codec.Stamp(id + 1, gen) ||
        stamp == codec.Stamp(gen, id)) {
      return InternalError("checksum self-test: stamp collision");
    }
    if (ChecksumCodec::Verify(stamp, codec.CorruptObservation(stamp))) {
      return InternalError("checksum self-test: corruption verified as clean");
    }
    if (!ChecksumCodec::Verify(stamp, stamp)) {
      return InternalError("checksum self-test: clean stamp failed verify");
    }
  }
  return OkStatus();
}

}  // namespace salamander
