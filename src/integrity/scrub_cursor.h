// Deterministic background-scrub cursor and pacing math.
//
// A scrubber walks a flat address space (chunk replicas for the diFS,
// mDisk oPages for a raw device) a fixed number of oPages per period.
// The cursor is plain state — no RNG — so a scrub pass is bit-identical
// across runs and thread counts; pacing follows §4.3's recovery-wear
// accounting: scrub reads are real device reads and wear flash.
#ifndef SALAMANDER_INTEGRITY_SCRUB_CURSOR_H_
#define SALAMANDER_INTEGRITY_SCRUB_CURSOR_H_

#include <cstdint>

namespace salamander {

// Two-level cursor over (major, minor) positions, e.g. (mdisk, lba) or
// (replica, offset). Wrap-around is the caller's signal that a full pass
// completed.
struct ScrubCursor {
  uint64_t major = 0;
  uint64_t minor = 0;

  // Advances one minor step within `minor_size`, rolling into the next major
  // unit (modulo `major_size`) at the boundary. Returns true when the cursor
  // wrapped back to (0, 0) — one full pass done.
  bool Advance(uint64_t major_size, uint64_t minor_size) {
    if (major_size == 0 || minor_size == 0) {
      major = 0;
      minor = 0;
      return true;
    }
    if (++minor < minor_size) {
      return false;
    }
    minor = 0;
    major = (major + 1) % major_size;
    return major == 0;
  }

  // Skips the rest of the current major unit (e.g. a decommissioned mDisk).
  // Returns true when the cursor wrapped.
  bool SkipMajor(uint64_t major_size) {
    minor = 0;
    if (major_size == 0) {
      major = 0;
      return true;
    }
    major = (major + 1) % major_size;
    return major == 0;
  }

  // Clamps the cursor after the address space shrank underneath it.
  void Normalize(uint64_t major_size, uint64_t minor_size) {
    if (major_size == 0 || major >= major_size) {
      major = 0;
      minor = 0;
      return;
    }
    if (minor_size == 0 || minor >= minor_size) {
      minor = 0;
    }
  }
};

// Days for one full scrub pass at `opages_per_day` over `total_opages`
// (ceiling; 0 when scrub is disabled). The operator-facing pacing math:
// a fleet device with 2^20 oPages scrubbed at 4096/day completes a pass
// every 256 simulated days.
inline uint64_t ScrubFullPassDays(uint64_t total_opages,
                                  uint64_t opages_per_day) {
  if (opages_per_day == 0) {
    return 0;
  }
  return (total_opages + opages_per_day - 1) / opages_per_day;
}

}  // namespace salamander

#endif  // SALAMANDER_INTEGRITY_SCRUB_CURSOR_H_
