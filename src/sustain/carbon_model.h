// Carbon footprint model (paper §4.1, Eq. 3, Fig. 4).
//
// Everything is expressed relative to a baseline-SSD deployment B:
//
//   CO2e(S)/CO2e(B) = f_op * PE_{S|B} + (1 - f_op) * Ru_{S|B}        (Eq. 3)
//
// where f_op is the operational fraction of total emissions, PE the relative
// power effectiveness of keeping older drives (>= 1: older drives are less
// efficient), and Ru the relative SSD upgrade (replacement) rate that longer
// lifetimes buy.
#ifndef SALAMANDER_SUSTAIN_CARBON_MODEL_H_
#define SALAMANDER_SUSTAIN_CARBON_MODEL_H_

namespace salamander {

struct CarbonParams {
  // Operational fraction of SSD-server emissions. The paper derives 0.46:
  // 0.58 datacenter-wide [25] discounted 20% for SSD-heavy servers.
  double f_op = 0.46;
  // Power effectiveness of the Salamander deployment relative to baseline.
  // Keeping drives longer forgoes newer, more efficient models: +6% [25].
  double pe = 1.06;
  // Relative SSD upgrade rate (fewer replacements bought per year).
  double ru = 0.9;
};

// Ru from a fractional lifetime gain, with the paper's conservative
// discount: raw Ru = 1/(1+gain), then 'fix gains by 40%' toward 1 to account
// for replacement capacity purchases (0.2 -> 0.9, 0.5 -> 0.8).
double RuFromLifetimeGain(double lifetime_gain, double discount = 0.4);

// Eq. 3: relative carbon of the Salamander deployment (1.0 = baseline).
double RelativeCarbon(const CarbonParams& params);

// 1 - RelativeCarbon: the Fig. 4 bar height.
double CarbonSavings(const CarbonParams& params);

// Renewable-energy scenario: operational emissions are offset, so only
// embodied carbon remains and the relative footprint reduces to Ru.
double RelativeCarbonRenewable(const CarbonParams& params);
double CarbonSavingsRenewable(const CarbonParams& params);

// Canonical parameter sets used in the paper's analysis.
CarbonParams ShrinkSCarbonParams();  // Ru = 0.9 (>= 20% lifetime gain)
CarbonParams RegenSCarbonParams();   // Ru = 0.8 (~50% lifetime gain)

}  // namespace salamander

#endif  // SALAMANDER_SUSTAIN_CARBON_MODEL_H_
