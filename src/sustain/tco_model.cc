#include "sustain/tco_model.h"

namespace salamander {

double CostUpgradeRate(const TcoParams& params) {
  return params.ru + (1.0 - params.ru) * params.ce_new * params.cap_new;
}

double RelativeTco(const TcoParams& params) {
  return params.f_opex + (1.0 - params.f_opex) * CostUpgradeRate(params);
}

double TcoSavings(const TcoParams& params) {
  return 1.0 - RelativeTco(params);
}

TcoParams ShrinkSTcoParams() {
  TcoParams params;
  params.ru = 1.0 / 1.2;
  return params;
}

TcoParams RegenSTcoParams() {
  TcoParams params;
  params.ru = 1.0 / 1.5;
  return params;
}

}  // namespace salamander
