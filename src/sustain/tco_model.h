// Total cost of ownership model (paper §4.4, Eq. 4).
//
//   TCO(S)/TCO(B) = f_opex + (1 - f_opex) * CRu_{S|B}               (Eq. 4)
//   CRu = Ru + (1 - Ru) * CE_new * Cap_new
//
// CRu folds together the lower replacement rate (Ru) and the cost of buying
// newer, cheaper baseline SSDs (cost effectiveness CE_new in relative
// $/TB/year) to backfill the capacity Salamander drives shed during their
// shrunken phase (Cap_new, fraction of capacity to backfill).
#ifndef SALAMANDER_SUSTAIN_TCO_MODEL_H_
#define SALAMANDER_SUSTAIN_TCO_MODEL_H_

namespace salamander {

struct TcoParams {
  // Fraction of TCO that is operational cost; acquisition dominates for
  // datacenter devices (~86% [49]), so f_opex = 0.14.
  double f_opex = 0.14;
  // Relative SSD upgrade rate (raw, undiscounted: 1/(1+lifetime gain)).
  double ru = 0.83;
  // Cost effectiveness of new baseline SSDs bought to backfill shrunken
  // capacity: $/TB improves ~4x per five-year period [47], so 0.25.
  double ce_new = 0.25;
  // Fraction of original capacity that must be backfilled while Salamander
  // drives run shrunken (average 60% capacity -> backfill 40%).
  double cap_new = 0.4;
};

// The combined cost-upgrade rate CRu_{S|B}.
double CostUpgradeRate(const TcoParams& params);

// Eq. 4: relative TCO of the Salamander deployment (1.0 = baseline).
double RelativeTco(const TcoParams& params);

// 1 - RelativeTco: the §4.4 cost-savings headline.
double TcoSavings(const TcoParams& params);

// Canonical parameter sets from the paper.
TcoParams ShrinkSTcoParams();  // Ru = 1/1.2 ~ 0.83 -> ~13% savings
TcoParams RegenSTcoParams();   // Ru = 1/1.5 ~ 0.66 -> ~25% savings

}  // namespace salamander

#endif  // SALAMANDER_SUSTAIN_TCO_MODEL_H_
