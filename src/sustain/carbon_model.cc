#include "sustain/carbon_model.h"

namespace salamander {

double RuFromLifetimeGain(double lifetime_gain, double discount) {
  const double raw = 1.0 / (1.0 + lifetime_gain);
  return raw + (1.0 - raw) * discount;
}

double RelativeCarbon(const CarbonParams& params) {
  return params.f_op * params.pe + (1.0 - params.f_op) * params.ru;
}

double CarbonSavings(const CarbonParams& params) {
  return 1.0 - RelativeCarbon(params);
}

double RelativeCarbonRenewable(const CarbonParams& params) {
  return params.ru;
}

double CarbonSavingsRenewable(const CarbonParams& params) {
  return 1.0 - params.ru;
}

CarbonParams ShrinkSCarbonParams() {
  CarbonParams params;
  params.ru = RuFromLifetimeGain(0.20);  // = 0.9
  return params;
}

CarbonParams RegenSCarbonParams() {
  CarbonParams params;
  params.ru = RuFromLifetimeGain(0.50);  // = 0.8
  return params;
}

}  // namespace salamander
