// Deterministic per-device queueing, admission control, and graceful
// degradation for the cluster data path (ISSUE 9, ROADMAP item 2a).
//
// The service-cost model (PR 8) prices each op in isolation, so foreground
// traffic never feels recovery storms or scrub load and p99 == p50 on a
// healthy device. DeviceQueue adds the missing contention: a simulated-time
// priority queue per device, fed by the existing service costs. Ops are
// admitted *before* they touch the device (bounded depth, counted sheds,
// capped-exponential retry backoff with optional deterministic jitter) and
// enqueue their actual service time after execution, so the wait an op
// reports is the backlog of everything at its priority or higher.
//
// Priority order (lower value = served first):
//   foreground read > foreground write > recovery > scrub
//
// Determinism contract:
//  * All state is per-device and advanced only by its owner (the cluster or
//    fleet slot that constructed the queue), at the same op boundaries in
//    serial, parallel, and lockstep execution — so results are bit-identical
//    at any --threads.
//  * `queue_depth == 0` disables the layer entirely: no queues are built, no
//    RNG streams are forked, and every existing output stays byte-identical.
//  * The jitter stream draws zero values when `retry_jitter_ns == 0`, and is
//    a dedicated fork — jitter on/off never perturbs any other stream.
#ifndef SALAMANDER_SCHED_QUEUEING_H_
#define SALAMANDER_SCHED_QUEUEING_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "telemetry/metrics.h"

namespace salamander {

// Service classes, in strict priority order (lower value drains first).
enum class OpClass : uint8_t {
  kForegroundRead = 0,
  kForegroundWrite = 1,
  kRecovery = 2,
  kScrub = 3,
};

inline constexpr size_t kOpClassCount = 4;

// Stable lower_snake_case names for metric leaves: "fg_read", "fg_write",
// "recovery", "scrub".
const char* OpClassName(OpClass cls);

struct SchedConfig {
  // Maximum ops queued per device (all classes together). 0 disables the
  // queueing layer entirely — the byte-identical legacy behavior.
  uint64_t queue_depth = 0;

  // Simulated time between foreground arrivals at the cluster clock. The
  // load factor is mean-service-time / arrival-interval: an interval half
  // the mean service time is the ISSUE's "2x sustainable load" regime.
  // Must be > 0 when the layer is enabled.
  uint64_t arrival_interval_ns = 0;

  // ---- Shed-retry policy ---------------------------------------------------
  // A shed op retries admission up to this many times; each retry waits a
  // capped-exponential backoff (which also drains the queue, so a retry can
  // find room). The budget is the deadline proxy; retry_deadline_ns bounds
  // total backoff explicitly when > 0.
  uint32_t shed_retry_budget = 2;
  uint64_t retry_backoff_base_ns = 10000;  // 10 us, doubled per retry
  // Cap on the exponent before computing the delay (backoff saturates at
  // base << max_shift); prevents the wraparound a raw `base << attempt`
  // invites at high budgets.
  uint32_t retry_backoff_max_shift = 16;
  // Give up early if accumulated backoff would exceed this deadline.
  // 0 = no deadline (budget-bounded only).
  uint64_t retry_deadline_ns = 0;
  // Uniform jitter in [0, retry_jitter_ns] added to each backoff, drawn from
  // the queue's dedicated forked stream. 0 = zero draws.
  uint64_t retry_jitter_ns = 0;

  // ---- Hedged reads --------------------------------------------------------
  // When > 0, a read whose primary replica's queue-delay estimate exceeds
  // this threshold fans out a hedge to the least-loaded alternate replica
  // (DifsCluster) or the reconstruction set (EcCluster); the op completes at
  // the faster of the two paths. 0 = no hedging.
  uint64_t hedge_threshold_ns = 0;

  // ---- Brownout (SLO-guarded degradation) ----------------------------------
  // When slo_p99_ns > 0, foreground latency is windowed (brownout_window_ops
  // per window); a window whose p99 breaches the SLO puts the cluster in
  // brownout: scrub and background recovery are deferred (counted) until a
  // window's p99 recovers below the target.
  uint64_t slo_p99_ns = 0;
  uint64_t brownout_window_ops = 256;

  bool enabled() const { return queue_depth > 0; }
};

// kInvalidArgument with a description when the knobs are inconsistent
// (enabled with no arrival interval, shift > 63, brownout SLO with a zero
// window). A disabled config (queue_depth == 0) is always valid.
Status ValidateSchedConfig(const SchedConfig& config);

// base_ns << min(attempt, max_shift), saturating at UINT64_MAX instead of
// wrapping. Shared by DeviceQueue's shed-retry loop and DifsCluster's
// transient-retry backoff.
uint64_t CappedBackoffNs(uint64_t base_ns, uint32_t attempt,
                         uint32_t max_shift);

// Outcome of one admission attempt (including its shed-retry loop).
struct QueueAdmission {
  bool admitted = false;
  // Queue-delay estimate at admission: backlog of service time at this op's
  // priority or higher. 0 when shed.
  uint64_t wait_ns = 0;
  // Simulated shed-retry backoff spent (whether or not finally admitted).
  uint64_t backoff_ns = 0;
  uint32_t retries = 0;
};

struct DeviceQueueStats {
  uint64_t submitted[kOpClassCount] = {};
  uint64_t sheds[kOpClassCount] = {};  // one per refused attempt
  uint64_t shed_retries = 0;
  uint64_t shed_giveups = 0;           // ops dropped after the retry budget
  uint64_t retry_backoff_ns = 0;
  uint64_t wait_ns_total = 0;          // sum of admitted wait estimates
  uint64_t max_depth = 0;
  LogHistogram wait_ns;                // admitted queue-wait distribution

  uint64_t submitted_total() const {
    uint64_t n = 0;
    for (size_t i = 0; i < kOpClassCount; ++i) n += submitted[i];
    return n;
  }
  uint64_t sheds_total() const {
    uint64_t n = 0;
    for (size_t i = 0; i < kOpClassCount; ++i) n += sheds[i];
    return n;
  }
};

// Simulated-time service queue for one device. Single-owner, not
// thread-safe — exactly like the device it models.
//
// Usage per op: `Admit(cls, now)` before touching the device; if admitted,
// execute the device op and `Complete(cls, service_ns)` with its actual
// service cost. The queue drains in priority order as its clock advances
// (AdvanceTo is called by Admit, and by the owner at scheduling boundaries).
class DeviceQueue {
 public:
  DeviceQueue(const SchedConfig& config, uint64_t jitter_seed);

  // Drains elapsed service time (now - clock), highest priority first, then
  // sets the clock. A clock in the past is a no-op (never rewinds).
  void AdvanceTo(uint64_t now_ns);

  // Backlog of queued service time an arriving op of `cls` would wait
  // behind: every queued op at its priority or higher.
  uint64_t EstimateWaitNs(OpClass cls) const;

  // Admission control at simulated time `now_ns` (the queue first advances
  // to it). Sheds when the queue is at queue_depth; each shed retries after
  // a capped-exponential backoff (plus jitter) that also drains the queue.
  QueueAdmission Admit(OpClass cls, uint64_t now_ns);

  // Enqueues the actual service cost of the op just admitted for `cls`.
  void Complete(OpClass cls, uint64_t service_ns);

  uint64_t now_ns() const { return now_ns_; }
  uint64_t depth() const { return depth_; }
  uint64_t backlog_ns() const;
  const DeviceQueueStats& stats() const { return stats_; }

 private:
  SchedConfig config_;
  Rng rng_;  // jitter stream; draws only when retry_jitter_ns > 0
  std::deque<uint64_t> queued_[kOpClassCount];  // remaining service ns
  uint64_t class_backlog_ns_[kOpClassCount] = {};
  uint64_t depth_ = 0;
  uint64_t now_ns_ = 0;
  DeviceQueueStats stats_;
};

// Windowed foreground-p99 SLO guard. While active, the owning cluster
// defers scrub and background recovery (graceful degradation) and counts
// each deferral; brownout exits when a window's p99 recovers.
class BrownoutController {
 public:
  struct Stats {
    uint64_t windows = 0;            // windows evaluated
    uint64_t entered = 0;            // transitions into brownout
    uint64_t exited = 0;             // transitions out
    uint64_t last_window_p99_ns = 0;
  };

  BrownoutController(uint64_t slo_p99_ns, uint64_t window_ops)
      : slo_p99_ns_(slo_p99_ns), window_ops_(window_ops) {}

  bool enabled() const { return slo_p99_ns_ > 0 && window_ops_ > 0; }
  bool active() const { return active_; }
  const Stats& stats() const { return stats_; }

  // Records one foreground op's end-to-end latency; at each window boundary
  // re-evaluates brownout from the window's p99.
  void RecordForeground(uint64_t latency_ns);

 private:
  uint64_t slo_p99_ns_;
  uint64_t window_ops_;
  LogHistogram window_;
  bool active_ = false;
  Stats stats_;
};

// Scrapes one queue into "<prefix>sched.*": per-class submitted/shed
// counters, retry/backoff counters, depth/backlog gauges, and the wait
// histogram. Additive — collecting several queues under one prefix yields
// the aggregate (gauges sum via Add; see telemetry/metrics.h).
void CollectDeviceQueueMetrics(const DeviceQueue& queue,
                               MetricRegistry& registry,
                               const std::string& prefix);

}  // namespace salamander

#endif  // SALAMANDER_SCHED_QUEUEING_H_
