#include "sched/queueing.h"

#include <algorithm>

namespace salamander {

const char* OpClassName(OpClass cls) {
  switch (cls) {
    case OpClass::kForegroundRead:
      return "fg_read";
    case OpClass::kForegroundWrite:
      return "fg_write";
    case OpClass::kRecovery:
      return "recovery";
    case OpClass::kScrub:
      return "scrub";
  }
  return "unknown";
}

Status ValidateSchedConfig(const SchedConfig& config) {
  if (!config.enabled()) {
    return OkStatus();
  }
  if (config.arrival_interval_ns == 0) {
    return InvalidArgumentError(
        "sched: arrival_interval_ns must be > 0 when queue_depth > 0");
  }
  if (config.retry_backoff_max_shift > 63) {
    return InvalidArgumentError(
        "sched: retry_backoff_max_shift must be <= 63");
  }
  if (config.slo_p99_ns > 0 && config.brownout_window_ops == 0) {
    return InvalidArgumentError(
        "sched: brownout_window_ops must be > 0 when slo_p99_ns > 0");
  }
  return OkStatus();
}

uint64_t CappedBackoffNs(uint64_t base_ns, uint32_t attempt,
                         uint32_t max_shift) {
  const uint32_t shift = std::min(attempt, max_shift);
  if (base_ns == 0) {
    return 0;
  }
  if (shift >= 64 || base_ns > (UINT64_MAX >> shift)) {
    return UINT64_MAX;  // saturate instead of wrapping
  }
  return base_ns << shift;
}

DeviceQueue::DeviceQueue(const SchedConfig& config, uint64_t jitter_seed)
    : config_(config), rng_(jitter_seed) {}

void DeviceQueue::AdvanceTo(uint64_t now_ns) {
  if (now_ns <= now_ns_) {
    return;  // never rewinds
  }
  uint64_t elapsed = now_ns - now_ns_;
  now_ns_ = now_ns;
  // Single server, strict priority: at every instant the highest-priority
  // queued op is the one being served.
  for (size_t cls = 0; cls < kOpClassCount && elapsed > 0; ++cls) {
    std::deque<uint64_t>& q = queued_[cls];
    while (elapsed > 0 && !q.empty()) {
      const uint64_t consumed = std::min(q.front(), elapsed);
      q.front() -= consumed;
      elapsed -= consumed;
      class_backlog_ns_[cls] -= consumed;
      if (q.front() == 0) {
        q.pop_front();
        --depth_;
      }
    }
  }
}

uint64_t DeviceQueue::EstimateWaitNs(OpClass cls) const {
  uint64_t wait = 0;
  for (size_t c = 0; c <= static_cast<size_t>(cls); ++c) {
    wait += class_backlog_ns_[c];
  }
  return wait;
}

uint64_t DeviceQueue::backlog_ns() const {
  uint64_t total = 0;
  for (size_t c = 0; c < kOpClassCount; ++c) {
    total += class_backlog_ns_[c];
  }
  return total;
}

QueueAdmission DeviceQueue::Admit(OpClass cls, uint64_t now_ns) {
  AdvanceTo(now_ns);
  QueueAdmission result;
  const size_t c = static_cast<size_t>(cls);
  for (uint32_t attempt = 0;; ++attempt) {
    if (depth_ < config_.queue_depth) {
      result.admitted = true;
      result.wait_ns = EstimateWaitNs(cls);
      ++stats_.submitted[c];
      stats_.wait_ns_total += result.wait_ns;
      stats_.wait_ns.Record(result.wait_ns);
      return result;
    }
    ++stats_.sheds[c];
    if (attempt >= config_.shed_retry_budget) {
      ++stats_.shed_giveups;
      return result;
    }
    uint64_t backoff = CappedBackoffNs(config_.retry_backoff_base_ns, attempt,
                                       config_.retry_backoff_max_shift);
    if (config_.retry_jitter_ns > 0) {
      backoff += rng_.UniformU64(config_.retry_jitter_ns + 1);
    }
    if (config_.retry_deadline_ns > 0 &&
        result.backoff_ns + backoff > config_.retry_deadline_ns) {
      ++stats_.shed_giveups;
      return result;  // deadline would be blown; give up now
    }
    ++stats_.shed_retries;
    ++result.retries;
    result.backoff_ns += backoff;
    stats_.retry_backoff_ns += backoff;
    AdvanceTo(now_ns_ + backoff);  // waiting also drains the queue
  }
}

void DeviceQueue::Complete(OpClass cls, uint64_t service_ns) {
  const size_t c = static_cast<size_t>(cls);
  queued_[c].push_back(service_ns);
  class_backlog_ns_[c] += service_ns;
  ++depth_;
  stats_.max_depth = std::max(stats_.max_depth, depth_);
}

void BrownoutController::RecordForeground(uint64_t latency_ns) {
  if (!enabled()) {
    return;
  }
  window_.Record(latency_ns);
  if (window_.count() < window_ops_) {
    return;
  }
  ++stats_.windows;
  const uint64_t p99 = window_.P99();
  stats_.last_window_p99_ns = p99;
  const bool breach = p99 > slo_p99_ns_;
  if (breach && !active_) {
    ++stats_.entered;
  } else if (!breach && active_) {
    ++stats_.exited;
  }
  active_ = breach;
  window_.Reset();
}

void CollectDeviceQueueMetrics(const DeviceQueue& queue,
                               MetricRegistry& registry,
                               const std::string& prefix) {
  const DeviceQueueStats& s = queue.stats();
  for (size_t c = 0; c < kOpClassCount; ++c) {
    const char* name = OpClassName(static_cast<OpClass>(c));
    registry.GetCounter(prefix + "sched.submitted." + name).Add(s.submitted[c]);
    registry.GetCounter(prefix + "sched.sheds." + name).Add(s.sheds[c]);
  }
  registry.GetCounter(prefix + "sched.shed_retries").Add(s.shed_retries);
  registry.GetCounter(prefix + "sched.shed_giveups").Add(s.shed_giveups);
  registry.GetCounter(prefix + "sched.retry_backoff_ns")
      .Add(s.retry_backoff_ns);
  registry.GetCounter(prefix + "sched.wait_ns_total").Add(s.wait_ns_total);
  registry.GetCounter(prefix + "sched.max_depth").Add(s.max_depth);
  registry.GetGauge(prefix + "sched.depth").Add(
      static_cast<double>(queue.depth()));
  registry.GetGauge(prefix + "sched.backlog_ns")
      .Add(static_cast<double>(queue.backlog_ns()));
  registry.GetHistogram(prefix + "sched.wait_ns").data().Merge(s.wait_ns);
}

}  // namespace salamander
