#include "difs/cluster.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "common/logging.h"
#include "telemetry/collect.h"

namespace salamander {

DifsCluster::DifsCluster(
    const DifsConfig& config,
    const std::function<std::unique_ptr<SsdDevice>(uint32_t)>& device_factory)
    : config_(config),
      rng_(config.seed ^ 0xd1f5d1f5d1f5d1f5ULL),
      codec_(config.seed ^ 0xc8ec5a17c8ec5a17ULL) {
  assert(config_.replication >= 1);
  assert(config_.nodes >= config_.replication &&
         "need at least R nodes for node-distinct placement");
  const uint32_t total_devices = config_.nodes * config_.devices_per_node;
  devices_.reserve(total_devices);
  for (uint32_t i = 0; i < total_devices; ++i) {
    DeviceState state;
    state.device = device_factory(i);
    state.slots_per_mdisk = static_cast<uint32_t>(
        state.device->msize_opages() / config_.chunk_opages);
    assert(state.slots_per_mdisk >= 1 &&
           "mDisk smaller than a diFS chunk");
    devices_.push_back(std::move(state));
    ApplyDeviceEvents(i);  // initial format events populate the slot maps
    initial_capacity_bytes_ += devices_[i].device->live_capacity_bytes();
  }
  if (config_.sched.enabled()) {
    assert(ValidateSchedConfig(config_.sched).ok() && "invalid sched config");
    // Per-device jitter streams fork in device-ID order from a dedicated
    // root, so enabling queueing perturbs no other stream and parallel
    // harnesses see the same forks as serial ones.
    Rng sched_root(config_.seed ^ 0x5c4ed0ee5c4ed0eeULL);
    for (DeviceState& state : devices_) {
      state.device->ConfigureQueue(config_.sched, sched_root.ForkSeed());
    }
    if (config_.sched.slo_p99_ns > 0) {
      brownout_ = std::make_unique<BrownoutController>(
          config_.sched.slo_p99_ns, config_.sched.brownout_window_ops);
    }
  }
}

// ---------------------------------------------------------------------------
// Event handling
// ---------------------------------------------------------------------------

size_t DifsCluster::ApplyDeviceEvents(uint32_t device_index) {
  if (NodeOut(device_index)) {
    return 0;  // unreachable node: its events wait until it rejoins
  }
  DeviceState& state = devices_[device_index];
  if (state.device->transiently_dark()) {
    return 0;  // powered off: unreachable, delivers nothing until restart
  }
  const std::vector<MinidiskEvent> events = state.device->TakeEvents();
  for (const MinidiskEvent& event : events) {
    switch (event.type) {
      case MinidiskEventType::kCreated:
        HandleMdiskCreated(device_index, event.mdisk);
        break;
      case MinidiskEventType::kDecommissioned:
        HandleMdiskLoss(device_index, event.mdisk);
        break;
      case MinidiskEventType::kDraining:
        HandleMdiskDraining(device_index, event.mdisk);
        break;
    }
  }
  if (state.device->dropped_events() != state.observed_dropped_events) {
    state.observed_dropped_events = state.device->dropped_events();
    return events.size() + static_cast<size_t>(ResyncDevice(device_index));
  }
  return events.size();
}

void DifsCluster::HandleMdiskLoss(uint32_t device_index, MinidiskId mdisk) {
  DeviceState& state = devices_[device_index];
  auto it = state.slots.find(mdisk);
  if (it == state.slots.end()) {
    return;  // already handled (e.g. decommission then brick replay)
  }
  const bool was_draining = state.draining_pending.count(mdisk) != 0;
  for (uint32_t slot = 0; slot < it->second.size(); ++slot) {
    const int64_t chunk_id = it->second[slot];
    if (chunk_id == kFreeSlot) {
      --state.free_slot_count;
      continue;
    }
    if (chunk_id == kUnavailableSlot) {
      continue;  // empty or already-released slot on a draining mDisk
    }
    Chunk& chunk = chunks_[static_cast<uint64_t>(chunk_id)];
    for (ReplicaLocation& replica : chunk.replicas) {
      if (replica.live && replica.device == device_index &&
          replica.mdisk == mdisk && replica.slot == slot) {
        replica.live = false;
        ++stats_.replicas_lost;
        if (replica.draining) {
          // The grace window closed (forced finish or brick) before this
          // chunk was re-replicated off the draining mDisk.
          ++stats_.drain_window_losses;
        }
        break;
      }
    }
    if (!chunk.lost) {
      if (chunk.readable_replicas() == 0) {
        chunk.lost = true;
        ++stats_.chunks_lost;
        SALA_LOG(kWarning) << "chunk " << chunk.id << " lost all replicas";
        if (config_.trace != nullptr) {
          config_.trace->Instant("chunk_lost", "difs", trace_time_us_,
                                 config_.trace_tid);
        }
      } else if (chunk.live_replicas() < config_.replication) {
        pending_recoveries_.push_back(chunk.id);
      }
    }
  }
  state.draining_pending.erase(mdisk);
  (void)was_draining;
  state.slots.erase(it);
}

void DifsCluster::HandleMdiskCreated(uint32_t device_index, MinidiskId mdisk) {
  DeviceState& state = devices_[device_index];
  if (state.slots.count(mdisk) != 0) {
    return;  // duplicate delivery (or resync already registered it)
  }
  // A delayed kCreated can arrive after the mDisk has already moved on (or
  // the whole device bricked); registering capacity that no longer exists
  // would corrupt placement, so verify against device ground truth.
  const SsdDevice& device = *state.device;
  if (device.failed() || mdisk >= device.total_minidisks()) {
    return;
  }
  const MinidiskState mstate = device.manager().minidisk(mdisk).state;
  if (mstate != MinidiskState::kLive && mstate != MinidiskState::kDraining) {
    return;  // decommissioned (or never formatted) by the time we heard
  }
  state.slots[mdisk].assign(state.slots_per_mdisk, kFreeSlot);
  state.free_slot_count += state.slots_per_mdisk;
  if (mstate == MinidiskState::kDraining) {
    // Created and already draining (both events in flight): process the
    // drain transition immediately so the slots are never handed out.
    HandleMdiskDraining(device_index, mdisk);
  }
}

void DifsCluster::HandleMdiskDraining(uint32_t device_index,
                                      MinidiskId mdisk) {
  DeviceState& state = devices_[device_index];
  auto it = state.slots.find(mdisk);
  if (it == state.slots.end()) {
    return;
  }
  if (state.draining_pending.count(mdisk) != 0) {
    return;  // duplicate delivery: the drain is already being worked
  }
  ++stats_.drains_started;
  uint32_t pending = 0;
  for (uint32_t slot = 0; slot < it->second.size(); ++slot) {
    int64_t& entry = it->second[slot];
    if (entry == kFreeSlot) {
      // Draining mDisks accept no new data; retire the free slot.
      --state.free_slot_count;
      entry = kUnavailableSlot;
      continue;
    }
    if (entry == kUnavailableSlot) {
      continue;
    }
    Chunk& chunk = chunks_[static_cast<uint64_t>(entry)];
    for (ReplicaLocation& replica : chunk.replicas) {
      if (replica.live && replica.device == device_index &&
          replica.mdisk == mdisk && replica.slot == slot) {
        replica.draining = true;
        break;
      }
    }
    ++pending;
    if (!chunk.lost && chunk.live_replicas() < config_.replication) {
      pending_recoveries_.push_back(chunk.id);
    }
  }
  if (pending == 0) {
    // Nothing to migrate: ack immediately. A lost ack is re-sent by resync.
    (void)SendAckDrain(device_index, mdisk);
    ++stats_.drains_acked;
    state.slots.erase(it);
  } else {
    state.draining_pending[mdisk] = pending;
  }
}

void DifsCluster::ReleaseClaimedSlot(uint32_t device_index, MinidiskId mdisk,
                                     uint32_t slot, ChunkId chunk_id) {
  DeviceState& state = devices_[device_index];
  auto it = state.slots.find(mdisk);
  if (it == state.slots.end() ||
      it->second[slot] != static_cast<int64_t>(chunk_id)) {
    return;  // mDisk decommissioned meanwhile: HandleMdiskLoss dropped it
  }
  auto pending_it = state.draining_pending.find(mdisk);
  if (pending_it == state.draining_pending.end()) {
    it->second[slot] = kFreeSlot;
    ++state.free_slot_count;
    return;
  }
  // The mDisk started draining while the claim was in flight (the copy's own
  // wear can trigger the drain): HandleMdiskDraining cannot tell a claim
  // from a placed replica, so the claim was counted in draining_pending.
  // Release it as a drained slot — never as new free capacity — and ack the
  // drain if this was its last pending slot.
  it->second[slot] = kUnavailableSlot;
  if (--pending_it->second == 0) {
    state.draining_pending.erase(pending_it);
    state.slots.erase(it);
    if (SendAckDrain(device_index, mdisk)) {
      ++stats_.drains_acked;
    }
  }
}

void DifsCluster::ReleaseDrainingReplicas(Chunk& chunk) {
  for (ReplicaLocation& replica : chunk.replicas) {
    if (!replica.live || !replica.draining) {
      continue;
    }
    DeviceState& state = devices_[replica.device];
    auto slot_it = state.slots.find(replica.mdisk);
    if (slot_it != state.slots.end() &&
        slot_it->second[replica.slot] ==
            static_cast<int64_t>(chunk.id)) {
      slot_it->second[replica.slot] = kUnavailableSlot;
    }
    replica.live = false;
    auto pending_it = state.draining_pending.find(replica.mdisk);
    if (pending_it != state.draining_pending.end() &&
        --pending_it->second == 0) {
      state.draining_pending.erase(pending_it);
      state.slots.erase(replica.mdisk);
      if (SendAckDrain(replica.device, replica.mdisk)) {
        ++stats_.drains_acked;
      }
    }
  }
}

void DifsCluster::ProcessEvents() {
  const uint64_t wave_start = stats_.recovery_opage_writes;
  for (;;) {
    size_t events = 0;
    for (uint32_t i = 0; i < devices_.size(); ++i) {
      events += ApplyDeviceEvents(i);
    }
    if (events > 0 && !waiting_capacity_.empty()) {
      // The placement landscape changed; parked recoveries get another shot.
      for (ChunkId chunk_id : waiting_capacity_) {
        pending_recoveries_.push_back(chunk_id);
      }
      waiting_capacity_.clear();
    }
    if (DrainPendingRecoveries() == 0) {
      break;
    }
  }
  const uint64_t wave = stats_.recovery_opage_writes - wave_start;
  if (wave > 0) {
    ++stats_.recovery_waves;
    stats_.max_wave_recovery_opages =
        std::max(stats_.max_wave_recovery_opages, wave);
    if (config_.trace != nullptr) {
      config_.trace->Instant("recovery_wave", "difs", trace_time_us_,
                             config_.trace_tid);
      config_.trace->CounterSample("recovery_wave_opages", trace_time_us_,
                                   static_cast<double>(wave),
                                   config_.trace_tid);
    }
#ifndef NDEBUG
    // Every recovery wave must leave the bookkeeping self-consistent; a
    // violation here is a cluster bug, not an injected fault.
    const Status invariants = CheckInvariants();
    if (!invariants.ok()) {
      SALA_LOG(kError) << "after recovery wave: " << invariants;
      assert(false && "cluster invariants violated after recovery wave");
    }
#endif
  }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

uint64_t DifsCluster::DrainPendingRecoveries() {
  if (brownout_ != nullptr && brownout_->active() && !reconcile_override_ &&
      !pending_recoveries_.empty()) {
    // Brownout: foreground p99 is over the SLO, so background re-replication
    // yields the spindle. The backlog stays queued and drains once a window
    // recovers (or ForceReconcile demands convergence).
    ++stats_.brownout_recovery_deferrals;
    return 0;
  }
  uint64_t recovered = 0;
  // Process only the entries present at pass start; copies can enqueue more
  // (by wearing the target), which the caller's loop handles next pass.
  std::vector<ChunkId> batch(pending_recoveries_.begin(),
                             pending_recoveries_.end());
  pending_recoveries_.clear();
  if (config_.criticality_ordered_recovery) {
    // Repair-storm triage: chunks closest to loss (fewest readable copies,
    // ties by id) get the pass's placement slots and queue room first.
    // Criticality is snapshotted at batch start, and the sort is stable, so
    // the ordering is fully deterministic. The SET of chunks healed matches
    // FIFO when capacity suffices, but individual placements may differ —
    // recoveries consume the shared placement draws in batch order.
    std::stable_sort(batch.begin(), batch.end(), [&](ChunkId a, ChunkId b) {
      const uint32_t ra = chunks_[a].readable_replicas();
      const uint32_t rb = chunks_[b].readable_replicas();
      if (ra != rb) {
        return ra < rb;
      }
      return a < b;
    });
  }
  for (const ChunkId chunk_id : batch) {
    Chunk& chunk = chunks_[chunk_id];
    if (chunk.lost) {
      continue;
    }
    // Bring back to full replication, one replica at a time.
    bool stuck = false;
    while (chunk.live_replicas() < config_.replication && !chunk.lost) {
      const uint32_t live_before = chunk.live_replicas();
      if (RecoverOneReplica(chunk_id)) {
        ++recovered;
        if (chunk.live_replicas() <= live_before) {
          // The copy succeeded but read-repair retired a corrupt source in
          // the same call: net-zero progress. With every source failing its
          // checksum (pathological blanket corruption) this would loop
          // forever — park instead and retry on the next event wave.
          stuck = true;
          break;
        }
      } else {
        stuck = true;
        break;
      }
    }
    if (stuck && !chunk.lost &&
        chunk.live_replicas() < config_.replication) {
      ++stats_.recovery_deferred;
      // Park it until the placement landscape changes (ProcessEvents
      // re-queues parked chunks when new events arrive).
      waiting_capacity_.push_back(chunk_id);
    }
  }
  return recovered;
}

bool DifsCluster::RecoverOneReplica(ChunkId chunk_id) {
  Chunk& chunk = chunks_[chunk_id];
  uint32_t target_device = 0;
  MinidiskId target_mdisk = 0;
  uint32_t target_slot = 0;
  // Source-selection loop: a survivor whose copy fails its end-to-end
  // checksum is retired on the spot (read-repair) and another survivor is
  // tried. Bounded — every retry removes one replica.
  for (;;) {
    // Source: prefer a non-draining replica (guaranteed fresh); fall back to
    // a draining one (the §4.3 grace window exists precisely so this fallback
    // is available). Only non-draining replicas exclude their node — the
    // draining copy is about to vanish, so its node may host the new replica.
    ReplicaLocation* source = nullptr;
    ReplicaLocation* draining_source = nullptr;
    std::vector<uint32_t> exclude_nodes;
    for (ReplicaLocation& replica : chunk.replicas) {
      if (!replica.live) {
        continue;
      }
      if (replica.draining) {
        if (!NodeOut(replica.device)) {
          draining_source = &replica;
        }
        continue;
      }
      // A replica on an out node still excludes its node (the data is there,
      // just unreachable) but cannot serve as the copy source.
      exclude_nodes.push_back(node_of_device(replica.device));
      if (source == nullptr && !NodeOut(replica.device)) {
        source = &replica;
      }
    }
    if (source == nullptr) {
      source = draining_source;
    }
    if (source == nullptr) {
      return false;
    }
    if (!PickTarget(exclude_nodes, &target_device, &target_mdisk,
                    &target_slot)) {
      return false;
    }
    if (QueueingEnabled() && !reconcile_override_) {
      // Recovery copies are admission-controlled like any other I/O: the
      // source read and the target write must both find queue room, or the
      // copy aborts and the chunk parks for a later pass. ForceReconcile
      // bypasses the gate — convergence beats backpressure there.
      const QueueAdmission src =
          Queue(source->device)->Admit(OpClass::kRecovery, sched_clock_ns_);
      const QueueAdmission dst =
          src.admitted ? Queue(target_device)
                             ->Admit(OpClass::kRecovery, sched_clock_ns_)
                       : QueueAdmission{};
      if (!src.admitted || !dst.admitted) {
        ++stats_.sched_recovery_sheds;
        return false;
      }
    }
    // Claim the slot immediately so concurrent placements in this event wave
    // cannot double-book it.
    devices_[target_device].slots[target_mdisk][target_slot] =
        static_cast<int64_t>(chunk_id);
    --devices_[target_device].free_slot_count;

    // Read the chunk from the survivor (latency/traffic accounting only; the
    // simulator carries no payload bytes). A failed read falls back to ECC-
    // protected re-reads of other replicas in a real system; here it simply
    // counts, since the copy's content is tracked logically.
    DeviceState& source_state = devices_[source->device];
    auto read = WithTransientRetry([&] {
      return source_state.device->ReadRange(
          source->mdisk,
          static_cast<uint64_t>(source->slot) * config_.chunk_opages,
          config_.chunk_opages);
    });
    if (read.ok()) {
      stats_.recovery_opage_reads += config_.chunk_opages;
      if (QueueingEnabled() && !reconcile_override_) {
        Queue(source->device)
            ->Complete(OpClass::kRecovery, read.value().latency);
      }
    } else {
      ++stats_.uncorrectable_reads;
    }
    if (ObserveCorruption(source->device) == 0) {
      break;  // clean copy source
    }
    // The survivor's checksum does not verify: the copy would propagate
    // corruption. Retire the source (the recovery loop already owns this
    // chunk, so no re-enqueue) and try the next survivor.
    if (MarkReplicaBad(chunk, *source, /*enqueue=*/false)) {
      ReleaseClaimedSlot(target_device, target_mdisk, target_slot, chunk_id);
      continue;
    }
    // Last readable copy: corrupt data beats no data — copy it anyway.
    break;
  }

  // Write every LBA of the new replica.
  DeviceState& target_state = devices_[target_device];
  const uint64_t base =
      static_cast<uint64_t>(target_slot) * config_.chunk_opages;
  SimDuration copy_write_ns = 0;
  for (uint64_t offset = 0; offset < config_.chunk_opages; ++offset) {
    auto write = WithTransientRetry(
        [&] { return target_state.device->Write(target_mdisk, base + offset); });
    if (write.ok()) {
      copy_write_ns += write.value();
    }
    if (!write.ok()) {
      // Target died mid-copy (its own wear, or the write's wear): abandon.
      // If the target mDisk survived (failure had another cause), release
      // the claimed slot — via the drain-aware helper, since the events just
      // processed may have started draining the very mDisk we claimed; if it
      // was decommissioned, HandleMdiskLoss already dropped the slot vector.
      ApplyDeviceEvents(target_device);
      ReleaseClaimedSlot(target_device, target_mdisk, target_slot, chunk_id);
      return false;
    }
    ++stats_.recovery_opage_writes;
  }
  // Prune dead replica records before adding the new one (they can never
  // match a future event and would otherwise accumulate forever).
  std::erase_if(chunk.replicas,
                [](const ReplicaLocation& r) { return !r.live; });
  chunk.replicas.push_back(ReplicaLocation{.device = target_device,
                                           .mdisk = target_mdisk,
                                           .slot = target_slot,
                                           .live = true,
                                           .generation = chunk.generation});
  ++stats_.replicas_recovered;
  if (QueueingEnabled() && !reconcile_override_) {
    // The whole copy occupies the target's queue as one recovery-class op.
    Queue(target_device)->Complete(OpClass::kRecovery, copy_write_ns);
  }
  if (chunk.live_replicas() >= config_.replication) {
    // Fully replicated again: draining copies are no longer needed.
    ReleaseDrainingReplicas(chunk);
  }
  // The copy itself wears the target device; surface any resulting events
  // (possibly including loss of the replica just written).
  ApplyDeviceEvents(target_device);
  return true;
}

bool DifsCluster::PickTarget(const std::vector<uint32_t>& exclude_nodes,
                             uint32_t* device_out, MinidiskId* mdisk_out,
                             uint32_t* slot_out) {
  // Random start, linear probe: keeps placement spread without a full scan.
  // The outer domain pass runs only for a constraining placement policy:
  // pass 0 additionally requires the policy to accept the candidate node,
  // pass 1 is the counted fallback to plain node-disjointness. Policies that
  // never constrain (uniform, or none) skip straight to pass 1, sharing the
  // single start draw — so they replay the legacy draw sequence and
  // placements bit-for-bit. The inner two passes: devices with active drains
  // are visibly dying, so avoid placing new replicas there unless nothing
  // else has space.
  const uint32_t n = static_cast<uint32_t>(devices_.size());
  const uint32_t start = static_cast<uint32_t>(rng_.UniformU64(n));
  const PlacementPolicy* policy = config_.placement.get();
  const bool constrained = policy != nullptr && policy->Constrains();
  for (int domain_pass = constrained ? 0 : 1; domain_pass < 2; ++domain_pass) {
    for (int pass = 0; pass < 2; ++pass) {
      for (uint32_t probe = 0; probe < n; ++probe) {
        const uint32_t device_index = (start + probe) % n;
        DeviceState& state = devices_[device_index];
        if (state.free_slot_count == 0 || state.device->failed() ||
            NodeOut(device_index)) {
          continue;
        }
        if (state.health_draining) {
          continue;  // being evacuated proactively; placing here would churn
        }
        if (pass == 0 && !state.draining_pending.empty()) {
          continue;  // dying device; only a last resort
        }
        const uint32_t node = node_of_device(device_index);
        if (std::find(exclude_nodes.begin(), exclude_nodes.end(), node) !=
            exclude_nodes.end()) {
          continue;
        }
        if (domain_pass == 0 && !policy->Allows(node, exclude_nodes)) {
          ++stats_.placement_domain_rejections;
          continue;
        }
        for (auto& [mdisk, slots] : state.slots) {
          for (uint32_t slot = 0; slot < slots.size(); ++slot) {
            if (slots[slot] == kFreeSlot) {
              *device_out = device_index;
              *mdisk_out = mdisk;
              *slot_out = slot;
              return true;
            }
          }
        }
        // free_slot_count said there was space but none found: accounting
        // drift would be a bug.
        assert(false && "free_slot_count out of sync");
      }
    }
    if (domain_pass == 0) {
      // Every domain-eligible candidate is exhausted; the fallback pass may
      // now co-locate within a rack rather than fail the placement.
      ++stats_.placement_domain_fallbacks;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Proactive health-driven drain (ISSUE 10)
// ---------------------------------------------------------------------------

void DifsCluster::ProactiveDrainTick() {
  if (config_.drain_health_threshold <= 0.0) {
    return;
  }
  if (brownout_ != nullptr && brownout_->active() && !reconcile_override_) {
    // Drain migrations are background traffic like reactive recovery: yield
    // to the foreground SLO, retry once a window recovers.
    ++stats_.drain_brownout_deferrals;
    return;
  }
  // Flag newly unhealthy devices, in id order (deterministic; HealthScore is
  // a pure read, so the scan draws no RNG).
  bool any_flagged = false;
  for (uint32_t i = 0; i < devices_.size(); ++i) {
    DeviceState& state = devices_[i];
    if (!state.health_draining && !state.device->failed() &&
        state.device->HealthScore(config_.drain_pec_horizon) <=
            config_.drain_health_threshold) {
      state.health_draining = true;
      ++stats_.drain_devices_flagged;
      if (config_.trace != nullptr) {
        config_.trace->Instant("health_drain_start", "difs", trace_time_us_,
                               config_.trace_tid);
      }
    }
    any_flagged |= state.health_draining && !state.device->failed();
  }
  if (!any_flagged) {
    return;
  }
  // One migration pass per tick: walk chunks in id order and move live
  // replicas off flagged devices. MigrateReplicaOff repoints the record in
  // place; a parked move (no target, shed, aborted copy) retries next tick.
  // Indices are re-checked every iteration because a migration's own wear
  // events can reshape the replica vector under us.
  for (Chunk& chunk : chunks_) {
    if (chunk.lost) {
      continue;
    }
    for (size_t r = 0; r < chunk.replicas.size(); ++r) {
      const ReplicaLocation& replica = chunk.replicas[r];
      if (!replica.live || replica.draining) {
        continue;
      }
      const DeviceState& state = devices_[replica.device];
      if (!state.health_draining || state.device->failed() ||
          NodeOut(replica.device)) {
        continue;
      }
      if (!MigrateReplicaOff(chunk, chunk.replicas[r])) {
        ++stats_.drain_migrations_parked;
      }
    }
  }
  // A flagged device with no occupied slots left has been fully evacuated.
  for (DeviceState& state : devices_) {
    if (!state.health_draining || state.health_drain_done ||
        state.device->failed()) {
      continue;
    }
    bool occupied = false;
    for (const auto& [mdisk, slots] : state.slots) {
      for (const int64_t slot : slots) {
        if (slot >= 0) {
          occupied = true;
          break;
        }
      }
      if (occupied) {
        break;
      }
    }
    if (!occupied) {
      state.health_drain_done = true;
      ++stats_.drain_devices_completed;
    }
  }
}

bool DifsCluster::MigrateReplicaOff(Chunk& chunk, ReplicaLocation& replica) {
  // Every node holding a live non-draining copy — including the source's —
  // is excluded, so the move is a strict spread improvement and the
  // placement policy sees the same used-node set recovery would.
  std::vector<uint32_t> exclude_nodes;
  for (const ReplicaLocation& r : chunk.replicas) {
    if (r.live && !r.draining) {
      exclude_nodes.push_back(node_of_device(r.device));
    }
  }
  uint32_t target_device = 0;
  MinidiskId target_mdisk = 0;
  uint32_t target_slot = 0;
  if (!PickTarget(exclude_nodes, &target_device, &target_mdisk,
                  &target_slot)) {
    return false;
  }
  if (QueueingEnabled() && !reconcile_override_) {
    // Drain I/O rides the recovery class so the PR 9 priority order and the
    // shed ledger stay intact; the drain-specific sub-counter lets benches
    // report proactive-vs-reactive pressure separately.
    const QueueAdmission src =
        Queue(replica.device)->Admit(OpClass::kRecovery, sched_clock_ns_);
    const QueueAdmission dst =
        src.admitted
            ? Queue(target_device)->Admit(OpClass::kRecovery, sched_clock_ns_)
            : QueueAdmission{};
    if (!src.admitted || !dst.admitted) {
      ++stats_.sched_recovery_sheds;
      ++stats_.drain_sched_sheds;
      return false;
    }
  }
  DeviceState& target_state = devices_[target_device];
  target_state.slots[target_mdisk][target_slot] =
      static_cast<int64_t>(chunk.id);
  --target_state.free_slot_count;
  // Abort path: drain-aware — the copy's own wear can start draining the
  // claimed mDisk, in which case the claim was counted in draining_pending.
  const auto release_target = [&] {
    ReleaseClaimedSlot(target_device, target_mdisk, target_slot, chunk.id);
  };

  DeviceState& source_state = devices_[replica.device];
  auto read = WithTransientRetry([&] {
    return source_state.device->ReadRange(
        replica.mdisk,
        static_cast<uint64_t>(replica.slot) * config_.chunk_opages,
        config_.chunk_opages);
  });
  if (!read.ok()) {
    ++stats_.uncorrectable_reads;
    release_target();
    return false;
  }
  stats_.drain_opage_reads += config_.chunk_opages;
  if (QueueingEnabled() && !reconcile_override_) {
    Queue(replica.device)->Complete(OpClass::kRecovery, read.value().latency);
  }
  if (ObserveCorruption(replica.device) > 0) {
    // Copying would propagate corruption: hand the replica to the reactive
    // read-repair path instead of migrating it.
    release_target();
    MarkReplicaBad(chunk, replica, /*enqueue=*/true);
    return false;
  }

  const uint64_t base =
      static_cast<uint64_t>(target_slot) * config_.chunk_opages;
  SimDuration copy_write_ns = 0;
  for (uint64_t offset = 0; offset < config_.chunk_opages; ++offset) {
    auto write = WithTransientRetry(
        [&] { return target_state.device->Write(target_mdisk, base + offset); });
    if (!write.ok()) {
      // Target died mid-copy: surface its events, release the claim if the
      // mDisk survived, and park the migration for the next tick.
      ApplyDeviceEvents(target_device);
      release_target();
      return false;
    }
    copy_write_ns += write.value();
    ++stats_.drain_opage_writes;
  }
  if (QueueingEnabled() && !reconcile_override_) {
    Queue(target_device)->Complete(OpClass::kRecovery, copy_write_ns);
  }

  // Release the source slot and repoint the record in place. The migrated
  // copy keeps its generation — a stale source stays stale, and resync still
  // owns freshness.
  auto source_it = source_state.slots.find(replica.mdisk);
  if (source_it != source_state.slots.end() &&
      replica.slot < source_it->second.size() &&
      source_it->second[replica.slot] == static_cast<int64_t>(chunk.id)) {
    source_it->second[replica.slot] = kFreeSlot;
    ++source_state.free_slot_count;
  }
  replica.device = target_device;
  replica.mdisk = target_mdisk;
  replica.slot = target_slot;
  ++stats_.drain_replicas_migrated;
  // The copy wears the target; surface any resulting events (`replica` must
  // not be touched past this point — event handling can reshape the vector).
  ApplyDeviceEvents(target_device);
  return true;
}

// ---------------------------------------------------------------------------
// Bootstrap and foreground I/O
// ---------------------------------------------------------------------------

Status DifsCluster::Bootstrap() {
  if (bootstrapped_) {
    return FailedPreconditionError("Bootstrap: already bootstrapped");
  }
  bootstrapped_ = true;
  uint64_t total_slots = 0;
  for (const DeviceState& state : devices_) {
    total_slots += state.free_slot_count;
  }
  const uint64_t target_chunks = static_cast<uint64_t>(
      static_cast<double>(total_slots) * config_.fill_fraction /
      config_.replication);
  chunks_.reserve(target_chunks);
  for (uint64_t c = 0; c < target_chunks; ++c) {
    Chunk chunk;
    chunk.id = c;
    chunk.checksum = codec_.Stamp(c, chunk.generation);
    std::vector<uint32_t> used_nodes;
    for (uint32_t r = 0; r < config_.replication; ++r) {
      uint32_t device_index = 0;
      MinidiskId mdisk = 0;
      uint32_t slot = 0;
      if (!PickTarget(used_nodes, &device_index, &mdisk, &slot)) {
        // Cluster cannot hold more fully-replicated chunks; roll back the
        // partial placement and stop.
        for (const ReplicaLocation& placed : chunk.replicas) {
          DeviceState& state = devices_[placed.device];
          state.slots[placed.mdisk][placed.slot] = kFreeSlot;
          ++state.free_slot_count;
        }
        return OkStatus();
      }
      DeviceState& state = devices_[device_index];
      state.slots[mdisk][slot] = static_cast<int64_t>(c);
      --state.free_slot_count;
      used_nodes.push_back(node_of_device(device_index));
      chunk.replicas.push_back(ReplicaLocation{
          .device = device_index, .mdisk = mdisk, .slot = slot, .live = true});
    }
    chunks_.push_back(std::move(chunk));
    // Initial load: write every LBA of every replica. Failures are
    // tolerated — if the load itself wears out an mDisk, the event wave in
    // ProcessEvents repairs the affected chunks.
    Chunk& placed = chunks_.back();
    for (ReplicaLocation& replica : placed.replicas) {
      for (uint64_t offset = 0; offset < config_.chunk_opages; ++offset) {
        (void)WriteReplica(replica, offset);
      }
    }
    ProcessEvents();
  }
  return OkStatus();
}

StatusOr<SimDuration> DifsCluster::WriteReplica(ReplicaLocation& replica,
                                                uint64_t offset) {
  if (!replica.live || replica.draining) {
    return FailedPreconditionError("replica not writable");
  }
  if (NodeOut(replica.device)) {
    // Unreachable node: the write is skipped, not queued; the replica goes
    // stale and resync-driven recovery handles it if the mDisk dies out.
    ++stats_.outage_write_skips;
    return UnavailableError("WriteReplica: node under outage");
  }
  DeviceState& state = devices_[replica.device];
  return WithTransientRetry([&] {
    return state.device->Write(
        replica.mdisk,
        static_cast<uint64_t>(replica.slot) * config_.chunk_opages + offset);
  });
}

bool DifsCluster::AdmitForegroundWrite(const Chunk& chunk,
                                       uint64_t* extra_ns) {
  // Replica writes fan out in parallel, so the op's queue delay is the max
  // across its target devices. Admission is all-or-nothing: the first
  // refusal sheds the whole op before any replica is touched — a partial
  // fan-out would leave stale replicas whose checksum mismatches pollute the
  // end-to-end integrity ledger.
  uint64_t extra = 0;
  for (const ReplicaLocation& replica : chunk.replicas) {
    if (!replica.live || replica.draining || NodeOut(replica.device)) {
      continue;  // WriteReplica refuses these targets anyway
    }
    const QueueAdmission admission = Queue(replica.device)
        ->Admit(OpClass::kForegroundWrite, sched_clock_ns_);
    extra = std::max(extra, admission.wait_ns + admission.backoff_ns);
    if (!admission.admitted) {
      *extra_ns = extra;
      return false;
    }
  }
  *extra_ns = extra;
  return true;
}

void DifsCluster::RecordForegroundLatency(uint64_t latency_ns) {
  if (brownout_ != nullptr) {
    brownout_->RecordForeground(latency_ns);
  }
}

Status DifsCluster::WriteChunkBody(Chunk& chunk, uint64_t offset,
                                   SimDuration* cost_ns) {
  if (chunk.lost) {
    return DataLossError("WriteChunkBody: chunk lost");
  }
  uint64_t sched_extra_ns = 0;  // parallel admission wait + shed backoff
  if (QueueingEnabled()) {
    sched_clock_ns_ += config_.sched.arrival_interval_ns;  // one arrival
    if (!AdmitForegroundWrite(chunk, &sched_extra_ns)) {
      // Shed whole: no replica was touched, so the chunk's generation,
      // checksum, and replica stamps all stay consistent.
      ++stats_.sched_write_sheds;
      stats_.sched_wait_ns += sched_extra_ns;
      if (cost_ns != nullptr) {
        *cost_ns = sched_extra_ns;
      }
      RecordForegroundLatency(sched_extra_ns);
      MaybeRunMaintenance();
      return UnavailableError("WriteChunkBody: shed at admission");
    }
  }
  const uint64_t backoff_before = stats_.backoff_ns;
  SimDuration slowest = 0;
  // The write changes the chunk's contents: restamp its checksum metadata
  // (every replica carries the new generation).
  ++chunk.generation;
  chunk.checksum = codec_.Stamp(chunk.id, chunk.generation);
  for (ReplicaLocation& replica : chunk.replicas) {
    if (!replica.live) {
      continue;
    }
    // Failures are tolerated: the replica's device just decommissioned or
    // bricked and the event wave below repairs the chunk. Successful writes
    // stamp the replica with the new generation — a replica that misses
    // writes (dark device) keeps its old stamp and is stale on return.
    auto write = WriteReplica(replica, offset);
    if (write.ok()) {
      replica.generation = chunk.generation;
      if (QueueingEnabled()) {
        Queue(replica.device)->Complete(OpClass::kForegroundWrite,
                                        write.value());
      }
      // Replica writes fan out in parallel; the logical write completes when
      // the slowest one does.
      slowest = std::max(slowest, write.value());
    }
  }
  const SimDuration total =
      slowest + (stats_.backoff_ns - backoff_before) + sched_extra_ns;
  if (cost_ns != nullptr) {
    *cost_ns = total;
  }
  stats_.sched_wait_ns += sched_extra_ns;
  RecordForegroundLatency(total);
  ++stats_.foreground_opage_writes;
  ProcessEvents();
  MaybeRunMaintenance();
  return OkStatus();
}

Status DifsCluster::StepWrites(uint64_t opage_writes) {
  if (chunks_.empty()) {
    return FailedPreconditionError("StepWrites: bootstrap first");
  }
  for (uint64_t i = 0; i < opage_writes; ++i) {
    const ChunkId chunk_id = rng_.UniformU64(chunks_.size());
    Chunk& chunk = chunks_[chunk_id];
    if (chunk.lost) {
      continue;
    }
    const uint64_t offset = rng_.UniformU64(config_.chunk_opages);
    (void)WriteChunkBody(chunk, offset, nullptr);
  }
  return OkStatus();
}

Status DifsCluster::WriteChunkAt(ChunkId chunk_id, uint64_t offset,
                                 SimDuration* cost_ns) {
  if (chunks_.empty()) {
    return FailedPreconditionError("WriteChunkAt: bootstrap first");
  }
  if (chunk_id >= chunks_.size()) {
    return InvalidArgumentError("WriteChunkAt: chunk id out of range");
  }
  if (offset >= config_.chunk_opages) {
    return InvalidArgumentError("WriteChunkAt: offset out of range");
  }
  Status status = WriteChunkBody(chunks_[chunk_id], offset, cost_ns);
  if (status.code() == StatusCode::kDataLoss) {
    return DataLossError("WriteChunkAt: chunk lost");
  }
  return status;
}

Status DifsCluster::ReadChunkImpl(ChunkId chunk_id, const uint64_t* offset_ptr,
                                  SimDuration* cost_ns) {
  Chunk& chunk = chunks_[chunk_id];
  if (chunk.lost || chunk.readable_replicas() == 0) {
    return DataLossError("chunk unreadable");
  }
  // Pick a random readable replica (draining ones still serve reads),
  // excluding replicas on an out node. Without an outage the candidate
  // count equals readable_replicas(), so the RNG schedule is unchanged.
  uint32_t candidates = 0;
  for (const ReplicaLocation& r : chunk.replicas) {
    candidates += (r.live && !NodeOut(r.device)) ? 1 : 0;
  }
  if (candidates == 0) {
    return UnavailableError("every readable copy behind the outage");
  }
  uint32_t live_index = static_cast<uint32_t>(rng_.UniformU64(candidates));
  ReplicaLocation* replica = nullptr;
  for (ReplicaLocation& r : chunk.replicas) {
    if (r.live && !NodeOut(r.device) && live_index-- == 0) {
      replica = &r;
      break;
    }
  }
  // Legacy draw order: the offset is drawn *after* the replica pick. A
  // targeted caller supplies it instead, skipping the draw.
  const uint64_t offset =
      offset_ptr != nullptr ? *offset_ptr : rng_.UniformU64(config_.chunk_opages);
  uint64_t sched_extra_ns = 0;  // primary-path queue wait + shed backoff
  DeviceQueue* hedge_queue = nullptr;
  uint64_t hedge_extra_ns = 0;
  if (QueueingEnabled()) {
    sched_clock_ns_ += config_.sched.arrival_interval_ns;  // one arrival
    const QueueAdmission admission =
        Queue(replica->device)->Admit(OpClass::kForegroundRead, sched_clock_ns_);
    if (!admission.admitted) {
      ++stats_.sched_read_sheds;
      stats_.sched_wait_ns += admission.backoff_ns;
      if (cost_ns != nullptr) {
        *cost_ns = admission.backoff_ns;
      }
      RecordForegroundLatency(admission.backoff_ns);
      MaybeRunMaintenance();
      return UnavailableError("ReadChunkImpl: shed at admission");
    }
    sched_extra_ns = admission.wait_ns + admission.backoff_ns;
    // Hedge: when the primary's queue delay breaches the threshold, admit a
    // *modeled* duplicate on the least-loaded alternate replica (lowest
    // device index breaks ties). No second device read is issued — that
    // would perturb fault-injection draws and add real wear — the alternate
    // queue is charged the primary's service time as a proxy and the op
    // finishes on whichever path frees it first. Only alternates with queue
    // room are considered, so the hedge admission never sheds or retries.
    if (config_.sched.hedge_threshold_ns > 0 &&
        admission.wait_ns > config_.sched.hedge_threshold_ns) {
      uint32_t hedge_device = 0;
      uint64_t best_wait = 0;
      bool found = false;
      for (const ReplicaLocation& r : chunk.replicas) {
        // A replica can be live in the bookkeeping while its device is dark
        // (suspect window after a crash): hedging there would model a
        // duplicate read against a powered-off device. Fall back to the
        // primary path instead — a hedge must never make things worse.
        if (!r.live || NodeOut(r.device) || r.device == replica->device ||
            devices_[r.device].device->failed()) {
          continue;
        }
        DeviceQueue* alt = Queue(r.device);
        alt->AdvanceTo(sched_clock_ns_);
        if (alt->depth() >= config_.sched.queue_depth) {
          continue;  // full: a hedge would just shed
        }
        const uint64_t wait = alt->EstimateWaitNs(OpClass::kForegroundRead);
        if (!found || wait < best_wait) {
          found = true;
          best_wait = wait;
          hedge_device = r.device;
        }
      }
      if (found && best_wait < admission.wait_ns) {
        const QueueAdmission hedge_admission =
            Queue(hedge_device)->Admit(OpClass::kForegroundRead, sched_clock_ns_);
        hedge_queue = Queue(hedge_device);
        hedge_extra_ns = hedge_admission.wait_ns + hedge_admission.backoff_ns;
        ++stats_.sched_hedged_reads;
      }
    }
  }
  const uint64_t backoff_before = stats_.backoff_ns;
  SimDuration latency = 0;
  DeviceState& state = devices_[replica->device];
  auto read = WithTransientRetry([&] {
    return state.device->Read(
        replica->mdisk,
        static_cast<uint64_t>(replica->slot) * config_.chunk_opages + offset);
  });
  if (read.ok()) {
    latency = read.value().latency;
  }
  const uint64_t corrupt = ObserveCorruption(replica->device);
  if (read.ok() && corrupt > 0) {
    // End-to-end verify: the device said the read succeeded, but the
    // checksum computed over the delivered payload does not match the
    // stamp in chunk metadata.
    const uint64_t observed = codec_.CorruptObservation(chunk.checksum);
    if (!ChecksumCodec::Verify(chunk.checksum, observed)) {
      // Read-repair: retire the corrupt replica, re-serve the read from a
      // survivor (retiring any survivor that also fails its checksum), and
      // let the recovery scheduler re-replicate.
      if (MarkReplicaBad(chunk, *replica, /*enqueue=*/true)) {
        for (ReplicaLocation& survivor : chunk.replicas) {
          if (!survivor.live || NodeOut(survivor.device)) {
            continue;
          }
          DeviceState& sstate = devices_[survivor.device];
          auto reread = WithTransientRetry([&] {
            return sstate.device->Read(
                survivor.mdisk,
                static_cast<uint64_t>(survivor.slot) * config_.chunk_opages +
                    offset);
          });
          if (reread.ok()) {
            // The re-serve happens after the corrupt read returned:
            // sequential, so its latency adds to the op's service time.
            latency += reread.value().latency;
          }
          const uint64_t again = ObserveCorruption(survivor.device);
          if (reread.ok() && again == 0) {
            ++stats_.integrity_survivor_reads;
            break;
          }
          if (again > 0 &&
              !MarkReplicaBad(chunk, survivor, /*enqueue=*/true)) {
            break;  // last readable copy retained; nothing cleaner exists
          }
        }
      }
      ProcessEvents();
    }
  } else if (!read.ok() && read.status().code() == StatusCode::kDataLoss) {
    ++stats_.uncorrectable_reads;
    // Scrub: rewrite the page so future reads see freshly-programmed flash
    // (content restored from a healthy replica in a real system).
    auto repair = WriteReplica(*replica, offset);
    if (repair.ok()) {
      ++stats_.scrub_repairs;
      latency += repair.value();
    }
    ProcessEvents();
  }
  if (QueueingEnabled()) {
    if (read.ok()) {
      Queue(replica->device)->Complete(OpClass::kForegroundRead, latency);
      if (hedge_queue != nullptr) {
        hedge_queue->Complete(OpClass::kForegroundRead, latency);
      }
    }
    if (hedge_queue != nullptr && hedge_extra_ns < sched_extra_ns) {
      ++stats_.sched_hedge_wins;
      sched_extra_ns = hedge_extra_ns;  // op completes on the faster path
    }
    stats_.sched_wait_ns += sched_extra_ns;
  }
  const SimDuration total =
      latency + (stats_.backoff_ns - backoff_before) + sched_extra_ns;
  if (cost_ns != nullptr) {
    *cost_ns = total;
  }
  RecordForegroundLatency(total);
  MaybeRunMaintenance();
  return read.ok() ? OkStatus() : read.status();
}

Status DifsCluster::StepReads(uint64_t opage_reads) {
  if (chunks_.empty()) {
    return FailedPreconditionError("StepReads: bootstrap first");
  }
  for (uint64_t i = 0; i < opage_reads; ++i) {
    const ChunkId chunk_id = rng_.UniformU64(chunks_.size());
    // Unreadable / fully-outaged chunks return early without drawing — the
    // same skip the legacy loop's `continue` performed.
    (void)ReadChunkImpl(chunk_id, nullptr, nullptr);
  }
  return OkStatus();
}

Status DifsCluster::ReadChunkAt(ChunkId chunk_id, uint64_t offset,
                                SimDuration* cost_ns) {
  if (chunks_.empty()) {
    return FailedPreconditionError("ReadChunkAt: bootstrap first");
  }
  if (chunk_id >= chunks_.size()) {
    return InvalidArgumentError("ReadChunkAt: chunk id out of range");
  }
  if (offset >= config_.chunk_opages) {
    return InvalidArgumentError("ReadChunkAt: offset out of range");
  }
  return ReadChunkImpl(chunk_id, &offset, cost_ns);
}

// ---------------------------------------------------------------------------
// End-to-end integrity & background scrub
// ---------------------------------------------------------------------------

uint64_t DifsCluster::ObserveCorruption(uint32_t device_index) {
  DeviceState& state = devices_[device_index];
  const uint64_t now = state.device->ftl().stats().silent_corrupt_fpage_reads;
  const uint64_t delta = now - state.observed_silent_corrupt;
  state.observed_silent_corrupt = now;
  stats_.integrity_detected += delta;
  return delta;
}

bool DifsCluster::MarkReplicaBad(Chunk& chunk, ReplicaLocation& replica,
                                 bool enqueue) {
  if (!replica.live) {
    return false;
  }
  if (!chunk.lost && chunk.readable_replicas() <= 1) {
    // Last readable copy: a real system keeps the corrupt bytes and attempts
    // partial recovery rather than deleting the only copy (Tai et al.'s
    // live-recovery argument) — and losing the chunk here would turn every
    // detected corruption into data loss.
    ++stats_.integrity_retained_last_copies;
    return false;
  }
  DeviceState& state = devices_[replica.device];
  auto it = state.slots.find(replica.mdisk);
  if (it != state.slots.end() &&
      it->second[replica.slot] == static_cast<int64_t>(chunk.id)) {
    if (replica.draining) {
      // Mirror ReleaseDrainingReplicas: the slot can take no new data, and
      // the mDisk's drain completes once its last pending chunk is gone.
      it->second[replica.slot] = kUnavailableSlot;
      auto pending_it = state.draining_pending.find(replica.mdisk);
      if (pending_it != state.draining_pending.end() &&
          --pending_it->second == 0) {
        state.draining_pending.erase(pending_it);
        state.slots.erase(replica.mdisk);
        if (SendAckDrain(replica.device, replica.mdisk)) {
          ++stats_.drains_acked;
        }
      }
    } else {
      it->second[replica.slot] = kFreeSlot;
      ++state.free_slot_count;
    }
  }
  replica.live = false;
  ++stats_.replicas_lost;
  ++stats_.integrity_marked_bad;
  if (config_.trace != nullptr) {
    config_.trace->Instant("replica_marked_bad", "difs", trace_time_us_,
                           config_.trace_tid);
  }
  if (!chunk.lost && enqueue && chunk.live_replicas() < config_.replication) {
    pending_recoveries_.push_back(chunk.id);
  }
  return true;
}

uint64_t DifsCluster::ScrubStep(uint64_t opage_budget) {
  if (opage_budget == 0 || chunks_.empty()) {
    return 0;
  }
  if (brownout_ != nullptr && brownout_->active()) {
    // Graceful degradation: while foreground p99 breaches the SLO, scrub
    // yields its whole budget (the cursor does not move, so no coverage is
    // silently lost — the pass just finishes later).
    ++stats_.brownout_scrub_deferrals;
    return 0;
  }
  uint64_t reads = 0;
  // Positions that turned out unreadable (dead replicas, out nodes, lost
  // chunks) cost no budget; bound them so a mostly-dead cluster cannot spin.
  uint64_t skipped = 0;
  const uint64_t skip_limit =
      chunks_.size() * (static_cast<uint64_t>(config_.replication) + 2);
  while (reads < opage_budget && skipped <= skip_limit) {
    if (scrub_cursor_.major >= chunks_.size()) {
      scrub_cursor_.major = 0;
      scrub_cursor_.minor = 0;
    }
    Chunk& chunk = chunks_[scrub_cursor_.major];
    const uint64_t minor_size =
        chunk.replicas.size() * config_.chunk_opages;
    if (chunk.lost || minor_size == 0 ||
        scrub_cursor_.minor >= minor_size) {
      ++skipped;
      if (scrub_cursor_.SkipMajor(chunks_.size())) {
        ++stats_.scrub_passes;
      }
      continue;
    }
    const uint32_t replica_index =
        static_cast<uint32_t>(scrub_cursor_.minor / config_.chunk_opages);
    const uint64_t offset = scrub_cursor_.minor % config_.chunk_opages;
    ReplicaLocation& replica = chunk.replicas[replica_index];
    if (!replica.live || NodeOut(replica.device)) {
      // Skip the rest of this replica's oPages.
      ++skipped;
      scrub_cursor_.minor =
          (static_cast<uint64_t>(replica_index) + 1) * config_.chunk_opages;
      if (scrub_cursor_.minor >= minor_size &&
          scrub_cursor_.SkipMajor(chunks_.size())) {
        ++stats_.scrub_passes;
      } else if (scrub_cursor_.minor >= minor_size) {
        scrub_cursor_.minor = 0;
      }
      continue;
    }
    if (QueueingEnabled()) {
      // Scrub rides at the lowest priority: a full queue sheds the read and
      // the cursor moves on (the position is retried on the next pass).
      const QueueAdmission admission =
          Queue(replica.device)->Admit(OpClass::kScrub, sched_clock_ns_);
      if (!admission.admitted) {
        ++stats_.sched_scrub_sheds;
        ++skipped;
        if (scrub_cursor_.Advance(chunks_.size(), minor_size)) {
          ++stats_.scrub_passes;
        }
        continue;
      }
    }
    DeviceState& state = devices_[replica.device];
    auto read = WithTransientRetry([&] {
      return state.device->Read(
          replica.mdisk,
          static_cast<uint64_t>(replica.slot) * config_.chunk_opages + offset);
    });
    if (QueueingEnabled() && read.ok()) {
      Queue(replica.device)->Complete(OpClass::kScrub, read.value().latency);
    }
    ++reads;
    ++stats_.scrub_opage_reads;
    const uint64_t corrupt = ObserveCorruption(replica.device);
    if (read.ok() && corrupt > 0) {
      const uint64_t observed = codec_.CorruptObservation(chunk.checksum);
      if (!ChecksumCodec::Verify(chunk.checksum, observed)) {
        stats_.scrub_detected += corrupt;
        // Latent corruption caught before a foreground read (or the loss of
        // the last good replica): repair through the same read-repair path.
        MarkReplicaBad(chunk, replica, /*enqueue=*/true);
        ProcessEvents();
      }
    } else if (!read.ok() && read.status().code() == StatusCode::kDataLoss) {
      ++stats_.uncorrectable_reads;
      if (WriteReplica(replica, offset).ok()) {
        ++stats_.scrub_repairs;
      }
      ProcessEvents();
    }
    if (scrub_cursor_.Advance(chunks_.size(), minor_size)) {
      ++stats_.scrub_passes;
    }
  }
  return reads;
}

// ---------------------------------------------------------------------------
// Maintenance, reconciliation, invariants
// ---------------------------------------------------------------------------

bool DifsCluster::SendAckDrain(uint32_t device_index, MinidiskId mdisk) {
  FaultInjector* faults = config_.faults.get();
  if (NodeOut(device_index) ||
      (faults != nullptr && faults->LosesAckDrain())) {
    // The ack never reaches the device: its mDisk stays in kDraining limbo
    // until a later ResyncDevice notices and re-sends.
    ++stats_.acks_lost;
    return false;
  }
  DeviceState& state = devices_[device_index];
  const Status status =
      WithTransientRetry([&] { return state.device->AckDrain(mdisk); });
  return status.ok();
}

bool DifsCluster::MaintenanceDormant() const {
  // Auto mode: periodic reconciliation only pays for itself when faults can
  // desynchronize cluster and device state. Without any injector the
  // maintenance path stays completely dormant, so the fault-free RNG
  // schedule (and every bench output) is untouched.
  if (config_.resync_interval_ops != 0 || config_.faults != nullptr) {
    return false;
  }
  // Proactive drain samples health on the maintenance tick; with the
  // threshold enabled the path must run even in a fault-free cluster.
  if (config_.drain_health_threshold > 0.0) {
    return false;
  }
  for (const DeviceState& state : devices_) {
    if (state.device->faults() != nullptr) {
      return false;
    }
  }
  return true;
}

uint64_t DifsCluster::MaintenanceIntervalOps() const {
  return config_.resync_interval_ops == 0 ? 256 : config_.resync_interval_ops;
}

uint64_t DifsCluster::OpsUntilMaintenanceTick() const {
  if (MaintenanceDormant()) {
    return UINT64_MAX;
  }
  const uint64_t interval = MaintenanceIntervalOps();
  // The tick fires on the op that brings the counter up to `interval`.
  return interval > ops_since_maintenance_
             ? interval - ops_since_maintenance_
             : 1;
}

void DifsCluster::MaybeRunMaintenance() {
  if (MaintenanceDormant()) {
    return;
  }
  if (++ops_since_maintenance_ >= MaintenanceIntervalOps()) {
    ops_since_maintenance_ = 0;
    MaintenanceTick();
  }
}

void DifsCluster::MaintenanceTick() {
  ++stats_.maintenance_ticks;
  FaultInjector* faults = config_.faults.get();
  if (outage_node_ >= 0) {
    if (--outage_ticks_left_ == 0) {
      // Rejoin: the node's devices are reachable again; the ReconcileAll
      // below replays whatever state changed while it was dark.
      outage_node_ = -1;
      if (config_.trace != nullptr) {
        config_.trace->Instant("node_rejoin", "difs", trace_time_us_,
                               config_.trace_tid);
      }
    }
  } else if (faults != nullptr && faults->StartsNodeOutage()) {
    outage_node_ =
        static_cast<int32_t>(faults->OutageNode(config_.nodes));
    outage_ticks_left_ = faults->OutageTicks();
    ++stats_.node_outages;
    if (config_.trace != nullptr) {
      config_.trace->Instant("node_outage", "difs", trace_time_us_,
                             config_.trace_tid);
    }
  }
  UpdateSuspectWindows();
  ReconcileAll();
  // Reconciliation may have changed the placement landscape (new mDisks
  // registered, drains acked): parked recoveries get another shot.
  if (!waiting_capacity_.empty()) {
    for (ChunkId chunk_id : waiting_capacity_) {
      pending_recoveries_.push_back(chunk_id);
    }
    waiting_capacity_.clear();
  }
  // Proactive health-driven drain (no-op at threshold 0) before the final
  // event pass, so migration wear surfaces in the same tick.
  ProactiveDrainTick();
  ProcessEvents();
}

void DifsCluster::ReconcileAll() {
  for (uint32_t i = 0; i < devices_.size(); ++i) {
    if (NodeOut(i)) {
      continue;
    }
    ResyncDevice(i);
  }
}

uint64_t DifsCluster::ResyncDevice(uint32_t device_index) {
  if (NodeOut(device_index)) {
    return 0;
  }
  DeviceState& state = devices_[device_index];
  // A transiently dark device with a grace window configured is suspect, not
  // dead: hold all bookkeeping (no loss declarations, no recovery) until the
  // window resolves — UpdateSuspectWindows() owns both outcomes. With the
  // window already expired (down_handled) the normal flow below applies,
  // which is the legacy treat-as-brick path.
  if (config_.suspect_grace_ticks > 0 && state.device->transiently_dark() &&
      !state.down_handled) {
    if (!state.suspect) {
      state.suspect = true;
      state.suspect_ticks_left = config_.suspect_grace_ticks;
      ++stats_.suspect_windows_started;
      if (config_.trace != nullptr) {
        config_.trace->Instant("suspect_window_open", "difs", trace_time_us_,
                               config_.trace_tid);
      }
    }
    return 0;
  }
  ++stats_.resync_passes;
  uint64_t repairs = 0;
  // Pass 1: mDisks the cluster believes in whose device-side state moved on
  // without us hearing (dropped/delayed kDecommissioned or kDraining).
  // Sorted snapshot: handlers mutate state.slots, and unordered_map
  // iteration order must never influence simulation behavior.
  std::vector<MinidiskId> known;
  known.reserve(state.slots.size());
  for (const auto& [mdisk, slots] : state.slots) {
    known.push_back(mdisk);
  }
  std::sort(known.begin(), known.end());
  const SsdDevice& device = *state.device;
  for (MinidiskId mdisk : known) {
    if (device.failed() || mdisk >= device.total_minidisks() ||
        device.manager().minidisk(mdisk).state ==
            MinidiskState::kDecommissioned) {
      HandleMdiskLoss(device_index, mdisk);
      ++repairs;
      continue;
    }
    if (device.manager().minidisk(mdisk).state == MinidiskState::kDraining &&
        state.draining_pending.count(mdisk) == 0) {
      HandleMdiskDraining(device_index, mdisk);
      ++repairs;
    }
  }
  // Pass 2: device-side mDisks the cluster has no record of — a missed
  // kCreated (new capacity), or a drain whose ack was lost after the cluster
  // finished migrating and forgot the mDisk.
  if (!device.failed()) {
    for (MinidiskId mdisk = 0; mdisk < device.total_minidisks(); ++mdisk) {
      if (state.slots.count(mdisk) != 0) {
        continue;
      }
      const MinidiskState mstate = device.manager().minidisk(mdisk).state;
      if (mstate == MinidiskState::kLive) {
        HandleMdiskCreated(device_index, mdisk);
        ++repairs;
      } else if (mstate == MinidiskState::kDraining) {
        if (SendAckDrain(device_index, mdisk)) {
          ++stats_.drains_acked;
          ++repairs;
        }
      }
    }
  }
  stats_.resync_repairs += repairs;
  return repairs;
}

void DifsCluster::UpdateSuspectWindows() {
  for (uint32_t i = 0; i < devices_.size(); ++i) {
    DeviceState& state = devices_[i];
    if (!state.device->failed()) {
      // Serving again: a post-expiry return goes through the normal resync
      // path (its mDisks re-register as fresh capacity), so the outage is no
      // longer "handled" state worth remembering.
      state.down_handled = false;
    }
    if (!state.suspect) {
      continue;
    }
    if (!state.device->transiently_dark()) {
      // Restarted within the window (or upgraded to a brick, in which case
      // the emitted brick events / resync declare the losses right after).
      state.suspect = false;
      state.suspect_ticks_left = 0;
      if (!state.device->failed()) {
        ++stats_.suspect_devices_returned;
        ResolveSuspect(i);
      }
      continue;
    }
    if (--state.suspect_ticks_left == 0) {
      // Grace expired: from here the device is treated exactly like a brick.
      state.suspect = false;
      state.down_handled = true;
      ++stats_.suspect_windows_expired;
      if (config_.trace != nullptr) {
        config_.trace->Instant("suspect_window_expired", "difs",
                               trace_time_us_, config_.trace_tid);
      }
      std::vector<MinidiskId> known;
      known.reserve(state.slots.size());
      for (const auto& [mdisk, slots] : state.slots) {
        known.push_back(mdisk);
      }
      std::sort(known.begin(), known.end());
      for (MinidiskId mdisk : known) {
        HandleMdiskLoss(i, mdisk);
      }
    }
  }
}

void DifsCluster::ResolveSuspect(uint32_t device_index) {
  DeviceState& state = devices_[device_index];
  if (config_.trace != nullptr) {
    config_.trace->Instant("suspect_device_returned", "difs", trace_time_us_,
                           config_.trace_tid);
  }
  // The restart queued re-announcements (kCreated per survivor); drain them
  // first. HandleMdiskCreated dedupes against mDisks the cluster still
  // tracks, so this only registers capacity the cluster had forgotten.
  ApplyDeviceEvents(device_index);
  // Reconcile every replica the cluster still records on this device against
  // the replayed device state. A replica is fresh iff its mDisk survived,
  // its generation matches the chunk's (it missed no foreground writes), and
  // the device reports no rolled-back page in its LBA range (its last
  // pre-crash writes were made durable). Anything else is pruned and
  // re-replicated through the normal recovery path.
  const SsdDevice& device = *state.device;
  std::vector<MinidiskId> known;
  known.reserve(state.slots.size());
  for (const auto& [mdisk, slots] : state.slots) {
    known.push_back(mdisk);
  }
  std::sort(known.begin(), known.end());
  for (MinidiskId mdisk : known) {
    if (mdisk >= device.total_minidisks() ||
        device.manager().minidisk(mdisk).state ==
            MinidiskState::kDecommissioned) {
      HandleMdiskLoss(device_index, mdisk);
      continue;
    }
    auto it = state.slots.find(mdisk);
    if (it == state.slots.end()) {
      continue;
    }
    for (uint32_t slot = 0; slot < it->second.size(); ++slot) {
      const int64_t chunk_id = it->second[slot];
      if (chunk_id < 0) {
        continue;  // free or unavailable slot: nothing stored
      }
      Chunk& chunk = chunks_[static_cast<uint64_t>(chunk_id)];
      ReplicaLocation* replica = nullptr;
      for (ReplicaLocation& r : chunk.replicas) {
        if (r.live && r.device == device_index && r.mdisk == mdisk &&
            r.slot == slot) {
          replica = &r;
          break;
        }
      }
      if (replica == nullptr) {
        continue;
      }
      const bool fresh =
          replica->generation == chunk.generation &&
          !device.AnyRolledBackInRange(
              mdisk, static_cast<uint64_t>(slot) * config_.chunk_opages,
              config_.chunk_opages);
      if (fresh) {
        ++stats_.suspect_replicas_revived;
        continue;
      }
      ++stats_.suspect_replicas_stale;
      if (!chunk.lost && chunk.readable_replicas() <= 1) {
        // Last readable copy: stale data beats no data. Keep it; a later
        // foreground write will freshen it in place.
        continue;
      }
      // Prune: release the slot and re-replicate from a fresh survivor.
      if (replica->draining) {
        it->second[slot] = kUnavailableSlot;
        auto pending_it = state.draining_pending.find(mdisk);
        if (pending_it != state.draining_pending.end() &&
            --pending_it->second == 0) {
          state.draining_pending.erase(pending_it);
          state.slots.erase(mdisk);
          if (SendAckDrain(device_index, mdisk)) {
            ++stats_.drains_acked;
          }
        }
      } else {
        it->second[slot] = kFreeSlot;
        ++state.free_slot_count;
      }
      replica->live = false;
      ++stats_.replicas_lost;
      if (!chunk.lost && chunk.live_replicas() < config_.replication) {
        pending_recoveries_.push_back(chunk.id);
      }
      // The map may have been erased by the drain-ack above.
      it = state.slots.find(mdisk);
      if (it == state.slots.end()) {
        break;
      }
    }
  }
  // The device's remaining resync discrepancies (e.g. a drain it finished
  // while dark) go through the normal path now that it serves again.
  ResyncDevice(device_index);
}

void DifsCluster::ForceReconcile() {
  // Convergence beats graceful degradation here: chaos tests assert a
  // drained backlog after ForceReconcile, so the brownout deferral (and the
  // recovery admission gate) stand aside for its duration.
  reconcile_override_ = true;
  // A few rounds of reconcile + recover: recovery can itself change the
  // landscape (wear out a target, finish a drain), so iterate until a round
  // makes no progress. Bounded — parked chunks with genuinely no capacity
  // (or capacity behind an outage) stay parked.
  for (int round = 0; round < 8; ++round) {
    ReconcileAll();
    if (!waiting_capacity_.empty()) {
      for (ChunkId chunk_id : waiting_capacity_) {
        pending_recoveries_.push_back(chunk_id);
      }
      waiting_capacity_.clear();
    }
    const uint64_t recovered_before = stats_.replicas_recovered;
    ProcessEvents();
    if (stats_.replicas_recovered == recovered_before &&
        pending_recoveries_.empty()) {
      break;
    }
  }
  reconcile_override_ = false;
}

void DifsCluster::CollectMetrics(MetricRegistry& registry,
                                 const std::string& prefix) const {
  registry.GetCounter(prefix + "difs.foreground_opage_writes")
      .Add(stats_.foreground_opage_writes);
  registry.GetCounter(prefix + "difs.recovery_opage_writes")
      .Add(stats_.recovery_opage_writes);
  registry.GetCounter(prefix + "difs.recovery_opage_reads")
      .Add(stats_.recovery_opage_reads);
  registry.GetCounter(prefix + "difs.recovery_bytes")
      .Add(stats_.recovery_bytes());
  registry.GetCounter(prefix + "difs.replicas_recovered")
      .Add(stats_.replicas_recovered);
  registry.GetCounter(prefix + "difs.replicas_lost")
      .Add(stats_.replicas_lost);
  registry.GetCounter(prefix + "difs.drains_started")
      .Add(stats_.drains_started);
  registry.GetCounter(prefix + "difs.drains_acked").Add(stats_.drains_acked);
  registry.GetCounter(prefix + "difs.drain_window_losses")
      .Add(stats_.drain_window_losses);
  registry.GetCounter(prefix + "difs.chunks_lost").Add(stats_.chunks_lost);
  registry.GetCounter(prefix + "difs.recovery_deferred")
      .Add(stats_.recovery_deferred);
  registry.GetCounter(prefix + "difs.uncorrectable_reads")
      .Add(stats_.uncorrectable_reads);
  registry.GetCounter(prefix + "difs.scrub_repairs")
      .Add(stats_.scrub_repairs);
  registry.GetCounter(prefix + "difs.recovery_waves")
      .Add(stats_.recovery_waves);
  registry.GetCounter(prefix + "difs.transient_retries")
      .Add(stats_.transient_retries);
  registry.GetCounter(prefix + "difs.transient_giveups")
      .Add(stats_.transient_giveups);
  registry.GetCounter(prefix + "difs.backoff_ns").Add(stats_.backoff_ns);
  registry.GetCounter(prefix + "difs.resync_passes")
      .Add(stats_.resync_passes);
  registry.GetCounter(prefix + "difs.resync_repairs")
      .Add(stats_.resync_repairs);
  registry.GetCounter(prefix + "difs.acks_lost").Add(stats_.acks_lost);
  registry.GetCounter(prefix + "difs.node_outages")
      .Add(stats_.node_outages);
  registry.GetCounter(prefix + "difs.outage_write_skips")
      .Add(stats_.outage_write_skips);
  registry.GetCounter(prefix + "difs.maintenance_ticks")
      .Add(stats_.maintenance_ticks);
  registry.GetCounter(prefix + "difs.integrity.detected")
      .Add(stats_.integrity_detected);
  registry.GetCounter(prefix + "difs.integrity.marked_bad")
      .Add(stats_.integrity_marked_bad);
  registry.GetCounter(prefix + "difs.integrity.retained_last_copies")
      .Add(stats_.integrity_retained_last_copies);
  registry.GetCounter(prefix + "difs.integrity.survivor_reads")
      .Add(stats_.integrity_survivor_reads);
  registry.GetCounter(prefix + "difs.scrub.opage_reads")
      .Add(stats_.scrub_opage_reads);
  registry.GetCounter(prefix + "difs.scrub.detected")
      .Add(stats_.scrub_detected);
  registry.GetCounter(prefix + "difs.scrub.passes")
      .Add(stats_.scrub_passes);
  // Queueing instruments only exist when the layer is on, keeping legacy
  // metric exports byte-identical (per-device queue internals land under
  // "<prefix>ssd.sched.*" via SsdDevice::CollectMetrics below).
  if (config_.sched.enabled()) {
    registry.GetCounter(prefix + "difs.sched.read_sheds")
        .Add(stats_.sched_read_sheds);
    registry.GetCounter(prefix + "difs.sched.write_sheds")
        .Add(stats_.sched_write_sheds);
    registry.GetCounter(prefix + "difs.sched.recovery_sheds")
        .Add(stats_.sched_recovery_sheds);
    registry.GetCounter(prefix + "difs.sched.scrub_sheds")
        .Add(stats_.sched_scrub_sheds);
    registry.GetCounter(prefix + "difs.sched.wait_ns")
        .Add(stats_.sched_wait_ns);
    registry.GetCounter(prefix + "difs.sched.hedged_reads")
        .Add(stats_.sched_hedged_reads);
    registry.GetCounter(prefix + "difs.sched.hedge_wins")
        .Add(stats_.sched_hedge_wins);
    registry.GetCounter(prefix + "difs.sched.brownout_scrub_deferrals")
        .Add(stats_.brownout_scrub_deferrals);
    registry.GetCounter(prefix + "difs.sched.brownout_recovery_deferrals")
        .Add(stats_.brownout_recovery_deferrals);
    if (brownout_ != nullptr) {
      registry.GetCounter(prefix + "difs.sched.brownout_windows")
          .Add(brownout_->stats().windows);
      registry.GetCounter(prefix + "difs.sched.brownout_entered")
          .Add(brownout_->stats().entered);
      registry.GetCounter(prefix + "difs.sched.brownout_exited")
          .Add(brownout_->stats().exited);
      registry.GetGauge(prefix + "difs.sched.brownout_active")
          .Add(brownout_->active() ? 1.0 : 0.0);
    }
  }
  // Suspect-window instruments only exist when the feature is on, keeping
  // legacy metric exports byte-identical.
  if (config_.suspect_grace_ticks > 0) {
    registry.GetCounter(prefix + "difs.suspect.windows_started")
        .Add(stats_.suspect_windows_started);
    registry.GetCounter(prefix + "difs.suspect.windows_expired")
        .Add(stats_.suspect_windows_expired);
    registry.GetCounter(prefix + "difs.suspect.devices_returned")
        .Add(stats_.suspect_devices_returned);
    registry.GetCounter(prefix + "difs.suspect.replicas_revived")
        .Add(stats_.suspect_replicas_revived);
    registry.GetCounter(prefix + "difs.suspect.replicas_stale")
        .Add(stats_.suspect_replicas_stale);
  }
  // Placement and proactive-drain instruments only exist when the feature is
  // on (same byte-identity discipline as the blocks above).
  if (config_.placement != nullptr && config_.placement->Constrains()) {
    registry.GetCounter(prefix + "difs.placement.domain_rejections")
        .Add(stats_.placement_domain_rejections);
    registry.GetCounter(prefix + "difs.placement.domain_fallbacks")
        .Add(stats_.placement_domain_fallbacks);
  }
  if (config_.drain_health_threshold > 0.0) {
    registry.GetCounter(prefix + "difs.drain.devices_flagged")
        .Add(stats_.drain_devices_flagged);
    registry.GetCounter(prefix + "difs.drain.devices_completed")
        .Add(stats_.drain_devices_completed);
    registry.GetCounter(prefix + "difs.drain.replicas_migrated")
        .Add(stats_.drain_replicas_migrated);
    registry.GetCounter(prefix + "difs.drain.opage_reads")
        .Add(stats_.drain_opage_reads);
    registry.GetCounter(prefix + "difs.drain.opage_writes")
        .Add(stats_.drain_opage_writes);
    registry.GetCounter(prefix + "difs.drain.migrations_parked")
        .Add(stats_.drain_migrations_parked);
    registry.GetCounter(prefix + "difs.drain.brownout_deferrals")
        .Add(stats_.drain_brownout_deferrals);
    registry.GetCounter(prefix + "difs.drain.sched_sheds")
        .Add(stats_.drain_sched_sheds);
  }
  registry.GetGauge(prefix + "difs.max_wave_recovery_opages")
      .Add(static_cast<double>(stats_.max_wave_recovery_opages));
  registry.GetGauge(prefix + "difs.alive_devices")
      .Add(static_cast<double>(alive_devices()));
  registry.GetGauge(prefix + "difs.total_chunks")
      .Add(static_cast<double>(total_chunks()));
  registry.GetGauge(prefix + "difs.chunks_fully_replicated")
      .Add(static_cast<double>(chunks_fully_replicated()));
  registry.GetGauge(prefix + "difs.chunks_under_replicated")
      .Add(static_cast<double>(chunks_under_replicated()));
  registry.GetGauge(prefix + "difs.chunks_waiting_capacity")
      .Add(static_cast<double>(chunks_waiting_capacity()));
  registry.GetGauge(prefix + "difs.pending_recovery_backlog")
      .Add(static_cast<double>(pending_recovery_backlog()));
  registry.GetGauge(prefix + "difs.free_slots")
      .Add(static_cast<double>(free_slots()));
  registry.GetGauge(prefix + "difs.live_capacity_bytes")
      .Add(static_cast<double>(live_capacity_bytes()));
  for (const DeviceState& state : devices_) {
    state.device->CollectMetrics(registry, prefix);
  }
  if (config_.faults != nullptr) {
    // Distinct prefix: the per-device injector counters collected by
    // SsdDevice::CollectMetrics live under "<prefix>faults.".
    CollectFaultMetrics(registry, config_.faults->stats(),
                        prefix + "cluster_");
  }
}

Status DifsCluster::CheckInvariants() const {
  // Direction 1: every slot-map entry points at a chunk with exactly one
  // matching live replica record; free-slot counts and draining_pending
  // match what the maps actually contain.
  for (uint32_t d = 0; d < devices_.size(); ++d) {
    const DeviceState& state = devices_[d];
    uint64_t free_count = 0;
    std::unordered_map<MinidiskId, uint32_t> occupied_per_mdisk;
    for (const auto& [mdisk, slots] : state.slots) {
      for (uint32_t slot = 0; slot < slots.size(); ++slot) {
        const int64_t entry = slots[slot];
        if (entry == kFreeSlot) {
          ++free_count;
          continue;
        }
        if (entry == kUnavailableSlot) {
          continue;
        }
        if (entry < 0 || static_cast<uint64_t>(entry) >= chunks_.size()) {
          return InternalError("slot maps unknown chunk id " +
                               std::to_string(entry) + " (device " +
                               std::to_string(d) + ")");
        }
        const Chunk& chunk = chunks_[static_cast<uint64_t>(entry)];
        uint32_t matches = 0;
        bool draining = false;
        for (const ReplicaLocation& r : chunk.replicas) {
          if (r.live && r.device == d && r.mdisk == mdisk && r.slot == slot) {
            ++matches;
            draining = r.draining;
          }
        }
        if (matches != 1) {
          return InternalError(
              "slot (device " + std::to_string(d) + ", mdisk " +
              std::to_string(mdisk) + ", slot " + std::to_string(slot) +
              ") has " + std::to_string(matches) +
              " live replica records for chunk " + std::to_string(entry));
        }
        ++occupied_per_mdisk[mdisk];
        const bool mdisk_draining = state.draining_pending.count(mdisk) != 0;
        if (mdisk_draining != draining) {
          return InternalError("replica draining flag out of sync on device " +
                               std::to_string(d) + " mdisk " +
                               std::to_string(mdisk));
        }
      }
    }
    if (free_count != state.free_slot_count) {
      return InternalError("device " + std::to_string(d) +
                           " free_slot_count=" +
                           std::to_string(state.free_slot_count) +
                           " but slot maps hold " + std::to_string(free_count));
    }
    for (const auto& [mdisk, pending] : state.draining_pending) {
      if (state.slots.count(mdisk) == 0) {
        return InternalError("draining_pending for unmapped mdisk " +
                             std::to_string(mdisk) + " on device " +
                             std::to_string(d));
      }
      const auto occupied_it = occupied_per_mdisk.find(mdisk);
      const uint32_t occupied =
          occupied_it == occupied_per_mdisk.end() ? 0 : occupied_it->second;
      if (pending != occupied) {
        return InternalError("device " + std::to_string(d) + " mdisk " +
                             std::to_string(mdisk) + " draining_pending=" +
                             std::to_string(pending) + " but " +
                             std::to_string(occupied) + " slots occupied");
      }
    }
  }
  // Direction 2: every live replica record is backed by its slot; live
  // non-draining replicas are node-disjoint and within the replication
  // bound; the lost flag agrees with readability.
  for (const Chunk& chunk : chunks_) {
    std::vector<uint32_t> nodes;
    uint32_t live = 0;
    for (const ReplicaLocation& r : chunk.replicas) {
      if (!r.live) {
        continue;
      }
      const DeviceState& state = devices_[r.device];
      const auto it = state.slots.find(r.mdisk);
      if (it == state.slots.end() ||
          it->second[r.slot] != static_cast<int64_t>(chunk.id)) {
        return InternalError("chunk " + std::to_string(chunk.id) +
                             " live replica not backed by slot map (device " +
                             std::to_string(r.device) + ")");
      }
      if (!r.draining) {
        ++live;
        nodes.push_back(node_of_device(r.device));
      }
    }
    std::sort(nodes.begin(), nodes.end());
    if (std::adjacent_find(nodes.begin(), nodes.end()) != nodes.end()) {
      return InternalError("chunk " + std::to_string(chunk.id) +
                           " has two live replicas on one node");
    }
    if (config_.placement != nullptr && config_.placement->Constrains() &&
        stats_.placement_domain_fallbacks == 0) {
      // No placement ever fell back, so every chunk must honor the domain
      // constraint end to end: live non-draining replicas rack-disjoint.
      std::vector<uint32_t> racks;
      racks.reserve(nodes.size());
      for (const uint32_t node : nodes) {
        racks.push_back(rack_of_node(node));
      }
      std::sort(racks.begin(), racks.end());
      if (std::adjacent_find(racks.begin(), racks.end()) != racks.end()) {
        return InternalError("chunk " + std::to_string(chunk.id) +
                             " has two live replicas in one rack despite "
                             "zero domain fallbacks");
      }
    }
    if (live > config_.replication) {
      return InternalError("chunk " + std::to_string(chunk.id) +
                           " over-replicated: " + std::to_string(live));
    }
    if (chunk.lost && chunk.readable_replicas() != 0) {
      return InternalError("chunk " + std::to_string(chunk.id) +
                           " marked lost but still readable");
    }
    if (!chunk.lost && !chunk.replicas.empty() &&
        chunk.readable_replicas() == 0) {
      return InternalError("chunk " + std::to_string(chunk.id) +
                           " unreadable but not marked lost");
    }
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

uint32_t DifsCluster::alive_devices() const {
  uint32_t alive = 0;
  for (const DeviceState& state : devices_) {
    alive += state.device->failed() ? 0 : 1;
  }
  return alive;
}

uint64_t DifsCluster::chunks_fully_replicated() const {
  uint64_t n = 0;
  for (const Chunk& chunk : chunks_) {
    n += (!chunk.lost && chunk.live_replicas() >= config_.replication) ? 1 : 0;
  }
  return n;
}

uint64_t DifsCluster::chunks_under_replicated() const {
  uint64_t n = 0;
  for (const Chunk& chunk : chunks_) {
    n += (!chunk.lost && chunk.live_replicas() < config_.replication) ? 1 : 0;
  }
  return n;
}

uint64_t DifsCluster::live_capacity_bytes() const {
  uint64_t total = 0;
  for (const DeviceState& state : devices_) {
    total += state.device->live_capacity_bytes();
  }
  return total;
}

uint64_t DifsCluster::total_bytes_written() const {
  uint64_t total = 0;
  for (const DeviceState& state : devices_) {
    total += state.device->bytes_written();
  }
  return total;
}

uint64_t DifsCluster::free_slots() const {
  uint64_t total = 0;
  for (const DeviceState& state : devices_) {
    total += state.free_slot_count;
  }
  return total;
}

}  // namespace salamander
