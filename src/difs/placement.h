// Pluggable placement policies for DifsCluster / EcCluster (ISSUE 10,
// ROADMAP item 3).
//
// Both clusters place replicas (chunks) or cells (stripes) with a single
// uniform start draw followed by a deterministic linear probe that already
// enforces node-disjointness. A PlacementPolicy adds an *extra* veto on top
// of that probe: the cluster first runs a constrained pass in which every
// candidate node must satisfy `Allows(candidate, used_nodes)`, and only when
// that pass finds nothing does it fall back — counted — to the plain
// node-disjoint baseline. The start draw is shared between passes, so a
// policy that never vetoes (UniformPlacement, or no policy at all)
// reproduces the legacy draw sequence and placements bit-for-bit.
//
// Failure-domain topology is flat: nodes are grouped into racks (power
// domains) of `nodes_per_rack` consecutive nodes. `nodes_per_rack <= 1`
// degenerates to every node being its own rack, where domain-spread equals
// plain node-disjointness.
#ifndef SALAMANDER_DIFS_PLACEMENT_H_
#define SALAMANDER_DIFS_PLACEMENT_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace salamander {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Stable name for logs and metric labels.
  virtual std::string_view name() const = 0;

  // True when the policy can veto candidates beyond node-disjointness. When
  // false the cluster skips the constrained pass entirely, so the policy is
  // guaranteed draw-for-draw identical to having no policy.
  virtual bool Constrains() const = 0;

  // May a new replica/cell land on `candidate_node`, given the nodes already
  // holding live copies of the same chunk/stripe? Consulted only during the
  // constrained pass; must be pure (no state, no RNG) so placement stays
  // deterministic and engine-independent.
  virtual bool Allows(uint32_t candidate_node,
                      const std::vector<uint32_t>& used_nodes) const = 0;
};

// Uniform-random baseline: no constraint beyond the clusters' built-in
// node-disjointness. Bit-identical to running without a policy.
class UniformPlacement final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "uniform"; }
  bool Constrains() const override { return false; }
  bool Allows(uint32_t /*candidate_node*/,
              const std::vector<uint32_t>& /*used_nodes*/) const override {
    return true;
  }
};

// Domain-spread: never co-locate two copies of one chunk/stripe in the same
// rack. With `nodes_per_rack <= 1` every node is its own rack and the policy
// reduces to node-disjointness (the constrained pass then never vetoes).
class DomainSpreadPlacement final : public PlacementPolicy {
 public:
  explicit DomainSpreadPlacement(uint32_t nodes_per_rack)
      : nodes_per_rack_(nodes_per_rack == 0 ? 1 : nodes_per_rack) {}

  std::string_view name() const override { return "domain-spread"; }
  bool Constrains() const override { return true; }
  bool Allows(uint32_t candidate_node,
              const std::vector<uint32_t>& used_nodes) const override {
    const uint32_t rack = candidate_node / nodes_per_rack_;
    for (const uint32_t used : used_nodes) {
      if (used / nodes_per_rack_ == rack) {
        return false;
      }
    }
    return true;
  }

  uint32_t nodes_per_rack() const { return nodes_per_rack_; }

 private:
  uint32_t nodes_per_rack_;
};

std::shared_ptr<PlacementPolicy> MakeUniformPlacement();
std::shared_ptr<PlacementPolicy> MakeDomainSpreadPlacement(
    uint32_t nodes_per_rack);

}  // namespace salamander

#endif  // SALAMANDER_DIFS_PLACEMENT_H_
