// Erasure-coded distributed storage on Salamander devices.
//
// The paper argues a diFS absorbs minidisk failures through its "existing,
// end-to-end redundancy mechanisms"; in production that is increasingly
// erasure coding (RS(k+m)) rather than 3-way replication. This cluster
// stores *stripes*: k data cells + m parity cells, each cell one mDisk slot
// on a distinct node. Any m cell losses are tolerated; rebuilding one lost
// cell reads k surviving cells (k x reconstruction traffic — the classic EC
// trade against replication's 1 x), and every foreground write updates its
// data cell plus all m parity cells.
//
// Minidisk-granular failures interact with EC in Salamander's favour: a lost
// 1 MiB cell costs k MiB of rebuild reads, so shedding capacity in mDisk
// units instead of whole devices divides each rebuild burst by the number of
// mDisks per device, exactly as with replication.
#ifndef SALAMANDER_DIFS_EC_CLUSTER_H_
#define SALAMANDER_DIFS_EC_CLUSTER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/minidisk.h"
#include "difs/placement.h"
#include "faults/fault_injector.h"
#include "integrity/checksum.h"
#include "sched/queueing.h"
#include "ssd/ssd_device.h"
#include "telemetry/metrics.h"

namespace salamander {

using StripeId = uint64_t;

struct EcConfig {
  uint32_t nodes = 9;
  uint32_t devices_per_node = 1;
  // RS(k + m): tolerate any m cell losses per stripe.
  uint32_t data_cells = 4;    // k
  uint32_t parity_cells = 2;  // m
  // Cell size in oPages; Salamander devices set mSize equal to this.
  uint64_t cell_opages = 64;
  // Fraction of initial cluster slots to fill with stripe cells.
  double fill_fraction = 0.6;
  uint64_t seed = 1;

  // Cluster-level chaos injector (node outages, lost AckDrains) — distinct
  // from the per-device injectors; nullptr disables. Same contract as
  // DifsConfig::faults.
  std::shared_ptr<FaultInjector> faults;
  // Every this many foreground ops: outage lottery/rejoin + lost-ack resend.
  // 0 = automatic (256 when any injector is attached, dormant otherwise, so
  // the fault-free RNG schedule is untouched).
  uint64_t maintenance_interval_ops = 0;
  // Grace window for transiently dark devices (power loss), in maintenance
  // ticks. While a device is suspect the cluster neither declares its cells
  // lost nor queues rebuilds; if it restarts within the window its cells are
  // reconciled (fresh ones revived, stale ones rebuilt), otherwise the
  // window expires into the ordinary loss path. 0 — the default — disables
  // the window entirely: a dark device is treated like a brick immediately,
  // which preserves the legacy behavior bit for bit. Same contract as
  // DifsConfig::suspect_grace_ticks.
  uint32_t suspect_grace_ticks = 0;

  // Per-device service queues, admission control, hedged reads, and the
  // brownout SLO guard (ISSUE 9). sched.queue_depth == 0 (default) disables
  // the whole layer: no queues, no extra RNG streams, byte-identical
  // outputs. Same contract as DifsConfig::sched.
  SchedConfig sched;

  // ---- Failure domains, placement & proactive drain (ISSUE 10; same
  // contracts as the DifsConfig fields of the same names) -------------------
  // Nodes per rack / power domain (rack = node / nodes_per_rack); 0 or 1
  // keeps every node its own rack.
  uint32_t nodes_per_rack = 0;
  // Pluggable placement policy; nullptr (default) and UniformPlacement both
  // replay the legacy draw sequence bit-for-bit.
  std::shared_ptr<PlacementPolicy> placement;
  // Drain the budgeted rebuild batch in criticality order (fewest live
  // cells first, ties by stripe id) instead of FIFO.
  bool criticality_ordered_recovery = false;
  // Proactive health-driven drain threshold; 0 disables the scan.
  double drain_health_threshold = 0.0;
  double drain_pec_horizon = 0.25;
};

struct EcStats {
  uint64_t foreground_logical_writes = 0;  // logical oPage updates
  uint64_t foreground_device_writes = 0;   // data + parity device writes
  uint64_t rebuild_opage_reads = 0;        // k-way reconstruction reads
  uint64_t rebuild_opage_writes = 0;       // rebuilt cell writes
  uint64_t cells_lost = 0;
  uint64_t cells_rebuilt = 0;
  uint64_t degraded_reads = 0;             // reads served via reconstruction
  uint64_t stripes_lost = 0;               // > m concurrent cell losses
  uint64_t rebuild_deferred = 0;

  // ---- Chaos parity with DifsStats ----------------------------------------
  uint64_t drains_started = 0;   // kDraining events observed
  uint64_t drains_acked = 0;     // drains answered with AckDrain
  uint64_t acks_lost = 0;        // AckDrains that never reached a device
  uint64_t node_outages = 0;     // injected outages started
  uint64_t outage_write_skips = 0;  // cell writes skipped, node out
  uint64_t maintenance_ticks = 0;

  // ---- End-to-end integrity (same contract as DifsStats) ------------------
  uint64_t integrity_detected = 0;     // corrupt fpage reads observed
  uint64_t integrity_marked_bad = 0;   // cells retired for corruption
  uint64_t integrity_retained_cells = 0;  // corrupt cell kept: stripe at k

  // ---- Suspect windows (transient power loss; same contract as DifsStats) -
  uint64_t suspect_windows_started = 0;
  uint64_t suspect_windows_expired = 0;   // grace ran out: treated as brick
  uint64_t suspect_devices_returned = 0;  // restarted within the window
  uint64_t suspect_cells_revived = 0;     // survived the power loss intact
  uint64_t suspect_cells_stale = 0;       // missed/lost writes: rebuilt

  // ---- Queueing & graceful degradation (ISSUE 9; same contract as
  // DifsStats' sched block — all identically zero while disabled) ----------
  uint64_t sched_read_sheds = 0;       // foreground reads refused admission
  uint64_t sched_write_sheds = 0;      // logical writes shed whole
  uint64_t sched_rebuild_sheds = 0;    // rebuild attempts refused admission
  uint64_t sched_wait_ns = 0;          // queue wait folded into op costs
  uint64_t sched_hedged_reads = 0;     // modeled reconstruction hedges fired
  uint64_t sched_hedge_wins = 0;       // hedge completed before the primary
  uint64_t brownout_rebuild_deferrals = 0;  // rebuild waves parked under SLO

  // ---- Failure domains, placement & proactive drain (ISSUE 10; same
  // contract as the DifsStats block of the same names) ----------------------
  uint64_t placement_domain_rejections = 0;
  uint64_t placement_domain_fallbacks = 0;
  uint64_t drain_devices_flagged = 0;
  uint64_t drain_devices_completed = 0;
  uint64_t drain_cells_migrated = 0;   // cells moved off ahead of failure
  uint64_t drain_opage_reads = 0;
  uint64_t drain_opage_writes = 0;
  uint64_t drain_migrations_parked = 0;
  uint64_t drain_brownout_deferrals = 0;
  // Sub-count of sched_rebuild_sheds (drain I/O rides OpClass::kRecovery).
  uint64_t drain_sched_sheds = 0;

  uint64_t rebuild_read_bytes() const { return rebuild_opage_reads * 4096; }
  uint64_t rebuild_write_bytes() const { return rebuild_opage_writes * 4096; }
};

// One cell's placement. `cell` is the stable index within the stripe
// (0..k-1 data, k..k+m-1 parity).
struct CellLocation {
  uint32_t cell = 0;
  uint32_t device = 0;
  MinidiskId mdisk = 0;
  uint32_t slot = 0;
  bool live = false;
  // Stripe generation of the last write that durably landed on this cell
  // (the PR-4 stamp). Cells the update stream never targeted keep an older
  // generation and are still fresh — see EcCluster suspect reconciliation.
  uint64_t generation = 0;
  // True when the most recent write targeting this cell did not land (node
  // outage skip, dark device): the on-flash bytes lag the stripe's
  // checksum generation.
  bool stale = false;
};

struct Stripe {
  StripeId id = 0;
  std::vector<CellLocation> cells;  // indexed by cell number, stable
  bool lost = false;
  // End-to-end integrity metadata (see Chunk::checksum).
  uint64_t checksum = 0;
  uint64_t generation = 0;

  uint32_t live_cells() const {
    uint32_t n = 0;
    for (const CellLocation& cell : cells) {
      n += cell.live ? 1 : 0;
    }
    return n;
  }
};

class EcCluster {
 public:
  EcCluster(const EcConfig& config,
            const std::function<std::unique_ptr<SsdDevice>(uint32_t)>&
                device_factory);

  // Places stripes (k+m node-disjoint cells each) and writes every LBA.
  Status Bootstrap();

  // Issues `logical_writes` random logical oPage updates; each writes its
  // data cell and all m parity cells (the EC read-modify-write).
  Status StepWrites(uint64_t logical_writes);

  // Issues `reads` random logical oPage reads. A read whose data cell is
  // missing is served degraded: k surviving cells are read to reconstruct.
  Status StepReads(uint64_t reads);

  // ---- Targeted foreground ops (the traffic engine's entry points) --------
  // Same semantics as one StepWrites/StepReads iteration with the caller
  // choosing the logical location. A TrafficEngine address maps as
  //   stripe    = addr / (data_cells * cell_opages)
  //   data_cell = (addr / cell_opages) % data_cells
  //   offset    = addr % cell_opages
  // When `cost_ns` is non-null it receives the op's simulated service time:
  // the data and parity cells are written in parallel (slowest wins); a
  // degraded read waits for its slowest reconstruction source.

  // kDataLoss when the stripe is lost; kInvalidArgument out of range.
  Status WriteLogicalAt(StripeId stripe_id, uint32_t data_cell,
                        uint64_t offset, SimDuration* cost_ns = nullptr);
  Status ReadLogicalAt(StripeId stripe_id, uint32_t data_cell,
                       uint64_t offset, SimDuration* cost_ns = nullptr);

  uint32_t data_cells() const { return config_.data_cells; }
  uint64_t cell_opages() const { return config_.cell_opages; }
  // Logical oPage address space a traffic engine should target.
  uint64_t logical_opages() const {
    return stripes_.size() * config_.data_cells * config_.cell_opages;
  }

  void ProcessEvents();

  // Lost-ack resend + outage expiry + rebuild retry, driven to quiescence.
  // Chaos tests call this after a fault burst to assert convergence.
  void ForceReconcile();

  const EcStats& stats() const { return stats_; }
  // Node currently unreachable due to an injected outage, or -1.
  int32_t outage_node() const { return outage_node_; }

  // ---- Tick scheduling (discrete-event drivers) ---------------------------
  // Same contract as DifsCluster: when the next maintenance tick is due, so
  // an event-driven harness can jump instead of polling per op.

  // True when maintenance can never fire (auto interval, no injector).
  bool MaintenanceDormant() const;
  // Foreground ops until the next tick fires (>= 1); UINT64_MAX when dormant.
  uint64_t OpsUntilMaintenanceTick() const;
  uint64_t total_stripes() const { return stripes_.size(); }
  uint64_t stripes_fully_redundant() const;
  uint64_t stripes_degraded() const;
  uint32_t alive_devices() const;
  const Stripe& stripe(StripeId id) const { return stripes_[id]; }
  uint32_t node_of_device(uint32_t device) const {
    return device / config_.devices_per_node;
  }
  // Failure-domain topology: consecutive nodes share a rack.
  uint32_t rack_of_node(uint32_t node) const {
    return node / (config_.nodes_per_rack == 0 ? 1 : config_.nodes_per_rack);
  }
  uint32_t rack_of_device(uint32_t device) const {
    return rack_of_node(node_of_device(device));
  }
  uint64_t free_slots() const;
  SsdDevice& device(uint32_t index) { return *devices_[index].device; }
  uint32_t device_count() const {
    return static_cast<uint32_t>(devices_.size());
  }

  // ---- Queueing introspection (ISSUE 9) -----------------------------------
  // Simulated arrival clock; 0 while the layer is disabled.
  uint64_t sched_clock_ns() const { return sched_clock_ns_; }
  // The device's service queue, or nullptr while the layer is disabled.
  const DeviceQueue* device_queue(uint32_t index) const {
    return devices_[index].device->queue();
  }
  // The SLO guard, or nullptr unless sched.slo_p99_ns > 0.
  const BrownoutController* brownout() const { return brownout_.get(); }

  // Scrapes EcStats with difs.*-parity names ("<prefix>ec.*"), replication-
  // health gauges, and every device's "<prefix>ssd.*" subtree. Cluster-level
  // injected faults land under "<prefix>cluster_faults.". Additive — collect
  // once per cluster (see telemetry/collect.h).
  void CollectMetrics(MetricRegistry& registry,
                      const std::string& prefix = "") const;

 private:
  static constexpr int64_t kFreeSlot = -1;

  struct DeviceState {
    std::unique_ptr<SsdDevice> device;
    uint32_t slots_per_mdisk = 0;
    // slot -> packed (stripe, cell) or kFreeSlot.
    std::unordered_map<MinidiskId, std::vector<int64_t>> slots;
    uint64_t free_slot_count = 0;
    // Last FTL silent-corruption count reconciled into integrity_detected.
    uint64_t observed_silent_corrupt = 0;
    // Last SsdDevice::dropped_events() value reconciled; a delta means the
    // event queue overflowed (e.g. a brick under a full queue) and the slot
    // map must resync against ground truth (see ApplyDeviceEvents).
    uint64_t observed_dropped_events = 0;
    // ---- Suspect window (transient power loss) ----------------------------
    bool suspect = false;            // inside a grace window right now
    uint32_t suspect_ticks_left = 0;
    bool down_handled = false;       // window expired: losses declared
    // ---- Proactive health-driven drain (same contract as DifsCluster) -----
    bool health_draining = false;    // flagged: evacuating, no new placements
    bool health_drain_done = false;  // evacuation completed (counted once)
  };

  static int64_t PackRef(StripeId stripe, uint32_t cell) {
    return static_cast<int64_t>((stripe << 8) | cell);
  }
  static StripeId RefStripe(int64_t ref) {
    return static_cast<StripeId>(ref) >> 8;
  }
  static uint32_t RefCell(int64_t ref) {
    return static_cast<uint32_t>(ref & 0xff);
  }

  size_t ApplyDeviceEvents(uint32_t device_index);
  void HandleMdiskLoss(uint32_t device_index, MinidiskId mdisk);
  void HandleMdiskCreated(uint32_t device_index, MinidiskId mdisk);
  void HandleMdiskDraining(uint32_t device_index, MinidiskId mdisk);
  uint64_t DrainPendingRebuilds();
  bool RebuildOneCell(StripeId stripe_id);
  bool PickTarget(const std::vector<uint32_t>& exclude_nodes,
                  uint32_t* device_out, MinidiskId* mdisk_out,
                  uint32_t* slot_out);
  // ---- Proactive health-driven drain (ISSUE 10; same contract as
  // DifsCluster::ProactiveDrainTick / MigrateReplicaOff) --------------------
  void ProactiveDrainTick();
  bool MigrateCellOff(Stripe& stripe, CellLocation& cell);
  // Writes one cell oPage; on success returns the device write latency.
  StatusOr<SimDuration> WriteCell(CellLocation& cell, uint64_t offset);
  // Shared body of StepWrites and WriteLogicalAt: stamps the new stripe
  // generation and writes the data cell plus all parity cells. kDataLoss
  // (doing nothing further) when the stripe is lost; kUnavailable when the
  // op is shed whole at queue admission. Draws no RNG.
  Status WriteLogicalBody(Stripe& stripe, uint32_t data_cell, uint64_t offset,
                          SimDuration* cost_ns);
  // Shared body of StepReads and ReadLogicalAt. Draws no RNG.
  Status ReadLogicalBody(Stripe& stripe, uint32_t data_cell, uint64_t offset,
                         SimDuration* cost_ns);

  // ---- Chaos & integrity machinery ----------------------------------------

  bool NodeOut(uint32_t device_index) const {
    return outage_node_ >= 0 &&
           node_of_device(device_index) == static_cast<uint32_t>(outage_node_);
  }
  // Delivers AckDrain, subject to injected ack loss and node outage; a lost
  // ack leaves the mDisk in kDraining limbo until maintenance re-sends it.
  bool SendAckDrain(uint32_t device_index, MinidiskId mdisk);
  void MaybeRunMaintenance();
  void MaintenanceTick();
  // Effective tick interval: maintenance_interval_ops, or the auto default
  // (256) when 0. Dormancy is decided separately by MaintenanceDormant().
  uint64_t MaintenanceIntervalOps() const;
  // Resyncs cluster slot maps against device ground truth: missed drains and
  // decommissions, missed kCreated capacity, and kDraining mDisks whose ack
  // was lost (re-sent here). Skips out-node devices.
  void ReconcileAll();
  // Per-device body of ReconcileAll; also the suspect-window interception
  // point — a transiently dark device with a grace window configured opens
  // (or keeps) its window here instead of being treated as failed.
  void ResyncDevice(uint32_t device_index);
  // Ticks suspect windows: devices that restarted are reconciled via
  // ResolveSuspect, expired windows fall back to the ordinary loss path.
  void UpdateSuspectWindows();
  // A suspect device returned within its window: drain its re-announcements,
  // revive cells that survived the power loss intact (no missed writes, no
  // rolled-back LBAs) and retire-and-rebuild the stale ones.
  void ResolveSuspect(uint32_t device_index);
  // Folds the device FTL's silent-corruption counter into integrity_detected;
  // returns the last operation's corrupt fpage reads (see DifsCluster).
  uint64_t ObserveCorruption(uint32_t device_index);
  // Retires a corrupt cell and (unless `enqueue` is false — the rebuild loop
  // already owns the stripe) queues the stripe for rebuild. Refuses when the
  // stripe is already at its reconstruction floor (k live cells) — dropping
  // the cell would lose the stripe; counts integrity_retained_cells.
  bool MarkCellBad(Stripe& stripe, CellLocation& cell, bool enqueue = true);

  // ---- Queueing & graceful degradation machinery (ISSUE 9) ----------------
  bool QueueingEnabled() const { return config_.sched.enabled(); }
  DeviceQueue* Queue(uint32_t device_index) {
    return devices_[device_index].device->queue();
  }
  // Admits the write fan-out (data cell + parity cells) at kForegroundWrite
  // on every target device, all-or-nothing; `extra_ns` receives the max of
  // the per-device waits (the fan-out is parallel) plus any shed backoff.
  bool AdmitForegroundWrite(const Stripe& stripe, uint32_t data_cell,
                            uint64_t* extra_ns);
  // Feeds the brownout SLO guard (no-op unless configured).
  void RecordForegroundLatency(uint64_t latency_ns);

  EcConfig config_;
  Rng rng_;
  ChecksumCodec codec_;
  std::vector<DeviceState> devices_;
  std::vector<Stripe> stripes_;
  std::deque<StripeId> pending_rebuilds_;
  std::vector<StripeId> waiting_capacity_;
  EcStats stats_;
  bool bootstrapped_ = false;
  int32_t outage_node_ = -1;
  uint32_t outage_ticks_left_ = 0;
  uint64_t ops_since_maintenance_ = 0;
  // ---- Queueing state (ISSUE 9; all dormant while sched is disabled) ------
  uint64_t sched_clock_ns_ = 0;  // advances one arrival_interval per fg op
  std::unique_ptr<BrownoutController> brownout_;
  // ForceReconcile must converge even under brownout/admission pressure:
  // while set, rebuild work bypasses both (chaos tests assert convergence).
  bool reconcile_override_ = false;
};

}  // namespace salamander

#endif  // SALAMANDER_DIFS_EC_CLUSTER_H_
