#include "difs/ec_cluster.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "telemetry/collect.h"

namespace salamander {

EcCluster::EcCluster(
    const EcConfig& config,
    const std::function<std::unique_ptr<SsdDevice>(uint32_t)>& device_factory)
    : config_(config),
      rng_(config.seed ^ 0xececececececececULL),
      codec_(config.seed ^ 0xc8ec5a17c8ec5a17ULL) {
  assert(config_.data_cells >= 1);
  assert(config_.parity_cells >= 1);
  assert(config_.data_cells + config_.parity_cells <= 0xff &&
         "cell index must fit the packed slot ref");
  assert(config_.nodes >= config_.data_cells + config_.parity_cells &&
         "need k+m nodes for node-disjoint placement");
  const uint32_t total_devices = config_.nodes * config_.devices_per_node;
  devices_.reserve(total_devices);
  for (uint32_t i = 0; i < total_devices; ++i) {
    DeviceState state;
    state.device = device_factory(i);
    state.slots_per_mdisk = static_cast<uint32_t>(
        state.device->msize_opages() / config_.cell_opages);
    assert(state.slots_per_mdisk >= 1 && "mDisk smaller than an EC cell");
    devices_.push_back(std::move(state));
    ApplyDeviceEvents(i);
  }
  if (config_.sched.enabled()) {
    assert(ValidateSchedConfig(config_.sched).ok() && "invalid sched config");
    // Per-device jitter streams fork in device-ID order from a dedicated
    // root, so enabling queueing perturbs no other stream and parallel
    // harnesses see the same forks as serial ones.
    Rng sched_root(config_.seed ^ 0x5c4ed0ee5c4ed0eeULL);
    for (DeviceState& state : devices_) {
      state.device->ConfigureQueue(config_.sched, sched_root.ForkSeed());
    }
    if (config_.sched.slo_p99_ns > 0) {
      brownout_ = std::make_unique<BrownoutController>(
          config_.sched.slo_p99_ns, config_.sched.brownout_window_ops);
    }
  }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

size_t EcCluster::ApplyDeviceEvents(uint32_t device_index) {
  if (NodeOut(device_index)) {
    return 0;  // unreachable node: its events wait until it rejoins
  }
  DeviceState& state = devices_[device_index];
  if (state.device->transiently_dark()) {
    return 0;  // powered off: unreachable, delivers nothing until restart
  }
  const std::vector<MinidiskEvent> events = state.device->TakeEvents();
  for (const MinidiskEvent& event : events) {
    switch (event.type) {
      case MinidiskEventType::kCreated:
        HandleMdiskCreated(device_index, event.mdisk);
        break;
      case MinidiskEventType::kDecommissioned:
        HandleMdiskLoss(device_index, event.mdisk);
        break;
      case MinidiskEventType::kDraining:
        // EC forgoes replication's grace window: parity can reconstruct any
        // cell, so a draining mDisk is retired immediately, its cells are
        // queued for rebuild, and the drain is acked on the spot.
        HandleMdiskDraining(device_index, event.mdisk);
        break;
    }
  }
  if (state.device->dropped_events() != state.observed_dropped_events) {
    // Queue overflow dropped lifecycle events (a brick under a full queue
    // drops kDecommissioned): resync against ground truth immediately so no
    // stripe is left pointing at capacity that no longer exists.
    state.observed_dropped_events = state.device->dropped_events();
    ResyncDevice(device_index);
  }
  return events.size();
}

void EcCluster::HandleMdiskCreated(uint32_t device_index, MinidiskId mdisk) {
  DeviceState& state = devices_[device_index];
  if (state.slots.count(mdisk) != 0) {
    return;  // duplicate delivery (injected event duplication)
  }
  // A delayed or replayed kCreated can outlive the mDisk it announces;
  // registering capacity that no longer exists would corrupt placement, so
  // verify against device ground truth (mirrors DifsCluster).
  const SsdDevice& device = *state.device;
  if (device.failed() || mdisk >= device.total_minidisks()) {
    return;
  }
  const MinidiskState mstate = device.manager().minidisk(mdisk).state;
  if (mstate != MinidiskState::kLive && mstate != MinidiskState::kDraining) {
    return;
  }
  state.slots[mdisk].assign(state.slots_per_mdisk, kFreeSlot);
  state.free_slot_count += state.slots_per_mdisk;
  if (mstate == MinidiskState::kDraining) {
    HandleMdiskDraining(device_index, mdisk);
  }
}

void EcCluster::HandleMdiskDraining(uint32_t device_index, MinidiskId mdisk) {
  DeviceState& state = devices_[device_index];
  auto it = state.slots.find(mdisk);
  if (it == state.slots.end()) {
    return;  // duplicate delivery: the drain was already processed
  }
  ++stats_.drains_started;
  // Retire every cell on the mDisk and queue its stripe for rebuild — the
  // same bookkeeping a decommission performs, just ahead of the deadline.
  for (uint32_t slot = 0; slot < it->second.size(); ++slot) {
    const int64_t ref = it->second[slot];
    if (ref == kFreeSlot) {
      --state.free_slot_count;
      continue;
    }
    Stripe& stripe = stripes_[RefStripe(ref)];
    CellLocation& cell = stripe.cells[RefCell(ref)];
    if (cell.live && cell.device == device_index && cell.mdisk == mdisk &&
        cell.slot == slot) {
      cell.live = false;
      ++stats_.cells_lost;
    }
    if (!stripe.lost) {
      if (stripe.live_cells() < config_.data_cells) {
        stripe.lost = true;
        ++stats_.stripes_lost;
        SALA_LOG(kWarning) << "stripe " << stripe.id
                           << " lost more than m cells";
      } else if (stripe.live_cells() <
                 config_.data_cells + config_.parity_cells) {
        pending_rebuilds_.push_back(stripe.id);
      }
    }
  }
  state.slots.erase(it);
  if (SendAckDrain(device_index, mdisk)) {
    ++stats_.drains_acked;
  }
}

void EcCluster::HandleMdiskLoss(uint32_t device_index, MinidiskId mdisk) {
  DeviceState& state = devices_[device_index];
  auto it = state.slots.find(mdisk);
  if (it == state.slots.end()) {
    return;
  }
  for (uint32_t slot = 0; slot < it->second.size(); ++slot) {
    const int64_t ref = it->second[slot];
    if (ref == kFreeSlot) {
      --state.free_slot_count;
      continue;
    }
    Stripe& stripe = stripes_[RefStripe(ref)];
    CellLocation& cell = stripe.cells[RefCell(ref)];
    if (cell.live && cell.device == device_index && cell.mdisk == mdisk &&
        cell.slot == slot) {
      cell.live = false;
      ++stats_.cells_lost;
    }
    if (!stripe.lost) {
      if (stripe.live_cells() < config_.data_cells) {
        stripe.lost = true;
        ++stats_.stripes_lost;
        SALA_LOG(kWarning) << "stripe " << stripe.id
                           << " lost more than m cells";
      } else if (stripe.live_cells() <
                 config_.data_cells + config_.parity_cells) {
        pending_rebuilds_.push_back(stripe.id);
      }
    }
  }
  state.slots.erase(it);
}

void EcCluster::ProcessEvents() {
  for (;;) {
    size_t events = 0;
    for (uint32_t i = 0; i < devices_.size(); ++i) {
      events += ApplyDeviceEvents(i);
    }
    if (events > 0 && !waiting_capacity_.empty()) {
      for (StripeId stripe_id : waiting_capacity_) {
        pending_rebuilds_.push_back(stripe_id);
      }
      waiting_capacity_.clear();
    }
    if (DrainPendingRebuilds() == 0) {
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Rebuild
// ---------------------------------------------------------------------------

uint64_t EcCluster::DrainPendingRebuilds() {
  if (brownout_ != nullptr && brownout_->active() && !reconcile_override_ &&
      !pending_rebuilds_.empty()) {
    // Graceful degradation: rebuild traffic yields to a breached foreground
    // SLO. The queue keeps its entries — the wave just runs later (or under
    // ForceReconcile, which overrides the deferral to guarantee convergence).
    ++stats_.brownout_rebuild_deferrals;
    return 0;
  }
  uint64_t rebuilt = 0;
  // Process only the entries present at pass start; rebuilds can enqueue
  // more (by wearing the target), which the caller's loop handles next pass.
  std::vector<StripeId> batch(pending_rebuilds_.begin(),
                              pending_rebuilds_.end());
  pending_rebuilds_.clear();
  if (config_.criticality_ordered_recovery) {
    // Repair-storm triage: stripes closest to the reconstruction floor
    // (fewest live cells, ties by id) get the pass's placement slots and
    // queue room first. Snapshot order at batch start; only the order within
    // this pass changes, so quiescent outcomes match FIFO exactly.
    std::stable_sort(batch.begin(), batch.end(), [&](StripeId a, StripeId b) {
      const uint32_t la = stripes_[a].live_cells();
      const uint32_t lb = stripes_[b].live_cells();
      if (la != lb) {
        return la < lb;
      }
      return a < b;
    });
  }
  for (const StripeId stripe_id : batch) {
    Stripe& stripe = stripes_[stripe_id];
    if (stripe.lost) {
      continue;
    }
    bool stuck = false;
    while (!stripe.lost &&
           stripe.live_cells() <
               config_.data_cells + config_.parity_cells) {
      const uint32_t live_before = stripe.live_cells();
      if (RebuildOneCell(stripe_id)) {
        ++rebuilt;
        if (stripe.live_cells() <= live_before) {
          // Rebuild succeeded but retired a corrupt source on the way: net-
          // zero progress (blanket corruption would loop forever). Park and
          // retry on the next event wave.
          stuck = true;
          break;
        }
      } else {
        stuck = true;
        break;
      }
    }
    if (stuck && !stripe.lost &&
        stripe.live_cells() < config_.data_cells + config_.parity_cells) {
      ++stats_.rebuild_deferred;
      waiting_capacity_.push_back(stripe_id);
    }
  }
  return rebuilt;
}

bool EcCluster::RebuildOneCell(StripeId stripe_id) {
  Stripe& stripe = stripes_[stripe_id];
  // Outer retry: a source whose read comes back corrupt is retired (it is
  // itself reconstructable from parity) and reconstruction restarts with a
  // fresh source set. Bounded — each retry permanently removes a live cell.
  for (;;) {
    // Reconstruction needs any k live cells; the rebuilt cell must land on a
    // node hosting none of the stripe's live cells.
    std::vector<CellLocation*> sources;
    std::vector<uint32_t> exclude_nodes;
    uint32_t missing_cell = UINT32_MAX;
    for (CellLocation& cell : stripe.cells) {
      if (cell.live) {
        exclude_nodes.push_back(node_of_device(cell.device));
        if (sources.size() < config_.data_cells && !NodeOut(cell.device)) {
          sources.push_back(&cell);
        }
      } else if (missing_cell == UINT32_MAX) {
        missing_cell = cell.cell;
      }
    }
    if (missing_cell == UINT32_MAX ||
        sources.size() < config_.data_cells) {
      return false;
    }
    uint32_t target_device = 0;
    MinidiskId target_mdisk = 0;
    uint32_t target_slot = 0;
    if (!PickTarget(exclude_nodes, &target_device, &target_mdisk,
                    &target_slot)) {
      return false;
    }
    if (QueueingEnabled() && !reconcile_override_) {
      // Rebuild traffic rides the kRecovery class on every source and the
      // target; any refusal sheds the whole attempt and the stripe parks in
      // waiting_capacity_ for a later wave (deferral machinery, not loss).
      bool admitted = true;
      for (CellLocation* source : sources) {
        if (!Queue(source->device)
                 ->Admit(OpClass::kRecovery, sched_clock_ns_)
                 .admitted) {
          admitted = false;
          break;
        }
      }
      if (admitted &&
          !Queue(target_device)
               ->Admit(OpClass::kRecovery, sched_clock_ns_)
               .admitted) {
        admitted = false;
      }
      if (!admitted) {
        ++stats_.sched_rebuild_sheds;
        return false;
      }
    }
    DeviceState& target_state = devices_[target_device];
    target_state.slots[target_mdisk][target_slot] =
        PackRef(stripe_id, missing_cell);
    --target_state.free_slot_count;
    const auto release_target = [&] {
      auto it = target_state.slots.find(target_mdisk);
      if (it != target_state.slots.end() &&
          it->second[target_slot] == PackRef(stripe_id, missing_cell)) {
        it->second[target_slot] = kFreeSlot;
        ++target_state.free_slot_count;
      }
    };

    // Read k surviving cells in full: the k-fold reconstruction traffic.
    bool retry = false;
    for (CellLocation* source : sources) {
      auto read = devices_[source->device].device->ReadRange(
          source->mdisk,
          static_cast<uint64_t>(source->slot) * config_.cell_opages,
          config_.cell_opages);
      if (read.ok()) {
        stats_.rebuild_opage_reads += config_.cell_opages;
        if (QueueingEnabled() && !reconcile_override_) {
          Queue(source->device)
              ->Complete(OpClass::kRecovery, read.value().latency);
        }
      }
      if (ObserveCorruption(source->device) > 0) {
        const uint64_t observed = codec_.CorruptObservation(stripe.checksum);
        if (!ChecksumCodec::Verify(stripe.checksum, observed) &&
            MarkCellBad(stripe, *source, /*enqueue=*/false)) {
          // Feeding a silently-corrupt cell into reconstruction would bake
          // the corruption into the rebuilt cell: drop the source and start
          // over (the rebuild loop already owns this stripe — no re-enqueue,
          // or blanket corruption would keep the queue alive forever). If
          // MarkCellBad refused (stripe at the reconstruction floor),
          // proceed — corrupt bytes beat no bytes.
          release_target();
          retry = true;
          break;
        }
      }
    }
    if (retry) {
      continue;
    }

    // Write the reconstructed cell.
    CellLocation rebuilt{.cell = missing_cell,
                         .device = target_device,
                         .mdisk = target_mdisk,
                         .slot = target_slot,
                         .live = true,
                         .generation = stripe.generation};
    const uint64_t base =
        static_cast<uint64_t>(target_slot) * config_.cell_opages;
    SimDuration rebuild_write_ns = 0;
    for (uint64_t offset = 0; offset < config_.cell_opages; ++offset) {
      auto write =
          target_state.device->Write(target_mdisk, base + offset);
      if (!write.ok()) {
        ApplyDeviceEvents(target_device);
        release_target();
        return false;
      }
      rebuild_write_ns += write.value();
      ++stats_.rebuild_opage_writes;
    }
    if (QueueingEnabled() && !reconcile_override_) {
      Queue(target_device)->Complete(OpClass::kRecovery, rebuild_write_ns);
    }
    stripe.cells[missing_cell] = rebuilt;
    ++stats_.cells_rebuilt;
    ApplyDeviceEvents(target_device);
    return true;
  }
}

bool EcCluster::PickTarget(const std::vector<uint32_t>& exclude_nodes,
                           uint32_t* device_out, MinidiskId* mdisk_out,
                           uint32_t* slot_out) {
  // Random start, linear probe. The outer domain pass runs only for a
  // constraining placement policy: pass 0 additionally requires the policy
  // to accept the candidate node, pass 1 is the counted fallback to plain
  // node-disjointness. Non-constraining policies (uniform, or none) skip
  // straight to pass 1 and share the single start draw, replaying the legacy
  // draw sequence bit-for-bit (see DifsCluster::PickTarget).
  const uint32_t n = static_cast<uint32_t>(devices_.size());
  const uint32_t start = static_cast<uint32_t>(rng_.UniformU64(n));
  const PlacementPolicy* policy = config_.placement.get();
  const bool constrained = policy != nullptr && policy->Constrains();
  for (int domain_pass = constrained ? 0 : 1; domain_pass < 2; ++domain_pass) {
    for (uint32_t probe = 0; probe < n; ++probe) {
      const uint32_t device_index = (start + probe) % n;
      DeviceState& state = devices_[device_index];
      if (state.free_slot_count == 0 || state.device->failed() ||
          NodeOut(device_index)) {
        continue;
      }
      if (state.health_draining) {
        continue;  // being evacuated proactively; placing here would churn
      }
      const uint32_t node = node_of_device(device_index);
      if (std::find(exclude_nodes.begin(), exclude_nodes.end(), node) !=
          exclude_nodes.end()) {
        continue;
      }
      if (domain_pass == 0 && !policy->Allows(node, exclude_nodes)) {
        ++stats_.placement_domain_rejections;
        continue;
      }
      for (auto& [mdisk, slots] : state.slots) {
        for (uint32_t slot = 0; slot < slots.size(); ++slot) {
          if (slots[slot] == kFreeSlot) {
            *device_out = device_index;
            *mdisk_out = mdisk;
            *slot_out = slot;
            return true;
          }
        }
      }
      assert(false && "free_slot_count out of sync");
    }
    if (domain_pass == 0) {
      // Domain-eligible candidates exhausted; the fallback pass may now
      // co-locate within a rack rather than fail the placement.
      ++stats_.placement_domain_fallbacks;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Proactive health-driven drain (ISSUE 10)
// ---------------------------------------------------------------------------

void EcCluster::ProactiveDrainTick() {
  if (config_.drain_health_threshold <= 0.0) {
    return;
  }
  if (brownout_ != nullptr && brownout_->active() && !reconcile_override_) {
    ++stats_.drain_brownout_deferrals;
    return;
  }
  // Flag newly unhealthy devices, in id order (deterministic; HealthScore is
  // a pure read, so the scan draws no RNG).
  bool any_flagged = false;
  for (uint32_t i = 0; i < devices_.size(); ++i) {
    DeviceState& state = devices_[i];
    if (!state.health_draining && !state.device->failed() &&
        state.device->HealthScore(config_.drain_pec_horizon) <=
            config_.drain_health_threshold) {
      state.health_draining = true;
      ++stats_.drain_devices_flagged;
    }
    any_flagged |= state.health_draining && !state.device->failed();
  }
  if (!any_flagged) {
    return;
  }
  // One migration pass per tick: move live cells off flagged devices.
  // MigrateCellOff repoints the record in place; a parked move retries next
  // tick. Indices are re-checked every iteration because a migration's own
  // wear events can reshape cell state under us.
  for (Stripe& stripe : stripes_) {
    if (stripe.lost) {
      continue;
    }
    for (size_t c = 0; c < stripe.cells.size(); ++c) {
      const CellLocation& cell = stripe.cells[c];
      if (!cell.live) {
        continue;
      }
      const DeviceState& state = devices_[cell.device];
      if (!state.health_draining || state.device->failed() ||
          NodeOut(cell.device)) {
        continue;
      }
      if (!MigrateCellOff(stripe, stripe.cells[c])) {
        ++stats_.drain_migrations_parked;
      }
    }
  }
  // A flagged device with no occupied slots left has been fully evacuated.
  for (DeviceState& state : devices_) {
    if (!state.health_draining || state.health_drain_done ||
        state.device->failed()) {
      continue;
    }
    bool occupied = false;
    for (const auto& [mdisk, slots] : state.slots) {
      for (const int64_t slot : slots) {
        if (slot >= 0) {
          occupied = true;
          break;
        }
      }
      if (occupied) {
        break;
      }
    }
    if (!occupied) {
      state.health_drain_done = true;
      ++stats_.drain_devices_completed;
    }
  }
}

bool EcCluster::MigrateCellOff(Stripe& stripe, CellLocation& cell) {
  // Every node holding a live cell — including the source's — is excluded,
  // so the move keeps the stripe node-disjoint and the placement policy sees
  // the same used-node set a rebuild would.
  std::vector<uint32_t> exclude_nodes;
  for (const CellLocation& c : stripe.cells) {
    if (c.live) {
      exclude_nodes.push_back(node_of_device(c.device));
    }
  }
  uint32_t target_device = 0;
  MinidiskId target_mdisk = 0;
  uint32_t target_slot = 0;
  if (!PickTarget(exclude_nodes, &target_device, &target_mdisk,
                  &target_slot)) {
    return false;
  }
  if (QueueingEnabled() && !reconcile_override_) {
    // Drain I/O rides the recovery class (PR 9 priority order and the shed
    // ledger stay intact); the drain sub-counter reports it separately.
    const QueueAdmission src =
        Queue(cell.device)->Admit(OpClass::kRecovery, sched_clock_ns_);
    const QueueAdmission dst =
        src.admitted
            ? Queue(target_device)->Admit(OpClass::kRecovery, sched_clock_ns_)
            : QueueAdmission{};
    if (!src.admitted || !dst.admitted) {
      ++stats_.sched_rebuild_sheds;
      ++stats_.drain_sched_sheds;
      return false;
    }
  }
  DeviceState& target_state = devices_[target_device];
  target_state.slots[target_mdisk][target_slot] =
      PackRef(stripe.id, cell.cell);
  --target_state.free_slot_count;
  const auto release_target = [&] {
    auto it = target_state.slots.find(target_mdisk);
    if (it != target_state.slots.end() &&
        it->second[target_slot] == PackRef(stripe.id, cell.cell)) {
      it->second[target_slot] = kFreeSlot;
      ++target_state.free_slot_count;
    }
  };

  DeviceState& source_state = devices_[cell.device];
  auto read = source_state.device->ReadRange(
      cell.mdisk, static_cast<uint64_t>(cell.slot) * config_.cell_opages,
      config_.cell_opages);
  if (!read.ok()) {
    release_target();
    return false;
  }
  stats_.drain_opage_reads += config_.cell_opages;
  if (QueueingEnabled() && !reconcile_override_) {
    Queue(cell.device)->Complete(OpClass::kRecovery, read.value().latency);
  }
  if (ObserveCorruption(cell.device) > 0) {
    const uint64_t observed = codec_.CorruptObservation(stripe.checksum);
    if (!ChecksumCodec::Verify(stripe.checksum, observed)) {
      // Copying would propagate corruption: retire the cell to the reactive
      // rebuild path instead of migrating it.
      release_target();
      MarkCellBad(stripe, cell, /*enqueue=*/true);
      return false;
    }
  }

  const uint64_t base =
      static_cast<uint64_t>(target_slot) * config_.cell_opages;
  SimDuration copy_write_ns = 0;
  for (uint64_t offset = 0; offset < config_.cell_opages; ++offset) {
    auto write = target_state.device->Write(target_mdisk, base + offset);
    if (!write.ok()) {
      // Target died mid-copy: surface its events, release the claim if the
      // mDisk survived, and park the migration for the next tick.
      ApplyDeviceEvents(target_device);
      release_target();
      return false;
    }
    copy_write_ns += write.value();
    ++stats_.drain_opage_writes;
  }
  if (QueueingEnabled() && !reconcile_override_) {
    Queue(target_device)->Complete(OpClass::kRecovery, copy_write_ns);
  }

  // Release the source slot and repoint the record in place. The migrated
  // copy keeps its generation and staleness — resync still owns freshness.
  auto source_it = source_state.slots.find(cell.mdisk);
  if (source_it != source_state.slots.end() &&
      cell.slot < source_it->second.size() &&
      source_it->second[cell.slot] == PackRef(stripe.id, cell.cell)) {
    source_it->second[cell.slot] = kFreeSlot;
    ++source_state.free_slot_count;
  }
  cell.device = target_device;
  cell.mdisk = target_mdisk;
  cell.slot = target_slot;
  ++stats_.drain_cells_migrated;
  // The copy wears the target; surface any resulting events (`cell` must not
  // be touched past this point — event handling can reshape cell state).
  ApplyDeviceEvents(target_device);
  return true;
}

// ---------------------------------------------------------------------------
// Bootstrap and foreground I/O
// ---------------------------------------------------------------------------

Status EcCluster::Bootstrap() {
  if (bootstrapped_) {
    return FailedPreconditionError("Bootstrap: already bootstrapped");
  }
  bootstrapped_ = true;
  uint64_t total_slots = 0;
  for (const DeviceState& state : devices_) {
    total_slots += state.free_slot_count;
  }
  const uint32_t width = config_.data_cells + config_.parity_cells;
  const uint64_t target_stripes = static_cast<uint64_t>(
      static_cast<double>(total_slots) * config_.fill_fraction / width);
  stripes_.reserve(target_stripes);
  for (uint64_t s = 0; s < target_stripes; ++s) {
    Stripe stripe;
    stripe.id = s;
    stripe.checksum = codec_.Stamp(s, stripe.generation);
    std::vector<uint32_t> used_nodes;
    bool placed_all = true;
    for (uint32_t c = 0; c < width; ++c) {
      uint32_t device_index = 0;
      MinidiskId mdisk = 0;
      uint32_t slot = 0;
      if (!PickTarget(used_nodes, &device_index, &mdisk, &slot)) {
        placed_all = false;
        break;
      }
      DeviceState& state = devices_[device_index];
      state.slots[mdisk][slot] = PackRef(s, c);
      --state.free_slot_count;
      used_nodes.push_back(node_of_device(device_index));
      stripe.cells.push_back(CellLocation{.cell = c,
                                          .device = device_index,
                                          .mdisk = mdisk,
                                          .slot = slot,
                                          .live = true});
    }
    if (!placed_all) {
      // Roll back partial placement and stop.
      for (const CellLocation& cell : stripe.cells) {
        DeviceState& state = devices_[cell.device];
        state.slots[cell.mdisk][cell.slot] = kFreeSlot;
        ++state.free_slot_count;
      }
      return OkStatus();
    }
    stripes_.push_back(std::move(stripe));
    Stripe& placed = stripes_.back();
    for (CellLocation& cell : placed.cells) {
      for (uint64_t offset = 0; offset < config_.cell_opages; ++offset) {
        (void)WriteCell(cell, offset);
      }
    }
    ProcessEvents();
  }
  return OkStatus();
}

StatusOr<SimDuration> EcCluster::WriteCell(CellLocation& cell,
                                           uint64_t offset) {
  if (!cell.live) {
    return FailedPreconditionError("cell not live");
  }
  if (NodeOut(cell.device)) {
    // Unreachable node: the write is skipped, not queued; the cell goes
    // stale and maintenance-driven rebuild handles it if the mDisk dies out.
    ++stats_.outage_write_skips;
    return UnavailableError("WriteCell: node under outage");
  }
  DeviceState& state = devices_[cell.device];
  auto write = state.device->Write(
      cell.mdisk,
      static_cast<uint64_t>(cell.slot) * config_.cell_opages + offset);
  if (!write.ok()) {
    return write.status();
  }
  ++stats_.foreground_device_writes;
  return write;
}

bool EcCluster::AdmitForegroundWrite(const Stripe& stripe, uint32_t data_cell,
                                     uint64_t* extra_ns) {
  // The data-cell and parity updates fan out in parallel, so the op's queue
  // delay is the max across its target devices. Admission is all-or-nothing:
  // the first refusal sheds the whole op before any cell is touched — a
  // partial fan-out would desynchronize parity from data.
  uint64_t extra = 0;
  auto admit_cell = [&](const CellLocation& cell) {
    if (!cell.live || NodeOut(cell.device)) {
      return true;  // WriteCell skips these targets anyway
    }
    const QueueAdmission admission =
        Queue(cell.device)->Admit(OpClass::kForegroundWrite, sched_clock_ns_);
    extra = std::max(extra, admission.wait_ns + admission.backoff_ns);
    return admission.admitted;
  };
  bool admitted = admit_cell(stripe.cells[data_cell]);
  for (uint32_t p = config_.data_cells;
       admitted && p < config_.data_cells + config_.parity_cells; ++p) {
    admitted = admit_cell(stripe.cells[p]);
  }
  *extra_ns = extra;
  return admitted;
}

void EcCluster::RecordForegroundLatency(uint64_t latency_ns) {
  if (brownout_ != nullptr) {
    brownout_->RecordForeground(latency_ns);
  }
}

Status EcCluster::WriteLogicalBody(Stripe& stripe, uint32_t data_cell,
                                   uint64_t offset, SimDuration* cost_ns) {
  if (stripe.lost) {
    return DataLossError("WriteLogicalBody: stripe lost");
  }
  uint64_t sched_extra_ns = 0;  // parallel admission wait + shed backoff
  if (QueueingEnabled()) {
    sched_clock_ns_ += config_.sched.arrival_interval_ns;  // one arrival
    if (!AdmitForegroundWrite(stripe, data_cell, &sched_extra_ns)) {
      // Shed whole: no cell took the write, so data and parity stay in sync
      // at the old generation.
      ++stats_.sched_write_sheds;
      stats_.sched_wait_ns += sched_extra_ns;
      if (cost_ns != nullptr) {
        *cost_ns = sched_extra_ns;
      }
      RecordForegroundLatency(sched_extra_ns);
      MaybeRunMaintenance();
      return UnavailableError("WriteLogicalBody: shed at admission");
    }
  }
  SimDuration slowest = 0;
  // Re-stamp the stripe's end-to-end checksum over the new contents. Each
  // targeted cell that takes the write records the new generation; one
  // that misses it (node outage, dark device) is marked stale so a later
  // suspect-window reconciliation knows its bytes lag the stripe.
  ++stripe.generation;
  stripe.checksum = codec_.Stamp(stripe.id, stripe.generation);
  if (stripe.cells[data_cell].live) {
    CellLocation& cell = stripe.cells[data_cell];
    auto write = WriteCell(cell, offset);
    if (write.ok()) {
      cell.generation = stripe.generation;
      cell.stale = false;
      if (QueueingEnabled()) {
        Queue(cell.device)->Complete(OpClass::kForegroundWrite, write.value());
      }
      slowest = std::max(slowest, write.value());
    } else {
      cell.stale = true;
    }
  }
  for (uint32_t p = config_.data_cells;
       p < config_.data_cells + config_.parity_cells; ++p) {
    if (stripe.cells[p].live) {
      CellLocation& cell = stripe.cells[p];
      auto write = WriteCell(cell, offset);
      if (write.ok()) {
        cell.generation = stripe.generation;
        cell.stale = false;
        if (QueueingEnabled()) {
          Queue(cell.device)->Complete(OpClass::kForegroundWrite,
                                       write.value());
        }
        // Data and parity updates fan out in parallel; the logical write
        // completes when the slowest device does.
        slowest = std::max(slowest, write.value());
      } else {
        cell.stale = true;
      }
    }
  }
  const SimDuration total = slowest + sched_extra_ns;
  if (cost_ns != nullptr) {
    *cost_ns = total;
  }
  stats_.sched_wait_ns += sched_extra_ns;
  RecordForegroundLatency(total);
  ++stats_.foreground_logical_writes;
  ProcessEvents();
  MaybeRunMaintenance();
  return OkStatus();
}

Status EcCluster::StepWrites(uint64_t logical_writes) {
  if (stripes_.empty()) {
    return FailedPreconditionError("StepWrites: bootstrap first");
  }
  for (uint64_t i = 0; i < logical_writes; ++i) {
    Stripe& stripe = stripes_[rng_.UniformU64(stripes_.size())];
    if (stripe.lost) {
      continue;
    }
    // A logical update touches one data cell's LBA and all parity cells:
    // EC's (1 + m)-fold write amplification.
    const uint32_t data_cell =
        static_cast<uint32_t>(rng_.UniformU64(config_.data_cells));
    const uint64_t offset = rng_.UniformU64(config_.cell_opages);
    (void)WriteLogicalBody(stripe, data_cell, offset, nullptr);
  }
  return OkStatus();
}

Status EcCluster::WriteLogicalAt(StripeId stripe_id, uint32_t data_cell,
                                 uint64_t offset, SimDuration* cost_ns) {
  if (stripes_.empty()) {
    return FailedPreconditionError("WriteLogicalAt: bootstrap first");
  }
  if (stripe_id >= stripes_.size() || data_cell >= config_.data_cells ||
      offset >= config_.cell_opages) {
    return InvalidArgumentError("WriteLogicalAt: location out of range");
  }
  Status status = WriteLogicalBody(stripes_[stripe_id], data_cell, offset,
                                   cost_ns);
  if (status.code() == StatusCode::kDataLoss) {
    return DataLossError("WriteLogicalAt: stripe lost");
  }
  return status;
}

Status EcCluster::ReadLogicalBody(Stripe& stripe, uint32_t data_cell,
                                  uint64_t offset, SimDuration* cost_ns) {
  SimDuration latency = 0;
  if (QueueingEnabled()) {
    sched_clock_ns_ += config_.sched.arrival_interval_ns;  // one arrival
  }
  CellLocation& cell = stripe.cells[data_cell];
  // A transiently dark device (suspect grace window) still holds its cells
  // live, but cannot serve I/O: such reads fall through to the degraded
  // path below and reconstruct from the k healthy cells instead of failing.
  if (cell.live && !NodeOut(cell.device) &&
      !devices_[cell.device].device->failed()) {
    uint64_t sched_extra_ns = 0;  // primary-path queue wait + shed backoff
    std::vector<DeviceQueue*> hedge_queues;
    uint64_t hedge_extra_ns = 0;
    if (QueueingEnabled()) {
      const QueueAdmission admission =
          Queue(cell.device)->Admit(OpClass::kForegroundRead, sched_clock_ns_);
      if (!admission.admitted) {
        ++stats_.sched_read_sheds;
        stats_.sched_wait_ns += admission.backoff_ns;
        if (cost_ns != nullptr) {
          *cost_ns = admission.backoff_ns;
        }
        RecordForegroundLatency(admission.backoff_ns);
        MaybeRunMaintenance();
        return UnavailableError("ReadLogicalBody: shed at admission");
      }
      sched_extra_ns = admission.wait_ns + admission.backoff_ns;
      // Hedge: a *modeled* reconstruction fan-out over k alternate cells.
      // No second device read is issued (that would perturb fault-injection
      // draws and add real wear); the fan-out completes at its slowest
      // source, so it only fires when every source queue has room and the
      // slowest source wait still beats the primary's. Each source queue is
      // then charged the primary's service time as a proxy.
      if (config_.sched.hedge_threshold_ns > 0 &&
          admission.wait_ns > config_.sched.hedge_threshold_ns) {
        uint64_t slowest_wait = 0;
        bool room = true;
        for (CellLocation& source : stripe.cells) {
          if (hedge_queues.size() == config_.data_cells) {
            break;
          }
          if (!source.live || NodeOut(source.device) ||
              devices_[source.device].device->failed() ||
              source.cell == data_cell) {
            continue;
          }
          DeviceQueue* alt = Queue(source.device);
          alt->AdvanceTo(sched_clock_ns_);
          if (alt->depth() >= config_.sched.queue_depth) {
            room = false;  // a full source would shed: no hedge
            break;
          }
          slowest_wait = std::max(
              slowest_wait, alt->EstimateWaitNs(OpClass::kForegroundRead));
          hedge_queues.push_back(alt);
        }
        if (room && hedge_queues.size() == config_.data_cells &&
            slowest_wait < admission.wait_ns) {
          for (DeviceQueue* alt : hedge_queues) {
            (void)alt->Admit(OpClass::kForegroundRead, sched_clock_ns_);
          }
          hedge_extra_ns = slowest_wait;
          ++stats_.sched_hedged_reads;
        } else {
          hedge_queues.clear();
        }
      }
    }
    auto read = devices_[cell.device].device->Read(
        cell.mdisk,
        static_cast<uint64_t>(cell.slot) * config_.cell_opages + offset);
    if (read.ok()) {
      latency = read.value().latency;
    }
    const uint64_t corrupt = ObserveCorruption(cell.device);
    if (read.ok() && corrupt > 0) {
      // End-to-end verify against the stripe's checksum stamp. EC
      // read-repair: retire the corrupt data cell, re-serve the read
      // degraded from k clean cells, and let the rebuild queue restore
      // full redundancy.
      const uint64_t observed = codec_.CorruptObservation(stripe.checksum);
      if (!ChecksumCodec::Verify(stripe.checksum, observed) &&
          MarkCellBad(stripe, cell)) {
        ++stats_.degraded_reads;
        SimDuration slowest_source = 0;
        uint32_t refetched = 0;
        for (CellLocation& source : stripe.cells) {
          if (!source.live || NodeOut(source.device) ||
              refetched == config_.data_cells) {
            continue;
          }
          auto refetch = devices_[source.device].device->Read(
              source.mdisk,
              static_cast<uint64_t>(source.slot) * config_.cell_opages +
                  offset);
          if (refetch.ok()) {
            slowest_source = std::max(slowest_source, refetch.value().latency);
          }
          (void)ObserveCorruption(source.device);
          ++refetched;
        }
        // The degraded re-serve fans its k source reads out in parallel,
        // after the corrupt read already returned: sequential with it.
        latency += slowest_source;
        ProcessEvents();
      }
    }
    if (QueueingEnabled()) {
      if (read.ok()) {
        Queue(cell.device)->Complete(OpClass::kForegroundRead, latency);
        for (DeviceQueue* alt : hedge_queues) {
          alt->Complete(OpClass::kForegroundRead, latency);
        }
      }
      if (!hedge_queues.empty() && hedge_extra_ns < sched_extra_ns) {
        ++stats_.sched_hedge_wins;
        sched_extra_ns = hedge_extra_ns;  // op completes on the faster path
      }
      stats_.sched_wait_ns += sched_extra_ns;
    }
    const SimDuration total = latency + sched_extra_ns;
    if (cost_ns != nullptr) {
      *cost_ns = total;
    }
    RecordForegroundLatency(total);
    MaybeRunMaintenance();
    return read.ok() ? OkStatus() : read.status();
  }
  // Degraded read: reconstruct from k live cells (same offset in each).
  ++stats_.degraded_reads;
  uint64_t degraded_extra_ns = 0;  // slowest source's queue wait
  bool marked_bad = false;
  uint32_t fetched = 0;
  for (CellLocation& source : stripe.cells) {
    if (!source.live || NodeOut(source.device) ||
        devices_[source.device].device->failed() ||
        fetched == config_.data_cells) {
      continue;
    }
    if (QueueingEnabled()) {
      const QueueAdmission admission = Queue(source.device)
          ->Admit(OpClass::kForegroundRead, sched_clock_ns_);
      degraded_extra_ns = std::max(
          degraded_extra_ns, admission.wait_ns + admission.backoff_ns);
      if (!admission.admitted) {
        // Reconstruction needs every source: one refusal sheds the op.
        ++stats_.sched_read_sheds;
        stats_.sched_wait_ns += degraded_extra_ns;
        if (cost_ns != nullptr) {
          *cost_ns = latency + degraded_extra_ns;
        }
        RecordForegroundLatency(latency + degraded_extra_ns);
        MaybeRunMaintenance();
        return UnavailableError("ReadLogicalBody: degraded shed");
      }
    }
    auto read = devices_[source.device].device->Read(
        source.mdisk,
        static_cast<uint64_t>(source.slot) * config_.cell_opages + offset);
    ++fetched;
    if (read.ok()) {
      // Reconstruction reads fan out in parallel: slowest source wins.
      latency = std::max(latency, read.value().latency);
      if (QueueingEnabled()) {
        Queue(source.device)
            ->Complete(OpClass::kForegroundRead, read.value().latency);
      }
    }
    if (ObserveCorruption(source.device) > 0 && read.ok()) {
      const uint64_t observed = codec_.CorruptObservation(stripe.checksum);
      if (!ChecksumCodec::Verify(stripe.checksum, observed)) {
        // A corrupt reconstruction input: retire it (rebuild will replace
        // it from parity) — a real system retries with another of the m
        // spare combinations.
        marked_bad = MarkCellBad(stripe, source) || marked_bad;
      }
    }
  }
  if (marked_bad) {
    ProcessEvents();
  }
  stats_.sched_wait_ns += degraded_extra_ns;
  const SimDuration total = latency + degraded_extra_ns;
  if (cost_ns != nullptr) {
    *cost_ns = total;
  }
  RecordForegroundLatency(total);
  MaybeRunMaintenance();
  return fetched >= config_.data_cells
             ? OkStatus()
             : DataLossError("degraded read below k sources");
}

Status EcCluster::StepReads(uint64_t reads) {
  if (stripes_.empty()) {
    return FailedPreconditionError("StepReads: bootstrap first");
  }
  for (uint64_t i = 0; i < reads; ++i) {
    Stripe& stripe = stripes_[rng_.UniformU64(stripes_.size())];
    if (stripe.lost) {
      continue;
    }
    const uint32_t data_cell =
        static_cast<uint32_t>(rng_.UniformU64(config_.data_cells));
    const uint64_t offset = rng_.UniformU64(config_.cell_opages);
    (void)ReadLogicalBody(stripe, data_cell, offset, nullptr);
  }
  return OkStatus();
}

Status EcCluster::ReadLogicalAt(StripeId stripe_id, uint32_t data_cell,
                                uint64_t offset, SimDuration* cost_ns) {
  if (stripes_.empty()) {
    return FailedPreconditionError("ReadLogicalAt: bootstrap first");
  }
  if (stripe_id >= stripes_.size() || data_cell >= config_.data_cells ||
      offset >= config_.cell_opages) {
    return InvalidArgumentError("ReadLogicalAt: location out of range");
  }
  Stripe& stripe = stripes_[stripe_id];
  if (stripe.lost) {
    return DataLossError("ReadLogicalAt: stripe lost");
  }
  return ReadLogicalBody(stripe, data_cell, offset, cost_ns);
}

// ---------------------------------------------------------------------------
// Chaos machinery, integrity, maintenance
// ---------------------------------------------------------------------------

bool EcCluster::SendAckDrain(uint32_t device_index, MinidiskId mdisk) {
  FaultInjector* faults = config_.faults.get();
  if (NodeOut(device_index) ||
      (faults != nullptr && faults->LosesAckDrain())) {
    // The ack never reaches the device: its mDisk stays in kDraining limbo
    // until a later MaintenanceTick notices and re-sends.
    ++stats_.acks_lost;
    return false;
  }
  DeviceState& state = devices_[device_index];
  return state.device->AckDrain(mdisk).ok();
}

bool EcCluster::MaintenanceDormant() const {
  // Auto mode: periodic reconciliation only pays for itself when faults can
  // desynchronize cluster and device state. Without any injector the
  // maintenance path stays completely dormant, so the fault-free RNG
  // schedule (and every bench output) is untouched.
  if (config_.maintenance_interval_ops != 0 || config_.faults != nullptr) {
    return false;
  }
  for (const DeviceState& state : devices_) {
    if (state.device->faults() != nullptr) {
      return false;
    }
  }
  return true;
}

uint64_t EcCluster::MaintenanceIntervalOps() const {
  return config_.maintenance_interval_ops == 0
             ? 256
             : config_.maintenance_interval_ops;
}

uint64_t EcCluster::OpsUntilMaintenanceTick() const {
  if (MaintenanceDormant()) {
    return UINT64_MAX;
  }
  const uint64_t interval = MaintenanceIntervalOps();
  // The tick fires on the op that brings the counter up to `interval`.
  return interval > ops_since_maintenance_
             ? interval - ops_since_maintenance_
             : 1;
}

void EcCluster::MaybeRunMaintenance() {
  if (MaintenanceDormant()) {
    return;
  }
  if (++ops_since_maintenance_ >= MaintenanceIntervalOps()) {
    ops_since_maintenance_ = 0;
    MaintenanceTick();
  }
}

void EcCluster::MaintenanceTick() {
  ++stats_.maintenance_ticks;
  FaultInjector* faults = config_.faults.get();
  if (outage_node_ >= 0) {
    if (--outage_ticks_left_ == 0) {
      // Rejoin: the node's devices are reachable again; ReconcileAll below
      // replays whatever state changed while it was dark.
      outage_node_ = -1;
    }
  } else if (faults != nullptr && faults->StartsNodeOutage()) {
    outage_node_ = static_cast<int32_t>(faults->OutageNode(config_.nodes));
    outage_ticks_left_ = faults->OutageTicks();
    ++stats_.node_outages;
  }
  UpdateSuspectWindows();
  ReconcileAll();
  // Reconciliation may have changed the placement landscape (new mDisks
  // registered, drains acked): parked rebuilds get another shot.
  if (!waiting_capacity_.empty()) {
    for (StripeId stripe_id : waiting_capacity_) {
      pending_rebuilds_.push_back(stripe_id);
    }
    waiting_capacity_.clear();
  }
  // Proactive health-driven drain (no-op at threshold 0) before the final
  // event pass, so migration wear surfaces in the same tick.
  ProactiveDrainTick();
  ProcessEvents();
}

void EcCluster::ReconcileAll() {
  for (uint32_t d = 0; d < devices_.size(); ++d) {
    ResyncDevice(d);
  }
}

void EcCluster::ResyncDevice(uint32_t device_index) {
  if (NodeOut(device_index)) {
    return;
  }
  DeviceState& state = devices_[device_index];
  // A transiently dark device with a grace window configured is suspect, not
  // dead: hold all bookkeeping (no loss declarations, no rebuilds) until the
  // window resolves — UpdateSuspectWindows() owns both outcomes. Once the
  // window has expired (down_handled) the normal flow below applies, which
  // is the legacy treat-as-brick path.
  if (config_.suspect_grace_ticks > 0 && state.device->transiently_dark() &&
      !state.down_handled) {
    if (!state.suspect) {
      state.suspect = true;
      state.suspect_ticks_left = config_.suspect_grace_ticks;
      ++stats_.suspect_windows_started;
    }
    return;
  }
  const SsdDevice& device = *state.device;
  // Pass 1: mDisks the cluster believes in whose device-side state moved
  // on without us hearing (dropped/delayed kDecommissioned or kDraining).
  // Sorted snapshot: handlers mutate state.slots, and unordered_map
  // iteration order must never influence simulation behavior.
  std::vector<MinidiskId> known;
  known.reserve(state.slots.size());
  for (const auto& [mdisk, slots] : state.slots) {
    known.push_back(mdisk);
  }
  std::sort(known.begin(), known.end());
  for (MinidiskId mdisk : known) {
    if (device.failed() || mdisk >= device.total_minidisks() ||
        device.manager().minidisk(mdisk).state ==
            MinidiskState::kDecommissioned) {
      HandleMdiskLoss(device_index, mdisk);
    } else if (device.manager().minidisk(mdisk).state ==
               MinidiskState::kDraining) {
      // The kDraining event was dropped: retire and ack it now.
      HandleMdiskDraining(device_index, mdisk);
    }
  }
  // Pass 2: device-side mDisks the cluster has no record of — a missed
  // kCreated (new capacity), or a drain the cluster already retired whose
  // AckDrain was lost in flight.
  if (!device.failed()) {
    for (MinidiskId mdisk = 0; mdisk < device.total_minidisks(); ++mdisk) {
      if (state.slots.count(mdisk) != 0) {
        continue;
      }
      const MinidiskState mstate = device.manager().minidisk(mdisk).state;
      if (mstate == MinidiskState::kLive) {
        HandleMdiskCreated(device_index, mdisk);
      } else if (mstate == MinidiskState::kDraining) {
        if (SendAckDrain(device_index, mdisk)) {
          ++stats_.drains_acked;
        }
      }
    }
  }
}

void EcCluster::UpdateSuspectWindows() {
  for (uint32_t d = 0; d < devices_.size(); ++d) {
    DeviceState& state = devices_[d];
    if (!state.device->failed()) {
      // Serving again: a post-expiry return goes through the normal resync
      // path (its mDisks re-register as fresh capacity), so the outage is
      // no longer "handled" state worth remembering.
      state.down_handled = false;
    }
    if (!state.suspect) {
      continue;
    }
    if (!state.device->transiently_dark()) {
      // Restarted within the window (or upgraded to a brick, in which case
      // the emitted brick events / resync declare the losses right after).
      state.suspect = false;
      state.suspect_ticks_left = 0;
      if (!state.device->failed()) {
        ++stats_.suspect_devices_returned;
        ResolveSuspect(d);
      }
      continue;
    }
    if (--state.suspect_ticks_left == 0) {
      // Grace expired: from here the device is treated exactly like a brick.
      state.suspect = false;
      state.down_handled = true;
      ++stats_.suspect_windows_expired;
      std::vector<MinidiskId> known;
      known.reserve(state.slots.size());
      for (const auto& [mdisk, slots] : state.slots) {
        known.push_back(mdisk);
      }
      std::sort(known.begin(), known.end());
      for (MinidiskId mdisk : known) {
        HandleMdiskLoss(d, mdisk);
      }
    }
  }
}

void EcCluster::ResolveSuspect(uint32_t device_index) {
  DeviceState& state = devices_[device_index];
  // The restart queued re-announcements (kCreated per survivor); drain them
  // first. HandleMdiskCreated dedupes against mDisks the cluster still
  // tracks, so this only registers capacity the cluster had forgotten.
  ApplyDeviceEvents(device_index);
  // Reconcile every cell the cluster still records on this device against
  // the replayed device state. A cell is fresh iff its mDisk survived, it
  // missed no foreground write while dark (not `stale`), and the device
  // reports no rolled-back page in its LBA range (its last pre-crash writes
  // were made durable). Stale cells are retired and rebuilt from parity —
  // unless the stripe sits at its reconstruction floor, where stale bytes
  // beat losing the stripe.
  const SsdDevice& device = *state.device;
  std::vector<MinidiskId> known;
  known.reserve(state.slots.size());
  for (const auto& [mdisk, slots] : state.slots) {
    known.push_back(mdisk);
  }
  std::sort(known.begin(), known.end());
  for (MinidiskId mdisk : known) {
    if (mdisk >= device.total_minidisks() ||
        device.manager().minidisk(mdisk).state ==
            MinidiskState::kDecommissioned) {
      HandleMdiskLoss(device_index, mdisk);
      continue;
    }
    auto it = state.slots.find(mdisk);
    if (it == state.slots.end()) {
      continue;
    }
    for (uint32_t slot = 0; slot < it->second.size(); ++slot) {
      const int64_t ref = it->second[slot];
      if (ref == kFreeSlot) {
        continue;
      }
      Stripe& stripe = stripes_[RefStripe(ref)];
      CellLocation& cell = stripe.cells[RefCell(ref)];
      if (!cell.live || cell.device != device_index || cell.mdisk != mdisk ||
          cell.slot != slot) {
        continue;
      }
      const bool fresh =
          !cell.stale &&
          !device.AnyRolledBackInRange(
              mdisk, static_cast<uint64_t>(slot) * config_.cell_opages,
              config_.cell_opages);
      if (fresh) {
        ++stats_.suspect_cells_revived;
        continue;
      }
      ++stats_.suspect_cells_stale;
      if (!stripe.lost && stripe.live_cells() <= config_.data_cells) {
        // Reconstruction floor: dropping this cell would lose the stripe.
        // Keep the stale bytes live; a later foreground write (or the
        // stripe's rebuild once capacity appears) freshens it in place.
        continue;
      }
      // Prune: release the slot and rebuild the cell from parity.
      it->second[slot] = kFreeSlot;
      ++state.free_slot_count;
      cell.live = false;
      ++stats_.cells_lost;
      if (!stripe.lost &&
          stripe.live_cells() < config_.data_cells + config_.parity_cells) {
        pending_rebuilds_.push_back(stripe.id);
      }
    }
  }
  // The device's remaining resync discrepancies (e.g. a drain it finished
  // while dark) go through the normal path now that it serves again.
  ResyncDevice(device_index);
}

void EcCluster::ForceReconcile() {
  // Convergence beats degradation here: rebuild waves run even under an
  // active brownout and bypass queue admission (chaos tests assert a zero
  // backlog after this call).
  reconcile_override_ = true;
  // A few rounds of reconcile + rebuild: a rebuild can itself change the
  // landscape (wear out a target, finish a drain), so iterate until a round
  // makes no progress. Bounded — stripes with genuinely no capacity (or
  // capacity behind an outage) stay parked.
  for (int round = 0; round < 8; ++round) {
    ReconcileAll();
    if (!waiting_capacity_.empty()) {
      for (StripeId stripe_id : waiting_capacity_) {
        pending_rebuilds_.push_back(stripe_id);
      }
      waiting_capacity_.clear();
    }
    const uint64_t rebuilt_before = stats_.cells_rebuilt;
    ProcessEvents();
    if (stats_.cells_rebuilt == rebuilt_before && pending_rebuilds_.empty()) {
      break;
    }
  }
  reconcile_override_ = false;
}

uint64_t EcCluster::ObserveCorruption(uint32_t device_index) {
  DeviceState& state = devices_[device_index];
  const uint64_t now = state.device->ftl().stats().silent_corrupt_fpage_reads;
  const uint64_t delta = now - state.observed_silent_corrupt;
  state.observed_silent_corrupt = now;
  stats_.integrity_detected += delta;
  return delta;
}

bool EcCluster::MarkCellBad(Stripe& stripe, CellLocation& cell,
                            bool enqueue) {
  if (!cell.live) {
    return false;
  }
  if (!stripe.lost && stripe.live_cells() <= config_.data_cells) {
    // Reconstruction floor: dropping this cell leaves fewer than k live
    // cells and loses the whole stripe. Keep the corrupt bytes — partial
    // data beats total loss (the same retention rule DifsCluster applies to
    // a chunk's last readable copy).
    ++stats_.integrity_retained_cells;
    return false;
  }
  DeviceState& state = devices_[cell.device];
  auto it = state.slots.find(cell.mdisk);
  if (it != state.slots.end() &&
      it->second[cell.slot] == PackRef(stripe.id, cell.cell)) {
    it->second[cell.slot] = kFreeSlot;
    ++state.free_slot_count;
  }
  cell.live = false;
  ++stats_.cells_lost;
  ++stats_.integrity_marked_bad;
  if (enqueue && !stripe.lost &&
      stripe.live_cells() < config_.data_cells + config_.parity_cells) {
    pending_rebuilds_.push_back(stripe.id);
  }
  return true;
}

void EcCluster::CollectMetrics(MetricRegistry& registry,
                               const std::string& prefix) const {
  registry.GetCounter(prefix + "ec.foreground_logical_writes")
      .Add(stats_.foreground_logical_writes);
  registry.GetCounter(prefix + "ec.foreground_device_writes")
      .Add(stats_.foreground_device_writes);
  registry.GetCounter(prefix + "ec.rebuild_opage_reads")
      .Add(stats_.rebuild_opage_reads);
  registry.GetCounter(prefix + "ec.rebuild_opage_writes")
      .Add(stats_.rebuild_opage_writes);
  registry.GetCounter(prefix + "ec.rebuild_read_bytes")
      .Add(stats_.rebuild_read_bytes());
  registry.GetCounter(prefix + "ec.cells_lost").Add(stats_.cells_lost);
  registry.GetCounter(prefix + "ec.cells_rebuilt").Add(stats_.cells_rebuilt);
  registry.GetCounter(prefix + "ec.degraded_reads")
      .Add(stats_.degraded_reads);
  registry.GetCounter(prefix + "ec.stripes_lost").Add(stats_.stripes_lost);
  registry.GetCounter(prefix + "ec.rebuild_deferred")
      .Add(stats_.rebuild_deferred);
  registry.GetCounter(prefix + "ec.drains_started")
      .Add(stats_.drains_started);
  registry.GetCounter(prefix + "ec.drains_acked").Add(stats_.drains_acked);
  registry.GetCounter(prefix + "ec.acks_lost").Add(stats_.acks_lost);
  registry.GetCounter(prefix + "ec.node_outages").Add(stats_.node_outages);
  registry.GetCounter(prefix + "ec.outage_write_skips")
      .Add(stats_.outage_write_skips);
  registry.GetCounter(prefix + "ec.maintenance_ticks")
      .Add(stats_.maintenance_ticks);
  registry.GetCounter(prefix + "ec.integrity.detected")
      .Add(stats_.integrity_detected);
  registry.GetCounter(prefix + "ec.integrity.marked_bad")
      .Add(stats_.integrity_marked_bad);
  registry.GetCounter(prefix + "ec.integrity.retained_cells")
      .Add(stats_.integrity_retained_cells);
  // Queueing instruments only exist when the layer is on, keeping legacy
  // metric exports byte-identical (per-device queue internals land under
  // "<prefix>ssd.sched.*" via SsdDevice::CollectMetrics below).
  if (config_.sched.enabled()) {
    registry.GetCounter(prefix + "ec.sched.read_sheds")
        .Add(stats_.sched_read_sheds);
    registry.GetCounter(prefix + "ec.sched.write_sheds")
        .Add(stats_.sched_write_sheds);
    registry.GetCounter(prefix + "ec.sched.rebuild_sheds")
        .Add(stats_.sched_rebuild_sheds);
    registry.GetCounter(prefix + "ec.sched.wait_ns").Add(stats_.sched_wait_ns);
    registry.GetCounter(prefix + "ec.sched.hedged_reads")
        .Add(stats_.sched_hedged_reads);
    registry.GetCounter(prefix + "ec.sched.hedge_wins")
        .Add(stats_.sched_hedge_wins);
    registry.GetCounter(prefix + "ec.sched.brownout_rebuild_deferrals")
        .Add(stats_.brownout_rebuild_deferrals);
    if (brownout_ != nullptr) {
      registry.GetCounter(prefix + "ec.sched.brownout_windows")
          .Add(brownout_->stats().windows);
      registry.GetCounter(prefix + "ec.sched.brownout_entered")
          .Add(brownout_->stats().entered);
      registry.GetCounter(prefix + "ec.sched.brownout_exited")
          .Add(brownout_->stats().exited);
      registry.GetGauge(prefix + "ec.sched.brownout_active")
          .Add(brownout_->active() ? 1.0 : 0.0);
    }
  }
  if (config_.suspect_grace_ticks > 0) {
    registry.GetCounter(prefix + "ec.suspect.windows_started")
        .Add(stats_.suspect_windows_started);
    registry.GetCounter(prefix + "ec.suspect.windows_expired")
        .Add(stats_.suspect_windows_expired);
    registry.GetCounter(prefix + "ec.suspect.devices_returned")
        .Add(stats_.suspect_devices_returned);
    registry.GetCounter(prefix + "ec.suspect.cells_revived")
        .Add(stats_.suspect_cells_revived);
    registry.GetCounter(prefix + "ec.suspect.cells_stale")
        .Add(stats_.suspect_cells_stale);
  }
  // Placement and proactive-drain instruments only exist when the feature is
  // on (same byte-identity discipline as the blocks above).
  if (config_.placement != nullptr && config_.placement->Constrains()) {
    registry.GetCounter(prefix + "ec.placement.domain_rejections")
        .Add(stats_.placement_domain_rejections);
    registry.GetCounter(prefix + "ec.placement.domain_fallbacks")
        .Add(stats_.placement_domain_fallbacks);
  }
  if (config_.drain_health_threshold > 0.0) {
    registry.GetCounter(prefix + "ec.drain.devices_flagged")
        .Add(stats_.drain_devices_flagged);
    registry.GetCounter(prefix + "ec.drain.devices_completed")
        .Add(stats_.drain_devices_completed);
    registry.GetCounter(prefix + "ec.drain.cells_migrated")
        .Add(stats_.drain_cells_migrated);
    registry.GetCounter(prefix + "ec.drain.opage_reads")
        .Add(stats_.drain_opage_reads);
    registry.GetCounter(prefix + "ec.drain.opage_writes")
        .Add(stats_.drain_opage_writes);
    registry.GetCounter(prefix + "ec.drain.migrations_parked")
        .Add(stats_.drain_migrations_parked);
    registry.GetCounter(prefix + "ec.drain.brownout_deferrals")
        .Add(stats_.drain_brownout_deferrals);
    registry.GetCounter(prefix + "ec.drain.sched_sheds")
        .Add(stats_.drain_sched_sheds);
  }
  registry.GetGauge(prefix + "ec.alive_devices")
      .Add(static_cast<double>(alive_devices()));
  registry.GetGauge(prefix + "ec.total_stripes")
      .Add(static_cast<double>(total_stripes()));
  registry.GetGauge(prefix + "ec.stripes_fully_redundant")
      .Add(static_cast<double>(stripes_fully_redundant()));
  registry.GetGauge(prefix + "ec.stripes_degraded")
      .Add(static_cast<double>(stripes_degraded()));
  registry.GetGauge(prefix + "ec.pending_rebuild_backlog")
      .Add(static_cast<double>(pending_rebuilds_.size() +
                               waiting_capacity_.size()));
  registry.GetGauge(prefix + "ec.free_slots")
      .Add(static_cast<double>(free_slots()));
  for (const DeviceState& state : devices_) {
    state.device->CollectMetrics(registry, prefix);
  }
  if (config_.faults != nullptr) {
    // Distinct prefix: the per-device injector counters collected by
    // SsdDevice::CollectMetrics live under "<prefix>faults.".
    CollectFaultMetrics(registry, config_.faults->stats(),
                        prefix + "cluster_");
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

uint64_t EcCluster::stripes_fully_redundant() const {
  const uint32_t width = config_.data_cells + config_.parity_cells;
  uint64_t n = 0;
  for (const Stripe& stripe : stripes_) {
    n += (!stripe.lost && stripe.live_cells() == width) ? 1 : 0;
  }
  return n;
}

uint64_t EcCluster::stripes_degraded() const {
  const uint32_t width = config_.data_cells + config_.parity_cells;
  uint64_t n = 0;
  for (const Stripe& stripe : stripes_) {
    n += (!stripe.lost && stripe.live_cells() < width) ? 1 : 0;
  }
  return n;
}

uint32_t EcCluster::alive_devices() const {
  uint32_t alive = 0;
  for (const DeviceState& state : devices_) {
    alive += state.device->failed() ? 0 : 1;
  }
  return alive;
}

uint64_t EcCluster::free_slots() const {
  uint64_t total = 0;
  for (const DeviceState& state : devices_) {
    total += state.free_slot_count;
  }
  return total;
}

}  // namespace salamander
