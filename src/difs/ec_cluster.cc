#include "difs/ec_cluster.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace salamander {

EcCluster::EcCluster(
    const EcConfig& config,
    const std::function<std::unique_ptr<SsdDevice>(uint32_t)>& device_factory)
    : config_(config), rng_(config.seed ^ 0xececececececececULL) {
  assert(config_.data_cells >= 1);
  assert(config_.parity_cells >= 1);
  assert(config_.data_cells + config_.parity_cells <= 0xff &&
         "cell index must fit the packed slot ref");
  assert(config_.nodes >= config_.data_cells + config_.parity_cells &&
         "need k+m nodes for node-disjoint placement");
  const uint32_t total_devices = config_.nodes * config_.devices_per_node;
  devices_.reserve(total_devices);
  for (uint32_t i = 0; i < total_devices; ++i) {
    DeviceState state;
    state.device = device_factory(i);
    state.slots_per_mdisk = static_cast<uint32_t>(
        state.device->msize_opages() / config_.cell_opages);
    assert(state.slots_per_mdisk >= 1 && "mDisk smaller than an EC cell");
    devices_.push_back(std::move(state));
    ApplyDeviceEvents(i);
  }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

size_t EcCluster::ApplyDeviceEvents(uint32_t device_index) {
  DeviceState& state = devices_[device_index];
  const std::vector<MinidiskEvent> events = state.device->TakeEvents();
  for (const MinidiskEvent& event : events) {
    switch (event.type) {
      case MinidiskEventType::kCreated:
        HandleMdiskCreated(device_index, event.mdisk);
        break;
      case MinidiskEventType::kDecommissioned:
        HandleMdiskLoss(device_index, event.mdisk);
        break;
      case MinidiskEventType::kDraining:
        // EC mode runs without the grace protocol (see header); a draining
        // notice is treated as an immediate retirement hint and the loss
        // arrives with the subsequent kDecommissioned event.
        break;
    }
  }
  return events.size();
}

void EcCluster::HandleMdiskCreated(uint32_t device_index, MinidiskId mdisk) {
  DeviceState& state = devices_[device_index];
  assert(state.slots.count(mdisk) == 0);
  state.slots[mdisk].assign(state.slots_per_mdisk, kFreeSlot);
  state.free_slot_count += state.slots_per_mdisk;
}

void EcCluster::HandleMdiskLoss(uint32_t device_index, MinidiskId mdisk) {
  DeviceState& state = devices_[device_index];
  auto it = state.slots.find(mdisk);
  if (it == state.slots.end()) {
    return;
  }
  for (uint32_t slot = 0; slot < it->second.size(); ++slot) {
    const int64_t ref = it->second[slot];
    if (ref == kFreeSlot) {
      --state.free_slot_count;
      continue;
    }
    Stripe& stripe = stripes_[RefStripe(ref)];
    CellLocation& cell = stripe.cells[RefCell(ref)];
    if (cell.live && cell.device == device_index && cell.mdisk == mdisk &&
        cell.slot == slot) {
      cell.live = false;
      ++stats_.cells_lost;
    }
    if (!stripe.lost) {
      if (stripe.live_cells() < config_.data_cells) {
        stripe.lost = true;
        ++stats_.stripes_lost;
        SALA_LOG(kWarning) << "stripe " << stripe.id
                           << " lost more than m cells";
      } else if (stripe.live_cells() <
                 config_.data_cells + config_.parity_cells) {
        pending_rebuilds_.push_back(stripe.id);
      }
    }
  }
  state.slots.erase(it);
}

void EcCluster::ProcessEvents() {
  for (;;) {
    size_t events = 0;
    for (uint32_t i = 0; i < devices_.size(); ++i) {
      events += ApplyDeviceEvents(i);
    }
    if (events > 0 && !waiting_capacity_.empty()) {
      for (StripeId stripe_id : waiting_capacity_) {
        pending_rebuilds_.push_back(stripe_id);
      }
      waiting_capacity_.clear();
    }
    if (DrainPendingRebuilds() == 0) {
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Rebuild
// ---------------------------------------------------------------------------

uint64_t EcCluster::DrainPendingRebuilds() {
  uint64_t rebuilt = 0;
  size_t budget = pending_rebuilds_.size();
  while (budget-- > 0 && !pending_rebuilds_.empty()) {
    const StripeId stripe_id = pending_rebuilds_.front();
    pending_rebuilds_.pop_front();
    Stripe& stripe = stripes_[stripe_id];
    if (stripe.lost) {
      continue;
    }
    bool stuck = false;
    while (!stripe.lost &&
           stripe.live_cells() <
               config_.data_cells + config_.parity_cells) {
      if (RebuildOneCell(stripe_id)) {
        ++rebuilt;
      } else {
        stuck = true;
        break;
      }
    }
    if (stuck && !stripe.lost &&
        stripe.live_cells() < config_.data_cells + config_.parity_cells) {
      ++stats_.rebuild_deferred;
      waiting_capacity_.push_back(stripe_id);
    }
  }
  return rebuilt;
}

bool EcCluster::RebuildOneCell(StripeId stripe_id) {
  Stripe& stripe = stripes_[stripe_id];
  // Reconstruction needs any k live cells; the rebuilt cell must land on a
  // node hosting none of the stripe's live cells.
  std::vector<const CellLocation*> sources;
  std::vector<uint32_t> exclude_nodes;
  uint32_t missing_cell = UINT32_MAX;
  for (const CellLocation& cell : stripe.cells) {
    if (cell.live) {
      exclude_nodes.push_back(node_of_device(cell.device));
      if (sources.size() < config_.data_cells) {
        sources.push_back(&cell);
      }
    } else if (missing_cell == UINT32_MAX) {
      missing_cell = cell.cell;
    }
  }
  if (missing_cell == UINT32_MAX ||
      sources.size() < config_.data_cells) {
    return false;
  }
  uint32_t target_device = 0;
  MinidiskId target_mdisk = 0;
  uint32_t target_slot = 0;
  if (!PickTarget(exclude_nodes, &target_device, &target_mdisk,
                  &target_slot)) {
    return false;
  }
  DeviceState& target_state = devices_[target_device];
  target_state.slots[target_mdisk][target_slot] =
      PackRef(stripe_id, missing_cell);
  --target_state.free_slot_count;

  // Read k surviving cells in full: the k-fold reconstruction traffic.
  for (const CellLocation* source : sources) {
    auto read = devices_[source->device].device->ReadRange(
        source->mdisk,
        static_cast<uint64_t>(source->slot) * config_.cell_opages,
        config_.cell_opages);
    if (read.ok()) {
      stats_.rebuild_opage_reads += config_.cell_opages;
    }
  }

  // Write the reconstructed cell.
  CellLocation rebuilt{.cell = missing_cell,
                       .device = target_device,
                       .mdisk = target_mdisk,
                       .slot = target_slot,
                       .live = true};
  const uint64_t base =
      static_cast<uint64_t>(target_slot) * config_.cell_opages;
  for (uint64_t offset = 0; offset < config_.cell_opages; ++offset) {
    auto write =
        target_state.device->Write(target_mdisk, base + offset);
    if (!write.ok()) {
      ApplyDeviceEvents(target_device);
      auto it = target_state.slots.find(target_mdisk);
      if (it != target_state.slots.end() &&
          it->second[target_slot] == PackRef(stripe_id, missing_cell)) {
        it->second[target_slot] = kFreeSlot;
        ++target_state.free_slot_count;
      }
      return false;
    }
    ++stats_.rebuild_opage_writes;
  }
  stripe.cells[missing_cell] = rebuilt;
  ++stats_.cells_rebuilt;
  ApplyDeviceEvents(target_device);
  return true;
}

bool EcCluster::PickTarget(const std::vector<uint32_t>& exclude_nodes,
                           uint32_t* device_out, MinidiskId* mdisk_out,
                           uint32_t* slot_out) {
  const uint32_t n = static_cast<uint32_t>(devices_.size());
  const uint32_t start = static_cast<uint32_t>(rng_.UniformU64(n));
  for (uint32_t probe = 0; probe < n; ++probe) {
    const uint32_t device_index = (start + probe) % n;
    DeviceState& state = devices_[device_index];
    if (state.free_slot_count == 0 || state.device->failed()) {
      continue;
    }
    const uint32_t node = node_of_device(device_index);
    if (std::find(exclude_nodes.begin(), exclude_nodes.end(), node) !=
        exclude_nodes.end()) {
      continue;
    }
    for (auto& [mdisk, slots] : state.slots) {
      for (uint32_t slot = 0; slot < slots.size(); ++slot) {
        if (slots[slot] == kFreeSlot) {
          *device_out = device_index;
          *mdisk_out = mdisk;
          *slot_out = slot;
          return true;
        }
      }
    }
    assert(false && "free_slot_count out of sync");
  }
  return false;
}

// ---------------------------------------------------------------------------
// Bootstrap and foreground I/O
// ---------------------------------------------------------------------------

Status EcCluster::Bootstrap() {
  if (bootstrapped_) {
    return FailedPreconditionError("Bootstrap: already bootstrapped");
  }
  bootstrapped_ = true;
  uint64_t total_slots = 0;
  for (const DeviceState& state : devices_) {
    total_slots += state.free_slot_count;
  }
  const uint32_t width = config_.data_cells + config_.parity_cells;
  const uint64_t target_stripes = static_cast<uint64_t>(
      static_cast<double>(total_slots) * config_.fill_fraction / width);
  stripes_.reserve(target_stripes);
  for (uint64_t s = 0; s < target_stripes; ++s) {
    Stripe stripe;
    stripe.id = s;
    std::vector<uint32_t> used_nodes;
    bool placed_all = true;
    for (uint32_t c = 0; c < width; ++c) {
      uint32_t device_index = 0;
      MinidiskId mdisk = 0;
      uint32_t slot = 0;
      if (!PickTarget(used_nodes, &device_index, &mdisk, &slot)) {
        placed_all = false;
        break;
      }
      DeviceState& state = devices_[device_index];
      state.slots[mdisk][slot] = PackRef(s, c);
      --state.free_slot_count;
      used_nodes.push_back(node_of_device(device_index));
      stripe.cells.push_back(CellLocation{.cell = c,
                                          .device = device_index,
                                          .mdisk = mdisk,
                                          .slot = slot,
                                          .live = true});
    }
    if (!placed_all) {
      // Roll back partial placement and stop.
      for (const CellLocation& cell : stripe.cells) {
        DeviceState& state = devices_[cell.device];
        state.slots[cell.mdisk][cell.slot] = kFreeSlot;
        ++state.free_slot_count;
      }
      return OkStatus();
    }
    stripes_.push_back(std::move(stripe));
    Stripe& placed = stripes_.back();
    for (CellLocation& cell : placed.cells) {
      for (uint64_t offset = 0; offset < config_.cell_opages; ++offset) {
        (void)WriteCell(cell, offset);
      }
    }
    ProcessEvents();
  }
  return OkStatus();
}

Status EcCluster::WriteCell(CellLocation& cell, uint64_t offset) {
  if (!cell.live) {
    return FailedPreconditionError("cell not live");
  }
  DeviceState& state = devices_[cell.device];
  auto write = state.device->Write(
      cell.mdisk,
      static_cast<uint64_t>(cell.slot) * config_.cell_opages + offset);
  if (!write.ok()) {
    return write.status();
  }
  ++stats_.foreground_device_writes;
  return OkStatus();
}

Status EcCluster::StepWrites(uint64_t logical_writes) {
  if (stripes_.empty()) {
    return FailedPreconditionError("StepWrites: bootstrap first");
  }
  for (uint64_t i = 0; i < logical_writes; ++i) {
    Stripe& stripe = stripes_[rng_.UniformU64(stripes_.size())];
    if (stripe.lost) {
      continue;
    }
    // A logical update touches one data cell's LBA and all parity cells:
    // EC's (1 + m)-fold write amplification.
    const uint32_t data_cell =
        static_cast<uint32_t>(rng_.UniformU64(config_.data_cells));
    const uint64_t offset = rng_.UniformU64(config_.cell_opages);
    if (stripe.cells[data_cell].live) {
      (void)WriteCell(stripe.cells[data_cell], offset);
    }
    for (uint32_t p = config_.data_cells;
         p < config_.data_cells + config_.parity_cells; ++p) {
      if (stripe.cells[p].live) {
        (void)WriteCell(stripe.cells[p], offset);
      }
    }
    ++stats_.foreground_logical_writes;
    ProcessEvents();
  }
  return OkStatus();
}

Status EcCluster::StepReads(uint64_t reads) {
  if (stripes_.empty()) {
    return FailedPreconditionError("StepReads: bootstrap first");
  }
  for (uint64_t i = 0; i < reads; ++i) {
    Stripe& stripe = stripes_[rng_.UniformU64(stripes_.size())];
    if (stripe.lost) {
      continue;
    }
    const uint32_t data_cell =
        static_cast<uint32_t>(rng_.UniformU64(config_.data_cells));
    const uint64_t offset = rng_.UniformU64(config_.cell_opages);
    CellLocation& cell = stripe.cells[data_cell];
    if (cell.live) {
      (void)devices_[cell.device].device->Read(
          cell.mdisk,
          static_cast<uint64_t>(cell.slot) * config_.cell_opages + offset);
      continue;
    }
    // Degraded read: reconstruct from k live cells (same offset in each).
    ++stats_.degraded_reads;
    uint32_t fetched = 0;
    for (CellLocation& source : stripe.cells) {
      if (!source.live || fetched == config_.data_cells) {
        continue;
      }
      (void)devices_[source.device].device->Read(
          source.mdisk,
          static_cast<uint64_t>(source.slot) * config_.cell_opages + offset);
      ++fetched;
    }
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

uint64_t EcCluster::stripes_fully_redundant() const {
  const uint32_t width = config_.data_cells + config_.parity_cells;
  uint64_t n = 0;
  for (const Stripe& stripe : stripes_) {
    n += (!stripe.lost && stripe.live_cells() == width) ? 1 : 0;
  }
  return n;
}

uint64_t EcCluster::stripes_degraded() const {
  const uint32_t width = config_.data_cells + config_.parity_cells;
  uint64_t n = 0;
  for (const Stripe& stripe : stripes_) {
    n += (!stripe.lost && stripe.live_cells() < width) ? 1 : 0;
  }
  return n;
}

uint32_t EcCluster::alive_devices() const {
  uint32_t alive = 0;
  for (const DeviceState& state : devices_) {
    alive += state.device->failed() ? 0 : 1;
  }
  return alive;
}

uint64_t EcCluster::free_slots() const {
  uint64_t total = 0;
  for (const DeviceState& state : devices_) {
    total += state.free_slot_count;
  }
  return total;
}

}  // namespace salamander
