// Distributed replicated storage simulator (the paper's diFS).
//
// The cluster stores fixed-size *chunks*, each replicated on R distinct
// nodes. A chunk replica occupies one slot of one mDisk: on Salamander
// devices mSize == chunk size so a replica maps 1:1 onto an mDisk (the
// paper's design); on a baseline device the single monolithic "mDisk" hosts
// many slots, so one brick loses them all at once — exactly the failure-
// granularity contrast of Fig. 1.
//
// The cluster consumes each device's MinidiskEvent stream:
//   kDecommissioned -> replicas on that mDisk are lost; the recovery
//                      scheduler re-replicates each affected chunk from a
//                      survivor onto a node not already hosting it.
//   kCreated        -> new placement capacity (RegenS regeneration).
//
// Recovery performs *real* device I/O: the copy reads the survivor and
// writes the target, so recovery traffic wears flash exactly as §4.3
// discusses. Simulation "time" is driven by bytes written (constant-rate
// workload assumption); the fleet layer converts to wall-clock via DWPD.
#ifndef SALAMANDER_DIFS_CLUSTER_H_
#define SALAMANDER_DIFS_CLUSTER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/minidisk.h"
#include "difs/placement.h"
#include "faults/fault_injector.h"
#include "integrity/checksum.h"
#include "integrity/scrub_cursor.h"
#include "sched/queueing.h"
#include "ssd/ssd_device.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace salamander {

using ChunkId = uint64_t;

struct DifsConfig {
  uint32_t nodes = 6;
  uint32_t devices_per_node = 1;
  uint32_t replication = 3;
  // diFS access-unit size in oPages (the paper's "equally-sized access
  // units"); Salamander devices set mSize equal to this.
  uint64_t chunk_opages = 64;
  // Fraction of initial cluster slots to fill with chunk replicas.
  double fill_fraction = 0.6;
  uint64_t seed = 1;

  // ---- Robustness knobs ----------------------------------------------------

  // Bounded retry with exponential backoff for kUnavailable device errors
  // (busy planes). Backoff is simulated time, accumulated in stats.
  uint32_t max_transient_retries = 4;
  uint64_t transient_backoff_base_ns = 10000;  // 10 us, doubled per retry
  // Cap on the exponent: retry r backs off base << min(r, max_shift),
  // saturating — a raw `base << r` wraps at high max_transient_retries.
  uint32_t transient_backoff_max_shift = 20;

  // ---- Queueing & graceful degradation (ISSUE 9) ---------------------------

  // Per-device service queues, admission control, hedged reads, and the
  // brownout SLO guard. sched.queue_depth == 0 (default) disables the whole
  // layer: no queues, no extra RNG streams, byte-identical outputs.
  SchedConfig sched;

  // ---- Failure domains, placement & proactive drain (ISSUE 10) -------------

  // Nodes per rack / power domain. Consecutive nodes share a rack
  // (rack = node / nodes_per_rack); 0 or 1 keeps every node its own rack.
  // Pure topology: consumed only by domain-aware policies and harnesses,
  // never by the baseline data path.
  uint32_t nodes_per_rack = 0;

  // Pluggable placement policy (see difs/placement.h). nullptr — the
  // default — and UniformPlacement both reproduce the legacy single-draw
  // linear probe bit-for-bit; a constraining policy (DomainSpreadPlacement)
  // adds a constrained probe pass with counted fallbacks.
  std::shared_ptr<PlacementPolicy> placement;

  // When true, each recovery pass drains its budgeted batch in criticality
  // order — chunks with fewer surviving replicas re-replicate first (ties by
  // chunk id) — instead of FIFO. Changes only the order within a pass, so
  // quiescent outcomes are identical; during a repair storm with admission
  // control the 1-survivor chunks get the queue room first.
  bool criticality_ordered_recovery = false;

  // Proactive health-driven drain: when > 0, each maintenance tick scores
  // every device (SsdDevice::HealthScore) and devices at or below the
  // threshold are flagged and their replicas migrated off ahead of failure,
  // accounted under drain_* (separate from reactive recovery traffic).
  // 0 (default) disables the scan entirely.
  double drain_health_threshold = 0.0;
  // Look-ahead horizon for the tiring-forecast half of the health score, as
  // a fraction of each page's current P/E count (see
  // Ftl::ForecastTiringOPages).
  double drain_pec_horizon = 0.25;

  // Every this many foreground ops the cluster runs a maintenance tick:
  // event-channel reconciliation (ResyncDevice for every reachable device),
  // node outage/rejoin processing, and a retry of parked recoveries.
  // 0 = automatic: 256 when a fault injector is attached, never otherwise —
  // so a fault-free cluster's behavior (and RNG schedule) is untouched.
  uint64_t resync_interval_ops = 0;

  // Cluster-level chaos injector (node outages, lost AckDrains). Distinct
  // instance from the per-device injectors; nullptr disables.
  std::shared_ptr<FaultInjector> faults;

  // ---- Suspect windows (crash-restart) -------------------------------------

  // When > 0, a device that goes dark from a transient power loss is held
  // "suspect" for this many maintenance ticks instead of having its replicas
  // declared lost immediately. If it restarts within the window, surviving
  // replicas are reconciled in place (generation stamps + the device's
  // rolled-back set decide freshness) and no recovery traffic is spent; on
  // expiry the device is treated exactly like a brick. 0 (default) keeps the
  // legacy declare-immediately behavior and touches no code path.
  uint64_t suspect_grace_ticks = 0;

  // ---- Telemetry hooks -----------------------------------------------------

  // Optional trace recorder (not owned; must outlive the cluster). The
  // cluster emits instant events — recovery waves, chunk losses, node
  // outages/rejoins — on lane `trace_tid`, timestamped with the simulated
  // time last passed to DifsCluster::set_trace_time_us() (the harness
  // advances it once per day / burst). nullptr disables recording with no
  // behavioral or RNG-stream impact.
  TraceRecorder* trace = nullptr;
  uint32_t trace_tid = 0;
};

struct DifsStats {
  uint64_t foreground_opage_writes = 0;
  uint64_t recovery_opage_writes = 0;  // §4.3 recovery traffic (writes)
  uint64_t recovery_opage_reads = 0;   // reads from survivor replicas
  uint64_t replicas_recovered = 0;     // successful re-replications
  uint64_t replicas_lost = 0;          // replica failures observed
  uint64_t drains_started = 0;         // kDraining events observed
  uint64_t drains_acked = 0;           // drains completed with AckDrain
  // Replicas that were lost while STILL draining (forced drain finish or a
  // brick during the grace window) — each is a failure the grace period was
  // supposed to prevent.
  uint64_t drain_window_losses = 0;
  uint64_t chunks_lost = 0;            // all replicas gone: data loss
  uint64_t recovery_deferred = 0;      // no eligible target at the time
  uint64_t uncorrectable_reads = 0;    // device-level kDataLoss on reads
  uint64_t scrub_repairs = 0;          // pages rewritten after kDataLoss
  // Largest amount of recovery I/O performed in one event wave (one
  // ProcessEvents call) — the burstiness contrast of Fig. 1 / §4.3: a
  // whole-device failure forces one huge wave, mDisk failures many tiny ones.
  uint64_t max_wave_recovery_opages = 0;
  uint64_t recovery_waves = 0;         // waves with any recovery I/O

  // ---- Robustness counters -------------------------------------------------
  uint64_t transient_retries = 0;      // kUnavailable ops retried
  uint64_t transient_giveups = 0;      // ops still kUnavailable after retries
  uint64_t backoff_ns = 0;             // simulated backoff time accumulated
  uint64_t resync_passes = 0;          // ResyncDevice invocations
  uint64_t resync_repairs = 0;         // discrepancies repaired by resync
  uint64_t acks_lost = 0;              // AckDrains that never reached a device
  uint64_t node_outages = 0;           // outages started
  uint64_t outage_write_skips = 0;     // replica writes skipped, node out
  uint64_t maintenance_ticks = 0;

  // ---- End-to-end integrity & scrub ---------------------------------------
  // Silently corrupt fpage reads observed (checksum mismatches). Exact:
  // equals the sum of the per-device injectors' read_corrupt site counters,
  // because every injected draw happens under a cluster-issued read and the
  // cluster snapshots each device's FTL corruption counter after every read.
  uint64_t integrity_detected = 0;
  uint64_t integrity_marked_bad = 0;   // replicas retired for corruption
  // Corrupt replica NOT retired because it was the chunk's last readable
  // copy — corrupt data beats no data (cf. Tai et al., live recovery).
  uint64_t integrity_retained_last_copies = 0;
  uint64_t integrity_survivor_reads = 0;  // foreground reads re-served
  uint64_t scrub_opage_reads = 0;      // background scrub device reads
  uint64_t scrub_detected = 0;         // corruptions first seen by scrub
  uint64_t scrub_passes = 0;           // full scrub sweeps completed

  // ---- Queueing & graceful degradation (sched) ----------------------------
  uint64_t sched_read_sheds = 0;      // foreground reads refused at admission
  uint64_t sched_write_sheds = 0;     // foreground chunk writes refused whole
  uint64_t sched_recovery_sheds = 0;  // recovery copies aborted by admission
  uint64_t sched_scrub_sheds = 0;     // scrub positions skipped by admission
  uint64_t sched_wait_ns = 0;         // foreground queue wait + shed backoff
  uint64_t sched_hedged_reads = 0;    // reads that fanned out a hedge
  uint64_t sched_hedge_wins = 0;      // hedge path completed first
  uint64_t brownout_scrub_deferrals = 0;     // ScrubStep calls deferred
  uint64_t brownout_recovery_deferrals = 0;  // recovery passes deferred

  // ---- Failure domains, placement & proactive drain (ISSUE 10) ------------
  // Candidates vetoed by the placement policy's constrained pass.
  uint64_t placement_domain_rejections = 0;
  // Placements that exhausted the constrained pass and fell back to the
  // node-disjoint baseline. 0 means every placement honored the domain
  // constraint (CheckInvariants then enforces rack-disjointness).
  uint64_t placement_domain_fallbacks = 0;
  uint64_t drain_devices_flagged = 0;    // devices whose health tripped
  uint64_t drain_devices_completed = 0;  // flagged devices fully evacuated
  uint64_t drain_replicas_migrated = 0;  // replicas moved off ahead of failure
  uint64_t drain_opage_reads = 0;        // proactive migration reads
  uint64_t drain_opage_writes = 0;       // proactive migration writes
  uint64_t drain_migrations_parked = 0;  // no target / copy aborted; retried
  uint64_t drain_brownout_deferrals = 0; // drain passes yielded to brownout
  // Drain migrations refused by queue admission. Sub-count of
  // sched_recovery_sheds (drain I/O rides OpClass::kRecovery), so the
  // device-giveup ledger stays exact.
  uint64_t drain_sched_sheds = 0;

  // ---- Suspect windows (crash-restart) ------------------------------------
  uint64_t suspect_windows_started = 0;   // devices that went dark on grace
  uint64_t suspect_windows_expired = 0;   // windows that ended in loss
  uint64_t suspect_devices_returned = 0;  // devices back within the window
  uint64_t suspect_replicas_revived = 0;  // replicas reconciled as fresh
  uint64_t suspect_replicas_stale = 0;    // replicas pruned as stale

  uint64_t recovery_bytes() const { return recovery_opage_writes * 4096; }
};

// One replica's location: a slot within an mDisk of a device.
struct ReplicaLocation {
  uint32_t device = 0;  // global device index
  MinidiskId mdisk = 0;
  uint32_t slot = 0;    // chunk slot within the mDisk
  bool live = false;
  // The mDisk is draining (grace-period decommissioning): still readable,
  // no longer counted toward the replication target.
  bool draining = false;
  // Chunk generation last successfully written to this replica. A replica on
  // a device that went dark misses foreground writes; after the device
  // returns, generation != chunk.generation marks the replica stale.
  uint64_t generation = 0;
};

struct Chunk {
  ChunkId id = 0;
  std::vector<ReplicaLocation> replicas;
  bool lost = false;
  // End-to-end integrity metadata: checksum stamped over the chunk's logical
  // contents (id + write generation) at bootstrap and restamped on every
  // foreground write; recovery copies it verbatim with the data.
  uint64_t checksum = 0;
  uint64_t generation = 0;

  // Replicas counting toward the replication factor (live, not draining).
  uint32_t live_replicas() const {
    uint32_t n = 0;
    for (const ReplicaLocation& r : replicas) {
      n += (r.live && !r.draining) ? 1 : 0;
    }
    return n;
  }
  // Replicas the data can still be read from (includes draining ones).
  uint32_t readable_replicas() const {
    uint32_t n = 0;
    for (const ReplicaLocation& r : replicas) {
      n += r.live ? 1 : 0;
    }
    return n;
  }
};

class DifsCluster {
 public:
  // `device_factory(global_index)` builds each device; indices are assigned
  // node-major (device i lives on node i / devices_per_node).
  DifsCluster(const DifsConfig& config,
              const std::function<std::unique_ptr<SsdDevice>(uint32_t)>&
                  device_factory);

  // Creates chunks up to the configured fill fraction, places replicas on
  // distinct nodes, and writes every LBA of every replica (initial load).
  Status Bootstrap();

  // Issues `opage_writes` foreground writes: each picks a random chunk and
  // offset and writes it through all live replicas (one logical write = R
  // device writes). Device events are processed as they appear.
  Status StepWrites(uint64_t opage_writes);

  // Reads `opage_reads` random chunk pages from random live replicas.
  // Uncorrectable reads are repaired by rewriting the page from RAM state
  // (scrub), counted in stats. Every read verifies the chunk's end-to-end
  // checksum: a mismatch retires the replica, re-serves the read from a
  // survivor, and re-replicates through the recovery scheduler (read-repair).
  Status StepReads(uint64_t opage_reads);

  // ---- Targeted foreground ops (the traffic engine's entry points) --------
  // Same semantics as one StepWrites/StepReads iteration, but the caller
  // chooses (chunk, offset) — a TrafficEngine address maps as
  // chunk = addr / chunk_opages(), offset = addr % chunk_opages(). When
  // `cost_ns` is non-null it receives the op's simulated service time:
  // replicas are written in parallel so a write costs its slowest replica
  // write plus any transient-retry backoff; a read costs the replica read
  // (plus the survivor re-serve after read-repair) plus backoff.

  // Writes `offset` of chunk `chunk_id` through all live replicas.
  // kDataLoss when the chunk is lost; kInvalidArgument out of range.
  Status WriteChunkAt(ChunkId chunk_id, uint64_t offset,
                      SimDuration* cost_ns = nullptr);
  // Reads `offset` of chunk `chunk_id` from a randomly chosen readable
  // replica (the replica draw comes from the cluster RNG, exactly as in
  // StepReads). kDataLoss when the chunk is lost or unreadable;
  // kUnavailable when every readable copy is behind a node outage.
  Status ReadChunkAt(ChunkId chunk_id, uint64_t offset,
                     SimDuration* cost_ns = nullptr);

  // Logical oPage address space a traffic engine should target:
  // total_chunks() * chunk_opages().
  uint64_t chunk_opages() const { return config_.chunk_opages; }
  uint64_t logical_opages() const {
    return chunks_.size() * config_.chunk_opages;
  }

  // Background scrub: walks up to `opage_budget` replica oPages behind a
  // deterministic cursor (no RNG draws), performing real device reads — so
  // scrub traffic wears flash per §4.3 — and repairing any corruption it
  // detects through the same read-repair path. Returns the number of oPages
  // actually read. A zero budget is a no-op.
  uint64_t ScrubStep(uint64_t opage_budget);

  // Drains device events and runs the recovery scheduler (also invoked
  // internally by StepWrites/StepReads).
  void ProcessEvents();

  // Full reconciliation: resyncs every reachable device against cluster
  // bookkeeping, retries parked recoveries, and drives recovery to
  // quiescence. Chaos tests call this after a fault burst to assert
  // convergence; it is also what a maintenance tick runs periodically.
  void ForceReconcile();

  // Cross-checks the cluster's bookkeeping: slot maps <-> chunk replica
  // records (both directions), free-slot accounting, node-disjointness of
  // live non-draining replicas, replication bounds, draining_pending
  // coherence, and lost <-> unreadable consistency. kInternal with a
  // description on the first violation. O(cluster); run after every
  // recovery wave in debug builds, and by tests/soaks at will.
  Status CheckInvariants() const;

  // ---- Introspection -----------------------------------------------------

  const DifsStats& stats() const { return stats_; }
  uint32_t alive_devices() const;
  uint64_t total_chunks() const { return chunks_.size(); }
  uint64_t chunks_fully_replicated() const;
  uint64_t chunks_under_replicated() const;
  uint64_t chunks_lost() const { return stats_.chunks_lost; }
  const Chunk& chunk(ChunkId id) const { return chunks_[id]; }
  // Live cluster capacity in bytes, across all devices.
  uint64_t live_capacity_bytes() const;
  uint64_t initial_capacity_bytes() const { return initial_capacity_bytes_; }
  // Total host data written across all devices (time axis for aging plots).
  uint64_t total_bytes_written() const;
  SsdDevice& device(uint32_t index) { return *devices_[index].device; }
  const SsdDevice& device(uint32_t index) const {
    return *devices_[index].device;
  }
  uint32_t device_count() const {
    return static_cast<uint32_t>(devices_.size());
  }
  uint32_t node_of_device(uint32_t device) const {
    return device / config_.devices_per_node;
  }
  // Failure-domain topology: consecutive nodes share a rack.
  uint32_t rack_of_node(uint32_t node) const {
    return node / (config_.nodes_per_rack == 0 ? 1 : config_.nodes_per_rack);
  }
  uint32_t rack_of_device(uint32_t device) const {
    return rack_of_node(node_of_device(device));
  }
  uint64_t free_slots() const;
  // Chunks parked until placement capacity appears (recovery deferred).
  uint64_t chunks_waiting_capacity() const { return waiting_capacity_.size(); }
  uint64_t pending_recovery_backlog() const {
    return pending_recoveries_.size();
  }
  // Node currently unreachable due to an injected outage, or -1.
  int32_t outage_node() const { return outage_node_; }

  // ---- Queueing & graceful degradation introspection ----------------------
  // Simulated arrival clock: advances sched.arrival_interval_ns per
  // foreground op while queueing is enabled; stays 0 otherwise.
  uint64_t sched_clock_ns() const { return sched_clock_ns_; }
  // Per-device service queue; nullptr when queueing is disabled.
  const DeviceQueue* device_queue(uint32_t index) const {
    return devices_[index].device->queue();
  }
  // Brownout controller; nullptr unless sched.slo_p99_ns > 0.
  const BrownoutController* brownout() const { return brownout_.get(); }

  // ---- Tick scheduling (discrete-event drivers) ---------------------------
  // Instead of polling MaybeRunMaintenance after every op, an event-driven
  // harness asks once when the next maintenance tick is due and jumps there.

  // True when maintenance can never fire: auto interval (0) with no injector
  // attached anywhere. A dormant cluster posts no maintenance events at all.
  bool MaintenanceDormant() const;
  // Foreground ops until the next maintenance tick fires (>= 1);
  // UINT64_MAX when dormant.
  uint64_t OpsUntilMaintenanceTick() const;

  // Simulated timestamp stamped onto trace events the cluster emits (see
  // DifsConfig::trace). The harness advances it once per day / burst.
  void set_trace_time_us(uint64_t ts_us) { trace_time_us_ = ts_us; }

  // Scrapes DifsStats (re-replication bytes, resync rounds, retry/backoff,
  // drain outcomes), replication-health gauges, and every device's
  // "<prefix>ssd.*" subtree into "<prefix>difs.*". Cluster-level injected
  // faults land under "<prefix>cluster_faults.". Additive — collect once per
  // cluster (see telemetry/collect.h).
  void CollectMetrics(MetricRegistry& registry,
                      const std::string& prefix = "") const;

 private:
  static constexpr int64_t kFreeSlot = -1;

  static constexpr int64_t kUnavailableSlot = -2;

  struct DeviceState {
    std::unique_ptr<SsdDevice> device;
    uint32_t slots_per_mdisk = 0;
    // Per live mDisk: slot -> chunk id, kFreeSlot, or kUnavailableSlot
    // (slot on a draining mDisk that can take no new data).
    std::unordered_map<MinidiskId, std::vector<int64_t>> slots;
    uint64_t free_slot_count = 0;
    // Draining mDisks -> chunks still awaiting re-replication before ack.
    std::unordered_map<MinidiskId, uint32_t> draining_pending;
    // Last value of device->dropped_events() the cluster has seen; when the
    // counter moves, the event stream is incomplete and a resync runs.
    uint64_t observed_dropped_events = 0;
    // Last value of the device FTL's silent_corrupt_fpage_reads counter the
    // cluster has reconciled into integrity_detected.
    uint64_t observed_silent_corrupt = 0;
    // ---- Suspect window (crash-restart) ----
    // Device is dark but within its grace window: bookkeeping untouched.
    bool suspect = false;
    uint64_t suspect_ticks_left = 0;
    // The darkness has been fully handled (window expired -> losses
    // declared); prevents re-opening a window for the same outage. Cleared
    // when the device serves again.
    bool down_handled = false;
    // ---- Proactive health-driven drain ----
    // Health score tripped the drain threshold: replicas are being migrated
    // off and PickTarget refuses to place new data here. Sticky — a device
    // this close to death is never un-flagged.
    bool health_draining = false;
    // Evacuation completed (counted once in drain_devices_completed).
    bool health_drain_done = false;
  };

  // Returns the number of events processed.
  size_t ApplyDeviceEvents(uint32_t device_index);
  void HandleMdiskLoss(uint32_t device_index, MinidiskId mdisk);
  void HandleMdiskCreated(uint32_t device_index, MinidiskId mdisk);
  void HandleMdiskDraining(uint32_t device_index, MinidiskId mdisk);
  // After `chunk` reached full replication, releases its draining replicas
  // and acks drains whose last pending chunk this was.
  void ReleaseDrainingReplicas(Chunk& chunk);
  // One pass over the pending-recovery queue; returns how many replicas were
  // successfully re-created. While the cluster is in brownout the pass is
  // deferred (counted) unless ForceReconcile is driving convergence.
  uint64_t DrainPendingRecoveries();
  // Attempts to restore one missing replica of `chunk_id`. Returns true on
  // success, false if no eligible target or no live source exists.
  bool RecoverOneReplica(ChunkId chunk_id);
  bool PickTarget(const std::vector<uint32_t>& exclude_nodes,
                  uint32_t* device_out, MinidiskId* mdisk_out,
                  uint32_t* slot_out);
  // Releases a slot claimed for an in-flight copy (recovery or drain
  // migration) that aborted. Drain-aware: if the target mDisk started
  // draining while the copy was in flight, the claim was counted in
  // draining_pending (HandleMdiskDraining cannot tell a claim from a placed
  // replica), so the slot is released as drained — never as new free
  // capacity — with the pending count decremented and the drain acked when
  // this was its last pending slot.
  void ReleaseClaimedSlot(uint32_t device_index, MinidiskId mdisk,
                          uint32_t slot, ChunkId chunk_id);
  // ---- Proactive health-driven drain (ISSUE 10) ----------------------------
  // Scores every device and flags those at or below drain_health_threshold;
  // then migrates replicas off flagged devices. Runs inside MaintenanceTick
  // (before its final ProcessEvents); a no-op when the threshold is 0.
  void ProactiveDrainTick();
  // Moves one live replica off a flagged device onto a PickTarget-chosen
  // slot (real read + writes, drain_* accounted, admission-controlled under
  // OpClass::kRecovery). Returns false when parked (no target, shed, or the
  // copy aborted) — the next tick retries.
  bool MigrateReplicaOff(Chunk& chunk, ReplicaLocation& replica);
  // Writes one replica oPage; on success returns the device write latency.
  StatusOr<SimDuration> WriteReplica(ReplicaLocation& replica,
                                     uint64_t offset);
  // Shared body of StepWrites and WriteChunkAt: stamps the new generation
  // and writes every live replica. kDataLoss when the chunk is lost,
  // kUnavailable when admission control sheds the whole op (queueing only;
  // no replica is touched, so none goes stale). Draws no RNG values.
  Status WriteChunkBody(Chunk& chunk, uint64_t offset, SimDuration* cost_ns);
  // Shared body of StepReads and ReadChunkAt. Preserves the legacy RNG draw
  // order exactly: candidates -> live_index -> offset — when `offset_ptr` is
  // null the offset is drawn from the cluster RNG *after* the replica pick,
  // as StepReads always has; a caller-provided offset skips that draw.
  Status ReadChunkImpl(ChunkId chunk_id, const uint64_t* offset_ptr,
                       SimDuration* cost_ns);

  // ---- End-to-end integrity ------------------------------------------------

  // Folds the device FTL's silent-corruption counter into integrity_detected
  // and returns how many corrupt fpage reads the last operation performed.
  // Called after every device read so the accounting is exact even when a
  // range read aborts partway.
  uint64_t ObserveCorruption(uint32_t device_index);
  // Retires a corrupt replica: frees (or drain-releases) its slot, marks it
  // dead, and queues the chunk for re-replication unless `enqueue` is false
  // (recovery already has it in hand). Refuses to retire the chunk's last
  // readable copy — corrupt data beats no data — returning false and
  // counting integrity_retained_last_copies instead.
  bool MarkReplicaBad(Chunk& chunk, ReplicaLocation& replica, bool enqueue);

  // ---- Queueing & graceful degradation machinery ---------------------------

  bool QueueingEnabled() const { return config_.sched.enabled(); }
  DeviceQueue* Queue(uint32_t device_index) {
    return devices_[device_index].device->queue();
  }
  // Admission fan-out for one foreground chunk write: every device the
  // fan-out will touch must admit, or the whole op sheds (avoids partial
  // replica staleness). `*extra_ns` receives the parallel admission
  // overhead — max over target devices of wait + shed-retry backoff.
  bool AdmitForegroundWrite(const Chunk& chunk, uint64_t* extra_ns);
  // Feeds the brownout controller; no-op when brownout is off.
  void RecordForegroundLatency(uint64_t latency_ns);

  // ---- Robustness machinery ----------------------------------------------

  // True while `device_index`'s node is under an injected outage.
  bool NodeOut(uint32_t device_index) const {
    return outage_node_ >= 0 &&
           node_of_device(device_index) == static_cast<uint32_t>(outage_node_);
  }
  // Diffs device-reported mDisk state against cluster bookkeeping and
  // repairs discrepancies (missed kCreated/kDraining/kDecommissioned, lost
  // AckDrain). Returns the number of repairs; also counts them in stats.
  uint64_t ResyncDevice(uint32_t device_index);
  // Ticks open suspect windows: resolves devices that returned, declares
  // losses for windows that expired. Runs first in every maintenance tick.
  void UpdateSuspectWindows();
  // A suspect device restarted within its window: drain its re-announcement
  // events, then reconcile every replica the cluster still records there —
  // fresh (generation matches and no LBA rolled back) replicas stay, stale
  // ones are pruned and re-replicated.
  void ResolveSuspect(uint32_t device_index);
  // ResyncDevice over every reachable device.
  void ReconcileAll();
  // Outage lottery / rejoin countdown + ReconcileAll + parked-recovery
  // retry; runs every resync_interval_ops foreground ops.
  void MaintenanceTick();
  void MaybeRunMaintenance();
  // Effective tick interval: resync_interval_ops, or the auto default (256)
  // when 0. Dormancy is decided separately by MaintenanceDormant().
  uint64_t MaintenanceIntervalOps() const;
  // Delivers AckDrain to the device, subject to injected ack loss, node
  // outage, and transient retry. True when the device accepted the ack.
  bool SendAckDrain(uint32_t device_index, MinidiskId mdisk);

  static StatusCode ResultCode(const Status& status) { return status.code(); }
  template <typename T>
  static StatusCode ResultCode(const StatusOr<T>& result) {
    return result.status().code();
  }
  // Runs `op`, retrying kUnavailable up to max_transient_retries times with
  // exponential (simulated-time) backoff.
  template <typename Op>
  auto WithTransientRetry(Op op) -> decltype(op()) {
    auto result = op();
    for (uint32_t retry = 0;
         ResultCode(result) == StatusCode::kUnavailable &&
         retry < config_.max_transient_retries;
         ++retry) {
      ++stats_.transient_retries;
      // Retry r waits base << r, with the shift capped (saturating) so high
      // max_transient_retries configs cannot wrap the accumulated backoff.
      stats_.backoff_ns +=
          CappedBackoffNs(config_.transient_backoff_base_ns, retry,
                          config_.transient_backoff_max_shift);
      result = op();
    }
    if (ResultCode(result) == StatusCode::kUnavailable) {
      ++stats_.transient_giveups;
    }
    return result;
  }

  DifsConfig config_;
  Rng rng_;
  ChecksumCodec codec_;
  // Scrub position: major = chunk id, minor = replica * chunk_opages +
  // offset (flattened so the two-level cursor covers all three axes).
  ScrubCursor scrub_cursor_;
  std::vector<DeviceState> devices_;
  std::vector<Chunk> chunks_;
  std::deque<ChunkId> pending_recoveries_;
  // Chunks whose recovery found no eligible target; retried only when the
  // cluster's placement capacity changes (new mDisks, replica losses), not
  // on every foreground operation.
  std::vector<ChunkId> waiting_capacity_;
  DifsStats stats_;
  uint64_t initial_capacity_bytes_ = 0;
  bool bootstrapped_ = false;
  // Injected node outage: at most one node is out at a time.
  int32_t outage_node_ = -1;
  uint32_t outage_ticks_left_ = 0;
  uint64_t ops_since_maintenance_ = 0;
  uint64_t trace_time_us_ = 0;  // stamp for emitted trace events
  // ---- Queueing & graceful degradation state ----
  uint64_t sched_clock_ns_ = 0;  // simulated arrival clock (queueing only)
  std::unique_ptr<BrownoutController> brownout_;
  // ForceReconcile overrides the brownout recovery deferral: tests and soaks
  // use it to assert convergence, so it must always drain.
  bool reconcile_override_ = false;
};

}  // namespace salamander

#endif  // SALAMANDER_DIFS_CLUSTER_H_
