#include "difs/placement.h"

namespace salamander {

std::shared_ptr<PlacementPolicy> MakeUniformPlacement() {
  return std::make_shared<UniformPlacement>();
}

std::shared_ptr<PlacementPolicy> MakeDomainSpreadPlacement(
    uint32_t nodes_per_rack) {
  return std::make_shared<DomainSpreadPlacement>(nodes_per_rack);
}

}  // namespace salamander
