// Fleet aging simulator (Fig. 3a / 3b).
//
// Simulates a batch of SSDs deployed together under a sustained write
// workload (expressed as drive-writes-per-day) plus a background annual
// failure rate for non-wear failures. Tracks, day by day, how many devices
// still function and how much capacity the fleet retains — the two curves
// the paper contrasts between baseline (cliff-edge bricks) and Salamander
// (gradual shrink + regeneration).
//
// Every device is an independent stochastic process: all of its randomness
// (endurance variance, workload addresses, the AFR failure draw) comes from
// streams forked off the fleet RNG in device-ID order at construction. Run()
// can therefore step devices on a thread pool (`FleetConfig::threads`) and
// still produce snapshots byte-identical to a serial run.
#ifndef SALAMANDER_FLEET_FLEET_SIM_H_
#define SALAMANDER_FLEET_FLEET_SIM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "faults/fault_injector.h"
#include "fleet/event_scheduler.h"
#include "integrity/scrub_cursor.h"
#include "ssd/ssd_device.h"
#include "telemetry/metrics.h"
#include "telemetry/sampler.h"
#include "telemetry/trace.h"
#include "workload/aging.h"
#include "workload/traffic.h"

namespace salamander {

// Which engine advances simulated time.
enum class FleetSchedulerMode : uint8_t {
  // Reference engine: one global barrier per simulated day, every slot
  // visited every day (dead and dark ones included). Kept as the golden
  // implementation the event-driven core is diffed against.
  kLockstep = 0,
  // Discrete-event engine: devices post their next interesting event into a
  // (day, device, kind)-ordered queue and time advances in jumps, so days on
  // which a device is dead or dark cost zero stepping work. Produces
  // bit-identical snapshots, metrics, and per-device state — the
  // FleetEquivalence/FleetScheduler suites enforce it.
  kEventDriven = 1,
};

// Multi-tenant traffic as the fleet's demand source (alternative to the flat
// `dwpd` knob). When enabled, every device slot owns a TrafficEngine whose
// per-day *write* demand replaces `writes_per_day`, so per-device load
// varies over time (diurnal swings, bursts) and tenant skew concentrates
// wear through the AgingDriver's zipfian address stream.
struct FleetTrafficConfig {
  // 0 — the default — disables the traffic engine entirely: no extra RNG
  // forks, no per-slot engines, every pre-existing output byte-identical.
  uint32_t tenants_per_device = 0;
  // Template applied to every tenant. `ops_per_day` is per tenant in oPages;
  // a device's mean daily write demand is
  // tenants_per_device * ops_per_day * (1 - read_fraction).
  TenantConfig tenant;
  // Rotate tenant arrival shapes steady/diurnal/bursty (with staggered
  // phases) instead of cloning the template's shape.
  bool mixed_arrivals = true;
  // Address skew the tenants impose within each device: the fraction of
  // oPage writes drawn zipfian-hot (AgingConfig::zipfian_fraction) at the
  // tenant template's theta. 1.0 = fully skewed (the regime where hot-spot
  // wear concentrates and ShrinkS/RegenS diverge from CVSS).
  double device_zipfian_fraction = 1.0;

  bool enabled() const { return tenants_per_device > 0; }
};

// Day-granular admission control in front of each device (the fleet-level
// face of the per-op queueing layer in src/sched/). Daily write demand joins
// a bounded per-slot backlog; a fixed service capacity drains it each day and
// only the served oPages reach flash. Demand that overflows the bound is shed
// (counted, never written) — so an overloaded fleet degrades by queueing and
// shedding instead of silently wearing flash at the offered rate. The model
// is pure arithmetic on slot-local state: zero RNG draws, so parallel ==
// serial == lockstep stays bit-identical with no extra discipline.
struct FleetQueueConfig {
  // Per-device service capacity in oPages/day. 0 — the default — disables
  // the queue entirely: no backlog state, no digest contribution, every
  // pre-existing output byte-identical.
  uint64_t service_opages_per_day = 0;
  // Backlog bound in oPages; demand beyond it is shed. 0 = unbounded backlog
  // (no sheds, demand is only deferred).
  uint64_t queue_opages = 0;

  bool enabled() const { return service_opages_per_day > 0; }
};

// Correlated failure domains (ISSUE 10). Devices belong to two orthogonal
// domain axes: a *rack* (placement / power domain, `device / devices_per_rack`)
// and a *manufacturing-batch cohort* (`device % batch_cohorts`). Each axis can
// inject correlated events:
//   - rack power loss: every device in the rack crashes (kPowerLoss) the same
//     simulated day and stays dark for `rack_restart_days`;
//   - batch endurance variance: every device in a cohort shares one latent
//     lognormal wear factor (scales WearModelConfig::coefficient), so whole
//     batches age fast or slow together;
//   - cohort unavailability waves: every device in the cohort pauses I/O
//     (draw-free days, no crash) for `cohort_unavailable_days`.
// All schedules are precomputed at construction from dedicated RNG roots
// (one per feature, forked per rack / per cohort in id order), so they are
// bit-identical at any thread count and under either scheduler engine, and a
// disabled feature draws nothing — every pre-existing output byte-identical.
struct FleetDomainConfig {
  // Devices per rack; 0 — the default — disables the rack axis entirely.
  uint32_t devices_per_rack = 0;
  // Per rack-day probability that the rack loses power (all devices crash).
  double rack_power_loss_per_day = 0.0;
  // Days a rack-crashed device stays dark before Restart() is attempted.
  uint32_t rack_restart_days = 1;
  // Manufacturing-batch cohorts; 0 — the default — disables the cohort axis.
  uint32_t batch_cohorts = 0;
  // Lognormal sigma of the shared per-cohort endurance factor (scales the
  // wear model's RBER growth coefficient). 0 disables batch wear variance.
  double batch_endurance_sigma = 0.0;
  // Per cohort-day probability of a transient-unavailability wave.
  double cohort_unavailable_per_day = 0.0;
  uint32_t cohort_unavailable_days = 1;
  // Proactive health-driven drain: when > 0, a device whose
  // SsdDevice::HealthScore(drain_pec_horizon) falls to or below this is
  // retired ahead of failure (its data migrated off in one day, modeled as a
  // capacity-sized bulk move) instead of being ridden to the brick.
  double drain_health_threshold = 0.0;
  double drain_pec_horizon = 0.25;

  bool rack_events_enabled() const {
    return devices_per_rack > 0 && rack_power_loss_per_day > 0.0;
  }
  bool cohort_wear_enabled() const {
    return batch_cohorts > 0 && batch_endurance_sigma > 0.0;
  }
  bool cohort_waves_enabled() const {
    return batch_cohorts > 0 && cohort_unavailable_per_day > 0.0;
  }
  bool drain_enabled() const { return drain_health_threshold > 0.0; }
  bool enabled() const {
    return rack_events_enabled() || cohort_wear_enabled() ||
           cohort_waves_enabled() || drain_enabled();
  }
};

// Precomputed domain-event calendar: per-rack power-loss days and per-cohort
// wave days (each sorted ascending), plus the per-cohort wear factors. Built
// once at FleetSim construction; slots walk it with slot-local cursors.
struct FleetDomainSchedule {
  std::vector<std::vector<uint32_t>> rack_power_days;
  std::vector<std::vector<uint32_t>> cohort_wave_days;
  std::vector<double> cohort_wear_factor;
};

struct FleetConfig {
  SsdKind kind = SsdKind::kBaseline;
  uint32_t devices = 20;
  FlashGeometry geometry;
  WearModelConfig wear;
  FlashLatencyConfig latency;
  FPageEccGeometry ecc;
  unsigned regen_max_level = 1;
  // mDisk size for Salamander kinds (oPages); 0 keeps the factory default.
  uint64_t msize_opages = 0;
  // DRAM-resident L2P window per device (FtlConfig::l2p_cache_entries).
  // 0 — the default — keeps the legacy unbounded in-DRAM map: no map-page
  // writes, no extra wear, every output byte-identical.
  uint64_t l2p_cache_entries = 0;

  // Host writes per device per day, as a fraction of *initial* capacity
  // (drive-writes-per-day). The absolute rate stays constant as devices
  // shrink, concentrating wear — as in production.
  double dwpd = 1.0;
  // Per-device workload imbalance: each device's rate is multiplied by a
  // lognormal(0, dwpd_sigma) draw (shard skew in real deployments). This is
  // what spreads wear-out deaths over a window instead of a cliff.
  double dwpd_sigma = 0.0;
  // Multi-tenant traffic source; disabled (every byte identical) by default.
  // When enabled it supersedes `dwpd`/`dwpd_sigma` as the write-demand
  // source (the imbalance draw still happens, keeping disabled streams
  // untouched, but its product is unused).
  FleetTrafficConfig traffic;
  // Per-device admission control (backlog + daily service cap); disabled —
  // every byte identical — by default. Composes with either demand source:
  // whatever `dwpd` or the traffic engine offers for the day is what joins
  // the backlog.
  FleetQueueConfig queue;
  // Annual rate of random (non-wear) whole-device failures, e.g. 0.01 [28].
  double afr = 0.01;
  uint32_t days = 1000;
  uint32_t sample_every_days = 10;
  uint64_t seed = 1;
  // Worker threads for Run(): 1 = serial, 0 = all hardware threads (resolved
  // via ThreadPool::ResolveThreads, floor of 1). Results are identical for
  // every value — parallelism only changes wall-clock.
  unsigned threads = 1;

  // Simulation engine. Event-driven is the default; lockstep remains as the
  // reference implementation for the exact-equivalence gate. Snapshots and
  // telemetry are bit-identical between the two at any `threads`.
  FleetSchedulerMode scheduler = FleetSchedulerMode::kEventDriven;

  // ---- Background scrub ----------------------------------------------------
  // oPages each device reads back per simulated day to catch latent (silent)
  // corruption; a detected-corrupt or uncorrectable oPage is repaired by a
  // rewrite. Scrub reads are real device reads and wear flash (§4.3's
  // recovery-wear accounting applies). 0 disables scrub entirely: no extra
  // RNG forks, no extra reads — every output byte-identical to a scrub-free
  // build. Pacing: ScrubFullPassDays(device_opages, scrub_opages_per_day).
  uint64_t scrub_opages_per_day = 0;

  // ---- Per-device fault injection ------------------------------------------
  // When true, every device gets its own FaultInjector built from
  // `device_faults` with stream_id = device index (the PR-1 fork-in-id-order
  // discipline, so injection schedules are bit-identical at any `threads`).
  bool inject_device_faults = false;
  FaultConfig device_faults;

  // ---- Transient power loss (crash-restart recovery) -----------------------
  // Daily probability that a functioning device loses power and goes dark
  // (SsdDevice::Crash(kPowerLoss)) — distinct from `afr`, which models
  // permanent failures. The draw comes from the device's own injector
  // (FaultSite::kPowerLoss, forked in device-ID order), so outage schedules
  // are bit-identical at any `threads`. 0 — the default — attaches nothing
  // and draws nothing: every pre-existing output stays byte-identical.
  double power_loss_per_device_day = 0.0;
  // Simulated days a power-lost device stays dark before Restart() is
  // attempted (rack power restoration latency, at day granularity).
  uint32_t power_loss_restart_days = 1;

  // ---- Correlated failure domains + proactive drain (ISSUE 10) -------------
  // Disabled by default (every field zero): no extra RNG roots, no schedule,
  // every pre-existing output byte-identical.
  FleetDomainConfig domain;

  // ---- Telemetry hooks (not owned; nullptr = zero-cost detached) -----------
  // All recording happens on the owning thread at day barriers (per-slot
  // sharded counters aside, which workers write race-free), so attached
  // telemetry is bit-identical at any `threads` value.

  // Scraped with CollectMetrics() ("fleet.*" plus the per-device subtrees)
  // when Run() finishes.
  MetricRegistry* metrics = nullptr;
  // Sampled once per simulated day: device health, live mDisk count,
  // revived capacity, event-queue depth, injected-fault totals.
  TimeSeriesSampler* sampler = nullptr;
  // Day spans, device-death instants, and fleet counter tracks
  // (1 simulated day = kTraceUsPerDay of trace time).
  TraceRecorder* trace = nullptr;
  uint32_t trace_tid = 0;
};

struct FleetSnapshot {
  uint32_t day = 0;
  uint32_t functioning_devices = 0;
  uint64_t capacity_bytes = 0;
  uint64_t cumulative_decommissions = 0;  // mDisk-level failures so far
  uint64_t cumulative_regenerations = 0;  // mDisks minted by RegenS
  uint64_t cumulative_host_writes = 0;    // oPages

  friend bool operator==(const FleetSnapshot&, const FleetSnapshot&) = default;
};

class FleetSim {
 public:
  // Trace-time scale: one simulated day = 1000 us, so a full 4000-day run
  // spans 4 ms of viewer time (see DESIGN.md "Telemetry").
  static constexpr uint64_t kTraceUsPerDay = 1000;

  explicit FleetSim(const FleetConfig& config);

  // Runs the full horizon (or until every device is dead) and returns one
  // snapshot per sampling interval, starting with day 0.
  std::vector<FleetSnapshot> Run();

  // Day on which the fleet first dropped below `fraction` of its devices;
  // std::nullopt if it never did. Valid after Run().
  std::optional<uint32_t> DayDevicesBelow(double fraction) const;
  // Day on which fleet capacity first dropped below `fraction` of initial;
  // std::nullopt if it never did.
  std::optional<uint32_t> DayCapacityBelow(double fraction) const;

  const std::vector<FleetSnapshot>& snapshots() const { return snapshots_; }

  // Fleet-wide scrub totals (sums over devices). Valid after Run(); all zero
  // when scrub is disabled.
  uint64_t scrub_reads_total() const;
  uint64_t scrub_detected_total() const;
  uint64_t scrub_repairs_total() const;
  uint64_t scrub_passes_total() const;
  // Total silent corruptions injected across all device injectors.
  uint64_t read_corrupt_injected_total() const;

  // Admission-queue totals (sums over devices). Valid after Run(); all zero
  // when the queue is disabled.
  uint64_t queue_admitted_total() const;
  uint64_t queue_served_total() const;
  uint64_t queue_shed_total() const;
  // Demand currently parked in backlogs (admitted but not yet served).
  uint64_t queue_backlog_total() const;

  // Failure-domain totals (sums over devices). Valid after Run(); all zero
  // when the corresponding domain feature is disabled.
  uint64_t rack_crashes_total() const;
  uint64_t cohort_pause_days_total() const;
  uint32_t drained_devices() const;
  uint64_t drain_migrated_bytes_total() const;
  // The precomputed domain-event calendar (empty when the axes are off).
  const FleetDomainSchedule& domain_schedule() const { return domain_schedule_; }

  // Power-loss totals (sums over devices). Valid after Run(); all zero when
  // power loss is not injected.
  uint64_t power_losses_total() const;
  uint64_t restarts_total() const;
  uint64_t restart_failures_total() const;
  // Devices currently dark from a transient power loss.
  uint32_t dark_devices() const;

  // Event-scheduler accounting. Valid after Run(); all zero under lockstep.
  FleetSchedulerStats scheduler_stats() const;

  // Order-independent digest of one device's complete post-run state: the
  // FTL StateDigest plus the fleet-level flags and counters the slot owns
  // (liveness, darkness, outage ledger, scrub totals). Two engines that
  // agree on every digest simulated identical histories; the lockstep-vs-
  // event-driven equivalence gate diffs these per device.
  uint64_t DeviceDigest(uint32_t device) const;
  std::vector<uint64_t> DeviceDigests() const;

  // Scrapes fleet-level instruments into "<prefix>fleet.*" and every
  // device's "<prefix>ssd.*"/"<prefix>ftl.*"/"<prefix>flash.*" subtree
  // (additive, so N devices aggregate into fleet totals — see
  // telemetry/collect.h). Called automatically at the end of Run() when
  // FleetConfig::metrics is attached.
  void CollectMetrics(MetricRegistry& registry,
                      const std::string& prefix = "") const;

 private:
  struct DeviceSlot {
    std::unique_ptr<SsdDevice> device;
    std::unique_ptr<AgingDriver> driver;
    // Private stream for fleet-level draws against this device (today: the
    // daily AFR trial). Owned by the slot so that stepping one device never
    // consumes another device's randomness — the property that makes
    // parallel runs bit-identical to serial ones.
    Rng rng;
    // The device's injector, when one is attached (fault injection or power
    // loss); same object SsdConfig::faults holds. Kept here because the
    // fleet draws LosesPower() from it, which mutates the site stream.
    std::shared_ptr<FaultInjector> faults;
    uint64_t writes_per_day = 0;
    bool random_failure = false;  // killed by the AFR draw
    bool alive = true;

    // ---- Transient power loss (used only when power loss is injected) ------
    bool dark = false;            // powered off, waiting out the outage
    uint32_t dark_until_day = 0;  // first day Restart() is attempted
    uint64_t power_losses = 0;
    uint64_t restarts = 0;
    uint64_t restart_failures = 0;  // journal replay failed: device gone

    // ---- Failure-domain state (used only when the domain axis is on) -------
    // Slot-local cursors into the precomputed schedule; advanced only while
    // stepping this slot, so they are monotone and thread-invariant under
    // both engines.
    uint32_t rack = 0;                // device / devices_per_rack
    uint32_t cohort = 0;              // device % batch_cohorts
    size_t rack_event_cursor = 0;     // next unconsumed rack_power_days entry
    size_t cohort_wave_cursor = 0;    // next unconsumed cohort_wave_days entry
    uint32_t paused_until_day = 0;    // cohort wave: first day I/O resumes
    uint64_t rack_crashes = 0;        // rack power-loss crashes of this device
    uint64_t cohort_pause_days = 0;   // device-days lost to cohort waves
    // Proactive drain: retired ahead of failure by the health threshold.
    bool drained = false;
    uint64_t drain_migrated_bytes = 0;  // live capacity moved off at drain

    // ---- Background scrub state (used only when scrub is enabled) ----------
    // Forked 4th per device in device-ID order, so enabling scrub never
    // perturbs another device's streams; used once, for the staggered start.
    Rng scrub_rng;
    ScrubCursor scrub_cursor;  // (mdisk, lba) — pure state, no draws

    // ---- Traffic engine (allocated only when traffic is enabled) -----------
    // Seeded by the 5th per-device fork (after scrub's), still in device-ID
    // order; slot-local, touched only by the worker stepping this slot.
    std::unique_ptr<TrafficEngine> traffic;

    // ---- Admission-control queue (used only when the queue is enabled) -----
    // Pure counters, no RNG; touched only by the worker stepping this slot.
    uint64_t queue_backlog_opages = 0;  // demand admitted but not yet served
    uint64_t queue_admitted_opages = 0;
    uint64_t queue_served_opages = 0;
    uint64_t queue_shed_opages = 0;
    uint64_t queue_backlog_peak = 0;
    uint64_t observed_silent_corrupt = 0;  // last FTL counter reconciled
    uint64_t scrub_reads = 0;
    uint64_t scrub_detected = 0;  // silently-corrupt oPages caught by scrub
    uint64_t scrub_repairs = 0;   // oPages rewritten (corrupt + uncorrectable)
    uint64_t scrub_passes = 0;    // full device sweeps completed

    // ---- Event-scheduler state (slot-local; written only by the worker
    // executing this slot's event, read by the owner at batch barriers) -----
    uint32_t death_day = 0;        // day `alive` flipped false (if it did)
    uint64_t days_stepped = 0;     // device-days this slot actually simulated
    uint64_t dark_days_skipped = 0;  // dark device-days jumped over
    bool has_next_event = false;   // follow-up event to post at the barrier
    FleetEvent next_event;
  };

  // Advances one device by one day. Touches only `slot` state plus shard
  // `shard` of the counters (each slot has its own shard); safe to call
  // concurrently for distinct slots. The counters may be null (telemetry
  // detached). `restart_days` is the power-loss outage length; a dark day
  // performs zero RNG draws so outage schedules stay bit-identical across
  // `threads`.
  static void StepDevice(DeviceSlot& slot, uint32_t day, double daily_failure,
                         uint64_t scrub_budget, uint32_t restart_days,
                         const FleetQueueConfig& queue,
                         const FleetDomainConfig& domain,
                         const FleetDomainSchedule* schedule, size_t shard,
                         ShardedCounter* steps, ShardedCounter* opages);
  // One day of background scrub on one device: walks `budget` oPages from
  // the slot's cursor, folds the FTL's silent-corruption counter into the
  // slot's scrub totals, and repairs flagged oPages by rewriting them.
  // Same thread-safety contract as StepDevice (slot-local state only).
  static void ScrubDevice(DeviceSlot& slot, uint64_t budget);

  // Executes one scheduler event: advances the device day by day from
  // `event.day` through `window_end` with exact lockstep per-day semantics
  // (same draws, in the same order), jumping over dark days (which lockstep
  // makes draw-free no-ops) in O(1). Leaves the follow-up event, if any, in
  // slot.next_event for the owner to post at the barrier. Same thread-safety
  // contract as StepDevice.
  static void ExecuteEvent(DeviceSlot& slot, const FleetEvent& event,
                           uint32_t window_end, uint32_t horizon_days,
                           double daily_failure, uint64_t scrub_budget,
                           uint32_t restart_days,
                           const FleetQueueConfig& queue,
                           const FleetDomainConfig& domain,
                           const FleetDomainSchedule* schedule,
                           ShardedCounter* steps, ShardedCounter* opages);

  // The two engines behind Run(). Both produce identical snapshots_ and
  // telemetry; the event-driven one skips dead/dark device-days.
  std::vector<FleetSnapshot> RunLockstep();
  std::vector<FleetSnapshot> RunEventDriven();

  // Shared Run() prologue: clears snapshots_, records day 0, arms the
  // telemetry plumbing. Returns the per-day AFR hazard.
  double PrepareRun();

  FleetSnapshot Sample(uint32_t day) const;

  bool telemetry_attached() const {
    return config_.metrics != nullptr || config_.sampler != nullptr ||
           config_.trace != nullptr;
  }
  // Registers the daily probes on config_.sampler (no-op when detached).
  void RegisterSamplerProbes();
  // Owner-thread telemetry for one finished day: drains the sharded
  // counters, emits the day span / death instants / counter tracks, and
  // samples the time series. `alive_before` is each slot's liveness at the
  // start of the day, in slot order.
  void RecordDayTelemetry(uint32_t day, const std::vector<uint8_t>& alive_before);

  uint64_t TotalPendingEventDepth() const;
  uint64_t TotalFaultsInjected() const;

  FleetConfig config_;
  std::vector<DeviceSlot> slots_;
  std::vector<FleetSnapshot> snapshots_;
  FleetDomainSchedule domain_schedule_;
  uint64_t initial_capacity_ = 0;

  // Per-slot sharded day counters, allocated only while telemetry is
  // attached; drained into the cumulative totals below at each day barrier.
  std::unique_ptr<ShardedCounter> day_steps_;
  std::unique_ptr<ShardedCounter> day_opages_;
  uint64_t device_days_stepped_ = 0;
  uint64_t host_opages_written_ = 0;

  // Queue-level scheduler accounting (owner thread only; zero in lockstep).
  FleetSchedulerStats scheduler_stats_;
};

}  // namespace salamander

#endif  // SALAMANDER_FLEET_FLEET_SIM_H_
