#include "fleet/fleet_sim.h"

#include <cmath>

#include "common/thread_pool.h"

namespace salamander {

FleetSim::FleetSim(const FleetConfig& config) : config_(config) {
  // Root of the fleet's RNG tree. Every stream any device will ever use is
  // forked from it here, in device-ID order, so stream identity depends only
  // on (seed, device index) — never on how other devices consume randomness
  // or on the order in which devices are later stepped.
  Rng fleet_rng(config_.seed ^ 0xf1ee7f1ee7f1ee70ULL);
  slots_.reserve(config_.devices);
  for (uint32_t i = 0; i < config_.devices; ++i) {
    DeviceSlot slot;
    slot.rng = fleet_rng.Fork();
    const uint64_t device_seed = fleet_rng.ForkSeed();
    const uint64_t driver_seed = fleet_rng.ForkSeed();
    SsdConfig ssd_config =
        MakeSsdConfig(config_.kind, config_.geometry, config_.wear,
                      config_.latency, config_.ecc, device_seed,
                      config_.regen_max_level);
    if (config_.msize_opages > 0 &&
        (config_.kind == SsdKind::kShrinkS ||
         config_.kind == SsdKind::kRegenS)) {
      ssd_config.minidisk.msize_opages = config_.msize_opages;
    }
    slot.device = std::make_unique<SsdDevice>(config_.kind, ssd_config);
    slot.driver =
        std::make_unique<AgingDriver>(slot.device.get(), driver_seed);
    initial_capacity_ += slot.device->live_capacity_bytes();
    const uint64_t per_device_opages =
        slot.device->initial_capacity_bytes() / config_.geometry.opage_bytes;
    const double imbalance =
        config_.dwpd_sigma > 0.0
            ? slot.rng.LogNormal(0.0, config_.dwpd_sigma)
            : 1.0;
    slot.writes_per_day = static_cast<uint64_t>(
        config_.dwpd * imbalance * static_cast<double>(per_device_opages));
    slots_.push_back(std::move(slot));
  }
}

FleetSnapshot FleetSim::Sample(uint32_t day) const {
  FleetSnapshot snapshot;
  snapshot.day = day;
  for (const DeviceSlot& slot : slots_) {
    if (slot.alive && !slot.device->failed()) {
      ++snapshot.functioning_devices;
      snapshot.capacity_bytes += slot.device->live_capacity_bytes();
    }
    snapshot.cumulative_decommissions +=
        slot.device->manager().decommissioned_total();
    snapshot.cumulative_regenerations +=
        slot.device->manager().regenerated_total();
    snapshot.cumulative_host_writes += slot.device->ftl().stats().host_writes;
  }
  return snapshot;
}

void FleetSim::StepDevice(DeviceSlot& slot, double daily_failure) {
  if (!slot.alive || slot.device->failed()) {
    slot.alive = false;
    return;
  }
  if (slot.rng.Bernoulli(daily_failure)) {
    // Random infant/controller failure, independent of wear.
    slot.random_failure = true;
    slot.alive = false;
    return;
  }
  AgingResult result = slot.driver->WriteOPages(slot.writes_per_day);
  if (result.device_failed) {
    slot.alive = false;
  }
}

std::vector<FleetSnapshot> FleetSim::Run() {
  snapshots_.clear();
  snapshots_.push_back(Sample(0));
  // Convert the annual failure rate to a per-day hazard.
  const double daily_failure =
      1.0 - std::pow(1.0 - config_.afr, 1.0 / 365.0);
  // Each worker owns a disjoint slice of slots between day barriers; the
  // sampling/merge below runs on this thread after the barrier, in device-ID
  // order. With threads == 1 the pool executes inline (a plain loop).
  ThreadPool pool(config_.threads);
  for (uint32_t day = 1; day <= config_.days; ++day) {
    pool.ParallelFor(slots_.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        StepDevice(slots_[i], daily_failure);
      }
    });
    uint32_t alive = 0;
    for (const DeviceSlot& slot : slots_) {
      alive += slot.alive ? 1 : 0;
    }
    if (day % config_.sample_every_days == 0 || alive == 0 ||
        day == config_.days) {
      snapshots_.push_back(Sample(day));
    }
    if (alive == 0) {
      break;
    }
  }
  return snapshots_;
}

std::optional<uint32_t> FleetSim::DayDevicesBelow(double fraction) const {
  const double threshold = fraction * static_cast<double>(config_.devices);
  for (const FleetSnapshot& snapshot : snapshots_) {
    if (static_cast<double>(snapshot.functioning_devices) < threshold) {
      return snapshot.day;
    }
  }
  return std::nullopt;
}

std::optional<uint32_t> FleetSim::DayCapacityBelow(double fraction) const {
  const double threshold =
      fraction * static_cast<double>(initial_capacity_);
  for (const FleetSnapshot& snapshot : snapshots_) {
    if (static_cast<double>(snapshot.capacity_bytes) < threshold) {
      return snapshot.day;
    }
  }
  return std::nullopt;
}

}  // namespace salamander
