#include "fleet/fleet_sim.h"

#include <cmath>

namespace salamander {

FleetSim::FleetSim(const FleetConfig& config)
    : config_(config), rng_(config.seed ^ 0xf1ee7f1ee7f1ee70ULL) {
  slots_.reserve(config_.devices);
  for (uint32_t i = 0; i < config_.devices; ++i) {
    DeviceSlot slot;
    SsdConfig ssd_config =
        MakeSsdConfig(config_.kind, config_.geometry, config_.wear,
                      config_.latency, config_.ecc,
                      config_.seed * 7919 + i, config_.regen_max_level);
    if (config_.msize_opages > 0 &&
        (config_.kind == SsdKind::kShrinkS ||
         config_.kind == SsdKind::kRegenS)) {
      ssd_config.minidisk.msize_opages = config_.msize_opages;
    }
    slot.device = std::make_unique<SsdDevice>(config_.kind, ssd_config);
    slot.driver =
        std::make_unique<AgingDriver>(slot.device.get(), config_.seed + i);
    initial_capacity_ += slot.device->live_capacity_bytes();
    const uint64_t per_device_opages =
        slot.device->initial_capacity_bytes() / config_.geometry.opage_bytes;
    const double imbalance =
        config_.dwpd_sigma > 0.0
            ? rng_.LogNormal(0.0, config_.dwpd_sigma)
            : 1.0;
    slot.writes_per_day = static_cast<uint64_t>(
        config_.dwpd * imbalance * static_cast<double>(per_device_opages));
    slots_.push_back(std::move(slot));
  }
}

FleetSnapshot FleetSim::Sample(uint32_t day) const {
  FleetSnapshot snapshot;
  snapshot.day = day;
  for (const DeviceSlot& slot : slots_) {
    if (slot.alive && !slot.device->failed()) {
      ++snapshot.functioning_devices;
      snapshot.capacity_bytes += slot.device->live_capacity_bytes();
    }
    snapshot.cumulative_decommissions +=
        slot.device->manager().decommissioned_total();
    snapshot.cumulative_regenerations +=
        slot.device->manager().regenerated_total();
    snapshot.cumulative_host_writes += slot.device->ftl().stats().host_writes;
  }
  return snapshot;
}

std::vector<FleetSnapshot> FleetSim::Run() {
  snapshots_.clear();
  snapshots_.push_back(Sample(0));
  // Convert the annual failure rate to a per-day hazard.
  const double daily_failure =
      1.0 - std::pow(1.0 - config_.afr, 1.0 / 365.0);
  for (uint32_t day = 1; day <= config_.days; ++day) {
    uint32_t alive = 0;
    for (DeviceSlot& slot : slots_) {
      if (!slot.alive || slot.device->failed()) {
        slot.alive = false;
        continue;
      }
      if (rng_.Bernoulli(daily_failure)) {
        // Random infant/controller failure, independent of wear.
        slot.random_failure = true;
        slot.alive = false;
        continue;
      }
      AgingResult result = slot.driver->WriteOPages(slot.writes_per_day);
      if (result.device_failed) {
        slot.alive = false;
        continue;
      }
      ++alive;
    }
    if (day % config_.sample_every_days == 0 || alive == 0 ||
        day == config_.days) {
      snapshots_.push_back(Sample(day));
    }
    if (alive == 0) {
      break;
    }
  }
  return snapshots_;
}

uint32_t FleetSim::DayDevicesBelow(double fraction) const {
  const double threshold = fraction * static_cast<double>(config_.devices);
  for (const FleetSnapshot& snapshot : snapshots_) {
    if (static_cast<double>(snapshot.functioning_devices) < threshold) {
      return snapshot.day;
    }
  }
  return 0;
}

uint32_t FleetSim::DayCapacityBelow(double fraction) const {
  const double threshold =
      fraction * static_cast<double>(initial_capacity_);
  for (const FleetSnapshot& snapshot : snapshots_) {
    if (static_cast<double>(snapshot.capacity_bytes) < threshold) {
      return snapshot.day;
    }
  }
  return 0;
}

}  // namespace salamander
