#include "fleet/fleet_sim.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/thread_pool.h"
#include "telemetry/collect.h"

namespace salamander {

FleetSim::FleetSim(const FleetConfig& config) : config_(config) {
  // Domain-event calendar first. Each domain feature owns a dedicated RNG
  // root (never the fleet root below), forked per rack / per cohort in id
  // order, so schedules depend only on (seed, feature, rack-or-cohort id) —
  // never on device streams or on each other — and a disabled feature builds
  // nothing and draws nothing.
  const FleetDomainConfig& domain = config_.domain;
  const uint32_t per_rack =
      domain.devices_per_rack == 0 ? 1 : domain.devices_per_rack;
  if (domain.rack_events_enabled()) {
    const uint32_t racks = (config_.devices + per_rack - 1) / per_rack;
    Rng rack_root(config_.seed ^ 0xd0a1d0a1d0a1d0a1ULL);
    domain_schedule_.rack_power_days.resize(racks);
    for (uint32_t r = 0; r < racks; ++r) {
      Rng rack_rng = rack_root.Fork();
      for (uint32_t day = 1; day <= config_.days; ++day) {
        if (rack_rng.Bernoulli(domain.rack_power_loss_per_day)) {
          domain_schedule_.rack_power_days[r].push_back(day);
        }
      }
    }
  }
  if (domain.cohort_wear_enabled()) {
    // One latent endurance factor per manufacturing batch: every device in
    // the cohort shares it, so whole batches age fast or slow together.
    Rng wear_root(config_.seed ^ 0xd0a2d0a2d0a2d0a2ULL);
    domain_schedule_.cohort_wear_factor.resize(domain.batch_cohorts);
    for (uint32_t c = 0; c < domain.batch_cohorts; ++c) {
      Rng cohort_rng = wear_root.Fork();
      domain_schedule_.cohort_wear_factor[c] =
          cohort_rng.LogNormal(0.0, domain.batch_endurance_sigma);
    }
  }
  if (domain.cohort_waves_enabled()) {
    Rng wave_root(config_.seed ^ 0xd0a3d0a3d0a3d0a3ULL);
    domain_schedule_.cohort_wave_days.resize(domain.batch_cohorts);
    for (uint32_t c = 0; c < domain.batch_cohorts; ++c) {
      Rng cohort_rng = wave_root.Fork();
      for (uint32_t day = 1; day <= config_.days; ++day) {
        if (cohort_rng.Bernoulli(domain.cohort_unavailable_per_day)) {
          domain_schedule_.cohort_wave_days[c].push_back(day);
        }
      }
    }
  }
  // Root of the fleet's RNG tree. Every stream any device will ever use is
  // forked from it here, in device-ID order, so stream identity depends only
  // on (seed, device index) — never on how other devices consume randomness
  // or on the order in which devices are later stepped.
  Rng fleet_rng(config_.seed ^ 0xf1ee7f1ee7f1ee70ULL);
  slots_.reserve(config_.devices);
  for (uint32_t i = 0; i < config_.devices; ++i) {
    DeviceSlot slot;
    slot.rack = i / per_rack;
    slot.cohort = domain.batch_cohorts > 0 ? i % domain.batch_cohorts : 0;
    slot.rng = fleet_rng.Fork();
    const uint64_t device_seed = fleet_rng.ForkSeed();
    const uint64_t driver_seed = fleet_rng.ForkSeed();
    WearModelConfig wear = config_.wear;
    if (domain.cohort_wear_enabled()) {
      // Batch variance scales the RBER growth coefficient (not the per-page
      // factor), so it shifts every page of the cohort's devices coherently.
      wear.coefficient *= domain_schedule_.cohort_wear_factor[slot.cohort];
    }
    SsdConfig ssd_config =
        MakeSsdConfig(config_.kind, config_.geometry, wear,
                      config_.latency, config_.ecc, device_seed,
                      config_.regen_max_level);
    if (config_.msize_opages > 0 &&
        (config_.kind == SsdKind::kShrinkS ||
         config_.kind == SsdKind::kRegenS)) {
      ssd_config.minidisk.msize_opages = config_.msize_opages;
    }
    ssd_config.ftl.l2p_cache_entries = config_.l2p_cache_entries;
    if (config_.inject_device_faults ||
        config_.power_loss_per_device_day > 0.0) {
      // Power loss rides the per-device injector so its draws follow the
      // fork-in-id-order discipline; with only power loss requested the
      // other sites keep probability 0 and therefore draw nothing.
      FaultConfig faults = config_.device_faults;
      if (config_.power_loss_per_device_day > 0.0) {
        faults.power_loss = config_.power_loss_per_device_day;
      }
      slot.faults = std::make_shared<FaultInjector>(faults, i);
      ssd_config.faults = slot.faults;
    }
    slot.device = std::make_unique<SsdDevice>(config_.kind, ssd_config);
    AgingConfig aging;
    if (config_.traffic.enabled()) {
      // Tenant skew reaches flash through the driver's address stream: the
      // zipfian-hot fraction of oPage writes lands on a hot subset of live
      // mDisks at the tenant template's theta.
      aging.zipfian_fraction = config_.traffic.device_zipfian_fraction;
      aging.zipfian_theta = config_.traffic.tenant.zipf_theta;
    }
    slot.driver =
        std::make_unique<AgingDriver>(slot.device.get(), driver_seed, aging);
    if (config_.scrub_opages_per_day > 0) {
      // 4th fork per device, still in device-ID order. Disabled scrub forks
      // nothing, keeping every pre-existing stream byte-identical.
      slot.scrub_rng = fleet_rng.Fork();
      // Staggered start: without it every device scrubs the same mDisk the
      // same day and detection clumps artificially.
      slot.scrub_cursor.major =
          slot.scrub_rng.UniformU64(slot.device->total_minidisks());
    }
    initial_capacity_ += slot.device->live_capacity_bytes();
    const uint64_t per_device_opages =
        slot.device->initial_capacity_bytes() / config_.geometry.opage_bytes;
    const double imbalance =
        config_.dwpd_sigma > 0.0
            ? slot.rng.LogNormal(0.0, config_.dwpd_sigma)
            : 1.0;
    slot.writes_per_day = static_cast<uint64_t>(
        config_.dwpd * imbalance * static_cast<double>(per_device_opages));
    if (config_.traffic.enabled()) {
      // 5th fork per device, still in device-ID order; disabled traffic
      // forks nothing, keeping every pre-existing stream byte-identical.
      const uint64_t traffic_seed = fleet_rng.ForkSeed();
      slot.traffic = std::make_unique<TrafficEngine>(
          MakeUniformTraffic(config_.traffic.tenants_per_device,
                             config_.traffic.tenant, traffic_seed,
                             config_.traffic.mixed_arrivals),
          std::max<uint64_t>(1, per_device_opages));
    }
    slots_.push_back(std::move(slot));
  }
}

FleetSnapshot FleetSim::Sample(uint32_t day) const {
  FleetSnapshot snapshot;
  snapshot.day = day;
  for (const DeviceSlot& slot : slots_) {
    if (slot.alive && !slot.device->failed()) {
      ++snapshot.functioning_devices;
      snapshot.capacity_bytes += slot.device->live_capacity_bytes();
    }
    snapshot.cumulative_decommissions +=
        slot.device->manager().decommissioned_total();
    snapshot.cumulative_regenerations +=
        slot.device->manager().regenerated_total();
    snapshot.cumulative_host_writes += slot.device->ftl().stats().host_writes;
  }
  return snapshot;
}

void FleetSim::StepDevice(DeviceSlot& slot, uint32_t day,
                          double daily_failure, uint64_t scrub_budget,
                          uint32_t restart_days,
                          const FleetQueueConfig& queue,
                          const FleetDomainConfig& domain,
                          const FleetDomainSchedule* schedule, size_t shard,
                          ShardedCounter* steps, ShardedCounter* opages) {
  if (slot.dark) {
    // Dark from a transient power loss: powered off, so no I/O and no RNG
    // draws — the device's streams stay frozen until the restart day, which
    // keeps outage schedules bit-identical at any `threads`.
    if (day < slot.dark_until_day) {
      return;
    }
    slot.dark = false;
    if (slot.device->Restart().ok()) {
      ++slot.restarts;
    } else {
      // Journal replay failed (or the outage was upgraded to a brick while
      // dark): the device never comes back.
      ++slot.restart_failures;
      slot.alive = false;
      return;
    }
  }
  if (!slot.alive || slot.device->failed()) {
    slot.alive = false;
    return;
  }
  if (schedule != nullptr) {
    // Correlated domain events, from the precomputed calendar — zero RNG
    // draws on the triggered day, so schedules stay bit-identical at any
    // thread count and under either engine. The slot-local cursors skip days
    // missed while the device was dark or dead (an outage cannot re-fire).
    if (slot.rack < schedule->rack_power_days.size()) {
      const std::vector<uint32_t>& days =
          schedule->rack_power_days[slot.rack];
      while (slot.rack_event_cursor < days.size() &&
             days[slot.rack_event_cursor] < day) {
        ++slot.rack_event_cursor;
      }
      if (slot.rack_event_cursor < days.size() &&
          days[slot.rack_event_cursor] == day) {
        // Rack power pulled: every device in the rack crashes this same
        // simulated day and stays dark until rack power is restored.
        ++slot.rack_event_cursor;
        slot.device->Crash(SsdDevice::CrashKind::kPowerLoss);
        slot.dark = true;
        slot.dark_until_day = day + domain.rack_restart_days;
        ++slot.rack_crashes;
        ++slot.power_losses;
        return;
      }
    }
    if (slot.cohort < schedule->cohort_wave_days.size()) {
      const std::vector<uint32_t>& days =
          schedule->cohort_wave_days[slot.cohort];
      while (slot.cohort_wave_cursor < days.size() &&
             days[slot.cohort_wave_cursor] < day) {
        ++slot.cohort_wave_cursor;
      }
      if (slot.cohort_wave_cursor < days.size() &&
          days[slot.cohort_wave_cursor] == day) {
        ++slot.cohort_wave_cursor;
        const uint32_t span = std::max(1u, domain.cohort_unavailable_days);
        slot.paused_until_day = std::max(slot.paused_until_day, day + span);
      }
    }
    if (day < slot.paused_until_day) {
      // Cohort-unavailability wave: the device pauses (no I/O, no draws, no
      // crash) — its streams stay frozen exactly like a dark day's.
      ++slot.cohort_pause_days;
      return;
    }
  }
  if (slot.rng.Bernoulli(daily_failure)) {
    // Random infant/controller failure, independent of wear.
    slot.random_failure = true;
    slot.alive = false;
    return;
  }
  if (slot.faults != nullptr && slot.faults->LosesPower()) {
    // Rack power pulled: the device goes dark silently for `restart_days`;
    // the rest of this day (writes, scrub) is lost to the outage.
    slot.device->Crash(SsdDevice::CrashKind::kPowerLoss);
    slot.dark = true;
    slot.dark_until_day = day + restart_days;
    ++slot.power_losses;
    return;
  }
  // Traffic-driven fleets take the day's write demand from the slot's
  // tenant engine (variable: diurnal swings, bursts, churn); flat fleets
  // keep the fixed dwpd-derived budget. Only days that reach this point
  // advance the engine, so lockstep and event scheduling — which step the
  // same alive-day sequence — see identical demand streams.
  uint64_t day_writes = slot.traffic != nullptr
                            ? slot.traffic->DayWriteDemand(day)
                            : slot.writes_per_day;
  if (queue.enabled()) {
    // Admission control: the day's demand joins the backlog (bounded —
    // overflow is shed, never written) and the service capacity decides how
    // much actually reaches flash today. Pure slot-local arithmetic, no RNG,
    // so both engines at any thread count agree bit for bit.
    uint64_t admitted = day_writes;
    if (queue.queue_opages > 0) {
      const uint64_t room = queue.queue_opages - std::min(
          queue.queue_opages, slot.queue_backlog_opages);
      admitted = std::min(admitted, room);
    }
    slot.queue_shed_opages += day_writes - admitted;
    slot.queue_admitted_opages += admitted;
    slot.queue_backlog_opages += admitted;
    slot.queue_backlog_peak =
        std::max(slot.queue_backlog_peak, slot.queue_backlog_opages);
    const uint64_t served =
        std::min(slot.queue_backlog_opages, queue.service_opages_per_day);
    slot.queue_backlog_opages -= served;
    slot.queue_served_opages += served;
    day_writes = served;
  }
  AgingResult result = slot.driver->WriteOPages(day_writes);
  if (result.device_failed) {
    slot.alive = false;
  }
  if (scrub_budget > 0 && slot.alive && !slot.device->failed()) {
    ScrubDevice(slot, scrub_budget);
    if (slot.device->failed()) {
      // Scrub wears flash too: the day's reads (or repair writes) can push
      // a near-dead device over the edge, same as foreground traffic.
      slot.alive = false;
    }
  }
  if (domain.drain_enabled() && slot.alive && !slot.device->failed() &&
      slot.device->HealthScore(domain.drain_pec_horizon) <=
          domain.drain_health_threshold) {
    // Proactive health-driven retirement: the health score crossed the
    // threshold, so the device is taken out of service *before* it bricks
    // and its surviving data is migrated off (modeled as a capacity-sized
    // bulk move — the fleet has no chunk map, the clusters do the real I/O
    // variant). Pure read + slot state, zero RNG draws.
    slot.drain_migrated_bytes = slot.device->live_capacity_bytes();
    slot.drained = true;
    slot.alive = false;
  }
  // Telemetry counting touches only this slot's shard; null when detached.
  if (steps != nullptr) {
    steps->Increment(shard);
  }
  if (opages != nullptr) {
    opages->Add(shard, result.opages_written);
  }
}

void FleetSim::ScrubDevice(DeviceSlot& slot, uint64_t budget) {
  SsdDevice& device = *slot.device;
  const uint64_t mdisks = device.total_minidisks();
  const uint64_t msize = device.msize_opages();
  if (mdisks == 0 || msize == 0) {
    return;
  }
  slot.scrub_cursor.Normalize(mdisks, msize);
  uint64_t reads = 0;
  // Dead mDisks cost no budget; bound consecutive skips so a mostly-
  // decommissioned device cannot spin.
  uint64_t skipped = 0;
  while (reads < budget && skipped <= mdisks && !device.failed()) {
    const MinidiskId mdisk = static_cast<MinidiskId>(slot.scrub_cursor.major);
    const MinidiskState mstate = device.manager().minidisk(mdisk).state;
    if (mstate != MinidiskState::kLive && mstate != MinidiskState::kDraining) {
      ++skipped;
      if (slot.scrub_cursor.SkipMajor(mdisks)) {
        ++slot.scrub_passes;
      }
      continue;
    }
    skipped = 0;
    const uint64_t lba = slot.scrub_cursor.minor;
    auto read = device.Read(mdisk, lba);
    ++reads;
    ++slot.scrub_reads;
    // Fold the FTL's silent-corruption counter delta: scrub reads are the
    // only host reads the fleet issues, so over a run the summed deltas
    // equal the injector's kReadCorrupt count exactly.
    const uint64_t now = device.ftl().stats().silent_corrupt_fpage_reads;
    const uint64_t corrupt = now - slot.observed_silent_corrupt;
    slot.observed_silent_corrupt = now;
    if (corrupt > 0) {
      slot.scrub_detected += corrupt;
      // Repair in place: rewrite the oPage so future reads see freshly
      // programmed flash (content restored from host-level redundancy in a
      // real deployment).
      if (read.ok() && device.Write(mdisk, lba).ok()) {
        ++slot.scrub_repairs;
      }
    } else if (!read.ok() &&
               read.status().code() == StatusCode::kDataLoss) {
      if (device.Write(mdisk, lba).ok()) {
        ++slot.scrub_repairs;
      }
    }
    if (slot.scrub_cursor.Advance(mdisks, msize)) {
      ++slot.scrub_passes;
    }
  }
}

std::vector<FleetSnapshot> FleetSim::Run() {
  return config_.scheduler == FleetSchedulerMode::kLockstep
             ? RunLockstep()
             : RunEventDriven();
}

double FleetSim::PrepareRun() {
  snapshots_.clear();
  snapshots_.push_back(Sample(0));
  scheduler_stats_ = FleetSchedulerStats{};
  if (telemetry_attached()) {
    // One shard per slot: worker threads never share a shard, and the owner
    // drains them at the day barrier.
    day_steps_ = std::make_unique<ShardedCounter>(slots_.size());
    day_opages_ = std::make_unique<ShardedCounter>(slots_.size());
    RegisterSamplerProbes();
    if (config_.sampler != nullptr) {
      config_.sampler->Sample(0.0);
    }
    if (config_.trace != nullptr) {
      config_.trace->NameLane(config_.trace_tid,
                              std::string("fleet:") +
                                  std::string(SsdKindName(config_.kind)));
    }
  }
  // Convert the annual failure rate to a per-day hazard.
  return 1.0 - std::pow(1.0 - config_.afr, 1.0 / 365.0);
}

std::vector<FleetSnapshot> FleetSim::RunLockstep() {
  const double daily_failure = PrepareRun();
  // Null unless a domain feature is on: the disabled path costs nothing and
  // provably touches no slot state.
  const FleetDomainSchedule* schedule =
      config_.domain.enabled() ? &domain_schedule_ : nullptr;
  // Each worker owns a disjoint slice of slots between day barriers; the
  // sampling/merge below runs on this thread after the barrier, in device-ID
  // order. With threads == 1 the pool executes inline (a plain loop).
  ThreadPool pool(config_.threads);
  std::vector<uint8_t> alive_before;
  for (uint32_t day = 1; day <= config_.days; ++day) {
    if (telemetry_attached()) {
      alive_before.resize(slots_.size());
      for (size_t i = 0; i < slots_.size(); ++i) {
        alive_before[i] = slots_[i].alive ? 1 : 0;
      }
    }
    pool.ParallelFor(slots_.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        StepDevice(slots_[i], day, daily_failure,
                   config_.scrub_opages_per_day,
                   config_.power_loss_restart_days, config_.queue,
                   config_.domain, schedule, i,
                   day_steps_.get(), day_opages_.get());
      }
    });
    if (telemetry_attached()) {
      RecordDayTelemetry(day, alive_before);
    }
    uint32_t alive = 0;
    for (const DeviceSlot& slot : slots_) {
      alive += slot.alive ? 1 : 0;
    }
    if (day % config_.sample_every_days == 0 || alive == 0 ||
        day == config_.days) {
      snapshots_.push_back(Sample(day));
    }
    if (alive == 0) {
      break;
    }
  }
  if (config_.metrics != nullptr) {
    CollectMetrics(*config_.metrics);
  }
  return snapshots_;
}

void FleetSim::ExecuteEvent(DeviceSlot& slot, const FleetEvent& event,
                            uint32_t window_end, uint32_t horizon_days,
                            double daily_failure, uint64_t scrub_budget,
                            uint32_t restart_days,
                            const FleetQueueConfig& queue,
                            const FleetDomainConfig& domain,
                            const FleetDomainSchedule* schedule,
                            ShardedCounter* steps, ShardedCounter* opages) {
  const size_t shard = event.device;
  uint32_t day = event.day;
  while (day <= window_end) {
    StepDevice(slot, day, daily_failure, scrub_budget, restart_days, queue,
               domain, schedule, shard, steps, opages);
    ++slot.days_stepped;
    if (!slot.alive) {
      // Terminal: dead devices post no further events, so the rest of the
      // horizon costs this slot zero work (lockstep keeps visiting it).
      slot.death_day = day;
      return;
    }
    if (slot.dark) {
      // Power pulled this day. Lockstep burns a draw-free no-op call per
      // dark day; jump straight to the restart day instead. With
      // restart_days == 0 the restart still lands on the *next* day, exactly
      // as lockstep's `day < dark_until_day` guard resolves it.
      const uint32_t wake = std::max(day + 1, slot.dark_until_day);
      slot.dark_days_skipped += wake - (day + 1);
      if (wake > window_end) {
        slot.next_event =
            FleetEvent{wake, event.device, FleetEventKind::kRestart};
        slot.has_next_event = true;
        return;
      }
      day = wake;
      continue;
    }
    ++day;
  }
  if (window_end < horizon_days) {
    slot.next_event =
        FleetEvent{window_end + 1, event.device, FleetEventKind::kStep};
    slot.has_next_event = true;
  }
}

std::vector<FleetSnapshot> FleetSim::RunEventDriven() {
  const double daily_failure = PrepareRun();
  const FleetDomainSchedule* schedule =
      config_.domain.enabled() ? &domain_schedule_ : nullptr;
  const bool telemetry = telemetry_attached();
  const uint32_t sample_every = std::max(1u, config_.sample_every_days);
  if (slots_.empty()) {
    // Degenerate fleet: lockstep's day-1 pass sees alive == 0 immediately.
    if (config_.days >= 1) {
      snapshots_.push_back(Sample(1));
    }
    if (config_.metrics != nullptr) {
      CollectMetrics(*config_.metrics);
    }
    return snapshots_;
  }
  ThreadPool pool(config_.threads);

  // Every device posts its first event; from here on a slot is visited only
  // when its event comes due. Dead devices post nothing, dark devices post
  // their restart day — the jumps that make idle days free.
  FleetEventQueue queue;
  uint32_t alive = 0;
  for (uint32_t i = 0; i < static_cast<uint32_t>(slots_.size()); ++i) {
    queue.Post(FleetEvent{1, i, FleetEventKind::kStep});
    ++alive;
  }
  // Observation stride: with telemetry attached every day is a drain
  // boundary (daily sampler/trace semantics); detached runs only need to
  // synchronize at snapshot days.
  const uint32_t stride = telemetry ? 1 : sample_every;

  std::vector<uint8_t> alive_before;
  const auto capture_alive = [&] {
    alive_before.resize(slots_.size());
    for (size_t i = 0; i < slots_.size(); ++i) {
      alive_before[i] = slots_[i].alive ? 1 : 0;
    }
  };

  uint32_t day_cursor = 0;
  uint32_t last_death_day = 0;
  while (day_cursor < config_.days && alive > 0) {
    const uint32_t window_end = static_cast<uint32_t>(std::min<uint64_t>(
        config_.days, (static_cast<uint64_t>(day_cursor) / stride + 1) *
                          static_cast<uint64_t>(stride)));
    const bool events_due = !queue.empty() && queue.NextDay() <= window_end;
    if (!events_due) {
      // Idle window: every device is dead, or dark beyond this window.
      // No draws and no state changes happen — only the observations
      // lockstep would also make (daily telemetry, periodic snapshots).
      ++scheduler_stats_.idle_windows;
      if (telemetry) {
        capture_alive();
        RecordDayTelemetry(window_end, alive_before);
      }
      if (window_end % sample_every == 0 || window_end == config_.days) {
        snapshots_.push_back(Sample(window_end));
      }
      day_cursor = window_end;
      continue;
    }

    if (telemetry) {
      capture_alive();
    }
    const std::vector<FleetEvent> batch = queue.PopThrough(window_end);
    ++scheduler_stats_.batches;
    scheduler_stats_.events += batch.size();
    // Same-day event batches execute on the pool: each event touches only
    // its own slot (plus that slot's counter shard), and follow-up events
    // are posted by the owner below in canonical batch order, so the run is
    // bit-identical at any thread count.
    pool.ParallelFor(batch.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        ExecuteEvent(slots_[batch[i].device], batch[i], window_end,
                     config_.days, daily_failure,
                     config_.scrub_opages_per_day,
                     config_.power_loss_restart_days, config_.queue,
                     config_.domain, schedule,
                     day_steps_.get(), day_opages_.get());
      }
    });
    for (const FleetEvent& event : batch) {
      DeviceSlot& slot = slots_[event.device];
      if (slot.has_next_event) {
        queue.Post(slot.next_event);
        slot.has_next_event = false;
      } else if (!slot.alive) {
        --alive;
        last_death_day = std::max(last_death_day, slot.death_day);
      }
    }
    if (telemetry) {
      RecordDayTelemetry(window_end, alive_before);
    }
    uint32_t sample_day = window_end;
    if (alive == 0) {
      // Exact lockstep early-stop semantics: the reported day is the day the
      // last device died, which can precede the window barrier — stepping
      // past it was all dead-device no-ops, so state already matches.
      sample_day = last_death_day;
    }
    if (sample_day % sample_every == 0 || alive == 0 ||
        sample_day == config_.days) {
      snapshots_.push_back(Sample(sample_day));
    }
    day_cursor = window_end;
  }
  if (config_.metrics != nullptr) {
    CollectMetrics(*config_.metrics);
  }
  return snapshots_;
}

FleetSchedulerStats FleetSim::scheduler_stats() const {
  FleetSchedulerStats stats = scheduler_stats_;
  for (const DeviceSlot& slot : slots_) {
    stats.days_stepped += slot.days_stepped;
    stats.dark_days_skipped += slot.dark_days_skipped;
  }
  return stats;
}

uint64_t FleetSim::DeviceDigest(uint32_t device) const {
  const DeviceSlot& slot = slots_[device];
  uint64_t digest = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&digest](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      digest ^= (value >> (byte * 8)) & 0xff;
      digest *= 0x100000001b3ULL;
    }
  };
  mix(slot.device->ftl().StateDigest());
  mix(slot.alive ? 1 : 0);
  mix(slot.dark ? 1 : 0);
  mix(slot.random_failure ? 1 : 0);
  mix(slot.dark_until_day);
  mix(slot.power_losses);
  mix(slot.restarts);
  mix(slot.restart_failures);
  mix(slot.scrub_reads);
  mix(slot.scrub_detected);
  mix(slot.scrub_repairs);
  mix(slot.scrub_passes);
  mix(slot.device->live_capacity_bytes());
  mix(slot.device->manager().decommissioned_total());
  mix(slot.device->manager().regenerated_total());
  mix(slot.device->ftl().stats().host_writes);
  if (slot.traffic != nullptr) {
    // Mixed only when traffic is enabled so disabled-fleet digests stay
    // byte-identical to pre-traffic builds.
    mix(slot.traffic->StreamDigest());
    mix(slot.traffic->ops_emitted());
    mix(slot.traffic->writes_emitted());
  }
  if (config_.queue.enabled()) {
    // Same rule as traffic: the admission ledger joins the digest only when
    // the queue exists, keeping disabled-fleet digests byte-identical.
    mix(slot.queue_backlog_opages);
    mix(slot.queue_admitted_opages);
    mix(slot.queue_served_opages);
    mix(slot.queue_shed_opages);
    mix(slot.queue_backlog_peak);
  }
  if (config_.domain.enabled()) {
    // Same rule again: the failure-domain ledger joins only when a domain
    // feature is on, keeping pre-domain digests byte-identical.
    mix(slot.rack_crashes);
    mix(slot.cohort_pause_days);
    mix(slot.paused_until_day);
    mix(slot.drained ? 1 : 0);
    mix(slot.drain_migrated_bytes);
  }
  return digest;
}

std::vector<uint64_t> FleetSim::DeviceDigests() const {
  std::vector<uint64_t> digests;
  digests.reserve(slots_.size());
  for (uint32_t i = 0; i < static_cast<uint32_t>(slots_.size()); ++i) {
    digests.push_back(DeviceDigest(i));
  }
  return digests;
}

void FleetSim::RegisterSamplerProbes() {
  if (config_.sampler == nullptr) {
    return;
  }
  TimeSeriesSampler& sampler = *config_.sampler;
  sampler.AddProbe("fleet.functioning_devices", [this] {
    uint32_t alive = 0;
    for (const DeviceSlot& slot : slots_) {
      alive += (slot.alive && !slot.device->failed()) ? 1 : 0;
    }
    return static_cast<double>(alive);
  });
  sampler.AddProbe("fleet.capacity_bytes", [this] {
    uint64_t capacity = 0;
    for (const DeviceSlot& slot : slots_) {
      if (slot.alive && !slot.device->failed()) {
        capacity += slot.device->live_capacity_bytes();
      }
    }
    return static_cast<double>(capacity);
  });
  sampler.AddProbe("fleet.live_minidisks", [this] {
    uint64_t live = 0;
    for (const DeviceSlot& slot : slots_) {
      live += slot.device->live_minidisks();
    }
    return static_cast<double>(live);
  });
  sampler.AddProbe("fleet.decommissioned_total", [this] {
    uint64_t total = 0;
    for (const DeviceSlot& slot : slots_) {
      total += slot.device->manager().decommissioned_total();
    }
    return static_cast<double>(total);
  });
  // Revived capacity: mDisks minted by RegenS, in bytes.
  sampler.AddProbe("fleet.regenerated_bytes", [this] {
    uint64_t total = 0;
    for (const DeviceSlot& slot : slots_) {
      total += slot.device->manager().regenerated_total() *
               slot.device->msize_opages() *
               config_.geometry.opage_bytes;
    }
    return static_cast<double>(total);
  });
  sampler.AddProbe("fleet.pending_event_depth", [this] {
    return static_cast<double>(TotalPendingEventDepth());
  });
  sampler.AddProbe("fleet.faults_injected_total", [this] {
    return static_cast<double>(TotalFaultsInjected());
  });
  // Scrub probes only exist when scrub runs: a disabled scrubber must leave
  // sampler CSVs (and thus every existing bench artifact) byte-identical.
  if (config_.scrub_opages_per_day > 0) {
    sampler.AddProbe("fleet.scrub_reads_total", [this] {
      return static_cast<double>(scrub_reads_total());
    });
    sampler.AddProbe("fleet.scrub_detected_total", [this] {
      return static_cast<double>(scrub_detected_total());
    });
    sampler.AddProbe("fleet.scrub_repairs_total", [this] {
      return static_cast<double>(scrub_repairs_total());
    });
  }
  // Queue probes only exist when admission control runs, for the same
  // byte-identity reason as the scrub probes above.
  if (config_.queue.enabled()) {
    sampler.AddProbe("fleet.sched.backlog_opages", [this] {
      return static_cast<double>(queue_backlog_total());
    });
    sampler.AddProbe("fleet.sched.shed_opages_total", [this] {
      return static_cast<double>(queue_shed_total());
    });
  }
  // Domain probes only exist when the corresponding domain feature is on,
  // for the same byte-identity reason as the scrub probes above.
  if (config_.domain.rack_events_enabled()) {
    sampler.AddProbe("fleet.domain.rack_crashes_total", [this] {
      return static_cast<double>(rack_crashes_total());
    });
  }
  if (config_.domain.cohort_waves_enabled()) {
    sampler.AddProbe("fleet.domain.cohort_pause_days_total", [this] {
      return static_cast<double>(cohort_pause_days_total());
    });
  }
  if (config_.domain.drain_enabled()) {
    sampler.AddProbe("fleet.drain.drained_devices", [this] {
      return static_cast<double>(drained_devices());
    });
  }
  // Power-loss probes only exist when power loss is injected, for the same
  // byte-identity reason as the scrub probes above.
  if (config_.power_loss_per_device_day > 0.0) {
    sampler.AddProbe("fleet.dark_devices", [this] {
      return static_cast<double>(dark_devices());
    });
    sampler.AddProbe("fleet.power_losses_total", [this] {
      return static_cast<double>(power_losses_total());
    });
    sampler.AddProbe("fleet.restarts_total", [this] {
      return static_cast<double>(restarts_total());
    });
  }
}

void FleetSim::RecordDayTelemetry(uint32_t day,
                                  const std::vector<uint8_t>& alive_before) {
  // Owner thread, after the day barrier: drain the per-slot shards into the
  // cumulative totals (shard order, so totals are reproducible bit for bit).
  device_days_stepped_ += day_steps_->Total();
  host_opages_written_ += day_opages_->Total();
  day_steps_->Reset();
  day_opages_->Reset();
  if (config_.trace != nullptr) {
    const uint64_t start_us = static_cast<uint64_t>(day - 1) * kTraceUsPerDay;
    config_.trace->Span("day " + std::to_string(day), "fleet", start_us,
                        kTraceUsPerDay, config_.trace_tid);
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (alive_before[i] != 0 && !slots_[i].alive) {
        config_.trace->Instant(
            (slots_[i].random_failure ? "device_death:random:"
             : slots_[i].drained     ? "device_death:drained:"
                                      : "device_death:wear:") +
                std::to_string(i),
            "fleet", start_us + kTraceUsPerDay, config_.trace_tid);
      }
    }
    uint32_t alive = 0;
    uint64_t capacity = 0;
    for (const DeviceSlot& slot : slots_) {
      if (slot.alive && !slot.device->failed()) {
        ++alive;
        capacity += slot.device->live_capacity_bytes();
      }
    }
    config_.trace->CounterSample("functioning_devices",
                                 start_us + kTraceUsPerDay,
                                 static_cast<double>(alive),
                                 config_.trace_tid);
    config_.trace->CounterSample("capacity_bytes", start_us + kTraceUsPerDay,
                                 static_cast<double>(capacity),
                                 config_.trace_tid);
  }
  if (config_.sampler != nullptr) {
    config_.sampler->Sample(static_cast<double>(day));
  }
}

uint64_t FleetSim::TotalPendingEventDepth() const {
  uint64_t depth = 0;
  for (const DeviceSlot& slot : slots_) {
    depth += slot.device->pending_event_depth();
  }
  return depth;
}

uint64_t FleetSim::TotalFaultsInjected() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    if (slot.device->faults() != nullptr) {
      total += slot.device->faults()->stats().total();
    }
  }
  return total;
}

void FleetSim::CollectMetrics(MetricRegistry& registry,
                              const std::string& prefix) const {
  registry.GetGauge(prefix + "fleet.devices")
      .Add(static_cast<double>(config_.devices));
  uint32_t alive = 0;
  uint64_t capacity = 0;
  uint64_t random_failures = 0;
  uint64_t wear_failures = 0;
  for (const DeviceSlot& slot : slots_) {
    const bool functioning = slot.alive && !slot.device->failed();
    if (functioning) {
      ++alive;
      capacity += slot.device->live_capacity_bytes();
    } else if (slot.random_failure) {
      ++random_failures;
    } else if (slot.drained) {
      // Proactively retired, not a wear death — counted in the gated
      // fleet.drain.* block below. slot.drained is only ever set when the
      // drain knob is on, so wear_failures is unchanged at defaults.
    } else {
      ++wear_failures;
    }
  }
  registry.GetGauge(prefix + "fleet.functioning_devices")
      .Add(static_cast<double>(alive));
  registry.GetGauge(prefix + "fleet.capacity_bytes")
      .Add(static_cast<double>(capacity));
  registry.GetGauge(prefix + "fleet.initial_capacity_bytes")
      .Add(static_cast<double>(initial_capacity_));
  registry.GetCounter(prefix + "fleet.random_failures").Add(random_failures);
  registry.GetCounter(prefix + "fleet.wear_failures").Add(wear_failures);
  registry.GetCounter(prefix + "fleet.device_days_stepped")
      .Add(device_days_stepped_);
  registry.GetCounter(prefix + "fleet.host_opages_written")
      .Add(host_opages_written_);
  registry.GetGauge(prefix + "fleet.pending_event_depth")
      .Add(static_cast<double>(TotalPendingEventDepth()));
  // Scrub counters only exist when scrub runs, so a disabled scrubber leaves
  // metric dumps byte-identical to a scrub-free build.
  if (config_.scrub_opages_per_day > 0) {
    registry.GetCounter(prefix + "fleet.scrub.opage_reads")
        .Add(scrub_reads_total());
    registry.GetCounter(prefix + "fleet.scrub.detected")
        .Add(scrub_detected_total());
    registry.GetCounter(prefix + "fleet.scrub.repairs")
        .Add(scrub_repairs_total());
    registry.GetCounter(prefix + "fleet.scrub.passes")
        .Add(scrub_passes_total());
  }
  // Scheduler counters exist only in event-driven mode, so lockstep runs —
  // the golden reference — keep their metric dumps byte-identical to the
  // pre-scheduler output.
  if (config_.scheduler == FleetSchedulerMode::kEventDriven) {
    const FleetSchedulerStats sched = scheduler_stats();
    registry.GetCounter(prefix + "fleet.scheduler.batches").Add(sched.batches);
    registry.GetCounter(prefix + "fleet.scheduler.events").Add(sched.events);
    registry.GetCounter(prefix + "fleet.scheduler.idle_windows")
        .Add(sched.idle_windows);
    registry.GetCounter(prefix + "fleet.scheduler.days_stepped")
        .Add(sched.days_stepped);
    registry.GetCounter(prefix + "fleet.scheduler.dark_days_skipped")
        .Add(sched.dark_days_skipped);
  }
  // Traffic counters follow the scrub rule: absent unless the traffic
  // engine is enabled, keeping flat-dwpd metric dumps byte-identical.
  if (config_.traffic.enabled()) {
    uint64_t traffic_ops = 0;
    uint64_t traffic_reads = 0;
    uint64_t traffic_writes = 0;
    for (const DeviceSlot& slot : slots_) {
      traffic_ops += slot.traffic->ops_emitted();
      traffic_reads += slot.traffic->reads_emitted();
      traffic_writes += slot.traffic->writes_emitted();
    }
    registry.GetCounter(prefix + "fleet.traffic.ops").Add(traffic_ops);
    registry.GetCounter(prefix + "fleet.traffic.reads").Add(traffic_reads);
    registry.GetCounter(prefix + "fleet.traffic.writes").Add(traffic_writes);
    registry.GetGauge(prefix + "fleet.traffic.tenants_per_device")
        .Add(static_cast<double>(config_.traffic.tenants_per_device));
  }
  // Admission-queue counters follow the scrub rule: absent unless enabled,
  // keeping queue-free metric dumps byte-identical.
  if (config_.queue.enabled()) {
    registry.GetCounter(prefix + "fleet.sched.admitted_opages")
        .Add(queue_admitted_total());
    registry.GetCounter(prefix + "fleet.sched.served_opages")
        .Add(queue_served_total());
    registry.GetCounter(prefix + "fleet.sched.shed_opages")
        .Add(queue_shed_total());
    registry.GetGauge(prefix + "fleet.sched.backlog_opages")
        .Add(static_cast<double>(queue_backlog_total()));
    uint64_t backlog_peak = 0;
    for (const DeviceSlot& slot : slots_) {
      backlog_peak = std::max(backlog_peak, slot.queue_backlog_peak);
    }
    registry.GetGauge(prefix + "fleet.sched.backlog_peak_opages")
        .Add(static_cast<double>(backlog_peak));
  }
  // Failure-domain counters follow the same rule: each block is absent
  // unless its domain feature is on, keeping domain-free metric dumps
  // byte-identical.
  if (config_.domain.rack_events_enabled()) {
    uint64_t scheduled = 0;
    for (const auto& days : domain_schedule_.rack_power_days) {
      scheduled += days.size();
    }
    registry.GetGauge(prefix + "fleet.domain.racks")
        .Add(static_cast<double>(domain_schedule_.rack_power_days.size()));
    registry.GetCounter(prefix + "fleet.domain.rack_events_scheduled")
        .Add(scheduled);
    registry.GetCounter(prefix + "fleet.domain.rack_crashes")
        .Add(rack_crashes_total());
  }
  if (config_.domain.cohort_wear_enabled()) {
    registry.GetGauge(prefix + "fleet.domain.batch_cohorts")
        .Add(static_cast<double>(config_.domain.batch_cohorts));
  }
  if (config_.domain.cohort_waves_enabled()) {
    uint64_t scheduled = 0;
    for (const auto& days : domain_schedule_.cohort_wave_days) {
      scheduled += days.size();
    }
    registry.GetCounter(prefix + "fleet.domain.cohort_waves_scheduled")
        .Add(scheduled);
    registry.GetCounter(prefix + "fleet.domain.cohort_pause_days")
        .Add(cohort_pause_days_total());
  }
  if (config_.domain.drain_enabled()) {
    registry.GetCounter(prefix + "fleet.drain.devices_drained")
        .Add(drained_devices());
    registry.GetCounter(prefix + "fleet.drain.migrated_bytes")
        .Add(drain_migrated_bytes_total());
  }
  // Power-loss counters follow the same rule: absent unless injected.
  if (config_.power_loss_per_device_day > 0.0) {
    registry.GetCounter(prefix + "fleet.power_loss.events")
        .Add(power_losses_total());
    registry.GetCounter(prefix + "fleet.power_loss.restarts")
        .Add(restarts_total());
    registry.GetCounter(prefix + "fleet.power_loss.restart_failures")
        .Add(restart_failures_total());
    registry.GetGauge(prefix + "fleet.power_loss.dark_devices")
        .Add(static_cast<double>(dark_devices()));
  }
  for (const DeviceSlot& slot : slots_) {
    slot.device->CollectMetrics(registry, prefix);
  }
}

uint64_t FleetSim::scrub_reads_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.scrub_reads;
  }
  return total;
}

uint64_t FleetSim::scrub_detected_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.scrub_detected;
  }
  return total;
}

uint64_t FleetSim::scrub_repairs_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.scrub_repairs;
  }
  return total;
}

uint64_t FleetSim::scrub_passes_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.scrub_passes;
  }
  return total;
}

uint64_t FleetSim::queue_admitted_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.queue_admitted_opages;
  }
  return total;
}

uint64_t FleetSim::queue_served_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.queue_served_opages;
  }
  return total;
}

uint64_t FleetSim::queue_shed_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.queue_shed_opages;
  }
  return total;
}

uint64_t FleetSim::queue_backlog_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.queue_backlog_opages;
  }
  return total;
}

uint64_t FleetSim::rack_crashes_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.rack_crashes;
  }
  return total;
}

uint64_t FleetSim::cohort_pause_days_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.cohort_pause_days;
  }
  return total;
}

uint32_t FleetSim::drained_devices() const {
  uint32_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.drained ? 1 : 0;
  }
  return total;
}

uint64_t FleetSim::drain_migrated_bytes_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.drain_migrated_bytes;
  }
  return total;
}

uint64_t FleetSim::power_losses_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.power_losses;
  }
  return total;
}

uint64_t FleetSim::restarts_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.restarts;
  }
  return total;
}

uint64_t FleetSim::restart_failures_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    total += slot.restart_failures;
  }
  return total;
}

uint32_t FleetSim::dark_devices() const {
  uint32_t dark = 0;
  for (const DeviceSlot& slot : slots_) {
    dark += slot.dark ? 1 : 0;
  }
  return dark;
}

uint64_t FleetSim::read_corrupt_injected_total() const {
  uint64_t total = 0;
  for (const DeviceSlot& slot : slots_) {
    if (slot.device->faults() != nullptr) {
      total += slot.device->faults()->stats().count(FaultSite::kReadCorrupt);
    }
  }
  return total;
}

std::optional<uint32_t> FleetSim::DayDevicesBelow(double fraction) const {
  const double threshold = fraction * static_cast<double>(config_.devices);
  for (const FleetSnapshot& snapshot : snapshots_) {
    if (static_cast<double>(snapshot.functioning_devices) < threshold) {
      return snapshot.day;
    }
  }
  return std::nullopt;
}

std::optional<uint32_t> FleetSim::DayCapacityBelow(double fraction) const {
  const double threshold =
      fraction * static_cast<double>(initial_capacity_);
  for (const FleetSnapshot& snapshot : snapshots_) {
    if (static_cast<double>(snapshot.capacity_bytes) < threshold) {
      return snapshot.day;
    }
  }
  return std::nullopt;
}

}  // namespace salamander
