// Deterministic discrete-event core for the fleet simulator.
//
// Each device posts its next interesting event — the next day it must touch
// the global timeline (daily write/AFR step due, power restored after an
// outage) — into a priority queue keyed by (day, device_id, event_kind).
// The simulation then advances time in jumps: days on which every device is
// dead or dark cost zero stepping work, and a batch of same-day events can
// execute on a worker pool because devices own disjoint state and forked RNG
// streams (the PR-1 discipline).
//
// Determinism contract: the queue's ordering is a *total* order over the
// event key, so the drain order never depends on insertion order, heap
// internals, or thread scheduling. Two runs that post the same event set —
// in any order, at any `--threads` — observe the same canonical sequence.
#ifndef SALAMANDER_FLEET_EVENT_SCHEDULER_H_
#define SALAMANDER_FLEET_EVENT_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace salamander {

// Why a device wakes. The kind is the last tie-break key, so if a device
// ever held two events on one day the restart would fire after the step —
// in practice the fleet keeps at most one pending event per device.
enum class FleetEventKind : uint8_t {
  kStep = 0,     // daily stepping due (writes, AFR/power draws, scrub)
  kRestart = 1,  // power restored: attempt journal-replay restart
};

struct FleetEvent {
  uint32_t day = 0;     // simulated day the event fires on
  uint32_t device = 0;  // fleet slot index
  FleetEventKind kind = FleetEventKind::kStep;

  friend bool operator==(const FleetEvent&, const FleetEvent&) = default;
};

// Canonical event order: (day, device, kind), ascending.
inline bool EventBefore(const FleetEvent& a, const FleetEvent& b) {
  if (a.day != b.day) {
    return a.day < b.day;
  }
  if (a.device != b.device) {
    return a.device < b.device;
  }
  return static_cast<uint8_t>(a.kind) < static_cast<uint8_t>(b.kind);
}

// Min-heap of fleet events in canonical order. Single-threaded: only the
// owner thread posts and pops; workers hand their follow-up events back to
// the owner, which posts them in slot order at the batch barrier.
class FleetEventQueue {
 public:
  void Post(const FleetEvent& event) { heap_.push(event); }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Earliest pending event day; queue must be non-empty.
  uint32_t NextDay() const { return heap_.top().day; }

  // Removes and returns every event with day <= through, in canonical
  // (day, device, kind) order. Empty when nothing is due.
  std::vector<FleetEvent> PopThrough(uint32_t through);

 private:
  struct EventAfter {
    bool operator()(const FleetEvent& a, const FleetEvent& b) const {
      return EventBefore(b, a);
    }
  };
  std::priority_queue<FleetEvent, std::vector<FleetEvent>, EventAfter> heap_;
};

// Owner-side accounting of what the scheduler did with a run. Device-day
// savings (dead/dark days never stepped) are tracked per slot by the fleet
// sim; these are the queue-level totals.
struct FleetSchedulerStats {
  uint64_t batches = 0;          // parallel dispatch rounds executed
  uint64_t events = 0;           // events popped and executed
  uint64_t idle_windows = 0;     // sync windows with no event due (zero work)
  uint64_t days_stepped = 0;     // device-days actually simulated
  uint64_t dark_days_skipped = 0;  // device-days jumped over while dark
};

}  // namespace salamander

#endif  // SALAMANDER_FLEET_EVENT_SCHEDULER_H_
