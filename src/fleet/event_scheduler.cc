#include "fleet/event_scheduler.h"

namespace salamander {

std::vector<FleetEvent> FleetEventQueue::PopThrough(uint32_t through) {
  std::vector<FleetEvent> batch;
  while (!heap_.empty() && heap_.top().day <= through) {
    batch.push_back(heap_.top());
    heap_.pop();
  }
  return batch;
}

}  // namespace salamander
