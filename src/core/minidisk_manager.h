// Minidisk lifecycle management (paper §3.2–§3.4).
//
// Sits between the host interface and the FTL:
//  * formats a fresh device into N equal mDisks,
//  * routes <mdisk, lba> I/O to FTL logical pages,
//  * after every write, drains FTL tiredness transitions and
//      - decommissions victim mDisks while physical capacity cannot back the
//        logical capacity plus GC reserve (Eq. 2),
//      - regenerates new mDisks when an mDisk-worth of limbo capacity has
//        accumulated (RegenS),
//  * queues kCreated / kDecommissioned events for the host / diFS.
#ifndef SALAMANDER_CORE_MINIDISK_MANAGER_H_
#define SALAMANDER_CORE_MINIDISK_MANAGER_H_

#include <cstdint>
#include <vector>

#include "common/bitmap.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/minidisk.h"
#include "ftl/ftl.h"

namespace salamander {

// How the device picks the victim mDisk when Eq. 2 demands decommissioning.
// The paper leaves this open; these policies are ablated in the benches.
enum class VictimPolicy : uint8_t {
  kLeastValid,  // fewest written LBAs -> least diFS recovery traffic
  kRandom,
  kLowestId,
};

struct MinidiskConfig {
  // mDisk size in oPages; 256 x 4 KiB = the paper's 1 MiB example.
  uint64_t msize_opages = 256;
  // Fraction of raw capacity withheld from mDisks (over-provisioning). The
  // effective reserve is max(op_ratio * raw, FTL GC reserve).
  double op_ratio = 0.07;
  VictimPolicy victim_policy = VictimPolicy::kLeastValid;

  // Grace-period decommissioning (§4.3 future work): victims enter a
  // read-only kDraining state and keep their data until the host calls
  // AckDrain. Off by default (the paper's base design trims immediately).
  bool drain_before_decommission = false;
  // Bound on simultaneously draining mDisks; when exceeded while the device
  // needs space, the oldest drain is force-finished (data reclaimed even
  // without an ack — counted in drains_forced()).
  uint32_t max_draining = 4;
  // Proactive draining: when > 0 (and draining is enabled), capacity that
  // the wear forecast predicts will tire within this fraction of additional
  // P/E cycles is treated as already gone, so grace windows open *before*
  // the deficit materializes. 0 keeps the purely reactive policy.
  double drain_forecast_horizon = 0.0;
  // How often (in host writes) to refresh the O(device) wear forecast.
  uint64_t forecast_interval_writes = 2048;

  uint64_t seed = 1;
};

class MinidiskManager {
 public:
  // Formats the device: carves as many mDisks as the initial usable capacity
  // minus reserve allows, and queues a kCreated event per mDisk.
  MinidiskManager(Ftl* ftl, const MinidiskConfig& config);

  MinidiskManager(const MinidiskManager&) = delete;
  MinidiskManager& operator=(const MinidiskManager&) = delete;

  // ---- Host I/O ---------------------------------------------------------

  // Writes LBA `lba` of mDisk `mdisk`. The write itself succeeds even if the
  // wear it causes decommissions mDisks (possibly this one); the host
  // discovers capacity changes through TakeEvents().
  StatusOr<SimDuration> Write(MinidiskId mdisk, uint64_t lba);

  // Reads LBA `lba` of mDisk `mdisk`. kFailedPrecondition if the mDisk is
  // decommissioned, kNotFound if never written, kDataLoss on uncorrectable
  // flash errors.
  StatusOr<ReadResult> Read(MinidiskId mdisk, uint64_t lba);

  // Reads `count` consecutive LBAs as one large host I/O (see
  // Ftl::ReadRange for the flash-read sharing semantics).
  StatusOr<RangeReadResult> ReadRange(MinidiskId mdisk, uint64_t lba,
                                      uint64_t count);

  // Drains the device's NV write buffer to flash (host flush command).
  Status Flush() { return ftl_->Flush(); }

  // Host acknowledgement that a draining mDisk's data has been safely
  // re-distributed; the device reclaims it. No-op codes: kNotFound for an
  // unknown id, kFailedPrecondition if the mDisk is not draining.
  Status AckDrain(MinidiskId mdisk);

  // Queued mDisk lifecycle notifications (drained in order).
  std::vector<MinidiskEvent> TakeEvents();

  // ---- Introspection ----------------------------------------------------

  uint64_t msize_opages() const { return config_.msize_opages; }
  // mDisks ever created (the paper's N, monotone under RegenS).
  uint32_t total_minidisks() const {
    return static_cast<uint32_t>(minidisks_.size());
  }
  uint32_t live_minidisks() const { return live_minidisks_; }
  bool IsLive(MinidiskId mdisk) const;
  const Minidisk& minidisk(MinidiskId mdisk) const {
    return minidisks_[mdisk];
  }
  // Host-visible capacity: live mDisks x mSize, in bytes.
  uint64_t live_capacity_bytes() const;
  // Written (valid) LBAs in one mDisk.
  uint64_t valid_lbas(MinidiskId mdisk) const { return valid_counts_[mdisk]; }

  uint64_t decommissioned_total() const { return decommissioned_total_; }
  uint64_t regenerated_total() const { return regenerated_total_; }
  uint32_t draining_minidisks() const {
    return static_cast<uint32_t>(draining_.size());
  }
  // Drains reclaimed without a host ack (slack pressure). A nonzero count
  // under gentle workloads indicates the grace window is too small.
  uint64_t drains_forced() const { return drains_forced_; }

  // Runs one round of Eq. 2 maintenance explicitly (normally automatic after
  // each write; exposed for tests and for event-driven hosts).
  void RunCapacityMaintenance();

 private:
  void FormatDevice();
  MinidiskId CreateMinidisk(unsigned tiredness_level);
  // Retires a victim: immediate trim, or kDraining when grace is enabled.
  void Decommission(MinidiskId victim);
  // Trims a draining mDisk's data and completes its decommission.
  void FinishDrain(MinidiskId mdisk, bool forced);
  // Reclaims real capacity now: force-finishes the oldest drain if any,
  // otherwise decommissions a victim immediately (bypassing the grace
  // period). Returns false if nothing could be shed.
  bool ShedCapacityNow();
  void TrimMinidisk(MinidiskId mdisk);
  MinidiskId PickVictim();
  // usable < live+draining logical + reserve  (Eq. 2 with GC headroom)?
  bool CapacityDeficit() const;
  uint64_t ReserveOPages() const;

  Ftl* ftl_;
  MinidiskConfig config_;
  Rng rng_;

  std::vector<Minidisk> minidisks_;
  std::vector<uint64_t> valid_counts_;  // written LBAs per mDisk
  std::vector<Bitmap> written_;         // written LBA bitmap per mDisk
  uint32_t live_minidisks_ = 0;
  uint64_t live_logical_opages_ = 0;
  uint64_t decommissioned_total_ = 0;
  uint64_t regenerated_total_ = 0;
  // Draining mDisks in start order (oldest first) and their logical space,
  // which still occupies flash until the drain finishes.
  std::vector<MinidiskId> draining_;
  uint64_t draining_logical_opages_ = 0;
  uint64_t drains_forced_ = 0;
  // Cached wear forecast (oPages predicted to tire soon) and its age.
  uint64_t forecast_tiring_opages_ = 0;
  uint64_t writes_since_forecast_ = 0;

  std::vector<MinidiskEvent> events_;
};

}  // namespace salamander

#endif  // SALAMANDER_CORE_MINIDISK_MANAGER_H_
