#include "core/minidisk_manager.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace salamander {

// Soft horizon for starting grace drains: leave enough slack that drains can
// complete (be re-replicated and acked) before the hard deficit arrives.
static uint64_t DrainHeadroom(const MinidiskConfig& config) {
  if (!config.drain_before_decommission) {
    return 0;
  }
  return static_cast<uint64_t>(config.max_draining) * config.msize_opages;
}

MinidiskManager::MinidiskManager(Ftl* ftl, const MinidiskConfig& config)
    : ftl_(ftl), config_(config), rng_(config.seed ^ 0xa5a5a5a5a5a5a5a5ULL) {
  assert(ftl_ != nullptr);
  assert(config_.msize_opages > 0);
  FormatDevice();
}

void MinidiskManager::FormatDevice() {
  const uint64_t usable = ftl_->usable_opages();
  // A drain-capable device withholds headroom for in-flight drains, whose
  // data occupies flash after the mDisk stops being advertised capacity.
  const uint64_t reserve = ReserveOPages() + DrainHeadroom(config_);
  const uint64_t available = usable > reserve ? usable - reserve : 0;
  const uint64_t count = available / config_.msize_opages;
  for (uint64_t i = 0; i < count; ++i) {
    CreateMinidisk(/*tiredness_level=*/0);
  }
}

MinidiskId MinidiskManager::CreateMinidisk(unsigned tiredness_level,
                                           bool regenerated) {
  Minidisk md;
  md.id = static_cast<MinidiskId>(minidisks_.size());
  md.state = MinidiskState::kLive;
  md.first_lpo = ftl_->ExtendLogicalSpace(config_.msize_opages);
  md.size_opages = config_.msize_opages;
  md.tiredness_level = tiredness_level;
  minidisks_.push_back(md);
  valid_counts_.push_back(0);
  written_.emplace_back(config_.msize_opages, false);
  ++live_minidisks_;
  live_logical_opages_ += config_.msize_opages;
  PushEvent(MinidiskEvent{MinidiskEventType::kCreated, md.id});
  // An mDisk must never be announced and then forgotten by a power loss, so
  // the create record is synced immediately.
  ftl_->AppendJournalRecord(JournalRecord{
      JournalRecordType::kMdiskCreate, md.id, md.first_lpo, md.size_opages,
      static_cast<uint64_t>(tiredness_level) |
          (static_cast<uint64_t>(regenerated) << 8)});
  ftl_->SyncJournal();
  return md.id;
}

bool MinidiskManager::IsLive(MinidiskId mdisk) const {
  return mdisk < minidisks_.size() &&
         minidisks_[mdisk].state == MinidiskState::kLive;
}

uint64_t MinidiskManager::live_capacity_bytes() const {
  return static_cast<uint64_t>(live_minidisks_) * config_.msize_opages *
         ftl_->config().geometry.opage_bytes;
}

StatusOr<SimDuration> MinidiskManager::Write(MinidiskId mdisk, uint64_t lba) {
  if (mdisk >= minidisks_.size()) {
    return NotFoundError("Write: unknown mDisk " + std::to_string(mdisk));
  }
  if (minidisks_[mdisk].state == MinidiskState::kDraining) {
    return FailedPreconditionError("Write: mDisk " + std::to_string(mdisk) +
                                   " is draining (read-only)");
  }
  if (minidisks_[mdisk].state != MinidiskState::kLive) {
    return FailedPreconditionError("Write: mDisk " + std::to_string(mdisk) +
                                   " is decommissioned");
  }
  if (lba >= minidisks_[mdisk].size_opages) {
    return OutOfRangeError("Write: lba " + std::to_string(lba));
  }
  const uint64_t lpo = minidisks_[mdisk].first_lpo + lba;
  StatusOr<SimDuration> result = ftl_->Write(lpo);
  if (!result.ok() &&
      result.status().code() == StatusCode::kResourceExhausted) {
    // The device ran out of space mid-write because wear outpaced
    // decommissioning. Shed capacity and retry. Eq. 2's accounting can lag
    // physical reality (in-service pages fragmented across mostly-dead
    // blocks), so if the deficit formula sees no problem, force-shed anyway:
    // the FTL's failed allocation is ground truth.
    RunCapacityMaintenance();
    if (!result.ok() &&
        result.status().code() == StatusCode::kResourceExhausted &&
        minidisks_[mdisk].state == MinidiskState::kLive) {
      if (ShedCapacityNow()) {
        if (minidisks_[mdisk].state != MinidiskState::kLive) {
          return CapacityExhaustedError(
              "Write: mDisk decommissioned while shedding capacity");
        }
        result = ftl_->Write(lpo);
      }
    }
  }
  if (result.ok() && !written_[mdisk].Test(lba)) {
    written_[mdisk].Set(lba);
    ++valid_counts_[mdisk];
  }
  ++writes_since_forecast_;
  RunCapacityMaintenance();
  return result;
}

StatusOr<ReadResult> MinidiskManager::Read(MinidiskId mdisk, uint64_t lba) {
  if (mdisk >= minidisks_.size()) {
    return NotFoundError("Read: unknown mDisk " + std::to_string(mdisk));
  }
  if (minidisks_[mdisk].state == MinidiskState::kDecommissioned) {
    return FailedPreconditionError("Read: mDisk " + std::to_string(mdisk) +
                                   " is decommissioned");
  }
  if (lba >= minidisks_[mdisk].size_opages) {
    return OutOfRangeError("Read: lba " + std::to_string(lba));
  }
  return ftl_->Read(minidisks_[mdisk].first_lpo + lba);
}

StatusOr<RangeReadResult> MinidiskManager::ReadRange(MinidiskId mdisk,
                                                     uint64_t lba,
                                                     uint64_t count) {
  if (mdisk >= minidisks_.size()) {
    return NotFoundError("ReadRange: unknown mDisk " + std::to_string(mdisk));
  }
  if (minidisks_[mdisk].state == MinidiskState::kDecommissioned) {
    return FailedPreconditionError("ReadRange: mDisk " +
                                   std::to_string(mdisk) +
                                   " is decommissioned");
  }
  if (lba + count > minidisks_[mdisk].size_opages) {
    return OutOfRangeError("ReadRange: lba " + std::to_string(lba) + " +" +
                           std::to_string(count));
  }
  return ftl_->ReadRange(minidisks_[mdisk].first_lpo + lba, count);
}

uint64_t MinidiskManager::ReserveOPages() const {
  const uint64_t raw = ftl_->config().geometry.total_opages();
  const uint64_t op_reserve =
      static_cast<uint64_t>(static_cast<double>(raw) * config_.op_ratio);
  return std::max(op_reserve, ftl_->gc_reserve_opages());
}

bool MinidiskManager::CapacityDeficit() const {
  // Draining mDisks no longer count as advertised capacity but their data
  // still occupies flash until the drain finishes.
  return ftl_->usable_opages() <
         live_logical_opages_ + draining_logical_opages_ + ReserveOPages();
}

void MinidiskManager::RunCapacityMaintenance() {
  // Drain transitions first: their only role here is ordering (the FTL
  // already updated its accounting); keeping the queue short bounds memory.
  ftl_->TakeTransitions();

  // Eq. 2: while physical capacity cannot back logical capacity + reserve,
  // shed capacity. Without the grace period this decommissions (trims) a
  // victim per round; with it, the hard deficit force-finishes drains and a
  // soft horizon starts new ones early enough for the host to re-replicate.
  while (CapacityDeficit()) {
    if (!ShedCapacityNow()) {
      break;
    }
  }
  if (config_.drain_before_decommission) {
    // Proactive policy: refresh the wear forecast periodically and treat
    // soon-to-tire capacity as already lost when deciding to open grace
    // windows, so the diFS gets its head start before the deficit is real.
    uint64_t forecast = 0;
    if (config_.drain_forecast_horizon > 0.0) {
      if (writes_since_forecast_ >= config_.forecast_interval_writes ||
          forecast_tiring_opages_ == 0) {
        forecast_tiring_opages_ =
            ftl_->ForecastTiringOPages(config_.drain_forecast_horizon);
        writes_since_forecast_ = 0;
      }
      forecast = forecast_tiring_opages_;
    }
    while (live_minidisks_ > 0 &&
           draining_.size() < config_.max_draining &&
           ftl_->usable_opages() < live_logical_opages_ +
                                       draining_logical_opages_ +
                                       ReserveOPages() +
                                       DrainHeadroom(config_) + forecast) {
      Decommission(PickVictim());  // starts a drain
    }
  }

  // RegenS: mint new mDisks from accumulated limbo capacity. Claim only when
  // a full mDisk's worth is reclaimable, so regenerated mDisks appear as
  // discrete kCreated events (Fig. 1 b4).
  while (ftl_->reclaimable_limbo_opages() >= config_.msize_opages) {
    const uint64_t claimed =
        ftl_->ClaimLimboCapacity(config_.msize_opages);
    if (claimed < config_.msize_opages) {
      break;  // stale limbo accounting; try again after more transitions
    }
    ++regenerated_total_;
    // Regenerated capacity comes predominantly from level >= 1 pages.
    CreateMinidisk(/*tiredness_level=*/std::min(
                       ftl_->config().max_usable_level, 1u),
                   /*regenerated=*/true);
    // If claiming overshot into the reserve, shed immediately.
    if (CapacityDeficit()) {
      ShedCapacityNow();
    }
  }
}

MinidiskId MinidiskManager::PickVictim() {
  assert(live_minidisks_ > 0);
  switch (config_.victim_policy) {
    case VictimPolicy::kLowestId: {
      for (const Minidisk& md : minidisks_) {
        if (md.state == MinidiskState::kLive) {
          return md.id;
        }
      }
      break;
    }
    case VictimPolicy::kRandom: {
      uint64_t skip = rng_.UniformU64(live_minidisks_);
      for (const Minidisk& md : minidisks_) {
        if (md.state == MinidiskState::kLive) {
          if (skip == 0) {
            return md.id;
          }
          --skip;
        }
      }
      break;
    }
    case VictimPolicy::kLeastValid: {
      MinidiskId best = 0;
      uint64_t best_valid = UINT64_MAX;
      for (const Minidisk& md : minidisks_) {
        if (md.state == MinidiskState::kLive &&
            valid_counts_[md.id] < best_valid) {
          best_valid = valid_counts_[md.id];
          best = md.id;
        }
      }
      return best;
    }
  }
  assert(false && "no live minidisk");
  return 0;
}

void MinidiskManager::TrimMinidisk(MinidiskId mdisk) {
  Minidisk& md = minidisks_[mdisk];
  for (uint64_t lba = 0; lba < md.size_opages; ++lba) {
    // In-range trims cannot fail; the range was allocated at creation.
    Status trim_status = ftl_->Trim(md.first_lpo + lba);
    assert(trim_status.ok());
    (void)trim_status;
  }
  written_[mdisk].ClearAll();
  valid_counts_[mdisk] = 0;
}

void MinidiskManager::Decommission(MinidiskId victim) {
  Minidisk& md = minidisks_[victim];
  assert(md.state == MinidiskState::kLive);
  --live_minidisks_;
  live_logical_opages_ -= md.size_opages;
  if (config_.drain_before_decommission) {
    // Grace period: keep the data readable until the host acks.
    md.state = MinidiskState::kDraining;
    draining_.push_back(victim);
    draining_logical_opages_ += md.size_opages;
    PushEvent(MinidiskEvent{MinidiskEventType::kDraining, victim});
    ftl_->AppendJournalRecord(
        JournalRecord{JournalRecordType::kMdiskDrain, victim, 0, 0, 0});
    return;
  }
  TrimMinidisk(victim);
  md.state = MinidiskState::kDecommissioned;
  ++decommissioned_total_;
  PushEvent(MinidiskEvent{MinidiskEventType::kDecommissioned, victim});
  ftl_->AppendJournalRecord(
      JournalRecord{JournalRecordType::kMdiskDrop, victim, 0, 0, 0});
}

void MinidiskManager::FinishDrain(MinidiskId mdisk, bool forced) {
  Minidisk& md = minidisks_[mdisk];
  assert(md.state == MinidiskState::kDraining);
  auto it = std::find(draining_.begin(), draining_.end(), mdisk);
  assert(it != draining_.end());
  draining_.erase(it);
  draining_logical_opages_ -= md.size_opages;
  TrimMinidisk(mdisk);
  md.state = MinidiskState::kDecommissioned;
  ++decommissioned_total_;
  if (forced) {
    ++drains_forced_;
  }
  PushEvent(MinidiskEvent{MinidiskEventType::kDecommissioned, mdisk});
  ftl_->AppendJournalRecord(JournalRecord{JournalRecordType::kMdiskDrop,
                                          mdisk, static_cast<uint64_t>(forced),
                                          0, 0});
}

bool MinidiskManager::ShedCapacityNow() {
  // Shed a live victim first: its chunks still have replicas elsewhere and
  // recover through the normal path. Force-closing an un-acked drain is the
  // last resort — it guarantees a grace-window violation for data whose
  // re-replication the host may not have completed yet.
  if (live_minidisks_ > 0) {
    const MinidiskId victim = PickVictim();
    if (config_.drain_before_decommission) {
      // Immediate reclaim bypasses the grace period: full decommission
      // inline.
      Minidisk& md = minidisks_[victim];
      --live_minidisks_;
      live_logical_opages_ -= md.size_opages;
      TrimMinidisk(victim);
      md.state = MinidiskState::kDecommissioned;
      ++decommissioned_total_;
      PushEvent(MinidiskEvent{MinidiskEventType::kDecommissioned, victim});
      ftl_->AppendJournalRecord(
          JournalRecord{JournalRecordType::kMdiskDrop, victim, 0, 0, 0});
      return true;
    }
    Decommission(victim);
    return true;
  }
  if (!draining_.empty()) {
    FinishDrain(draining_.front(), /*forced=*/true);
    return true;
  }
  return false;
}

Status MinidiskManager::AckDrain(MinidiskId mdisk) {
  if (mdisk >= minidisks_.size()) {
    return NotFoundError("AckDrain: unknown mDisk " + std::to_string(mdisk));
  }
  if (minidisks_[mdisk].state != MinidiskState::kDraining) {
    return FailedPreconditionError("AckDrain: mDisk " +
                                   std::to_string(mdisk) +
                                   " is not draining");
  }
  FinishDrain(mdisk, /*forced=*/false);
  return OkStatus();
}

void MinidiskManager::PushEvent(MinidiskEvent event) {
  if (events_.size() >= config_.max_pending_events) {
    ++dropped_events_;
    return;
  }
  events_.push_back(event);
}

std::vector<MinidiskEvent> MinidiskManager::TakeEvents() {
  std::vector<MinidiskEvent> out;
  out.swap(events_);
  return out;
}

void MinidiskManager::Replay() {
  minidisks_.clear();
  valid_counts_.clear();
  written_.clear();
  draining_.clear();
  events_.clear();  // a restarted host resyncs from state, not a stale queue
  live_minidisks_ = 0;
  live_logical_opages_ = 0;
  draining_logical_opages_ = 0;
  decommissioned_total_ = 0;
  regenerated_total_ = 0;
  drains_forced_ = 0;
  forecast_tiring_opages_ = 0;
  writes_since_forecast_ = 0;
  // dropped_events_ survives: it is the monotone overflow signal hosts
  // reconcile against, and forgetting it would hide a pre-crash overflow.

  // mDisk lifecycle records replay in append order; the compactor preserves
  // per-mDisk create -> drain/drop ordering, so states converge either way.
  for (const JournalRecord& r : ftl_->journal().records()) {
    switch (r.type) {
      case JournalRecordType::kMdiskCreate: {
        assert(minidisks_.size() == r.a && "mDisk ids must be sequential");
        Minidisk md;
        md.id = static_cast<MinidiskId>(r.a);
        md.state = MinidiskState::kLive;
        md.first_lpo = r.b;
        md.size_opages = r.c;
        md.tiredness_level = static_cast<unsigned>(r.d & 0xff);
        minidisks_.push_back(md);
        valid_counts_.push_back(0);
        written_.emplace_back(md.size_opages, false);
        ++live_minidisks_;
        live_logical_opages_ += md.size_opages;
        regenerated_total_ += (r.d >> 8) & 1;
        break;
      }
      case JournalRecordType::kMdiskDrain: {
        Minidisk& md = minidisks_[r.a];
        md.state = MinidiskState::kDraining;
        --live_minidisks_;
        live_logical_opages_ -= md.size_opages;
        draining_.push_back(md.id);
        draining_logical_opages_ += md.size_opages;
        break;
      }
      case JournalRecordType::kMdiskDrop: {
        Minidisk& md = minidisks_[r.a];
        if (md.state == MinidiskState::kDraining) {
          auto it = std::find(draining_.begin(), draining_.end(), md.id);
          assert(it != draining_.end());
          draining_.erase(it);
          draining_logical_opages_ -= md.size_opages;
        } else if (md.state == MinidiskState::kLive) {
          --live_minidisks_;
          live_logical_opages_ -= md.size_opages;
        }
        md.state = MinidiskState::kDecommissioned;
        ++decommissioned_total_;
        drains_forced_ += r.b != 0 ? 1 : 0;
        break;
      }
      default:
        break;  // FTL-level records; Ftl::Replay() already consumed them
    }
  }

  // Written-LBA bitmaps come from the replayed mapping: an LBA is valid iff
  // its logical page survived on flash (buffered and rolled-back writes are
  // gone, exactly matching what a read would now return).
  for (const Minidisk& md : minidisks_) {
    if (md.state == MinidiskState::kDecommissioned) {
      continue;
    }
    for (uint64_t lba = 0; lba < md.size_opages; ++lba) {
      if (ftl_->PhysicalSlot(md.first_lpo + lba) != Ftl::kUnmappedSlot) {
        written_[md.id].Set(lba);
        ++valid_counts_[md.id];
      }
    }
  }
}

}  // namespace salamander
