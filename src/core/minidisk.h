// Minidisk (mDisk) types — the unit of partial SSD failure (paper §3.2).
//
// An mDisk is a small, logical, independently-failing volume carved out of
// one SSD's logical address space. The distributed file system treats each
// mDisk as a separate failure domain; the device decommissions them one at a
// time as flash wears (ShrinkS) and may mint new ones from revived flash
// (RegenS).
#ifndef SALAMANDER_CORE_MINIDISK_H_
#define SALAMANDER_CORE_MINIDISK_H_

#include <cstdint>

namespace salamander {

using MinidiskId = uint32_t;

enum class MinidiskState : uint8_t {
  kLive,
  // Grace period (§4.3 future work): the device wants to retire this mDisk
  // but keeps its data readable until the host acknowledges that the diFS
  // has safely re-distributed it. No new writes are accepted.
  kDraining,
  kDecommissioned,
};

struct Minidisk {
  MinidiskId id = 0;
  MinidiskState state = MinidiskState::kLive;
  // First logical oPage offset of this mDisk in the device's FTL space;
  // LBA j of mDisk i maps to logical page first_lpo + j (the paper's <i, j>
  // index into the internal mapping array).
  uint64_t first_lpo = 0;
  uint64_t size_opages = 0;
  // Tiredness level of the flash backing this mDisk at creation time
  // (0 for original mDisks, >= 1 for regenerated ones).
  unsigned tiredness_level = 0;
};

enum class MinidiskEventType : uint8_t {
  // A new mDisk exists (initial format or RegenS regeneration); the host
  // should introduce it to the diFS.
  kCreated,
  // An mDisk failed; the diFS should re-replicate its data from replicas.
  kDecommissioned,
  // Grace period started: the mDisk is read-only and will be reclaimed once
  // the host calls AckDrain (or the device runs out of slack). The diFS
  // should re-replicate now — it may read from this very mDisk.
  kDraining,
};

struct MinidiskEvent {
  MinidiskEventType type = MinidiskEventType::kCreated;
  MinidiskId mdisk = 0;
};

}  // namespace salamander

#endif  // SALAMANDER_CORE_MINIDISK_H_
