// Carbon & cost report: given a measured (or hypothesized) lifetime gain,
// compute the deployment-level CO2e and TCO impact using the paper's §4.1 /
// §4.4 models.
//
//   ./build/examples/carbon_report [lifetime_gain] [f_op] [f_opex]
//   e.g. ./build/examples/carbon_report 0.5 0.46 0.14
#include <cstdio>
#include <cstdlib>

#include "sustain/carbon_model.h"
#include "sustain/tco_model.h"

using namespace salamander;

int main(int argc, char** argv) {
  const double lifetime_gain = argc > 1 ? std::atof(argv[1]) : 0.5;
  const double f_op = argc > 2 ? std::atof(argv[2]) : 0.46;
  const double f_opex = argc > 3 ? std::atof(argv[3]) : 0.14;

  std::printf("Salamander sustainability report\n");
  std::printf("  device lifetime gain: %+.0f%%\n", lifetime_gain * 100);
  std::printf("  operational emissions fraction f_op:  %.2f\n", f_op);
  std::printf("  operational cost fraction f_opex:     %.2f\n\n", f_opex);

  CarbonParams carbon;
  carbon.f_op = f_op;
  carbon.ru = RuFromLifetimeGain(lifetime_gain);
  std::printf("carbon (Eq. 3):\n");
  std::printf("  SSD upgrade rate Ru:        %.3f (with the paper's 40%%\n"
              "                              conservative discount)\n",
              carbon.ru);
  std::printf("  relative CO2e, today:       %.3f  (%.1f%% savings)\n",
              RelativeCarbon(carbon), CarbonSavings(carbon) * 100);
  std::printf("  relative CO2e, renewables:  %.3f  (%.1f%% savings)\n\n",
              RelativeCarbonRenewable(carbon),
              CarbonSavingsRenewable(carbon) * 100);

  TcoParams tco;
  tco.f_opex = f_opex;
  tco.ru = 1.0 / (1.0 + lifetime_gain);
  std::printf("cost (Eq. 4):\n");
  std::printf("  raw upgrade rate Ru:        %.3f\n", tco.ru);
  std::printf("  cost upgrade rate CRu:      %.3f (incl. %.0f%% capacity\n"
              "                              backfill at %.0f%% $/TB)\n",
              CostUpgradeRate(tco), tco.cap_new * 100, tco.ce_new * 100);
  std::printf("  relative TCO:               %.3f  (%.1f%% savings)\n",
              RelativeTco(tco), TcoSavings(tco) * 100);

  std::printf("\npaper anchors: ShrinkS (gain 0.2) -> ~3%% CO2e / 13%% TCO;\n"
              "               RegenS  (gain 0.5) -> ~8%% CO2e / 25%% TCO\n");
  return 0;
}
