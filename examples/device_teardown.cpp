// Device teardown: forensic view of one Salamander SSD's internals as it
// ages — per-level page populations, limbo occupancy (Eq. 1), PEC spread,
// write amplification, and the mDisk ledger. Useful for understanding how
// the pieces of §3 interact.
//
//   ./build/examples/device_teardown [shrinks|regens|baseline|cvss]
#include <cstdio>
#include <cstring>
#include <string>

#include "ecc/tiredness.h"
#include "flash/wear_model.h"
#include "ssd/ssd_device.h"
#include "workload/aging.h"

using namespace salamander;

namespace {

SsdKind ParseKind(const char* arg) {
  if (std::strcmp(arg, "baseline") == 0) {
    return SsdKind::kBaseline;
  }
  if (std::strcmp(arg, "cvss") == 0) {
    return SsdKind::kCvss;
  }
  if (std::strcmp(arg, "shrinks") == 0) {
    return SsdKind::kShrinkS;
  }
  return SsdKind::kRegenS;
}

void PrintInternals(const SsdDevice& device) {
  const Ftl& ftl = device.ftl();
  const FlashGeometry& geometry = ftl.config().geometry;

  // Page population by tiredness level.
  uint64_t by_level[8] = {};
  uint64_t dead = 0;
  for (FPageIndex p = 0; p < geometry.total_fpages(); ++p) {
    const unsigned level = ftl.PageLevel(p);
    if (level == Ftl::kDeadLevel) {
      ++dead;
    } else if (level < 8) {
      ++by_level[level];
    }
  }
  std::printf("  fPages: L0=%llu L1=%llu L2=%llu dead=%llu | limbo: "
              "L1=%llu fPages\n",
              static_cast<unsigned long long>(by_level[0]),
              static_cast<unsigned long long>(by_level[1]),
              static_cast<unsigned long long>(by_level[2]),
              static_cast<unsigned long long>(dead),
              static_cast<unsigned long long>(ftl.limbo_fpages(1)));

  // PEC spread across blocks (wear-leveling quality).
  uint32_t min_pec = UINT32_MAX;
  uint32_t max_pec = 0;
  uint64_t sum_pec = 0;
  for (BlockIndex b = 0; b < geometry.total_blocks(); ++b) {
    const uint32_t pec = ftl.chip().BlockPec(b);
    min_pec = std::min(min_pec, pec);
    max_pec = std::max(max_pec, pec);
    sum_pec += pec;
  }
  std::printf("  block PEC: min=%u avg=%.0f max=%u | retired blocks=%llu\n",
              min_pec,
              static_cast<double>(sum_pec) / geometry.total_blocks(), max_pec,
              static_cast<unsigned long long>(ftl.retired_blocks()));

  const FtlStats& stats = ftl.stats();
  std::printf("  I/O: host_writes=%llu WAF=%.2f erases=%llu "
              "uncorrectable=%llu retries=%llu\n",
              static_cast<unsigned long long>(stats.host_writes),
              stats.WriteAmplification(),
              static_cast<unsigned long long>(stats.erases),
              static_cast<unsigned long long>(stats.uncorrectable_reads),
              static_cast<unsigned long long>(stats.read_retries));
  std::printf("  mDisks: live=%u/%u decommissioned=%llu regenerated=%llu "
              "capacity=%.1f MiB\n",
              device.live_minidisks(), device.total_minidisks(),
              static_cast<unsigned long long>(
                  device.manager().decommissioned_total()),
              static_cast<unsigned long long>(
                  device.manager().regenerated_total()),
              static_cast<double>(device.live_capacity_bytes()) / (1 << 20));
}

}  // namespace

int main(int argc, char** argv) {
  const SsdKind kind = ParseKind(argc > 1 ? argv[1] : "regens");

  FPageEccGeometry ecc;
  SsdConfig config = MakeSsdConfig(
      kind, FlashGeometry::Small(),
      WearModel::Calibrate(ComputeTirednessLevel(ecc, 0).max_tolerable_rber,
                           /*nominal_pec=*/60),
      FlashLatencyConfig{}, ecc, /*seed=*/1234);
  if (kind == SsdKind::kShrinkS || kind == SsdKind::kRegenS) {
    config.minidisk.msize_opages = 256;
  }
  SsdDevice device(kind, config);

  std::printf("tearing down a %s SSD (%u mDisks, %.1f MiB)\n",
              std::string(device.kind_name()).c_str(),
              device.total_minidisks(),
              static_cast<double>(device.live_capacity_bytes()) / (1 << 20));

  // Print the ECC ladder this device would use.
  std::printf("\nECC tiredness ladder (per fPage):\n");
  for (const TirednessLevelEcc& level : device.ftl().tiredness_ladder()) {
    if (level.data_opages == 0) {
      continue;
    }
    std::printf("  L%u: %u data oPages, code rate %.3f, t=%u bits/stripe, "
                "tolerates RBER %.2e\n",
                level.level, level.data_opages, level.code_rate,
                level.correctable_bits_per_stripe, level.max_tolerable_rber);
  }

  AgingDriver driver(&device, /*seed=*/99);
  std::printf("\n");
  for (int stage = 0; stage < 12; ++stage) {
    AgingResult result = driver.WriteOPages(120000);
    std::printf("after %llu K host writes:\n",
                static_cast<unsigned long long>(driver.total_written() / 1000));
    PrintInternals(device);
    if (result.device_failed) {
      std::printf("\ndevice failed.\n");
      break;
    }
  }
  return 0;
}
