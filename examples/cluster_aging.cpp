// Cluster aging: the paper's motivating scenario end-to-end. A replicated
// distributed file system runs on Salamander SSDs; as flash wears, devices
// shed 1 MiB minidisks and the diFS absorbs each loss with a small
// re-replication — no whole-device rebuilds, no data loss.
//
// Compare with `--baseline` to watch conventional SSDs brick instead,
// triggering bursty mass recovery.
//
//   ./build/examples/cluster_aging            # Salamander RegenS cluster
//   ./build/examples/cluster_aging --baseline # conventional SSDs
#include <cstdio>
#include <cstring>
#include <memory>

#include "difs/cluster.h"
#include "ecc/tiredness.h"
#include "flash/wear_model.h"

using namespace salamander;

int main(int argc, char** argv) {
  const bool baseline = argc > 1 && std::strcmp(argv[1], "--baseline") == 0;
  const SsdKind kind = baseline ? SsdKind::kBaseline : SsdKind::kRegenS;

  DifsConfig config;
  config.nodes = 6;
  config.devices_per_node = 1;
  config.replication = 3;
  config.chunk_opages = 256;  // 1 MiB chunks
  config.fill_fraction = 0.5;
  config.seed = 2025;

  FPageEccGeometry ecc;
  const WearModelConfig wear = WearModel::Calibrate(
      ComputeTirednessLevel(ecc, 0).max_tolerable_rber, /*nominal_pec=*/40);
  auto factory = [&](uint32_t index) {
    SsdConfig ssd = MakeSsdConfig(kind, FlashGeometry::Small(), wear,
                                  FlashLatencyConfig{}, ecc, 900 + index * 31);
    if (kind != SsdKind::kBaseline) {
      ssd.minidisk.msize_opages = 256;
    }
    return std::make_unique<SsdDevice>(kind, ssd);
  };

  DifsCluster cluster(config, factory);
  std::printf("cluster: %u nodes, %s SSDs, %llu placement slots, R=%u\n",
              config.nodes, std::string(SsdKindName(kind)).c_str(),
              static_cast<unsigned long long>(cluster.free_slots()),
              config.replication);
  if (auto status = cluster.Bootstrap(); !status.ok()) {
    std::printf("bootstrap failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("bootstrapped %llu chunks (%.0f MiB logical data)\n\n",
              static_cast<unsigned long long>(cluster.total_chunks()),
              static_cast<double>(cluster.total_chunks()) *
                  config.chunk_opages * 4096 / (1 << 20));

  std::printf("%-10s %-8s %-10s %-12s %-12s %-10s %-8s\n", "writesK",
              "devices", "underRepl", "recoveredMiB", "replicasLost",
              "deferred", "lost");
  for (int stage = 0; stage < 60; ++stage) {
    if (!cluster.StepWrites(10000).ok()) {
      break;
    }
    const DifsStats& stats = cluster.stats();
    std::printf("%-10llu %-8u %-10llu %-12.1f %-12llu %-10llu %-8llu\n",
                static_cast<unsigned long long>(stats.foreground_opage_writes) /
                    1000ULL,
                cluster.alive_devices(),
                static_cast<unsigned long long>(
                    cluster.chunks_under_replicated()),
                static_cast<double>(stats.recovery_bytes()) / (1 << 20),
                static_cast<unsigned long long>(stats.replicas_lost),
                static_cast<unsigned long long>(stats.recovery_deferred),
                static_cast<unsigned long long>(cluster.chunks_lost()));
    if (cluster.alive_devices() < config.replication) {
      std::printf("cluster below replication factor; stopping\n");
      break;
    }
  }

  const DifsStats& stats = cluster.stats();
  std::printf("\nsummary (%s):\n", std::string(SsdKindName(kind)).c_str());
  std::printf("  foreground writes: %.0f MiB (x%u replication)\n",
              static_cast<double>(stats.foreground_opage_writes) * 4096 /
                  (1 << 20),
              config.replication);
  std::printf("  recovery traffic:  %.0f MiB over %llu replica rebuilds\n",
              static_cast<double>(stats.recovery_bytes()) / (1 << 20),
              static_cast<unsigned long long>(stats.replicas_recovered));
  std::printf("  data loss:         %llu chunks\n",
              static_cast<unsigned long long>(cluster.chunks_lost()));
  return 0;
}
