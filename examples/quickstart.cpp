// Quickstart: create a Salamander (RegenS) SSD, do I/O against its
// minidisks, then age it and watch the mDisk lifecycle — decommissions as
// flash tires, regenerations as worn pages are revived at a lower code rate.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "ecc/tiredness.h"
#include "flash/wear_model.h"
#include "ssd/ssd_device.h"
#include "workload/aging.h"

using namespace salamander;

int main() {
  // --- 1. Configure a device ---------------------------------------------
  // A small flash array (32 MiB raw) with endurance compressed to 60 P/E
  // cycles so aging completes in seconds. Real TLC would use ~3000; only the
  // time axis changes.
  FlashGeometry geometry = FlashGeometry::Small();
  FPageEccGeometry ecc;  // 16 KiB fPage, 4 oPages, 2 KiB spare (paper [13])
  WearModelConfig wear = WearModel::Calibrate(
      ComputeTirednessLevel(ecc, 0).max_tolerable_rber, /*nominal_pec=*/60);

  SsdConfig config = MakeSsdConfig(SsdKind::kRegenS, geometry, wear,
                                   FlashLatencyConfig{}, ecc, /*seed=*/42,
                                   /*regen_max_level=*/1);
  config.minidisk.msize_opages = 256;  // 1 MiB mDisks, the paper's example

  SsdDevice device(SsdKind::kRegenS, config);
  std::printf("created %s SSD: %u mDisks x %llu KiB = %.1f MiB usable\n",
              std::string(device.kind_name()).c_str(),
              device.total_minidisks(),
              static_cast<unsigned long long>(device.msize_opages() * 4),
              static_cast<double>(device.live_capacity_bytes()) / (1 << 20));

  // --- 2. Basic I/O --------------------------------------------------------
  // The host addresses the device as <mdisk, lba>; each mDisk is an
  // independent little drive (and an independent failure domain).
  device.TakeEvents();  // drain the initial kCreated events
  for (uint64_t lba = 0; lba < 8; ++lba) {
    if (auto status = device.Write(/*mdisk=*/0, lba); !status.ok()) {
      std::printf("write failed: %s\n", status.status().ToString().c_str());
      return 1;
    }
  }
  auto read = device.Read(0, 3);
  std::printf("read mdisk 0 lba 3: latency=%llu ns, tiredness level L%u\n",
              static_cast<unsigned long long>(read->latency),
              read->tiredness_level);
  auto range = device.ReadRange(0, 0, 4);  // one 16 KiB access
  std::printf("16 KiB range read: %u flash reads, %llu ns\n",
              range->fpage_reads,
              static_cast<unsigned long long>(range->latency));

  // --- 3. Age the device ---------------------------------------------------
  // Stream random writes and watch the mDisk population evolve. ShrinkS
  // would only ever lose mDisks; RegenS also mints new ones from revived
  // (L1) flash pages.
  AgingDriver driver(&device, /*seed=*/7);
  std::printf("\n%-12s %-8s %-10s %-14s %-12s\n", "writesMiB", "live",
              "capacityMiB", "decommissions", "regenerated");
  for (int stage = 0; stage < 40 && !device.failed(); ++stage) {
    AgingResult result = driver.WriteOPages(50000);
    std::printf("%-12.0f %-8u %-10.1f %-14llu %-12llu\n",
                static_cast<double>(driver.total_written()) * 4096 / (1 << 20),
                device.live_minidisks(),
                static_cast<double>(device.live_capacity_bytes()) / (1 << 20),
                static_cast<unsigned long long>(
                    device.manager().decommissioned_total()),
                static_cast<unsigned long long>(
                    device.manager().regenerated_total()));
    if (result.device_failed) {
      break;
    }
  }
  std::printf("\ndevice %s after %.0f MiB of host writes "
              "(write amplification %.2f)\n",
              device.failed() ? "exhausted" : "still alive",
              static_cast<double>(driver.total_written()) * 4096 / (1 << 20),
              device.ftl().stats().WriteAmplification());
  return 0;
}
