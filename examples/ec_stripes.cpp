// Erasure-coded cluster demo: RS(4+2) stripes over ShrinkS SSDs. Shows the
// (1+m)-fold write fan-out, minidisk-granular cell losses, and k-fold
// rebuild reads as the fleet wears.
//
//   ./build/examples/ec_stripes
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "difs/ec_cluster.h"
#include "ecc/tiredness.h"
#include "flash/wear_model.h"

using namespace salamander;

int main() {
  EcConfig config;
  config.nodes = 9;
  config.data_cells = 4;
  config.parity_cells = 2;
  config.cell_opages = 256;  // 1 MiB cells == mDisk size
  config.fill_fraction = 0.4;
  config.seed = 77;

  FPageEccGeometry ecc;
  const WearModelConfig wear = WearModel::Calibrate(
      ComputeTirednessLevel(ecc, 0).max_tolerable_rber, /*nominal_pec=*/40);
  auto factory = [&](uint32_t index) {
    SsdConfig ssd = MakeSsdConfig(SsdKind::kShrinkS, FlashGeometry::Small(),
                                  wear, FlashLatencyConfig{}, ecc,
                                  1700 + index * 41);
    ssd.minidisk.msize_opages = 256;
    auto device = std::make_unique<SsdDevice>(SsdKind::kShrinkS, ssd);
    // Rolling-deployment stagger so devices do not wear out in lockstep.
    Rng pre(50 + index);
    for (uint64_t w = 0; w < static_cast<uint64_t>(index) * 5000; ++w) {
      (void)device->Write(
          static_cast<MinidiskId>(pre.UniformU64(device->total_minidisks())),
          pre.UniformU64(256));
    }
    return device;
  };

  EcCluster cluster(config, factory);
  std::printf("EC cluster: %u nodes, RS(%u+%u), %llu cell slots\n",
              config.nodes, config.data_cells, config.parity_cells,
              static_cast<unsigned long long>(cluster.free_slots()));
  if (auto status = cluster.Bootstrap(); !status.ok()) {
    std::printf("bootstrap failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("bootstrapped %llu stripes (%.0f MiB logical data)\n\n",
              static_cast<unsigned long long>(cluster.total_stripes()),
              static_cast<double>(cluster.total_stripes()) *
                  config.data_cells * config.cell_opages * 4096 / (1 << 20));

  std::printf("%-10s %-9s %-10s %-12s %-14s %-10s %-8s\n", "writesK",
              "devices", "cellsLost", "rebuilt", "rebuildRdMiB", "degraded",
              "lost");
  for (int stage = 0; stage < 40; ++stage) {
    if (!cluster.StepWrites(5000).ok() || cluster.alive_devices() < 6) {
      break;
    }
    (void)cluster.StepReads(500);
    const EcStats& stats = cluster.stats();
    if (stats.stripes_lost > 0 || cluster.free_slots() < 6) {
      std::printf("(fleet wear is saturating rebuild capacity — a real "
                  "deployment re-provisions here)\n");
      break;
    }
    std::printf("%-10llu %-9u %-10llu %-12llu %-14.1f %-10llu %-8llu\n",
                static_cast<unsigned long long>(
                    stats.foreground_logical_writes / 1000),
                cluster.alive_devices(),
                static_cast<unsigned long long>(stats.cells_lost),
                static_cast<unsigned long long>(stats.cells_rebuilt),
                static_cast<double>(stats.rebuild_read_bytes()) / (1 << 20),
                static_cast<unsigned long long>(stats.degraded_reads),
                static_cast<unsigned long long>(stats.stripes_lost));
  }

  const EcStats& stats = cluster.stats();
  std::printf("\nsummary: every logical write cost %u device writes "
              "(1 data + %u parity);\n",
              1 + config.parity_cells, config.parity_cells);
  std::printf("each lost 1 MiB cell cost %u MiB of rebuild reads "
              "(k-fold reconstruction).\n",
              config.data_cells);
  std::printf("stripes lost: %llu of %llu\n",
              static_cast<unsigned long long>(stats.stripes_lost),
              static_cast<unsigned long long>(cluster.total_stripes()));
  return 0;
}
