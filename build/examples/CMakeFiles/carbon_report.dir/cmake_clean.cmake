file(REMOVE_RECURSE
  "CMakeFiles/carbon_report.dir/carbon_report.cpp.o"
  "CMakeFiles/carbon_report.dir/carbon_report.cpp.o.d"
  "carbon_report"
  "carbon_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carbon_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
