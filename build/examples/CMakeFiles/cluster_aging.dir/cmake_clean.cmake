file(REMOVE_RECURSE
  "CMakeFiles/cluster_aging.dir/cluster_aging.cpp.o"
  "CMakeFiles/cluster_aging.dir/cluster_aging.cpp.o.d"
  "cluster_aging"
  "cluster_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
