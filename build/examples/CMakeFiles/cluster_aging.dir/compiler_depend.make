# Empty compiler generated dependencies file for cluster_aging.
# This may be replaced when dependencies are built.
