file(REMOVE_RECURSE
  "CMakeFiles/device_teardown.dir/device_teardown.cpp.o"
  "CMakeFiles/device_teardown.dir/device_teardown.cpp.o.d"
  "device_teardown"
  "device_teardown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_teardown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
