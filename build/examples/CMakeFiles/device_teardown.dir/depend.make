# Empty dependencies file for device_teardown.
# This may be replaced when dependencies are built.
