# Empty dependencies file for ec_stripes.
# This may be replaced when dependencies are built.
