file(REMOVE_RECURSE
  "CMakeFiles/ec_stripes.dir/ec_stripes.cpp.o"
  "CMakeFiles/ec_stripes.dir/ec_stripes.cpp.o.d"
  "ec_stripes"
  "ec_stripes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_stripes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
