file(REMOVE_RECURSE
  "libsala_flash.a"
)
