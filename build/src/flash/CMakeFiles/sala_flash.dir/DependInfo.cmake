
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flash/flash_chip.cc" "src/flash/CMakeFiles/sala_flash.dir/flash_chip.cc.o" "gcc" "src/flash/CMakeFiles/sala_flash.dir/flash_chip.cc.o.d"
  "/root/repo/src/flash/wear_model.cc" "src/flash/CMakeFiles/sala_flash.dir/wear_model.cc.o" "gcc" "src/flash/CMakeFiles/sala_flash.dir/wear_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sala_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/sala_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
