# Empty compiler generated dependencies file for sala_flash.
# This may be replaced when dependencies are built.
