file(REMOVE_RECURSE
  "CMakeFiles/sala_flash.dir/flash_chip.cc.o"
  "CMakeFiles/sala_flash.dir/flash_chip.cc.o.d"
  "CMakeFiles/sala_flash.dir/wear_model.cc.o"
  "CMakeFiles/sala_flash.dir/wear_model.cc.o.d"
  "libsala_flash.a"
  "libsala_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sala_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
