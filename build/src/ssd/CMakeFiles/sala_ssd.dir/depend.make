# Empty dependencies file for sala_ssd.
# This may be replaced when dependencies are built.
