file(REMOVE_RECURSE
  "CMakeFiles/sala_ssd.dir/ssd_device.cc.o"
  "CMakeFiles/sala_ssd.dir/ssd_device.cc.o.d"
  "libsala_ssd.a"
  "libsala_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sala_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
