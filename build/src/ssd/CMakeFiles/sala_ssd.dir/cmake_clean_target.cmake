file(REMOVE_RECURSE
  "libsala_ssd.a"
)
