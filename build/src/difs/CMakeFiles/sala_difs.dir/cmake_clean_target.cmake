file(REMOVE_RECURSE
  "libsala_difs.a"
)
