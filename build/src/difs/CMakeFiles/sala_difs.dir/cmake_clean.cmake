file(REMOVE_RECURSE
  "CMakeFiles/sala_difs.dir/cluster.cc.o"
  "CMakeFiles/sala_difs.dir/cluster.cc.o.d"
  "CMakeFiles/sala_difs.dir/ec_cluster.cc.o"
  "CMakeFiles/sala_difs.dir/ec_cluster.cc.o.d"
  "libsala_difs.a"
  "libsala_difs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sala_difs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
