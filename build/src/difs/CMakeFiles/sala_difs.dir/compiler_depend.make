# Empty compiler generated dependencies file for sala_difs.
# This may be replaced when dependencies are built.
