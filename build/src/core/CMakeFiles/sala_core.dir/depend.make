# Empty dependencies file for sala_core.
# This may be replaced when dependencies are built.
