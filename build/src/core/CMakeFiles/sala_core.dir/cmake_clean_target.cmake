file(REMOVE_RECURSE
  "libsala_core.a"
)
