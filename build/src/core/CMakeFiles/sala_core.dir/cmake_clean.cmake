file(REMOVE_RECURSE
  "CMakeFiles/sala_core.dir/minidisk_manager.cc.o"
  "CMakeFiles/sala_core.dir/minidisk_manager.cc.o.d"
  "libsala_core.a"
  "libsala_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sala_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
