# Empty compiler generated dependencies file for sala_sustain.
# This may be replaced when dependencies are built.
