src/sustain/CMakeFiles/sala_sustain.dir/tco_model.cc.o: \
 /root/repo/src/sustain/tco_model.cc /usr/include/stdc-predef.h \
 /root/repo/src/sustain/tco_model.h
