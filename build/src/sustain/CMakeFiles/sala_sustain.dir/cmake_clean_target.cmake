file(REMOVE_RECURSE
  "libsala_sustain.a"
)
