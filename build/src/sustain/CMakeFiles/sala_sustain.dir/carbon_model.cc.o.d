src/sustain/CMakeFiles/sala_sustain.dir/carbon_model.cc.o: \
 /root/repo/src/sustain/carbon_model.cc /usr/include/stdc-predef.h \
 /root/repo/src/sustain/carbon_model.h
