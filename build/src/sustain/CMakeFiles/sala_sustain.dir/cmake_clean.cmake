file(REMOVE_RECURSE
  "CMakeFiles/sala_sustain.dir/carbon_model.cc.o"
  "CMakeFiles/sala_sustain.dir/carbon_model.cc.o.d"
  "CMakeFiles/sala_sustain.dir/tco_model.cc.o"
  "CMakeFiles/sala_sustain.dir/tco_model.cc.o.d"
  "libsala_sustain.a"
  "libsala_sustain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sala_sustain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
