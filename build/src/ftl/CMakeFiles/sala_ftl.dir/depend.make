# Empty dependencies file for sala_ftl.
# This may be replaced when dependencies are built.
