file(REMOVE_RECURSE
  "CMakeFiles/sala_ftl.dir/ftl.cc.o"
  "CMakeFiles/sala_ftl.dir/ftl.cc.o.d"
  "libsala_ftl.a"
  "libsala_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sala_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
