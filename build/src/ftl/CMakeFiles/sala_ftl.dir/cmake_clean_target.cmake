file(REMOVE_RECURSE
  "libsala_ftl.a"
)
