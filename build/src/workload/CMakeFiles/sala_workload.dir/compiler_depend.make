# Empty compiler generated dependencies file for sala_workload.
# This may be replaced when dependencies are built.
