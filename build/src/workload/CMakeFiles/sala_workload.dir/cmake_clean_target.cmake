file(REMOVE_RECURSE
  "libsala_workload.a"
)
