file(REMOVE_RECURSE
  "CMakeFiles/sala_workload.dir/aging.cc.o"
  "CMakeFiles/sala_workload.dir/aging.cc.o.d"
  "CMakeFiles/sala_workload.dir/generators.cc.o"
  "CMakeFiles/sala_workload.dir/generators.cc.o.d"
  "libsala_workload.a"
  "libsala_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sala_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
