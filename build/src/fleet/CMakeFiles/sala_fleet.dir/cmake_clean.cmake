file(REMOVE_RECURSE
  "CMakeFiles/sala_fleet.dir/fleet_sim.cc.o"
  "CMakeFiles/sala_fleet.dir/fleet_sim.cc.o.d"
  "libsala_fleet.a"
  "libsala_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sala_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
