# Empty dependencies file for sala_fleet.
# This may be replaced when dependencies are built.
