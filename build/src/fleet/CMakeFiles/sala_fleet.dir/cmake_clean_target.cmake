file(REMOVE_RECURSE
  "libsala_fleet.a"
)
