file(REMOVE_RECURSE
  "CMakeFiles/sala_common.dir/bitmap.cc.o"
  "CMakeFiles/sala_common.dir/bitmap.cc.o.d"
  "CMakeFiles/sala_common.dir/event_queue.cc.o"
  "CMakeFiles/sala_common.dir/event_queue.cc.o.d"
  "CMakeFiles/sala_common.dir/histogram.cc.o"
  "CMakeFiles/sala_common.dir/histogram.cc.o.d"
  "CMakeFiles/sala_common.dir/logging.cc.o"
  "CMakeFiles/sala_common.dir/logging.cc.o.d"
  "CMakeFiles/sala_common.dir/rng.cc.o"
  "CMakeFiles/sala_common.dir/rng.cc.o.d"
  "libsala_common.a"
  "libsala_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sala_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
