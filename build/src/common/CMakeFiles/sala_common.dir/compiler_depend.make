# Empty compiler generated dependencies file for sala_common.
# This may be replaced when dependencies are built.
