file(REMOVE_RECURSE
  "libsala_common.a"
)
