
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/bch.cc" "src/ecc/CMakeFiles/sala_ecc.dir/bch.cc.o" "gcc" "src/ecc/CMakeFiles/sala_ecc.dir/bch.cc.o.d"
  "/root/repo/src/ecc/capability.cc" "src/ecc/CMakeFiles/sala_ecc.dir/capability.cc.o" "gcc" "src/ecc/CMakeFiles/sala_ecc.dir/capability.cc.o.d"
  "/root/repo/src/ecc/gf.cc" "src/ecc/CMakeFiles/sala_ecc.dir/gf.cc.o" "gcc" "src/ecc/CMakeFiles/sala_ecc.dir/gf.cc.o.d"
  "/root/repo/src/ecc/tiredness.cc" "src/ecc/CMakeFiles/sala_ecc.dir/tiredness.cc.o" "gcc" "src/ecc/CMakeFiles/sala_ecc.dir/tiredness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sala_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
