# Empty compiler generated dependencies file for sala_ecc.
# This may be replaced when dependencies are built.
