file(REMOVE_RECURSE
  "CMakeFiles/sala_ecc.dir/bch.cc.o"
  "CMakeFiles/sala_ecc.dir/bch.cc.o.d"
  "CMakeFiles/sala_ecc.dir/capability.cc.o"
  "CMakeFiles/sala_ecc.dir/capability.cc.o.d"
  "CMakeFiles/sala_ecc.dir/gf.cc.o"
  "CMakeFiles/sala_ecc.dir/gf.cc.o.d"
  "CMakeFiles/sala_ecc.dir/tiredness.cc.o"
  "CMakeFiles/sala_ecc.dir/tiredness.cc.o.d"
  "libsala_ecc.a"
  "libsala_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sala_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
