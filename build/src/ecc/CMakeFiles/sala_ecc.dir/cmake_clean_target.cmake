file(REMOVE_RECURSE
  "libsala_ecc.a"
)
