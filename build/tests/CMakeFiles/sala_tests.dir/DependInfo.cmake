
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/bitmap_test.cc" "tests/CMakeFiles/sala_tests.dir/common/bitmap_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/common/bitmap_test.cc.o.d"
  "/root/repo/tests/common/event_queue_test.cc" "tests/CMakeFiles/sala_tests.dir/common/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/common/event_queue_test.cc.o.d"
  "/root/repo/tests/common/histogram_test.cc" "tests/CMakeFiles/sala_tests.dir/common/histogram_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/common/histogram_test.cc.o.d"
  "/root/repo/tests/common/logging_test.cc" "tests/CMakeFiles/sala_tests.dir/common/logging_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/common/logging_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/sala_tests.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/sala_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/core/drain_test.cc" "tests/CMakeFiles/sala_tests.dir/core/drain_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/core/drain_test.cc.o.d"
  "/root/repo/tests/core/minidisk_manager_test.cc" "tests/CMakeFiles/sala_tests.dir/core/minidisk_manager_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/core/minidisk_manager_test.cc.o.d"
  "/root/repo/tests/difs/cluster_reads_test.cc" "tests/CMakeFiles/sala_tests.dir/difs/cluster_reads_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/difs/cluster_reads_test.cc.o.d"
  "/root/repo/tests/difs/cluster_test.cc" "tests/CMakeFiles/sala_tests.dir/difs/cluster_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/difs/cluster_test.cc.o.d"
  "/root/repo/tests/difs/drain_protocol_test.cc" "tests/CMakeFiles/sala_tests.dir/difs/drain_protocol_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/difs/drain_protocol_test.cc.o.d"
  "/root/repo/tests/difs/ec_cluster_test.cc" "tests/CMakeFiles/sala_tests.dir/difs/ec_cluster_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/difs/ec_cluster_test.cc.o.d"
  "/root/repo/tests/ecc/bch_test.cc" "tests/CMakeFiles/sala_tests.dir/ecc/bch_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/ecc/bch_test.cc.o.d"
  "/root/repo/tests/ecc/capability_test.cc" "tests/CMakeFiles/sala_tests.dir/ecc/capability_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/ecc/capability_test.cc.o.d"
  "/root/repo/tests/ecc/gf_test.cc" "tests/CMakeFiles/sala_tests.dir/ecc/gf_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/ecc/gf_test.cc.o.d"
  "/root/repo/tests/ecc/tiredness_test.cc" "tests/CMakeFiles/sala_tests.dir/ecc/tiredness_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/ecc/tiredness_test.cc.o.d"
  "/root/repo/tests/flash/flash_chip_test.cc" "tests/CMakeFiles/sala_tests.dir/flash/flash_chip_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/flash/flash_chip_test.cc.o.d"
  "/root/repo/tests/flash/read_disturb_test.cc" "tests/CMakeFiles/sala_tests.dir/flash/read_disturb_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/flash/read_disturb_test.cc.o.d"
  "/root/repo/tests/flash/wear_model_test.cc" "tests/CMakeFiles/sala_tests.dir/flash/wear_model_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/flash/wear_model_test.cc.o.d"
  "/root/repo/tests/fleet/fleet_sim_test.cc" "tests/CMakeFiles/sala_tests.dir/fleet/fleet_sim_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/fleet/fleet_sim_test.cc.o.d"
  "/root/repo/tests/ftl/dedicated_ecc_test.cc" "tests/CMakeFiles/sala_tests.dir/ftl/dedicated_ecc_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/ftl/dedicated_ecc_test.cc.o.d"
  "/root/repo/tests/ftl/forecast_test.cc" "tests/CMakeFiles/sala_tests.dir/ftl/forecast_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/ftl/forecast_test.cc.o.d"
  "/root/repo/tests/ftl/ftl_test.cc" "tests/CMakeFiles/sala_tests.dir/ftl/ftl_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/ftl/ftl_test.cc.o.d"
  "/root/repo/tests/ftl/invariants_test.cc" "tests/CMakeFiles/sala_tests.dir/ftl/invariants_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/ftl/invariants_test.cc.o.d"
  "/root/repo/tests/ssd/ssd_device_extras_test.cc" "tests/CMakeFiles/sala_tests.dir/ssd/ssd_device_extras_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/ssd/ssd_device_extras_test.cc.o.d"
  "/root/repo/tests/ssd/ssd_device_test.cc" "tests/CMakeFiles/sala_tests.dir/ssd/ssd_device_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/ssd/ssd_device_test.cc.o.d"
  "/root/repo/tests/sustain/carbon_model_test.cc" "tests/CMakeFiles/sala_tests.dir/sustain/carbon_model_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/sustain/carbon_model_test.cc.o.d"
  "/root/repo/tests/sustain/tco_model_test.cc" "tests/CMakeFiles/sala_tests.dir/sustain/tco_model_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/sustain/tco_model_test.cc.o.d"
  "/root/repo/tests/workload/aging_test.cc" "tests/CMakeFiles/sala_tests.dir/workload/aging_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/workload/aging_test.cc.o.d"
  "/root/repo/tests/workload/generators_test.cc" "tests/CMakeFiles/sala_tests.dir/workload/generators_test.cc.o" "gcc" "tests/CMakeFiles/sala_tests.dir/workload/generators_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sala_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/sala_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/sala_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/sala_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sala_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/sala_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sala_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/difs/CMakeFiles/sala_difs.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/sala_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/sustain/CMakeFiles/sala_sustain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
