# Empty dependencies file for sala_tests.
# This may be replaced when dependencies are built.
