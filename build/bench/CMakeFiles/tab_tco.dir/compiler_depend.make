# Empty compiler generated dependencies file for tab_tco.
# This may be replaced when dependencies are built.
