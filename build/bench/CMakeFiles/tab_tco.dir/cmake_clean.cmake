file(REMOVE_RECURSE
  "CMakeFiles/tab_tco.dir/tab_tco.cc.o"
  "CMakeFiles/tab_tco.dir/tab_tco.cc.o.d"
  "tab_tco"
  "tab_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
