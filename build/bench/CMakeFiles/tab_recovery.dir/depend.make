# Empty dependencies file for tab_recovery.
# This may be replaced when dependencies are built.
