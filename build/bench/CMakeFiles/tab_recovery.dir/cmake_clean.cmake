file(REMOVE_RECURSE
  "CMakeFiles/tab_recovery.dir/tab_recovery.cc.o"
  "CMakeFiles/tab_recovery.dir/tab_recovery.cc.o.d"
  "tab_recovery"
  "tab_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
