file(REMOVE_RECURSE
  "CMakeFiles/fig3b_capacity.dir/fig3b_capacity.cc.o"
  "CMakeFiles/fig3b_capacity.dir/fig3b_capacity.cc.o.d"
  "fig3b_capacity"
  "fig3b_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
