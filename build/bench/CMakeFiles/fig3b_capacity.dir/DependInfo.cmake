
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3b_capacity.cc" "bench/CMakeFiles/fig3b_capacity.dir/fig3b_capacity.cc.o" "gcc" "bench/CMakeFiles/fig3b_capacity.dir/fig3b_capacity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fleet/CMakeFiles/sala_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sala_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/sala_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sala_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/sala_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/sala_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/sala_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sala_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
