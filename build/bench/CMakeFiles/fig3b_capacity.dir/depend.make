# Empty dependencies file for fig3b_capacity.
# This may be replaced when dependencies are built.
