file(REMOVE_RECURSE
  "CMakeFiles/tab_lifetime.dir/tab_lifetime.cc.o"
  "CMakeFiles/tab_lifetime.dir/tab_lifetime.cc.o.d"
  "tab_lifetime"
  "tab_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
