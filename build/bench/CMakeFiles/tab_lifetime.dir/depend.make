# Empty dependencies file for tab_lifetime.
# This may be replaced when dependencies are built.
