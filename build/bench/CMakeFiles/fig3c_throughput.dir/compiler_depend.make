# Empty compiler generated dependencies file for fig3c_throughput.
# This may be replaced when dependencies are built.
