file(REMOVE_RECURSE
  "CMakeFiles/fig3c_throughput.dir/fig3c_throughput.cc.o"
  "CMakeFiles/fig3c_throughput.dir/fig3c_throughput.cc.o.d"
  "fig3c_throughput"
  "fig3c_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
