# Empty dependencies file for tab_utilization.
# This may be replaced when dependencies are built.
