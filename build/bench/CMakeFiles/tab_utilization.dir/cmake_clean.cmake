file(REMOVE_RECURSE
  "CMakeFiles/tab_utilization.dir/tab_utilization.cc.o"
  "CMakeFiles/tab_utilization.dir/tab_utilization.cc.o.d"
  "tab_utilization"
  "tab_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
