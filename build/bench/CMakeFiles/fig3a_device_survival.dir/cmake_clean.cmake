file(REMOVE_RECURSE
  "CMakeFiles/fig3a_device_survival.dir/fig3a_device_survival.cc.o"
  "CMakeFiles/fig3a_device_survival.dir/fig3a_device_survival.cc.o.d"
  "fig3a_device_survival"
  "fig3a_device_survival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_device_survival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
