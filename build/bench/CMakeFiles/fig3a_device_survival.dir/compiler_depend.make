# Empty compiler generated dependencies file for fig3a_device_survival.
# This may be replaced when dependencies are built.
