# Empty compiler generated dependencies file for fig2_tiredness_pec.
# This may be replaced when dependencies are built.
