file(REMOVE_RECURSE
  "CMakeFiles/fig2_tiredness_pec.dir/fig2_tiredness_pec.cc.o"
  "CMakeFiles/fig2_tiredness_pec.dir/fig2_tiredness_pec.cc.o.d"
  "fig2_tiredness_pec"
  "fig2_tiredness_pec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_tiredness_pec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
