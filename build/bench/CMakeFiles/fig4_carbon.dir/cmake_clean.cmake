file(REMOVE_RECURSE
  "CMakeFiles/fig4_carbon.dir/fig4_carbon.cc.o"
  "CMakeFiles/fig4_carbon.dir/fig4_carbon.cc.o.d"
  "fig4_carbon"
  "fig4_carbon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_carbon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
