# Empty compiler generated dependencies file for fig4_carbon.
# This may be replaced when dependencies are built.
