file(REMOVE_RECURSE
  "CMakeFiles/fig3d_latency.dir/fig3d_latency.cc.o"
  "CMakeFiles/fig3d_latency.dir/fig3d_latency.cc.o.d"
  "fig3d_latency"
  "fig3d_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3d_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
