# Empty compiler generated dependencies file for fig3d_latency.
# This may be replaced when dependencies are built.
