#include "ecc/gf.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace salamander {
namespace {

TEST(GaloisFieldTest, OrderMatchesFieldSize) {
  for (unsigned m = 3; m <= 15; ++m) {
    GaloisField gf(m);
    EXPECT_EQ(gf.order(), (1u << m) - 1) << "m=" << m;
  }
}

TEST(GaloisFieldTest, RejectsOutOfRangeM) {
  EXPECT_THROW(GaloisField(2), std::invalid_argument);
  EXPECT_THROW(GaloisField(16), std::invalid_argument);
}

TEST(GaloisFieldTest, AlphaGeneratesFullGroup) {
  GaloisField gf(8);
  // alpha^i must hit each nonzero element exactly once over a full period.
  std::vector<bool> seen(256, false);
  for (uint32_t i = 0; i < gf.order(); ++i) {
    uint16_t x = gf.AlphaPow(i);
    ASSERT_NE(x, 0u);
    ASSERT_LT(x, 256u);
    EXPECT_FALSE(seen[x]) << "duplicate at exponent " << i;
    seen[x] = true;
  }
}

TEST(GaloisFieldTest, LogIsInverseOfAlphaPow) {
  GaloisField gf(10);
  for (uint32_t i = 0; i < gf.order(); ++i) {
    EXPECT_EQ(gf.Log(gf.AlphaPow(i)), i);
  }
}

TEST(GaloisFieldTest, AdditionIsXor) {
  GaloisField gf(5);
  EXPECT_EQ(gf.Add(0b10101, 0b01111), 0b11010);
  EXPECT_EQ(gf.Add(7, 7), 0);  // char 2: x + x = 0
}

TEST(GaloisFieldTest, MultiplicationByZeroAndOne) {
  GaloisField gf(8);
  for (uint16_t x = 0; x < 256; ++x) {
    EXPECT_EQ(gf.Mul(x, 0), 0);
    EXPECT_EQ(gf.Mul(0, x), 0);
    EXPECT_EQ(gf.Mul(x, 1), x);
    EXPECT_EQ(gf.Mul(1, x), x);
  }
}

TEST(GaloisFieldTest, MultiplicationCommutesAndAssociates) {
  GaloisField gf(6);
  for (uint16_t a = 1; a < 64; a += 5) {
    for (uint16_t b = 1; b < 64; b += 7) {
      EXPECT_EQ(gf.Mul(a, b), gf.Mul(b, a));
      for (uint16_t c = 1; c < 64; c += 11) {
        EXPECT_EQ(gf.Mul(gf.Mul(a, b), c), gf.Mul(a, gf.Mul(b, c)));
      }
    }
  }
}

TEST(GaloisFieldTest, DistributivityOverAddition) {
  GaloisField gf(7);
  for (uint16_t a = 1; a < 128; a += 13) {
    for (uint16_t b = 0; b < 128; b += 9) {
      for (uint16_t c = 0; c < 128; c += 17) {
        EXPECT_EQ(gf.Mul(a, gf.Add(b, c)),
                  gf.Add(gf.Mul(a, b), gf.Mul(a, c)));
      }
    }
  }
}

TEST(GaloisFieldTest, InverseRoundTrips) {
  GaloisField gf(9);
  for (uint16_t x = 1; x < (1u << 9); ++x) {
    EXPECT_EQ(gf.Mul(x, gf.Inv(x)), 1) << "x=" << x;
  }
}

TEST(GaloisFieldTest, DivisionIsMulByInverse) {
  GaloisField gf(8);
  for (uint16_t a = 1; a < 256; a += 3) {
    for (uint16_t b = 1; b < 256; b += 5) {
      EXPECT_EQ(gf.Div(a, b), gf.Mul(a, gf.Inv(b)));
    }
  }
  EXPECT_EQ(gf.Div(0, 17), 0);
}

TEST(GaloisFieldTest, PowMatchesRepeatedMultiplication) {
  GaloisField gf(8);
  const uint16_t a = 0x53;
  uint16_t acc = 1;
  for (uint32_t e = 0; e < 300; ++e) {
    EXPECT_EQ(gf.Pow(a, e), acc) << "e=" << e;
    acc = gf.Mul(acc, a);
  }
}

TEST(GaloisFieldTest, PowOfZero) {
  GaloisField gf(4);
  EXPECT_EQ(gf.Pow(0, 0), 1);
  EXPECT_EQ(gf.Pow(0, 5), 0);
}

// Fermat's little theorem for GF(2^m): x^(2^m - 1) == 1 for x != 0.
TEST(GaloisFieldTest, ElementOrderDividesGroupOrder) {
  GaloisField gf(11);
  for (uint16_t x = 1; x < (1u << 11); x += 37) {
    EXPECT_EQ(gf.Pow(x, gf.order()), 1) << "x=" << x;
  }
}

}  // namespace
}  // namespace salamander
