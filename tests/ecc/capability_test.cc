#include "ecc/capability.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ecc/bch.h"

namespace salamander {
namespace {

TEST(EccStripeConfigTest, DefaultsMatchPaperRunningExample) {
  EccStripeConfig cfg;
  // 1 KiB data + 128 B parity (one quarter of a 512 B oPage spare share).
  EXPECT_EQ(cfg.data_bits(), 8192u);
  EXPECT_EQ(cfg.parity_bits(), 1024u);
  EXPECT_EQ(cfg.codeword_bits(), 9216u);
  EXPECT_EQ(cfg.correctable_bits(), 1024u / 14);
  EXPECT_NEAR(cfg.code_rate(), 1024.0 / 1152.0, 1e-12);
}

TEST(StripeUncorrectableProbTest, ZeroRberIsZero) {
  EXPECT_EQ(StripeUncorrectableProb(9216, 73, 0.0), 0.0);
}

TEST(StripeUncorrectableProbTest, FullRberIsOne) {
  EXPECT_EQ(StripeUncorrectableProb(9216, 73, 1.0), 1.0);
}

TEST(StripeUncorrectableProbTest, MonotoneInRber) {
  double prev = 0.0;
  for (double rber = 1e-4; rber < 2e-2; rber *= 1.5) {
    double p = StripeUncorrectableProb(9216, 73, rber);
    EXPECT_GE(p, prev) << "rber=" << rber;
    prev = p;
  }
}

TEST(StripeUncorrectableProbTest, MonotoneDecreasingInT) {
  double prev = 1.0;
  for (uint32_t t = 10; t <= 200; t += 10) {
    double p = StripeUncorrectableProb(9216, t, 5e-3);
    EXPECT_LE(p, prev) << "t=" << t;
    prev = p;
  }
}

TEST(StripeUncorrectableProbTest, MatchesDirectSumForSmallCode) {
  // n=15, t=2, p=0.1: tail = 1 - sum_{k=0..2} C(15,k) p^k q^(15-k).
  const double p = 0.1;
  const double q = 0.9;
  double head = 0.0;
  double c = 1.0;  // C(15, k)
  for (uint32_t k = 0; k <= 2; ++k) {
    head += c * std::pow(p, k) * std::pow(q, 15 - k);
    c = c * (15.0 - k) / (k + 1.0);
  }
  EXPECT_NEAR(StripeUncorrectableProb(15, 2, p), 1.0 - head, 1e-12);
}

TEST(StripeUncorrectableProbTest, NearZeroWellBelowCapability) {
  // mean errors = 9216 * 1e-4 ~ 0.9, t = 73: essentially never fails.
  EXPECT_LT(StripeUncorrectableProb(9216, 73, 1e-4), 1e-30);
}

TEST(StripeUncorrectableProbTest, NearOneWellAboveCapability) {
  // mean errors = 9216 * 0.05 ~ 460 >> t = 73.
  EXPECT_GT(StripeUncorrectableProb(9216, 73, 0.05), 0.999999);
}

TEST(PageUncorrectableProbTest, SingleStripeMatches) {
  const double per_stripe = StripeUncorrectableProb(9216, 73, 6e-3);
  EXPECT_NEAR(PageUncorrectableProb(9216, 73, 1, 6e-3), per_stripe,
              per_stripe * 1e-9);
}

TEST(PageUncorrectableProbTest, MultiStripeUnionBound) {
  const double one = PageUncorrectableProb(9216, 73, 1, 6e-3);
  const double sixteen = PageUncorrectableProb(9216, 73, 16, 6e-3);
  EXPECT_GT(sixteen, one);
  EXPECT_LE(sixteen, 16.0 * one * 1.0001);
}

TEST(MaxTolerableRberTest, InverseOfFailProbability) {
  const uint32_t n = 9216;
  const uint32_t t = 73;
  const double target = 1e-11;
  const double rber = MaxTolerableRber(n, t, target);
  EXPECT_GT(rber, 0.0);
  EXPECT_LT(rber, 0.5);
  EXPECT_LE(StripeUncorrectableProb(n, t, rber), target * 1.01);
  // Slightly above the threshold must violate the target.
  EXPECT_GT(StripeUncorrectableProb(n, t, rber * 1.05), target);
}

TEST(MaxTolerableRberTest, MoreParityToleratesMoreErrors) {
  const double rber_t73 = MaxTolerableRber(9216, 73, 1e-11);
  const double rber_t292 = MaxTolerableRber(12288, 292, 1e-11);
  // The L1 stripe (4x parity) must tolerate substantially higher RBER.
  EXPECT_GT(rber_t292, 2.0 * rber_t73);
}

TEST(MaxTolerableRberTest, DegenerateFullCorrection) {
  EXPECT_EQ(MaxTolerableRber(100, 100, 1e-11), 1.0);
}

// Cross-validation: the closed-form tolerable RBER, fed through the *real*
// BCH codec as an error-injection rate, must essentially never produce a
// decode failure (validated at a looser target for test runtime).
TEST(CapabilityCrossValidationTest, RealCodecSurvivesModelRber) {
  const unsigned m = 10;  // n = 1023
  const unsigned t = 20;
  BchCode code(m, t);
  const double rber = MaxTolerableRber(code.n(), t, 1e-3);
  Rng rng(31337);
  unsigned failures = 0;
  const int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<uint8_t> data(code.k());
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.NextU64() & 1);
    }
    auto codeword = code.Encode(data);
    for (auto& bit : codeword) {
      if (rng.Bernoulli(rber)) {
        bit ^= 1u;
      }
    }
    if (!code.Decode(codeword).ok) {
      ++failures;
    }
  }
  // Expected failures ~ kTrials * 1e-3 = 0.3; allow a little slack.
  EXPECT_LE(failures, 3u);
}

}  // namespace
}  // namespace salamander
