#include "ecc/bch.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"

namespace salamander {
namespace {

std::vector<uint8_t> RandomBits(Rng& rng, size_t length) {
  std::vector<uint8_t> bits(length);
  for (auto& bit : bits) {
    bit = static_cast<uint8_t>(rng.NextU64() & 1u);
  }
  return bits;
}

// Flips `count` distinct random bit positions.
void InjectErrors(Rng& rng, std::vector<uint8_t>& codeword, unsigned count) {
  std::vector<uint32_t> positions;
  while (positions.size() < count) {
    uint32_t p = static_cast<uint32_t>(rng.UniformU64(codeword.size()));
    bool fresh = true;
    for (uint32_t q : positions) {
      if (q == p) {
        fresh = false;
        break;
      }
    }
    if (fresh) {
      positions.push_back(p);
      codeword[p] ^= 1u;
    }
  }
}

TEST(BchCodeTest, KnownParametersHamming) {
  // t=1 BCH over GF(2^4) is the (15, 11) Hamming code.
  BchCode code(4, 1);
  EXPECT_EQ(code.n(), 15u);
  EXPECT_EQ(code.k(), 11u);
  EXPECT_EQ(code.parity_bits(), 4u);
}

TEST(BchCodeTest, KnownParameters15_7) {
  // Classic (15, 7) double-error-correcting BCH.
  BchCode code(4, 2);
  EXPECT_EQ(code.n(), 15u);
  EXPECT_EQ(code.k(), 7u);
  // Its generator is x^8+x^7+x^6+x^4+1 = 0b111010001 (Lin & Costello).
  const std::vector<uint8_t> expected{1, 0, 0, 0, 1, 0, 1, 1, 1};
  EXPECT_EQ(code.generator(), expected);
}

TEST(BchCodeTest, KnownParameters15_5) {
  // (15, 5) triple-error-correcting BCH; g(x) degree 10.
  BchCode code(4, 3);
  EXPECT_EQ(code.k(), 5u);
  EXPECT_EQ(code.parity_bits(), 10u);
}

TEST(BchCodeTest, RejectsZeroT) {
  EXPECT_THROW(BchCode(8, 0), std::invalid_argument);
}

TEST(BchCodeTest, RejectsDimensionlessCode) {
  // t so large no data bits remain.
  EXPECT_THROW(BchCode(4, 10), std::invalid_argument);
}

TEST(BchCodeTest, EncodeIsSystematic) {
  BchCode code(8, 8);
  Rng rng(42);
  auto data = RandomBits(rng, code.k());
  auto codeword = code.Encode(data);
  ASSERT_EQ(codeword.size(), code.n());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(codeword[i], data[i]);
  }
}

TEST(BchCodeTest, CleanCodewordDecodesWithZeroCorrections) {
  BchCode code(8, 8);
  Rng rng(1);
  auto codeword = code.Encode(RandomBits(rng, code.k()));
  auto result = code.Decode(codeword);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.corrected, 0u);
}

TEST(BchCodeTest, EncodeRejectsOversizedData) {
  BchCode code(6, 3);
  std::vector<uint8_t> too_long(code.k() + 1, 0);
  EXPECT_THROW(code.Encode(too_long), std::invalid_argument);
}

// Exhaustive single-bit-error correction for a small code.
TEST(BchCodeTest, CorrectsEverySingleBitError) {
  BchCode code(5, 2);
  Rng rng(7);
  auto data = RandomBits(rng, code.k());
  const auto clean = code.Encode(data);
  for (size_t p = 0; p < clean.size(); ++p) {
    auto corrupted = clean;
    corrupted[p] ^= 1u;
    auto result = code.Decode(corrupted);
    EXPECT_TRUE(result.ok) << "error at " << p;
    EXPECT_EQ(result.corrected, 1u);
    EXPECT_EQ(corrupted, clean);
  }
}

struct BchParams {
  unsigned m;
  unsigned t;
};

class BchCorrectionTest : public ::testing::TestWithParam<BchParams> {};

// Property: any e <= t injected errors are corrected exactly.
TEST_P(BchCorrectionTest, CorrectsUpToTErrors) {
  const auto [m, t] = GetParam();
  BchCode code(m, t);
  Rng rng(1000 + m * 100 + t);
  for (unsigned e = 0; e <= t; ++e) {
    auto data = RandomBits(rng, code.k());
    auto clean = code.Encode(data);
    auto corrupted = clean;
    InjectErrors(rng, corrupted, e);
    auto result = code.Decode(corrupted);
    ASSERT_TRUE(result.ok) << "m=" << m << " t=" << t << " e=" << e;
    EXPECT_EQ(result.corrected, e);
    EXPECT_EQ(corrupted, clean);
  }
}

// Property: with t+1 errors the decoder either reports failure (leaving the
// input untouched) or "miscorrects" onto some *valid* codeword (possible for
// perfect or near-perfect codes, e.g. t=1 Hamming, where every word is within
// distance t of a codeword). It must never return ok with a word that fails
// its own syndrome check, and must never claim more than t corrections.
TEST_P(BchCorrectionTest, BeyondTEitherFailsOrLandsOnValidCodeword) {
  const auto [m, t] = GetParam();
  BchCode code(m, t);
  Rng rng(9000 + m * 100 + t);
  const unsigned kTrials = 20;
  for (unsigned trial = 0; trial < kTrials; ++trial) {
    auto clean = code.Encode(RandomBits(rng, code.k()));
    auto corrupted = clean;
    InjectErrors(rng, corrupted, t + 1);
    auto backup = corrupted;
    auto result = code.Decode(corrupted);
    if (!result.ok) {
      EXPECT_EQ(corrupted, backup) << "failed decode must not mutate input";
    } else {
      EXPECT_LE(result.corrected, t);
      // The decoder's syndrome re-check guarantees a valid codeword; verify
      // independently that a clean decode of the result is a fixpoint.
      auto recheck = corrupted;
      auto second = code.Decode(recheck);
      EXPECT_TRUE(second.ok);
      EXPECT_EQ(second.corrected, 0u);
      EXPECT_EQ(recheck, corrupted);
    }
  }
}

// Property: shortened codewords (fewer data bits) round-trip and correct.
TEST_P(BchCorrectionTest, ShortenedCodeRoundTripsWithErrors) {
  const auto [m, t] = GetParam();
  BchCode code(m, t);
  Rng rng(5000 + m * 100 + t);
  const size_t short_k = code.k() / 2 + 1;
  auto data = RandomBits(rng, short_k);
  auto clean = code.Encode(data);
  ASSERT_EQ(clean.size(), short_k + code.parity_bits());
  auto corrupted = clean;
  InjectErrors(rng, corrupted, t);
  auto result = code.Decode(corrupted);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.corrected, t);
  EXPECT_EQ(corrupted, clean);
}

INSTANTIATE_TEST_SUITE_P(
    CodeSweep, BchCorrectionTest,
    ::testing::Values(BchParams{5, 1}, BchParams{5, 3}, BchParams{6, 2},
                      BchParams{7, 4}, BchParams{8, 2}, BchParams{8, 8},
                      BchParams{9, 5}, BchParams{10, 6}, BchParams{11, 4},
                      BchParams{13, 8}),
    [](const ::testing::TestParamInfo<BchParams>& param_info) {
      return "m" + std::to_string(param_info.param.m) + "t" +
             std::to_string(param_info.param.t);
    });

// An SSD-realistic stripe: ~1 KiB data protected by 128 B parity over
// GF(2^13) corrects ~78 bit errors. This is the geometry the capability
// model assumes at L0; proving the real codec achieves it grounds Fig. 2.
TEST(BchCodeTest, SsdStripeGeometryL0) {
  const unsigned m = 13;
  const unsigned t = 78;
  BchCode code(m, t);
  EXPECT_EQ(code.n(), 8191u);
  // Parity cost is at most m*t, usually exactly for these parameters.
  EXPECT_LE(code.parity_bits(), m * t);
  EXPECT_GE(code.k(), 8192u - 1024u);

  Rng rng(2025);
  const size_t data_bits = 1024 * 8 - code.parity_bits() % 8;  // ~1 KiB
  auto data = RandomBits(rng, std::min<size_t>(data_bits, code.k()));
  auto clean = code.Encode(data);
  auto corrupted = clean;
  InjectErrors(rng, corrupted, t);
  auto result = code.Decode(corrupted);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.corrected, t);
  EXPECT_EQ(corrupted, clean);
}

}  // namespace
}  // namespace salamander
