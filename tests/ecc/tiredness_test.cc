#include "ecc/tiredness.h"

#include <gtest/gtest.h>

namespace salamander {
namespace {

TEST(TirednessTest, L0MatchesPaperRunningExample) {
  FPageEccGeometry geo;
  auto l0 = ComputeTirednessLevel(geo, 0);
  EXPECT_EQ(l0.level, 0u);
  EXPECT_EQ(l0.data_opages, 4u);
  EXPECT_EQ(l0.data_bytes, 16384u);
  EXPECT_EQ(l0.ecc_bytes, 2048u);
  // Paper: "a typical flash page spare code rate is 88%" [13].
  EXPECT_NEAR(l0.code_rate, 16384.0 / 18432.0, 1e-12);
  EXPECT_NEAR(l0.code_rate, 0.888, 0.001);
  EXPECT_EQ(l0.stripes, 16u);
  EXPECT_EQ(l0.parity_bytes_per_stripe, 128u);
}

TEST(TirednessTest, L1SacrificesOneOPage) {
  FPageEccGeometry geo;
  auto l1 = ComputeTirednessLevel(geo, 1);
  EXPECT_EQ(l1.data_opages, 3u);
  EXPECT_EQ(l1.data_bytes, 12288u);
  EXPECT_EQ(l1.ecc_bytes, 2048u + 4096u);
  EXPECT_NEAR(l1.code_rate, 12288.0 / 18432.0, 1e-12);
  EXPECT_EQ(l1.stripes, 12u);
  EXPECT_EQ(l1.parity_bytes_per_stripe, 512u);
}

TEST(TirednessTest, TerminalLevelHasNoCapacity) {
  FPageEccGeometry geo;
  auto l4 = ComputeTirednessLevel(geo, 4);
  EXPECT_EQ(l4.data_opages, 0u);
  EXPECT_EQ(l4.data_bytes, 0u);
  EXPECT_EQ(l4.max_tolerable_rber, 0.0);
}

TEST(TirednessTest, LevelsBeyondMaxClampToTerminal) {
  FPageEccGeometry geo;
  auto beyond = ComputeTirednessLevel(geo, 9);
  EXPECT_EQ(beyond.level, geo.opages_per_fpage);
  EXPECT_EQ(beyond.data_bytes, 0u);
}

TEST(TirednessTest, CodeRateStrictlyDecreasesWithLevel) {
  FPageEccGeometry geo;
  auto ladder = ComputeTirednessLadder(geo);
  ASSERT_EQ(ladder.size(), 5u);
  for (size_t l = 1; l + 1 < ladder.size(); ++l) {
    EXPECT_LT(ladder[l].code_rate, ladder[l - 1].code_rate) << "L" << l;
  }
}

TEST(TirednessTest, TolerableRberStrictlyIncreasesWithLevel) {
  FPageEccGeometry geo;
  auto ladder = ComputeTirednessLadder(geo);
  for (size_t l = 1; l + 1 < ladder.size(); ++l) {
    EXPECT_GT(ladder[l].max_tolerable_rber, ladder[l - 1].max_tolerable_rber)
        << "L" << l;
  }
}

TEST(TirednessTest, CorrectionCapabilityScalesWithRepurposedPages) {
  FPageEccGeometry geo;
  auto l0 = ComputeTirednessLevel(geo, 0);
  auto l1 = ComputeTirednessLevel(geo, 1);
  // L1 quadruples per-stripe parity (512 B vs 128 B) -> ~4x t.
  EXPECT_NEAR(static_cast<double>(l1.correctable_bits_per_stripe) /
                  static_cast<double>(l0.correctable_bits_per_stripe),
              4.0, 0.15);
}

TEST(TirednessTest, AlternativeGeometrySmallFPage) {
  // An 8 KiB fPage (2 oPages) with 1 KiB spare — §4.2 notes fPage < 16KB.
  FPageEccGeometry geo;
  geo.opages_per_fpage = 2;
  geo.spare_bytes = 1024;
  auto ladder = ComputeTirednessLadder(geo);
  ASSERT_EQ(ladder.size(), 3u);
  EXPECT_EQ(ladder[0].data_bytes, 8192u);
  EXPECT_EQ(ladder[1].data_bytes, 4096u);
  EXPECT_EQ(ladder[2].data_bytes, 0u);
  EXPECT_GT(ladder[1].max_tolerable_rber, ladder[0].max_tolerable_rber);
}

TEST(TirednessTest, EccBytesConserveFPageArea) {
  FPageEccGeometry geo;
  auto ladder = ComputeTirednessLadder(geo);
  const uint32_t total = geo.fpage_data_bytes() + geo.spare_bytes;
  for (const auto& level : ladder) {
    EXPECT_EQ(level.data_bytes + level.ecc_bytes, total)
        << "L" << level.level;
  }
}

}  // namespace
}  // namespace salamander
