// Minimal recursive-descent JSON well-formedness checker for telemetry
// tests. Validates full RFC 8259 syntax (objects, arrays, strings with
// escapes, numbers, literals) without building a DOM — enough to assert
// that exported documents parse, with no third-party dependency.
#ifndef SALAMANDER_TESTS_TELEMETRY_JSON_LITE_H_
#define SALAMANDER_TESTS_TELEMETRY_JSON_LITE_H_

#include <cctype>
#include <cstddef>
#include <string_view>

namespace salamander {
namespace json_lite {

class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (Peek() != '"' || !String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    if (!Digits()) {
      return false;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!Digits()) {
        return false;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!Digits()) {
        return false;
      }
    }
    return pos_ > start;
  }

  bool Digits() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

inline bool IsWellFormed(std::string_view text) {
  return Checker(text).Valid();
}

}  // namespace json_lite
}  // namespace salamander

#endif  // SALAMANDER_TESTS_TELEMETRY_JSON_LITE_H_
