#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "tests/telemetry/json_lite.h"

namespace salamander {
namespace {

TEST(TraceRecorderTest, EmptyRecorderExportsWellFormedDocument) {
  TraceRecorder trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.event_count(), 0u);
  const std::string json = trace.ToJson();
  EXPECT_TRUE(json_lite::IsWellFormed(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceRecorderTest, RecordsAllEventKinds) {
  TraceRecorder trace;
  trace.Span("day 1", "fleet", 0, 1000, 0);
  trace.Instant("device_death:wear:3", "fleet", 500, 0);
  trace.CounterSample("functioning_devices", 1000, 63.0, 0);
  trace.NameLane(0, "fleet:baseline");
  EXPECT_EQ(trace.event_count(), 3u);  // lane names are metadata, not events
  EXPECT_FALSE(trace.empty());

  const std::string json = trace.ToJson();
  EXPECT_TRUE(json_lite::IsWellFormed(json));
  // Chrome trace-format phase codes for each event kind.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("fleet:baseline"), std::string::npos);
}

TEST(TraceRecorderTest, HostileNamesStillExportValidJson) {
  TraceRecorder trace;
  trace.Span("span \"quoted\"\n", "cat\\egory", 0, 10, 1);
  trace.Instant("tab\there", "c", 5, 1);
  trace.NameLane(1, "lane\nname");
  EXPECT_TRUE(json_lite::IsWellFormed(trace.ToJson()));
}

TEST(TraceRecorderTest, MergeFromAppendsInOrder) {
  TraceRecorder a;
  a.Span("burst 0", "chaos", 0, 1000, 0);
  TraceRecorder b;
  b.Span("burst 0", "chaos", 0, 1000, 1);
  a.MergeFrom(b);
  EXPECT_EQ(a.event_count(), 2u);
  const std::string json = a.ToJson();
  EXPECT_TRUE(json_lite::IsWellFormed(json));
  // a's event serializes before b's (merge order is unit-ID order).
  EXPECT_LT(json.find("\"tid\": 0"), json.find("\"tid\": 1"));
}

TEST(TraceRecorderTest, MergeFromCarriesLaneNames) {
  TraceRecorder a;
  TraceRecorder b;
  b.NameLane(1, "universe 1");
  b.Span("burst 0", "chaos", 0, 1000, 1);
  a.MergeFrom(b);
  const std::string json = a.ToJson();
  EXPECT_TRUE(json_lite::IsWellFormed(json));
  EXPECT_NE(json.find("universe 1"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(TraceRecorderTest, MergeIsDeterministic) {
  auto build = [] {
    TraceRecorder unit0;
    unit0.Span("day 1", "fleet", 0, 1000, 0);
    TraceRecorder unit1;
    unit1.Instant("recovery_wave", "difs", 500, 1);
    TraceRecorder merged;
    merged.MergeFrom(unit0);
    merged.MergeFrom(unit1);
    return merged.ToJson();
  };
  EXPECT_EQ(build(), build());
}

TEST(TraceRecorderTest, ResetClearsEventsAndLanes) {
  TraceRecorder trace;
  trace.Span("s", "c", 0, 1, 0);
  trace.NameLane(0, "lane");
  trace.Reset();
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.event_count(), 0u);
}

TEST(TraceRecorderTest, TimestampsAreCallerSuppliedSimulatedTime) {
  TraceRecorder trace;
  trace.Span("day 3", "fleet", 2000, 1000, 0);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"ts\": 2000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 1000"), std::string::npos);
}

}  // namespace
}  // namespace salamander
