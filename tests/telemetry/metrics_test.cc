#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "tests/telemetry/json_lite.h"

namespace salamander {
namespace {

TEST(CounterTest, IncrementAddSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(9);
  EXPECT_EQ(c.value(), 10u);
  c.Set(3);
  EXPECT_EQ(c.value(), 3u);
}

TEST(GaugeTest, SetAdd) {
  Gauge g;
  g.Set(2.5);
  g.Add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(ShardedCounterTest, ShardsAreIndependent) {
  ShardedCounter c(4);
  c.Add(0, 10);
  c.Increment(2);
  c.Increment(2);
  EXPECT_EQ(c.shard_count(), 4u);
  EXPECT_EQ(c.shard_value(0), 10u);
  EXPECT_EQ(c.shard_value(1), 0u);
  EXPECT_EQ(c.shard_value(2), 2u);
  EXPECT_EQ(c.Total(), 12u);
}

TEST(ShardedCounterTest, TotalIsOrderIndependent) {
  // The sum must not depend on which worker touched which shard first —
  // any permutation of the same per-shard contributions totals the same.
  ShardedCounter a(3);
  a.Add(0, 5);
  a.Add(1, 7);
  a.Add(2, 11);
  ShardedCounter b(3);
  b.Add(2, 11);
  b.Add(0, 5);
  b.Add(1, 7);
  EXPECT_EQ(a.Total(), b.Total());
}

TEST(ShardedCounterTest, ResetClearsAllShards) {
  ShardedCounter c(2);
  c.Add(0, 1);
  c.Add(1, 2);
  c.Reset();
  EXPECT_EQ(c.Total(), 0u);
  EXPECT_EQ(c.shard_value(1), 0u);
}

TEST(MetricRegistryTest, GetCreatesFindDoesNot) {
  MetricRegistry registry;
  EXPECT_EQ(registry.FindCounter("x"), nullptr);
  EXPECT_EQ(registry.FindGauge("x"), nullptr);
  EXPECT_EQ(registry.FindHistogram("x"), nullptr);
  EXPECT_EQ(registry.instrument_count(), 0u);

  registry.GetCounter("flash.programs").Add(7);
  registry.GetGauge("ssd.live_minidisks").Set(12.0);
  registry.GetHistogram("ftl.read_latency").Record(100);
  EXPECT_EQ(registry.instrument_count(), 3u);

  ASSERT_NE(registry.FindCounter("flash.programs"), nullptr);
  EXPECT_EQ(registry.FindCounter("flash.programs")->value(), 7u);
  ASSERT_NE(registry.FindGauge("ssd.live_minidisks"), nullptr);
  EXPECT_DOUBLE_EQ(registry.FindGauge("ssd.live_minidisks")->value(), 12.0);
  ASSERT_NE(registry.FindHistogram("ftl.read_latency"), nullptr);
  EXPECT_EQ(registry.FindHistogram("ftl.read_latency")->data().count(), 1u);
}

TEST(MetricRegistryTest, GetReturnsSameInstrument) {
  MetricRegistry registry;
  registry.GetCounter("a").Increment();
  registry.GetCounter("a").Increment();
  EXPECT_EQ(registry.GetCounter("a").value(), 2u);
  EXPECT_EQ(registry.instrument_count(), 1u);
}

TEST(MetricRegistryTest, MergeFromAddsCountersAndHistograms) {
  MetricRegistry a;
  MetricRegistry b;
  a.GetCounter("n").Add(3);
  b.GetCounter("n").Add(4);
  b.GetCounter("only_b").Add(1);
  a.GetHistogram("h").Record(10);
  b.GetHistogram("h").Record(1000);
  EXPECT_TRUE(a.MergeFrom(b));
  EXPECT_EQ(a.FindCounter("n")->value(), 7u);
  EXPECT_EQ(a.FindCounter("only_b")->value(), 1u);
  EXPECT_EQ(a.FindHistogram("h")->data().count(), 2u);
  EXPECT_EQ(a.FindHistogram("h")->data().max(), 1000u);
}

TEST(MetricRegistryTest, MergeFromGaugeLastWins) {
  MetricRegistry a;
  MetricRegistry b;
  a.GetGauge("depth").Set(5.0);
  b.GetGauge("depth").Set(9.0);
  EXPECT_TRUE(a.MergeFrom(b));
  EXPECT_DOUBLE_EQ(a.FindGauge("depth")->value(), 9.0);
}

TEST(MetricRegistryTest, MergeFromMismatchedHistogramLayoutReportsFalse) {
  MetricRegistry a;
  MetricRegistry b;
  a.GetHistogram("h", 32).Record(1);
  b.GetHistogram("h", 64).Record(2);
  a.GetCounter("n").Add(1);
  b.GetCounter("n").Add(1);
  EXPECT_FALSE(a.MergeFrom(b));
  // Everything mergeable still merged.
  EXPECT_EQ(a.FindCounter("n")->value(), 2u);
  EXPECT_EQ(a.FindHistogram("h")->data().count(), 1u);
}

TEST(MetricRegistryTest, ExportIsRegistrationOrderIndependent) {
  // The determinism contract: two registries holding the same values export
  // byte-identical documents regardless of the order instruments were
  // created in (parallel workers touch instruments in different orders).
  MetricRegistry a;
  a.GetCounter("z.last").Add(1);
  a.GetGauge("m.middle").Set(2.0);
  a.GetCounter("a.first").Add(3);
  a.GetHistogram("h.lat").Record(50);

  MetricRegistry b;
  b.GetHistogram("h.lat").Record(50);
  b.GetCounter("a.first").Add(3);
  b.GetCounter("z.last").Add(1);
  b.GetGauge("m.middle").Set(2.0);

  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_EQ(a.ToCsv(), b.ToCsv());
}

TEST(MetricRegistryTest, MergeOrderOfDisjointShardsIsDeterministic) {
  // Merging per-unit registries at a barrier in unit-ID order must yield
  // identical exports no matter how work was distributed, as long as each
  // unit's contribution is the same — the bench-level cross-check in
  // fleet_scaling relies on exactly this.
  MetricRegistry unit0;
  unit0.GetCounter("steps").Add(10);
  MetricRegistry unit1;
  unit1.GetCounter("steps").Add(20);

  MetricRegistry run_a;
  EXPECT_TRUE(run_a.MergeFrom(unit0));
  EXPECT_TRUE(run_a.MergeFrom(unit1));

  MetricRegistry run_b;  // same units, same order, different worker split
  EXPECT_TRUE(run_b.MergeFrom(unit0));
  EXPECT_TRUE(run_b.MergeFrom(unit1));

  EXPECT_EQ(run_a.ToJson(), run_b.ToJson());
  EXPECT_EQ(run_a.FindCounter("steps")->value(), 30u);
}

TEST(MetricRegistryTest, ResetClearsEverything) {
  MetricRegistry registry;
  registry.GetCounter("a").Add(1);
  registry.GetGauge("b").Set(2.0);
  registry.Reset();
  EXPECT_EQ(registry.instrument_count(), 0u);
  EXPECT_EQ(registry.FindCounter("a"), nullptr);
}

TEST(MetricRegistryTest, JsonExportIsWellFormed) {
  MetricRegistry registry;
  registry.GetCounter("flash.programs").Add(123);
  registry.GetGauge("fleet.capacity_bytes").Set(1.5e12);
  registry.GetHistogram("difs.wave_opages").Record(42);
  EXPECT_TRUE(json_lite::IsWellFormed(registry.ToJson()));
}

TEST(MetricRegistryTest, EmptyRegistryJsonIsWellFormed) {
  MetricRegistry registry;
  EXPECT_TRUE(json_lite::IsWellFormed(registry.ToJson()));
}

TEST(MetricRegistryTest, HostileInstrumentNamesStillExportValidJson) {
  // Names are dot-identifiers by convention, but the exporter must emit
  // valid JSON for any input.
  MetricRegistry registry;
  registry.GetCounter("quote\"backslash\\newline\ntab\t").Add(1);
  registry.GetGauge("control\x01char").Set(2.0);
  EXPECT_TRUE(json_lite::IsWellFormed(registry.ToJson()));
}

TEST(FormatMetricValueTest, NonFiniteValuesStayParseable) {
  EXPECT_TRUE(json_lite::IsWellFormed(FormatMetricValue(NAN)));
  EXPECT_TRUE(json_lite::IsWellFormed(FormatMetricValue(INFINITY)));
  EXPECT_TRUE(json_lite::IsWellFormed(FormatMetricValue(-INFINITY)));
  EXPECT_TRUE(json_lite::IsWellFormed(FormatMetricValue(3.25)));
}

TEST(FormatMetricValueTest, RoundTripsExactly) {
  for (double v : {0.0, 1.0, -2.5, 1e12, 0.1, 1.0 / 3.0}) {
    EXPECT_EQ(std::stod(FormatMetricValue(v)), v) << v;
  }
}

TEST(JsonEscapeStringTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscapeString("plain"), "plain");
  EXPECT_EQ(JsonEscapeString("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscapeString("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscapeString("a\nb"), "a\\nb");
}

}  // namespace
}  // namespace salamander
