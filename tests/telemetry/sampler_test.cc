#include "telemetry/sampler.h"

#include <gtest/gtest.h>

#include <string>

#include "telemetry/metrics.h"
#include "tests/telemetry/json_lite.h"

namespace salamander {
namespace {

TEST(TimeSeriesSamplerTest, EmptySamplerExportsAreWellFormed) {
  TimeSeriesSampler sampler;
  EXPECT_EQ(sampler.probe_count(), 0u);
  EXPECT_EQ(sampler.sample_count(), 0u);
  EXPECT_TRUE(json_lite::IsWellFormed(sampler.ToJson()));
  // Degenerate wide CSV: just the "t" header line, no rows.
  EXPECT_EQ(sampler.ToCsv(), "t\n");
}

TEST(TimeSeriesSamplerTest, ProbesEvaluatedAtEachSample) {
  TimeSeriesSampler sampler;
  double health = 1.0;
  sampler.AddProbe("fleet.health", [&health] { return health; });
  sampler.Sample(0.0);
  health = 0.5;
  sampler.Sample(1.0);
  EXPECT_EQ(sampler.sample_count(), 2u);

  const TimeSeries* series = sampler.Find("fleet.health");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->points().size(), 2u);
  EXPECT_DOUBLE_EQ(series->points()[0].first, 0.0);
  EXPECT_DOUBLE_EQ(series->points()[0].second, 1.0);
  EXPECT_DOUBLE_EQ(series->points()[1].first, 1.0);
  EXPECT_DOUBLE_EQ(series->points()[1].second, 0.5);
}

TEST(TimeSeriesSamplerTest, FindUnknownNameReturnsNull) {
  TimeSeriesSampler sampler;
  sampler.AddProbe("a", [] { return 0.0; });
  EXPECT_EQ(sampler.Find("b"), nullptr);
}

TEST(TimeSeriesSamplerTest, RegistryBoundProbesTrackInstruments) {
  MetricRegistry registry;
  Counter& faults = registry.GetCounter("faults.injected_total");
  Gauge& depth = registry.GetGauge("ssd.pending_event_depth");

  TimeSeriesSampler sampler;
  sampler.AddCounterProbe("faults", faults);
  sampler.AddGaugeProbe("depth", depth);

  faults.Add(3);
  depth.Set(7.0);
  sampler.Sample(1.0);
  faults.Add(2);
  depth.Set(4.0);
  sampler.Sample(2.0);

  EXPECT_DOUBLE_EQ(sampler.Find("faults")->points()[0].second, 3.0);
  EXPECT_DOUBLE_EQ(sampler.Find("faults")->points()[1].second, 5.0);
  EXPECT_DOUBLE_EQ(sampler.Find("depth")->points()[1].second, 4.0);
}

TEST(TimeSeriesSamplerTest, WideCsvHasHeaderAndOneRowPerSample) {
  TimeSeriesSampler sampler;
  sampler.AddProbe("x", [] { return 1.0; });
  sampler.AddProbe("y", [] { return 2.0; });
  sampler.Sample(0.0);
  sampler.Sample(5.0);

  const std::string csv = sampler.ToCsv();
  // Header names the probes in registration order.
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "t,x,y");
  size_t rows = 0;
  for (char c : csv) {
    rows += (c == '\n');
  }
  EXPECT_EQ(rows, 3u);  // header + 2 samples
}

TEST(TimeSeriesSamplerTest, JsonExportIsWellFormed) {
  TimeSeriesSampler sampler;
  sampler.AddProbe("needs \"escaping\"\n", [] { return 1.5; });
  sampler.Sample(0.0);
  sampler.Sample(1.0);
  EXPECT_TRUE(json_lite::IsWellFormed(sampler.ToJson()));
}

TEST(TimeSeriesSamplerTest, SamplesAreDeterministicAcrossInstances) {
  // Two samplers fed the same probe values at the same simulated times
  // export byte-identical documents — the property the fleet harness
  // relies on when comparing serial vs parallel runs.
  auto build = [] {
    TimeSeriesSampler sampler;
    sampler.AddProbe("capacity", [] { return 1024.0; });
    sampler.Sample(0.0);
    sampler.Sample(1.0);
    return sampler.ToJson();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace salamander
