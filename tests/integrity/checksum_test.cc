// End-to-end integrity codec and scrub-cursor unit tests: deterministic
// hashing, corruption detectability, and the pure-state cursor arithmetic the
// background scrubbers are built on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "integrity/checksum.h"
#include "integrity/scrub_cursor.h"

namespace salamander {
namespace {

TEST(ChecksumCodecTest, HashIsDeterministicAndSeedSensitive) {
  const ChecksumCodec a(42);
  const ChecksumCodec b(42);
  const ChecksumCodec c(43);
  const char payload[] = "salamander end-to-end integrity";
  EXPECT_EQ(a.Hash(payload, sizeof(payload)),
            b.Hash(payload, sizeof(payload)));
  EXPECT_NE(a.Hash(payload, sizeof(payload)),
            c.Hash(payload, sizeof(payload)));
}

TEST(ChecksumCodecTest, HashCoversEveryByteIncludingTail) {
  const ChecksumCodec codec(7);
  // Lengths around the 8-byte lane boundary: the tail bytes must all count.
  for (size_t len = 1; len <= 24; ++len) {
    std::vector<uint8_t> buf(len, 0xa5);
    const uint64_t base = codec.Hash(buf.data(), buf.size());
    for (size_t i = 0; i < len; ++i) {
      buf[i] ^= 0x01;
      EXPECT_NE(codec.Hash(buf.data(), buf.size()), base)
          << "flip at byte " << i << " of " << len << " went undetected";
      buf[i] ^= 0x01;
    }
  }
}

TEST(ChecksumCodecTest, StampsAreUniquePerChunkAndGeneration) {
  const ChecksumCodec codec(1);
  EXPECT_NE(codec.Stamp(0, 0), codec.Stamp(1, 0));
  EXPECT_NE(codec.Stamp(0, 0), codec.Stamp(0, 1));
  EXPECT_EQ(codec.Stamp(5, 9), codec.Stamp(5, 9));
}

TEST(ChecksumCodecTest, CorruptObservationNeverVerifies) {
  const ChecksumCodec codec(99);
  for (uint64_t chunk = 0; chunk < 64; ++chunk) {
    for (uint64_t generation = 0; generation < 4; ++generation) {
      const uint64_t stamp = codec.Stamp(chunk, generation);
      EXPECT_TRUE(ChecksumCodec::Verify(stamp, stamp));
      EXPECT_FALSE(
          ChecksumCodec::Verify(stamp, codec.CorruptObservation(stamp)));
    }
  }
}

TEST(ChecksumCodecTest, RandomizedSelfTestPasses) {
  EXPECT_EQ(ChecksumSelfTest(/*seed=*/20250805, /*rounds=*/512), OkStatus());
  EXPECT_EQ(ChecksumSelfTest(/*seed=*/1, /*rounds=*/64), OkStatus());
}

TEST(ScrubCursorTest, AdvanceWalksMinorThenMajorAndSignalsWrap) {
  ScrubCursor cursor;
  // 2 majors x 3 minors: wrap exactly every 6 advances, at (0, 0).
  int wraps = 0;
  for (int step = 1; step <= 12; ++step) {
    const bool wrapped = cursor.Advance(2, 3);
    wraps += wrapped ? 1 : 0;
    if (step % 6 == 0) {
      EXPECT_TRUE(wrapped) << "step " << step;
      EXPECT_EQ(cursor.major, 0u);
      EXPECT_EQ(cursor.minor, 0u);
    } else {
      EXPECT_FALSE(wrapped) << "step " << step;
    }
  }
  EXPECT_EQ(wraps, 2);
}

TEST(ScrubCursorTest, SkipMajorDropsRestOfUnit) {
  ScrubCursor cursor;
  ASSERT_FALSE(cursor.Advance(3, 4));  // (0, 1)
  EXPECT_FALSE(cursor.SkipMajor(3));   // -> (1, 0)
  EXPECT_EQ(cursor.major, 1u);
  EXPECT_EQ(cursor.minor, 0u);
  EXPECT_FALSE(cursor.SkipMajor(3));  // -> (2, 0)
  EXPECT_TRUE(cursor.SkipMajor(3));   // wraps -> (0, 0)
  EXPECT_EQ(cursor.major, 0u);
}

TEST(ScrubCursorTest, NormalizeClampsAfterShrink) {
  ScrubCursor cursor{.major = 5, .minor = 7};
  cursor.Normalize(/*major_size=*/4, /*minor_size=*/8);
  EXPECT_EQ(cursor.major, 0u);
  EXPECT_EQ(cursor.minor, 0u);
  cursor = ScrubCursor{.major = 2, .minor = 9};
  cursor.Normalize(/*major_size=*/4, /*minor_size=*/8);
  EXPECT_EQ(cursor.major, 2u);
  EXPECT_EQ(cursor.minor, 0u);
}

TEST(ScrubCursorTest, FullPassDaysIsCeilingAndZeroWhenDisabled) {
  EXPECT_EQ(ScrubFullPassDays(/*total_opages=*/1024, /*opages_per_day=*/0),
            0u);
  EXPECT_EQ(ScrubFullPassDays(1024, 1024), 1u);
  EXPECT_EQ(ScrubFullPassDays(1025, 1024), 2u);
  // The DESIGN.md pacing example: 2^20 oPages at 4096/day = 256 days.
  EXPECT_EQ(ScrubFullPassDays(1ull << 20, 4096), 256u);
}

}  // namespace
}  // namespace salamander
