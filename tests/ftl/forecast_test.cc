// Wear-forecast tests: ForecastTiringOPages predicts capacity about to leave
// its tiredness level, which drives the proactive drain policy.
#include <gtest/gtest.h>

#include "ftl/ftl.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestFtlConfig;
using testing_util::TinyGeometry;

TEST(ForecastTest, FreshDevicePredictsNothing) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/1000);
  Ftl ftl(config);
  EXPECT_EQ(ftl.ForecastTiringOPages(0.10), 0u);
  EXPECT_EQ(ftl.ForecastTiringOPages(0.50), 0u);
}

TEST(ForecastTest, WornDevicePredictsTiringCapacity) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/30);
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(512);
  // Age to roughly two-thirds of nominal endurance.
  for (uint64_t i = 0; i < 40000; ++i) {
    if (!ftl.Write(i % 512).ok()) {
      break;
    }
  }
  // Pages near their limit show up at a modest horizon, and a wider horizon
  // sees at least as much.
  const uint64_t near = ftl.ForecastTiringOPages(0.10);
  const uint64_t wide = ftl.ForecastTiringOPages(1.00);
  EXPECT_GT(wide, 0u);
  EXPECT_GE(wide, near);
  // Forecast never exceeds what is actually in service.
  EXPECT_LE(wide, ftl.usable_opages());
}

TEST(ForecastTest, HorizonMonotone) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/25);
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(512);
  for (uint64_t i = 0; i < 30000; ++i) {
    if (!ftl.Write(i % 512).ok()) {
      break;
    }
  }
  uint64_t prev = 0;
  for (double horizon : {0.05, 0.1, 0.2, 0.5, 1.0, 2.0}) {
    const uint64_t forecast = ftl.ForecastTiringOPages(horizon);
    EXPECT_GE(forecast, prev) << "horizon " << horizon;
    prev = forecast;
  }
}

TEST(ForecastTest, ProactiveDrainsStartEarlierThanReactive) {
  // Two identical draining devices; the proactive one opens its first grace
  // window at (weakly) fewer host writes.
  auto first_drain_at = [](double forecast_horizon) -> uint64_t {
    FtlConfig ftl_config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/25);
    Ftl ftl(ftl_config);
    MinidiskConfig md_config;
    md_config.msize_opages = 64;
    md_config.drain_before_decommission = true;
    md_config.drain_forecast_horizon = forecast_horizon;
    md_config.forecast_interval_writes = 256;
    MinidiskManager manager(&ftl, md_config);
    Rng rng(99);
    for (uint64_t writes = 0; writes < 2000000; ++writes) {
      if (manager.draining_minidisks() > 0) {
        return writes;
      }
      MinidiskId md = UINT32_MAX;
      for (MinidiskId i = 0; i < manager.total_minidisks(); ++i) {
        if (manager.IsLive(i)) {
          md = i;
          break;
        }
      }
      if (md == UINT32_MAX) {
        break;
      }
      (void)manager.Write(md, rng.UniformU64(64));
    }
    return UINT64_MAX;
  };
  const uint64_t reactive = first_drain_at(0.0);
  const uint64_t proactive = first_drain_at(0.3);
  ASSERT_NE(reactive, UINT64_MAX);
  ASSERT_NE(proactive, UINT64_MAX);
  EXPECT_LE(proactive, reactive);
}

// ---------------------------------------------------------------------------
// EstimateNextEvent — the discrete-event driver's write-budget hooks
// ---------------------------------------------------------------------------

TEST(ForecastTest, EstimateOnFreshDeviceSeesHeadroomEverywhere) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/1000);
  Ftl ftl(config);
  const Ftl::EventEstimate estimate = ftl.EstimateNextEvent();
  // All blocks free, watermark far away: the GC budget is the whole free
  // pool above the watermark, in oPages.
  const uint64_t block_opages =
      static_cast<uint64_t>(config.geometry.fpages_per_block) *
      config.geometry.opages_per_fpage;
  EXPECT_EQ(estimate.opages_to_gc_pressure,
            (ftl.free_blocks() - config.gc_low_watermark_blocks) *
                block_opages);
  // Every page is in service from construction at PEC 0: the wear horizon is
  // finite but far away (full nominal endurance in front of it).
  EXPECT_GT(estimate.opages_to_wear_event, 0u);
  EXPECT_NE(estimate.opages_to_wear_event, UINT64_MAX);
}

TEST(ForecastTest, EstimateShrinksAsDeviceAgesAndFills) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/40);
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(512);
  const Ftl::EventEstimate fresh_mapped = ftl.EstimateNextEvent();
  for (uint64_t i = 0; i < 20000; ++i) {
    if (!ftl.Write(i % 512).ok()) {
      break;
    }
  }
  const Ftl::EventEstimate aged = ftl.EstimateNextEvent();
  // In-service pages now exist, so a wear event is on the horizon, and the
  // horizon only shrinks as P/E cycles accumulate.
  EXPECT_LT(aged.opages_to_wear_event, fresh_mapped.opages_to_wear_event);
  EXPECT_NE(aged.opages_to_wear_event, UINT64_MAX);
  // The free pool is consumed, so GC pressure moved closer too.
  EXPECT_LE(aged.opages_to_gc_pressure, fresh_mapped.opages_to_gc_pressure);
}

}  // namespace
}  // namespace salamander
