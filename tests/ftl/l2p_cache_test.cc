// Bounded L2P map cache: eviction edge cases (cache size 1, cache == map
// size, trim of a cached-dirty entry, eviction during GC relocation),
// map-write wear accounting, and crash-replay over the torn-map-page
// surface. The broad every-boundary × every-tear sweep lives in
// bench/crash_sweep --l2p-cache-entries; these tests pin the individual
// contracts with hand-picked states.
#include <gtest/gtest.h>

#include "ftl/ftl.h"
#include "ftl/journal.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestFtlConfig;
using testing_util::TinyGeometry;

// Small map pages (8 entries instead of the auto opage_bytes/8 = 512) so a
// 64-lpo logical space spans 8 map pages and eviction pressure is reachable
// at test scale. `cache_entries` is in L2P entries, like the config knob:
// 8 entries = a single-page cache.
Ftl MakeL2pFtl(uint64_t cache_entries, uint64_t logical_opages = 64,
               uint64_t journal_capacity = 0) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/1000000);
  config.l2p_cache_entries = cache_entries;
  config.l2p_entries_per_map_page = 8;
  config.journal_capacity_records = journal_capacity;
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(logical_opages);
  ftl.SyncJournal();
  return ftl;
}

uint64_t CountMapFlushRecords(const Ftl& ftl) {
  uint64_t n = 0;
  for (const JournalRecord& r : ftl.journal().records()) {
    n += r.type == JournalRecordType::kMapFlush;
  }
  return n;
}

TEST(FtlL2pCacheTest, DisabledByDefaultDrawsNothing) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), 1000000);
  ASSERT_EQ(config.l2p_cache_entries, 0u);
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(64);
  for (uint64_t lpo = 0; lpo < 64; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  EXPECT_FALSE(ftl.l2p_enabled());
  EXPECT_EQ(ftl.l2p_map_pages(), 0u);
  EXPECT_EQ(ftl.l2p_stats().hits + ftl.l2p_stats().misses +
                ftl.l2p_stats().map_writes,
            0u);
  EXPECT_EQ(CountMapFlushRecords(ftl), 0u);
  ASSERT_TRUE(ftl.CheckInvariants().ok());
}

TEST(FtlL2pCacheTest, CacheSizeOneEvictsAndStaysConsistent) {
  Ftl ftl = MakeL2pFtl(/*cache_entries=*/8);  // one map page resident
  ASSERT_EQ(ftl.l2p_cache_capacity_pages(), 1u);
  ASSERT_EQ(ftl.l2p_map_pages(), 8u);
  for (uint64_t lpo = 0; lpo < 64; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  EXPECT_GT(ftl.l2p_stats().evictions, 0u);
  EXPECT_GT(ftl.l2p_stats().map_writes, 0u);
  EXPECT_LE(ftl.l2p_resident_pages(), 1u);
  EXPECT_EQ(CountMapFlushRecords(ftl), ftl.l2p_stats().map_writes);
  for (uint64_t lpo = 0; lpo < 64; ++lpo) {
    ASSERT_TRUE(ftl.Read(lpo).ok()) << "lpo " << lpo;
  }
  EXPECT_GT(ftl.l2p_stats().misses, 0u);
  ASSERT_TRUE(ftl.CheckInvariants().ok());
}

TEST(FtlL2pCacheTest, CacheCoveringWholeMapNeverEvicts) {
  Ftl ftl = MakeL2pFtl(/*cache_entries=*/64);  // 8 pages = the whole map
  ASSERT_EQ(ftl.l2p_cache_capacity_pages(), ftl.l2p_map_pages());
  for (uint64_t lpo = 0; lpo < 64; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  for (uint64_t lpo = 0; lpo < 64; ++lpo) {
    ASSERT_TRUE(ftl.Read(lpo).ok());
  }
  EXPECT_EQ(ftl.l2p_stats().evictions, 0u);
  EXPECT_EQ(ftl.l2p_stats().map_writes, 0u);
  EXPECT_EQ(ftl.l2p_resident_pages(), ftl.l2p_map_pages());
  EXPECT_GT(ftl.l2p_stats().hits, 0u);
  ASSERT_TRUE(ftl.CheckInvariants().ok());
}

TEST(FtlL2pCacheTest, TrimOfCachedDirtyEntryHoldsAcrossReplay) {
  Ftl ftl = MakeL2pFtl(/*cache_entries=*/8);
  for (uint64_t lpo = 0; lpo < 4; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  ASSERT_TRUE(ftl.Flush().ok());
  ASSERT_TRUE(ftl.Trim(1).ok());  // map page 0 is resident and dirty
  EXPECT_EQ(ftl.PhysicalSlot(1), Ftl::kUnmappedSlot);
  ASSERT_TRUE(ftl.Flush().ok());  // the kTrim record is now durable

  ftl.SimulatePowerLoss(/*torn_records=*/0);
  ASSERT_TRUE(ftl.Replay().ok());
  EXPECT_EQ(ftl.PhysicalSlot(1), Ftl::kUnmappedSlot);
  EXPECT_FALSE(ftl.LpoRolledBack(1));
  for (uint64_t lpo : {0ull, 2ull, 3ull}) {
    EXPECT_NE(ftl.PhysicalSlot(lpo), Ftl::kUnmappedSlot) << "lpo " << lpo;
  }
  ASSERT_TRUE(ftl.CheckInvariants().ok());
}

TEST(FtlL2pCacheTest, EvictionDuringGcRelocationStaysConsistent) {
  // Hot/cold overwrite churn on a single-page cache at 10/16 blocks of
  // logical space: every fourth lpo is rewritten, so GC victims always hold
  // valid cold slots to relocate — and the stride crosses the map-page
  // boundary each cycle, so eviction write-back runs concurrently with the
  // GC pressure it creates (a relocated map image is simply re-flushed).
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/1000000);
  config.l2p_cache_entries = 512;  // one auto-sized (512-entry) map page
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(640);  // 2 map pages, so the cache must thrash
  ftl.SyncJournal();
  for (uint64_t lpo = 0; lpo < 640; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  for (uint64_t i = 0; i < 4000; ++i) {
    ASSERT_TRUE(ftl.Write((i * 4) % 640).ok()) << "write " << i;
  }
  EXPECT_GT(ftl.stats().gc_relocations, 0u);
  EXPECT_GT(ftl.l2p_stats().evictions, 0u);
  EXPECT_GT(ftl.l2p_stats().map_writes, 0u);
  for (uint64_t lpo = 0; lpo < 640; ++lpo) {
    ASSERT_TRUE(ftl.Read(lpo).ok()) << "lpo " << lpo;
  }
  ASSERT_TRUE(ftl.CheckInvariants().ok());
}

TEST(FtlL2pCacheTest, MapWritesAreRealFlashPrograms) {
  // Identical host traffic on a legacy and a bounded FTL: the chip program
  // count must differ by exactly the map-page write-back count.
  FtlConfig legacy_config = TestFtlConfig(TinyGeometry(), 1000000);
  Ftl legacy(legacy_config);
  legacy.ExtendLogicalSpace(64);
  Ftl bounded = MakeL2pFtl(/*cache_entries=*/8);
  for (uint64_t lpo = 0; lpo < 64; ++lpo) {
    ASSERT_TRUE(legacy.Write(lpo).ok());
    ASSERT_TRUE(bounded.Write(lpo).ok());
  }
  const uint64_t map_writes = bounded.l2p_stats().map_writes;
  EXPECT_GT(map_writes, 0u);
  EXPECT_EQ(bounded.chip().total_programs(),
            legacy.chip().total_programs() + map_writes);
}

TEST(FtlL2pCacheTest, TornMapFlushRollsBackOnlyTheMapPage) {
  Ftl ftl = MakeL2pFtl(/*cache_entries=*/8);
  for (uint64_t lpo = 0; lpo < 8; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());  // two full fPages, 8 kMap records
  }
  // Touching map page 1 evicts dirty page 0; the write-back syncs the kMap
  // records, programs the image, then appends its kMapFlush *unsynced*.
  ASSERT_TRUE(ftl.Write(8).ok());
  ASSERT_EQ(CountMapFlushRecords(ftl), 1u);
  ASSERT_EQ(ftl.journal().unsynced(), 1u);

  // Tear exactly the kMapFlush: the map-page image is orphaned, but every
  // host mapping it imaged is durable as delta records — nothing user-
  // visible rolls back except the still-buffered lpo 8.
  ftl.SimulatePowerLoss(/*torn_records=*/1);
  ASSERT_TRUE(ftl.Replay().ok());
  EXPECT_EQ(ftl.MapPageSlot(0), Ftl::kUnmappedSlot);
  EXPECT_TRUE(ftl.LpoRolledBack(8));
  for (uint64_t lpo = 0; lpo < 8; ++lpo) {
    EXPECT_FALSE(ftl.LpoRolledBack(lpo)) << "lpo " << lpo;
    EXPECT_NE(ftl.PhysicalSlot(lpo), Ftl::kUnmappedSlot) << "lpo " << lpo;
    EXPECT_TRUE(ftl.Read(lpo).ok()) << "lpo " << lpo;
  }
  EXPECT_GE(ftl.l2p_stats().replay_rebuilt_pages, 1u);
  ASSERT_TRUE(ftl.CheckInvariants().ok());
}

TEST(FtlL2pCacheTest, SurvivingMapFlushRestoresThePage) {
  Ftl ftl = MakeL2pFtl(/*cache_entries=*/8);
  for (uint64_t lpo = 0; lpo < 8; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  ASSERT_TRUE(ftl.Write(8).ok());  // evicts + flushes map page 0
  ASSERT_TRUE(ftl.Flush().ok());   // kMapFlush now durable
  const uint64_t image_slot = ftl.MapPageSlot(0);
  ASSERT_NE(image_slot, Ftl::kUnmappedSlot);

  ftl.SimulatePowerLoss(/*torn_records=*/0);
  ASSERT_TRUE(ftl.Replay().ok());
  EXPECT_EQ(ftl.MapPageSlot(0), image_slot);
  for (uint64_t lpo = 0; lpo < 8; ++lpo) {
    EXPECT_NE(ftl.PhysicalSlot(lpo), Ftl::kUnmappedSlot) << "lpo " << lpo;
  }
  ASSERT_TRUE(ftl.CheckInvariants().ok());
}

TEST(FtlL2pCacheTest, ReplayWithEmptyDirtySetIsDeterministic) {
  // Single-page cache + an explicit Flush barrier: at most one page is
  // resident and the dirty set at the crash is as small as it gets.
  Ftl ftl = MakeL2pFtl(/*cache_entries=*/8);
  for (uint64_t lpo = 0; lpo < 64; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  ASSERT_TRUE(ftl.Flush().ok());
  ftl.SimulatePowerLoss(/*torn_records=*/0);
  ASSERT_TRUE(ftl.Replay().ok());
  const uint64_t digest = ftl.StateDigest();
  ftl.SimulatePowerLoss(/*torn_records=*/0);
  ASSERT_TRUE(ftl.Replay().ok());
  EXPECT_EQ(ftl.StateDigest(), digest);
  for (uint64_t lpo = 0; lpo < 64; ++lpo) {
    ASSERT_TRUE(ftl.Read(lpo).ok()) << "lpo " << lpo;
  }
}

TEST(FtlL2pCacheTest, ReplayWithFullDirtySetIsDeterministic) {
  // Whole-map cache: every map page is resident and dirty at the crash and
  // no kMapFlush record exists — replay rebuilds purely from delta records.
  Ftl ftl = MakeL2pFtl(/*cache_entries=*/64);
  for (uint64_t lpo = 0; lpo < 64; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  for (uint64_t lpo = 0; lpo < 4; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());  // leaves 4 kMap records unsynced
  }
  ASSERT_EQ(ftl.l2p_dirty_pages(), ftl.l2p_map_pages());
  ftl.SimulatePowerLoss(/*torn_records=*/2);
  ASSERT_TRUE(ftl.Replay().ok());
  const uint64_t digest = ftl.StateDigest();
  ftl.SimulatePowerLoss(/*torn_records=*/0);
  ASSERT_TRUE(ftl.Replay().ok());
  EXPECT_EQ(ftl.StateDigest(), digest);
  ASSERT_TRUE(ftl.CheckInvariants().ok());
}

TEST(FtlL2pCacheTest, CompactionPreservesMapFlushState) {
  // A journal too small for the churn forces compaction with flushed map
  // pages outstanding; the compacted snapshot must replay to working state.
  Ftl ftl = MakeL2pFtl(/*cache_entries=*/8, /*logical_opages=*/64,
                       /*journal_capacity=*/64);
  for (uint64_t i = 0; i < 1500; ++i) {
    ASSERT_TRUE(ftl.Write(i % 64).ok()) << "write " << i;
  }
  ASSERT_GT(ftl.journal().compactions(), 0u);
  ftl.SimulatePowerLoss(/*torn_records=*/0);
  ASSERT_TRUE(ftl.Replay().ok());
  const uint64_t digest = ftl.StateDigest();
  ftl.SimulatePowerLoss(/*torn_records=*/0);
  ASSERT_TRUE(ftl.Replay().ok());
  EXPECT_EQ(ftl.StateDigest(), digest);
  for (uint64_t lpo = 0; lpo < 64; ++lpo) {
    ASSERT_TRUE(ftl.Read(lpo).ok()) << "lpo " << lpo;
  }
  ASSERT_TRUE(ftl.CheckInvariants().ok());
}

TEST(FtlL2pCacheTest, ExtendGrowsTheMapPageTable) {
  Ftl ftl = MakeL2pFtl(/*cache_entries=*/8, /*logical_opages=*/16);
  ASSERT_EQ(ftl.l2p_map_pages(), 2u);
  ftl.ExtendLogicalSpace(48);
  ftl.SyncJournal();
  EXPECT_EQ(ftl.l2p_map_pages(), 8u);
  for (uint64_t lpo = 0; lpo < 64; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  ftl.SimulatePowerLoss(/*torn_records=*/0);
  ASSERT_TRUE(ftl.Replay().ok());
  EXPECT_EQ(ftl.l2p_map_pages(), 8u);
  ASSERT_TRUE(ftl.CheckInvariants().ok());
}

}  // namespace
}  // namespace salamander
