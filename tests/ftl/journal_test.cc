// FTL metadata journal edge cases: empty replay, torn tails at the sync
// barrier, at-capacity compaction, and double-replay determinism. The broad
// every-boundary × every-tear sweep lives in bench/crash_sweep; these tests
// pin the individual contracts with hand-picked states.
#include "ftl/journal.h"

#include <gtest/gtest.h>

#include "ftl/ftl.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestFtlConfig;
using testing_util::TinyGeometry;

// High-endurance FTL with the kExtend record already durable, so tears in
// these tests only ever hit data records (a torn extend would shrink the
// logical space — a separate hazard the mdisk layer avoids by syncing after
// every carve).
Ftl MakeJournaledFtl(uint64_t logical_opages = 64,
                     uint64_t journal_capacity = 0) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/1000000);
  config.journal_capacity_records = journal_capacity;
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(logical_opages);
  ftl.SyncJournal();
  return ftl;
}

TEST(FtlJournalTest, ReplayOfFreshFtlIsIdentity) {
  Ftl ftl = MakeJournaledFtl();
  const uint64_t before = ftl.StateDigest();
  ftl.SimulatePowerLoss(/*torn_records=*/0);
  ASSERT_TRUE(ftl.Replay().ok());
  EXPECT_EQ(ftl.StateDigest(), before);
  EXPECT_EQ(ftl.rolled_back_count(), 0u);
  EXPECT_EQ(ftl.journal_replays(), 1u);
}

TEST(FtlJournalTest, BufferedWritesRollBackToUnmapped) {
  Ftl ftl = MakeJournaledFtl();
  // Two oPages stay in the volatile buffer (four fill an fPage and flush).
  ASSERT_TRUE(ftl.Write(10).ok());
  ASSERT_TRUE(ftl.Write(11).ok());
  ASSERT_EQ(ftl.buffered_opages(), 2u);

  ftl.SimulatePowerLoss(0);
  ASSERT_TRUE(ftl.Replay().ok());
  EXPECT_TRUE(ftl.LpoRolledBack(10));
  EXPECT_TRUE(ftl.LpoRolledBack(11));
  EXPECT_EQ(ftl.PhysicalSlot(10), Ftl::kUnmappedSlot);
  EXPECT_EQ(ftl.PhysicalSlot(11), Ftl::kUnmappedSlot);
  EXPECT_EQ(ftl.Read(10).status().code(), StatusCode::kNotFound);
  // The next write of the page clears the staleness flag.
  ASSERT_TRUE(ftl.Write(10).ok());
  EXPECT_FALSE(ftl.LpoRolledBack(10));
}

TEST(FtlJournalTest, TornFinalMapRecordRollsBackOnlyThatPage) {
  Ftl ftl = MakeJournaledFtl();
  for (uint64_t lpo = 0; lpo < 4; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  ASSERT_EQ(ftl.buffered_opages(), 0u);  // one full fPage flushed
  uint64_t pre_slot[4];
  for (uint64_t lpo = 0; lpo < 4; ++lpo) {
    pre_slot[lpo] = ftl.PhysicalSlot(lpo);
    ASSERT_NE(pre_slot[lpo], Ftl::kUnmappedSlot);
  }

  // The newest unsynced record is the kMap for lpo 3; tearing exactly one
  // record loses that acknowledgment and nothing else.
  ftl.SimulatePowerLoss(/*torn_records=*/1);
  ASSERT_TRUE(ftl.Replay().ok());
  EXPECT_TRUE(ftl.LpoRolledBack(3));
  EXPECT_EQ(ftl.PhysicalSlot(3), Ftl::kUnmappedSlot);
  for (uint64_t lpo = 0; lpo < 3; ++lpo) {
    EXPECT_FALSE(ftl.LpoRolledBack(lpo)) << "lpo " << lpo;
    EXPECT_EQ(ftl.PhysicalSlot(lpo), pre_slot[lpo]) << "lpo " << lpo;
  }
}

TEST(FtlJournalTest, TornTrimRestoresMappingAndFlagsStaleness) {
  Ftl ftl = MakeJournaledFtl();
  for (uint64_t lpo = 0; lpo < 4; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  ftl.SyncJournal();  // the four kMap records are now durable
  const uint64_t slot = ftl.PhysicalSlot(1);
  ASSERT_TRUE(ftl.Trim(1).ok());
  EXPECT_EQ(ftl.PhysicalSlot(1), Ftl::kUnmappedSlot);

  // The acknowledged trim is the only unsynced record; tearing it reverts
  // the page to its durable mapping, and the lost ack is flagged.
  ftl.SimulatePowerLoss(1);
  ASSERT_TRUE(ftl.Replay().ok());
  EXPECT_EQ(ftl.PhysicalSlot(1), slot);
  EXPECT_TRUE(ftl.LpoRolledBack(1));
  EXPECT_TRUE(ftl.Read(1).ok());
}

TEST(FtlJournalTest, TearNeverCrossesSyncBarrier) {
  Ftl ftl = MakeJournaledFtl();
  for (uint64_t lpo = 0; lpo < 8; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  ASSERT_TRUE(ftl.Flush().ok());  // host flush is a durability barrier
  ASSERT_EQ(ftl.journal().unsynced(), 0u);
  uint64_t pre_slot[8];
  for (uint64_t lpo = 0; lpo < 8; ++lpo) {
    pre_slot[lpo] = ftl.PhysicalSlot(lpo);
  }

  // Requesting a huge tear discards nothing: the barrier bounds the loss.
  // (Replay seals the ex-active block, so the whole-state digest changes;
  // what the barrier guarantees is that no acknowledged state is lost.)
  ftl.SimulatePowerLoss(/*torn_records=*/1000000);
  ASSERT_TRUE(ftl.Replay().ok());
  EXPECT_EQ(ftl.journal().torn_records(), 0u);
  EXPECT_EQ(ftl.rolled_back_count(), 0u);
  for (uint64_t lpo = 0; lpo < 8; ++lpo) {
    EXPECT_EQ(ftl.PhysicalSlot(lpo), pre_slot[lpo]) << "lpo " << lpo;
  }
}

TEST(FtlJournalTest, CompactionAtCapacityPreservesReplayedState) {
  // A 96-record region overflows quickly under rewrite traffic; every
  // compaction must leave a fully-synced journal that still replays to the
  // exact pre-loss state.
  Ftl ftl = MakeJournaledFtl(/*logical_opages=*/64, /*journal_capacity=*/96);
  for (uint64_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(ftl.Write(i % 48).ok());
    if (i % 7 == 0) {
      ASSERT_TRUE(ftl.Trim((i + 3) % 48).ok());
    }
  }
  ASSERT_TRUE(ftl.Flush().ok());
  EXPECT_GT(ftl.journal().compactions(), 0u);
  EXPECT_LE(ftl.journal().size(), ftl.journal().capacity());

  uint64_t pre_slot[48];
  for (uint64_t lpo = 0; lpo < 48; ++lpo) {
    pre_slot[lpo] = ftl.PhysicalSlot(lpo);
  }
  ftl.SimulatePowerLoss(0);
  ASSERT_TRUE(ftl.Replay().ok());
  EXPECT_EQ(ftl.rolled_back_count(), 0u);
  // The compacted journal still reconstructs every acknowledged mapping —
  // including the trim holes — exactly.
  for (uint64_t lpo = 0; lpo < 48; ++lpo) {
    EXPECT_EQ(ftl.PhysicalSlot(lpo), pre_slot[lpo]) << "lpo " << lpo;
  }
}

TEST(FtlJournalTest, DoubleReplayIsDeterministic) {
  Ftl ftl = MakeJournaledFtl();
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(ftl.Write(i % 64).ok());
  }
  // Mid-stream crash with a torn tail; whatever state replay rebuilds, a
  // second crash-free replay of the same journal must reproduce it exactly.
  ftl.SimulatePowerLoss(/*torn_records=*/3);
  ASSERT_TRUE(ftl.Replay().ok());
  const uint64_t first = ftl.StateDigest();

  ftl.SimulatePowerLoss(0);
  ASSERT_TRUE(ftl.Replay().ok());
  EXPECT_EQ(ftl.StateDigest(), first);
}

TEST(FtlJournalTest, ReplayedFtlStaysServiceable) {
  Ftl ftl = MakeJournaledFtl();
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(ftl.Write(i % 32).ok());
  }
  ftl.SimulatePowerLoss(2);
  ASSERT_TRUE(ftl.Replay().ok());
  // Post-replay the device serves normal I/O: writes, flush, reads.
  for (uint64_t lpo = 0; lpo < 32; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  ASSERT_TRUE(ftl.Flush().ok());
  for (uint64_t lpo = 0; lpo < 32; ++lpo) {
    EXPECT_TRUE(ftl.Read(lpo).ok()) << "lpo " << lpo;
    EXPECT_FALSE(ftl.LpoRolledBack(lpo)) << "lpo " << lpo;
  }
  EXPECT_TRUE(ftl.CheckInvariants().ok());
}

}  // namespace
}  // namespace salamander
