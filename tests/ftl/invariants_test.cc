// Property tests: the FTL's internal accounting stays exactly consistent
// under randomized operation mixes across every configuration dimension
// (tiredness cap, retirement granularity, ECC placement, wear intensity).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ftl/ftl.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestFtlConfig;
using testing_util::TinyGeometry;

struct InvariantCase {
  const char* name;
  uint32_t nominal_pec;
  unsigned max_level;
  RetirementGranularity retirement;
  EccPlacement placement;
};

class FtlInvariantsTest : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(FtlInvariantsTest, AccountingConsistentUnderChurn) {
  const InvariantCase& param = GetParam();
  FtlConfig config = TestFtlConfig(TinyGeometry(), param.nominal_pec);
  config.max_usable_level = param.max_level;
  config.retirement = param.retirement;
  config.ecc_placement = param.placement;
  Ftl ftl(config);
  const uint64_t logical = 500;
  ftl.ExtendLogicalSpace(logical);

  Rng rng(20250707);
  for (int burst = 0; burst < 60; ++burst) {
    for (int op = 0; op < 1000; ++op) {
      const uint64_t lpo = rng.UniformU64(logical);
      const double dice = rng.UniformDouble();
      if (dice < 0.70) {
        (void)ftl.Write(lpo);  // may fail near death; accounting must hold
      } else if (dice < 0.85) {
        ASSERT_TRUE(ftl.Trim(lpo).ok());
      } else if (dice < 0.97) {
        (void)ftl.Read(lpo);
      } else if (dice < 0.99) {
        (void)ftl.Flush();
      } else {
        ftl.ClaimLimboCapacity(rng.UniformU64(16));
      }
    }
    ftl.TakeTransitions();
    ASSERT_EQ(ftl.CheckInvariants(), OkStatus())
        << "burst " << burst << ": " << ftl.CheckInvariants().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FtlInvariantsTest,
    ::testing::Values(
        InvariantCase{"healthy_shrinks", 1000000, 0,
                      RetirementGranularity::kPage, EccPlacement::kInline},
        InvariantCase{"wearing_shrinks", 25, 0, RetirementGranularity::kPage,
                      EccPlacement::kInline},
        InvariantCase{"wearing_regens", 25, 1, RetirementGranularity::kPage,
                      EccPlacement::kInline},
        InvariantCase{"regens_l2", 25, 2, RetirementGranularity::kPage,
                      EccPlacement::kInline},
        InvariantCase{"regens_dedicated", 25, 1,
                      RetirementGranularity::kPage, EccPlacement::kDedicated},
        InvariantCase{"block_worst", 25, 0,
                      RetirementGranularity::kBlockWorstPage,
                      EccPlacement::kInline},
        InvariantCase{"block_average", 25, 0,
                      RetirementGranularity::kBlockAverage,
                      EccPlacement::kInline}),
    [](const ::testing::TestParamInfo<InvariantCase>& param_info) {
      return param_info.param.name;
    });

TEST(FtlInvariantsTest, FreshDevicePassesAudit) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), 1000);
  Ftl ftl(config);
  EXPECT_EQ(ftl.CheckInvariants(), OkStatus());
  ftl.ExtendLogicalSpace(100);
  EXPECT_EQ(ftl.CheckInvariants(), OkStatus());
}

}  // namespace
}  // namespace salamander
