// Dedicated ECC placement tests (§4.2 mitigation): at tiredness level L >= 1
// the extra parity lives in whole dedicated fPages instead of repurposed
// oPages inside each data fPage.
#include <gtest/gtest.h>

#include "ftl/ftl.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestFtlConfig;
using testing_util::TinyGeometry;

// A wear model that pushes every page past L0 (but within L1) on its first
// erase cycle: rber(PEC >= 1) ~ 2x the L0 tolerance, well under the ~4.8x
// L1 tolerance. Deterministic (no per-page variance).
WearModelConfig InstantL1Wear() {
  const double l0_tol =
      ComputeTirednessLevel(FPageEccGeometry{}, 0).max_tolerable_rber;
  WearModelConfig wear;
  wear.exponent = 0.1;  // nearly flat: any PEC >= 1 lands at ~coefficient
  wear.coefficient = 2.0 * l0_tol;
  wear.rber_floor = 1e-9;
  wear.page_factor_sigma = 0.0;
  return wear;
}

// Builds an FTL where, after some churn, all recycled pages are L1 and back
// in service. Returns it with `logical` oPages of space.
Ftl MakeL1Ftl(EccPlacement placement, double cache_hit,
              uint64_t logical = 400) {
  FtlConfig config;
  config.geometry = TinyGeometry();
  config.ecc_geometry = FPageEccGeometry{};
  config.wear = InstantL1Wear();
  config.max_usable_level = 1;
  config.ecc_placement = placement;
  config.dedicated_ecc_cache_hit = cache_hit;
  config.seed = 99;
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(logical);
  // Churn: overwrite the logical space so GC erases blocks; erased pages
  // transition to L1 and pile up in limbo; claim them back into service.
  for (int round = 0; round < 12; ++round) {
    for (uint64_t lpo = 0; lpo < logical; ++lpo) {
      if (!ftl.Write(lpo).ok()) {
        break;
      }
    }
    ftl.ClaimLimboCapacity(UINT64_MAX);
  }
  return ftl;
}

TEST(DedicatedEccTest, InlineModeNeverProgramsParityPages) {
  Ftl ftl = MakeL1Ftl(EccPlacement::kInline, 0.9);
  EXPECT_GT(ftl.limbo_fpages(1) + 1, 0u);  // churn happened
  EXPECT_EQ(ftl.stats().parity_programs, 0u);
  EXPECT_EQ(ftl.stats().ecc_page_reads, 0u);
}

TEST(DedicatedEccTest, DedicatedModeProgramsParityPages) {
  Ftl ftl = MakeL1Ftl(EccPlacement::kDedicated, 0.9);
  EXPECT_GT(ftl.stats().parity_programs, 0u);
  // At L1 the cadence is one parity page per three data pages; allow slack
  // for the L0 prefix before pages tired.
  const double ratio = static_cast<double>(ftl.stats().parity_programs) /
                       static_cast<double>(ftl.stats().flushes);
  EXPECT_GT(ratio, 0.10);
  EXPECT_LT(ratio, 0.40);
}

TEST(DedicatedEccTest, DataStillReadableAtL1) {
  Ftl ftl = MakeL1Ftl(EccPlacement::kDedicated, 1.0);
  ASSERT_TRUE(ftl.Flush().ok());
  uint64_t l1_reads = 0;
  for (uint64_t lpo = 0; lpo < 400; ++lpo) {
    auto read = ftl.Read(lpo);
    ASSERT_TRUE(read.ok()) << "lpo " << lpo;
    l1_reads += read->tiredness_level == 1 ? 1 : 0;
  }
  EXPECT_GT(l1_reads, 0u);
}

TEST(DedicatedEccTest, PerfectCacheMeansNoReadPenalty) {
  Ftl ftl = MakeL1Ftl(EccPlacement::kDedicated, /*cache_hit=*/1.0);
  ASSERT_TRUE(ftl.Flush().ok());
  const FlashLatencyConfig latency;
  const SimDuration expected =
      latency.read_fpage + latency.TransferTime(4096);
  for (uint64_t lpo = 0; lpo < 400; ++lpo) {
    auto read = ftl.Read(lpo);
    ASSERT_TRUE(read.ok());
    if (read->tiredness_level == 1 && read->retries == 0) {
      EXPECT_EQ(read->latency, expected);
    }
  }
  EXPECT_EQ(ftl.stats().ecc_page_reads, 0u);
}

TEST(DedicatedEccTest, ColdCachePaysOneExtraPageRead) {
  Ftl ftl = MakeL1Ftl(EccPlacement::kDedicated, /*cache_hit=*/0.0);
  ASSERT_TRUE(ftl.Flush().ok());
  const FlashLatencyConfig latency;
  const SimDuration expected =
      2 * latency.read_fpage + latency.TransferTime(4096);
  uint64_t checked = 0;
  for (uint64_t lpo = 0; lpo < 400; ++lpo) {
    auto read = ftl.Read(lpo);
    ASSERT_TRUE(read.ok());
    if (read->tiredness_level == 1 && read->retries == 0) {
      EXPECT_EQ(read->latency, expected);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_GT(ftl.stats().ecc_page_reads, 0u);
}

TEST(DedicatedEccTest, RestoresLargeAccessGeometry) {
  // Sequential 16 KiB over L1 data: dedicated placement keeps 4 oPages per
  // data page, so an aligned 4-oPage read touches ONE flash page again
  // (inline L1 would straddle two).
  Ftl dedicated = MakeL1Ftl(EccPlacement::kDedicated, 1.0);
  ASSERT_TRUE(dedicated.Flush().ok());
  // Rewrite sequentially for clean packing, then flush.
  for (uint64_t lpo = 0; lpo < 64; ++lpo) {
    ASSERT_TRUE(dedicated.Write(lpo).ok());
  }
  ASSERT_TRUE(dedicated.Flush().ok());
  auto range = dedicated.ReadRange(0, 64);
  ASSERT_TRUE(range.ok());
  // 64 oPages on full 4-oPage pages -> exactly 16 flash reads.
  EXPECT_EQ(range->fpage_reads, 16u);

  Ftl inline_ftl = MakeL1Ftl(EccPlacement::kInline, 1.0);
  ASSERT_TRUE(inline_ftl.Flush().ok());
  for (uint64_t lpo = 0; lpo < 64; ++lpo) {
    ASSERT_TRUE(inline_ftl.Write(lpo).ok());
  }
  ASSERT_TRUE(inline_ftl.Flush().ok());
  auto inline_range = inline_ftl.ReadRange(0, 64);
  ASSERT_TRUE(inline_range.ok());
  // Inline L1 pages hold 3 oPages: ~22 flash reads for the same data (some
  // pages may still be L0, so require strictly more than dedicated).
  EXPECT_GT(inline_range->fpage_reads, range->fpage_reads);
}

TEST(DedicatedEccTest, TotalWriteCostMatchesInline) {
  // Both placements pay the same overall ECC space overhead at a given
  // level — inline as reduced capacity per page, dedicated as whole parity
  // pages. Flash programs per host write must therefore be comparable; the
  // placements differ in *read* geometry, not total write cost.
  Ftl dedicated = MakeL1Ftl(EccPlacement::kDedicated, 1.0);
  Ftl inline_ftl = MakeL1Ftl(EccPlacement::kInline, 1.0);
  ASSERT_GT(dedicated.stats().host_writes, 0u);
  ASSERT_GT(inline_ftl.stats().host_writes, 0u);
  EXPECT_GT(dedicated.stats().parity_programs, 0u);
  const double dedicated_programs_per_write =
      static_cast<double>(dedicated.chip().total_programs()) /
      static_cast<double>(dedicated.stats().host_writes);
  const double inline_programs_per_write =
      static_cast<double>(inline_ftl.chip().total_programs()) /
      static_cast<double>(inline_ftl.stats().host_writes);
  EXPECT_NEAR(dedicated_programs_per_write / inline_programs_per_write, 1.0,
              0.25);
}

}  // namespace
}  // namespace salamander
