#include "ftl/ftl.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestFtlConfig;
using testing_util::TinyGeometry;

// High-endurance FTL: wear plays no role in these functional tests.
Ftl MakeFunctionalFtl(uint64_t logical_opages = 512) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/1000000);
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(logical_opages);
  return ftl;
}

TEST(FtlTest, FreshDeviceState) {
  Ftl ftl = MakeFunctionalFtl();
  EXPECT_EQ(ftl.logical_opages(), 512u);
  EXPECT_EQ(ftl.usable_opages(), 1024u);
  EXPECT_EQ(ftl.mapped_opages(), 0u);
  EXPECT_EQ(ftl.dead_fpages(), 0u);
  EXPECT_EQ(ftl.free_blocks(), 16u);
}

TEST(FtlTest, ReadUnwrittenIsNotFound) {
  Ftl ftl = MakeFunctionalFtl();
  auto result = ftl.Read(0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(FtlTest, OutOfRangeRejected) {
  Ftl ftl = MakeFunctionalFtl(100);
  EXPECT_EQ(ftl.Write(100).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ftl.Read(100).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ftl.Trim(100).code(), StatusCode::kOutOfRange);
}

TEST(FtlTest, WriteThenReadHitsBufferFirst) {
  Ftl ftl = MakeFunctionalFtl();
  ASSERT_TRUE(ftl.Write(5).ok());
  auto read = ftl.Read(5);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->buffer_hit);
  EXPECT_EQ(ftl.buffered_opages(), 1u);
}

TEST(FtlTest, BufferFlushesAtFPageCapacity) {
  Ftl ftl = MakeFunctionalFtl();
  for (uint64_t lpo = 0; lpo < 4; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  // Four oPages fill one L0 fPage; the buffer drains.
  EXPECT_EQ(ftl.buffered_opages(), 0u);
  EXPECT_EQ(ftl.stats().flushes, 1u);
  auto read = ftl.Read(0);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->buffer_hit);
  EXPECT_EQ(read->tiredness_level, 0u);
}

TEST(FtlTest, ExplicitFlushDrainsPartialBuffer) {
  Ftl ftl = MakeFunctionalFtl();
  ASSERT_TRUE(ftl.Write(0).ok());
  ASSERT_TRUE(ftl.Write(1).ok());
  ASSERT_TRUE(ftl.Flush().ok());
  EXPECT_EQ(ftl.buffered_opages(), 0u);
  EXPECT_FALSE(ftl.Read(0)->buffer_hit);
}

TEST(FtlTest, OverwriteWhileBufferedCoalesces) {
  Ftl ftl = MakeFunctionalFtl();
  ASSERT_TRUE(ftl.Write(7).ok());
  ASSERT_TRUE(ftl.Write(7).ok());
  ASSERT_TRUE(ftl.Write(7).ok());
  EXPECT_EQ(ftl.buffered_opages(), 1u);
  EXPECT_EQ(ftl.mapped_opages(), 1u);
}

TEST(FtlTest, OverwriteInvalidatesOldSlot) {
  Ftl ftl = MakeFunctionalFtl();
  for (uint64_t lpo = 0; lpo < 4; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  const uint64_t old_slot = ftl.PhysicalSlot(0);
  ASSERT_NE(old_slot, Ftl::kUnmappedSlot);
  // Rewrite lpo 0 plus three others to force another flush.
  for (uint64_t lpo : {0ull, 10ull, 11ull, 12ull}) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  const uint64_t new_slot = ftl.PhysicalSlot(0);
  ASSERT_NE(new_slot, Ftl::kUnmappedSlot);
  EXPECT_NE(new_slot, old_slot);
}

TEST(FtlTest, TrimUnmapsAndAllowsRewrite) {
  Ftl ftl = MakeFunctionalFtl();
  for (uint64_t lpo = 0; lpo < 4; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  ASSERT_TRUE(ftl.Trim(2).ok());
  EXPECT_EQ(ftl.Read(2).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ftl.mapped_opages(), 3u);
  ASSERT_TRUE(ftl.Write(2).ok());
  EXPECT_TRUE(ftl.Read(2).ok());
}

TEST(FtlTest, TrimBufferedPage) {
  Ftl ftl = MakeFunctionalFtl();
  ASSERT_TRUE(ftl.Write(3).ok());
  ASSERT_TRUE(ftl.Trim(3).ok());
  EXPECT_EQ(ftl.buffered_opages(), 0u);
  EXPECT_EQ(ftl.Read(3).status().code(), StatusCode::kNotFound);
  // Rewrite after trim works and the stale buffer entry is skipped.
  for (uint64_t lpo : {3ull, 4ull, 5ull, 6ull}) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  EXPECT_TRUE(ftl.Read(3).ok());
}

TEST(FtlTest, TrimIdempotent) {
  Ftl ftl = MakeFunctionalFtl();
  ASSERT_TRUE(ftl.Write(1).ok());
  ASSERT_TRUE(ftl.Trim(1).ok());
  ASSERT_TRUE(ftl.Trim(1).ok());
  EXPECT_EQ(ftl.mapped_opages(), 0u);
}

TEST(FtlTest, GarbageCollectionReclaimsInvalidatedSpace) {
  // Logical space is half of physical; overwrite everything many times —
  // without GC the device would run out of free blocks.
  Ftl ftl = MakeFunctionalFtl(/*logical_opages=*/512);
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    for (uint64_t i = 0; i < 512; ++i) {
      ASSERT_TRUE(ftl.Write(rng.UniformU64(512)).ok()) << "round " << round;
    }
  }
  EXPECT_GT(ftl.stats().erases, 0u);
  EXPECT_GT(ftl.stats().gc_relocations, 0u);
  EXPECT_GE(ftl.free_blocks(), 1u);
}

TEST(FtlTest, MappingIntegrityUnderChurn) {
  // Invariant: after arbitrary write/trim churn, every mapped lpo points at
  // a unique physical slot whose reverse entry matches.
  Ftl ftl = MakeFunctionalFtl(/*logical_opages=*/400);
  Rng rng(17);
  std::unordered_set<uint64_t> live;
  for (int op = 0; op < 20000; ++op) {
    const uint64_t lpo = rng.UniformU64(400);
    if (rng.Bernoulli(0.8)) {
      ASSERT_TRUE(ftl.Write(lpo).ok());
      live.insert(lpo);
    } else {
      ASSERT_TRUE(ftl.Trim(lpo).ok());
      live.erase(lpo);
    }
  }
  EXPECT_EQ(ftl.mapped_opages(), live.size());
  std::unordered_set<uint64_t> slots;
  for (uint64_t lpo = 0; lpo < 400; ++lpo) {
    const bool mapped = live.count(lpo) != 0;
    if (!mapped) {
      EXPECT_EQ(ftl.Read(lpo).status().code(), StatusCode::kNotFound);
      continue;
    }
    ASSERT_TRUE(ftl.Read(lpo).ok()) << "lpo " << lpo;
    const uint64_t slot = ftl.PhysicalSlot(lpo);
    if (slot != Ftl::kUnmappedSlot) {  // not still buffered
      EXPECT_TRUE(slots.insert(slot).second) << "slot aliased: " << slot;
    }
  }
}

TEST(FtlTest, WriteAmplificationReasonableAtLowUtilization) {
  Ftl ftl = MakeFunctionalFtl(/*logical_opages=*/256);  // 25% utilization
  Rng rng(5);
  for (int i = 0; i < 30000; ++i) {
    ASSERT_TRUE(ftl.Write(rng.UniformU64(256)).ok());
  }
  // With 75% slack, greedy GC should keep WAF very low.
  EXPECT_LT(ftl.stats().WriteAmplification(), 1.6);
}

TEST(FtlTest, WearLevelingSpreadsErases) {
  Ftl ftl = MakeFunctionalFtl(/*logical_opages=*/512);
  Rng rng(9);
  for (int i = 0; i < 40000; ++i) {
    ASSERT_TRUE(ftl.Write(rng.UniformU64(512)).ok());
  }
  uint32_t min_pec = UINT32_MAX;
  uint32_t max_pec = 0;
  for (BlockIndex b = 0; b < ftl.chip().geometry().total_blocks(); ++b) {
    min_pec = std::min(min_pec, ftl.chip().BlockPec(b));
    max_pec = std::max(max_pec, ftl.chip().BlockPec(b));
  }
  EXPECT_GT(max_pec, 0u);
  // Min-PEC allocation keeps the spread bounded under a uniform workload.
  EXPECT_LE(max_pec - min_pec, max_pec / 2 + 8);
}

TEST(FtlTest, ReadRangeSharesFlashReadsWithinFPage) {
  Ftl ftl = MakeFunctionalFtl();
  for (uint64_t lpo = 0; lpo < 8; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  // 8 sequential oPages written back-to-back occupy 2 full L0 fPages.
  auto range = ftl.ReadRange(0, 8);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->fpage_reads, 2u);
  EXPECT_EQ(range->buffer_hits, 0u);
  EXPECT_EQ(range->max_level, 0u);

  // Individual reads would have cost 8 flash reads.
  const FlashLatencyConfig latency;
  const SimDuration expected = 2 * latency.read_fpage +
                               8 * latency.TransferTime(4096);
  EXPECT_EQ(range->latency, expected);
}

TEST(FtlTest, ReadRangeValidation) {
  Ftl ftl = MakeFunctionalFtl(100);
  EXPECT_EQ(ftl.ReadRange(90, 20).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ftl.ReadRange(0, 0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ftl.ReadRange(0, 4).status().code(), StatusCode::kNotFound);
}

TEST(FtlTest, ReadRangeCountsBufferHits) {
  Ftl ftl = MakeFunctionalFtl();
  for (uint64_t lpo = 0; lpo < 6; ++lpo) {
    ASSERT_TRUE(ftl.Write(lpo).ok());
  }
  // 4 flushed, 2 still buffered.
  auto range = ftl.ReadRange(0, 6);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->buffer_hits, 2u);
  EXPECT_EQ(range->fpage_reads, 1u);
}

TEST(FtlTest, StatsTrackHostOps) {
  Ftl ftl = MakeFunctionalFtl();
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ftl.Write(i).ok());
  }
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ftl.Read(i).ok());
  }
  EXPECT_EQ(ftl.stats().host_writes, 10u);
  EXPECT_EQ(ftl.stats().host_reads, 10u);
  EXPECT_GT(ftl.stats().buffer_hits, 0u);
}

// ---------------------------------------------------------------------------
// Wear / tiredness behaviour (fast-aging devices)
// ---------------------------------------------------------------------------

// Ages an FTL by overwriting its logical space round-robin.
void AgeByOverwrite(Ftl& ftl, uint64_t opage_writes, uint64_t logical) {
  for (uint64_t i = 0; i < opage_writes; ++i) {
    auto status = ftl.Write(i % logical);
    if (!status.ok()) {
      return;  // capacity exhausted: enough aging for the test
    }
  }
}

TEST(FtlWearTest, ShrinkSPagesDieAtLevelOne) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/20);
  config.max_usable_level = 0;
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(512);
  AgeByOverwrite(ftl, 200000, 512);
  EXPECT_GT(ftl.dead_fpages(), 0u);
  EXPECT_EQ(ftl.reclaimable_limbo_opages(), 0u);  // nothing revivable at L0
  EXPECT_LT(ftl.usable_opages(), 1024u);
}

TEST(FtlWearTest, RegenSPagesEnterLimboAtLevelOne) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/20);
  config.max_usable_level = 1;
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(512);
  AgeByOverwrite(ftl, 120000, 512);
  // Pages that tired out of L0 should be sitting in limbo at L1.
  EXPECT_GT(ftl.limbo_fpages(1), 0u);
  EXPECT_GT(ftl.reclaimable_limbo_opages(), 0u);
}

TEST(FtlWearTest, TransitionsReported) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/20);
  config.max_usable_level = 1;
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(512);
  uint64_t to_limbo = 0;
  uint64_t to_dead = 0;
  for (uint64_t i = 0; i < 150000; ++i) {
    if (!ftl.Write(i % 512).ok()) {
      break;
    }
    for (const PageTransition& t : ftl.TakeTransitions()) {
      EXPECT_LT(t.old_level, 2u);
      if (t.new_level == Ftl::kDeadLevel) {
        ++to_dead;
      } else {
        EXPECT_GT(t.new_level, t.old_level);
        ++to_limbo;
      }
    }
  }
  EXPECT_GT(to_limbo, 0u);
}

TEST(FtlWearTest, ClaimLimboCapacityRestoresService) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/20);
  config.max_usable_level = 1;
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(512);
  AgeByOverwrite(ftl, 120000, 512);
  const uint64_t reclaimable = ftl.reclaimable_limbo_opages();
  ASSERT_GT(reclaimable, 0u);
  const uint64_t before = ftl.usable_opages();
  const uint64_t claimed = ftl.ClaimLimboCapacity(3);
  EXPECT_GE(claimed, 3u);
  EXPECT_EQ(ftl.usable_opages(), before + claimed);
  EXPECT_EQ(ftl.reclaimable_limbo_opages(), reclaimable - claimed);
}

TEST(FtlWearTest, ClaimMoreThanAvailableClaimsEverything) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/20);
  config.max_usable_level = 1;
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(512);
  AgeByOverwrite(ftl, 120000, 512);
  const uint64_t reclaimable = ftl.reclaimable_limbo_opages();
  ASSERT_GT(reclaimable, 0u);
  EXPECT_EQ(ftl.ClaimLimboCapacity(UINT64_MAX), reclaimable);
  EXPECT_EQ(ftl.reclaimable_limbo_opages(), 0u);
}

TEST(FtlWearTest, RevivedPagesServeDataAtLevelOne) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/15);
  config.max_usable_level = 1;
  Ftl ftl(config);
  const uint64_t logical = 512;
  ftl.ExtendLogicalSpace(logical);
  AgeByOverwrite(ftl, 150000, logical);
  ftl.ClaimLimboCapacity(UINT64_MAX);
  // Keep writing: some data should now land on L1 pages and read back.
  AgeByOverwrite(ftl, 20000, logical);
  uint64_t l1_reads = 0;
  for (uint64_t lpo = 0; lpo < logical; ++lpo) {
    auto read = ftl.Read(lpo);
    if (read.ok() && read->tiredness_level == 1) {
      ++l1_reads;
    }
  }
  EXPECT_GT(l1_reads, 0u);
}

TEST(FtlWearTest, BlockWorstPageRetirementKillsWholeBlocks) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/20);
  config.retirement = RetirementGranularity::kBlockWorstPage;
  config.max_usable_level = 0;
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(512);
  AgeByOverwrite(ftl, 200000, 512);
  EXPECT_GT(ftl.retired_blocks(), 0u);
  // Dead pages arrive in whole-block multiples.
  EXPECT_EQ(ftl.dead_fpages() %
                TinyGeometry().fpages_per_block,
            0u);
}

TEST(FtlWearTest, PageGranularityOutlivesBlockGranularity) {
  // The core ShrinkS-vs-CVSS claim (§4): page-granular retirement preserves
  // the strong pages of blocks whose weak pages died, so the device sustains
  // more total writes before losing the same capacity than a design that
  // retires whole blocks on their worst page.
  auto run = [](RetirementGranularity granularity) {
    FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/15);
    config.retirement = granularity;
    config.max_usable_level = 0;
    Ftl ftl(config);
    ftl.ExtendLogicalSpace(400);
    uint64_t writes = 0;
    while (writes < 2000000 && ftl.usable_opages() > 700) {
      if (!ftl.Write(writes % 400).ok()) {
        break;
      }
      ++writes;
    }
    return writes;
  };
  const uint64_t page_writes = run(RetirementGranularity::kPage);
  const uint64_t block_worst_writes =
      run(RetirementGranularity::kBlockWorstPage);
  const uint64_t block_avg_writes = run(RetirementGranularity::kBlockAverage);
  EXPECT_GT(page_writes, block_worst_writes);
  // The unsafe averaging ablation postpones retirement past the weak pages'
  // reliability point, so it retains capacity even longer than worst-page —
  // the "win" it buys by sacrificing UBER.
  EXPECT_GT(block_avg_writes, block_worst_writes);
}

}  // namespace
}  // namespace salamander
