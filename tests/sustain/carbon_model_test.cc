#include "sustain/carbon_model.h"

#include <gtest/gtest.h>

namespace salamander {
namespace {

TEST(RuFromLifetimeGainTest, PaperAnchors) {
  // §4.1: 20% lifetime gain -> Ru 0.9; 50% -> 0.8 (after the conservative
  // 40% discount toward 1).
  EXPECT_NEAR(RuFromLifetimeGain(0.20), 0.9, 1e-9);
  EXPECT_NEAR(RuFromLifetimeGain(0.50), 0.8, 1e-9);
}

TEST(RuFromLifetimeGainTest, NoDiscountIsPureInverse) {
  EXPECT_NEAR(RuFromLifetimeGain(0.20, 0.0), 1.0 / 1.2, 1e-12);
  EXPECT_NEAR(RuFromLifetimeGain(0.50, 0.0), 1.0 / 1.5, 1e-12);
}

TEST(RuFromLifetimeGainTest, ZeroGainMeansNoChange) {
  EXPECT_DOUBLE_EQ(RuFromLifetimeGain(0.0), 1.0);
}

TEST(RuFromLifetimeGainTest, MonotoneDecreasingInGain) {
  double prev = 1.1;
  for (double gain = 0.0; gain <= 2.0; gain += 0.1) {
    const double ru = RuFromLifetimeGain(gain);
    EXPECT_LT(ru, prev);
    prev = ru;
  }
}

TEST(CarbonModelTest, ShrinkSMatchesPaper) {
  // Eq. 3 with f_op=0.46, PE=1.06, Ru=0.9:
  // 0.46*1.06 + 0.54*0.9 = 0.9736 -> ~3% savings.
  const CarbonParams params = ShrinkSCarbonParams();
  EXPECT_NEAR(RelativeCarbon(params), 0.9736, 1e-9);
  EXPECT_NEAR(CarbonSavings(params), 0.0264, 1e-9);
}

TEST(CarbonModelTest, RegenSMatchesPaper) {
  // 0.46*1.06 + 0.54*0.8 = 0.9196 -> ~8% savings ("3-8% CO2e savings").
  const CarbonParams params = RegenSCarbonParams();
  EXPECT_NEAR(RelativeCarbon(params), 0.9196, 1e-9);
  EXPECT_NEAR(CarbonSavings(params), 0.0804, 1e-9);
}

TEST(CarbonModelTest, RenewableScenarioMatchesPaper) {
  // With operational carbon offset, only embodied remains: savings = 1-Ru,
  // i.e. 10% / 20% ("these gains increase to 11-20%").
  EXPECT_NEAR(CarbonSavingsRenewable(ShrinkSCarbonParams()), 0.10, 1e-9);
  EXPECT_NEAR(CarbonSavingsRenewable(RegenSCarbonParams()), 0.20, 1e-9);
}

TEST(CarbonModelTest, RenewableAlwaysBeatsGridForSameRu) {
  for (double ru = 0.5; ru < 1.0; ru += 0.05) {
    CarbonParams params;
    params.ru = ru;
    EXPECT_GT(CarbonSavingsRenewable(params), CarbonSavings(params));
  }
}

TEST(CarbonModelTest, SavingsMonotoneInRu) {
  CarbonParams params;
  double prev = -1.0;
  for (double ru = 1.0; ru >= 0.5; ru -= 0.05) {
    params.ru = ru;
    const double savings = CarbonSavings(params);
    EXPECT_GT(savings, prev);
    prev = savings;
  }
}

TEST(CarbonModelTest, PowerPenaltyCanOutweighEmbodiedGains) {
  // If keeping old drives cost much more energy, savings can go negative —
  // the model must reflect the trade-off, not assume a win.
  CarbonParams params;
  params.ru = 0.95;
  params.pe = 1.25;
  EXPECT_LT(CarbonSavings(params), 0.0);
}

TEST(CarbonModelTest, BaselineIsFixpoint) {
  CarbonParams params;
  params.pe = 1.0;
  params.ru = 1.0;
  EXPECT_DOUBLE_EQ(RelativeCarbon(params), 1.0);
  EXPECT_DOUBLE_EQ(CarbonSavings(params), 0.0);
}

}  // namespace
}  // namespace salamander
