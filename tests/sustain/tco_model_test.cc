#include "sustain/tco_model.h"

#include <gtest/gtest.h>

namespace salamander {
namespace {

TEST(TcoModelTest, CostUpgradeRateShrinkS) {
  // CRu = 0.833 + 0.167 * 0.25 * 0.4 ~ 0.85.
  const TcoParams params = ShrinkSTcoParams();
  EXPECT_NEAR(CostUpgradeRate(params), 1.0 / 1.2 + (1 - 1.0 / 1.2) * 0.1,
              1e-12);
}

TEST(TcoModelTest, ShrinkSMatchesPaperHeadline) {
  // §4.4: "13% cost savings for ShrinkS".
  EXPECT_NEAR(TcoSavings(ShrinkSTcoParams()), 0.13, 0.005);
}

TEST(TcoModelTest, RegenSMatchesPaperHeadline) {
  // §4.4: "25% cost savings for RegenS".
  EXPECT_NEAR(TcoSavings(RegenSTcoParams()), 0.25, 0.015);
}

TEST(TcoModelTest, HalfOpexSensitivityMatchesPaper) {
  // "if we assume half the cost is operational costs, Salamander lowers
  // costs by 6-14%".
  TcoParams shrinks = ShrinkSTcoParams();
  shrinks.f_opex = 0.5;
  TcoParams regens = RegenSTcoParams();
  regens.f_opex = 0.5;
  EXPECT_NEAR(TcoSavings(shrinks), 0.076, 0.02);   // ~ lower bound
  EXPECT_NEAR(TcoSavings(regens), 0.15, 0.02);     // ~ upper bound
  EXPECT_GT(TcoSavings(shrinks), 0.05);
  EXPECT_LT(TcoSavings(regens), 0.16);
}

TEST(TcoModelTest, SavingsShrinkAsOpexGrows) {
  TcoParams params = RegenSTcoParams();
  double prev = 1.0;
  for (double f = 0.0; f <= 1.0; f += 0.1) {
    params.f_opex = f;
    const double savings = TcoSavings(params);
    EXPECT_LT(savings, prev);
    prev = savings;
  }
  // At 100% opex there is nothing to save.
  EXPECT_NEAR(prev, 0.0, 1e-12);
}

TEST(TcoModelTest, BackfillCostReducesSavings) {
  TcoParams with_backfill = RegenSTcoParams();
  TcoParams no_backfill = RegenSTcoParams();
  no_backfill.cap_new = 0.0;
  EXPECT_LT(TcoSavings(with_backfill), TcoSavings(no_backfill));
}

TEST(TcoModelTest, ExpensiveReplacementsErodeSavings) {
  TcoParams cheap = RegenSTcoParams();
  TcoParams pricey = RegenSTcoParams();
  pricey.ce_new = 1.0;  // replacements as expensive as originals
  EXPECT_GT(TcoSavings(cheap), TcoSavings(pricey));
}

TEST(TcoModelTest, BaselineIsFixpoint) {
  TcoParams params;
  params.ru = 1.0;
  EXPECT_DOUBLE_EQ(RelativeTco(params), 1.0);
}

}  // namespace
}  // namespace salamander
