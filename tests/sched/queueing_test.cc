#include "sched/queueing.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace salamander {
namespace {

SchedConfig EnabledConfig() {
  SchedConfig config;
  config.queue_depth = 4;
  config.arrival_interval_ns = 1000;
  config.shed_retry_budget = 2;
  config.retry_backoff_base_ns = 10000;
  config.retry_backoff_max_shift = 16;
  return config;
}

TEST(QueueingConfigTest, DisabledConfigAlwaysValid) {
  SchedConfig config;  // queue_depth == 0
  config.arrival_interval_ns = 0;
  EXPECT_TRUE(ValidateSchedConfig(config).ok());
}

TEST(QueueingConfigTest, EnabledRequiresArrivalInterval) {
  SchedConfig config = EnabledConfig();
  config.arrival_interval_ns = 0;
  EXPECT_EQ(ValidateSchedConfig(config).code(),
            StatusCode::kInvalidArgument);
}

TEST(QueueingConfigTest, RejectsShiftAbove63) {
  SchedConfig config = EnabledConfig();
  config.retry_backoff_max_shift = 64;
  EXPECT_EQ(ValidateSchedConfig(config).code(),
            StatusCode::kInvalidArgument);
}

TEST(QueueingConfigTest, BrownoutNeedsWindow) {
  SchedConfig config = EnabledConfig();
  config.slo_p99_ns = 1000000;
  config.brownout_window_ops = 0;
  EXPECT_EQ(ValidateSchedConfig(config).code(),
            StatusCode::kInvalidArgument);
}

TEST(CappedBackoffTest, DoublesBelowCap) {
  EXPECT_EQ(CappedBackoffNs(10000, 0, 16), 10000u);
  EXPECT_EQ(CappedBackoffNs(10000, 1, 16), 20000u);
  EXPECT_EQ(CappedBackoffNs(10000, 3, 16), 80000u);
}

TEST(CappedBackoffTest, SaturatesAtCapShift) {
  // Attempts beyond the cap keep returning the capped value.
  EXPECT_EQ(CappedBackoffNs(10000, 16, 16), 10000ull << 16);
  EXPECT_EQ(CappedBackoffNs(10000, 40, 16), 10000ull << 16);
  EXPECT_EQ(CappedBackoffNs(10000, 63, 16), 10000ull << 16);
}

TEST(CappedBackoffTest, SaturatesInsteadOfWrapping) {
  // A raw `base << attempt` would wrap here; the capped form saturates.
  EXPECT_EQ(CappedBackoffNs(1ull << 50, 40, 63), UINT64_MAX);
  EXPECT_EQ(CappedBackoffNs(3, 63, 63), UINT64_MAX);
  EXPECT_EQ(CappedBackoffNs(0, 63, 63), 0u);
}

TEST(DeviceQueueTest, EmptyQueueAdmitsWithZeroWait) {
  DeviceQueue queue(EnabledConfig(), 1);
  QueueAdmission a = queue.Admit(OpClass::kForegroundRead, 0);
  EXPECT_TRUE(a.admitted);
  EXPECT_EQ(a.wait_ns, 0u);
  EXPECT_EQ(a.retries, 0u);
  EXPECT_EQ(queue.stats().submitted[0], 1u);
}

TEST(DeviceQueueTest, WaitCountsOwnAndHigherPriorityOnly) {
  DeviceQueue queue(EnabledConfig(), 1);
  queue.Complete(OpClass::kForegroundRead, 100);
  queue.Complete(OpClass::kScrub, 1000);
  // A read waits behind queued reads only; scrub backlog is lower priority.
  EXPECT_EQ(queue.EstimateWaitNs(OpClass::kForegroundRead), 100u);
  // A write waits behind reads and writes.
  EXPECT_EQ(queue.EstimateWaitNs(OpClass::kForegroundWrite), 100u);
  // A scrub waits behind everything.
  EXPECT_EQ(queue.EstimateWaitNs(OpClass::kScrub), 1100u);
  EXPECT_EQ(queue.backlog_ns(), 1100u);
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(DeviceQueueTest, AdvanceDrainsHighestPriorityFirst) {
  DeviceQueue queue(EnabledConfig(), 1);
  queue.Complete(OpClass::kScrub, 100);
  queue.Complete(OpClass::kForegroundRead, 50);
  queue.AdvanceTo(60);
  // The read (50 ns) drains first, then 10 ns of the scrub.
  EXPECT_EQ(queue.EstimateWaitNs(OpClass::kForegroundRead), 0u);
  EXPECT_EQ(queue.EstimateWaitNs(OpClass::kScrub), 90u);
  EXPECT_EQ(queue.depth(), 1u);
  // The clock never rewinds.
  queue.AdvanceTo(10);
  EXPECT_EQ(queue.now_ns(), 60u);
}

TEST(DeviceQueueTest, BoundedDepthShedsAndCounts) {
  SchedConfig config = EnabledConfig();
  config.queue_depth = 2;
  config.shed_retry_budget = 0;
  DeviceQueue queue(config, 1);
  ASSERT_TRUE(queue.Admit(OpClass::kForegroundWrite, 0).admitted);
  queue.Complete(OpClass::kForegroundWrite, 1000);
  ASSERT_TRUE(queue.Admit(OpClass::kForegroundWrite, 0).admitted);
  queue.Complete(OpClass::kForegroundWrite, 1000);
  QueueAdmission a = queue.Admit(OpClass::kForegroundWrite, 0);
  EXPECT_FALSE(a.admitted);
  EXPECT_EQ(queue.stats().sheds[1], 1u);
  EXPECT_EQ(queue.stats().shed_giveups, 1u);
  EXPECT_EQ(queue.stats().shed_retries, 0u);
}

TEST(DeviceQueueTest, ShedRetryBackoffDrainsQueueAndAdmits) {
  SchedConfig config = EnabledConfig();
  config.queue_depth = 1;
  config.shed_retry_budget = 3;
  config.retry_backoff_base_ns = 10000;
  DeviceQueue queue(config, 1);
  ASSERT_TRUE(queue.Admit(OpClass::kForegroundWrite, 0).admitted);
  queue.Complete(OpClass::kForegroundWrite, 5000);
  // Full at depth 1; the first backoff (10 us) outlasts the 5 us backlog.
  QueueAdmission a = queue.Admit(OpClass::kForegroundWrite, 0);
  EXPECT_TRUE(a.admitted);
  EXPECT_EQ(a.retries, 1u);
  EXPECT_EQ(a.backoff_ns, 10000u);
  EXPECT_EQ(a.wait_ns, 0u);  // the queue drained during the backoff
  EXPECT_EQ(queue.stats().sheds[1], 1u);
  EXPECT_EQ(queue.stats().shed_retries, 1u);
  EXPECT_EQ(queue.stats().shed_giveups, 0u);
  EXPECT_EQ(queue.stats().retry_backoff_ns, 10000u);
}

TEST(DeviceQueueTest, RetryDeadlineGivesUpEarly) {
  SchedConfig config = EnabledConfig();
  config.queue_depth = 1;
  config.shed_retry_budget = 5;
  config.retry_backoff_base_ns = 10000;
  config.retry_deadline_ns = 5000;  // below even the first backoff
  DeviceQueue queue(config, 1);
  ASSERT_TRUE(queue.Admit(OpClass::kForegroundWrite, 0).admitted);
  queue.Complete(OpClass::kForegroundWrite, 50000);
  QueueAdmission a = queue.Admit(OpClass::kForegroundWrite, 0);
  EXPECT_FALSE(a.admitted);
  EXPECT_EQ(a.retries, 0u);
  EXPECT_EQ(a.backoff_ns, 0u);
  EXPECT_EQ(queue.stats().shed_giveups, 1u);
}

TEST(DeviceQueueTest, WaitHistogramTracksAdmissions) {
  DeviceQueue queue(EnabledConfig(), 1);
  for (int i = 0; i < 3; ++i) {
    QueueAdmission a = queue.Admit(OpClass::kForegroundRead, 0);
    ASSERT_TRUE(a.admitted);
    queue.Complete(OpClass::kForegroundRead, 1000);
  }
  EXPECT_EQ(queue.stats().wait_ns.count(), 3u);
  EXPECT_EQ(queue.stats().wait_ns_total, 0u + 1000u + 2000u);
}

TEST(BrownoutTest, EntersAndExitsOnWindowP99) {
  BrownoutController brownout(1000, 4);
  ASSERT_TRUE(brownout.enabled());
  for (int i = 0; i < 4; ++i) brownout.RecordForeground(2000);
  EXPECT_TRUE(brownout.active());
  EXPECT_EQ(brownout.stats().entered, 1u);
  for (int i = 0; i < 4; ++i) brownout.RecordForeground(100);
  EXPECT_FALSE(brownout.active());
  EXPECT_EQ(brownout.stats().exited, 1u);
  EXPECT_EQ(brownout.stats().windows, 2u);
}

TEST(BrownoutTest, DisabledNeverActivates) {
  BrownoutController brownout(0, 4);
  EXPECT_FALSE(brownout.enabled());
  for (int i = 0; i < 64; ++i) brownout.RecordForeground(1 << 30);
  EXPECT_FALSE(brownout.active());
  EXPECT_EQ(brownout.stats().windows, 0u);
}

TEST(QueueMetricsTest, CollectExportsCountersGaugesHistogram) {
  SchedConfig config = EnabledConfig();
  config.queue_depth = 1;
  config.shed_retry_budget = 0;
  DeviceQueue queue(config, 1);
  ASSERT_TRUE(queue.Admit(OpClass::kForegroundRead, 0).admitted);
  queue.Complete(OpClass::kForegroundRead, 777);
  EXPECT_FALSE(queue.Admit(OpClass::kScrub, 0).admitted);

  MetricRegistry registry;
  CollectDeviceQueueMetrics(queue, registry, "dev.");
  EXPECT_EQ(registry.FindCounter("dev.sched.submitted.fg_read")->value(), 1u);
  EXPECT_EQ(registry.FindCounter("dev.sched.sheds.scrub")->value(), 1u);
  EXPECT_EQ(registry.FindCounter("dev.sched.shed_giveups")->value(), 1u);
  EXPECT_EQ(registry.FindGauge("dev.sched.depth")->value(), 1.0);
  EXPECT_EQ(registry.FindGauge("dev.sched.backlog_ns")->value(), 777.0);
  EXPECT_EQ(registry.FindHistogram("dev.sched.wait_ns")->data().count(), 1u);
}

// ---- Determinism contract (run under TSan in CI) ---------------------------

// Drives a queue through a mixed, shed-heavy schedule and returns a
// fingerprint of every observable decision.
std::vector<uint64_t> RunSchedule(DeviceQueue& queue) {
  std::vector<uint64_t> trace;
  uint64_t now = 0;
  for (uint32_t i = 0; i < 200; ++i) {
    now += (i % 3) * 500;
    const OpClass cls = static_cast<OpClass>(i % kOpClassCount);
    QueueAdmission a = queue.Admit(cls, now);
    trace.push_back(a.admitted);
    trace.push_back(a.wait_ns);
    trace.push_back(a.backoff_ns);
    trace.push_back(a.retries);
    if (a.admitted) {
      queue.Complete(cls, 1000 + (i % 7) * 300);
    }
    trace.push_back(queue.depth());
    trace.push_back(queue.backlog_ns());
  }
  return trace;
}

TEST(SchedDeterminismTest, IdenticalReplayWithJitter) {
  SchedConfig config = EnabledConfig();
  config.queue_depth = 2;
  config.retry_jitter_ns = 5000;
  DeviceQueue a(config, 42);
  DeviceQueue b(config, 42);
  EXPECT_EQ(RunSchedule(a), RunSchedule(b));
  EXPECT_GT(a.stats().sheds_total(), 0u);
  EXPECT_GT(a.stats().submitted_total(), 0u);
}

TEST(SchedDeterminismTest, JitterSeedInvisibleWhenJitterDisabled) {
  // With retry_jitter_ns == 0 the jitter stream draws zero values, so two
  // queues with wildly different seeds make byte-identical decisions.
  SchedConfig config = EnabledConfig();
  config.queue_depth = 2;
  config.retry_jitter_ns = 0;
  DeviceQueue a(config, 1);
  DeviceQueue b(config, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(RunSchedule(a), RunSchedule(b));
  EXPECT_GT(a.stats().sheds_total(), 0u);
}

TEST(SchedDeterminismTest, JitterChangesBackoffOnlyThroughItsOwnStream) {
  // Same seed, jitter on vs off: admissions may differ, but the jitter-off
  // run's backoffs are exactly the capped-exponential schedule.
  SchedConfig config = EnabledConfig();
  config.queue_depth = 1;
  config.shed_retry_budget = 2;
  DeviceQueue queue(config, 7);
  ASSERT_TRUE(queue.Admit(OpClass::kForegroundWrite, 0).admitted);
  queue.Complete(OpClass::kForegroundWrite, 1u << 30);  // huge backlog
  QueueAdmission a = queue.Admit(OpClass::kForegroundWrite, 0);
  EXPECT_FALSE(a.admitted);
  EXPECT_EQ(a.backoff_ns, 10000u + 20000u);  // base + base<<1, no jitter
}

}  // namespace
}  // namespace salamander
