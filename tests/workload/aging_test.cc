#include "workload/aging.h"

#include <gtest/gtest.h>

#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

TEST(LiveSetTrackerTest, AppliesCreations) {
  LiveSetTracker tracker;
  tracker.Apply({{MinidiskEventType::kCreated, 0},
                 {MinidiskEventType::kCreated, 1},
                 {MinidiskEventType::kCreated, 2}});
  EXPECT_EQ(tracker.size(), 3u);
  EXPECT_TRUE(tracker.Contains(1));
}

TEST(LiveSetTrackerTest, AppliesDecommissions) {
  LiveSetTracker tracker;
  tracker.Apply({{MinidiskEventType::kCreated, 0},
                 {MinidiskEventType::kCreated, 1}});
  tracker.Apply({{MinidiskEventType::kDecommissioned, 0}});
  EXPECT_EQ(tracker.size(), 1u);
  EXPECT_FALSE(tracker.Contains(0));
  EXPECT_TRUE(tracker.Contains(1));
}

TEST(LiveSetTrackerTest, DuplicateDecommissionIgnored) {
  LiveSetTracker tracker;
  tracker.Apply({{MinidiskEventType::kCreated, 0}});
  tracker.Apply({{MinidiskEventType::kDecommissioned, 0},
                 {MinidiskEventType::kDecommissioned, 0}});
  EXPECT_TRUE(tracker.empty());
  EXPECT_EQ(tracker.decommissioned_seen(), 2u);
}

TEST(LiveSetTrackerTest, PickRandomReturnsLiveIds) {
  LiveSetTracker tracker;
  tracker.Apply({{MinidiskEventType::kCreated, 5},
                 {MinidiskEventType::kCreated, 9}});
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    MinidiskId id = tracker.PickRandom(rng);
    EXPECT_TRUE(id == 5 || id == 9);
  }
}

TEST(AgingDriverTest, ConsumesInitialFormatEvents) {
  SsdDevice device(SsdKind::kShrinkS,
                   TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), 1000000));
  AgingDriver driver(&device, 1);
  EXPECT_EQ(driver.tracker().size(), 12u);
}

TEST(AgingDriverTest, WritesRequestedAmount) {
  SsdDevice device(SsdKind::kShrinkS,
                   TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), 1000000));
  AgingDriver driver(&device, 2);
  AgingResult result = driver.WriteOPages(1000);
  EXPECT_EQ(result.opages_written, 1000u);
  EXPECT_FALSE(result.device_failed);
  EXPECT_EQ(device.ftl().stats().host_writes, 1000u);
}

TEST(AgingDriverTest, StopsWhenDeviceDies) {
  SsdDevice device(SsdKind::kBaseline,
                   TestSsdConfig(SsdKind::kBaseline, TinyGeometry(), 10));
  AgingDriver driver(&device, 3);
  AgingResult result = driver.WriteOPages(100000000);
  EXPECT_TRUE(result.device_failed);
  EXPECT_LT(result.opages_written, 100000000u);
  EXPECT_TRUE(device.failed());
}

TEST(AgingDriverTest, TracksShrinkingLiveSet) {
  SsdDevice device(SsdKind::kShrinkS,
                   TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), 15));
  AgingDriver driver(&device, 4);
  const size_t initial = driver.tracker().size();
  driver.WriteOPages(100000000);  // runs to device death
  EXPECT_LT(driver.tracker().size(), initial);
}

}  // namespace
}  // namespace salamander
