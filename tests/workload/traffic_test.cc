// Traffic-engine suite: config validation (every out-of-range field is a
// Status error, constructors die on invalid input), golden op streams,
// engine determinism, tenant-major emission order, arrival shaping, churn,
// skew accounting, the shared zeta cache, and metric export.
#include "workload/traffic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "tests/testing/device_builder.h"
#include "workload/aging.h"
#include "workload/generators.h"

namespace salamander {
namespace {

TenantConfig SmallTenant() {
  TenantConfig tenant;
  tenant.objects = 4096;
  tenant.ops_per_day = 500.0;
  return tenant;
}

TrafficConfig TwoTenants() {
  TrafficConfig config;
  config.seed = 77;
  config.tenants = {SmallTenant(), SmallTenant()};
  return config;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(TrafficValidationTest, DefaultTenantIsValid) {
  EXPECT_TRUE(ValidateTenantConfig(TenantConfig{}).ok());
}

TEST(TrafficValidationTest, ZeroObjectsRejected) {
  TenantConfig tenant;
  tenant.objects = 0;
  const Status status = ValidateTenantConfig(tenant);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("objects"), std::string::npos);
}

TEST(TrafficValidationTest, ThetaOutsideOpenUnitIntervalRejected) {
  for (double theta : {0.0, 1.0, 1.5, -0.2}) {
    TenantConfig tenant;
    tenant.zipf_theta = theta;
    EXPECT_FALSE(ValidateTenantConfig(tenant).ok()) << theta;
  }
}

TEST(TrafficValidationTest, FractionFieldsRejectOutOfRange) {
  TenantConfig tenant;
  tenant.read_fraction = 1.5;
  EXPECT_FALSE(ValidateTenantConfig(tenant).ok());
  tenant = TenantConfig{};
  tenant.read_fraction = -0.1;
  EXPECT_FALSE(ValidateTenantConfig(tenant).ok());
  tenant = TenantConfig{};
  tenant.diurnal_amplitude = 2.0;
  EXPECT_FALSE(ValidateTenantConfig(tenant).ok());
  tenant = TenantConfig{};
  tenant.churn_per_day = 1.0001;
  EXPECT_FALSE(ValidateTenantConfig(tenant).ok());
}

TEST(TrafficValidationTest, NonFiniteFieldsRejected) {
  TenantConfig tenant;
  tenant.ops_per_day = std::nan("");
  EXPECT_FALSE(ValidateTenantConfig(tenant).ok());
  tenant = TenantConfig{};
  tenant.ops_per_day = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ValidateTenantConfig(tenant).ok());
  tenant = TenantConfig{};
  tenant.diurnal_period_days = 0.0;
  EXPECT_FALSE(ValidateTenantConfig(tenant).ok());
}

TEST(TrafficValidationTest, DiurnalPhaseMustBeHalfOpen) {
  TenantConfig tenant;
  tenant.diurnal_phase = 1.0;
  EXPECT_FALSE(ValidateTenantConfig(tenant).ok());
  tenant.diurnal_phase = 0.999;
  EXPECT_TRUE(ValidateTenantConfig(tenant).ok());
}

TEST(TrafficValidationTest, BurstMeanPreservationEnforced) {
  // on_fraction * multiplier > 1 would need negative off-phase demand.
  TenantConfig tenant;
  tenant.burst_on_fraction = 0.5;
  tenant.burst_multiplier = 3.0;
  const Status status = ValidateTenantConfig(tenant);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  tenant.burst_multiplier = 2.0;  // exactly 1.0: allowed
  EXPECT_TRUE(ValidateTenantConfig(tenant).ok());
}

TEST(TrafficValidationTest, BurstFieldRanges) {
  TenantConfig tenant;
  tenant.burst_on_fraction = 0.0;
  EXPECT_FALSE(ValidateTenantConfig(tenant).ok());
  tenant = TenantConfig{};
  tenant.burst_multiplier = 0.5;
  EXPECT_FALSE(ValidateTenantConfig(tenant).ok());
  tenant = TenantConfig{};
  tenant.burst_cycle_days = 0.0;
  EXPECT_FALSE(ValidateTenantConfig(tenant).ok());
}

TEST(TrafficValidationTest, EmptyTenantListRejected) {
  TrafficConfig config;
  const Status status = ValidateTrafficConfig(config);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(TrafficValidationTest, BadTenantNamedByIndex) {
  TrafficConfig config = TwoTenants();
  config.tenants[1].objects = 0;
  const Status status = ValidateTrafficConfig(config);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("tenant 1"), std::string::npos);
}

TEST(TrafficValidationDeathTest, EngineDiesOnInvalidConfig) {
  TrafficConfig config = TwoTenants();
  config.tenants[0].read_fraction = 2.0;
  EXPECT_DEATH(TrafficEngine(config, 1024), "invalid config");
}

TEST(TrafficValidationDeathTest, EngineDiesOnZeroAddressSpace) {
  EXPECT_DEATH(TrafficEngine(TwoTenants(), 0), "address_space");
}

// ---------------------------------------------------------------------------
// AgingConfig validation (satellite: same contract as the traffic configs)
// ---------------------------------------------------------------------------

TEST(AgingValidationTest, DefaultIsValid) {
  EXPECT_TRUE(ValidateAgingConfig(AgingConfig{}).ok());
}

TEST(AgingValidationTest, RejectsOutOfRangeFields) {
  AgingConfig config;
  config.zipfian_fraction = -0.5;
  EXPECT_FALSE(ValidateAgingConfig(config).ok());
  config = AgingConfig{};
  config.zipfian_fraction = 1.5;
  EXPECT_FALSE(ValidateAgingConfig(config).ok());
  config = AgingConfig{};
  config.zipfian_theta = 1.0;
  EXPECT_FALSE(ValidateAgingConfig(config).ok());
  config = AgingConfig{};
  config.working_set_fraction = 0.0;
  EXPECT_FALSE(ValidateAgingConfig(config).ok());
  config = AgingConfig{};
  config.working_set_fraction = std::nan("");
  EXPECT_FALSE(ValidateAgingConfig(config).ok());
}

TEST(AgingValidationDeathTest, DriverDiesOnInvalidConfig) {
  SsdDevice device(SsdKind::kRegenS,
                   testing_util::TestSsdConfig(
                       SsdKind::kRegenS, testing_util::TinyGeometry(), 20));
  AgingConfig config;
  config.zipfian_fraction = 7.0;
  EXPECT_DEATH(AgingDriver(&device, 1, config), "invalid config");
}

// ---------------------------------------------------------------------------
// Determinism & golden streams
// ---------------------------------------------------------------------------

TEST(TrafficEngineTest, SameConfigSameStream) {
  TrafficEngine a(TwoTenants(), 1 << 16);
  TrafficEngine b(TwoTenants(), 1 << 16);
  std::vector<TrafficOp> ops_a;
  std::vector<TrafficOp> ops_b;
  for (uint32_t day = 0; day < 10; ++day) {
    a.EmitDay(day, &ops_a);
    b.EmitDay(day, &ops_b);
  }
  ASSERT_FALSE(ops_a.empty());
  ASSERT_EQ(ops_a.size(), ops_b.size());
  for (size_t i = 0; i < ops_a.size(); ++i) {
    EXPECT_EQ(ops_a[i].tenant, ops_b[i].tenant);
    EXPECT_EQ(ops_a[i].is_read, ops_b[i].is_read);
    EXPECT_EQ(ops_a[i].address, ops_b[i].address);
  }
  EXPECT_EQ(a.StreamDigest(), b.StreamDigest());
}

TEST(TrafficEngineTest, GoldenStreamDigest) {
  // Pinned fingerprint of the canonical two-tenant stream. A change here
  // means the op stream itself changed — every fleet/cluster result built
  // on it silently moved. Update only with a changelog entry explaining why.
  TrafficEngine engine(TwoTenants(), 1 << 16);
  for (uint32_t day = 0; day < 10; ++day) {
    engine.EmitDay(day, nullptr);
  }
  EXPECT_EQ(engine.StreamDigest(), 0x87c25abab688f566ULL);
  EXPECT_EQ(engine.ops_emitted(), 10020u);
}

TEST(TrafficEngineTest, DifferentSeedsDiverge) {
  TrafficConfig other = TwoTenants();
  other.seed = 78;
  TrafficEngine a(TwoTenants(), 1 << 16);
  TrafficEngine b(other, 1 << 16);
  for (uint32_t day = 0; day < 5; ++day) {
    a.EmitDay(day, nullptr);
    b.EmitDay(day, nullptr);
  }
  EXPECT_NE(a.StreamDigest(), b.StreamDigest());
}

TEST(TrafficEngineTest, TenantStreamsIndependentOfTenantCount) {
  // Tenant 0's ops must be identical whether or not tenant 1 exists —
  // the fork-in-tenant-ID-order discipline.
  TrafficConfig solo;
  solo.seed = 77;
  solo.tenants = {SmallTenant()};
  TrafficEngine a(solo, 1 << 16);
  TrafficEngine b(TwoTenants(), 1 << 16);
  std::vector<TrafficOp> ops_a;
  std::vector<TrafficOp> ops_b;
  a.EmitDay(0, &ops_a);
  b.EmitDay(0, &ops_b);
  std::vector<TrafficOp> b_tenant0;
  for (const TrafficOp& op : ops_b) {
    if (op.tenant == 0) {
      b_tenant0.push_back(op);
    }
  }
  ASSERT_EQ(ops_a.size(), b_tenant0.size());
  for (size_t i = 0; i < ops_a.size(); ++i) {
    EXPECT_EQ(ops_a[i].is_read, b_tenant0[i].is_read);
    EXPECT_EQ(ops_a[i].address, b_tenant0[i].address);
  }
}

TEST(TrafficEngineTest, EmitDayIsTenantMajor) {
  TrafficEngine engine(TwoTenants(), 1 << 16);
  std::vector<TrafficOp> ops;
  engine.EmitDay(0, &ops);
  ASSERT_FALSE(ops.empty());
  uint32_t last = 0;
  for (const TrafficOp& op : ops) {
    EXPECT_GE(op.tenant, last);
    last = op.tenant;
  }
  EXPECT_EQ(last, 1u);  // both tenants emitted
}

TEST(TrafficEngineTest, AddressesStayInSpace) {
  const uint64_t space = 777;  // deliberately non-power-of-two
  TrafficEngine engine(TwoTenants(), space);
  std::vector<TrafficOp> ops;
  for (uint32_t day = 0; day < 5; ++day) {
    engine.EmitDay(day, &ops);
  }
  for (const TrafficOp& op : ops) {
    EXPECT_LT(op.address, space);
  }
}

TEST(TrafficEngineTest, DayGapsAdvanceWithoutEmitting) {
  // A fleet device that was dark for days 1..3 asks for day 4 directly; the
  // engine must catch up phase/churn state and still be deterministic.
  TrafficConfig config = TwoTenants();
  config.tenants[0].churn_per_day = 0.01;
  TrafficEngine a(config, 1 << 16);
  TrafficEngine b(config, 1 << 16);
  a.EmitDay(0, nullptr);
  b.EmitDay(0, nullptr);
  a.EmitDay(4, nullptr);
  b.EmitDay(4, nullptr);
  EXPECT_EQ(a.StreamDigest(), b.StreamDigest());
  EXPECT_GT(a.ops_emitted(), 0u);
}

TEST(TrafficEngineTest, DayWriteDemandDeterministicAndCounted) {
  TrafficConfig config = TwoTenants();
  config.tenants[0].read_fraction = 0.25;
  config.tenants[1].read_fraction = 0.75;
  TrafficEngine a(config, 1 << 16);
  TrafficEngine b(config, 1 << 16);
  uint64_t total_writes = 0;
  for (uint32_t day = 0; day < 50; ++day) {
    const uint64_t writes = a.DayWriteDemand(day);
    EXPECT_EQ(writes, b.DayWriteDemand(day)) << day;
    total_writes += writes;
  }
  EXPECT_EQ(a.ops_emitted(), a.reads_emitted() + a.writes_emitted());
  EXPECT_EQ(a.writes_emitted(), total_writes);
  // Long-run mix: tenant 0 writes ~75% of 500, tenant 1 ~25% of 500 —
  // about 500 writes/day total. Poisson + Binomial noise stays well inside
  // +/- 20% over 50 days.
  const double mean_writes = static_cast<double>(total_writes) / 50.0;
  EXPECT_GT(mean_writes, 400.0);
  EXPECT_LT(mean_writes, 600.0);
}

// ---------------------------------------------------------------------------
// Arrival shaping & churn
// ---------------------------------------------------------------------------

TEST(TrafficEngineTest, DiurnalDemandSwings) {
  TrafficConfig config;
  config.seed = 5;
  TenantConfig tenant = SmallTenant();
  tenant.ops_per_day = 20000.0;  // large mean: Poisson noise ~0.7%
  tenant.arrival = ArrivalShape::kDiurnal;
  tenant.diurnal_amplitude = 0.5;
  tenant.diurnal_period_days = 4.0;  // peak at day 1, trough at day 3
  config.tenants = {tenant};
  TrafficEngine engine(config, 1 << 16);
  std::vector<uint64_t> per_day;
  for (uint32_t day = 0; day < 4; ++day) {
    per_day.push_back(engine.EmitDay(day, nullptr));
  }
  // sin peak (1.5x) vs trough (0.5x): a 3x ratio, far beyond noise.
  EXPECT_GT(per_day[1], per_day[3] * 2);
}

TEST(TrafficEngineTest, BurstyDemandAlternates) {
  TrafficConfig config;
  config.seed = 9;
  TenantConfig tenant = SmallTenant();
  tenant.ops_per_day = 5000.0;
  tenant.arrival = ArrivalShape::kBursty;
  tenant.burst_on_fraction = 0.25;
  tenant.burst_multiplier = 3.0;
  tenant.burst_cycle_days = 8.0;
  config.tenants = {tenant};
  TrafficEngine engine(config, 1 << 16);
  uint64_t min_day = UINT64_MAX;
  uint64_t max_day = 0;
  for (uint32_t day = 0; day < 64; ++day) {
    const uint64_t ops = engine.EmitDay(day, nullptr);
    min_day = std::min(min_day, ops);
    max_day = std::max(max_day, ops);
  }
  // On-phase demand is 3x the mean, off-phase is 2/3x: the spread must
  // show both regimes.
  EXPECT_GT(max_day, 12000u);
  EXPECT_LT(min_day, 5000u);
}

TEST(TrafficEngineTest, ChurnMigratesTheHotSet) {
  TrafficConfig still = TwoTenants();
  TrafficConfig churning = TwoTenants();
  churning.tenants[0].churn_per_day = 0.05;
  churning.tenants[1].churn_per_day = 0.05;
  TrafficEngine a(still, 1 << 16);
  TrafficEngine b(churning, 1 << 16);
  // Churn shifts the rank->object rotation from day 0 onward (the advance
  // loop credits each simulated day, including the first), so the two
  // engines' address streams must diverge.
  for (uint32_t day = 0; day <= 10; ++day) {
    a.EmitDay(day, nullptr);
    b.EmitDay(day, nullptr);
  }
  EXPECT_NE(a.StreamDigest(), b.StreamDigest());
}

TEST(TrafficEngineTest, SkewAccountingMatchesTheta) {
  TrafficConfig config;
  config.seed = 3;
  TenantConfig hot = SmallTenant();
  hot.zipf_theta = 0.99;
  TenantConfig mild = SmallTenant();
  mild.zipf_theta = 0.1;
  config.tenants = {hot, mild};
  TrafficEngine engine(config, 1 << 16);
  for (uint32_t day = 0; day < 20; ++day) {
    engine.EmitDay(day, nullptr);
  }
  // Tenant 0 concentrates far more of its ops in the top 1% of ranks, and
  // needs far fewer objects to cover half its mass.
  EXPECT_GT(engine.TenantAchievedSkew(0), 0.4);
  EXPECT_LT(engine.TenantAchievedSkew(1), engine.TenantAchievedSkew(0) / 2);
  EXPECT_LT(engine.TenantHotSetObjects(0), engine.TenantHotSetObjects(1));
}

TEST(TrafficEngineTest, MakeUniformTrafficRotatesShapes) {
  const TrafficConfig mixed =
      MakeUniformTraffic(6, SmallTenant(), 1, /*mixed_arrivals=*/true);
  ASSERT_EQ(mixed.tenants.size(), 6u);
  EXPECT_EQ(mixed.tenants[0].arrival, ArrivalShape::kSteady);
  EXPECT_EQ(mixed.tenants[1].arrival, ArrivalShape::kDiurnal);
  EXPECT_EQ(mixed.tenants[2].arrival, ArrivalShape::kBursty);
  EXPECT_EQ(mixed.tenants[3].arrival, ArrivalShape::kSteady);
  // Diurnal phases are staggered, not phase-locked.
  EXPECT_NE(mixed.tenants[1].diurnal_phase, mixed.tenants[4].diurnal_phase);
  const TrafficConfig plain =
      MakeUniformTraffic(3, SmallTenant(), 1, /*mixed_arrivals=*/false);
  for (const TenantConfig& tenant : plain.tenants) {
    EXPECT_EQ(tenant.arrival, ArrivalShape::kSteady);
  }
}

TEST(TrafficEngineTest, ArrivalShapeNames) {
  EXPECT_EQ(ArrivalShapeName(ArrivalShape::kSteady), "steady");
  EXPECT_EQ(ArrivalShapeName(ArrivalShape::kDiurnal), "diurnal");
  EXPECT_EQ(ArrivalShapeName(ArrivalShape::kBursty), "bursty");
}

// ---------------------------------------------------------------------------
// Zeta cache
// ---------------------------------------------------------------------------

TEST(ZetaCacheTest, MatchesDirectSum) {
  const double cached = ZipfianGenerator::CachedZeta(1000, 0.99);
  double direct = 0.0;
  for (uint64_t i = 1; i <= 1000; ++i) {
    direct += 1.0 / std::pow(static_cast<double>(i), 0.99);
  }
  EXPECT_DOUBLE_EQ(cached, direct);
}

TEST(ZetaCacheTest, RepeatedLookupsDoNotGrowTheCache) {
  (void)ZipfianGenerator::CachedZeta(12345, 0.77);
  const size_t size = ZipfianGenerator::ZetaCacheSize();
  for (int i = 0; i < 10; ++i) {
    (void)ZipfianGenerator::CachedZeta(12345, 0.77);
  }
  EXPECT_EQ(ZipfianGenerator::ZetaCacheSize(), size);
  (void)ZipfianGenerator::CachedZeta(12346, 0.77);
  EXPECT_EQ(ZipfianGenerator::ZetaCacheSize(), size + 1);
}

TEST(ZetaCacheTest, CachedGeneratorsMatchFreshOnes) {
  // Two generators with the same (space, theta) share cached constants and
  // must produce identical sequences from identical rng states.
  ZipfianGenerator a(50000, 0.99);
  ZipfianGenerator b(50000, 0.99);
  Rng rng_a(11);
  Rng rng_b(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(rng_a), b.Next(rng_b));
  }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(TrafficEngineTest, CollectMetricsExportsCounts) {
  TrafficEngine engine(TwoTenants(), 1 << 16);
  for (uint32_t day = 0; day < 3; ++day) {
    engine.EmitDay(day, nullptr);
  }
  MetricRegistry registry;
  engine.CollectMetrics(registry);
  EXPECT_EQ(registry.GetCounter("workload.ops").value(),
            engine.ops_emitted());
  EXPECT_EQ(registry.GetCounter("workload.reads").value(),
            engine.reads_emitted());
  EXPECT_EQ(registry.GetCounter("workload.writes").value(),
            engine.writes_emitted());
  EXPECT_EQ(registry.GetCounter("workload.tenant.0.ops").value() +
                registry.GetCounter("workload.tenant.1.ops").value(),
            engine.ops_emitted());
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("workload.tenant.1.achieved_skew"), std::string::npos);
}

}  // namespace
}  // namespace salamander
