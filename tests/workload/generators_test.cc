#include "workload/generators.h"

#include <gtest/gtest.h>

#include <vector>

namespace salamander {
namespace {

TEST(UniformGeneratorTest, StaysInRange) {
  UniformGenerator gen(100);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(gen.Next(rng), 100u);
  }
}

TEST(SequentialGeneratorTest, WrapsAround) {
  SequentialGenerator gen(5);
  Rng rng(1);
  std::vector<uint64_t> seen;
  for (int i = 0; i < 12; ++i) {
    seen.push_back(gen.Next(rng));
  }
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1}));
}

TEST(SequentialGeneratorTest, StartOffset) {
  SequentialGenerator gen(10, 7);
  Rng rng(1);
  EXPECT_EQ(gen.Next(rng), 7u);
  EXPECT_EQ(gen.Next(rng), 8u);
}

TEST(ZipfianGeneratorTest, StaysInRange) {
  ZipfianGenerator gen(1000);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.Next(rng), 1000u);
  }
}

TEST(ZipfianGeneratorTest, HotItemsAreHot) {
  ZipfianGenerator gen(1000, 0.99);
  Rng rng(3);
  std::vector<uint64_t> counts(1000, 0);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[gen.Next(rng)];
  }
  // Item 0 should dominate; the top-10 items take a large share.
  EXPECT_GT(counts[0], counts[100] * 5);
  uint64_t top10 = 0;
  for (int i = 0; i < 10; ++i) {
    top10 += counts[i];
  }
  EXPECT_GT(static_cast<double>(top10) / kSamples, 0.25);
}

TEST(ZipfianGeneratorTest, LowerThetaIsFlatter) {
  Rng rng_a(4);
  Rng rng_b(4);
  ZipfianGenerator skewed(1000, 0.99);
  ZipfianGenerator flat(1000, 0.5);
  uint64_t skewed_zero = 0;
  uint64_t flat_zero = 0;
  for (int i = 0; i < 100000; ++i) {
    skewed_zero += skewed.Next(rng_a) == 0 ? 1 : 0;
    flat_zero += flat.Next(rng_b) == 0 ? 1 : 0;
  }
  EXPECT_GT(skewed_zero, flat_zero * 2);
}

TEST(ZipfianGeneratorTest, SpaceOfOne) {
  ZipfianGenerator gen(1, 0.9);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gen.Next(rng), 0u);
  }
}

TEST(OpMixTest, RespectsReadFraction) {
  OpMix mix(0.7);
  Rng rng(6);
  int reads = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    reads += mix.NextIsRead(rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(reads) / kN, 0.7, 0.01);
}

TEST(OpMixTest, DegenerateFractions) {
  Rng rng(7);
  OpMix all_reads(1.0);
  OpMix all_writes(0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(all_reads.NextIsRead(rng));
    EXPECT_FALSE(all_writes.NextIsRead(rng));
  }
}

}  // namespace
}  // namespace salamander
