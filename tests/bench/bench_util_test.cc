// Strict flag parsing in the bench harness: 0 is a first-class value for
// --scrub-opages-per-day ("scrub disabled", not a usage error), while signs,
// garbage, overflow, and missing values exit 2 with a clear message — no
// bench ever silently runs a default config off a mistyped flag.
#include <gtest/gtest.h>

#include "bench/bench_util.h"

namespace salamander {
namespace bench {
namespace {

// argv helper: the arrays below decay to char** via this cast-away of the
// string literals' constness (argv is mutable by POSIX signature only; the
// parsers never write through it).
template <size_t N>
char** Argv(const char* (&args)[N]) {
  return const_cast<char**>(args);
}

TEST(BenchUtilTest, ScrubFlagDefaultsToDisabled) {
  const char* args[] = {"bench"};
  EXPECT_EQ(ParseScrubOPagesPerDay(1, Argv(args)), 0u);
  EXPECT_EQ(ParseScrubOPagesPerDay(1, Argv(args), /*default_value=*/7), 7u);
}

TEST(BenchUtilTest, ScrubFlagZeroIsValidNotAnError) {
  const char* separate[] = {"bench", "--scrub-opages-per-day", "0"};
  EXPECT_EQ(ParseScrubOPagesPerDay(3, Argv(separate), /*default_value=*/99),
            0u);
  const char* equals[] = {"bench", "--scrub-opages-per-day=0"};
  EXPECT_EQ(ParseScrubOPagesPerDay(2, Argv(equals), /*default_value=*/99),
            0u);
}

TEST(BenchUtilTest, ScrubFlagParsesBothSpellings) {
  const char* separate[] = {"bench", "--scrub-opages-per-day", "4096"};
  EXPECT_EQ(ParseScrubOPagesPerDay(3, Argv(separate)), 4096u);
  const char* equals[] = {"bench", "--scrub-opages-per-day=4096"};
  EXPECT_EQ(ParseScrubOPagesPerDay(2, Argv(equals)), 4096u);
}

TEST(BenchUtilTest, L2pCacheEntriesDefaultsToUnbounded) {
  const char* args[] = {"bench"};
  EXPECT_EQ(ParseL2pCacheEntries(1, Argv(args)), 0u);
  EXPECT_EQ(ParseL2pCacheEntries(1, Argv(args), /*default_value=*/64), 64u);
}

TEST(BenchUtilTest, L2pCacheEntriesZeroIsValidNotAnError) {
  const char* separate[] = {"bench", "--l2p-cache-entries", "0"};
  EXPECT_EQ(ParseL2pCacheEntries(3, Argv(separate), /*default_value=*/99),
            0u);
  const char* equals[] = {"bench", "--l2p-cache-entries=0"};
  EXPECT_EQ(ParseL2pCacheEntries(2, Argv(equals), /*default_value=*/99), 0u);
}

TEST(BenchUtilTest, L2pCacheEntriesParsesBothSpellings) {
  const char* separate[] = {"bench", "--l2p-cache-entries", "4096"};
  EXPECT_EQ(ParseL2pCacheEntries(3, Argv(separate)), 4096u);
  const char* equals[] = {"bench", "--l2p-cache-entries=4096"};
  EXPECT_EQ(ParseL2pCacheEntries(2, Argv(equals)), 4096u);
}

TEST(BenchUtilTest, L2pCacheEntriesRejectsGarbage) {
  const char* garbage[] = {"bench", "--l2p-cache-entries", "banana"};
  EXPECT_EXIT(ParseL2pCacheEntries(3, Argv(garbage)),
              ::testing::ExitedWithCode(2), "non-negative integer");
  const char* negative[] = {"bench", "--l2p-cache-entries", "-16"};
  EXPECT_EXIT(ParseL2pCacheEntries(3, Argv(negative)),
              ::testing::ExitedWithCode(2), "non-negative integer");
  const char* trailing[] = {"bench", "--l2p-cache-entries", "64oops"};
  EXPECT_EXIT(ParseL2pCacheEntries(3, Argv(trailing)),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(BenchUtilTest, L2pCacheEntriesRejectsMissingValue) {
  const char* dangling[] = {"bench", "--l2p-cache-entries"};
  EXPECT_EXIT(ParseL2pCacheEntries(2, Argv(dangling)),
              ::testing::ExitedWithCode(2), "requires a value");
  const char* empty[] = {"bench", "--l2p-cache-entries="};
  EXPECT_EXIT(ParseL2pCacheEntries(2, Argv(empty)),
              ::testing::ExitedWithCode(2), "requires a value");
}

TEST(BenchUtilTest, NegativeValueExitsWithUsageError) {
  const char* args[] = {"bench", "--scrub-opages-per-day", "-3"};
  EXPECT_EXIT(ParseScrubOPagesPerDay(3, Argv(args)),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(BenchUtilTest, PlusSignExitsWithUsageError) {
  const char* args[] = {"bench", "--scrub-opages-per-day", "+3"};
  EXPECT_EXIT(ParseScrubOPagesPerDay(3, Argv(args)),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(BenchUtilTest, GarbageExitsWithUsageError) {
  const char* args[] = {"bench", "--scrub-opages-per-day", "banana"};
  EXPECT_EXIT(ParseScrubOPagesPerDay(3, Argv(args)),
              ::testing::ExitedWithCode(2), "non-negative integer");
  const char* trailing[] = {"bench", "--scrub-opages-per-day", "64oops"};
  EXPECT_EXIT(ParseScrubOPagesPerDay(3, Argv(trailing)),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(BenchUtilTest, OverflowExitsWithUsageError) {
  // One past UINT64_MAX.
  const char* args[] = {"bench", "--scrub-opages-per-day",
                        "18446744073709551616"};
  EXPECT_EXIT(ParseScrubOPagesPerDay(3, Argv(args)),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(BenchUtilTest, MissingValueExitsWithUsageError) {
  const char* dangling[] = {"bench", "--scrub-opages-per-day"};
  EXPECT_EXIT(ParseScrubOPagesPerDay(2, Argv(dangling)),
              ::testing::ExitedWithCode(2), "requires a value");
  const char* empty[] = {"bench", "--scrub-opages-per-day="};
  EXPECT_EXIT(ParseScrubOPagesPerDay(2, Argv(empty)),
              ::testing::ExitedWithCode(2), "requires a value");
}

TEST(BenchUtilTest, ThreadsFlagStillRejectsOutOfRange) {
  const char* args[] = {"bench", "--threads", "4096"};
  EXPECT_EXIT(ParseThreads(3, Argv(args)), ::testing::ExitedWithCode(2),
              "0 \\(all cores\\) .. 1024");
}

}  // namespace
}  // namespace bench
}  // namespace salamander
