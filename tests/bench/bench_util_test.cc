// Strict flag parsing in the bench harness: 0 is a first-class value for
// --scrub-opages-per-day ("scrub disabled", not a usage error), while signs,
// garbage, overflow, and missing values exit 2 with a clear message — no
// bench ever silently runs a default config off a mistyped flag.
#include <gtest/gtest.h>

#include "bench/bench_util.h"

namespace salamander {
namespace bench {
namespace {

// argv helper: the arrays below decay to char** via this cast-away of the
// string literals' constness (argv is mutable by POSIX signature only; the
// parsers never write through it).
template <size_t N>
char** Argv(const char* (&args)[N]) {
  return const_cast<char**>(args);
}

TEST(BenchUtilTest, ScrubFlagDefaultsToDisabled) {
  const char* args[] = {"bench"};
  EXPECT_EQ(ParseScrubOPagesPerDay(1, Argv(args)), 0u);
  EXPECT_EQ(ParseScrubOPagesPerDay(1, Argv(args), /*default_value=*/7), 7u);
}

TEST(BenchUtilTest, ScrubFlagZeroIsValidNotAnError) {
  const char* separate[] = {"bench", "--scrub-opages-per-day", "0"};
  EXPECT_EQ(ParseScrubOPagesPerDay(3, Argv(separate), /*default_value=*/99),
            0u);
  const char* equals[] = {"bench", "--scrub-opages-per-day=0"};
  EXPECT_EQ(ParseScrubOPagesPerDay(2, Argv(equals), /*default_value=*/99),
            0u);
}

TEST(BenchUtilTest, ScrubFlagParsesBothSpellings) {
  const char* separate[] = {"bench", "--scrub-opages-per-day", "4096"};
  EXPECT_EQ(ParseScrubOPagesPerDay(3, Argv(separate)), 4096u);
  const char* equals[] = {"bench", "--scrub-opages-per-day=4096"};
  EXPECT_EQ(ParseScrubOPagesPerDay(2, Argv(equals)), 4096u);
}

TEST(BenchUtilTest, L2pCacheEntriesDefaultsToUnbounded) {
  const char* args[] = {"bench"};
  EXPECT_EQ(ParseL2pCacheEntries(1, Argv(args)), 0u);
  EXPECT_EQ(ParseL2pCacheEntries(1, Argv(args), /*default_value=*/64), 64u);
}

TEST(BenchUtilTest, L2pCacheEntriesZeroIsValidNotAnError) {
  const char* separate[] = {"bench", "--l2p-cache-entries", "0"};
  EXPECT_EQ(ParseL2pCacheEntries(3, Argv(separate), /*default_value=*/99),
            0u);
  const char* equals[] = {"bench", "--l2p-cache-entries=0"};
  EXPECT_EQ(ParseL2pCacheEntries(2, Argv(equals), /*default_value=*/99), 0u);
}

TEST(BenchUtilTest, L2pCacheEntriesParsesBothSpellings) {
  const char* separate[] = {"bench", "--l2p-cache-entries", "4096"};
  EXPECT_EQ(ParseL2pCacheEntries(3, Argv(separate)), 4096u);
  const char* equals[] = {"bench", "--l2p-cache-entries=4096"};
  EXPECT_EQ(ParseL2pCacheEntries(2, Argv(equals)), 4096u);
}

TEST(BenchUtilTest, L2pCacheEntriesRejectsGarbage) {
  const char* garbage[] = {"bench", "--l2p-cache-entries", "banana"};
  EXPECT_EXIT(ParseL2pCacheEntries(3, Argv(garbage)),
              ::testing::ExitedWithCode(2), "non-negative integer");
  const char* negative[] = {"bench", "--l2p-cache-entries", "-16"};
  EXPECT_EXIT(ParseL2pCacheEntries(3, Argv(negative)),
              ::testing::ExitedWithCode(2), "non-negative integer");
  const char* trailing[] = {"bench", "--l2p-cache-entries", "64oops"};
  EXPECT_EXIT(ParseL2pCacheEntries(3, Argv(trailing)),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(BenchUtilTest, L2pCacheEntriesRejectsMissingValue) {
  const char* dangling[] = {"bench", "--l2p-cache-entries"};
  EXPECT_EXIT(ParseL2pCacheEntries(2, Argv(dangling)),
              ::testing::ExitedWithCode(2), "requires a value");
  const char* empty[] = {"bench", "--l2p-cache-entries="};
  EXPECT_EXIT(ParseL2pCacheEntries(2, Argv(empty)),
              ::testing::ExitedWithCode(2), "requires a value");
}

TEST(BenchUtilTest, NegativeValueExitsWithUsageError) {
  const char* args[] = {"bench", "--scrub-opages-per-day", "-3"};
  EXPECT_EXIT(ParseScrubOPagesPerDay(3, Argv(args)),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(BenchUtilTest, PlusSignExitsWithUsageError) {
  const char* args[] = {"bench", "--scrub-opages-per-day", "+3"};
  EXPECT_EXIT(ParseScrubOPagesPerDay(3, Argv(args)),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(BenchUtilTest, GarbageExitsWithUsageError) {
  const char* args[] = {"bench", "--scrub-opages-per-day", "banana"};
  EXPECT_EXIT(ParseScrubOPagesPerDay(3, Argv(args)),
              ::testing::ExitedWithCode(2), "non-negative integer");
  const char* trailing[] = {"bench", "--scrub-opages-per-day", "64oops"};
  EXPECT_EXIT(ParseScrubOPagesPerDay(3, Argv(trailing)),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(BenchUtilTest, OverflowExitsWithUsageError) {
  // One past UINT64_MAX.
  const char* args[] = {"bench", "--scrub-opages-per-day",
                        "18446744073709551616"};
  EXPECT_EXIT(ParseScrubOPagesPerDay(3, Argv(args)),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(BenchUtilTest, MissingValueExitsWithUsageError) {
  const char* dangling[] = {"bench", "--scrub-opages-per-day"};
  EXPECT_EXIT(ParseScrubOPagesPerDay(2, Argv(dangling)),
              ::testing::ExitedWithCode(2), "requires a value");
  const char* empty[] = {"bench", "--scrub-opages-per-day="};
  EXPECT_EXIT(ParseScrubOPagesPerDay(2, Argv(empty)),
              ::testing::ExitedWithCode(2), "requires a value");
}

TEST(BenchUtilTest, ThreadsFlagStillRejectsOutOfRange) {
  const char* args[] = {"bench", "--threads", "4096"};
  EXPECT_EXIT(ParseThreads(3, Argv(args)), ::testing::ExitedWithCode(2),
              "0 \\(all cores\\) .. 1024");
}

TEST(BenchUtilTest, FractionFlagParsesAndDefaults) {
  const char* args[] = {"bench", "--read-fraction", "0.25"};
  EXPECT_DOUBLE_EQ(ParseFractionFlag(3, Argv(args), "--read-fraction", 0.5),
                   0.25);
  const char* none[] = {"bench"};
  EXPECT_DOUBLE_EQ(ParseFractionFlag(1, Argv(none), "--read-fraction", 0.5),
                   0.5);
  const char* zero[] = {"bench", "--read-fraction=0"};
  EXPECT_DOUBLE_EQ(ParseFractionFlag(2, Argv(zero), "--read-fraction", 0.5),
                   0.0);
  const char* one[] = {"bench", "--read-fraction=1"};
  EXPECT_DOUBLE_EQ(ParseFractionFlag(2, Argv(one), "--read-fraction", 0.5),
                   1.0);
}

TEST(BenchUtilTest, FractionFlagRejectsOutOfRangeAndGarbage) {
  const char* big[] = {"bench", "--read-fraction", "1.5"};
  EXPECT_EXIT(ParseFractionFlag(3, Argv(big), "--read-fraction", 0.5),
              ::testing::ExitedWithCode(2), "fraction in \\[0, 1\\]");
  const char* negative[] = {"bench", "--read-fraction", "-0.1"};
  EXPECT_EXIT(ParseFractionFlag(3, Argv(negative), "--read-fraction", 0.5),
              ::testing::ExitedWithCode(2), "non-negative number");
  const char* garbage[] = {"bench", "--read-fraction", "halfish"};
  EXPECT_EXIT(ParseFractionFlag(3, Argv(garbage), "--read-fraction", 0.5),
              ::testing::ExitedWithCode(2), "non-negative number");
  const char* dangling[] = {"bench", "--read-fraction"};
  EXPECT_EXIT(ParseFractionFlag(2, Argv(dangling), "--read-fraction", 0.5),
              ::testing::ExitedWithCode(2), "requires a value");
}

TEST(BenchUtilTest, ClusterFlagAcceptsBothBackends) {
  const char* none[] = {"bench"};
  EXPECT_EQ(ParseClusterFlag(1, Argv(none)), "difs");
  const char* difs[] = {"bench", "--cluster", "difs"};
  EXPECT_EQ(ParseClusterFlag(3, Argv(difs)), "difs");
  const char* ec[] = {"bench", "--cluster=ec"};
  EXPECT_EQ(ParseClusterFlag(2, Argv(ec)), "ec");
}

TEST(BenchUtilTest, ClusterFlagRejectsUnknownBackend) {
  const char* args[] = {"bench", "--cluster", "raid5"};
  EXPECT_EXIT(ParseClusterFlag(3, Argv(args)), ::testing::ExitedWithCode(2),
              "'difs' or 'ec'");
}

TEST(BenchUtilTest, ArrivalFlagAcceptsAllShapes) {
  const char* none[] = {"bench"};
  EXPECT_EQ(ParseArrivalFlag(1, Argv(none)), "mixed");
  for (const char* shape : {"steady", "diurnal", "bursty", "mixed"}) {
    const char* args[] = {"bench", "--arrival", shape};
    EXPECT_EQ(ParseArrivalFlag(3, Argv(args)), shape);
  }
}

TEST(BenchUtilTest, ArrivalFlagRejectsUnknownShape) {
  const char* args[] = {"bench", "--arrival", "chaotic"};
  EXPECT_EXIT(ParseArrivalFlag(3, Argv(args)), ::testing::ExitedWithCode(2),
              "'steady', 'diurnal', 'bursty', or 'mixed'");
}

TEST(BenchUtilTest, SchedFlagsDefaultToDisabled) {
  const char* args[] = {"bench"};
  const SchedFlagValues values = ParseSchedFlags(1, Argv(args));
  EXPECT_FALSE(values.enabled());
  EXPECT_EQ(values.queue_depth, 0u);
  EXPECT_EQ(values.arrival_interval_us, 8u);
  EXPECT_EQ(values.hedge_threshold_us, 0u);
  EXPECT_EQ(values.slo_p99_us, 0u);
  EXPECT_EQ(values.brownout_window_ops, 256u);
  EXPECT_EQ(values.retry_jitter_us, 0u);
}

TEST(BenchUtilTest, SchedFlagsParseAllKnobs) {
  const char* args[] = {"bench",        "--queue-depth=32",
                        "--arrival-interval-us=4", "--hedge-threshold-us=150",
                        "--slo-p99-us=400",        "--brownout-window-ops=64",
                        "--retry-jitter-us=2"};
  const SchedFlagValues values = ParseSchedFlags(7, Argv(args));
  EXPECT_TRUE(values.enabled());
  EXPECT_EQ(values.queue_depth, 32u);
  EXPECT_EQ(values.arrival_interval_us, 4u);
  EXPECT_EQ(values.hedge_threshold_us, 150u);
  EXPECT_EQ(values.slo_p99_us, 400u);
  EXPECT_EQ(values.brownout_window_ops, 64u);
  EXPECT_EQ(values.retry_jitter_us, 2u);
}

TEST(BenchUtilTest, SchedFlagsRejectGarbageDepth) {
  const char* garbage[] = {"bench", "--queue-depth", "lots"};
  EXPECT_EXIT(ParseSchedFlags(3, Argv(garbage)), ::testing::ExitedWithCode(2),
              "non-negative integer");
  const char* negative[] = {"bench", "--queue-depth=-1"};
  EXPECT_EXIT(ParseSchedFlags(2, Argv(negative)), ::testing::ExitedWithCode(2),
              "non-negative integer");
}

TEST(BenchUtilTest, SchedFlagsRejectZeroArrivalIntervalWhenEnabled) {
  const char* args[] = {"bench", "--queue-depth=8", "--arrival-interval-us=0"};
  EXPECT_EXIT(ParseSchedFlags(3, Argv(args)), ::testing::ExitedWithCode(2),
              "arrival-interval-us");
  // Disabled layer: the inconsistent interval is never consulted.
  const char* off[] = {"bench", "--arrival-interval-us=0"};
  EXPECT_FALSE(ParseSchedFlags(2, Argv(off)).enabled());
}

TEST(BenchUtilTest, SchedFlagsRejectZeroBrownoutWindowWithSlo) {
  const char* args[] = {"bench", "--queue-depth=8", "--slo-p99-us=400",
                        "--brownout-window-ops=0"};
  EXPECT_EXIT(ParseSchedFlags(4, Argv(args)), ::testing::ExitedWithCode(2),
              "brownout-window-ops");
}

TEST(BenchUtilTest, FleetQueueFlagsParseAndDefaultToDisabled) {
  const char* none[] = {"bench"};
  EXPECT_EQ(ParseServiceOPagesPerDay(1, Argv(none)), 0u);
  EXPECT_EQ(ParseQueueOPages(1, Argv(none)), 0u);
  const char* args[] = {"bench", "--service-opages-per-day=2000",
                        "--queue-opages", "4000"};
  EXPECT_EQ(ParseServiceOPagesPerDay(4, Argv(args)), 2000u);
  EXPECT_EQ(ParseQueueOPages(4, Argv(args)), 4000u);
}

TEST(BenchUtilTest, FleetQueueFlagsRejectGarbage) {
  const char* garbage[] = {"bench", "--service-opages-per-day", "many"};
  EXPECT_EXIT(ParseServiceOPagesPerDay(3, Argv(garbage)),
              ::testing::ExitedWithCode(2), "non-negative integer");
  const char* missing[] = {"bench", "--queue-opages"};
  EXPECT_EXIT(ParseQueueOPages(2, Argv(missing)),
              ::testing::ExitedWithCode(2), "requires a value");
}

}  // namespace
}  // namespace bench
}  // namespace salamander
