// Telemetry attachment suite for the fleet engine: attaching a registry,
// sampler, or trace recorder must not perturb the simulation (snapshots
// stay byte-identical to a detached run), and the collected telemetry must
// itself be bit-identical across thread counts — the acceptance bar for
// exporting Fig. 3a/3b numbers straight from the registry.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/fleet_sim.h"
#include "telemetry/metrics.h"
#include "telemetry/sampler.h"
#include "telemetry/trace.h"
#include "tests/telemetry/json_lite.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

FleetConfig TelemetryFleet(SsdKind kind, unsigned threads) {
  FleetConfig config;
  config.kind = kind;
  config.devices = 6;
  config.geometry = testing_util::TinyGeometry();
  config.ecc = FPageEccGeometry{};
  config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/20);
  config.msize_opages = 64;
  config.dwpd = 2.0;
  config.dwpd_sigma = 0.3;
  config.afr = 0.05;
  config.days = 120;
  config.sample_every_days = 5;
  config.seed = 24680;
  config.threads = threads;
  return config;
}

TEST(FleetTelemetryTest, AttachingTelemetryDoesNotPerturbSnapshots) {
  FleetSim detached(TelemetryFleet(SsdKind::kRegenS, 1));
  const std::vector<FleetSnapshot> baseline = detached.Run();

  MetricRegistry registry;
  TimeSeriesSampler sampler;
  TraceRecorder trace;
  FleetConfig config = TelemetryFleet(SsdKind::kRegenS, 1);
  config.metrics = &registry;
  config.sampler = &sampler;
  config.trace = &trace;
  FleetSim attached(config);
  EXPECT_EQ(attached.Run(), baseline);
  EXPECT_GT(registry.instrument_count(), 0u);
  EXPECT_GT(sampler.sample_count(), 0u);
  EXPECT_GT(trace.event_count(), 0u);
}

TEST(FleetTelemetryTest, MetricsBitIdenticalAcrossThreadCounts) {
  auto run = [](unsigned threads) {
    MetricRegistry registry;
    FleetConfig config = TelemetryFleet(SsdKind::kShrinkS, threads);
    config.metrics = &registry;
    FleetSim sim(config);
    sim.Run();
    return registry.ToJson();
  };
  const std::string serial = run(1);
  EXPECT_EQ(run(3), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(FleetTelemetryTest, SamplerAndTraceBitIdenticalAcrossThreadCounts) {
  auto run = [](unsigned threads) {
    TimeSeriesSampler sampler;
    TraceRecorder trace;
    FleetConfig config = TelemetryFleet(SsdKind::kBaseline, threads);
    config.sampler = &sampler;
    config.trace = &trace;
    FleetSim sim(config);
    sim.Run();
    return sampler.ToJson() + trace.ToJson();
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(FleetTelemetryTest, RegistryCountsMatchSnapshotTotals) {
  MetricRegistry registry;
  FleetConfig config = TelemetryFleet(SsdKind::kBaseline, 2);
  config.metrics = &registry;
  FleetSim sim(config);
  const std::vector<FleetSnapshot> snaps = sim.Run();
  ASSERT_FALSE(snaps.empty());
  const FleetSnapshot& last = snaps.back();

  const Gauge* functioning = registry.FindGauge("fleet.functioning_devices");
  ASSERT_NE(functioning, nullptr);
  EXPECT_EQ(static_cast<uint32_t>(functioning->value()),
            last.functioning_devices);

  const Gauge* capacity = registry.FindGauge("fleet.capacity_bytes");
  ASSERT_NE(capacity, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(capacity->value()), last.capacity_bytes);

  // Every simulated device-day passes through the sharded step counter.
  const Counter* stepped = registry.FindCounter("fleet.device_days_stepped");
  ASSERT_NE(stepped, nullptr);
  EXPECT_GT(stepped->value(), 0u);
  EXPECT_LE(stepped->value(),
            static_cast<uint64_t>(config.devices) * config.days);
}

TEST(FleetTelemetryTest, TraceJsonIsWellFormed) {
  TraceRecorder trace;
  FleetConfig config = TelemetryFleet(SsdKind::kRegenS, 1);
  config.trace = &trace;
  FleetSim sim(config);
  sim.Run();
  EXPECT_TRUE(json_lite::IsWellFormed(trace.ToJson()));
}

}  // namespace
}  // namespace salamander
