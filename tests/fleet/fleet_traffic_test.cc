// Fleet + traffic-engine suite: the multi-tenant engine as the fleet's
// write-demand source. Pins the two contracts the integration must keep:
// (a) disabled traffic is invisible — snapshots, digests, and metric dumps
// are unaffected by anything in the (ignored) tenant template; (b) enabled
// traffic stays bit-identical across thread counts and across the
// lockstep/event schedulers, like every other fleet feature.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/fleet_sim.h"
#include "telemetry/metrics.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

FleetConfig TrafficFleet(SsdKind kind, unsigned threads) {
  FleetConfig config;
  config.kind = kind;
  config.devices = 6;
  config.geometry = testing_util::TinyGeometry();
  config.ecc = FPageEccGeometry{};
  config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/20);
  config.msize_opages = 64;
  config.dwpd = 2.0;
  config.dwpd_sigma = 0.3;
  config.afr = 0.05;
  config.days = 120;
  config.sample_every_days = 5;
  config.seed = 24681357;
  config.threads = threads;
  config.traffic.tenants_per_device = 3;
  config.traffic.tenant.ops_per_day = 300.0;
  config.traffic.tenant.read_fraction = 0.5;
  config.traffic.tenant.churn_per_day = 0.01;
  return config;
}

struct RunResult {
  std::vector<FleetSnapshot> snapshots;
  std::vector<uint64_t> digests;
  std::string metrics_json;
};

RunResult RunFleet(const FleetConfig& config) {
  MetricRegistry registry;
  FleetConfig with_metrics = config;
  with_metrics.metrics = &registry;
  FleetSim sim(with_metrics);
  RunResult result;
  result.snapshots = sim.Run();
  result.digests = sim.DeviceDigests();
  result.metrics_json = registry.ToJson();
  return result;
}

TEST(FleetTrafficTest, DisabledTrafficIgnoresTenantTemplate) {
  // With tenants_per_device == 0 the engine forks nothing, so even a wild
  // tenant template must leave every byte of output untouched.
  FleetConfig off = TrafficFleet(SsdKind::kShrinkS, 1);
  off.traffic.tenants_per_device = 0;
  FleetConfig off_other_template = off;
  off_other_template.traffic.tenant.ops_per_day = 99999.0;
  off_other_template.traffic.tenant.zipf_theta = 0.5;
  off_other_template.traffic.device_zipfian_fraction = 0.1;
  const RunResult a = RunFleet(off);
  const RunResult b = RunFleet(off_other_template);
  EXPECT_EQ(a.snapshots, b.snapshots);
  EXPECT_EQ(a.digests, b.digests);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.metrics_json.find("fleet.traffic"), std::string::npos);
}

TEST(FleetTrafficTest, EnabledTrafficChangesDemand) {
  FleetConfig on = TrafficFleet(SsdKind::kShrinkS, 1);
  FleetConfig off = on;
  off.traffic.tenants_per_device = 0;
  const RunResult with_traffic = RunFleet(on);
  const RunResult without = RunFleet(off);
  ASSERT_FALSE(with_traffic.snapshots.empty());
  EXPECT_NE(with_traffic.digests, without.digests);
  EXPECT_NE(with_traffic.metrics_json.find("fleet.traffic.writes"),
            std::string::npos);
}

TEST(FleetTrafficTest, ParallelMatchesSerialWithTraffic) {
  for (SsdKind kind : {SsdKind::kBaseline, SsdKind::kRegenS}) {
    const RunResult serial = RunFleet(TrafficFleet(kind, 1));
    const RunResult parallel = RunFleet(TrafficFleet(kind, 4));
    ASSERT_FALSE(serial.snapshots.empty());
    EXPECT_EQ(serial.snapshots, parallel.snapshots);
    EXPECT_EQ(serial.digests, parallel.digests);
    EXPECT_EQ(serial.metrics_json, parallel.metrics_json);
  }
}

TEST(FleetTrafficTest, EventEngineMatchesLockstepWithTraffic) {
  FleetConfig lockstep = TrafficFleet(SsdKind::kShrinkS, 1);
  lockstep.scheduler = FleetSchedulerMode::kLockstep;
  FleetConfig event = TrafficFleet(SsdKind::kShrinkS, 4);
  event.scheduler = FleetSchedulerMode::kEventDriven;
  const RunResult reference = RunFleet(lockstep);
  const RunResult tested = RunFleet(event);
  ASSERT_FALSE(reference.snapshots.empty());
  EXPECT_EQ(reference.snapshots, tested.snapshots);
  EXPECT_EQ(reference.digests, tested.digests);
}

TEST(FleetTrafficTest, EventEngineMatchesLockstepWithTrafficAndPowerLoss) {
  // Traffic demand + dark-day jumps together: the engine's catch-up path
  // must see the same alive-day sequence in both schedulers.
  FleetConfig lockstep = TrafficFleet(SsdKind::kRegenS, 1);
  lockstep.scheduler = FleetSchedulerMode::kLockstep;
  lockstep.power_loss_per_device_day = 0.01;
  lockstep.power_loss_restart_days = 3;
  FleetConfig event = lockstep;
  event.threads = 4;
  event.scheduler = FleetSchedulerMode::kEventDriven;
  const RunResult reference = RunFleet(lockstep);
  const RunResult tested = RunFleet(event);
  ASSERT_FALSE(reference.snapshots.empty());
  EXPECT_EQ(reference.snapshots, tested.snapshots);
  EXPECT_EQ(reference.digests, tested.digests);
}

TEST(FleetTrafficTest, ThreadCountInvarianceWithTraffic) {
  const RunResult reference = RunFleet(TrafficFleet(SsdKind::kRegenS, 1));
  for (unsigned threads : {2u, 3u, 8u}) {
    EXPECT_EQ(RunFleet(TrafficFleet(SsdKind::kRegenS, threads)).digests,
              reference.digests)
        << "threads=" << threads;
  }
}

TEST(FleetTrafficTest, TrafficCountersAggregateAcrossDevices) {
  MetricRegistry registry;
  FleetConfig config = TrafficFleet(SsdKind::kShrinkS, 1);
  config.days = 30;
  FleetSim sim(config);
  (void)sim.Run();
  sim.CollectMetrics(registry);
  const uint64_t ops = registry.GetCounter("fleet.traffic.ops").value();
  const uint64_t reads = registry.GetCounter("fleet.traffic.reads").value();
  const uint64_t writes = registry.GetCounter("fleet.traffic.writes").value();
  EXPECT_GT(ops, 0u);
  EXPECT_EQ(ops, reads + writes);
  // 6 devices x 3 tenants x 300 ops/day x 30 days, halved into writes —
  // the aggregate must be in that ballpark (devices may die early).
  EXPECT_LT(writes, 6u * 3u * 300u * 30u);
}

}  // namespace
}  // namespace salamander
