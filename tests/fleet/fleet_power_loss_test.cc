// Transient power loss in the fleet engine: the per-device outage lottery
// keeps the parallel run bit-identical to the serial one, the ledger
// (losses == restarts + failures + still-dark) always balances, and a
// zero probability performs zero draws — output stays byte-identical to a
// build without the crash-restart path.
//
// Test names carry the FleetPowerLoss prefix so the TSan CI job can select
// them alongside the other fleet determinism suites.
#include <gtest/gtest.h>

#include <vector>

#include "fleet/fleet_sim.h"
#include "telemetry/metrics.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

FleetConfig TestFleet(unsigned threads, double power_loss_per_device_day,
                      uint32_t restart_days = 2) {
  FleetConfig config;
  config.kind = SsdKind::kRegenS;
  config.devices = 6;
  config.geometry = testing_util::TinyGeometry();
  config.ecc = FPageEccGeometry{};
  config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/20);
  config.msize_opages = 64;
  config.dwpd = 2.0;
  config.dwpd_sigma = 0.3;
  config.afr = 0.05;
  config.days = 120;
  config.sample_every_days = 5;
  config.seed = 424242;
  config.threads = threads;
  config.power_loss_per_device_day = power_loss_per_device_day;
  config.power_loss_restart_days = restart_days;
  return config;
}

TEST(FleetPowerLossTest, ParallelMatchesSerial) {
  FleetSim serial(TestFleet(1, /*power_loss_per_device_day=*/0.05));
  const std::vector<FleetSnapshot> serial_snaps = serial.Run();
  FleetSim parallel(TestFleet(4, 0.05));
  const std::vector<FleetSnapshot> parallel_snaps = parallel.Run();

  ASSERT_FALSE(serial_snaps.empty());
  EXPECT_EQ(serial_snaps, parallel_snaps);
  EXPECT_EQ(serial.power_losses_total(), parallel.power_losses_total());
  EXPECT_EQ(serial.restarts_total(), parallel.restarts_total());
  EXPECT_EQ(serial.restart_failures_total(),
            parallel.restart_failures_total());
  // The outage path actually ran: otherwise this test proves nothing.
  EXPECT_GT(serial.power_losses_total(), 0u);
  EXPECT_GT(serial.restarts_total(), 0u);
}

TEST(FleetPowerLossTest, OutageLedgerBalances) {
  FleetSim sim(TestFleet(3, /*power_loss_per_device_day=*/0.08));
  (void)sim.Run();
  ASSERT_GT(sim.power_losses_total(), 0u);
  // Every power loss resolves exactly one way: a successful restart, a
  // replay failure (device gone), or the device is still waiting out the
  // outage when the simulation ends.
  EXPECT_EQ(sim.power_losses_total(),
            sim.restarts_total() + sim.restart_failures_total() +
                sim.dark_devices());
}

TEST(FleetPowerLossTest, RepeatedRunsAreDeterministic) {
  FleetSim first(TestFleet(4, /*power_loss_per_device_day=*/0.05));
  const std::vector<FleetSnapshot> first_snaps = first.Run();
  FleetSim second(TestFleet(4, 0.05));
  const std::vector<FleetSnapshot> second_snaps = second.Run();
  EXPECT_EQ(first_snaps, second_snaps);
  EXPECT_EQ(first.power_losses_total(), second.power_losses_total());
}

// power_loss_per_device_day = 0 must perform zero Rng draws: the snapshots
// AND the metrics registry stay byte-identical whatever the restart knob
// says, which is what keeps pre-existing seeds reproducible after the
// crash-restart path landed.
TEST(FleetPowerLossTest, ZeroProbabilityIsInert) {
  MetricRegistry metrics_a;
  FleetConfig config_a = TestFleet(4, /*power_loss_per_device_day=*/0.0,
                                   /*restart_days=*/1);
  config_a.metrics = &metrics_a;
  FleetSim sim_a(config_a);
  const std::vector<FleetSnapshot> snaps_a = sim_a.Run();

  MetricRegistry metrics_b;
  FleetConfig config_b = TestFleet(4, 0.0, /*restart_days=*/30);
  config_b.metrics = &metrics_b;
  FleetSim sim_b(config_b);
  const std::vector<FleetSnapshot> snaps_b = sim_b.Run();

  EXPECT_EQ(snaps_a, snaps_b);
  EXPECT_EQ(metrics_a.ToJson(), metrics_b.ToJson());
  EXPECT_EQ(sim_a.power_losses_total(), 0u);
  EXPECT_EQ(sim_a.dark_devices(), 0u);
}

}  // namespace
}  // namespace salamander
