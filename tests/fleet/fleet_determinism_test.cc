// Determinism suite for the parallel fleet engine: for a fixed seed the
// snapshot vector must be byte-identical (a) across repeated runs and
// (b) across thread counts. This is the property that lets Fig. 3a/3b run
// on all cores without changing a single reported value.
#include <gtest/gtest.h>

#include <vector>

#include "common/thread_pool.h"
#include "fleet/fleet_sim.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

FleetConfig TestFleet(SsdKind kind, unsigned threads) {
  FleetConfig config;
  config.kind = kind;
  config.devices = 6;
  config.geometry = testing_util::TinyGeometry();
  config.ecc = FPageEccGeometry{};
  config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/20);
  config.msize_opages = 64;
  config.dwpd = 2.0;
  config.dwpd_sigma = 0.3;  // exercise the per-device imbalance draw
  config.afr = 0.05;        // exercise the per-device AFR stream
  config.days = 250;
  config.sample_every_days = 5;
  config.seed = 987654321;
  config.threads = threads;
  return config;
}

std::vector<FleetSnapshot> RunOnce(SsdKind kind, unsigned threads) {
  FleetSim sim(TestFleet(kind, threads));
  return sim.Run();
}

TEST(FleetDeterminismTest, SameSeedSameSnapshotsSerial) {
  const auto first = RunOnce(SsdKind::kShrinkS, 1);
  const auto second = RunOnce(SsdKind::kShrinkS, 1);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(FleetDeterminismTest, ParallelMatchesSerialBaseline) {
  const auto serial = RunOnce(SsdKind::kBaseline, 1);
  const auto parallel = RunOnce(SsdKind::kBaseline, 4);
  EXPECT_EQ(serial, parallel);
}

TEST(FleetDeterminismTest, ParallelMatchesSerialRegenS) {
  const auto serial = RunOnce(SsdKind::kRegenS, 1);
  const auto parallel = RunOnce(SsdKind::kRegenS, 4);
  EXPECT_EQ(serial, parallel);
}

TEST(FleetDeterminismTest, ParallelMatchesSerialAtHardwareWidth) {
  const auto serial = RunOnce(SsdKind::kShrinkS, 1);
  const auto parallel =
      RunOnce(SsdKind::kShrinkS, ThreadPool::HardwareThreads());
  EXPECT_EQ(serial, parallel);
}

TEST(FleetDeterminismTest, ThreadCountInvariance) {
  const auto reference = RunOnce(SsdKind::kShrinkS, 1);
  for (unsigned threads : {2u, 3u, 8u}) {
    EXPECT_EQ(RunOnce(SsdKind::kShrinkS, threads), reference)
        << "threads=" << threads;
  }
}

TEST(FleetDeterminismTest, DifferentSeedsDiverge) {
  FleetConfig a = TestFleet(SsdKind::kShrinkS, 1);
  FleetConfig b = a;
  b.seed = a.seed + 1;
  FleetSim sim_a(a);
  FleetSim sim_b(b);
  EXPECT_NE(sim_a.Run(), sim_b.Run());
}

TEST(FleetDeterminismTest, ThresholdQueriesAgreeAcrossThreadCounts) {
  FleetSim serial(TestFleet(SsdKind::kBaseline, 1));
  FleetSim parallel(TestFleet(SsdKind::kBaseline, 4));
  serial.Run();
  parallel.Run();
  for (double fraction : {0.9, 0.5, 0.1}) {
    EXPECT_EQ(serial.DayDevicesBelow(fraction),
              parallel.DayDevicesBelow(fraction));
    EXPECT_EQ(serial.DayCapacityBelow(fraction),
              parallel.DayCapacityBelow(fraction));
  }
}

}  // namespace
}  // namespace salamander
