// Fleet-level determinism with the bounded L2P cache enabled: map-page
// write-back adds flash programs and journal records on every device, and
// the event scheduler derates its horizons by the map-write share — none of
// which may perturb the parallel == serial == lockstep identity. Suites are
// named FleetL2p* so CI's TSan job picks them up by filter.
#include <gtest/gtest.h>

#include <vector>

#include "fleet/fleet_sim.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

// TinyGeometry devices expose ~hundreds of logical oPages; with the auto map
// page size (opage_bytes / 8 = 512 entries) a 512-entry cache holds exactly
// one map page in DRAM, forcing steady eviction traffic.
FleetConfig L2pFleet(SsdKind kind, unsigned threads,
                     FleetSchedulerMode scheduler,
                     uint64_t cache_entries = 512) {
  FleetConfig config;
  config.kind = kind;
  config.devices = 6;
  config.geometry = testing_util::TinyGeometry();
  config.ecc = FPageEccGeometry{};
  config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/20);
  config.msize_opages = 64;
  config.dwpd = 2.0;
  config.dwpd_sigma = 0.3;
  config.afr = 0.05;
  config.days = 200;
  config.sample_every_days = 5;
  config.seed = 246813579;
  config.threads = threads;
  config.scheduler = scheduler;
  config.l2p_cache_entries = cache_entries;
  return config;
}

std::vector<FleetSnapshot> RunOnce(SsdKind kind, unsigned threads,
                                   FleetSchedulerMode scheduler,
                                   uint64_t cache_entries = 512) {
  FleetSim sim(L2pFleet(kind, threads, scheduler, cache_entries));
  return sim.Run();
}

TEST(FleetL2pDeterminismTest, ParallelMatchesSerial) {
  const auto serial =
      RunOnce(SsdKind::kShrinkS, 1, FleetSchedulerMode::kEventDriven);
  const auto parallel =
      RunOnce(SsdKind::kShrinkS, 4, FleetSchedulerMode::kEventDriven);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(FleetL2pDeterminismTest, EventDrivenMatchesLockstep) {
  const auto event =
      RunOnce(SsdKind::kRegenS, 1, FleetSchedulerMode::kEventDriven);
  const auto lockstep =
      RunOnce(SsdKind::kRegenS, 1, FleetSchedulerMode::kLockstep);
  EXPECT_EQ(event, lockstep);
}

TEST(FleetL2pDeterminismTest, LockstepParallelMatchesEventSerial) {
  const auto event =
      RunOnce(SsdKind::kBaseline, 1, FleetSchedulerMode::kEventDriven);
  const auto lockstep =
      RunOnce(SsdKind::kBaseline, 4, FleetSchedulerMode::kLockstep);
  EXPECT_EQ(event, lockstep);
}

TEST(FleetL2pDeterminismTest, ThreadCountInvariance) {
  const auto reference =
      RunOnce(SsdKind::kShrinkS, 1, FleetSchedulerMode::kEventDriven);
  for (unsigned threads : {2u, 3u, 8u}) {
    EXPECT_EQ(RunOnce(SsdKind::kShrinkS, threads,
                      FleetSchedulerMode::kEventDriven),
              reference)
        << "threads=" << threads;
  }
}

TEST(FleetL2pDeterminismTest, SurvivesPowerLossInjection) {
  FleetConfig serial_config =
      L2pFleet(SsdKind::kShrinkS, 1, FleetSchedulerMode::kEventDriven);
  serial_config.power_loss_per_device_day = 0.02;
  FleetConfig parallel_config = serial_config;
  parallel_config.threads = 4;
  FleetSim serial(serial_config);
  FleetSim parallel(parallel_config);
  const auto serial_snapshots = serial.Run();
  ASSERT_FALSE(serial_snapshots.empty());
  EXPECT_EQ(serial_snapshots, parallel.Run());
}

TEST(FleetL2pDeterminismTest, DisabledCacheMatchesLegacyConfig) {
  // l2p_cache_entries = 0 must be indistinguishable from a config that
  // never mentions the knob — same snapshots, same RNG consumption.
  FleetConfig untouched =
      L2pFleet(SsdKind::kShrinkS, 1, FleetSchedulerMode::kEventDriven,
               /*cache_entries=*/0);
  FleetSim a(untouched);
  FleetConfig explicit_zero = untouched;
  explicit_zero.l2p_cache_entries = 0;
  FleetSim b(explicit_zero);
  EXPECT_EQ(a.Run(), b.Run());
}

TEST(FleetL2pDeterminismTest, CacheSizeChangesOutcomes) {
  // Sanity that the knob is actually plumbed: bounded-cache fleets wear
  // differently (map-write amplification), so snapshots must diverge from
  // the unbounded run.
  const auto unbounded = RunOnce(SsdKind::kShrinkS, 1,
                                 FleetSchedulerMode::kEventDriven,
                                 /*cache_entries=*/0);
  const auto bounded = RunOnce(SsdKind::kShrinkS, 1,
                               FleetSchedulerMode::kEventDriven,
                               /*cache_entries=*/512);
  EXPECT_NE(unbounded, bounded);
}

}  // namespace
}  // namespace salamander
