// Correlated failure domains on the fleet (ISSUE 10): rack-scoped power
// events, batch-cohort endurance variance, cohort unavailability waves, and
// proactive health-driven drain. The suite pins the determinism contract
// (disabled knobs change no output byte; enabled knobs are bit-identical
// across threads and engines), the exact crash ledger (every scheduled rack
// event crashes every live rack member exactly once), and the drain
// accounting (drained devices retire ahead of wear failure and are counted
// apart from it).
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "fleet/event_scheduler.h"
#include "fleet/fleet_sim.h"
#include "telemetry/metrics.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

FleetConfig DomainFleet(SsdKind kind) {
  FleetConfig config;
  config.kind = kind;
  config.devices = 8;
  config.geometry = testing_util::TinyGeometry();
  config.ecc = FPageEccGeometry{};
  // Endurance far beyond the horizon: domain tests that need an exact crash
  // ledger keep every device alive; wear-sensitive tests override this.
  config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/100000);
  config.msize_opages = 64;
  config.dwpd = 1.0;
  config.afr = 0.0;  // isolate the domain machinery from random failures
  config.days = 120;
  config.sample_every_days = 5;
  config.seed = 20260807;
  config.threads = 1;
  return config;
}

TEST(FleetDomainTest, DisabledDomainKeepsEveryOutputByteIdentical) {
  FleetConfig plain = DomainFleet(SsdKind::kShrinkS);
  FleetConfig shaped = plain;
  // Topology shape alone must not enable anything: the rack axis needs a
  // nonzero event rate and the cohort axis a nonzero sigma/wave rate.
  shaped.domain.devices_per_rack = 4;
  shaped.domain.batch_cohorts = 2;
  ASSERT_FALSE(shaped.domain.enabled());
  MetricRegistry plain_metrics;
  MetricRegistry shaped_metrics;
  plain.metrics = &plain_metrics;
  shaped.metrics = &shaped_metrics;
  FleetSim a(plain);
  FleetSim b(shaped);
  EXPECT_EQ(a.Run(), b.Run());
  EXPECT_EQ(a.DeviceDigests(), b.DeviceDigests());
  EXPECT_TRUE(b.domain_schedule().rack_power_days.empty());
  EXPECT_TRUE(b.domain_schedule().cohort_wear_factor.empty());
  EXPECT_EQ(b.rack_crashes_total(), 0u);
  EXPECT_EQ(b.drained_devices(), 0u);
  // Disabled features export no instruments at all.
  EXPECT_EQ(shaped_metrics.FindCounter("fleet.domain.rack_crashes"), nullptr);
  EXPECT_EQ(shaped_metrics.FindCounter("fleet.drain.devices_drained"),
            nullptr);
}

TEST(FleetDomainTest, RackEventCrashesEveryRackMemberExactlyOnce) {
  FleetConfig config = DomainFleet(SsdKind::kBaseline);
  // Gentle wear + afr 0: every device survives the horizon, so the crash
  // ledger must balance exactly against the precomputed calendar.
  config.domain.devices_per_rack = 4;
  config.domain.rack_power_loss_per_day = 0.05;
  config.domain.rack_restart_days = 1;
  MetricRegistry metrics;
  config.metrics = &metrics;
  FleetSim sim(config);
  const auto snapshots = sim.Run();
  ASSERT_FALSE(snapshots.empty());
  EXPECT_EQ(snapshots.back().functioning_devices, config.devices);
  const auto& schedule = sim.domain_schedule();
  ASSERT_EQ(schedule.rack_power_days.size(), 2u);
  uint64_t scheduled = 0;
  for (const auto& days : schedule.rack_power_days) {
    EXPECT_TRUE(std::is_sorted(days.begin(), days.end()));
    scheduled += days.size();
  }
  ASSERT_GT(scheduled, 0u) << "rate too low; no rack event fired";
  // Every scheduled rack-day crashed all devices_per_rack members once.
  EXPECT_EQ(sim.rack_crashes_total(),
            scheduled * config.domain.devices_per_rack);
  // Rack crashes ride the power-loss ledger: dark, then journal-replay
  // restart. With nothing else failing, the books balance exactly.
  EXPECT_EQ(sim.power_losses_total(), sim.rack_crashes_total());
  EXPECT_EQ(sim.restarts_total() + sim.restart_failures_total() +
                sim.dark_devices(),
            sim.rack_crashes_total());
  const Counter* exported = metrics.FindCounter("fleet.domain.rack_crashes");
  ASSERT_NE(exported, nullptr);
  EXPECT_EQ(exported->value(), sim.rack_crashes_total());
}

TEST(FleetDomainTest, CohortWearFactorsDeterministicAndShared) {
  FleetConfig config = DomainFleet(SsdKind::kShrinkS);
  config.domain.batch_cohorts = 3;
  config.domain.batch_endurance_sigma = 0.5;
  FleetSim a(config);
  FleetSim b(config);
  // Same seed → identical latent factors, forked per cohort in id order.
  ASSERT_EQ(a.domain_schedule().cohort_wear_factor.size(), 3u);
  EXPECT_EQ(a.domain_schedule().cohort_wear_factor,
            b.domain_schedule().cohort_wear_factor);
  for (double factor : a.domain_schedule().cohort_wear_factor) {
    EXPECT_GT(factor, 0.0);
  }
  FleetConfig reseeded = config;
  reseeded.seed = config.seed + 1;
  FleetSim c(reseeded);
  EXPECT_NE(a.domain_schedule().cohort_wear_factor,
            c.domain_schedule().cohort_wear_factor);
  // And the factors change simulated history: some cohort ages faster.
  EXPECT_EQ(a.Run(), b.Run());
  EXPECT_EQ(a.DeviceDigests(), b.DeviceDigests());
}

TEST(FleetDomainTest, CohortWavePausesEveryCohortMember) {
  FleetConfig config = DomainFleet(SsdKind::kBaseline);
  config.domain.batch_cohorts = 2;
  config.domain.cohort_unavailable_per_day = 0.04;
  config.domain.cohort_unavailable_days = 2;
  FleetSim sim(config);
  const auto snapshots = sim.Run();
  ASSERT_FALSE(snapshots.empty());
  ASSERT_EQ(snapshots.back().functioning_devices, config.devices);
  const auto& schedule = sim.domain_schedule();
  ASSERT_EQ(schedule.cohort_wave_days.size(), 2u);
  uint64_t scheduled = 0;
  for (const auto& days : schedule.cohort_wave_days) {
    scheduled += days.size();
  }
  ASSERT_GT(scheduled, 0u) << "rate too low; no wave fired";
  // Each wave pauses all 4 cohort members for cohort_unavailable_days; waves
  // can overlap (a re-draw inside a pause extends rather than stacks), so
  // the exact total is bounded, not equal.
  EXPECT_GT(sim.cohort_pause_days_total(), 0u);
  EXPECT_LE(sim.cohort_pause_days_total(),
            scheduled * 4 * config.domain.cohort_unavailable_days);
  // Paused days cost write demand: the waved fleet writes less than an
  // identical fleet without waves.
  FleetConfig plain = DomainFleet(SsdKind::kBaseline);
  FleetSim base(plain);
  const auto base_snapshots = base.Run();
  EXPECT_LT(snapshots.back().cumulative_host_writes,
            base_snapshots.back().cumulative_host_writes);
}

TEST(FleetDomainTest, DrainRetiresDevicesAheadOfWearFailure) {
  FleetConfig config = DomainFleet(SsdKind::kShrinkS);
  // Aggressive wear so devices approach death inside the horizon; the drain
  // threshold must catch them first.
  config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/20);
  config.dwpd = 2.0;
  config.days = 400;
  config.domain.drain_health_threshold = 0.35;
  MetricRegistry metrics;
  config.metrics = &metrics;
  FleetSim sim(config);
  sim.Run();
  ASSERT_GT(sim.drained_devices(), 0u) << "threshold never crossed";
  EXPECT_GT(sim.drain_migrated_bytes_total(), 0u);
  const Counter* drained = metrics.FindCounter("fleet.drain.devices_drained");
  const Counter* migrated = metrics.FindCounter("fleet.drain.migrated_bytes");
  ASSERT_NE(drained, nullptr);
  ASSERT_NE(migrated, nullptr);
  EXPECT_EQ(drained->value(), sim.drained_devices());
  EXPECT_EQ(migrated->value(), sim.drain_migrated_bytes_total());
  // Proactive retirements are accounted apart from wear deaths: the two
  // ledgers never double-count a device.
  const Counter* wear_failures = metrics.FindCounter("fleet.wear_failures");
  ASSERT_NE(wear_failures, nullptr);
  EXPECT_LE(wear_failures->value() + sim.drained_devices(),
            static_cast<uint64_t>(config.devices));
}

TEST(FleetDomainTest, BitIdenticalAcrossThreadsAndEnginesAllKnobsOn) {
  const auto run = [](unsigned threads, FleetSchedulerMode mode) {
    FleetConfig config = DomainFleet(SsdKind::kRegenS);
    config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/40);
    config.days = 200;
    config.domain.devices_per_rack = 4;
    config.domain.rack_power_loss_per_day = 0.02;
    config.domain.rack_restart_days = 2;
    config.domain.batch_cohorts = 3;
    config.domain.batch_endurance_sigma = 0.6;
    config.domain.cohort_unavailable_per_day = 0.02;
    config.domain.cohort_unavailable_days = 1;
    config.domain.drain_health_threshold = 0.3;
    config.scrub_opages_per_day = 64;
    config.threads = threads;
    config.scheduler = mode;
    FleetSim sim(config);
    const auto snapshots = sim.Run();
    return std::make_pair(snapshots, sim.DeviceDigests());
  };
  const auto reference = run(1, FleetSchedulerMode::kLockstep);
  ASSERT_FALSE(reference.first.empty());
  EXPECT_EQ(run(4, FleetSchedulerMode::kLockstep), reference);
  EXPECT_EQ(run(1, FleetSchedulerMode::kEventDriven), reference);
  EXPECT_EQ(run(4, FleetSchedulerMode::kEventDriven), reference);
}

// Satellite: FleetEventQueue restart ordering when a whole domain restarts
// on the same day. The queue's (day, device, kind) order is a total order,
// so the drain sequence must be invariant under every insertion permutation
// — this is what makes same-day domain restarts thread-invariant.
TEST(FleetDomainEventOrderTest, WholeDomainSameDayRestartPermutationPin) {
  // A rack of 4 devices all restarting on day 10, interleaved with one
  // device's step on the same day and unrelated events on other days.
  const std::vector<FleetEvent> canonical = {
      {9, 7, FleetEventKind::kStep},
      {10, 0, FleetEventKind::kStep},
      {10, 0, FleetEventKind::kRestart},
      {10, 1, FleetEventKind::kRestart},
      {10, 2, FleetEventKind::kRestart},
      {10, 3, FleetEventKind::kRestart},
      {11, 1, FleetEventKind::kStep},
  };
  std::vector<FleetEvent> events = canonical;
  std::sort(events.begin(), events.end(),
            [](const FleetEvent& a, const FleetEvent& b) {
              return EventBefore(a, b);
            });
  ASSERT_EQ(events, canonical) << "fixture must be in canonical order";
  // 7! = 5040 insertion orders, every one must drain identically.
  std::vector<size_t> order(events.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  do {
    FleetEventQueue queue;
    for (size_t i : order) {
      queue.Post(events[i]);
    }
    EXPECT_EQ(queue.PopThrough(/*through=*/11), canonical);
  } while (std::next_permutation(order.begin(), order.end()));
}

// Partial drains must respect the same order: popping through day 10 yields
// exactly the day<=10 prefix, and the same-day restart block comes out in
// device order with each device's step before its restart.
TEST(FleetDomainEventOrderTest, PopThroughSplitsAtDayBoundaryCanonically) {
  FleetEventQueue queue;
  queue.Post({11, 1, FleetEventKind::kStep});
  queue.Post({10, 3, FleetEventKind::kRestart});
  queue.Post({10, 0, FleetEventKind::kRestart});
  queue.Post({10, 0, FleetEventKind::kStep});
  const std::vector<FleetEvent> due = queue.PopThrough(10);
  const std::vector<FleetEvent> expected = {
      {10, 0, FleetEventKind::kStep},
      {10, 0, FleetEventKind::kRestart},
      {10, 3, FleetEventKind::kRestart},
  };
  EXPECT_EQ(due, expected);
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.NextDay(), 11u);
}

}  // namespace
}  // namespace salamander
