// Fleet-level admission control (FleetQueueConfig): a bounded per-device
// backlog plus a daily service cap in front of each device's write demand.
// The suite pins four properties: a disabled queue changes no output byte, an
// ample queue changes no snapshot, a throttled queue sheds/defers demand with
// an exactly-conserved ledger (and slows wear), and the whole model is
// bit-identical across thread counts and scheduler engines.
#include <gtest/gtest.h>

#include <vector>

#include "fleet/fleet_sim.h"
#include "telemetry/metrics.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

FleetConfig QueueFleet(SsdKind kind) {
  FleetConfig config;
  config.kind = kind;
  config.devices = 6;
  config.geometry = testing_util::TinyGeometry();
  config.ecc = FPageEccGeometry{};
  config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/20);
  config.msize_opages = 64;
  config.dwpd = 2.0;
  config.dwpd_sigma = 0.3;
  config.afr = 0.0;  // isolate the queue's effect on lifetime
  config.days = 200;
  config.sample_every_days = 5;
  config.seed = 20260807;
  config.threads = 1;
  return config;
}

// Roughly one device capacity in oPages for TinyGeometry — used to size
// service caps relative to the ~2 DWPD demand.
uint64_t DeviceOPages(const FleetConfig& config) {
  return config.geometry.total_opages();
}

TEST(FleetQueueTest, DisabledQueueKeepsEveryOutputByteIdentical) {
  FleetConfig plain = QueueFleet(SsdKind::kShrinkS);
  FleetConfig noisy = plain;
  // A bound alone does not enable the queue — only a finite service cap
  // does. This must be indistinguishable from the default config.
  noisy.queue.queue_opages = 128;
  MetricRegistry plain_metrics;
  MetricRegistry noisy_metrics;
  plain.metrics = &plain_metrics;
  noisy.metrics = &noisy_metrics;
  FleetSim a(plain);
  FleetSim b(noisy);
  EXPECT_EQ(a.Run(), b.Run());
  EXPECT_EQ(a.DeviceDigests(), b.DeviceDigests());
  EXPECT_EQ(b.queue_admitted_total(), 0u);
  EXPECT_EQ(b.queue_served_total(), 0u);
  EXPECT_EQ(b.queue_shed_total(), 0u);
  EXPECT_EQ(noisy_metrics.FindCounter("fleet.sched.admitted_opages"), nullptr);
  EXPECT_EQ(noisy_metrics.FindGauge("fleet.sched.backlog_opages"), nullptr);
}

TEST(FleetQueueTest, AmpleServiceCapMatchesUnthrottledSnapshots) {
  FleetConfig plain = QueueFleet(SsdKind::kShrinkS);
  FleetConfig ample = plain;
  // Far above any day's demand: everything admitted is served same-day, so
  // flash sees the identical write stream.
  ample.queue.service_opages_per_day = DeviceOPages(plain) * 64;
  FleetSim a(plain);
  FleetSim b(ample);
  EXPECT_EQ(a.Run(), b.Run());
  EXPECT_GT(b.queue_admitted_total(), 0u);
  EXPECT_EQ(b.queue_admitted_total(), b.queue_served_total());
  EXPECT_EQ(b.queue_shed_total(), 0u);
  EXPECT_EQ(b.queue_backlog_total(), 0u);
}

TEST(FleetQueueTest, ThrottledServiceShedsAndConservesTheLedger) {
  FleetConfig config = QueueFleet(SsdKind::kShrinkS);
  // Cap service at ~1/4 of the ~2 DWPD demand and keep the backlog tight so
  // overflow must shed.
  config.queue.service_opages_per_day = DeviceOPages(config) / 2;
  config.queue.queue_opages = DeviceOPages(config);
  MetricRegistry metrics;
  config.metrics = &metrics;
  FleetSim sim(config);
  sim.Run();
  EXPECT_GT(sim.queue_admitted_total(), 0u);
  EXPECT_GT(sim.queue_shed_total(), 0u);
  // Every admitted oPage is either served or still parked — nothing leaks.
  EXPECT_EQ(sim.queue_admitted_total(),
            sim.queue_served_total() + sim.queue_backlog_total());
  // The exported ledger is the accessor ledger.
  const Counter* admitted = metrics.FindCounter("fleet.sched.admitted_opages");
  const Counter* served = metrics.FindCounter("fleet.sched.served_opages");
  const Counter* shed = metrics.FindCounter("fleet.sched.shed_opages");
  ASSERT_NE(admitted, nullptr);
  ASSERT_NE(served, nullptr);
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(admitted->value(), sim.queue_admitted_total());
  EXPECT_EQ(served->value(), sim.queue_served_total());
  EXPECT_EQ(shed->value(), sim.queue_shed_total());
}

TEST(FleetQueueTest, AdmissionControlSlowsWearAndExtendsLifetime) {
  FleetConfig unthrottled = QueueFleet(SsdKind::kBaseline);
  FleetConfig throttled = unthrottled;
  throttled.queue.service_opages_per_day = DeviceOPages(throttled) / 2;
  throttled.queue.queue_opages = DeviceOPages(throttled);
  FleetSim fast(unthrottled);
  FleetSim slow(throttled);
  const auto fast_snapshots = fast.Run();
  const auto slow_snapshots = slow.Run();
  // Total writes-to-death are endurance-bound, so both fleets absorb the
  // same lifetime budget — what admission control buys is *time*: writing at
  // half rate pushes the wear cliff out, which is the paper's lifespan lever
  // applied to load. (Host writes can only go down, never up.)
  EXPECT_LE(slow_snapshots.back().cumulative_host_writes,
            fast_snapshots.back().cumulative_host_writes);
  EXPECT_GT(slow.queue_shed_total() + slow.queue_backlog_total(), 0u)
      << "throttle never engaged; cap too generous for the demand";
  const auto fast_half = fast.DayDevicesBelow(0.5);
  const auto slow_half = slow.DayDevicesBelow(0.5);
  ASSERT_TRUE(fast_half.has_value());
  if (slow_half.has_value()) {
    EXPECT_GT(*slow_half, *fast_half);
  } else {
    // Even better: the throttled fleet never lost half its devices inside
    // the horizon the unthrottled fleet did.
    EXPECT_LE(*fast_half, unthrottled.days);
  }
}

TEST(FleetQueueTest, BitIdenticalAcrossThreadsAndEngines) {
  const auto run = [](unsigned threads, FleetSchedulerMode mode) {
    FleetConfig config = QueueFleet(SsdKind::kRegenS);
    config.queue.service_opages_per_day = DeviceOPages(config) / 2;
    config.queue.queue_opages = DeviceOPages(config);
    config.threads = threads;
    config.scheduler = mode;
    FleetSim sim(config);
    const auto snapshots = sim.Run();
    return std::make_pair(snapshots, sim.DeviceDigests());
  };
  const auto reference = run(1, FleetSchedulerMode::kLockstep);
  ASSERT_FALSE(reference.first.empty());
  EXPECT_EQ(run(4, FleetSchedulerMode::kLockstep), reference);
  EXPECT_EQ(run(1, FleetSchedulerMode::kEventDriven), reference);
  EXPECT_EQ(run(4, FleetSchedulerMode::kEventDriven), reference);
}

}  // namespace
}  // namespace salamander
