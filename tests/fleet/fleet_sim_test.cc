#include "fleet/fleet_sim.h"

#include <gtest/gtest.h>

#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

FleetConfig TestFleet(SsdKind kind, uint32_t devices = 4,
                      uint32_t nominal_pec = 25, uint32_t days = 200) {
  FleetConfig config;
  config.kind = kind;
  config.devices = devices;
  config.geometry = testing_util::TinyGeometry();
  config.ecc = FPageEccGeometry{};
  config.wear = testing_util::FastWear(config.ecc, nominal_pec);
  config.msize_opages = 64;
  config.dwpd = 2.0;
  config.afr = 0.0;  // pure wear-out unless a test opts in
  config.days = days;
  config.sample_every_days = 5;
  config.seed = 4242;
  return config;
}

TEST(FleetSimTest, StartsFullyAlive) {
  FleetSim sim(TestFleet(SsdKind::kBaseline));
  auto snapshots = sim.Run();
  ASSERT_FALSE(snapshots.empty());
  EXPECT_EQ(snapshots.front().day, 0u);
  EXPECT_EQ(snapshots.front().functioning_devices, 4u);
  EXPECT_GT(snapshots.front().capacity_bytes, 0u);
}

TEST(FleetSimTest, WearKillsBaselineFleet) {
  FleetSim sim(TestFleet(SsdKind::kBaseline, 4, /*nominal_pec=*/15,
                         /*days=*/500));
  auto snapshots = sim.Run();
  EXPECT_EQ(snapshots.back().functioning_devices, 0u);
  EXPECT_EQ(snapshots.back().capacity_bytes, 0u);
}

TEST(FleetSimTest, DeviceCountMonotoneWithoutReplacement) {
  FleetSim sim(TestFleet(SsdKind::kShrinkS, 4, 15, 500));
  auto snapshots = sim.Run();
  uint32_t prev = UINT32_MAX;
  for (const FleetSnapshot& snapshot : snapshots) {
    EXPECT_LE(snapshot.functioning_devices, prev);
    prev = snapshot.functioning_devices;
  }
}

TEST(FleetSimTest, WritesAccumulate) {
  FleetSim sim(TestFleet(SsdKind::kShrinkS, 2, 1000, /*days=*/20));
  auto snapshots = sim.Run();
  EXPECT_GT(snapshots.back().cumulative_host_writes, 0u);
  // 2 devices x 2 DWPD x 768 oPages x 20 days.
  EXPECT_EQ(snapshots.back().cumulative_host_writes, 2u * 2 * 768 * 20);
}

TEST(FleetSimTest, AfrKillsDevicesWithoutWear) {
  FleetConfig config = TestFleet(SsdKind::kBaseline, 20, 1000000, 365);
  config.dwpd = 0.01;   // negligible wear
  config.afr = 0.9;     // extreme AFR so the effect is certain in 1 year
  FleetSim sim(config);
  auto snapshots = sim.Run();
  EXPECT_LT(snapshots.back().functioning_devices, 20u);
}

TEST(FleetSimTest, SalamanderShrinksBeforeDying) {
  // Use a longer endurance horizon with daily sampling so the gradual
  // degradation phase is actually observable in the snapshots.
  FleetConfig config = TestFleet(SsdKind::kShrinkS, 3, /*nominal_pec=*/60,
                                 /*days=*/500);
  config.sample_every_days = 1;
  FleetSim sim(config);
  auto snapshots = sim.Run();
  // Find a snapshot with partial capacity: all devices alive but capacity
  // below initial — the gradual degradation baseline cannot exhibit.
  const uint64_t initial = snapshots.front().capacity_bytes;
  bool saw_partial = false;
  for (const FleetSnapshot& snapshot : snapshots) {
    if (snapshot.functioning_devices == 3 &&
        snapshot.capacity_bytes < initial && snapshot.capacity_bytes > 0) {
      saw_partial = true;
      break;
    }
  }
  EXPECT_TRUE(saw_partial);
  EXPECT_GT(snapshots.back().cumulative_decommissions, 0u);
}

TEST(FleetSimTest, RegenSOutlivesBaseline) {
  // The Fig. 3a claim: RegenS flattens the device-failure slope.
  FleetSim baseline(TestFleet(SsdKind::kBaseline, 4, 15, 1000));
  FleetSim regens(TestFleet(SsdKind::kRegenS, 4, 15, 1000));
  baseline.Run();
  regens.Run();
  const std::optional<uint32_t> baseline_half_dead =
      baseline.DayDevicesBelow(0.5);
  const std::optional<uint32_t> regens_half_dead = regens.DayDevicesBelow(0.5);
  ASSERT_TRUE(baseline_half_dead.has_value());
  if (regens_half_dead) {  // nullopt = never dropped below half
    EXPECT_GT(*regens_half_dead, *baseline_half_dead);
  }
}

TEST(FleetSimTest, RegenSRegisteresRegenerations) {
  FleetSim sim(TestFleet(SsdKind::kRegenS, 3, 15, 800));
  auto snapshots = sim.Run();
  EXPECT_GT(snapshots.back().cumulative_regenerations, 0u);
}

TEST(FleetSimTest, DeterministicRuns) {
  auto run = [] {
    FleetSim sim(TestFleet(SsdKind::kRegenS, 3, 20, 300));
    auto snapshots = sim.Run();
    return std::make_pair(snapshots.back().functioning_devices,
                          snapshots.back().cumulative_host_writes);
  };
  EXPECT_EQ(run(), run());
}

TEST(FleetSimTest, DayCapacityBelowFindsThreshold) {
  FleetSim sim(TestFleet(SsdKind::kShrinkS, 3, 15, 800));
  sim.Run();
  const std::optional<uint32_t> day80 = sim.DayCapacityBelow(0.8);
  const std::optional<uint32_t> day40 = sim.DayCapacityBelow(0.4);
  ASSERT_TRUE(day80.has_value());
  ASSERT_TRUE(day40.has_value());
  EXPECT_LE(*day80, *day40);
}

TEST(FleetSimTest, ThresholdQueriesDistinguishNeverFromDayZero) {
  // A fleet that never drops below 1% of its devices reports nullopt — not
  // day 0 — while an impossible threshold (> 100%) is breached at day 0.
  FleetSim sim(TestFleet(SsdKind::kShrinkS, 3, /*nominal_pec=*/1000,
                         /*days=*/10));
  sim.Run();
  EXPECT_EQ(sim.DayDevicesBelow(0.01), std::nullopt);
  EXPECT_EQ(sim.DayCapacityBelow(0.01), std::nullopt);
  ASSERT_TRUE(sim.DayDevicesBelow(1.5).has_value());
  EXPECT_EQ(*sim.DayDevicesBelow(1.5), 0u);
  ASSERT_TRUE(sim.DayCapacityBelow(1.5).has_value());
  EXPECT_EQ(*sim.DayCapacityBelow(1.5), 0u);
}

}  // namespace
}  // namespace salamander
