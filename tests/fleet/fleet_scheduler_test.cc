// Determinism suite for the discrete-event fleet scheduler.
//
// Two layers:
//   1. Queue-level: FleetEventQueue drains in canonical (day, device, kind)
//      order for *every* insertion permutation of an event set — the total
//      order that makes batch composition independent of posting order, heap
//      internals, and thread scheduling.
//   2. Sim-level: the event-driven engine produces bit-identical snapshots
//      and per-device digests across --threads in {1, 2, 4, 8}, including
//      universes with transient power loss (dark-day jumps) and background
//      scrub (daily budget pacing) — the paths where a skipped or double-
//      counted day would show up immediately.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "fleet/event_scheduler.h"
#include "fleet/fleet_sim.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

TEST(FleetSchedulerTest, QueueDrainsInCanonicalOrder) {
  const std::vector<FleetEvent> canonical = {
      {1, 0, FleetEventKind::kStep},    {1, 0, FleetEventKind::kRestart},
      {1, 2, FleetEventKind::kStep},    {2, 0, FleetEventKind::kRestart},
      {2, 1, FleetEventKind::kStep},    {3, 0, FleetEventKind::kStep},
  };
  // Every insertion permutation must drain identically: 6! = 720 orders.
  std::vector<size_t> order(canonical.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  do {
    FleetEventQueue queue;
    for (size_t index : order) {
      queue.Post(canonical[index]);
    }
    EXPECT_EQ(queue.PopThrough(3), canonical);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(FleetSchedulerTest, QueueTieBreaksByDeviceThenKind) {
  FleetEventQueue queue;
  queue.Post({5, 3, FleetEventKind::kStep});
  queue.Post({5, 1, FleetEventKind::kRestart});
  queue.Post({5, 1, FleetEventKind::kStep});
  const std::vector<FleetEvent> batch = queue.PopThrough(5);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], (FleetEvent{5, 1, FleetEventKind::kStep}));
  EXPECT_EQ(batch[1], (FleetEvent{5, 1, FleetEventKind::kRestart}));
  EXPECT_EQ(batch[2], (FleetEvent{5, 3, FleetEventKind::kStep}));
}

TEST(FleetSchedulerTest, PopThroughLeavesFutureEventsQueued) {
  FleetEventQueue queue;
  queue.Post({4, 0, FleetEventKind::kStep});
  queue.Post({2, 1, FleetEventKind::kStep});
  queue.Post({3, 0, FleetEventKind::kRestart});
  const std::vector<FleetEvent> batch = queue.PopThrough(3);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].day, 2u);
  EXPECT_EQ(batch[1].day, 3u);
  ASSERT_FALSE(queue.empty());
  EXPECT_EQ(queue.NextDay(), 4u);
  EXPECT_TRUE(queue.PopThrough(1).empty());
  EXPECT_EQ(queue.size(), 1u);
}

// ---------------------------------------------------------------------------
// Sim-level determinism across thread counts
// ---------------------------------------------------------------------------

FleetConfig SchedulerFleet(SsdKind kind, unsigned threads) {
  FleetConfig config;
  config.kind = kind;
  config.devices = 8;
  config.geometry = testing_util::TinyGeometry();
  config.ecc = FPageEccGeometry{};
  config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/25);
  config.msize_opages = 64;
  config.dwpd = 2.0;
  config.dwpd_sigma = 0.3;
  config.afr = 0.05;
  config.days = 200;
  config.sample_every_days = 7;  // horizon not a multiple: exercises the tail
  config.seed = 424242;
  config.threads = threads;
  config.scheduler = FleetSchedulerMode::kEventDriven;
  return config;
}

using RunResult = std::tuple<std::vector<FleetSnapshot>,
                             std::vector<uint64_t>>;

RunResult RunEventFleet(FleetConfig config) {
  FleetSim sim(config);
  const std::vector<FleetSnapshot> snapshots = sim.Run();
  return {snapshots, sim.DeviceDigests()};
}

TEST(FleetSchedulerTest, ThreadCountInvariantWearUniverse) {
  const RunResult serial = RunEventFleet(SchedulerFleet(SsdKind::kRegenS, 1));
  for (unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(RunEventFleet(SchedulerFleet(SsdKind::kRegenS, threads)),
              serial)
        << "threads=" << threads;
  }
}

TEST(FleetSchedulerTest, ThreadCountInvariantPowerLossUniverse) {
  auto universe = [](unsigned threads) {
    FleetConfig config = SchedulerFleet(SsdKind::kShrinkS, threads);
    config.power_loss_per_device_day = 0.02;
    config.power_loss_restart_days = 9;  // outages straddle sync windows
    return config;
  };
  const RunResult serial = RunEventFleet(universe(1));
  for (unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(RunEventFleet(universe(threads)), serial)
        << "threads=" << threads;
  }
}

TEST(FleetSchedulerTest, ThreadCountInvariantScrubUniverse) {
  auto universe = [](unsigned threads) {
    FleetConfig config = SchedulerFleet(SsdKind::kShrinkS, threads);
    config.scrub_opages_per_day = 32;
    config.inject_device_faults = true;
    config.device_faults.read_corrupt = 0.01;
    config.device_faults.seed = 5;
    return config;
  };
  const RunResult serial = RunEventFleet(universe(1));
  for (unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(RunEventFleet(universe(threads)), serial)
        << "threads=" << threads;
  }
}

// The point of the engine: device-days after death are never simulated. With
// fast wear and a long horizon, stepped days must come in far below the
// lockstep bill of devices x days.
TEST(FleetSchedulerTest, DeadDevicesCostZeroStepping) {
  FleetConfig config = SchedulerFleet(SsdKind::kBaseline, 1);
  config.days = 2000;  // most of the horizon is post-mortem
  FleetSim sim(config);
  sim.Run();
  const FleetSchedulerStats stats = sim.scheduler_stats();
  const uint64_t lockstep_bill =
      static_cast<uint64_t>(config.devices) * config.days;
  EXPECT_GT(stats.days_stepped, 0u);
  EXPECT_LT(stats.days_stepped, lockstep_bill / 4)
      << "dead devices are still being stepped";
  EXPECT_GT(stats.events, 0u);
  EXPECT_GT(stats.batches, 0u);
}

// Dark devices jump straight to their restart day instead of burning one
// no-op visit per outage day.
TEST(FleetSchedulerTest, DarkDaysAreSkippedNotStepped) {
  FleetConfig config = SchedulerFleet(SsdKind::kShrinkS, 1);
  config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/1000);
  config.afr = 0.0;
  config.power_loss_per_device_day = 0.05;
  config.power_loss_restart_days = 12;
  FleetSim sim(config);
  sim.Run();
  EXPECT_GT(sim.power_losses_total(), 0u);
  const FleetSchedulerStats stats = sim.scheduler_stats();
  EXPECT_GT(stats.dark_days_skipped, 0u);
  // Stepped + skipped never exceeds the lockstep bill: no day is visited
  // twice and none is invented.
  EXPECT_LE(stats.days_stepped + stats.dark_days_skipped,
            static_cast<uint64_t>(config.devices) * config.days);
}

TEST(FleetSchedulerTest, LockstepReportsZeroSchedulerStats) {
  FleetConfig config = SchedulerFleet(SsdKind::kBaseline, 1);
  config.scheduler = FleetSchedulerMode::kLockstep;
  FleetSim sim(config);
  sim.Run();
  const FleetSchedulerStats stats = sim.scheduler_stats();
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.events, 0u);
  EXPECT_EQ(stats.idle_windows, 0u);
  EXPECT_EQ(stats.days_stepped, 0u);
  EXPECT_EQ(stats.dark_days_skipped, 0u);
}

}  // namespace
}  // namespace salamander
