// Exact-equivalence gate: the discrete-event engine must reproduce the
// lockstep reference bit for bit — every snapshot, every per-device
// StateDigest-backed FleetSim::DeviceDigest, every fleet accumulator
// (scrub pacing, power-loss ledger), and every telemetry byte — over
// faulty universes chosen to flush out off-by-one drift when the scheduler
// jumps over days (dark outages, dead tails, early fleet death).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/fleet_sim.h"
#include "telemetry/metrics.h"
#include "telemetry/sampler.h"
#include "telemetry/trace.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

FleetConfig BaseFleet() {
  FleetConfig config;
  config.kind = SsdKind::kRegenS;
  config.devices = 8;
  config.geometry = testing_util::TinyGeometry();
  config.ecc = FPageEccGeometry{};
  config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/30);
  config.msize_opages = 64;
  config.dwpd = 2.0;
  config.dwpd_sigma = 0.3;
  config.afr = 0.04;
  config.days = 180;
  config.sample_every_days = 7;
  config.seed = 20260807;
  config.threads = 1;
  return config;
}

struct EngineRun {
  std::vector<FleetSnapshot> snapshots;
  std::vector<uint64_t> digests;
  uint64_t scrub_reads = 0;
  uint64_t scrub_detected = 0;
  uint64_t scrub_repairs = 0;
  uint64_t scrub_passes = 0;
  uint64_t power_losses = 0;
  uint64_t restarts = 0;
  uint64_t restart_failures = 0;
  uint32_t dark = 0;
};

EngineRun RunEngine(FleetConfig config, FleetSchedulerMode mode,
                    unsigned threads) {
  config.scheduler = mode;
  config.threads = threads;
  FleetSim sim(config);
  EngineRun run;
  run.snapshots = sim.Run();
  run.digests = sim.DeviceDigests();
  run.scrub_reads = sim.scrub_reads_total();
  run.scrub_detected = sim.scrub_detected_total();
  run.scrub_repairs = sim.scrub_repairs_total();
  run.scrub_passes = sim.scrub_passes_total();
  run.power_losses = sim.power_losses_total();
  run.restarts = sim.restarts_total();
  run.restart_failures = sim.restart_failures_total();
  run.dark = sim.dark_devices();
  return run;
}

// Diffs lockstep against the event engine (serial and parallel) for one
// universe: snapshots, per-device digests, and every fleet accumulator.
void ExpectEnginesEquivalent(const FleetConfig& config,
                             const std::string& label) {
  const EngineRun lockstep =
      RunEngine(config, FleetSchedulerMode::kLockstep, 1);
  const EngineRun event = RunEngine(config, FleetSchedulerMode::kEventDriven, 1);
  const EngineRun event_mt =
      RunEngine(config, FleetSchedulerMode::kEventDriven, 4);

  ASSERT_FALSE(lockstep.snapshots.empty()) << label;
  EXPECT_EQ(event.snapshots, lockstep.snapshots) << label;
  EXPECT_EQ(event_mt.snapshots, lockstep.snapshots) << label;
  ASSERT_EQ(event.digests.size(), lockstep.digests.size()) << label;
  for (size_t i = 0; i < lockstep.digests.size(); ++i) {
    EXPECT_EQ(event.digests[i], lockstep.digests[i])
        << label << ": device " << i << " diverged";
  }
  EXPECT_EQ(event_mt.digests, lockstep.digests) << label;

  // Accumulator audit (the off-by-one hunting ground when days are skipped):
  // scrub pacing and the power-loss ledger must match to the unit.
  EXPECT_EQ(event.scrub_reads, lockstep.scrub_reads) << label;
  EXPECT_EQ(event.scrub_detected, lockstep.scrub_detected) << label;
  EXPECT_EQ(event.scrub_repairs, lockstep.scrub_repairs) << label;
  EXPECT_EQ(event.scrub_passes, lockstep.scrub_passes) << label;
  EXPECT_EQ(event.power_losses, lockstep.power_losses) << label;
  EXPECT_EQ(event.restarts, lockstep.restarts) << label;
  EXPECT_EQ(event.restart_failures, lockstep.restart_failures) << label;
  EXPECT_EQ(event.dark, lockstep.dark) << label;
}

TEST(FleetEquivalenceTest, WearOnlyUniverse) {
  ExpectEnginesEquivalent(BaseFleet(), "wear-only");
}

TEST(FleetEquivalenceTest, EveryKindMatches) {
  for (SsdKind kind : {SsdKind::kBaseline, SsdKind::kCvss, SsdKind::kShrinkS,
                       SsdKind::kRegenS}) {
    FleetConfig config = BaseFleet();
    config.kind = kind;
    ExpectEnginesEquivalent(config, std::string(SsdKindName(kind)));
  }
}

TEST(FleetEquivalenceTest, ScrubUniverse) {
  FleetConfig config = BaseFleet();
  config.kind = SsdKind::kShrinkS;
  config.scrub_opages_per_day = 32;
  config.inject_device_faults = true;
  config.device_faults.read_corrupt = 0.01;
  config.device_faults.seed = 5;
  ExpectEnginesEquivalent(config, "scrub");
}

// restart_days = 0 is the sharpest off-by-one trap: lockstep restarts the
// *next* day (its dark check runs before the restart-day comparison), so the
// scheduler's dark-day jump must land on day + 1, not day.
TEST(FleetEquivalenceTest, PowerLossUniverseAcrossRestartLatencies) {
  for (uint32_t restart_days : {0u, 1u, 5u, 13u}) {
    FleetConfig config = BaseFleet();
    config.kind = SsdKind::kShrinkS;
    config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/200);
    config.power_loss_per_device_day = 0.03;
    config.power_loss_restart_days = restart_days;
    ExpectEnginesEquivalent(
        config, "power-loss restart_days=" + std::to_string(restart_days));
  }
}

TEST(FleetEquivalenceTest, FaultyUniverseEverythingOn) {
  FleetConfig config = BaseFleet();
  config.scrub_opages_per_day = 24;
  config.inject_device_faults = true;
  config.device_faults.read_corrupt = 0.005;
  config.device_faults.seed = 11;
  config.power_loss_per_device_day = 0.02;
  config.power_loss_restart_days = 6;
  ExpectEnginesEquivalent(config, "everything-on");
}

// Early fleet death: the run stops before the horizon and the final snapshot
// carries the exact day the last device died, not a window boundary.
TEST(FleetEquivalenceTest, EarlyFleetDeathSameFinalDay) {
  FleetConfig config = BaseFleet();
  config.kind = SsdKind::kBaseline;
  config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/10);
  config.afr = 0.2;  // hasten the last stragglers
  config.days = 5000;
  const EngineRun lockstep =
      RunEngine(config, FleetSchedulerMode::kLockstep, 1);
  const EngineRun event =
      RunEngine(config, FleetSchedulerMode::kEventDriven, 1);
  ASSERT_GT(lockstep.snapshots.size(), 1u);
  EXPECT_LT(lockstep.snapshots.back().day, config.days) << "fleet survived";
  EXPECT_EQ(event.snapshots, lockstep.snapshots);
  EXPECT_EQ(event.digests, lockstep.digests);
}

TEST(FleetEquivalenceTest, EmptyFleetMatches) {
  FleetConfig config = BaseFleet();
  config.devices = 0;
  const EngineRun lockstep =
      RunEngine(config, FleetSchedulerMode::kLockstep, 1);
  const EngineRun event =
      RunEngine(config, FleetSchedulerMode::kEventDriven, 1);
  EXPECT_EQ(event.snapshots, lockstep.snapshots);
}

// Telemetry byte-identity across engines: same sampler CSV, same trace JSON.
// The event engine drains at day barriers exactly as lockstep does, so an
// attached sampler sees every day and the trace carries the same spans,
// death instants, and counter tracks.
TEST(FleetEquivalenceTest, TelemetryBytesMatchAcrossEngines) {
  auto run_telemetry = [](FleetSchedulerMode mode) {
    FleetConfig config = BaseFleet();
    config.kind = SsdKind::kShrinkS;
    config.power_loss_per_device_day = 0.02;
    config.power_loss_restart_days = 4;
    config.scrub_opages_per_day = 16;
    config.scheduler = mode;
    TimeSeriesSampler sampler;
    TraceRecorder trace;
    config.sampler = &sampler;
    config.trace = &trace;
    FleetSim sim(config);
    sim.Run();
    return std::make_pair(sampler.ToCsv(), trace.ToJson());
  };
  const auto lockstep = run_telemetry(FleetSchedulerMode::kLockstep);
  const auto event = run_telemetry(FleetSchedulerMode::kEventDriven);
  EXPECT_EQ(event.first, lockstep.first);
  EXPECT_EQ(event.second, lockstep.second);
}

}  // namespace
}  // namespace salamander
