// Fleet-level background scrub: paced daily reads from the day barrier,
// exact detected==injected accounting against the per-device injectors,
// thread-count invariance of the scrub totals, and the disabled-scrub
// byte-identity guarantee (no extra RNG forks, no extra reads).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "fleet/fleet_sim.h"
#include "telemetry/metrics.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

FleetConfig ScrubFleet(unsigned threads) {
  FleetConfig config;
  config.kind = SsdKind::kShrinkS;
  config.devices = 6;
  config.geometry = testing_util::TinyGeometry();
  config.ecc = FPageEccGeometry{};
  config.wear = testing_util::FastWear(config.ecc, /*nominal_pec=*/1000);
  config.msize_opages = 64;
  config.dwpd = 1.0;
  config.afr = 0.0;
  config.days = 60;
  config.sample_every_days = 5;
  config.seed = 13579;
  config.threads = threads;
  return config;
}

TEST(FleetScrubTest, ScrubReadsArePacedPerDay) {
  FleetConfig config = ScrubFleet(1);
  config.scrub_opages_per_day = 32;
  FleetSim sim(config);
  sim.Run();
  // Every device is alive the whole run (no AFR, high endurance), so the
  // pacing is exact: devices x days x budget.
  EXPECT_EQ(sim.scrub_reads_total(), 6u * 60 * 32);
  EXPECT_EQ(sim.scrub_detected_total(), 0u);  // nothing injected
  EXPECT_EQ(sim.scrub_repairs_total(), 0u);
}

// The tentpole's end-to-end accounting at fleet scale: with injected silent
// corruption and the scrubber as the *only* reader in the fleet (the aging
// workload is write-only), every injected kReadCorrupt draw happens under a
// scrub read — so detected equals injected exactly, and each detection is
// repaired by a rewrite.
TEST(FleetScrubTest, ScrubDetectionEqualsInjectedExactly) {
  FleetConfig config = ScrubFleet(1);
  config.scrub_opages_per_day = 64;
  config.inject_device_faults = true;
  config.device_faults.read_corrupt = 0.01;
  config.device_faults.seed = 5;
  FleetSim sim(config);
  sim.Run();
  EXPECT_GT(sim.scrub_reads_total(), 0u);
  EXPECT_GT(sim.scrub_detected_total(), 0u);
  EXPECT_EQ(sim.scrub_detected_total(), sim.read_corrupt_injected_total());
  // Each detection attempts exactly one in-place rewrite.
  EXPECT_GT(sim.scrub_repairs_total(), 0u);
  EXPECT_LE(sim.scrub_repairs_total(), sim.scrub_detected_total());
}

TEST(FleetScrubTest, ScrubTotalsAreThreadCountInvariant) {
  auto run = [](unsigned threads) {
    FleetConfig config = ScrubFleet(threads);
    config.scrub_opages_per_day = 48;
    config.inject_device_faults = true;
    config.device_faults.read_corrupt = 0.01;
    config.device_faults.seed = 5;
    FleetSim sim(config);
    const std::vector<FleetSnapshot> snapshots = sim.Run();
    return std::make_tuple(snapshots, sim.scrub_reads_total(),
                           sim.scrub_detected_total(),
                           sim.scrub_repairs_total(),
                           sim.scrub_passes_total());
  };
  const auto serial = run(1);
  EXPECT_EQ(run(3), serial);
  EXPECT_EQ(run(8), serial);
}

// scrub_opages_per_day == 0 is a first-class "off" state: no scrub RNG is
// forked, no read is issued, and the snapshots are byte-identical to a run
// of the same config — the invariant that keeps all pre-scrub bench outputs
// stable.
TEST(FleetScrubTest, DisabledScrubLeavesRunUntouched) {
  FleetConfig config = ScrubFleet(1);
  FleetSim plain(config);
  const std::vector<FleetSnapshot> baseline = plain.Run();

  FleetConfig off = ScrubFleet(1);
  off.scrub_opages_per_day = 0;
  FleetSim sim(off);
  EXPECT_EQ(sim.Run(), baseline);
  EXPECT_EQ(sim.scrub_reads_total(), 0u);
  EXPECT_EQ(sim.scrub_detected_total(), 0u);
  EXPECT_EQ(sim.scrub_passes_total(), 0u);
}

// Scrub reads are real device reads: they wear flash (§4.3), so a scrubbed
// fleet's flash read counters exceed an unscrubbed one's.
TEST(FleetScrubTest, ScrubMetricsAreExportedOnlyWhenEnabled) {
  auto run = [](uint64_t scrub_budget) {
    MetricRegistry registry;
    FleetConfig config = ScrubFleet(1);
    config.scrub_opages_per_day = scrub_budget;
    config.metrics = &registry;
    FleetSim sim(config);
    sim.Run();
    return std::make_tuple(
        registry.FindCounter("fleet.scrub.opage_reads") != nullptr,
        registry.FindCounter("fleet.scrub.detected") != nullptr,
        registry.FindCounter("fleet.scrub.repairs") != nullptr,
        registry.FindCounter("fleet.scrub.passes") != nullptr);
  };
  // Enabled: the whole fleet.scrub.* subtree exists; disabled: none of it
  // does, so metric dumps of scrub-free runs stay byte-identical.
  EXPECT_EQ(run(16), std::make_tuple(true, true, true, true));
  EXPECT_EQ(run(0), std::make_tuple(false, false, false, false));
}

TEST(FleetScrubTest, ScrubWearIsRealPerSection43) {
  auto flash_reads = [](uint64_t scrub_budget) {
    MetricRegistry registry;
    FleetConfig config = ScrubFleet(1);
    config.scrub_opages_per_day = scrub_budget;
    config.metrics = &registry;
    FleetSim sim(config);
    sim.Run();
    const Counter* reads = registry.FindCounter("ftl.host_reads");
    return reads == nullptr ? uint64_t{0} : reads->value();
  };
  EXPECT_GT(flash_reads(64), flash_reads(0));
}

}  // namespace
}  // namespace salamander
