// Device-level crash/restart contracts: power loss is silent and idempotent,
// a brick upgrade fires the decommission fan-out exactly once, Restart() is
// fenced to transiently dark devices, restart re-announces the surviving
// mDisk set (kCreated, plus kDraining for still-draining ones), and the
// brick fan-out honors the bounded event queue via dropped_events().
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ssd/ssd_device.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

// High-endurance ShrinkS device: wear never interferes with these tests.
SsdDevice MakeDevice(uint64_t max_pending_events = 0) {
  SsdConfig config = TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(),
                                   /*nominal_pec=*/1000000);
  if (max_pending_events != 0) {
    config.minidisk.max_pending_events = max_pending_events;
  }
  return SsdDevice(SsdKind::kShrinkS, config);
}

TEST(CrashRestartTest, PowerLossIsSilentAndIdempotent) {
  SsdDevice device = MakeDevice();
  (void)device.TakeEvents();  // drain the initial kCreated announcements
  ASSERT_TRUE(device.Write(0, 0).ok());

  device.Crash(SsdDevice::CrashKind::kPowerLoss);
  EXPECT_TRUE(device.failed());
  EXPECT_TRUE(device.transiently_dark());
  // Silent darkness: peers observe unreachability, never an event.
  EXPECT_TRUE(device.TakeEvents().empty());
  EXPECT_EQ(device.Write(0, 1).status().code(), StatusCode::kDeviceFailed);
  EXPECT_EQ(device.Read(0, 0).status().code(), StatusCode::kDeviceFailed);

  // A second power loss on a dark device is a no-op — the FTL must not
  // double-count the outage or tear the journal again.
  device.Crash(SsdDevice::CrashKind::kPowerLoss);
  EXPECT_TRUE(device.transiently_dark());
  EXPECT_EQ(device.ftl().power_losses(), 1u);
}

TEST(CrashRestartTest, PowerLossUpgradesToBrickExactlyOnce) {
  SsdDevice device = MakeDevice();
  (void)device.TakeEvents();
  const uint32_t live = device.live_minidisks();
  ASSERT_GT(live, 0u);

  device.Crash(SsdDevice::CrashKind::kPowerLoss);
  ASSERT_TRUE(device.TakeEvents().empty());
  // Someone declares the outage permanent: the whole-device failure events
  // fire now, one kDecommissioned per live mDisk.
  device.Crash(SsdDevice::CrashKind::kPermanent);
  EXPECT_TRUE(device.failed());
  EXPECT_FALSE(device.transiently_dark());
  const std::vector<MinidiskEvent> events = device.TakeEvents();
  uint32_t decommissions = 0;
  for (const MinidiskEvent& event : events) {
    decommissions += event.type == MinidiskEventType::kDecommissioned;
  }
  EXPECT_EQ(decommissions, live);

  // Idempotent once permanent: no re-emission, and no way back.
  device.Crash(SsdDevice::CrashKind::kPermanent);
  device.Crash(SsdDevice::CrashKind::kPowerLoss);
  EXPECT_TRUE(device.TakeEvents().empty());
  EXPECT_EQ(device.Restart().code(), StatusCode::kFailedPrecondition);
}

TEST(CrashRestartTest, RestartIsFencedToDarkDevices) {
  SsdDevice device = MakeDevice();
  EXPECT_EQ(device.Restart().code(), StatusCode::kFailedPrecondition);
  device.Crash(SsdDevice::CrashKind::kPermanent);
  EXPECT_EQ(device.Restart().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(device.restarts(), 0u);
}

TEST(CrashRestartTest, RestartReannouncesLiveMinidisks) {
  SsdDevice device = MakeDevice();
  (void)device.TakeEvents();
  const uint32_t live = device.live_minidisks();
  for (uint64_t lba = 0; lba < 8; ++lba) {
    ASSERT_TRUE(device.Write(0, lba).ok());
  }

  device.Crash(SsdDevice::CrashKind::kPowerLoss);
  ASSERT_TRUE(device.Restart().ok());
  EXPECT_FALSE(device.failed());
  EXPECT_EQ(device.restarts(), 1u);
  EXPECT_EQ(device.live_minidisks(), live);

  // The authoritative resync: exactly one kCreated per surviving mDisk
  // (nothing was draining), and the device serves I/O again.
  const std::vector<MinidiskEvent> events = device.TakeEvents();
  uint32_t created = 0;
  for (const MinidiskEvent& event : events) {
    created += event.type == MinidiskEventType::kCreated;
  }
  EXPECT_EQ(created, live);
  EXPECT_EQ(created, events.size());
  EXPECT_TRUE(device.Write(0, 0).ok());
  EXPECT_TRUE(device.TakeEvents().empty());
}

// A still-draining mDisk re-announces as a kCreated + kDraining pair so a
// live-set tracker (kCreated adds, kDraining removes) converges to the true
// live set after the outage.
TEST(CrashRestartTest, RestartReannouncesDrainingPairs) {
  SsdConfig config = TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(),
                                   /*nominal_pec=*/25);
  config.minidisk.drain_before_decommission = true;
  config.minidisk.max_draining = 3;
  SsdDevice device(SsdKind::kShrinkS, config);

  // Age until wear opens a grace window, polling events like a real host.
  uint64_t step = 0;
  while (device.manager().draining_minidisks() == 0 && step < 2000000 &&
         !device.failed()) {
    const MinidiskId mdisk = static_cast<MinidiskId>(step % 12);
    if (device.IsMinidiskLive(mdisk)) {
      (void)device.Write(mdisk, step % 64);
    }
    if (step % 4096 == 0) {
      (void)device.TakeEvents();
    }
    ++step;
  }
  ASSERT_GT(device.manager().draining_minidisks(), 0u);
  ASSERT_FALSE(device.failed());
  (void)device.TakeEvents();
  const uint32_t draining = device.manager().draining_minidisks();

  device.Crash(SsdDevice::CrashKind::kPowerLoss);
  ASSERT_TRUE(device.Restart().ok());
  const std::vector<MinidiskEvent> events = device.TakeEvents();
  uint32_t draining_events = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type != MinidiskEventType::kDraining) {
      continue;
    }
    ++draining_events;
    // The pair arrives back to back: kCreated for the same mDisk first.
    ASSERT_GT(i, 0u);
    EXPECT_EQ(events[i - 1].type, MinidiskEventType::kCreated);
    EXPECT_EQ(events[i - 1].mdisk, events[i].mdisk);
  }
  EXPECT_EQ(draining_events, draining);
}

TEST(CrashRestartTest, BrickFanOutHonorsEventQueueBound) {
  SsdDevice device = MakeDevice(/*max_pending_events=*/4);
  // The initial announcements may already overflow the tiny queue; what
  // matters is that the brick fan-out keeps counting instead of growing
  // the queue without bound.
  (void)device.TakeEvents();
  const uint64_t dropped_before = device.dropped_events();
  const uint32_t live = device.live_minidisks();
  ASSERT_GT(live, 4u);

  device.Crash(SsdDevice::CrashKind::kPermanent);
  const std::vector<MinidiskEvent> events = device.TakeEvents();
  EXPECT_LE(events.size(), 4u);
  // Every mDisk that did not fit in the queue is accounted as a drop — the
  // dirty-state watch peers use to trigger a full reconcile.
  EXPECT_EQ(device.dropped_events() - dropped_before, live - events.size());
  EXPECT_TRUE(device.TakeEvents().empty());
}

}  // namespace
}  // namespace salamander
