// SsdDevice surface tests: flush, drain ack passthrough, dedicated ECC
// configuration, and working-set-restricted aging.
#include <gtest/gtest.h>

#include "ssd/ssd_device.h"
#include "tests/testing/device_builder.h"
#include "workload/aging.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

TEST(SsdDeviceExtrasTest, FlushDrainsBuffer) {
  SsdDevice device(SsdKind::kRegenS,
                   TestSsdConfig(SsdKind::kRegenS, TinyGeometry(), 1000000));
  device.TakeEvents();
  ASSERT_TRUE(device.Write(0, 0).ok());
  EXPECT_GT(device.ftl().buffered_opages(), 0u);
  ASSERT_TRUE(device.Flush().ok());
  EXPECT_EQ(device.ftl().buffered_opages(), 0u);
  // Data survives the flush.
  auto read = device.Read(0, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->buffer_hit);
}

TEST(SsdDeviceExtrasTest, AckDrainPassthroughValidation) {
  SsdConfig config =
      TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), 1000000);
  config.minidisk.drain_before_decommission = true;
  SsdDevice device(SsdKind::kShrinkS, config);
  EXPECT_EQ(device.AckDrain(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(device.AckDrain(9999).code(), StatusCode::kNotFound);
}

TEST(SsdDeviceExtrasTest, BrickedDeviceRejectsFlushAndAck) {
  SsdDevice device(SsdKind::kBaseline,
                   TestSsdConfig(SsdKind::kBaseline, TinyGeometry(), 10));
  AgingDriver driver(&device, 5);
  driver.WriteOPages(100000000);
  ASSERT_TRUE(device.failed());
  EXPECT_EQ(device.Flush().code(), StatusCode::kDeviceFailed);
  EXPECT_EQ(device.AckDrain(0).code(), StatusCode::kDeviceFailed);
}

TEST(SsdDeviceExtrasTest, DedicatedEccConfigPlumbsThrough) {
  SsdConfig config = TestSsdConfig(SsdKind::kRegenS, TinyGeometry(), 1000000);
  config.ftl.ecc_placement = EccPlacement::kDedicated;
  config.ftl.dedicated_ecc_cache_hit = 0.5;
  SsdDevice device(SsdKind::kRegenS, config);
  EXPECT_EQ(device.ftl().config().ecc_placement, EccPlacement::kDedicated);
  EXPECT_EQ(device.ftl().config().dedicated_ecc_cache_hit, 0.5);
}

TEST(AgingWorkingSetTest, RestrictedWorkingSetTouchesOnlyPrefix) {
  SsdDevice device(SsdKind::kShrinkS,
                   TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), 1000000));
  AgingConfig aging;
  aging.working_set_fraction = 0.25;
  AgingDriver driver(&device, 7, aging);
  AgingResult result = driver.WriteOPages(2000);
  EXPECT_EQ(result.opages_written, 2000u);
  // Only ~25% of the 12 mDisks (the live-list prefix) should hold data.
  uint32_t touched = 0;
  for (MinidiskId md = 0; md < device.total_minidisks(); ++md) {
    touched += device.manager().valid_lbas(md) > 0 ? 1 : 0;
  }
  EXPECT_LE(touched, 4u);
  EXPECT_GE(touched, 2u);
}

TEST(AgingWorkingSetTest, FullWorkingSetTouchesEverything) {
  SsdDevice device(SsdKind::kShrinkS,
                   TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), 1000000));
  AgingDriver driver(&device, 7);
  driver.WriteOPages(5000);
  uint32_t touched = 0;
  for (MinidiskId md = 0; md < device.total_minidisks(); ++md) {
    touched += device.manager().valid_lbas(md) > 0 ? 1 : 0;
  }
  EXPECT_EQ(touched, device.total_minidisks());
}

TEST(AgingWorkingSetTest, ZipfianSkewConcentratesWrites) {
  SsdDevice device(SsdKind::kShrinkS,
                   TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), 1000000));
  AgingConfig aging;
  aging.zipfian_fraction = 1.0;
  aging.zipfian_theta = 0.99;
  AgingDriver driver(&device, 7, aging);
  driver.WriteOPages(5000);
  uint64_t zipf_distinct = 0;
  for (MinidiskId md = 0; md < device.total_minidisks(); ++md) {
    zipf_distinct += device.manager().valid_lbas(md);
  }
  // Compare against a uniform run of the same size: zipfian re-hits hot
  // LBAs, so it covers clearly fewer distinct addresses.
  SsdDevice uniform_device(
      SsdKind::kShrinkS,
      TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), 1000000));
  AgingDriver uniform_driver(&uniform_device, 7);
  uniform_driver.WriteOPages(5000);
  uint64_t uniform_distinct = 0;
  for (MinidiskId md = 0; md < uniform_device.total_minidisks(); ++md) {
    uniform_distinct += uniform_device.manager().valid_lbas(md);
  }
  EXPECT_LT(zipf_distinct + 20, uniform_distinct);
}

// ---------------------------------------------------------------------------
// EstimateNextEvent — device-level discrete-event hook
// ---------------------------------------------------------------------------

TEST(SsdDeviceExtrasTest, EstimateNextEventOnFreshAndWrittenDevice) {
  SsdDevice device(SsdKind::kShrinkS,
                   TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), 1000000));
  device.TakeEvents();
  const SsdDevice::EventEstimate fresh = device.EstimateNextEvent();
  EXPECT_GT(fresh.opages_to_gc_pressure, 0u);
  EXPECT_FALSE(fresh.lifecycle_pending);
  ASSERT_TRUE(device.Write(0, 0).ok());
  ASSERT_TRUE(device.Flush().ok());
  const SsdDevice::EventEstimate written = device.EstimateNextEvent();
  // Programmed flash puts pages in service: a wear horizon now exists.
  EXPECT_NE(written.opages_to_wear_event, UINT64_MAX);
}

TEST(SsdDeviceExtrasTest, EstimateNextEventFlagsPendingLifecycleWork) {
  SsdDevice device(SsdKind::kShrinkS,
                   TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), 1000000));
  // Construction queues kCreated announcements; until the host drains them
  // the device has lifecycle work pending.
  EXPECT_GT(device.pending_event_depth(), 0u);
  EXPECT_TRUE(device.EstimateNextEvent().lifecycle_pending);
  device.TakeEvents();
  EXPECT_FALSE(device.EstimateNextEvent().lifecycle_pending);
}

TEST(SsdDeviceExtrasTest, EstimateNextEventZeroOnFailedDevice) {
  SsdDevice device(SsdKind::kBaseline,
                   TestSsdConfig(SsdKind::kBaseline, TinyGeometry(), 10));
  device.TakeEvents();
  device.Crash();
  ASSERT_TRUE(device.failed());
  const SsdDevice::EventEstimate estimate = device.EstimateNextEvent();
  EXPECT_EQ(estimate.opages_to_gc_pressure, 0u);
  EXPECT_EQ(estimate.opages_to_wear_event, 0u);
  EXPECT_FALSE(estimate.lifecycle_pending);
}

}  // namespace
}  // namespace salamander
