// Crash-during-drain at the device boundary: an explicit Crash() while
// mDisks sit in their grace window must fan out kDecommissioned for every
// non-decommissioned mDisk (draining ones lose the window), and TakeEvents()
// must be idempotent — each event delivered once, re-drains empty, and
// injected duplication bounded to exactly one extra copy per event.
#include <gtest/gtest.h>

#include <memory>

#include "ssd/ssd_device.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

// A fast-wearing ShrinkS device with grace-period drains; `faults` may be
// empty (injector attached either way, mirroring production wiring).
SsdDevice MakeDrainingDevice(const FaultConfig& faults) {
  SsdConfig config = TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(),
                                   /*nominal_pec=*/25);
  config.minidisk.drain_before_decommission = true;
  config.minidisk.max_draining = 3;
  config.faults = std::make_shared<FaultInjector>(faults, /*stream_id=*/0);
  return SsdDevice(SsdKind::kShrinkS, config);
}

// Ages the device until wear opens the first grace window (a drain starts).
// Polls events along the way like a real host would.
void AgeUntilDraining(SsdDevice& device,
                      std::vector<MinidiskEvent>* drained_events) {
  uint64_t step = 0;
  while (device.manager().draining_minidisks() == 0 && step < 2000000 &&
         !device.failed()) {
    const MinidiskId mdisk = static_cast<MinidiskId>(step % 12);
    if (device.IsMinidiskLive(mdisk)) {
      (void)device.Write(mdisk, step % 64);
    }
    if (step % 4096 == 0) {
      const std::vector<MinidiskEvent> events = device.TakeEvents();
      drained_events->insert(drained_events->end(), events.begin(),
                             events.end());
    }
    ++step;
  }
  ASSERT_GT(device.manager().draining_minidisks(), 0u);
  ASSERT_FALSE(device.failed());
}

TEST(CrashDrainTest, CrashMidDrainDecommissionsDrainingMdisks) {
  SsdDevice device = MakeDrainingDevice(FaultConfig{});
  std::vector<MinidiskEvent> pre_crash;
  AgeUntilDraining(device, &pre_crash);
  const uint64_t draining = device.manager().draining_minidisks();

  device.Crash();
  EXPECT_TRUE(device.failed());
  EXPECT_EQ(device.live_capacity_bytes(), 0u);

  // The brick fan-out covers every mDisk not already decommissioned —
  // including the ones whose grace window the crash just destroyed.
  const std::vector<MinidiskEvent> events = device.TakeEvents();
  uint64_t decommissions = 0;
  for (const MinidiskEvent& event : events) {
    decommissions += event.type == MinidiskEventType::kDecommissioned ? 1 : 0;
  }
  EXPECT_GE(decommissions, draining);
  EXPECT_GT(decommissions, 0u);

  // Post-crash I/O fails closed with the device-failed code.
  EXPECT_EQ(device.Write(0, 0).status().code(), StatusCode::kDeviceFailed);
  EXPECT_EQ(device.Read(0, 0).status().code(), StatusCode::kDeviceFailed);
  EXPECT_EQ(device.AckDrain(0).code(), StatusCode::kDeviceFailed);
}

TEST(CrashDrainTest, TakeEventsAfterCrashIsIdempotent) {
  SsdDevice device = MakeDrainingDevice(FaultConfig{});
  std::vector<MinidiskEvent> pre_crash;
  AgeUntilDraining(device, &pre_crash);

  device.Crash();
  const std::vector<MinidiskEvent> first = device.TakeEvents();
  EXPECT_FALSE(first.empty());
  // Events are consumed by delivery: re-drains return nothing, and a second
  // Crash() is a no-op that must not re-emit the brick fan-out.
  EXPECT_TRUE(device.TakeEvents().empty());
  device.Crash();
  EXPECT_TRUE(device.TakeEvents().empty());
  EXPECT_TRUE(device.TakeEvents().empty());
}

// Injected duplication on the brick fan-out: every kDecommissioned arrives
// exactly twice, back to back, and the re-drain is still empty — the
// duplicate is created at delivery time, not left in the queue.
TEST(CrashDrainTest, DuplicatedBrickEventsDrainIdempotently) {
  FaultConfig faults;
  faults.event_duplicate = 1.0;
  SsdDevice device = MakeDrainingDevice(faults);
  std::vector<MinidiskEvent> pre_crash;
  AgeUntilDraining(device, &pre_crash);

  device.Crash();
  const std::vector<MinidiskEvent> events = device.TakeEvents();
  ASSERT_FALSE(events.empty());
  ASSERT_EQ(events.size() % 2, 0u);
  for (size_t i = 0; i < events.size(); i += 2) {
    EXPECT_EQ(events[i].mdisk, events[i + 1].mdisk);
    EXPECT_EQ(events[i].type, events[i + 1].type);
  }
  EXPECT_TRUE(device.TakeEvents().empty());
}

// The injected crash (kCrashDuringDrain at the poll boundary) and an
// explicit Crash() race to the same brick path; whichever fires first, the
// fan-out is emitted exactly once.
TEST(CrashDrainTest, InjectedAndExplicitCrashEmitBrickEventsOnce) {
  FaultConfig faults;
  faults.crash_during_drain = 1.0;
  SsdDevice device = MakeDrainingDevice(faults);
  uint64_t step = 0;
  while (device.manager().draining_minidisks() == 0 && step < 2000000 &&
         !device.failed()) {
    const MinidiskId mdisk = static_cast<MinidiskId>(step % 12);
    if (device.IsMinidiskLive(mdisk)) {
      (void)device.Write(mdisk, step % 64);
    }
    ++step;
  }
  ASSERT_GT(device.manager().draining_minidisks(), 0u);
  ASSERT_FALSE(device.failed());

  // This poll finds a draining mDisk and fires the injected crash.
  const std::vector<MinidiskEvent> events = device.TakeEvents();
  EXPECT_TRUE(device.failed());
  uint64_t decommissions = 0;
  for (const MinidiskEvent& event : events) {
    decommissions += event.type == MinidiskEventType::kDecommissioned ? 1 : 0;
  }
  EXPECT_GT(decommissions, 0u);
  // An explicit crash afterwards adds nothing.
  device.Crash();
  EXPECT_TRUE(device.TakeEvents().empty());
}

}  // namespace
}  // namespace salamander
