// Event-channel faults at the device boundary: injected drops, duplicates,
// delivery delays, crash-during-drain, and the bounded event queue with its
// overflow counter.
#include <gtest/gtest.h>

#include <memory>

#include "ssd/ssd_device.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

SsdDevice MakeFaultyDevice(const FaultConfig& faults,
                           uint32_t nominal_pec = 1000000) {
  SsdConfig config =
      TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), nominal_pec);
  config.faults = std::make_shared<FaultInjector>(faults, /*stream_id=*/0);
  return SsdDevice(SsdKind::kShrinkS, config);
}

// Format queues one kCreated per mDisk (12 on the tiny geometry) — a handy
// deterministic event burst for exercising the channel.
TEST(SsdEventFaultsTest, InjectedDropsSuppressDeliveryNotOverflowCounter) {
  FaultConfig faults;
  faults.event_drop = 1.0;
  SsdDevice device = MakeFaultyDevice(faults);
  EXPECT_TRUE(device.TakeEvents().empty());
  // Channel loss is the injector's doing, not queue overflow: the overflow
  // counter must stay untouched so the diFS only resyncs for real overflow.
  EXPECT_EQ(device.dropped_events(), 0u);
  EXPECT_EQ(device.faults()->stats().count(FaultSite::kEventDrop), 12u);
}

TEST(SsdEventFaultsTest, DuplicatedEventsDeliverBackToBack) {
  FaultConfig faults;
  faults.event_duplicate = 1.0;
  SsdDevice device = MakeFaultyDevice(faults);
  const std::vector<MinidiskEvent> events = device.TakeEvents();
  ASSERT_EQ(events.size(), 24u);
  for (size_t i = 0; i < events.size(); i += 2) {
    EXPECT_EQ(events[i].mdisk, events[i + 1].mdisk);
    EXPECT_EQ(events[i].type, events[i + 1].type);
  }
}

TEST(SsdEventFaultsTest, DelayedEventsMatureOnePollLater) {
  FaultConfig faults;
  faults.event_delay = 1.0;
  faults.event_delay_waves_max = 1;  // every event delayed exactly one wave
  SsdDevice device = MakeFaultyDevice(faults);
  EXPECT_TRUE(device.TakeEvents().empty());  // all 12 held back
  const std::vector<MinidiskEvent> late = device.TakeEvents();
  ASSERT_EQ(late.size(), 12u);
  for (const MinidiskEvent& event : late) {
    EXPECT_EQ(event.type, MinidiskEventType::kCreated);
  }
  EXPECT_TRUE(device.TakeEvents().empty());  // delivered exactly once
}

TEST(SsdEventFaultsTest, CrashDuringDrainBricksAtThePollBoundary) {
  FaultConfig faults;
  faults.crash_during_drain = 1.0;
  SsdConfig config = TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(),
                                   /*nominal_pec=*/25);
  config.minidisk.drain_before_decommission = true;
  config.minidisk.max_draining = 3;
  config.faults = std::make_shared<FaultInjector>(faults, /*stream_id=*/0);
  SsdDevice device(SsdKind::kShrinkS, config);

  // Age without polling until wear opens the first grace window. The crash
  // site only fires on a poll of a draining device, so the device must stay
  // healthy until then.
  uint64_t step = 0;
  while (device.manager().draining_minidisks() == 0 && step < 2000000 &&
         !device.failed()) {
    const MinidiskId mdisk = static_cast<MinidiskId>(step % 12);
    if (device.IsMinidiskLive(mdisk)) {
      (void)device.Write(mdisk, step % 64);
    }
    ++step;
  }
  ASSERT_GT(device.manager().draining_minidisks(), 0u);
  ASSERT_FALSE(device.failed());

  const std::vector<MinidiskEvent> events = device.TakeEvents();
  EXPECT_TRUE(device.failed());
  EXPECT_EQ(device.faults()->stats().count(FaultSite::kCrashDuringDrain), 1u);
  // The brick fan-out reports every non-decommissioned mDisk — including the
  // draining one whose grace window the crash destroyed.
  uint64_t decommissions = 0;
  for (const MinidiskEvent& event : events) {
    decommissions += event.type == MinidiskEventType::kDecommissioned ? 1 : 0;
  }
  EXPECT_GT(decommissions, 0u);
}

// The bounded queue drops beyond max_pending_events and counts every drop —
// both in the manager's queue (format burst) and the device's own brick
// queue — so a host that sees the counter move knows to resync.
TEST(SsdEventFaultsTest, BoundedQueueDropsOverflowAndCountsIt) {
  SsdConfig config = TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), 1000000);
  config.minidisk.max_pending_events = 4;
  SsdDevice device(SsdKind::kShrinkS, config);
  // Format produced 12 kCreated; only 4 fit.
  EXPECT_EQ(device.TakeEvents().size(), 4u);
  EXPECT_EQ(device.dropped_events(), 8u);

  // A crash fans out 12 kDecommissioned through the device's own queue,
  // which honors the same bound.
  device.Crash();
  const std::vector<MinidiskEvent> events = device.TakeEvents();
  EXPECT_EQ(events.size(), 4u);
  for (const MinidiskEvent& event : events) {
    EXPECT_EQ(event.type, MinidiskEventType::kDecommissioned);
  }
  EXPECT_EQ(device.dropped_events(), 16u);
}

TEST(SsdEventFaultsTest, TransientUnavailabilitySurfacesOnHostIo) {
  FaultConfig faults;
  faults.transient_unavailable = 1.0;
  SsdDevice device = MakeFaultyDevice(faults);
  device.TakeEvents();
  EXPECT_EQ(device.Write(0, 0).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(device.Read(0, 0).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(device.ReadRange(0, 0, 2).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(device.AckDrain(0).code(), StatusCode::kUnavailable);
  // The device is not failed — the condition is transient by contract.
  EXPECT_FALSE(device.failed());
}

}  // namespace
}  // namespace salamander
