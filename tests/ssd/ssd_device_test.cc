#include "ssd/ssd_device.h"

#include <gtest/gtest.h>

#include "tests/testing/device_builder.h"
#include "workload/aging.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

SsdDevice MakeDevice(SsdKind kind, uint32_t nominal_pec = 1000000,
                     uint64_t seed = 7) {
  return SsdDevice(kind, TestSsdConfig(kind, TinyGeometry(), nominal_pec,
                                       seed));
}

// Ages a device until failure; returns total host oPages written (the
// lifetime in writes).
uint64_t AgeToDeath(SsdDevice& device, uint64_t seed, uint64_t cap = 5000000) {
  AgingDriver driver(&device, seed);
  while (!device.failed() && driver.total_written() < cap) {
    AgingResult result = driver.WriteOPages(5000);
    if (result.device_failed) {
      break;
    }
  }
  return driver.total_written();
}

TEST(SsdDeviceTest, KindNames) {
  EXPECT_EQ(SsdKindName(SsdKind::kBaseline), "baseline");
  EXPECT_EQ(SsdKindName(SsdKind::kCvss), "cvss");
  EXPECT_EQ(SsdKindName(SsdKind::kShrinkS), "shrinks");
  EXPECT_EQ(SsdKindName(SsdKind::kRegenS), "regens");
}

TEST(SsdDeviceTest, BaselineExposesSingleVolume) {
  SsdDevice device = MakeDevice(SsdKind::kBaseline);
  EXPECT_EQ(device.total_minidisks(), 1u);
  EXPECT_EQ(device.live_capacity_bytes(), 768u * 4096);  // raw - reserve
}

TEST(SsdDeviceTest, CvssExposesBlockSizedUnits) {
  SsdDevice device = MakeDevice(SsdKind::kCvss);
  // 64 oPages per block, 768 available -> 12 units.
  EXPECT_EQ(device.msize_opages(), 64u);
  EXPECT_EQ(device.total_minidisks(), 12u);
}

TEST(SsdDeviceTest, SalamanderExposesMinidisks) {
  SsdDevice shrinks = MakeDevice(SsdKind::kShrinkS);
  SsdDevice regens = MakeDevice(SsdKind::kRegenS);
  EXPECT_EQ(shrinks.total_minidisks(), 12u);
  EXPECT_EQ(regens.total_minidisks(), 12u);
  EXPECT_EQ(shrinks.ftl().config().max_usable_level, 0u);
  EXPECT_EQ(regens.ftl().config().max_usable_level, 1u);
}

TEST(SsdDeviceTest, WriteReadThroughDevice) {
  SsdDevice device = MakeDevice(SsdKind::kRegenS);
  device.TakeEvents();
  ASSERT_TRUE(device.Write(0, 1).ok());
  EXPECT_TRUE(device.Read(0, 1).ok());
  EXPECT_EQ(device.bytes_written(), 4096u);
}

TEST(SsdDeviceTest, BaselineBricksAtBadBlockThreshold) {
  SsdDevice device = MakeDevice(SsdKind::kBaseline, /*nominal_pec=*/15);
  AgeToDeath(device, 21);
  EXPECT_TRUE(device.failed());
  // Brick rule: 2.5% of 16 blocks is < 1 block, so the first retired block
  // bricks the device.
  EXPECT_GE(device.ftl().retired_blocks(), 1u);
  EXPECT_EQ(device.live_capacity_bytes(), 0u);
}

TEST(SsdDeviceTest, BrickedDeviceRejectsIo) {
  SsdDevice device = MakeDevice(SsdKind::kBaseline, /*nominal_pec=*/15);
  AgeToDeath(device, 22);
  ASSERT_TRUE(device.failed());
  EXPECT_EQ(device.Write(0, 0).status().code(), StatusCode::kDeviceFailed);
  EXPECT_EQ(device.Read(0, 0).status().code(), StatusCode::kDeviceFailed);
  EXPECT_EQ(device.ReadRange(0, 0, 4).status().code(),
            StatusCode::kDeviceFailed);
}

TEST(SsdDeviceTest, BrickEmitsEventsForAllLiveMinidisks) {
  SsdDevice device = MakeDevice(SsdKind::kBaseline, /*nominal_pec=*/15);
  AgingDriver driver(&device, 23);
  while (!device.failed()) {
    if (driver.WriteOPages(2000).device_failed) {
      break;
    }
  }
  driver.tracker();  // tracker consumed events including the brick fan-out
  EXPECT_TRUE(driver.tracker().empty());
  EXPECT_EQ(driver.tracker().decommissioned_seen(),
            driver.tracker().created_seen());
}

TEST(SsdDeviceTest, ShrinkSLosesCapacityGradually) {
  SsdDevice device = MakeDevice(SsdKind::kShrinkS, /*nominal_pec=*/15);
  const uint64_t initial = device.live_capacity_bytes();
  AgingDriver driver(&device, 31);
  uint64_t mid_capacity = 0;
  while (!device.failed() && !driver.tracker().empty()) {
    if (driver.WriteOPages(5000).device_failed) {
      break;
    }
    const uint64_t capacity = device.live_capacity_bytes();
    if (capacity < initial && capacity > 0 && mid_capacity == 0) {
      mid_capacity = capacity;  // witnessed a partially-degraded state
    }
  }
  // Unlike baseline's cliff, ShrinkS passes through intermediate capacities.
  EXPECT_GT(mid_capacity, 0u);
  EXPECT_LT(mid_capacity, initial);
}

struct LifetimeRow {
  SsdKind kind;
  uint64_t writes;
};

// The paper's headline ordering (§4): baseline < CVSS <= ShrinkS < RegenS.
// Uses the 64-block geometry: with very few blocks the retirement-granularity
// differences between baseline and CVSS cannot express themselves.
TEST(SsdDeviceLifetimeTest, LifetimeOrderingAcrossKinds) {
  std::vector<LifetimeRow> rows;
  for (SsdKind kind : {SsdKind::kBaseline, SsdKind::kCvss, SsdKind::kShrinkS,
                       SsdKind::kRegenS}) {
    // Average over a few seeds to damp variance from per-page lognormals.
    uint64_t total = 0;
    for (uint64_t seed : {101u, 202u, 303u}) {
      SsdDevice device(kind,
                       TestSsdConfig(kind, testing_util::SmallGeometry(),
                                     /*nominal_pec=*/20, seed));
      total += AgeToDeath(device, seed * 7);
    }
    rows.push_back({kind, total / 3});
  }
  ASSERT_EQ(rows.size(), 4u);
  const uint64_t baseline = rows[0].writes;
  const uint64_t cvss = rows[1].writes;
  const uint64_t shrinks = rows[2].writes;
  const uint64_t regens = rows[3].writes;
  EXPECT_GT(cvss, baseline);
  EXPECT_GT(shrinks, cvss);
  EXPECT_GT(regens, shrinks);
  // RegenS's gain over ShrinkS comes from L1 revival; the paper projects
  // roughly +50% PEC for L1 pages, so demand a clearly material gain.
  EXPECT_GT(static_cast<double>(regens) / static_cast<double>(shrinks), 1.1);
}

TEST(SsdDeviceTest, RegenSEmitsCreatedEventsUnderWear) {
  SsdDevice device = MakeDevice(SsdKind::kRegenS, /*nominal_pec=*/15);
  AgingDriver driver(&device, 41);
  uint64_t created_initial = driver.tracker().created_seen();
  while (!device.failed() && driver.total_written() < 3000000) {
    if (driver.WriteOPages(5000).device_failed) {
      break;
    }
    if (driver.tracker().created_seen() > created_initial) {
      break;  // a regenerated mDisk appeared
    }
  }
  EXPECT_GT(driver.tracker().created_seen(), created_initial);
}

TEST(SsdDeviceTest, DeterministicLifetimeForSameSeed) {
  SsdDevice a(SsdKind::kShrinkS,
              TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), 15, 99));
  SsdDevice b(SsdKind::kShrinkS,
              TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), 15, 99));
  EXPECT_EQ(AgeToDeath(a, 5), AgeToDeath(b, 5));
}

}  // namespace
}  // namespace salamander
