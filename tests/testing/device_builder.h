// Shared helpers for building small, fast-aging devices in tests.
//
// Real endurance numbers (thousands of P/E cycles over hundreds of GiB) would
// make unit tests take hours; tests therefore use a small geometry and a wear
// model calibrated to a tiny nominal PEC. The *dynamics* (tiredness ladders,
// Eq. 1/2 bookkeeping, GC interactions) are identical — only the time axis is
// compressed.
#ifndef SALAMANDER_TESTS_TESTING_DEVICE_BUILDER_H_
#define SALAMANDER_TESTS_TESTING_DEVICE_BUILDER_H_

#include "ecc/tiredness.h"
#include "flash/geometry.h"
#include "flash/wear_model.h"
#include "ftl/ftl.h"
#include "ssd/ssd_device.h"

namespace salamander {
namespace testing_util {

// 16 blocks x 16 fPages x 4 oPages = 1024 oPages = 4 MiB raw.
inline FlashGeometry TinyGeometry() {
  FlashGeometry g;
  g.channels = 1;
  g.dies_per_channel = 1;
  g.planes_per_die = 1;
  g.blocks_per_plane = 16;
  g.fpages_per_block = 16;
  return g;
}

// 64 blocks x 32 fPages x 4 oPages = 8192 oPages = 32 MiB raw.
inline FlashGeometry SmallGeometry() {
  return FlashGeometry::Small();
}

// Wear model whose median page reaches the L0 retirement threshold after
// `nominal_pec` cycles, for the given ECC geometry.
inline WearModelConfig FastWear(const FPageEccGeometry& ecc,
                                uint32_t nominal_pec,
                                double page_sigma = 0.35) {
  const double l0_rber = ComputeTirednessLevel(ecc, 0).max_tolerable_rber;
  return WearModel::Calibrate(l0_rber, nominal_pec, /*exponent=*/2.7,
                              /*rber_floor=*/1e-7, page_sigma);
}

inline FtlConfig TestFtlConfig(const FlashGeometry& geometry,
                               uint32_t nominal_pec, uint64_t seed = 7) {
  FtlConfig config;
  config.geometry = geometry;
  config.ecc_geometry = FPageEccGeometry{};
  config.wear = FastWear(config.ecc_geometry, nominal_pec);
  config.seed = seed;
  return config;
}

inline SsdConfig TestSsdConfig(SsdKind kind, const FlashGeometry& geometry,
                               uint32_t nominal_pec, uint64_t seed = 7,
                               unsigned regen_max_level = 1) {
  FPageEccGeometry ecc;
  SsdConfig config =
      MakeSsdConfig(kind, geometry, FastWear(ecc, nominal_pec),
                    FlashLatencyConfig{}, ecc, seed, regen_max_level);
  // Small devices: mDisks of 64 oPages (256 KiB) so shrink/regeneration
  // events occur at test scale.
  if (kind == SsdKind::kShrinkS || kind == SsdKind::kRegenS) {
    config.minidisk.msize_opages = 64;
  }
  return config;
}

}  // namespace testing_util
}  // namespace salamander

#endif  // SALAMANDER_TESTS_TESTING_DEVICE_BUILDER_H_
