#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace salamander {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsWarning) {
  LogLevelGuard guard;
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST(LoggingTest, SetLevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LoggingTest, MacroCompilesAndStreams) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);  // suppress actual output
  // The streamed expression must still be well-formed for all levels.
  SALA_LOG(kDebug) << "value=" << 42;
  SALA_LOG(kInfo) << "pi=" << 3.14;
  SALA_LOG(kWarning) << "warn " << std::string("msg");
}

TEST(UnitsTest, ByteConstants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024);
  EXPECT_EQ(kGiB, 1024u * 1024 * 1024);
  EXPECT_EQ(kTiB, 1024ull * kGiB);
}

TEST(UnitsTest, TimeConstants) {
  EXPECT_EQ(kSecond, 1000000000ull);
  EXPECT_EQ(kDay, 86400ull * kSecond);
  EXPECT_EQ(kYear, 365ull * kDay);
}

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(ToDays(kDay), 1.0);
  EXPECT_DOUBLE_EQ(ToDays(kDay / 2), 0.5);
  EXPECT_DOUBLE_EQ(ToYears(kYear), 1.0);
  EXPECT_DOUBLE_EQ(ToGiB(kGiB), 1.0);
  EXPECT_DOUBLE_EQ(ToGiB(512 * kMiB), 0.5);
}

}  // namespace
}  // namespace salamander
