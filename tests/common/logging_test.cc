#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace salamander {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsWarning) {
  LogLevelGuard guard;
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST(LoggingTest, SetLevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LoggingTest, MacroCompilesAndStreams) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);  // suppress actual output
  // The streamed expression must still be well-formed for all levels.
  SALA_LOG(kDebug) << "value=" << 42;
  SALA_LOG(kInfo) << "pi=" << 3.14;
  SALA_LOG(kWarning) << "warn " << std::string("msg");
}

TEST(LoggingTest, EveryNStateLogsFirstOfEachWindow) {
  log_internal::EveryNState state;
  uint64_t occurrence = 0;
  int logged = 0;
  for (int i = 0; i < 25; ++i) {
    if (state.ShouldLog(10, occurrence)) {
      ++logged;
      EXPECT_EQ(occurrence % 10, 1u);  // occurrences 1, 11, 21
    }
  }
  EXPECT_EQ(logged, 3);
  EXPECT_EQ(occurrence, 25u);  // every call counted, logged or not
}

TEST(LoggingTest, EveryNStateWithNOneLogsEverything) {
  log_internal::EveryNState state;
  uint64_t occurrence = 0;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(state.ShouldLog(1, occurrence));
  }
  EXPECT_EQ(occurrence, 5u);
}

TEST(LoggingTest, LogEveryNEmitsFirstAndEveryNth) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  for (int i = 0; i < 25; ++i) {
    SALA_LOG_EVERY_N(kWarning, 10) << "flood event";
  }
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[occurrence 1] flood event"), std::string::npos);
  EXPECT_NE(out.find("[occurrence 11] flood event"), std::string::npos);
  EXPECT_NE(out.find("[occurrence 21] flood event"), std::string::npos);
  EXPECT_EQ(out.find("[occurrence 2]"), std::string::npos);
  // Suppressed occurrences leave no line at all: exactly 3 emissions.
  size_t lines = 0;
  for (char c : out) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 3u);
}

TEST(LoggingTest, LogEveryNRespectsLevelThreshold) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  for (int i = 0; i < 5; ++i) {
    SALA_LOG_EVERY_N(kWarning, 2) << "should be invisible";
  }
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(UnitsTest, ByteConstants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024);
  EXPECT_EQ(kGiB, 1024u * 1024 * 1024);
  EXPECT_EQ(kTiB, 1024ull * kGiB);
}

TEST(UnitsTest, TimeConstants) {
  EXPECT_EQ(kSecond, 1000000000ull);
  EXPECT_EQ(kDay, 86400ull * kSecond);
  EXPECT_EQ(kYear, 365ull * kDay);
}

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(ToDays(kDay), 1.0);
  EXPECT_DOUBLE_EQ(ToDays(kDay / 2), 0.5);
  EXPECT_DOUBLE_EQ(ToYears(kYear), 1.0);
  EXPECT_DOUBLE_EQ(ToGiB(kGiB), 1.0);
  EXPECT_DOUBLE_EQ(ToGiB(512 * kMiB), 0.5);
}

}  // namespace
}  // namespace salamander
