#include "common/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace salamander {
namespace {

TEST(EventQueueTest, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.Now(), 0u);
  EXPECT_FALSE(q.Step());
}

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now(), 30u);
}

TEST(EventQueueTest, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(5, [&] { order.push_back(1); });
  q.ScheduleAt(5, [&] { order.push_back(2); });
  q.ScheduleAt(5, [&] { order.push_back(3); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime fired_at = 0;
  q.ScheduleAt(100, [&] {
    q.ScheduleAfter(50, [&] { fired_at = q.Now(); });
  });
  q.Run();
  EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  uint64_t id = q.ScheduleAt(10, [&] { fired = true; });
  q.Cancel(id);
  q.Run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelUnknownIdIsNoOp) {
  EventQueue q;
  q.ScheduleAt(10, [] {});
  q.Cancel(99999);
  EXPECT_EQ(q.pending_events(), 1u);
  q.Run();
}

TEST(EventQueueTest, CancelFiredIdIsNoOp) {
  EventQueue q;
  uint64_t id = q.ScheduleAt(10, [] {});
  q.Run();
  q.Cancel(id);  // must not underflow the live counter
  EXPECT_EQ(q.pending_events(), 0u);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&] { ++fired; });
  q.ScheduleAt(20, [&] { ++fired; });
  q.ScheduleAt(30, [&] { ++fired; });
  q.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.Now(), 20u);
  EXPECT_EQ(q.pending_events(), 1u);
  q.RunUntil(100);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.RunUntil(500);
  EXPECT_EQ(q.Now(), 500u);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      q.ScheduleAfter(1, chain);
    }
  };
  q.ScheduleAt(0, chain);
  q.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.Now(), 4u);
}

TEST(EventQueueTest, PendingEventsTracksLiveCount) {
  EventQueue q;
  uint64_t a = q.ScheduleAt(1, [] {});
  q.ScheduleAt(2, [] {});
  EXPECT_EQ(q.pending_events(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.pending_events(), 1u);
  q.Step();
  EXPECT_EQ(q.pending_events(), 0u);
}

}  // namespace
}  // namespace salamander
