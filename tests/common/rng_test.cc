#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace salamander {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
  EXPECT_EQ(rng.UniformU64(0), 0u);
}

TEST(RngTest, UniformU64IsRoughlyUniform) {
  Rng rng(99);
  constexpr uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.UniformU64(kBuckets)];
  }
  // Each bucket expects 10000; allow 5 sigma (~sqrt(9000) ~ 95 -> 475).
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, 500) << "bucket " << b;
  }
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInRange(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
    saw_lo |= (v == 10);
    saw_hi |= (v == 12);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(11);
  double sum = 0;
  double sum_sq = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.Normal(5.0, 2.0);
  }
  EXPECT_NEAR(sum / kN, 5.0, 0.05);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(17);
  // Median of LogNormal(mu, sigma) is exp(mu).
  constexpr int kN = 100001;
  std::vector<double> samples(kN);
  for (auto& s : samples) {
    s = rng.LogNormal(1.0, 0.5);
  }
  std::nth_element(samples.begin(), samples.begin() + kN / 2, samples.end());
  EXPECT_NEAR(samples[kN / 2], std::exp(1.0), 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.Exponential(2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, BinomialEdgeCases) {
  Rng rng(31);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.Binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.Binomial(100, 1.0), 100u);
}

// Binomial mean across all three internal sampling regimes
// (exact trials, Poisson limit, normal approximation).
struct BinomialCase {
  uint64_t n;
  double p;
};

class RngBinomialTest : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(RngBinomialTest, MeanMatches) {
  const auto [n, p] = GetParam();
  Rng rng(1234 + n);
  double sum = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    uint64_t draw = rng.Binomial(n, p);
    ASSERT_LE(draw, n);
    sum += static_cast<double>(draw);
  }
  const double mean = static_cast<double>(n) * p;
  const double sigma = std::sqrt(mean * (1 - p) / kTrials);
  EXPECT_NEAR(sum / kTrials, mean, std::max(6 * sigma, 0.02 * mean + 0.05));
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, RngBinomialTest,
    ::testing::Values(BinomialCase{32, 0.25},        // exact path
                      BinomialCase{100000, 1e-4},    // Poisson path
                      BinomialCase{100000, 0.002},   // normal path
                      BinomialCase{131072, 0.001}),  // flash page regime
    [](const ::testing::TestParamInfo<BinomialCase>& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_p" +
             std::to_string(static_cast<int>(param_info.param.p * 1e6));
    });

TEST(RngTest, PoissonMean) {
  Rng rng(37);
  for (double lambda : {0.5, 5.0, 50.0}) {
    double sum = 0;
    constexpr int kN = 50000;
    for (int i = 0; i < kN; ++i) {
      sum += static_cast<double>(rng.Poisson(lambda));
    }
    EXPECT_NEAR(sum / kN, lambda, 0.05 * lambda + 0.05) << "lambda=" << lambda;
  }
}

TEST(RngTest, ForkProducesIndependentDeterministicStream) {
  Rng parent1(55);
  Rng parent2(55);
  Rng child1 = parent1.Fork();
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child1.NextU64(), child2.NextU64());
  }
  // Child stream differs from parent's continued stream.
  Rng parent3(55);
  Rng child3 = parent3.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent3.NextU64() == child3.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace salamander
