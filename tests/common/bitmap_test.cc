#include "common/bitmap.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace salamander {
namespace {

TEST(BitmapTest, StartsClear) {
  Bitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.CountSet(), 0u);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(b.Test(i));
  }
}

TEST(BitmapTest, InitialTrueRespectsSize) {
  Bitmap b(70, true);
  EXPECT_EQ(b.CountSet(), 70u);
}

TEST(BitmapTest, SetClearAssign) {
  Bitmap b(128);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(127);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(127));
  EXPECT_EQ(b.CountSet(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  b.Assign(63, true);
  EXPECT_TRUE(b.Test(63));
  b.Assign(63, false);
  EXPECT_FALSE(b.Test(63));
}

TEST(BitmapTest, CountSetInRange) {
  Bitmap b(256);
  for (uint64_t i = 0; i < 256; i += 2) {
    b.Set(i);
  }
  EXPECT_EQ(b.CountSetInRange(0, 256), 128u);
  EXPECT_EQ(b.CountSetInRange(0, 10), 5u);
  EXPECT_EQ(b.CountSetInRange(1, 2), 0u);
  EXPECT_EQ(b.CountSetInRange(60, 70), 5u);
  EXPECT_EQ(b.CountSetInRange(10, 10), 0u);
  EXPECT_EQ(b.CountSetInRange(300, 400), 0u);
  EXPECT_EQ(b.CountSetInRange(250, 400), 3u);  // clamped to size
}

TEST(BitmapTest, CountSetInRangeCrossWordBoundaries) {
  Bitmap b(200);
  b.Set(63);
  b.Set(64);
  b.Set(65);
  EXPECT_EQ(b.CountSetInRange(63, 66), 3u);
  EXPECT_EQ(b.CountSetInRange(64, 65), 1u);
  EXPECT_EQ(b.CountSetInRange(0, 64), 1u);
}

TEST(BitmapTest, FindFirstSet) {
  Bitmap b(300);
  EXPECT_EQ(b.FindFirstSet(), 300u);
  b.Set(137);
  EXPECT_EQ(b.FindFirstSet(), 137u);
  EXPECT_EQ(b.FindFirstSet(137), 137u);
  EXPECT_EQ(b.FindFirstSet(138), 300u);
  b.Set(5);
  EXPECT_EQ(b.FindFirstSet(), 5u);
  EXPECT_EQ(b.FindFirstSet(6), 137u);
}

TEST(BitmapTest, FindFirstClear) {
  Bitmap b(130, true);
  EXPECT_EQ(b.FindFirstClear(), 130u);
  b.Clear(64);
  EXPECT_EQ(b.FindFirstClear(), 64u);
  EXPECT_EQ(b.FindFirstClear(65), 130u);
  b.Clear(0);
  EXPECT_EQ(b.FindFirstClear(), 0u);
  EXPECT_EQ(b.FindFirstClear(1), 64u);
}

TEST(BitmapTest, SetAllClearAll) {
  Bitmap b(100);
  b.SetAll();
  EXPECT_EQ(b.CountSet(), 100u);
  b.ClearAll();
  EXPECT_EQ(b.CountSet(), 0u);
}

TEST(BitmapTest, ResizePreservesNothingButSetsValue) {
  Bitmap b(10);
  b.Set(3);
  b.Resize(20, true);
  EXPECT_EQ(b.size(), 20u);
  EXPECT_EQ(b.CountSet(), 20u);
}

TEST(BitmapTest, RandomizedAgainstReference) {
  Rng rng(4242);
  constexpr uint64_t kSize = 1000;
  Bitmap b(kSize);
  std::vector<bool> ref(kSize, false);
  for (int op = 0; op < 10000; ++op) {
    const uint64_t i = rng.UniformU64(kSize);
    if (rng.Bernoulli(0.5)) {
      b.Set(i);
      ref[i] = true;
    } else {
      b.Clear(i);
      ref[i] = false;
    }
  }
  uint64_t expected = 0;
  for (uint64_t i = 0; i < kSize; ++i) {
    EXPECT_EQ(b.Test(i), ref[i]) << "index " << i;
    expected += ref[i] ? 1 : 0;
  }
  EXPECT_EQ(b.CountSet(), expected);
  // Cross-check range counts at random boundaries.
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t lo = rng.UniformU64(kSize);
    uint64_t hi = lo + rng.UniformU64(kSize - lo + 1);
    uint64_t want = 0;
    for (uint64_t i = lo; i < hi; ++i) {
      want += ref[i] ? 1 : 0;
    }
    EXPECT_EQ(b.CountSetInRange(lo, hi), want) << lo << ".." << hi;
  }
}

}  // namespace
}  // namespace salamander
