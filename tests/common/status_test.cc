#include "common/status.h"

#include <gtest/gtest.h>

namespace salamander {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = DataLossError("page 42 uncorrectable");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "page 42 uncorrectable");
  EXPECT_EQ(s.ToString(), "DATA_LOSS: page 42 uncorrectable");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(DataLossError("a"), DataLossError("b"));
  EXPECT_FALSE(DataLossError("a") == NotFoundError("a"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> so(42);
  ASSERT_TRUE(so.ok());
  EXPECT_EQ(so.value(), 42);
  EXPECT_EQ(*so, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> so = NotFoundError("nope");
  EXPECT_FALSE(so.ok());
  EXPECT_EQ(so.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(so.value_or(-1), -1);
}

// value() on an error must abort in EVERY build mode with the offending
// status on stderr — silently reading the empty optional would be UB, and
// an assert() would vanish under NDEBUG (exactly the mode benches run in).
TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> so = DataLossError("page 42 uncorrectable");
  EXPECT_DEATH((void)so.value(),
               "StatusOr::value\\(\\) called on error status: "
               "DATA_LOSS: page 42 uncorrectable");
}

TEST(StatusOrDeathTest, DereferenceOnErrorAborts) {
  StatusOr<int> so = UnavailableError("busy plane");
  EXPECT_DEATH((void)*so, "UNAVAILABLE: busy plane");
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> so(std::make_unique<int>(7));
  ASSERT_TRUE(so.ok());
  auto ptr = std::move(so).value();
  EXPECT_EQ(*ptr, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Status Quarter(int x, int* out) {
  SALA_ASSIGN_OR_RETURN(int half, Half(x));
  SALA_ASSIGN_OR_RETURN(int quarter, Half(half));
  *out = quarter;
  return OkStatus();
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(Quarter(8, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_EQ(Quarter(6, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(7, &out).code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return OutOfRangeError("negative");
  }
  return OkStatus();
}

Status CheckAll(int a, int b) {
  SALA_RETURN_IF_ERROR(FailIfNegative(a));
  SALA_RETURN_IF_ERROR(FailIfNegative(b));
  return OkStatus();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckAll(1, 2).ok());
  EXPECT_EQ(CheckAll(-1, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(CheckAll(1, -2).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace salamander
