#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace salamander {
namespace {

TEST(ThreadPoolTest, InlineModeSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 0u);
  EXPECT_EQ(pool.width(), 1u);
}

TEST(ThreadPoolTest, ZeroResolvesToHardware) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.width(), ThreadPool::HardwareThreads());
}

// Regression: "0 = all hardware threads" must resolve through one shared
// helper, with a floor of 1 even when hardware_concurrency() reports 0, and
// the pool constructor must agree with it exactly.
TEST(ThreadPoolTest, ResolveThreadsClampsAndPassesThrough) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(0), ThreadPool::HardwareThreads());
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7u);
  for (unsigned requested : {0u, 1u, 3u}) {
    ThreadPool pool(requested);
    EXPECT_EQ(pool.width(), ThreadPool::ResolveThreads(requested))
        << "requested " << requested;
  }
}

TEST(ThreadPoolTest, OversubscriptionIsDetectedRelativeToHardware) {
  const unsigned hardware = ThreadPool::HardwareThreads();
  // Requesting exactly the hardware width (directly or via 0) is never
  // oversubscribed; one past it always is.
  EXPECT_FALSE(ThreadPool::Oversubscribed(0));
  EXPECT_FALSE(ThreadPool::Oversubscribed(hardware));
  EXPECT_TRUE(ThreadPool::Oversubscribed(hardware + 1));
  if (hardware > 1) {
    EXPECT_FALSE(ThreadPool::Oversubscribed(1));
  }
}

// An oversubscribed pool (more workers than cores) must still run every task
// exactly once — correctness cannot depend on the host's core count.
TEST(ThreadPoolTest, OversubscribedPoolStillCoversAllWork) {
  const unsigned threads = ThreadPool::HardwareThreads() + 3;
  ThreadPool pool(threads);
  EXPECT_EQ(pool.worker_count(), threads);
  constexpr size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SubmitRunsInline) {
  ThreadPool pool(1);
  int value = 0;
  pool.Submit([&] { value = 42; });
  // Inline mode executes before Submit returns; Wait is a no-op.
  EXPECT_EQ(value, 42);
  pool.Wait();
}

TEST(ThreadPoolTest, SubmitAndWaitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&](size_t begin, size_t end) {
      ASSERT_LE(begin, end);
      ASSERT_LE(end, kN);
      for (size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<uint64_t> sum{0};
  // Fewer items than workers: every item still runs exactly once.
  pool.ParallelFor(3, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(sum.load(), 6u);
}

TEST(ThreadPoolTest, ParallelForChunksAreContiguousAndOrderedPerWorkerMerge) {
  // Deterministic merge pattern: results land in an index-addressed vector,
  // so the outcome is identical for any thread count.
  constexpr size_t kN = 257;  // deliberately not a multiple of any width
  std::vector<uint64_t> reference(kN);
  for (size_t i = 0; i < kN; ++i) {
    reference[i] = i * i;
  }
  for (unsigned threads : {1u, 3u, 5u}) {
    ThreadPool pool(threads);
    std::vector<uint64_t> out(kN, 0);
    pool.ParallelFor(kN, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        out[i] = i * i;
      }
    });
    EXPECT_EQ(out, reference) << "threads " << threads;
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyRounds) {
  // The fleet loop calls ParallelFor once per simulated day; make sure
  // repeated rounds on one pool neither deadlock nor drop work.
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(16, [&](size_t begin, size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200u * 16u);
}

}  // namespace
}  // namespace salamander
