#include "common/histogram.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace salamander {
namespace {

TEST(LogHistogramTest, EmptyHistogram) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.P50(), 0u);
}

TEST(LogHistogramTest, SingleValue) {
  LogHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.Mean(), 1000.0);
  // Quantiles land in the bucket containing 1000; <=3.2% relative error.
  EXPECT_NEAR(static_cast<double>(h.P50()), 1000.0, 35.0);
}

TEST(LogHistogramTest, ZeroValueHasExactBucket) {
  LogHistogram h;
  h.RecordN(0, 10);
  EXPECT_EQ(h.P50(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(LogHistogramTest, MeanIsExact) {
  LogHistogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(LogHistogramTest, QuantileRelativeErrorBounded) {
  LogHistogram h(32);
  Rng rng(77);
  std::vector<uint64_t> values;
  for (int i = 0; i < 50000; ++i) {
    uint64_t v = 1 + rng.UniformU64(1000000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const uint64_t exact = values[static_cast<size_t>(q * (values.size() - 1))];
    const uint64_t approx = h.Quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.05 * static_cast<double>(exact))
        << "q=" << q;
  }
}

TEST(LogHistogramTest, QuantileEdgeValues) {
  LogHistogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Quantile(0.0), 1u);
  EXPECT_EQ(h.Quantile(1.0), 100u);
}

TEST(LogHistogramTest, QuantileOnEmptyHistogramIsZeroForAllQ) {
  LogHistogram h;
  for (double q : {0.0, 0.5, 1.0, -1.0, 2.0}) {
    EXPECT_EQ(h.Quantile(q), 0u) << "q=" << q;
  }
}

TEST(LogHistogramTest, QuantileClampsOutOfRangeAndNaN) {
  LogHistogram h;
  h.Record(10);
  h.Record(1000);
  EXPECT_EQ(h.Quantile(-0.5), h.min());
  EXPECT_EQ(h.Quantile(1.5), h.max());
  EXPECT_EQ(h.Quantile(std::numeric_limits<double>::quiet_NaN()), h.min());
}

TEST(LogHistogramTest, QuantileSingleSampleIsThatSampleAtEveryQ) {
  LogHistogram h;
  h.Record(777);
  EXPECT_EQ(h.Quantile(0.0), 777u);
  EXPECT_EQ(h.Quantile(1.0), 777u);
  // Interior quantiles land in 777's bucket: bounded relative error.
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.5)), 777.0, 777.0 * 0.04);
}

TEST(LogHistogramTest, P999OnEmptyHistogramIsZero) {
  // workload_replay prints P99/P999 unconditionally; a tiny --days run that
  // emits no reads reaches this with count()==0 and must print 0, not a
  // sentinel or an out-of-range bucket bound.
  LogHistogram h;
  EXPECT_EQ(h.P50(), 0u);
  EXPECT_EQ(h.P95(), 0u);
  EXPECT_EQ(h.P99(), 0u);
  EXPECT_EQ(h.P999(), 0u);
}

TEST(LogHistogramTest, P999OnSingleSampleIsExactlyThatSample) {
  // With one sample every quantile's bucket bound clamps to max_, so the
  // result is exact — not merely within bucket error. Pin that.
  LogHistogram h;
  h.Record(123457);
  EXPECT_EQ(h.P50(), 123457u);
  EXPECT_EQ(h.P95(), 123457u);
  EXPECT_EQ(h.P99(), 123457u);
  EXPECT_EQ(h.P999(), 123457u);
}

TEST(LogHistogramTest, P999OnSingleZeroSampleIsZero) {
  LogHistogram h;
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.P999(), 0u);
  EXPECT_EQ(h.Quantile(1.0), 0u);
}

TEST(LogHistogramTest, QuantilesMonotoneInQ) {
  LogHistogram h;
  Rng rng(12345);
  for (int i = 0; i < 10000; ++i) {
    h.Record(1 + rng.UniformU64(1 << 20));
  }
  EXPECT_LE(h.min(), h.P50());
  EXPECT_LE(h.P50(), h.P95());
  EXPECT_LE(h.P95(), h.P99());
  EXPECT_LE(h.P99(), h.P999());
  EXPECT_LE(h.P999(), h.max());
}

TEST(LogHistogramTest, P999NeverExceedsMaxOnTwoSamples) {
  // Two widely separated samples: P999's target rank lands on the top
  // sample, whose bucket bound overshoots the value — the clamp must bring
  // it back to max() exactly.
  LogHistogram h;
  h.Record(3);
  h.Record(999983);
  EXPECT_EQ(h.P999(), 999983u);
  EXPECT_EQ(h.Quantile(0.5), 3u);
}

TEST(LogHistogramTest, SingleSubBucketPerOctaveStillOrdered) {
  // The coarsest legal layout (1 sub-bucket per octave) must keep
  // min <= p50 <= p99 <= max and exact edge quantiles.
  LogHistogram h(1);
  for (uint64_t v : {1u, 2u, 4u, 100u, 5000u}) {
    h.Record(v);
  }
  EXPECT_EQ(h.Quantile(0.0), 1u);
  EXPECT_EQ(h.Quantile(1.0), 5000u);
  EXPECT_LE(h.Quantile(0.0), h.P50());
  EXPECT_LE(h.P50(), h.P99());
  EXPECT_LE(h.P99(), h.max());
}

TEST(LogHistogramTest, MinOnEmptyHistogramIsZeroSentinel) {
  LogHistogram h;
  EXPECT_EQ(h.min(), 0u);  // not UINT64_MAX leaking out of the accumulator
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.min(), 0u);
}

TEST(LogHistogramTest, RecordNEquivalentToLoop) {
  LogHistogram a;
  LogHistogram b;
  a.RecordN(500, 100);
  for (int i = 0; i < 100; ++i) {
    b.Record(500);
  }
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.P50(), b.P50());
  EXPECT_EQ(a.Mean(), b.Mean());
}

TEST(LogHistogramTest, MergeCombines) {
  LogHistogram a;
  LogHistogram b;
  a.Record(10);
  b.Record(1000);
  EXPECT_TRUE(a.Merge(b));
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(LogHistogramTest, MergeMismatchedLayoutRejectedAndUntouched) {
  LogHistogram a(32);
  LogHistogram b(64);  // different sub-bucket layout → different resolution
  a.Record(10);
  b.Record(1000);
  EXPECT_FALSE(a.Merge(b));
  EXPECT_EQ(a.count(), 1u);  // a unchanged by the rejected merge
  EXPECT_EQ(a.max(), 10u);
}

TEST(LogHistogramTest, MergeEquivalentRoundedLayoutsAccepted) {
  // 20 and 25 both round up to 32 sub-buckets, so their layouts match.
  LogHistogram a(20);
  LogHistogram b(25);
  a.Record(10);
  b.Record(1000);
  EXPECT_TRUE(a.Merge(b));
  EXPECT_EQ(a.count(), 2u);
}

TEST(LogHistogramTest, MergeEmptyOtherIsNoOp) {
  LogHistogram a;
  LogHistogram b;
  a.Record(42);
  EXPECT_TRUE(a.Merge(b));
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42u);
  EXPECT_EQ(a.max(), 42u);
}

TEST(LogHistogramTest, ResetClears) {
  LogHistogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(LogHistogramTest, LargeValuesDoNotOverflowBuckets) {
  LogHistogram h;
  h.Record(UINT64_MAX / 2);
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_GE(h.Quantile(1.0), UINT64_MAX / 2);
}

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Record(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats s;
  s.Record(3.14);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.14);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats s;
  // Welford handles a large common offset without catastrophic cancellation.
  for (int i = 0; i < 1000; ++i) {
    s.Record(1e9 + (i % 2 == 0 ? 1.0 : -1.0));
  }
  EXPECT_NEAR(s.mean(), 1e9, 1e-3);
  EXPECT_NEAR(s.Variance(), 1.001, 0.01);
}

TEST(RunningStatsTest, MergeWithEmptyOtherIsNoOp) {
  RunningStats a;
  a.Record(1.0);
  a.Record(3.0);
  RunningStats b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 3.0);
}

TEST(RunningStatsTest, MergeIntoEmptyAdoptsOther) {
  RunningStats a;
  RunningStats b;
  b.Record(5.0);
  b.Record(7.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 6.0);
  EXPECT_DOUBLE_EQ(a.Variance(), 2.0);
}

TEST(RunningStatsTest, MergeTwoEmptiesStaysEmpty) {
  RunningStats a;
  RunningStats b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.Variance(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
}

TEST(RunningStatsTest, MergeSingleSampleEachSide) {
  RunningStats a;
  a.Record(2.0);
  RunningStats b;
  b.Record(4.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.Variance(), 2.0);  // sample variance of {2, 4}
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 4.0);
}

TEST(RunningStatsTest, MergeMatchesSequentialRecording) {
  // Splitting a stream across two accumulators and merging must reproduce
  // the single-accumulator result (this is what the parallel harnesses do
  // at their barriers).
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats whole;
  for (double v : values) {
    whole.Record(v);
  }
  RunningStats left;
  RunningStats right;
  for (size_t i = 0; i < values.size(); ++i) {
    (i < 3 ? left : right).Record(values[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.Variance(), whole.Variance(), 1e-12);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(TimeSeriesTest, InterpolationBasics) {
  TimeSeries ts("capacity");
  ts.Add(0.0, 100.0);
  ts.Add(10.0, 0.0);
  EXPECT_DOUBLE_EQ(ts.Interpolate(5.0), 50.0);
  EXPECT_DOUBLE_EQ(ts.Interpolate(-1.0), 100.0);  // clamp left
  EXPECT_DOUBLE_EQ(ts.Interpolate(20.0), 0.0);    // clamp right
}

TEST(TimeSeriesTest, EmptySeries) {
  TimeSeries ts("empty");
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.Interpolate(1.0), 0.0);
}

TEST(TimeSeriesTest, SinglePointClampsEverywhere) {
  TimeSeries ts("one");
  ts.Add(5.0, 42.0);
  EXPECT_FALSE(ts.empty());
  EXPECT_EQ(ts.points().size(), 1u);
  EXPECT_DOUBLE_EQ(ts.Interpolate(0.0), 42.0);
  EXPECT_DOUBLE_EQ(ts.Interpolate(5.0), 42.0);
  EXPECT_DOUBLE_EQ(ts.Interpolate(100.0), 42.0);
}

TEST(TimeSeriesTest, PointsPreserveInsertionOrder) {
  TimeSeries ts("ordered");
  ts.Add(0.0, 1.0);
  ts.Add(1.0, 2.0);
  ts.Add(2.0, 4.0);
  const auto& points = ts.points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[1].first, 1.0);
  EXPECT_DOUBLE_EQ(points[1].second, 2.0);
  EXPECT_DOUBLE_EQ(points[2].second, 4.0);
}

TEST(TimeSeriesTest, DuplicateXHandled) {
  TimeSeries ts("step");
  ts.Add(1.0, 5.0);
  ts.Add(1.0, 7.0);
  EXPECT_DOUBLE_EQ(ts.Interpolate(1.0), 5.0);
}

}  // namespace
}  // namespace salamander
