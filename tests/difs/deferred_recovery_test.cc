// Deferred-recovery re-arm (RegenS x diFS): when recovery finds no eligible
// placement target the chunk is parked in waiting_capacity_, and a later
// kCreated event (regenerated mDisk) re-arms it. The recovery must then run
// exactly once — re-arming twice would over-replicate, never re-arming would
// leave the chunk under-replicated forever.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "difs/cluster.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

TEST(DeferredRecoveryTest, ParkedChunksReArmWhenRegenerationAddsCapacity) {
  DifsConfig config;
  config.nodes = 5;
  config.devices_per_node = 1;
  config.replication = 3;
  config.chunk_opages = 64;
  config.fill_fraction = 1.0;  // pack the cluster: no spare slots
  config.seed = 99;
  DifsCluster cluster(
      config, [](uint32_t index) {
        return std::make_unique<SsdDevice>(
            SsdKind::kRegenS,
            TestSsdConfig(SsdKind::kRegenS, TinyGeometry(),
                          /*nominal_pec=*/25, /*seed=*/1000 + index));
      });
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_GT(cluster.total_chunks(), 0u);
  // The fill left at most a couple of stragglers unplaced.
  ASSERT_LT(cluster.free_slots(), 6u);

  // Crash one device: its 12 mDisks' worth of replicas need new homes, but
  // the cluster is packed — recoveries must defer and park.
  cluster.device(0).Crash();
  cluster.ForceReconcile();
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_GT(cluster.stats().recovery_deferred, 0u);
  ASSERT_GT(cluster.chunks_waiting_capacity(), 0u);
  // Parked chunks are exactly the under-replicated ones: nothing fell
  // through the cracks between the queue and the parking lot.
  EXPECT_EQ(cluster.chunks_waiting_capacity(),
            cluster.chunks_under_replicated());
  std::vector<ChunkId> parked;
  for (ChunkId c = 0; c < cluster.total_chunks(); ++c) {
    const Chunk& chunk = cluster.chunk(c);
    if (!chunk.lost && chunk.live_replicas() < config.replication) {
      parked.push_back(c);
    }
  }
  ASSERT_FALSE(parked.empty());

  // Write until wear makes a surviving RegenS device regenerate an mDisk
  // from revived capacity; the kCreated event must re-arm parked chunks.
  const auto parked_chunk_recovered = [&] {
    for (ChunkId c : parked) {
      const Chunk& chunk = cluster.chunk(c);
      if (!chunk.lost && chunk.live_replicas() >= config.replication) {
        return true;
      }
    }
    return false;
  };
  uint64_t steps = 0;
  while (!parked_chunk_recovered() && steps < 600000 &&
         cluster.alive_devices() == 4) {
    ASSERT_TRUE(cluster.StepWrites(500).ok());
    steps += 500;
  }
  ASSERT_TRUE(parked_chunk_recovered())
      << "no kCreated ever re-armed a parked recovery (steps=" << steps
      << ", alive=" << cluster.alive_devices() << ")";
  // The only source of fresh placement capacity in this packed cluster is
  // regeneration — confirm that is what re-armed the recovery.
  uint64_t regenerated = 0;
  for (uint32_t d = 0; d < cluster.device_count(); ++d) {
    regenerated += cluster.device(d).manager().regenerated_total();
  }
  EXPECT_GT(regenerated, 0u);

  // Exactly-once: a re-armed chunk is recovered back to R replicas, not
  // past it, and the slot bookkeeping survives the round trip. Over-
  // replication and slot drift are both invariant violations.
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  for (ChunkId c : parked) {
    const Chunk& chunk = cluster.chunk(c);
    if (!chunk.lost) {
      EXPECT_LE(chunk.live_replicas(), config.replication);
    }
  }
}

}  // namespace
}  // namespace salamander
