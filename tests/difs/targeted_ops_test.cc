// Targeted-op suite: the traffic engine's entry points into the clusters.
// WriteChunkAt/ReadChunkAt and WriteLogicalAt/ReadLogicalAt must (a) accept
// caller-chosen addresses, returning the op's simulated service cost,
// (b) reject out-of-range addresses and pre-bootstrap calls with Status
// errors, and (c) leave the legacy StepWrites/StepReads RNG schedule
// untouched — the byte-identity guarantee the golden fleet digests pin.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "difs/cluster.h"
#include "difs/ec_cluster.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

std::function<std::unique_ptr<SsdDevice>(uint32_t)> Factory(
    uint32_t seed_base) {
  return [seed_base](uint32_t index) {
    return std::make_unique<SsdDevice>(
        SsdKind::kShrinkS,
        TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), /*nominal_pec=*/
                      1000000, seed_base + index * 13));
  };
}

DifsConfig DifsTestConfig() {
  DifsConfig config;
  config.nodes = 4;
  config.replication = 3;
  config.chunk_opages = 64;
  config.fill_fraction = 0.5;
  config.seed = 99;
  return config;
}

EcConfig EcTestConfig() {
  EcConfig config;
  config.nodes = 7;
  config.data_cells = 4;
  config.parity_cells = 2;
  config.cell_opages = 64;
  config.fill_fraction = 0.4;
  config.seed = 515;
  return config;
}

// ---------------------------------------------------------------------------
// diFS (replicated chunks)
// ---------------------------------------------------------------------------

TEST(DifsTargetedOpsTest, WriteAndReadAtReturnCosts) {
  DifsCluster cluster(DifsTestConfig(), Factory(1000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  // A single host write usually lands in the device write buffer at zero
  // latency; the program cost surfaces on whichever op triggers the flush.
  // Drive a full chunk's worth of writes and require that at least one op
  // paid a real (positive) flash-program cost.
  SimDuration max_write_cost = 0;
  for (uint64_t offset = 0; offset < cluster.chunk_opages(); ++offset) {
    SimDuration write_cost = 0;
    ASSERT_TRUE(cluster.WriteChunkAt(0, offset, &write_cost).ok());
    max_write_cost = std::max(max_write_cost, write_cost);
  }
  EXPECT_GT(max_write_cost, 0u);
  // A read is served by one live replica and always pays a flash read.
  SimDuration read_cost = 0;
  ASSERT_TRUE(cluster.ReadChunkAt(0, 5, &read_cost).ok());
  EXPECT_GT(read_cost, 0u);
}

TEST(DifsTargetedOpsTest, CostPointerIsOptional) {
  DifsCluster cluster(DifsTestConfig(), Factory(1000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_TRUE(cluster.WriteChunkAt(1, 0).ok());
  EXPECT_TRUE(cluster.ReadChunkAt(1, 0).ok());
}

TEST(DifsTargetedOpsTest, RequiresBootstrap) {
  DifsCluster cluster(DifsTestConfig(), Factory(1000));
  EXPECT_EQ(cluster.WriteChunkAt(0, 0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.ReadChunkAt(0, 0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(DifsTargetedOpsTest, RejectsOutOfRangeAddresses) {
  DifsCluster cluster(DifsTestConfig(), Factory(1000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_EQ(cluster.WriteChunkAt(cluster.total_chunks(), 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster.WriteChunkAt(0, cluster.chunk_opages()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster.ReadChunkAt(cluster.total_chunks(), 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster.ReadChunkAt(0, cluster.chunk_opages()).code(),
            StatusCode::kInvalidArgument);
}

TEST(DifsTargetedOpsTest, LogicalSpaceCoversAllChunks) {
  DifsCluster cluster(DifsTestConfig(), Factory(1000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_EQ(cluster.logical_opages(),
            cluster.total_chunks() * cluster.chunk_opages());
  // Every address in the space maps to a valid (chunk, offset).
  const uint64_t last = cluster.logical_opages() - 1;
  EXPECT_TRUE(cluster
                  .WriteChunkAt(last / cluster.chunk_opages(),
                                last % cluster.chunk_opages())
                  .ok());
}

TEST(DifsTargetedOpsTest, TargetedOpsCountAsForeground) {
  DifsCluster cluster(DifsTestConfig(), Factory(1000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const uint64_t before = cluster.stats().foreground_opage_writes;
  ASSERT_TRUE(cluster.WriteChunkAt(0, 0).ok());
  EXPECT_EQ(cluster.stats().foreground_opage_writes, before + 1);
}

TEST(DifsTargetedOpsTest, TargetedReplayIsDeterministic) {
  // Two identical clusters served the same targeted sequence report
  // identical costs op for op — the property workload_replay's self-check
  // relies on.
  DifsCluster a(DifsTestConfig(), Factory(1000));
  DifsCluster b(DifsTestConfig(), Factory(1000));
  ASSERT_TRUE(a.Bootstrap().ok());
  ASSERT_TRUE(b.Bootstrap().ok());
  for (uint64_t i = 0; i < 64; ++i) {
    const ChunkId chunk = (i * 7) % a.total_chunks();
    const uint64_t offset = (i * 13) % a.chunk_opages();
    SimDuration cost_a = 0;
    SimDuration cost_b = 0;
    if (i % 2 == 0) {
      ASSERT_TRUE(a.WriteChunkAt(chunk, offset, &cost_a).ok());
      ASSERT_TRUE(b.WriteChunkAt(chunk, offset, &cost_b).ok());
    } else {
      ASSERT_TRUE(a.ReadChunkAt(chunk, offset, &cost_a).ok());
      ASSERT_TRUE(b.ReadChunkAt(chunk, offset, &cost_b).ok());
    }
    EXPECT_EQ(cost_a, cost_b) << "op " << i;
  }
  EXPECT_EQ(a.stats().foreground_opage_writes,
            b.stats().foreground_opage_writes);
}

// ---------------------------------------------------------------------------
// EC (RS(k+m) stripes)
// ---------------------------------------------------------------------------

TEST(EcTargetedOpsTest, WriteAndReadAtReturnCosts) {
  EcCluster cluster(EcTestConfig(), Factory(7000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  // Device write buffering means a lone logical write can report zero cost;
  // sweep a full cell so some op in the sequence triggers a flush and
  // reports the program latency.
  SimDuration max_write_cost = 0;
  for (uint64_t offset = 0; offset < cluster.cell_opages(); ++offset) {
    SimDuration write_cost = 0;
    ASSERT_TRUE(cluster.WriteLogicalAt(0, 1, offset, &write_cost).ok());
    max_write_cost = std::max(max_write_cost, write_cost);
  }
  EXPECT_GT(max_write_cost, 0u);
  // A live-cell read is one flash read: always a positive latency.
  SimDuration read_cost = 0;
  ASSERT_TRUE(cluster.ReadLogicalAt(0, 1, 7, &read_cost).ok());
  EXPECT_GT(read_cost, 0u);
}

TEST(EcTargetedOpsTest, RequiresBootstrap) {
  EcCluster cluster(EcTestConfig(), Factory(7000));
  EXPECT_EQ(cluster.WriteLogicalAt(0, 0, 0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.ReadLogicalAt(0, 0, 0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(EcTargetedOpsTest, RejectsOutOfRangeAddresses) {
  EcCluster cluster(EcTestConfig(), Factory(7000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_EQ(cluster.WriteLogicalAt(cluster.total_stripes(), 0, 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster.WriteLogicalAt(0, cluster.data_cells(), 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster.WriteLogicalAt(0, 0, cluster.cell_opages()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster.ReadLogicalAt(cluster.total_stripes(), 0, 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster.ReadLogicalAt(0, cluster.data_cells(), 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster.ReadLogicalAt(0, 0, cluster.cell_opages()).code(),
            StatusCode::kInvalidArgument);
}

TEST(EcTargetedOpsTest, LogicalSpaceCoversAllStripes) {
  EcCluster cluster(EcTestConfig(), Factory(7000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_EQ(cluster.logical_opages(), cluster.total_stripes() *
                                          cluster.data_cells() *
                                          cluster.cell_opages());
  const uint64_t last = cluster.logical_opages() - 1;
  const uint64_t cell = last / cluster.cell_opages();
  EXPECT_TRUE(cluster
                  .WriteLogicalAt(cell / cluster.data_cells(),
                                  static_cast<uint32_t>(cell %
                                                        cluster.data_cells()),
                                  last % cluster.cell_opages())
                  .ok());
}

TEST(EcTargetedOpsTest, WritesPayParityFanOut) {
  EcCluster cluster(EcTestConfig(), Factory(7000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const uint64_t device_writes_before =
      cluster.stats().foreground_device_writes;
  ASSERT_TRUE(cluster.WriteLogicalAt(0, 0, 0).ok());
  // 1 data cell + 2 parity cells.
  EXPECT_EQ(cluster.stats().foreground_device_writes,
            device_writes_before + 3);
}

}  // namespace
}  // namespace salamander
