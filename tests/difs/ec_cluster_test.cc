// Erasure-coded cluster tests: RS(k+m) placement, (1+m)-fold write fan-out,
// k-fold rebuild traffic, degraded reads, and loss bounds.
#include <gtest/gtest.h>

#include <set>

#include "difs/ec_cluster.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

std::function<std::unique_ptr<SsdDevice>(uint32_t)> Factory(
    uint32_t nominal_pec) {
  return [nominal_pec](uint32_t index) {
    return std::make_unique<SsdDevice>(
        SsdKind::kShrinkS,
        TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), nominal_pec,
                      /*seed=*/7000 + index * 23));
  };
}

EcConfig TestConfig(uint32_t nodes = 7) {
  EcConfig config;
  config.nodes = nodes;
  config.data_cells = 4;
  config.parity_cells = 2;
  config.cell_opages = 64;
  config.fill_fraction = 0.4;
  config.seed = 515;
  return config;
}

TEST(EcClusterTest, BootstrapPlacesNodeDisjointStripes) {
  EcCluster cluster(TestConfig(), Factory(1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_GT(cluster.total_stripes(), 0u);
  EXPECT_EQ(cluster.stripes_fully_redundant(), cluster.total_stripes());
  for (StripeId s = 0; s < cluster.total_stripes(); ++s) {
    const Stripe& stripe = cluster.stripe(s);
    ASSERT_EQ(stripe.cells.size(), 6u);
    std::set<uint32_t> nodes;
    for (const CellLocation& cell : stripe.cells) {
      nodes.insert(cluster.node_of_device(cell.device));
    }
    EXPECT_EQ(nodes.size(), 6u) << "stripe " << s;
  }
}

TEST(EcClusterTest, CellIndicesAreStable) {
  EcCluster cluster(TestConfig(), Factory(1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const Stripe& stripe = cluster.stripe(0);
  for (uint32_t c = 0; c < stripe.cells.size(); ++c) {
    EXPECT_EQ(stripe.cells[c].cell, c);
  }
}

TEST(EcClusterTest, WritesFanOutToDataPlusParity) {
  EcCluster cluster(TestConfig(), Factory(1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const uint64_t before = cluster.stats().foreground_device_writes;
  ASSERT_TRUE(cluster.StepWrites(100).ok());
  // 1 data + 2 parity device writes per logical write.
  EXPECT_EQ(cluster.stats().foreground_device_writes - before, 300u);
  EXPECT_EQ(cluster.stats().foreground_logical_writes, 100u);
}

TEST(EcClusterTest, HealthyReadsAreNotDegraded) {
  EcCluster cluster(TestConfig(), Factory(1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_TRUE(cluster.StepReads(500).ok());
  EXPECT_EQ(cluster.stats().degraded_reads, 0u);
}

TEST(EcClusterTest, StepsRequireBootstrap) {
  EcCluster cluster(TestConfig(), Factory(1000000));
  EXPECT_EQ(cluster.StepWrites(1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.StepReads(1).code(), StatusCode::kFailedPrecondition);
}

// Ages until at least `target` cells are lost.
void AgeCluster(EcCluster& cluster, uint64_t target, uint64_t max_steps) {
  uint64_t steps = 0;
  while (cluster.stats().cells_lost < target && steps < max_steps &&
         cluster.alive_devices() >= 6) {
    ASSERT_TRUE(cluster.StepWrites(500).ok());
    steps += 500;
  }
}

TEST(EcClusterTest, RebuildRestoresFullRedundancy) {
  EcCluster cluster(TestConfig(/*nodes=*/8), Factory(/*nominal_pec=*/25));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  AgeCluster(cluster, 3, 300000);
  ASSERT_GT(cluster.stats().cells_lost, 0u);
  EXPECT_GT(cluster.stats().cells_rebuilt, 0u);
  EXPECT_EQ(cluster.stripes_degraded(), 0u);
  EXPECT_EQ(cluster.stats().stripes_lost, 0u);
}

TEST(EcClusterTest, RebuildReadsKTimesTheLostData) {
  EcCluster cluster(TestConfig(/*nodes=*/8), Factory(/*nominal_pec=*/25));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  AgeCluster(cluster, 3, 300000);
  const EcStats& stats = cluster.stats();
  ASSERT_GT(stats.cells_rebuilt, 0u);
  // Every rebuild writes one cell (64 oPages) and reads k = 4 cells.
  EXPECT_EQ(stats.rebuild_opage_writes, stats.cells_rebuilt * 64);
  EXPECT_EQ(stats.rebuild_opage_reads, stats.cells_rebuilt * 4 * 64);
}

TEST(EcClusterTest, RebuiltStripesStayNodeDisjoint) {
  EcCluster cluster(TestConfig(/*nodes=*/8), Factory(/*nominal_pec=*/25));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  AgeCluster(cluster, 5, 400000);
  ASSERT_GT(cluster.stats().cells_rebuilt, 0u);
  for (StripeId s = 0; s < cluster.total_stripes(); ++s) {
    const Stripe& stripe = cluster.stripe(s);
    if (stripe.lost) {
      continue;
    }
    std::set<uint32_t> nodes;
    uint32_t live = 0;
    for (const CellLocation& cell : stripe.cells) {
      if (cell.live) {
        nodes.insert(cluster.node_of_device(cell.device));
        ++live;
      }
    }
    EXPECT_EQ(nodes.size(), live) << "stripe " << s;
  }
}

TEST(EcClusterTest, DeterministicForSameSeed) {
  auto run = [] {
    EcCluster cluster(TestConfig(/*nodes=*/8), Factory(25));
    EXPECT_TRUE(cluster.Bootstrap().ok());
    EXPECT_TRUE(cluster.StepWrites(30000).ok());
    return std::make_tuple(cluster.stats().cells_lost,
                           cluster.stats().cells_rebuilt,
                           cluster.stats().rebuild_opage_reads);
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Tick scheduling — the discrete-event hooks behind MaybeRunMaintenance
// ---------------------------------------------------------------------------

TEST(EcClusterTest, MaintenanceDormantWithoutInjectors) {
  EcCluster cluster(TestConfig(), Factory(1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_TRUE(cluster.MaintenanceDormant());
  EXPECT_EQ(cluster.OpsUntilMaintenanceTick(), UINT64_MAX);
  ASSERT_TRUE(cluster.StepWrites(600).ok());
  EXPECT_EQ(cluster.stats().maintenance_ticks, 0u);
}

TEST(EcClusterTest, ExplicitIntervalSchedulesTicks) {
  EcConfig config = TestConfig();
  config.maintenance_interval_ops = 8;
  EcCluster cluster(config, Factory(1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_FALSE(cluster.MaintenanceDormant());
  EXPECT_EQ(cluster.OpsUntilMaintenanceTick(), 8u);
  ASSERT_TRUE(cluster.StepWrites(3).ok());
  EXPECT_EQ(cluster.OpsUntilMaintenanceTick(), 5u);
  const uint64_t before = cluster.stats().maintenance_ticks;
  ASSERT_TRUE(cluster.StepWrites(5).ok());
  EXPECT_EQ(cluster.stats().maintenance_ticks, before + 1);
  EXPECT_EQ(cluster.OpsUntilMaintenanceTick(), 8u);
}

TEST(EcClusterTest, ClusterInjectorWakesAutoMaintenance) {
  EcConfig config = TestConfig();
  config.faults = std::make_shared<FaultInjector>(FaultConfig{}, 7);
  EcCluster cluster(config, Factory(1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_FALSE(cluster.MaintenanceDormant());
  EXPECT_LE(cluster.OpsUntilMaintenanceTick(), 256u);
}

}  // namespace
}  // namespace salamander
